package cluster

import (
	"fmt"
	"sort"

	odyssey "spaceodyssey"
)

// placement maps datasets to their replica shard sets. Replicas are laid
// out ring-style — dataset d with replication r lives on shards
// (d mod N), (d+1 mod N), ..., (d+r-1 mod N) — so consecutive datasets
// spread over all shards and every replica set is a contiguous arc of the
// ring. Datasets with equal (d mod N, r) share an identical replica set,
// which is what makes group failover well-defined: every candidate shard
// of a fan-out group hosts every dataset of the group.
type placement struct {
	shards int
	// replicas maps each registered dataset to its ordered replica shard
	// list (primary first). Guarded by the router's mu.
	replicas map[odyssey.DatasetID][]int
}

func newPlacement(shards int) *placement {
	return &placement{shards: shards, replicas: make(map[odyssey.DatasetID][]int)}
}

// group is one fan-out unit of a query: the datasets sharing a replica
// set, and that set (primary first).
type group struct {
	datasets []odyssey.DatasetID
	replicas []int
}

// groups splits a query's dataset list into fan-out groups keyed by
// replica set, preserving first-appearance order (deterministic for a
// given query). Unknown datasets error — the single-Explorer contract.
func (p *placement) groups(datasets []odyssey.DatasetID) ([]group, error) {
	var out []group
	index := make(map[string]int)
	for _, ds := range datasets {
		set, ok := p.replicas[ds]
		if !ok {
			return nil, fmt.Errorf("cluster: unknown dataset %d", ds)
		}
		key := fmt.Sprint(set)
		gi, seen := index[key]
		if !seen {
			gi = len(out)
			index[key] = gi
			out = append(out, group{replicas: set})
		}
		out[gi].datasets = append(out[gi].datasets, ds)
	}
	return out, nil
}

// sortObjects orders a merged result set deterministically by
// (dataset, id): the fan-out's concatenation order must never show through
// to callers, whichever shards or hedge legs happened to answer first.
func sortObjects(objs []odyssey.Object) {
	sort.Slice(objs, func(i, j int) bool {
		if objs[i].Dataset != objs[j].Dataset {
			return objs[i].Dataset < objs[j].Dataset
		}
		return objs[i].ID < objs[j].ID
	})
}
