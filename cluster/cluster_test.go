package cluster

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	odyssey "spaceodyssey"
)

// testData generates n clustered datasets shared by the cluster tests.
func testData(n int) [][]odyssey.Object {
	return odyssey.GenerateDatasets(odyssey.DataConfig{Seed: 23, NumObjects: 2000, Clusters: 3}, n)
}

// newCluster builds a Router and registers data on it.
func newCluster(t testing.TB, cfg Config, data [][]odyssey.Object) *Router {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, objs := range data {
		if err := r.AddDataset(odyssey.DatasetID(i), objs); err != nil {
			r.Close()
			t.Fatal(err)
		}
	}
	return r
}

// newOracle builds the single-Explorer reference over the same datasets.
func newOracle(t testing.TB, opts odyssey.Options, data [][]odyssey.Object) *odyssey.Explorer {
	t.Helper()
	ex, err := odyssey.NewExplorer(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, objs := range data {
		if err := ex.AddDataset(odyssey.DatasetID(i), objs); err != nil {
			t.Fatal(err)
		}
	}
	return ex
}

// objKeys flattens a result set into sorted (dataset, id) keys for
// order-independent comparison.
func objKeys(objs []odyssey.Object) []int64 {
	keys := make([]int64, len(objs))
	for i, o := range objs {
		keys[i] = int64(o.Dataset)<<32 | int64(o.ID)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}

// sameObjects reports whether two result sets hold the same objects.
func sameObjects(a, b []odyssey.Object) bool {
	if len(a) != len(b) {
		return false
	}
	ka, kb := objKeys(a), objKeys(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// TestPlacementGroups pins the fan-out grouping: datasets sharing a replica
// set form one group in first-appearance order, and unknown datasets keep
// the single-Explorer error contract.
func TestPlacementGroups(t *testing.T) {
	p := newPlacement(4)
	p.replicas[0] = []int{0, 1}
	p.replicas[1] = []int{1, 2}
	p.replicas[4] = []int{0, 1}

	gs, err := p.groups([]odyssey.DatasetID{1, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 2 {
		t.Fatalf("got %d groups, want 2: %+v", len(gs), gs)
	}
	if fmt.Sprint(gs[0].datasets) != "[1]" || fmt.Sprint(gs[0].replicas) != "[1 2]" {
		t.Fatalf("group 0 = %+v, want datasets [1] on [1 2]", gs[0])
	}
	if fmt.Sprint(gs[1].datasets) != "[0 4]" || fmt.Sprint(gs[1].replicas) != "[0 1]" {
		t.Fatalf("group 1 = %+v, want datasets [0 4] on [0 1]", gs[1])
	}

	if _, err := p.groups([]odyssey.DatasetID{0, 9}); err == nil {
		t.Fatal("unknown dataset did not error")
	}
}

// TestRingPlacement pins the replica layout: dataset d with replication r
// lives on shards (d+i) mod N, AddDatasetReplicated overrides the default
// factor, and duplicate registration errors.
func TestRingPlacement(t *testing.T) {
	data := odyssey.GenerateDatasets(odyssey.DataConfig{Seed: 7, NumObjects: 200, Clusters: 2}, 7)
	r, err := New(Config{Shards: 4, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 6; i++ {
		if err := r.AddDataset(odyssey.DatasetID(i), data[i]); err != nil {
			t.Fatal(err)
		}
	}
	for d := 0; d < 6; d++ {
		want := []int{d % 4, (d + 1) % 4}
		if got := r.Replicas(odyssey.DatasetID(d)); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("dataset %d replicas = %v, want %v", d, got, want)
		}
	}
	// Per-dataset override, clamped to the shard count.
	if err := r.AddDatasetReplicated(6, data[6], 9); err != nil {
		t.Fatal(err)
	}
	if got := r.Replicas(6); len(got) != 4 {
		t.Fatalf("replication 9 on 4 shards = %v, want all 4", got)
	}
	if err := r.AddDataset(3, data[3]); err == nil {
		t.Fatal("duplicate AddDataset did not error")
	}
	if got := r.Replicas(99); got != nil {
		t.Fatalf("unknown dataset replicas = %v, want nil", got)
	}
}

// TestProberHysteresis pins the health state machine's trajectory without
// clocks: one flapped probe moves nothing, DownAfter consecutive failures
// mark the shard down, UpAfter consecutive successes bring it back, and the
// degraded verdict follows the shard's own brownout immediately while up.
func TestProberHysteresis(t *testing.T) {
	s := &shard{}
	p := &prober{s: s, cfg: HealthConfig{DownAfter: 2, UpAfter: 2}}
	boom := errors.New("probe failed")
	state := func() ShardState { return ShardState(s.state.Load()) }

	p.step(false, nil)
	if state() != StateUp {
		t.Fatalf("after clean probe: %v, want up", state())
	}
	p.step(false, boom)
	if state() != StateUp {
		t.Fatalf("one flapped probe moved the verdict to %v", state())
	}
	p.step(false, boom)
	if state() != StateDown {
		t.Fatalf("after %d consecutive failures: %v, want down", 2, state())
	}
	p.step(false, nil)
	if state() != StateDown {
		t.Fatalf("one success resurrected a down shard: %v", state())
	}
	p.step(false, boom) // the boundary flap the streak reset exists for
	p.step(false, nil)
	p.step(false, nil)
	if state() != StateUp {
		t.Fatalf("after %d consecutive successes: %v, want up", 2, state())
	}
	p.step(true, nil)
	if state() != StateDegraded {
		t.Fatalf("degraded shard health not reflected: %v", state())
	}
	p.step(false, nil)
	if state() != StateUp {
		t.Fatalf("recovered shard stuck degraded: %v", state())
	}
	if got := s.transitions.Load(); got != 4 {
		t.Fatalf("transitions = %d, want 4 (up->down->up->degraded->up)", got)
	}
}

// TestLatencyTracker pins the hedge trigger: a cold tracker answers
// MinDelay, the p99 reflects the tail of the retained window, and the delay
// clamps into [MinDelay, MaxDelay].
func TestLatencyTracker(t *testing.T) {
	cfg := HedgeConfig{MinDelay: 2 * time.Millisecond, MaxDelay: 250 * time.Millisecond}
	tr := newLatencyTracker(100)
	if d := tr.delay(cfg); d != cfg.MinDelay {
		t.Fatalf("cold tracker delay = %v, want MinDelay %v", d, cfg.MinDelay)
	}
	for i := 0; i < 99; i++ {
		tr.observe(time.Millisecond)
	}
	tr.observe(500 * time.Millisecond)
	if got := tr.p99(); got != 500*time.Millisecond {
		t.Fatalf("p99 = %v, want the tail observation 500ms", got)
	}
	if d := tr.delay(cfg); d != cfg.MaxDelay {
		t.Fatalf("delay = %v, want clamp to MaxDelay %v", d, cfg.MaxDelay)
	}
	// The ring retains only the window: overwrite the tail entirely.
	for i := 0; i < 100; i++ {
		tr.observe(time.Millisecond)
	}
	if got := tr.p99(); got != time.Millisecond {
		t.Fatalf("p99 after the spike rolled out = %v, want 1ms", got)
	}
	if d := tr.delay(cfg); d != cfg.MinDelay {
		t.Fatalf("delay = %v, want floor at MinDelay %v", d, cfg.MinDelay)
	}
}

// TestShardFaultPlanWindows pins the plan's ordinal arithmetic: every
// window is half-open [After, After+For), and the nil plan injects nothing.
func TestShardFaultPlanWindows(t *testing.T) {
	var nilPlan *ShardFaultPlan
	if nilPlan.crashed(0, 0) || nilPlan.slow(0, 0) != 0 || nilPlan.flapped(0, 0) {
		t.Fatal("nil plan injected a fault")
	}
	p := &ShardFaultPlan{Faults: []ShardFault{{
		Shard:      1,
		CrashAfter: 10, CrashFor: 5,
		SlowAfter: 20, SlowFor: 3, SlowDelay: 7 * time.Millisecond,
		FlapAfter: 2, FlapFor: 2,
	}}}
	for ord, want := range map[int64]bool{9: false, 10: true, 14: true, 15: false} {
		if got := p.crashed(1, ord); got != want {
			t.Fatalf("crashed(1, %d) = %v, want %v", ord, got, want)
		}
	}
	if p.crashed(0, 12) {
		t.Fatal("crash window leaked onto another shard")
	}
	if d := p.slow(1, 20); d != 7*time.Millisecond {
		t.Fatalf("slow(1, 20) = %v, want 7ms", d)
	}
	if d := p.slow(1, 23); d != 0 {
		t.Fatalf("slow(1, 23) = %v, want 0 (window closed)", d)
	}
	if !p.flapped(1, 3) || p.flapped(1, 4) {
		t.Fatal("flap window arithmetic wrong")
	}
}

// TestFailoverSurvivesCrash pins availability through shard failure: with
// R=2 a crashed shard costs nothing visible (the live replica serves), a
// fully crashed replica set fails fast wrapping ErrNoReplica after walking
// every candidate, and restoring a shard restores serving.
func TestFailoverSurvivesCrash(t *testing.T) {
	data := testData(2)
	r := newCluster(t, Config{Shards: 2, Replicas: 2}, data)
	defer r.Close()
	ref := newOracle(t, odyssey.Options{}, data)
	defer ref.Close()

	q := odyssey.Cube(odyssey.V(0.3, 0.3, 0.3), 0.3)
	dss := []odyssey.DatasetID{0, 1}
	want, err := ref.Query(q, dss)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("reference query empty; test region misses the data")
	}

	got, err := r.Query(q, dss)
	if err != nil {
		t.Fatal(err)
	}
	if !sameObjects(got, want) {
		t.Fatalf("healthy cluster returned %d objects, oracle %d", len(got), len(want))
	}

	r.Crash(0)
	got, err = r.Query(q, dss)
	if err != nil {
		t.Fatalf("query with one of two replicas crashed: %v", err)
	}
	if !sameObjects(got, want) {
		t.Fatalf("one-replica answer diverged: %d objects, oracle %d", len(got), len(want))
	}

	r.Crash(1)
	if _, err := r.Query(q, dss); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("query with every replica crashed = %v, want ErrNoReplica", err)
	} else if !errors.Is(err, ErrShardDown) {
		t.Fatalf("exhaustion error lost its cause: %v", err)
	}

	r.Restore(0)
	r.Restore(1)
	got, err = r.Query(q, dss)
	if err != nil {
		t.Fatalf("query after Restore: %v", err)
	}
	if !sameObjects(got, want) {
		t.Fatal("restored cluster diverged from the oracle")
	}

	st := r.Stats()
	if st.ShardRejects == 0 {
		t.Fatalf("no rejects ledgered from the crashed attempts: %+v", st)
	}
	if st.Failed != 1 || st.Served != 3 {
		t.Fatalf("outcome ledger = served %d / failed %d, want 3 / 1", st.Served, st.Failed)
	}
	if st.Retries == 0 || st.Failovers == 0 {
		t.Fatalf("walking the dead replica set ledgered no retries/failovers: %+v", st)
	}
	if st.Queries != st.Served+st.Partial+st.Failed {
		t.Fatalf("query ledger does not balance: %+v", st)
	}
}

// TestFailoverOnDeviceFault pins the promotion of device faults into the
// shard fault domain: a shard whose device fails every read costs a
// failover, not an error — the sub-query retries on the other replica and
// the caller never sees the fault.
func TestFailoverOnDeviceFault(t *testing.T) {
	data := testData(2)
	r := newCluster(t, Config{Shards: 2, Replicas: 2}, data)
	defer r.Close()
	ref := newOracle(t, odyssey.Options{}, data)
	defer ref.Close()

	// Every device read on shard 0 now faults permanently; health probes
	// still succeed (the shard process is alive), so routing keeps trying
	// it — the failover path is what saves those queries.
	r.shards[0].ex.SetFaultPlan(odyssey.FaultPlan{Seed: 9, PermanentRate: 1})

	dss := []odyssey.DatasetID{0, 1}
	centers := []odyssey.Vec{
		odyssey.V(0.3, 0.3, 0.3), odyssey.V(0.7, 0.7, 0.7), odyssey.V(0.5, 0.4, 0.6),
		odyssey.V(0.25, 0.6, 0.45), odyssey.V(0.6, 0.3, 0.7), odyssey.V(0.4, 0.55, 0.35),
	}
	for i, c := range centers {
		q := odyssey.Cube(c, 0.08)
		want, err := ref.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Query(q, dss)
		if err != nil {
			t.Fatalf("query %d failed despite a healthy replica: %v", i, err)
		}
		if !sameObjects(got, want) {
			t.Fatalf("query %d diverged from the oracle: %d objects, want %d", i, len(got), len(want))
		}
	}
	st := r.Stats()
	if st.Served != int64(len(centers)) {
		t.Fatalf("served %d of %d", st.Served, len(centers))
	}
	if st.Failovers == 0 {
		t.Fatalf("a fully faulted replica cost no failover: %+v", st)
	}
}

// TestPartialPolicy pins the graceful-degradation contract when a dataset
// has no live replica: FailFast fails the whole query wrapping ErrNoReplica;
// ServePartial answers from the reachable datasets with a *PartialError
// naming the missing ones; an all-missing query is a failure under either
// policy.
func TestPartialPolicy(t *testing.T) {
	data := testData(2)
	ref := newOracle(t, odyssey.Options{}, data)
	defer ref.Close()
	q := odyssey.Cube(odyssey.V(0.3, 0.3, 0.3), 0.3)
	dss := []odyssey.DatasetID{0, 1}
	wantDS0, err := ref.Query(q, []odyssey.DatasetID{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(wantDS0) == 0 {
		t.Fatal("reference query empty; test region misses dataset 0")
	}

	t.Run("fail_fast", func(t *testing.T) {
		r := newCluster(t, Config{Shards: 2, Replicas: 1}, data)
		defer r.Close()
		r.Crash(1) // dataset 1's only replica
		if objs, err := r.Query(q, dss); !errors.Is(err, ErrNoReplica) {
			t.Fatalf("FailFast query = (%d objects, %v), want ErrNoReplica", len(objs), err)
		} else if errors.Is(err, ErrPartial) {
			t.Fatalf("FailFast produced a partial marker: %v", err)
		}
		// The reachable dataset alone still serves.
		got, err := r.Query(q, []odyssey.DatasetID{0})
		if err != nil {
			t.Fatal(err)
		}
		if !sameObjects(got, wantDS0) {
			t.Fatal("reachable dataset diverged from the oracle")
		}
	})

	t.Run("serve_partial", func(t *testing.T) {
		r := newCluster(t, Config{Shards: 2, Replicas: 1, Policy: ServePartial}, data)
		defer r.Close()
		r.Crash(1)
		got, err := r.Query(q, dss)
		if !errors.Is(err, ErrPartial) {
			t.Fatalf("ServePartial query error = %v, want ErrPartial", err)
		}
		var pe *PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("partial error is not a *PartialError: %v", err)
		}
		if len(pe.Missing) != 1 || pe.Missing[0] != 1 {
			t.Fatalf("Missing = %v, want [1]", pe.Missing)
		}
		if !errors.Is(pe.Cause, ErrNoReplica) {
			t.Fatalf("partial cause = %v, want ErrNoReplica", pe.Cause)
		}
		if !sameObjects(got, wantDS0) {
			t.Fatalf("partial answer incomplete for the served dataset: %d objects, want %d",
				len(got), len(wantDS0))
		}
		// Nothing reachable is a failure, not an empty partial answer.
		if objs, err := r.Query(q, []odyssey.DatasetID{1}); err == nil || errors.Is(err, ErrPartial) {
			t.Fatalf("all-missing query = (%d objects, %v), want a plain failure", len(objs), err)
		}
		st := r.Stats()
		if st.Partial != 1 || st.Failed != 1 {
			t.Fatalf("outcome ledger = %+v, want 1 partial / 1 failed", st)
		}
		if st.Queries != st.Served+st.Partial+st.Failed {
			t.Fatalf("query ledger does not balance: %+v", st)
		}
	})
}

// TestClusterMatchesOracle pins the headline identity on a generated
// workload: a 4-shard R=2 cluster answers every query byte-identically to
// one Explorer over the union of the datasets, and the merged result set
// comes back in deterministic (dataset, id) order.
func TestClusterMatchesOracle(t *testing.T) {
	data := odyssey.GenerateDatasets(odyssey.DataConfig{Seed: 7, NumObjects: 4000, Clusters: 6}, 6)
	w, err := odyssey.GenerateWorkload(odyssey.WorkloadConfig{
		Seed: 42, NumQueries: 60, NumDatasets: 6, DatasetsPerQuery: 3,
		QueryVolumeFrac: 2e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := newOracle(t, odyssey.Options{}, data)
	defer ref.Close()
	r := newCluster(t, Config{Shards: 4, Replicas: 2}, data)
	defer r.Close()

	nonEmpty := 0
	for i, q := range w.Queries {
		want, err := ref.Query(q.Range, q.Datasets)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Query(q.Range, q.Datasets)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !sameObjects(got, want) {
			t.Fatalf("query %d: cluster returned %d objects, oracle %d", i, len(got), len(want))
		}
		for j := 1; j < len(got); j++ {
			a, b := got[j-1], got[j]
			if a.Dataset > b.Dataset || (a.Dataset == b.Dataset && a.ID >= b.ID) {
				t.Fatalf("query %d: merged result not in (dataset, id) order at %d", i, j)
			}
		}
		if len(got) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("workload returned nothing anywhere; identity was vacuous")
	}
	if st := r.Stats(); st.Served != int64(len(w.Queries)) || st.Queries != st.Served {
		t.Fatalf("ledger = %+v, want %d served", st, len(w.Queries))
	}
}

// TestHedgeChargeConservation pins the hedging cost contract under a
// slow-shard storm: hedges fire and win, results stay oracle-identical, and
// the cluster-wide charge ledger conserves exactly — every simulated
// duration any leg charged is attributed once, as ChargedSim (returned
// answers) or WastedSim (losers and failed legs), matching the shards'
// device-side ledger to the nanosecond. Hedging re-routes charges; it never
// double-counts them.
func TestHedgeChargeConservation(t *testing.T) {
	cost := odyssey.CostModel{
		Seek:     500 * time.Microsecond,
		Transfer: 25 * time.Microsecond,
		CacheHit: 200 * time.Nanosecond,
	}
	data := testData(2)
	r := newCluster(t, Config{
		Shards: 2, Replicas: 2,
		Options: odyssey.Options{Cost: cost},
		Hedge:   HedgeConfig{Enabled: true, MinDelay: 2 * time.Millisecond},
	}, data)
	ref := newOracle(t, odyssey.Options{Cost: cost}, data)
	defer ref.Close()

	dss := []odyssey.DatasetID{0, 1}
	centers := []odyssey.Vec{
		odyssey.V(0.3, 0.3, 0.3), odyssey.V(0.7, 0.7, 0.7), odyssey.V(0.5, 0.4, 0.6),
		odyssey.V(0.25, 0.6, 0.45), odyssey.V(0.6, 0.3, 0.7), odyssey.V(0.4, 0.55, 0.35),
	}
	// Warm phase: both shards converge their layouts with no faults.
	for _, c := range centers {
		if _, err := r.Query(odyssey.Cube(c, 0.08), dss); err != nil {
			t.Fatal(err)
		}
	}
	// Slow-shard storm on shard 0, open-ended: whenever rotation makes it
	// the primary, the sub-query stalls far past the hedge delay and the
	// hedge leg on shard 1 wins.
	r.SetShardFaultPlan(ShardFaultPlan{Faults: []ShardFault{{
		Shard: 0, SlowAfter: 0, SlowFor: 1 << 40, SlowDelay: 40 * time.Millisecond,
	}}})
	for i, c := range centers {
		q := odyssey.Cube(c, 0.07)
		want, err := ref.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Query(q, dss)
		if err != nil {
			t.Fatalf("query %d under the slow-shard storm: %v", i, err)
		}
		if !sameObjects(got, want) {
			t.Fatalf("query %d under hedging diverged from the oracle", i)
		}
	}

	// Close drains stray hedge losers, making both ledgers exact.
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := r.Stats()
	if st.HedgesFired == 0 || st.HedgeWins == 0 {
		t.Fatalf("slow-shard storm fired no winning hedges: %+v", st)
	}
	var want time.Duration
	for si, dev := range r.ShardChannelStats() {
		for _, chans := range dev {
			for _, ch := range chans {
				want += ch.Busy
			}
		}
		ds := r.ShardDiskStats()[si]
		want += time.Duration(ds.CacheHits)*cost.CacheHit + ds.QueuedDelay
	}
	if got := st.ChargedSim + st.WastedSim; got != want {
		t.Fatalf("charge conservation broken: charged %v + wasted %v = %v, device ledger %v",
			st.ChargedSim, st.WastedSim, got, want)
	}
	if st.ChargedSim == 0 {
		t.Fatal("no simulated time attributed to served answers")
	}
}
