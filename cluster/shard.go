package cluster

import (
	"context"
	"sync/atomic"
	"time"

	odyssey "spaceodyssey"
	"spaceodyssey/internal/simdisk"
)

// ShardState is the health state machine's verdict on one shard.
type ShardState int32

const (
	// StateUp: probes succeed and the shard's Explorer is not browned out.
	// Up replicas are preferred for every sub-query.
	StateUp ShardState = iota
	// StateDegraded: probes succeed but the shard reports degraded serving
	// (its brownout controller is engaged). Degraded replicas serve only
	// when no up replica exists — they still answer correctly, just under
	// fault pressure.
	StateDegraded
	// StateDown: DownAfter consecutive probes failed (crash window, manual
	// Crash, or closed Explorer). Down replicas are tried only as a last
	// resort, so a stale verdict can delay a query but never fail one.
	StateDown
)

func (s ShardState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDegraded:
		return "degraded"
	case StateDown:
		return "down"
	}
	return "unknown"
}

// shard wraps one member Explorer with its routing identity, its manual
// crash switch, and the counters the fault plan's ordinal windows consume.
type shard struct {
	id int
	ex *odyssey.Explorer
	r  *Router

	// crashed is the manual failure switch (Router.Crash/Restore); the
	// fault plan's crash windows are evaluated separately, so a restore
	// cannot cancel a planned window.
	crashed atomic.Bool

	// state is owned by the shard's prober; the router reads it when
	// ordering candidates.
	state atomic.Int32

	// serves / rejects / probes ledger the shard's traffic; transitions
	// counts the state machine's verdict changes.
	serves      atomic.Int64
	rejects     atomic.Int64
	probes      atomic.Int64
	probeErr    atomic.Int64
	transitions atomic.Int64
}

// down reports whether the shard is unable to serve right now: manually
// crashed, inside a planned crash window at query ordinal ord, or closed.
func (s *shard) down(ord int64) bool {
	return s.crashed.Load() || s.r.plan.Load().crashed(s.id, ord)
}

// serve runs one sub-query leg on this shard under a fresh charge scope.
// The returned duration is exactly the simulated time this leg charged —
// for a canceled leg, the I/O it performed before aborting — so the router
// can conserve charges across hedges without ever double-counting: two
// legs of one query can never share a scope, because serve always attaches
// a fresh one (preserving the caller's QoS class if the context carries
// one).
func (s *shard) serve(ctx context.Context, q odyssey.Box, datasets []odyssey.DatasetID, ord int64) ([]odyssey.Object, time.Duration, error) {
	if s.down(ord) {
		s.rejects.Add(1)
		return nil, 0, ErrShardDown
	}
	// Slow-shard storm: the injected stall is wall clock only, charged to
	// nobody, and cut short the moment the leg's context dies (a hedge
	// winner canceling the loser mid-stall).
	if d := s.r.plan.Load().slow(s.id, ord); d > 0 {
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, 0, simdisk.Canceled(ctx.Err())
		}
	}
	s.serves.Add(1)
	pri := simdisk.PriForeground
	if sc := simdisk.ScopeFrom(ctx); sc != nil {
		pri = sc.Priority()
	}
	ctx, _ = simdisk.WithOpScope(ctx, pri)
	return s.ex.QueryTimedCtx(ctx, q, datasets)
}

// probe is one health check: it fails while the shard is crashed (manual
// or planned), while the plan flaps this probe's ordinal, or once the
// Explorer is closed; otherwise it reports the unified health snapshot, so
// the prober reads brownout state, maintenance health and device fault
// counters in one call.
func (s *shard) probe() (odyssey.Health, error) {
	n := s.probes.Add(1)
	if s.r.plan.Load().flapped(s.id, n-1) {
		s.probeErr.Add(1)
		return odyssey.Health{}, ErrShardDown
	}
	if s.down(s.r.ord.Load()) {
		s.probeErr.Add(1)
		return odyssey.Health{}, ErrShardDown
	}
	h := s.ex.Health()
	if h.Closed {
		s.probeErr.Add(1)
		return h, ErrClosed
	}
	return h, nil
}
