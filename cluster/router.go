package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	odyssey "spaceodyssey"
	"spaceodyssey/internal/simdisk"
)

// RouterStats is the cluster serving ledger.
type RouterStats struct {
	// Queries counts queries submitted to the Router; every one ends in
	// exactly one of Served, Partial or Failed.
	Queries int64
	// SubQueries counts shard legs executed (failover retries and hedge
	// legs included).
	SubQueries int64
	// Served, Partial and Failed classify query outcomes: complete answer,
	// ServePartial subset, or error.
	Served  int64
	Partial int64
	Failed  int64
	// Failovers counts sub-queries moved to another replica after a
	// failoverable error; Retries counts the failover loop's non-first
	// attempts (each retry that switches shards is also a failover).
	Failovers int64
	Retries   int64
	// HedgesFired counts hedge legs launched after the p99 delay expired;
	// HedgeWins counts hedged legs whose response was the one returned;
	// HedgeDiscarded counts legs that completed successfully but lost the
	// first-response race.
	HedgesFired    int64
	HedgeWins      int64
	HedgeDiscarded int64
	// ShardRejects counts sub-queries rejected by crashed shards.
	ShardRejects int64
	// ChargedSim is the simulated time attributed to returned answers (the
	// winning leg of every served sub-query); WastedSim is the simulated
	// time charged by legs whose result was not returned — hedge losers and
	// failed or canceled legs. Their sum equals the shards' device-side
	// charge ledger exactly (busy + cache-hit + queueing): hedging
	// re-routes charges, it never double-counts them.
	ChargedSim time.Duration
	WastedSim  time.Duration
}

// Router fans range queries out over a set of Explorer shards, merges the
// sub-results deterministically, and survives shard failure through
// health-checked failover, hedged reads and (optionally) partial serving.
// It is safe for concurrent use; Close drains in-flight work and closes
// every shard.
type Router struct {
	cfg     Config
	shards  []*shard
	probers []*prober
	place   *placement
	tracker *latencyTracker

	// plan is the installed shard fault plan (nil = none).
	plan atomic.Pointer[ShardFaultPlan]
	// ord numbers queries; the fault plan's crash and slow windows are
	// evaluated against it.
	ord atomic.Int64
	// rr rotates reads across a group's live replicas.
	rr atomic.Uint64

	// legs tracks in-flight sub-query goroutines: a hedge loser may outlive
	// its query, and Close must wait it out before closing the shards.
	legs sync.WaitGroup

	// mu orders queries (shared) against AddDataset and Close (exclusive),
	// the Explorer's own discipline one level up.
	mu sync.RWMutex

	closed    atomic.Bool
	closeOnce sync.Once
	closeDone chan struct{}
	closeErr  error

	subQueries     atomic.Int64
	served         atomic.Int64
	partialCnt     atomic.Int64
	failed         atomic.Int64
	failovers      atomic.Int64
	retries        atomic.Int64
	hedgesFired    atomic.Int64
	hedgeWins      atomic.Int64
	hedgeDiscarded atomic.Int64
	chargedSim     atomic.Int64
	wastedSim      atomic.Int64
}

// New builds a cluster: cfg.Shards Explorers (each with its own simulated
// device) and their health probers. Datasets are registered afterwards with
// AddDataset / AddDatasetReplicated.
func New(cfg Config) (*Router, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > cfg.Shards {
		cfg.Replicas = cfg.Shards
	}
	cfg.Health = cfg.Health.withDefaults()
	cfg.Hedge = cfg.Hedge.withDefaults()
	r := &Router{
		cfg:       cfg,
		place:     newPlacement(cfg.Shards),
		tracker:   newLatencyTracker(cfg.Hedge.Window),
		closeDone: make(chan struct{}),
	}
	for i := 0; i < cfg.Shards; i++ {
		ex, err := odyssey.NewExplorer(cfg.Options)
		if err != nil {
			for _, s := range r.shards {
				s.ex.Close()
			}
			return nil, err
		}
		r.shards = append(r.shards, &shard{id: i, ex: ex, r: r})
	}
	for _, s := range r.shards {
		r.probers = append(r.probers, startProber(s, cfg.Health))
	}
	return r, nil
}

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// AddDataset registers a dataset on its cfg.Replicas replica shards.
func (r *Router) AddDataset(id odyssey.DatasetID, objs []odyssey.Object) error {
	return r.AddDatasetReplicated(id, objs, r.cfg.Replicas)
}

// AddDatasetReplicated registers a dataset with an explicit replication
// factor, overriding cfg.Replicas — the lever for keeping extra replicas of
// hot datasets. replicas is clamped to [1, Shards].
func (r *Router) AddDatasetReplicated(id odyssey.DatasetID, objs []odyssey.Object, replicas int) error {
	if r.closed.Load() {
		return ErrClosed
	}
	if replicas <= 0 {
		replicas = 1
	}
	if replicas > len(r.shards) {
		replicas = len(r.shards)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Load() {
		return ErrClosed
	}
	if _, dup := r.place.replicas[id]; dup {
		return fmt.Errorf("cluster: dataset %d already added", id)
	}
	set := make([]int, replicas)
	for i := range set {
		set[i] = (int(id) + i) % len(r.shards)
	}
	for _, si := range set {
		if err := r.shards[si].ex.AddDataset(id, objs); err != nil {
			return err
		}
	}
	r.place.replicas[id] = set
	return nil
}

// Replicas returns the ordered replica shard set of a dataset (nil when
// unknown).
func (r *Router) Replicas(id odyssey.DatasetID) []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	set := r.place.replicas[id]
	return append([]int(nil), set...)
}

// SetShardFaultPlan installs (or, with the zero plan, clears) the
// deterministic shard-level fault plan.
func (r *Router) SetShardFaultPlan(plan ShardFaultPlan) {
	if len(plan.Faults) == 0 {
		r.plan.Store(nil)
		return
	}
	r.plan.Store(&plan)
}

// Crash manually fails a shard: its sub-queries reject with ErrShardDown
// and its probes fail until Restore. The fault-injection surface tests and
// benchmarks drive; out of range indices are ignored.
func (r *Router) Crash(shard int) {
	if shard >= 0 && shard < len(r.shards) {
		r.shards[shard].crashed.Store(true)
	}
}

// Restore clears a manual Crash.
func (r *Router) Restore(shard int) {
	if shard >= 0 && shard < len(r.shards) {
		r.shards[shard].crashed.Store(false)
	}
}

// Query returns all objects intersecting q in the requested datasets, by
// fanning sub-queries out to the shards owning them and merging the
// answers into (dataset, id) order — a deterministic result set however
// the fan-out raced. See QueryCtx for the failure contract.
func (r *Router) Query(q odyssey.Box, datasets []odyssey.DatasetID) ([]odyssey.Object, error) {
	return r.QueryCtx(context.Background(), q, datasets)
}

// QueryCtx is Query with cancellation and deadline support. Sub-queries
// inherit ctx; each leg additionally runs under its own fresh charge scope
// (hedge legs never share one). When every replica of some requested
// dataset is unreachable the outcome follows cfg.Policy: FailFast returns
// an error wrapping ErrNoReplica; ServePartial returns the objects of the
// reachable datasets plus a *PartialError naming the missing ones.
func (r *Router) QueryCtx(ctx context.Context, q odyssey.Box, datasets []odyssey.DatasetID) ([]odyssey.Object, error) {
	if len(datasets) == 0 {
		return nil, fmt.Errorf("cluster: query names no datasets")
	}
	if r.closed.Load() {
		return nil, ErrClosed
	}
	if err := simdisk.CheckCtx(ctx); err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed.Load() {
		return nil, ErrClosed
	}
	ord := r.ord.Add(1) - 1
	groups, err := r.place.groups(datasets)
	if err != nil {
		r.failed.Add(1)
		return nil, err
	}
	type groupOut struct {
		objs []odyssey.Object
		err  error
	}
	outs := make([]groupOut, len(groups))
	var wg sync.WaitGroup
	for i := range groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			objs, err := r.serveGroup(ctx, q, groups[i], ord)
			outs[i] = groupOut{objs, err}
		}(i)
	}
	wg.Wait()

	var merged []odyssey.Object
	var missing []odyssey.DatasetID
	var cause error
	for i, o := range outs {
		switch {
		case o.err == nil:
			merged = append(merged, o.objs...)
		case errors.Is(o.err, ErrNoReplica):
			// An availability failure: every replica of this group was
			// exhausted. ServePartial keeps going; FailFast fails the query.
			if r.cfg.Policy == ServePartial {
				missing = append(missing, groups[i].datasets...)
				if cause == nil {
					cause = o.err
				}
				continue
			}
			r.failed.Add(1)
			return nil, o.err
		default:
			// A hard failure (cancellation, structural error) fails the
			// query under either policy.
			r.failed.Add(1)
			return nil, o.err
		}
	}
	if len(missing) == len(datasets) {
		// Nothing was served; a "partial" result with zero datasets is a
		// failure under any policy.
		r.failed.Add(1)
		return nil, cause
	}
	sortObjects(merged)
	if missing != nil {
		r.partialCnt.Add(1)
		return merged, &PartialError{Missing: missing, Cause: cause}
	}
	r.served.Add(1)
	return merged, nil
}

// failoverable classifies an error as a shard-availability failure worth
// trying another replica for: a crashed shard, a closed shard Explorer, or
// a device-level read fault that survived the shard's own page retries.
// Cancellations are never failed over — the caller gave up, and a
// canceled hedge loser must not look like an outage.
func failoverable(err error) bool {
	if err == nil || odyssey.IsCanceled(err) {
		return false
	}
	return errors.Is(err, ErrShardDown) || errors.Is(err, odyssey.ErrClosed) ||
		errors.Is(err, odyssey.ErrTransient) || errors.Is(err, odyssey.ErrPermanent)
}

// orderCandidates orders a group's replica shards for serving: up shards
// first (rotated so reads spread across replicas), then degraded, then
// down — down shards stay in the list as a last resort, so a stale or
// flapped health verdict can cost a failed attempt but never manufacture
// an outage on its own.
func (r *Router) orderCandidates(replicas []int, ord int64) []*shard {
	var up, deg, down []*shard
	for _, id := range replicas {
		s := r.shards[id]
		switch {
		case s.down(ord) || ShardState(s.state.Load()) == StateDown:
			down = append(down, s)
		case ShardState(s.state.Load()) == StateDegraded:
			deg = append(deg, s)
		default:
			up = append(up, s)
		}
	}
	if len(up) > 1 {
		rot := int(r.rr.Add(1) % uint64(len(up)))
		rotated := make([]*shard, 0, len(up))
		rotated = append(rotated, up[rot:]...)
		rotated = append(rotated, up[:rot]...)
		up = rotated
	}
	return append(append(up, deg...), down...)
}

// serveGroup answers one fan-out group, failing over across its replicas
// under the budgeted retry/backoff policy. Exhausting every attempt wraps
// ErrNoReplica — the signal the partial policy keys on.
func (r *Router) serveGroup(ctx context.Context, q odyssey.Box, g group, ord int64) ([]odyssey.Object, error) {
	cands := r.orderCandidates(g.replicas, ord)
	pol := r.cfg.Failover
	attempts := pol.MaxAttempts
	if attempts <= 1 {
		attempts = len(cands)
	}
	backoff := pol.Backoff
	var slept time.Duration
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			r.retries.Add(1)
			if backoff > 0 {
				if pol.Budget > 0 && slept+backoff > pol.Budget {
					return nil, fmt.Errorf("%w: failover budget %v exhausted after %d attempts: %w",
						ErrNoReplica, pol.Budget, a, lastErr)
				}
				timer := time.NewTimer(backoff)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					return nil, simdisk.Canceled(ctx.Err())
				}
				slept += backoff
				backoff *= 2
			}
		}
		s := cands[a%len(cands)]
		var alt *shard
		if r.cfg.Hedge.Enabled && len(cands) > 1 {
			alt = cands[(a+1)%len(cands)]
		}
		objs, err := r.runHedged(ctx, q, g.datasets, s, alt, ord)
		if err == nil {
			return objs, nil
		}
		lastErr = err
		if !failoverable(err) {
			return nil, err
		}
		if a+1 < attempts {
			r.failovers.Add(1)
		}
	}
	return nil, fmt.Errorf("%w: %v replicas exhausted: %w", ErrNoReplica, len(cands), lastErr)
}

// runHedged executes one sub-query on shard s, hedging onto alt (when
// non-nil) if s has not answered within the tracked p99 delay. First
// response wins by CAS — the dispatcher sweeper's arbitration idiom one
// level up — and winning cancels the other leg mid-flight through the
// ordinary QueryCtx machinery. Every leg runs under its own fresh charge
// scope inside shard.serve, and a losing leg's charges are ledgered as
// WastedSim by the leg itself, so charge conservation stays exact and
// nothing is ever double-counted.
func (r *Router) runHedged(ctx context.Context, q odyssey.Box, dss []odyssey.DatasetID, s, alt *shard, ord int64) ([]odyssey.Object, error) {
	type legOut struct {
		objs []odyssey.Object
		err  error
		won  bool
	}
	lctx, cancel := context.WithCancel(ctx)
	defer cancel()
	won := new(atomic.Bool)
	out := make(chan legOut, 2)
	leg := func(sh *shard, hedge bool) {
		r.legs.Add(1)
		go func() {
			defer r.legs.Done()
			t0 := time.Now()
			objs, dur, err := sh.serve(lctx, q, dss, ord)
			r.subQueries.Add(1)
			if err == nil && won.CompareAndSwap(false, true) {
				r.chargedSim.Add(int64(dur))
				// Only returned latencies feed the hedge trigger: the p99
				// tracks what callers experience, so a slow-shard storm
				// cannot disarm hedging by inflating it.
				r.tracker.observe(time.Since(t0))
				if hedge {
					r.hedgeWins.Add(1)
				}
				cancel() // cut the losing leg short
				out <- legOut{objs: objs, won: true}
				return
			}
			// Lost the race, or failed: real device work whose result is
			// not returned — ledger it so conservation stays exact.
			r.wastedSim.Add(int64(dur))
			if err == nil {
				r.hedgeDiscarded.Add(1)
			}
			out <- legOut{err: err}
		}()
	}
	leg(s, false)
	launched := 1
	var hedgeCh <-chan time.Time
	if alt != nil {
		timer := time.NewTimer(r.tracker.delay(r.cfg.Hedge))
		defer timer.Stop()
		hedgeCh = timer.C
	}
	var lastErr error
	for got := 0; got < launched; {
		select {
		case o := <-out:
			got++
			if o.won {
				return o.objs, nil
			}
			if o.err != nil {
				lastErr = o.err
			}
		case <-hedgeCh:
			hedgeCh = nil
			r.hedgesFired.Add(1)
			launched++
			leg(alt, true)
		}
	}
	if lastErr == nil {
		lastErr = ErrShardDown
	}
	return nil, lastErr
}

// Stats snapshots the cluster serving ledger. Under concurrent load the
// snapshot is per-counter consistent; after Close it is exact.
func (r *Router) Stats() RouterStats {
	var rejects int64
	for _, s := range r.shards {
		rejects += s.rejects.Load()
	}
	return RouterStats{
		Queries:        r.ord.Load(),
		SubQueries:     r.subQueries.Load(),
		Served:         r.served.Load(),
		Partial:        r.partialCnt.Load(),
		Failed:         r.failed.Load(),
		Failovers:      r.failovers.Load(),
		Retries:        r.retries.Load(),
		HedgesFired:    r.hedgesFired.Load(),
		HedgeWins:      r.hedgeWins.Load(),
		HedgeDiscarded: r.hedgeDiscarded.Load(),
		ShardRejects:   rejects,
		ChargedSim:     time.Duration(r.chargedSim.Load()),
		WastedSim:      time.Duration(r.wastedSim.Load()),
	}
}

// Health snapshots every shard's health: prober verdict, probe and serve
// ledgers.
func (r *Router) Health() []ShardHealth {
	out := make([]ShardHealth, len(r.shards))
	for i, s := range r.shards {
		out[i] = ShardHealth{
			Shard:         i,
			State:         ShardState(s.state.Load()),
			Probes:        s.probes.Load(),
			ProbeFailures: s.probeErr.Load(),
			Transitions:   s.transitions.Load(),
			Serves:        s.serves.Load(),
			Rejects:       s.rejects.Load(),
		}
	}
	return out
}

// ShardMetrics returns each shard Explorer's engine counters — the
// convergence signal measurement harnesses watch (no refinements or merges
// across a pass means the shard layouts are settled).
func (r *Router) ShardMetrics() []odyssey.Metrics {
	out := make([]odyssey.Metrics, len(r.shards))
	for i, s := range r.shards {
		out[i] = s.ex.Metrics()
	}
	return out
}

// ShardDiskStats returns each shard Explorer's device counters.
func (r *Router) ShardDiskStats() []odyssey.DiskStats {
	out := make([]odyssey.DiskStats, len(r.shards))
	for i, s := range r.shards {
		out[i] = s.ex.DiskStats()
	}
	return out
}

// ShardChannelStats returns each shard's per-device, per-channel counters
// (outer index: shard).
func (r *Router) ShardChannelStats() [][][]odyssey.ChannelStats {
	out := make([][][]odyssey.ChannelStats, len(r.shards))
	for i, s := range r.shards {
		out[i] = s.ex.ChannelStats()
	}
	return out
}

// ResetStats zeroes every shard's device counters (see
// Explorer.ResetStats); ResetClocks zeroes their simulated clocks.
// Measurement harnesses call them between phases; must not race in-flight
// queries whose numbers matter.
func (r *Router) ResetStats() {
	for _, s := range r.shards {
		s.ex.ResetStats()
	}
}

// ResetClocks zeroes every shard's simulated clock.
func (r *Router) ResetClocks() {
	for _, s := range r.shards {
		s.ex.ResetClock()
	}
}

// SetRealTimeScale fans the real-time emulation scale out to every shard.
func (r *Router) SetRealTimeScale(scale float64) {
	for _, s := range r.shards {
		s.ex.SetRealTimeScale(scale)
	}
}

// Quiesce drains every shard's background maintenance pipeline.
func (r *Router) Quiesce(ctx context.Context) error {
	for _, s := range r.shards {
		if err := s.ex.Quiesce(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts the cluster down: new queries and registrations fail fast
// with ErrClosed, in-flight queries are waited out, stray hedge losers are
// drained, the probers stop, and every shard Explorer is closed (which
// itself drains shard-side maintenance before closing its device).
// Idempotent and safe to call concurrently with queries.
func (r *Router) Close() error {
	r.closeOnce.Do(func() {
		r.closed.Store(true)
		// Probers go first: they read shard health snapshots and must be
		// gone before the shard Explorers shut down.
		for _, p := range r.probers {
			p.stop()
		}
		// Taking mu exclusively waits out every in-flight query; new ones
		// fail fast on the flag.
		r.mu.Lock()
		defer r.mu.Unlock()
		// A hedge loser can outlive the query that launched it; no new leg
		// can start now (legs are launched under the query's read lock), so
		// this wait is bounded by the losers' cancellation latency.
		r.legs.Wait()
		for _, s := range r.shards {
			if err := s.ex.Close(); err != nil && r.closeErr == nil {
				r.closeErr = err
			}
		}
		close(r.closeDone)
	})
	<-r.closeDone
	return r.closeErr
}
