package cluster

import (
	"sort"
	"sync"
	"time"
)

// latencyTracker keeps a bounded ring of recent served sub-query wall
// latencies and answers their p99 — the hedge trigger. Only latencies that
// were actually returned to a caller are recorded (the winning leg of a
// hedged pair, or the sole leg of an unhedged serve): a slow loser's
// latency never enters the ring, so a slow-shard storm cannot drag the p99
// up to its own stall and disarm the very hedging that routes around it.
type latencyTracker struct {
	mu   sync.Mutex
	ring []time.Duration
	next int
	full bool
}

func newLatencyTracker(window int) *latencyTracker {
	return &latencyTracker{ring: make([]time.Duration, window)}
}

// observe records one served latency.
func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.ring[t.next] = d
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// p99 returns the 99th percentile of the retained window (0 when empty).
func (t *latencyTracker) p99() time.Duration {
	t.mu.Lock()
	n := t.next
	if t.full {
		n = len(t.ring)
	}
	sample := make([]time.Duration, n)
	copy(sample, t.ring[:n])
	t.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	idx := (99*n + 99) / 100
	if idx >= n {
		idx = n - 1
	}
	return sample[idx]
}

// delay is the hedge trigger: the tracked p99 clamped into the configured
// [MinDelay, MaxDelay] band. A cold tracker answers MinDelay — hedging
// engages conservatively until evidence arrives.
func (t *latencyTracker) delay(cfg HedgeConfig) time.Duration {
	d := t.p99()
	if d < cfg.MinDelay {
		d = cfg.MinDelay
	}
	if d > cfg.MaxDelay {
		d = cfg.MaxDelay
	}
	return d
}
