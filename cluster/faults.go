package cluster

import "time"

// ShardFaultPlan is the shard-level fault-injection plan — the device
// FaultPlan's discipline promoted one fault domain up. It is fully
// deterministic: every window is expressed in ordinals the cluster itself
// counts (router query ordinals for crash and slow windows, per-shard probe
// ordinals for flaps), never in wall-clock time, so the same workload
// replayed through the same plan sees exactly the same faults. Install it
// with Router.SetShardFaultPlan; the zero plan injects nothing.
type ShardFaultPlan struct {
	// Faults is the list of injected shard faults; multiple entries may
	// target the same shard.
	Faults []ShardFault
}

// ShardFault describes the injected failure modes of one shard. Each
// window is half-open — active for ordinals in [After, After+For).
type ShardFault struct {
	// Shard is the target shard index.
	Shard int

	// Crash window, in router query ordinals: while the router's query
	// count is inside [CrashAfter, CrashAfter+CrashFor), every sub-query
	// routed to this shard is rejected with ErrShardDown (zero charge — a
	// crashed shard does no work) and its health probes fail. CrashFor <= 0
	// injects no crash.
	CrashAfter, CrashFor int64

	// Slow-shard storm, in router query ordinals: while the query count is
	// inside [SlowAfter, SlowAfter+SlowFor), every sub-query served by this
	// shard first sleeps SlowDelay of wall-clock time (canceled early if
	// the sub-query's context dies — a hedge winner cuts the sleeping
	// loser short). The delay is pure wall clock: simulated charges and
	// query results are untouched, exactly like the device layer's latency
	// spikes. SlowFor <= 0 or SlowDelay <= 0 injects no storm.
	SlowAfter, SlowFor int64
	SlowDelay          time.Duration

	// Probe flap window, in this shard's probe ordinals: probes numbered
	// [FlapAfter, FlapAfter+FlapFor) fail without the shard being any less
	// able to serve — the failure mode the health state machine's
	// hysteresis exists to absorb. FlapFor <= 0 injects no flaps.
	FlapAfter, FlapFor int64
}

// crashed reports whether shard is inside a crash window at query ordinal
// ord.
func (p *ShardFaultPlan) crashed(shard int, ord int64) bool {
	if p == nil {
		return false
	}
	for _, f := range p.Faults {
		if f.Shard == shard && f.CrashFor > 0 &&
			ord >= f.CrashAfter && ord < f.CrashAfter+f.CrashFor {
			return true
		}
	}
	return false
}

// slow returns the injected wall-clock delay for a sub-query served by
// shard at query ordinal ord (0 when outside every storm window).
func (p *ShardFaultPlan) slow(shard int, ord int64) time.Duration {
	if p == nil {
		return 0
	}
	for _, f := range p.Faults {
		if f.Shard == shard && f.SlowFor > 0 && f.SlowDelay > 0 &&
			ord >= f.SlowAfter && ord < f.SlowAfter+f.SlowFor {
			return f.SlowDelay
		}
	}
	return 0
}

// flapped reports whether shard's probe number probeOrd is inside a flap
// window.
func (p *ShardFaultPlan) flapped(shard int, probeOrd int64) bool {
	if p == nil {
		return false
	}
	for _, f := range p.Faults {
		if f.Shard == shard && f.FlapFor > 0 &&
			probeOrd >= f.FlapAfter && probeOrd < f.FlapAfter+f.FlapFor {
			return true
		}
	}
	return false
}
