// Package cluster scales the Space Odyssey serving stack out horizontally:
// N Explorer shards (dataset-partitioned, with replication factor R) behind
// a Router that fans range queries out to the shards owning the requested
// datasets, merges the sub-results deterministically, and survives shard
// failure. It promotes the fault-tolerance discipline PR 8 built at the
// device level to a new fault domain — the whole shard:
//
//   - Per-shard health checking: a probe loop per shard feeds an
//     up/degraded/down state machine with hysteresis (the brownout
//     controller pattern), so routing prefers live replicas without
//     flapping on one stray probe.
//   - Automatic failover: reads retry against the next replica under a
//     budgeted retry/backoff policy (the RetryPolicy shape of the
//     storage-read retries), so a crashed shard costs a failover, not an
//     outage, as long as a replica lives.
//   - Hedged requests: when a sub-query outlives the tracked p99 of recent
//     served latencies, a hedge fires against another live replica; the
//     first response wins (CAS arbitration, the dispatcher sweeper's
//     idiom) and the loser is canceled through the ordinary QueryCtx
//     machinery. Every leg runs under its own fresh charge scope, so
//     hedging can never double-count cache or charge statistics — the
//     loser's partial charges are ledgered as HedgeWastedSim, keeping the
//     cluster-wide charge conservation identity exact.
//   - Graceful degradation: when a dataset has no live replica the Router
//     either fails fast (default) or, under ServePartial, returns the
//     served subset with a PartialError naming the missing datasets.
//
// Shard-level fault injection (ShardFaultPlan: crash windows, slow-shard
// storms, probe flaps) is deterministic — windows are expressed in query
// and probe ordinals, not wall clock — so every failure mode above is
// testable and benchmarkable; results are pinned byte-identical to a
// single Explorer over the union of datasets, including mid-crash.
package cluster

import (
	"errors"
	"fmt"
	"time"

	odyssey "spaceodyssey"
)

// Sentinel errors of the cluster layer.
var (
	// ErrClosed is returned by Query/AddDataset after Router.Close.
	ErrClosed = errors.New("cluster: router closed")

	// ErrShardDown marks a sub-query rejected by a crashed shard (manual
	// Crash, or a ShardFaultPlan crash window). The Router fails such
	// sub-queries over to the next replica; callers see it only when every
	// replica of a dataset is down.
	ErrShardDown = errors.New("cluster: shard down")

	// ErrNoReplica means a requested dataset had no live replica and every
	// failover attempt was exhausted. Under the default FailFast policy the
	// whole query fails with it; under ServePartial it appears inside the
	// PartialError's cause.
	ErrNoReplica = errors.New("cluster: no live replica for dataset")

	// ErrPartial marks a query answered from a subset of its datasets
	// (PartialPolicy ServePartial): the returned objects are complete for
	// every served dataset, and the PartialError wrapping this sentinel
	// names the missing ones.
	ErrPartial = errors.New("cluster: partial result")
)

// PartialError is the ServePartial outcome: the query was answered, but
// only from the datasets whose shards were reachable. It wraps ErrPartial
// (and the last failover error as the cause), so errors.Is(err, ErrPartial)
// identifies it.
type PartialError struct {
	// Missing lists the requested datasets no live replica could serve.
	Missing []odyssey.DatasetID
	// Cause is the last failover error of the first missing group.
	Cause error
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("cluster: partial result, %d dataset(s) unavailable: %v", len(e.Missing), e.Cause)
}

func (e *PartialError) Unwrap() []error { return []error{ErrPartial, e.Cause} }

// PartialPolicy selects what a query returns when some requested dataset
// has no live replica.
type PartialPolicy int

const (
	// FailFast (default) fails the whole query with an error wrapping
	// ErrNoReplica: callers that need the complete answer get a clean
	// failure, never a silently truncated result set.
	FailFast PartialPolicy = iota
	// ServePartial returns the objects of every reachable dataset together
	// with a *PartialError naming the missing ones — availability over
	// completeness, for callers that degrade gracefully.
	ServePartial
)

// HealthConfig tunes the per-shard probe loop and its hysteresis.
type HealthConfig struct {
	// ProbeInterval is the probe loop's period (default 5ms).
	ProbeInterval time.Duration
	// DownAfter is how many consecutive probe failures mark a shard down
	// (default 2). A single flapped probe never changes routing.
	DownAfter int
	// UpAfter is how many consecutive probe successes bring a down shard
	// back up (default 2) — hysteresis against flapping at the boundary.
	UpAfter int
}

func (h HealthConfig) withDefaults() HealthConfig {
	if h.ProbeInterval <= 0 {
		h.ProbeInterval = 5 * time.Millisecond
	}
	if h.DownAfter <= 0 {
		h.DownAfter = 2
	}
	if h.UpAfter <= 0 {
		h.UpAfter = 2
	}
	return h
}

// HedgeConfig tunes hedged sub-queries (off by default).
type HedgeConfig struct {
	// Enabled turns hedging on: a sub-query that outlives the hedge delay
	// fires a second leg against another live replica; first response wins.
	Enabled bool
	// MinDelay floors the hedge delay (default 2ms): the tracker's p99 is
	// never trusted below it, so a cold tracker does not hedge everything.
	MinDelay time.Duration
	// MaxDelay caps the hedge delay (default 250ms), bounding how long a
	// stuck shard can defer its hedge.
	MaxDelay time.Duration
	// Window is how many recent served latencies the p99 tracker retains
	// (default 512). Only winning legs feed the tracker — a slow loser's
	// latency never drags the p99 up, so hedging keeps engaging for the
	// whole length of a slow-shard storm.
	Window int
}

func (h HedgeConfig) withDefaults() HedgeConfig {
	if h.MinDelay <= 0 {
		h.MinDelay = 2 * time.Millisecond
	}
	if h.MaxDelay <= 0 {
		h.MaxDelay = 250 * time.Millisecond
	}
	if h.Window <= 0 {
		h.Window = 512
	}
	return h
}

// Config configures a cluster.
type Config struct {
	// Shards is the shard count N (default 2).
	Shards int
	// Replicas is the replication factor R applied to every dataset added
	// with AddDataset (default 1 — partitioning only). Clamped to Shards.
	// AddDatasetReplicated overrides it per dataset, so hot datasets can
	// carry more replicas than the cold tail.
	Replicas int
	// Options configures each shard's Explorer. Every shard gets the same
	// options (its own simulated device, cache, and maintenance pipeline).
	Options odyssey.Options
	// Policy selects the no-live-replica behaviour (default FailFast).
	Policy PartialPolicy
	// Failover is the budgeted retry/backoff policy for failing a
	// sub-query over to the next replica: MaxAttempts bounds total serve
	// attempts per replica group (<= 1 defaults to one attempt per
	// replica), Backoff is the wall-clock sleep before the first retry
	// (doubling per retry), Budget caps the cumulative backoff. The shape
	// is the storage layer's RetryPolicy, one fault domain up.
	Failover odyssey.RetryPolicy
	// Health tunes the per-shard probe loop.
	Health HealthConfig
	// Hedge tunes hedged sub-queries.
	Hedge HedgeConfig
}
