package cluster

import "time"

// ShardHealth is one shard's externally visible health snapshot
// (Router.Health).
type ShardHealth struct {
	// Shard is the shard index.
	Shard int
	// State is the state machine's current verdict.
	State ShardState
	// Probes and ProbeFailures count the probe loop's activity.
	Probes        int64
	ProbeFailures int64
	// Transitions counts state changes (up->down, down->up, ...); a
	// well-damped cluster under probe flaps keeps this near zero.
	Transitions int64
	// Serves and Rejects count sub-queries this shard answered and
	// sub-queries it rejected while crashed.
	Serves  int64
	Rejects int64
}

// prober is one shard's health loop: the brownout controller pattern (a
// sampling goroutine, explicit stop/done lifetime) feeding an
// up/degraded/down state machine with hysteresis. A shard goes down only
// after DownAfter consecutive probe failures and comes back only after
// UpAfter consecutive successes, so a single flapped probe moves nothing;
// the degraded verdict follows the shard's own brownout controller through
// the unified Health snapshot.
type prober struct {
	s   *shard
	cfg HealthConfig

	stopCh chan struct{}
	done   chan struct{}

	// fails / oks are the consecutive-outcome streaks; transitions counts
	// verdict changes. All owned by the run goroutine; transitions is
	// mirrored into the shard's health snapshot under the router's stats
	// read, so it lives on the shard.
	fails int
	oks   int
}

func startProber(s *shard, cfg HealthConfig) *prober {
	p := &prober{
		s:      s,
		cfg:    cfg,
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	go p.run()
	return p
}

func (p *prober) stop() {
	close(p.stopCh)
	<-p.done
}

// step feeds one probe outcome through the state machine. Split from run
// so the hysteresis trajectory is exactly unit-testable without clocks.
func (p *prober) step(degraded bool, err error) {
	cur := ShardState(p.s.state.Load())
	switch {
	case err != nil:
		p.oks = 0
		p.fails++
		if cur != StateDown && p.fails >= p.cfg.DownAfter {
			p.transition(StateDown)
		}
	default:
		p.fails = 0
		p.oks++
		next := StateUp
		if degraded {
			next = StateDegraded
		}
		switch cur {
		case StateDown:
			// Coming back from down needs a streak; flapping at the
			// boundary must not bounce routing.
			if p.oks >= p.cfg.UpAfter {
				p.transition(next)
			}
		default:
			if next != cur {
				p.transition(next)
			}
		}
	}
}

func (p *prober) transition(next ShardState) {
	p.s.state.Store(int32(next))
	p.s.transitions.Add(1)
	p.oks, p.fails = 0, 0
}

func (p *prober) run() {
	defer close(p.done)
	ticker := time.NewTicker(p.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stopCh:
			return
		case <-ticker.C:
		}
		h, err := p.s.probe()
		p.step(h.Degraded, err)
	}
}
