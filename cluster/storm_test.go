package cluster

// Race-mode oracle storm for the cluster layer: the drift scenario replayed
// through a 4-shard R=2 cluster from many submitting goroutines at once —
// with a shard crashed mid-storm, probes flapping, and a slow-shard storm
// engaging hedged reads — must return byte-identical results to a single
// Explorer over the union of the datasets, serve every query, and leak no
// goroutines. `go test -race ./cluster` sweeps the router fan-out, the CAS
// hedge arbitration, the probers and the fault windows under contention.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	odyssey "spaceodyssey"
	"spaceodyssey/internal/workload"
)

// stormWorkload is the drift scenario the root package's adaptive storm
// uses, over the same six datasets.
func stormWorkload(t *testing.T) ([][]odyssey.Object, workload.ScenarioWorkload) {
	t.Helper()
	data := odyssey.GenerateDatasets(odyssey.DataConfig{Seed: 7, NumObjects: 4000, Clusters: 6}, 6)
	w, err := workload.GenerateScenario("drift", workload.ScenarioConfig{
		Seed: 99, NumQueries: 120, NumDatasets: 6, DatasetsPerQuery: 2,
		QueryVolumeFrac: 2e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data, w
}

// TestClusterStormMatchesOracle is the acceptance storm: 8 concurrent
// submitters through a 4-shard R=2 cluster whose fault plan crashes one
// shard mid-storm, flaps another's probes, and stalls a third long enough
// for hedged reads to fire. Every answer must be byte-identical to the
// single-Explorer oracle, every query must be served (a crashed shard with
// a live replica is a failover, never an outage), and Close must wind every
// goroutine down.
func TestClusterStormMatchesOracle(t *testing.T) {
	before := runtime.NumGoroutine()
	data, w := stormWorkload(t)
	ref := newOracle(t, odyssey.Options{}, data)
	want := make([][]odyssey.Object, len(w.Queries))
	for i, q := range w.Queries {
		objs, err := ref.Query(q.Range, q.Datasets)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = objs
	}
	ref.Close()

	r := newCluster(t, Config{
		Shards: 4, Replicas: 2,
		Failover: odyssey.RetryPolicy{MaxAttempts: 3, Backoff: 200 * time.Microsecond, Budget: 50 * time.Millisecond},
		Hedge:    HedgeConfig{Enabled: true, MinDelay: 2 * time.Millisecond},
		Health:   HealthConfig{ProbeInterval: time.Millisecond},
	}, data)
	// Deterministic weather, in query/probe ordinals: shard 1 crashes for a
	// third of the storm, shard 2's probes flap (serving untouched — the
	// hysteresis must absorb it), and shard 3 stalls every serve in a late
	// window so hedges fire against its replica peers.
	r.SetShardFaultPlan(ShardFaultPlan{Faults: []ShardFault{
		{Shard: 1, CrashAfter: 20, CrashFor: 40},
		{Shard: 2, FlapAfter: 3, FlapFor: 2},
		{Shard: 3, SlowAfter: 60, SlowFor: 40, SlowDelay: 15 * time.Millisecond},
	}})

	got := make([][]odyssey.Object, len(w.Queries))
	const stormers = 8
	var wg sync.WaitGroup
	for s := 0; s < stormers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < len(w.Queries); i += stormers {
				objs, err := r.Query(w.Queries[i].Range, w.Queries[i].Datasets)
				if err != nil {
					t.Errorf("query %d failed mid-storm: %v", i, err)
					return
				}
				got[i] = objs
			}
		}(s)
	}
	wg.Wait()
	if t.Failed() {
		r.Close()
		t.Fatalf("storm availability broken; stats: %+v", r.Stats())
	}
	for i := range want {
		if !sameObjects(got[i], want[i]) {
			t.Fatalf("query %d: cluster returned %d objects, oracle %d",
				i, len(got[i]), len(want[i]))
		}
	}

	st := r.Stats()
	if st.Served != int64(len(w.Queries)) || st.Partial != 0 || st.Failed != 0 {
		t.Fatalf("outcome ledger = %+v, want all %d served", st, len(w.Queries))
	}
	if st.Queries != st.Served+st.Partial+st.Failed {
		t.Fatalf("query ledger does not balance: %+v", st)
	}
	if st.HedgesFired == 0 {
		t.Fatalf("the slow-shard window fired no hedges: %+v", st)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close after the storm: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+2 {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutines did not settle after Close: %d before, %d after", before, g)
	}
}

// TestRouterCloseDuringHedgedStorm mirrors the Explorer's mid-storm close
// test one fault domain up: Close lands while hedged sub-queries are in
// flight against a stalled shard and another shard is crashed. Every
// goroutine — probers, hedge losers sleeping in the stall, shard
// maintenance pipelines — must wind down, the maintenance ledgers must
// balance, and the closed Router must fail fast with ErrClosed everywhere.
func TestRouterCloseDuringHedgedStorm(t *testing.T) {
	before := runtime.NumGoroutine()
	data := testData(3)
	r := newCluster(t, Config{
		Shards: 2, Replicas: 2,
		Options: odyssey.Options{AsyncMaintenance: true, MaintenanceWorkers: 2},
		Hedge:   HedgeConfig{Enabled: true, MinDelay: 2 * time.Millisecond},
	}, data)
	// Shard 0 stalls every serve far past the hedge delay: most queries
	// have a hedge leg in flight (and a loser sleeping in the stall) when
	// Close lands.
	r.SetShardFaultPlan(ShardFaultPlan{Faults: []ShardFault{{
		Shard: 0, SlowAfter: 0, SlowFor: 1 << 40, SlowDelay: 40 * time.Millisecond,
	}}})

	hot := odyssey.Cube(odyssey.V(0.4, 0.45, 0.5), 0.1)
	dss := []odyssey.DatasetID{0, 1, 2}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				r.Query(hot, dss) // hedges, stalls and ErrClosed all expected
			}
		}()
	}
	time.Sleep(15 * time.Millisecond)
	r.Crash(1) // the fast replica dies with hedges still in flight
	if err := r.Close(); err != nil {
		t.Fatalf("Close mid-storm: %v", err)
	}
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// The closed Router fails fast everywhere.
	if _, err := r.Query(hot, dss); !errors.Is(err, ErrClosed) {
		t.Errorf("Query after Close = %v, want ErrClosed", err)
	}
	if _, err := r.QueryCtx(context.Background(), hot, dss); !errors.Is(err, ErrClosed) {
		t.Errorf("QueryCtx after Close = %v, want ErrClosed", err)
	}
	extra := odyssey.GenerateDatasets(odyssey.DataConfig{Seed: 18, NumObjects: 100, Clusters: 1}, 4)[3]
	if err := r.AddDataset(3, extra); !errors.Is(err, ErrClosed) {
		t.Errorf("AddDataset after Close = %v, want ErrClosed", err)
	}

	// Every shard's maintenance ledger balances: Close drained the
	// pipelines before closing the devices.
	for i, s := range r.shards {
		if st := s.ex.MaintenanceStats(); st.Queued != st.Completed+st.Failed+st.Dropped {
			t.Errorf("shard %d maintenance ledger does not balance after Close: %+v", i, st)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+2 {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutines did not settle after mid-storm Close: %d before, %d after", before, g)
	}
}
