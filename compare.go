package odyssey

import (
	"time"

	"spaceodyssey/internal/bench"
	"spaceodyssey/internal/workload"
)

// BaselineKind names an engine for comparison runs.
type BaselineKind = bench.EngineKind

// The engines available to Compare — Space Odyssey, its no-merging
// ablation, and every baseline of the paper's evaluation.
const (
	EngineOdyssey        = bench.KindOdyssey
	EngineOdysseyNoMerge = bench.KindOdysseyNoMerge
	EngineFLATAin1       = bench.KindFLATAin1
	EngineFLAT1fE        = bench.KindFLAT1fE
	EngineRTreeAin1      = bench.KindRTreeAin1
	EngineRTree1fE       = bench.KindRTree1fE
	EngineGrid1fE        = bench.KindGrid1fE
	EngineGridAin1       = bench.KindGridAin1
	EngineNaiveScan      = bench.KindNaive
)

// ComparisonResult summarizes one engine's run over a workload.
type ComparisonResult struct {
	Engine BaselineKind
	// IndexTime is the upfront build cost (zero for adaptive engines).
	IndexTime time.Duration
	// QueryTime is the summed per-query simulated time.
	QueryTime time.Duration
	// Total = IndexTime + QueryTime.
	Total time.Duration
	// FirstQuery and LastQuery expose the convergence shape.
	FirstQuery, LastQuery time.Duration
	// PerQuery holds every individual latency.
	PerQuery []time.Duration
	// Objects is the total result cardinality (identical across engines
	// for the same workload — verified by the test suite).
	Objects int
	// Metrics is non-nil for the Odyssey engines.
	Metrics *Metrics
}

// CompareOptions tunes a Compare run.
type CompareOptions struct {
	// Bounds of the shared volume (default unit box).
	Bounds Box
	// Cost model (default SAS).
	Cost CostModel
	// CachePages for the buffer cache (default 1024).
	CachePages int
	// GridCells for the Grid baselines (default 8 at laptop scale).
	GridCells int
}

// Compare runs the same workload against several engines, each on its own
// fresh simulated disk holding identical raw files, following the paper's
// methodology (caches dropped before every query). Dataset i of data must
// be tagged DatasetID(i).
func Compare(data [][]Object, w Workload, engines []BaselineKind, opts CompareOptions) ([]ComparisonResult, error) {
	cfg := bench.DefaultConfig()
	if opts.Bounds.Volume() > 0 {
		cfg.Bounds = opts.Bounds
	}
	zero := CostModel{}
	if opts.Cost != zero {
		cfg.Cost = opts.Cost
	}
	if opts.CachePages > 0 {
		cfg.CachePages = opts.CachePages
	}
	if opts.GridCells > 0 {
		cfg.GridCells = opts.GridCells
	}
	env := bench.NewEnvWithData(cfg, data)

	out := make([]ComparisonResult, 0, len(engines))
	for _, kind := range engines {
		r, err := env.Run(kind, workload.Workload(w))
		if err != nil {
			return nil, err
		}
		cr := ComparisonResult{
			Engine:    kind,
			IndexTime: r.IndexTime,
			QueryTime: r.QueryTotal(),
			Total:     r.Total(),
			PerQuery:  r.QueryTimes,
			Objects:   r.ObjectsReturned,
			Metrics:   r.Metrics,
		}
		if len(r.QueryTimes) > 0 {
			cr.FirstQuery = r.QueryTimes[0]
			cr.LastQuery = r.QueryTimes[len(r.QueryTimes)-1]
		}
		out = append(out, cr)
	}
	return out, nil
}
