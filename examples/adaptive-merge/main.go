// Adaptive-merge demo: isolates the effect of the Merger (the paper's
// Figure 5c). A popular combination of five datasets is queried repeatedly
// in a few hot areas; once the combination crosses the merge threshold,
// Space Odyssey copies the co-queried partitions into an append-only merge
// file so one (mostly) sequential read replaces five random ones. Running
// the same workload with merging disabled shows what the reorganization
// buys.
//
//	go run ./examples/adaptive-merge
package main

import (
	"fmt"
	"log"
	"time"

	odyssey "spaceodyssey"
)

func main() {
	const numDatasets = 8
	data := odyssey.GenerateDatasets(odyssey.DataConfig{
		Seed: 21, NumObjects: 25000, Clusters: 10,
	}, numDatasets)

	// Zipf combinations with 5 query cluster centers, like Figure 5c: one
	// combination dominates and its areas stay hot.
	w, err := odyssey.GenerateWorkload(odyssey.WorkloadConfig{
		Seed:             9,
		NumQueries:       400,
		NumDatasets:      numDatasets,
		DatasetsPerQuery: 5,
		QueryVolumeFrac:  2e-5,
		RangeDist:        odyssey.RangeClustered,
		CombDist:         odyssey.CombZipf,
		ClusterCenters:   5,
	})
	if err != nil {
		log.Fatal(err)
	}

	results, err := odyssey.Compare(data, w,
		[]odyssey.BaselineKind{odyssey.EngineOdyssey, odyssey.EngineOdysseyNoMerge},
		odyssey.CompareOptions{})
	if err != nil {
		log.Fatal(err)
	}
	withMerge, noMerge := results[0], results[1]

	fmt.Printf("workload: %d queries, k=5 of %d datasets, zipf combinations, 5 hot areas\n\n",
		len(w.Queries), numDatasets)
	fmt.Printf("%-18s %14s %14s\n", "", "Odyssey", "w/o merging")
	fmt.Printf("%-18s %13.2fs %13.2fs\n", "total time",
		withMerge.Total.Seconds(), noMerge.Total.Seconds())

	// Per-query means over the final quarter (steady state).
	tail := len(w.Queries) * 3 / 4
	fmt.Printf("%-18s %13.3fs %13.3fs\n", "steady-state mean",
		mean(withMerge.PerQuery[tail:]).Seconds(), mean(noMerge.PerQuery[tail:]).Seconds())
	gain := 100 * (1 - float64(mean(withMerge.PerQuery[tail:]))/
		float64(mean(noMerge.PerQuery[tail:])))
	fmt.Printf("\nsteady-state gain from merging: %.1f%% (paper reports ~25%% on the popular combination)\n", gain)

	m := withMerge.Metrics
	fmt.Printf("merge files created: %d, partitions merged: %d, reads served from merge files: %d\n",
		m.MergeFilesCreated, m.PartitionsMerged, m.PartitionsFromMerge)
}

func mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}
