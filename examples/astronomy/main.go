// Astronomy comparison: sky-survey-like datasets (filamentary large-scale
// structure) explored with uniform ranges — close to the paper's worst case
// for adaptivity (Figure 4d). The example uses the public Compare API to
// run Space Odyssey head-to-head against the static baselines on identical
// data and workload, reproducing the evaluation's central trade-off:
// static indexes answer individual queries faster once built, but Space
// Odyssey delivers insight long before they finish indexing.
//
//	go run ./examples/astronomy
package main

import (
	"fmt"
	"log"

	odyssey "spaceodyssey"
)

func main() {
	// Six survey epochs of the same sky volume: objects string along
	// filaments, plus diffuse background.
	const numDatasets = 6
	data := odyssey.GenerateDatasets(odyssey.DataConfig{
		Seed:       11,
		NumObjects: 15000,
		Layout:     odyssey.LayoutFilamentary,
		Clusters:   8,
	}, numDatasets)

	// Uniform exploration: no hot areas, combinations uniform — the
	// hardest regime for adaptive methods.
	w, err := odyssey.GenerateWorkload(odyssey.WorkloadConfig{
		Seed:             5,
		NumQueries:       200,
		NumDatasets:      numDatasets,
		DatasetsPerQuery: 3,
		QueryVolumeFrac:  5e-5,
		RangeDist:        odyssey.RangeUniform,
		CombDist:         odyssey.CombUniform,
	})
	if err != nil {
		log.Fatal(err)
	}

	engines := []odyssey.BaselineKind{
		odyssey.EngineOdyssey,
		odyssey.EngineGrid1fE,
		odyssey.EngineRTreeAin1,
		odyssey.EngineFLATAin1,
	}
	fmt.Printf("comparing %d engines on %d filamentary datasets, %d uniform queries\n\n",
		len(engines), numDatasets, len(w.Queries))

	results, err := odyssey.Compare(data, w, engines, odyssey.CompareOptions{GridCells: 6})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %12s %12s %12s %14s\n",
		"engine", "index (s)", "queries (s)", "total (s)", "first query")
	for _, r := range results {
		fmt.Printf("%-14s %12.2f %12.2f %12.2f %13.3fs\n",
			r.Engine, r.IndexTime.Seconds(), r.QueryTime.Seconds(),
			r.Total.Seconds(), r.FirstQuery.Seconds())
	}

	// Sanity: every engine returned identical result cardinality.
	for _, r := range results[1:] {
		if r.Objects != results[0].Objects {
			log.Fatalf("engines disagree: %s=%d, %s=%d",
				results[0].Engine, results[0].Objects, r.Engine, r.Objects)
		}
	}
	fmt.Printf("\nall engines returned the same %d objects in total\n", results[0].Objects)
	fmt.Println("\nnote: with uniform queries there are no hot areas to exploit —")
	fmt.Println("the paper's Figure 4d shows the same effect: Odyssey's advantage")
	fmt.Println("is the absent indexing phase, not steady-state query speed.")
}
