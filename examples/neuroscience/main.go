// Neuroscience walkthrough: the paper's motivating scenario. Ten datasets
// represent captures of the same brain volume by different instruments
// (patch clamp, brightfield spectroscopy, MRI, ...). A scientist explores
// small regions across changing dataset combinations; nobody knows in
// advance which areas or which combinations matter, so indexing everything
// upfront would waste hours. This example runs a 300-query exploratory
// session and reports how the engine converges.
//
//	go run ./examples/neuroscience
package main

import (
	"fmt"
	"log"
	"time"

	odyssey "spaceodyssey"
)

func main() {
	ex, err := odyssey.NewExplorer(odyssey.Options{DropCachesPerQuery: true})
	if err != nil {
		log.Fatal(err)
	}

	// 10 instrument captures of the same brain volume: clustered 3D mesh
	// fragments (neuron morphologies concentrate in columns and layers).
	const numDatasets = 10
	for i, data := range odyssey.GenerateDatasets(odyssey.DataConfig{
		Seed: 7, NumObjects: 30000, Clusters: 15,
	}, numDatasets) {
		if err := ex.AddDataset(odyssey.DatasetID(i), data); err != nil {
			log.Fatal(err)
		}
	}

	// The exploratory workload of the paper's evaluation: clustered range
	// queries (scientists revisit hot areas) over Zipf-distributed dataset
	// combinations (some instrument combinations are much more useful).
	w, err := odyssey.GenerateWorkload(odyssey.WorkloadConfig{
		Seed:             3,
		NumQueries:       300,
		NumDatasets:      numDatasets,
		DatasetsPerQuery: 5,
		QueryVolumeFrac:  2e-5,
		RangeDist:        odyssey.RangeClustered,
		CombDist:         odyssey.CombZipf,
		ClusterCenters:   10,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("exploring %d datasets with %d range queries (k=5, zipf combinations)\n\n",
		numDatasets, len(w.Queries))

	var elapsed time.Duration
	phase := len(w.Queries) / 5
	var phaseTime time.Duration
	results := 0
	for i, q := range w.Queries {
		objs, dt, err := ex.QueryTimed(q.Range, q.Datasets)
		if err != nil {
			log.Fatal(err)
		}
		elapsed += dt
		phaseTime += dt
		results += len(objs)
		if (i+1)%phase == 0 {
			fmt.Printf("queries %3d–%3d: mean %10v per query\n",
				i+2-phase, i+1, phaseTime/time.Duration(phase))
			phaseTime = 0
		}
	}

	m := ex.Metrics()
	fmt.Printf("\ntotal: %d results in %v simulated disk time\n", results, elapsed)
	fmt.Printf("trees built lazily: %d of %d (only queried datasets pay indexing)\n",
		m.TreesBuilt, numDatasets)
	fmt.Printf("refinements: %d — hot areas now answer at near fully-indexed speed\n",
		m.Refinements)
	fmt.Printf("merge files: %d (%d partitions copied); %d partition reads served sequentially from merge files\n",
		m.MergeFilesCreated, m.PartitionsMerged, m.PartitionsFromMerge)

	// The paper's convergence equation (§3.1.2) predicts how many hits a
	// hot level-1 partition needs before queries of this size converge.
	levels, err := ex.TargetLevels(0, w.QuerySide*w.QuerySide*w.QuerySide)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("convergence equation: a hot area converges after %d refining queries\n", levels)

	// Where the simulated time actually went — the adaptive analogue of
	// the paper's indexing/querying breakdown.
	p := m.Phases
	fmt.Printf("\ntime breakdown: level-0 %v | refinement %v | tree reads %v | merge reads %v | merge writes %v\n",
		p.LevelZeroBuild, p.Refinement, p.TreeReads, p.MergeReads, p.MergeWrites)
}
