// Command concurrent demonstrates serving range queries from a worker pool:
// three synthetic datasets are explored by 200 queries pushed through
// Explorer.QueryBatch at increasing parallelism, with the simulated disk
// emulating its latency in real time so the pool's overlap is visible in
// wall-clock throughput.
package main

import (
	"fmt"
	"log"
	"time"

	odyssey "spaceodyssey"
)

func main() {
	workload, err := odyssey.GenerateWorkload(odyssey.WorkloadConfig{
		Seed: 7, NumQueries: 200, NumDatasets: 3, DatasetsPerQuery: 2,
		QueryVolumeFrac: 1e-4,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, workers := range []int{1, 4, 8} {
		ex, err := odyssey.NewExplorer(odyssey.Options{DropCachesPerQuery: true})
		if err != nil {
			log.Fatal(err)
		}
		for i, objs := range odyssey.GenerateDatasets(
			odyssey.DataConfig{Seed: 1, NumObjects: 5000, Clusters: 4}, 3) {
			if err := ex.AddDataset(odyssey.DatasetID(i), objs); err != nil {
				log.Fatal(err)
			}
		}
		// Converge instantly on the virtual disk, then serve with the disk
		// emulating its charges in real time.
		if _, err := ex.QueryBatch(workload.Queries, workers); err != nil {
			log.Fatal(err)
		}
		ex.SetRealTimeScale(1)

		start := time.Now()
		results, err := ex.QueryBatch(workload.Queries, workers)
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)
		hits := 0
		for _, r := range results {
			hits += len(r.Objects)
		}
		fmt.Printf("%d worker(s): %3d queries, %5d objects, %7.1f q/s (%.3fs wall)\n",
			workers, len(results), hits, float64(len(results))/wall.Seconds(), wall.Seconds())
	}
}
