// Quickstart: create an explorer, add three datasets, and run range
// queries — no upfront indexing, the engine adapts as you query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	odyssey "spaceodyssey"
)

func main() {
	// An Explorer with the paper's default configuration (rt=4, ppl=64,
	// mt=2, |C|>=3) over the unit exploration volume. Caches are dropped
	// before each query so latencies reflect cold disk access, like the
	// paper's methodology.
	ex, err := odyssey.NewExplorer(odyssey.Options{DropCachesPerQuery: true})
	if err != nil {
		log.Fatal(err)
	}

	// Three synthetic datasets sharing the same volume — stand-ins for
	// captures of the same brain region by different instruments.
	datasets := odyssey.GenerateDatasets(odyssey.DataConfig{
		Seed: 42, NumObjects: 20000,
	}, 3)
	for i, data := range datasets {
		if err := ex.AddDataset(odyssey.DatasetID(i), data); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("added %d datasets; nothing is indexed yet\n\n", ex.NumDatasets())

	// Query a region where data actually lives (around some object of
	// dataset 0). The first query pays for the level-0 in-situ
	// partitioning of the datasets it touches; repeats of the same area
	// get cheaper as the engine refines exactly where we query.
	q := odyssey.Cube(datasets[0][100].Center, 0.04)
	for i := 1; i <= 5; i++ {
		objs, dt, err := ex.QueryTimed(q, []odyssey.DatasetID{0, 1, 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d: %4d objects in %12v simulated disk time\n", i, len(objs), dt)
	}

	// What happened under the hood.
	m := ex.Metrics()
	fmt.Printf("\ntrees built: %d, refinements: %d, merge files: %d\n",
		m.TreesBuilt, m.Refinements, m.MergeFilesCreated)
	for i := 0; i < ex.NumDatasets(); i++ {
		info, _ := ex.Dataset(odyssey.DatasetID(i))
		fmt.Printf("dataset %d: %d leaf partitions cover the queried areas\n",
			info.ID, info.Leaves)
	}
}
