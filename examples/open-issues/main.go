// Open-issues demo: the paper's §3.2.5 lists three directions left as
// future work; all three are implemented in this reproduction and shown
// here side by side:
//
//  1. merging partitions at different refinement levels (refine-to-finest
//     and coarsest-cover strategies vs the paper's same-level rule);
//
//  2. a runtime cost model that adapts the merge threshold mt to the
//     workload;
//
//  3. improved disk space management that avoids re-copying a dataset
//     shared by several merged combinations.
//
//     go run ./examples/open-issues
package main

import (
	"fmt"
	"log"

	odyssey "spaceodyssey"
)

func main() {
	data := odyssey.GenerateDatasets(odyssey.DataConfig{
		Seed: 77, NumObjects: 20000, Clusters: 8,
	}, 6)

	// A workload where dataset 0 is also explored alone (so its index
	// refines ahead of the others) and two overlapping combinations are
	// hot (so their merge files duplicate partitions).
	runSession := func(opts odyssey.Options) *odyssey.Explorer {
		ex, err := odyssey.NewExplorer(opts)
		if err != nil {
			log.Fatal(err)
		}
		for i, objs := range data {
			if err := ex.AddDataset(odyssey.DatasetID(i), objs); err != nil {
				log.Fatal(err)
			}
		}
		center := data[0][500].Center
		// Tiny solo queries drive dataset 0 two levels deeper than the
		// others in this area...
		pin := odyssey.Cube(center, 0.008)
		for i := 0; i < 6; i++ {
			if _, err := ex.Query(pin, []odyssey.DatasetID{0}); err != nil {
				log.Fatal(err)
			}
		}
		// ...then two overlapping combinations query the area with larger
		// ranges: their refinement levels now disagree with dataset 0's.
		hot := odyssey.Cube(center, 0.05)
		for i := 0; i < 6; i++ {
			if _, err := ex.Query(hot, []odyssey.DatasetID{0, 1, 2}); err != nil {
				log.Fatal(err)
			}
			if _, err := ex.Query(hot, []odyssey.DatasetID{0, 1, 2, 3}); err != nil {
				log.Fatal(err)
			}
		}
		return ex
	}

	fmt.Println("1) merging partitions at different refinement levels")
	fmt.Printf("%-20s %12s %14s\n", "policy", "merged", "served from merge")
	for _, p := range []odyssey.MergeLevelPolicy{
		odyssey.MergeSameLevel, odyssey.MergeRefineToFinest, odyssey.MergeCoarsestCover,
	} {
		ex := runSession(odyssey.Options{MergeLevelPolicy: p})
		m := ex.Metrics()
		fmt.Printf("%-20s %12d %14d\n", p, m.PartitionsMerged, m.PartitionsFromMerge)
	}
	fmt.Println("   (dataset 0 was refined ahead; same-level must wait for the others to catch up,")
	fmt.Println("    refine-to-finest forces them, coarsest-cover merges above the divergence)")

	fmt.Println("\n2) disk space: sharing partition copies across merge files")
	for _, share := range []bool{false, true} {
		ex := runSession(odyssey.Options{ShareMergeSegments: share})
		m := ex.Metrics()
		fmt.Printf("   sharing=%-5v merge files=%d, pages=%d, segments shared=%d\n",
			share, m.MergeFilesCreated, ex.MergeSpacePages(), m.SegmentsShared)
	}

	fmt.Println("\n3) adaptive merge threshold under a non-repeating workload")
	ex, err := odyssey.NewExplorer(odyssey.Options{AdaptiveMergeThresholds: true})
	if err != nil {
		log.Fatal(err)
	}
	for i, objs := range data {
		if err := ex.AddDataset(odyssey.DatasetID(i), objs); err != nil {
			log.Fatal(err)
		}
	}
	combos := [][]odyssey.DatasetID{
		{0, 1, 2}, {1, 2, 3}, {2, 3, 4}, {3, 4, 5}, {0, 2, 4}, {1, 3, 5},
	}
	for i := 0; i < 120; i++ {
		f := float64(i%30)/30*0.8 + 0.1
		q := odyssey.Cube(odyssey.V(f, f, f), 0.03)
		if _, err := ex.Query(q, combos[i%len(combos)]); err != nil {
			log.Fatal(err)
		}
	}
	m := ex.Metrics()
	fmt.Printf("   after 120 scattered queries: mt adapted from 2 to %d (merged copies were rarely reused)\n",
		m.CurrentMergeThresh)
}
