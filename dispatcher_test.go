package odyssey

import (
	"errors"
	"testing"
)

// batchEnv builds a small explorer plus a fixed workload for pool tests.
func batchEnv(t testing.TB) (*Explorer, []Query) {
	t.Helper()
	ex, err := NewExplorer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := GenerateDatasets(DataConfig{Seed: 5, NumObjects: 1500, Clusters: 3}, 3)
	for i, objs := range data {
		if err := ex.AddDataset(DatasetID(i), objs); err != nil {
			t.Fatal(err)
		}
	}
	w, err := GenerateWorkload(WorkloadConfig{
		Seed: 9, NumQueries: 40, NumDatasets: 3, DatasetsPerQuery: 2,
		QueryVolumeFrac: 2e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ex, w.Queries
}

func TestQueryBatchMatchesSerial(t *testing.T) {
	exSerial, queries := batchEnv(t)
	want := make([][]Object, len(queries))
	for i, q := range queries {
		objs, err := exSerial.Query(q.Range, q.Datasets)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = objs
	}

	exPar, _ := batchEnv(t)
	results, err := exPar.QueryBatch(queries, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(results), len(queries))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d", i, r.Index)
		}
		if r.Err != nil {
			t.Fatalf("query %d failed: %v", i, r.Err)
		}
		if !sameObjects(r.Objects, want[i]) {
			t.Errorf("query %d: batch returned %d objects, serial %d",
				i, len(r.Objects), len(want[i]))
		}
	}
}

func TestQueryBatchReportsQueryError(t *testing.T) {
	ex, queries := batchEnv(t)
	bad := queries[3]
	bad.Datasets = []DatasetID{99}
	queries[3] = bad
	results, err := ex.QueryBatch(queries, 4)
	if err == nil {
		t.Fatal("expected the unknown-dataset error to surface")
	}
	if results[3].Err == nil || !errors.Is(err, results[3].Err) {
		t.Fatalf("first error %v does not match failing result's %v", err, results[3].Err)
	}
	for i, r := range results {
		if i != 3 && r.Err != nil {
			t.Errorf("healthy query %d failed: %v", i, r.Err)
		}
	}
}

func TestQueryConcurrentStreams(t *testing.T) {
	ex, queries := batchEnv(t)
	in := make(chan Query)
	go func() {
		for _, q := range queries {
			in <- q
		}
		close(in)
	}()
	seen := make(map[int]bool)
	total := 0
	for r := range ex.QueryConcurrent(in, 4) {
		if r.Err != nil {
			t.Fatalf("query %d failed: %v", r.Index, r.Err)
		}
		if seen[r.Index] {
			t.Fatalf("index %d delivered twice", r.Index)
		}
		seen[r.Index] = true
		total++
	}
	if total != len(queries) {
		t.Fatalf("streamed %d results for %d queries", total, len(queries))
	}
}

func TestDispatcherWorkerStats(t *testing.T) {
	ex, queries := batchEnv(t)
	d := NewDispatcher(ex, 4)
	if d.Workers() != 4 {
		t.Fatalf("Workers = %d", d.Workers())
	}
	out := make(chan BatchResult, len(queries))
	for i, q := range queries {
		if err := d.Submit(i, q, out); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	d.Close() // idempotent
	if err := d.Submit(0, queries[0], out); err != ErrDispatcherClosed {
		t.Fatalf("Submit after Close = %v, want ErrDispatcherClosed", err)
	}
	served := 0
	for _, st := range d.WorkerStats() {
		served += st.Queries
		if st.Queries > 0 && st.Busy <= 0 {
			t.Errorf("worker %d served %d queries in zero time", st.Worker, st.Queries)
		}
	}
	if served != len(queries) {
		t.Fatalf("workers served %d queries, want %d", served, len(queries))
	}
}

// sameObjects compares two result sets ignoring order without mutating the
// inputs' backing arrays beyond sorting copies.
func sameObjects(a, b []Object) bool {
	if len(a) != len(b) {
		return false
	}
	am := make(map[Object]int, len(a))
	for _, o := range a {
		am[o]++
	}
	for _, o := range b {
		am[o]--
		if am[o] < 0 {
			return false
		}
	}
	return true
}
