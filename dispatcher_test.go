package odyssey

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// batchEnv builds a small explorer plus a fixed workload for pool tests.
func batchEnv(t testing.TB) (*Explorer, []Query) {
	t.Helper()
	ex, err := NewExplorer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := GenerateDatasets(DataConfig{Seed: 5, NumObjects: 1500, Clusters: 3}, 3)
	for i, objs := range data {
		if err := ex.AddDataset(DatasetID(i), objs); err != nil {
			t.Fatal(err)
		}
	}
	w, err := GenerateWorkload(WorkloadConfig{
		Seed: 9, NumQueries: 40, NumDatasets: 3, DatasetsPerQuery: 2,
		QueryVolumeFrac: 2e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ex, w.Queries
}

func TestQueryBatchMatchesSerial(t *testing.T) {
	exSerial, queries := batchEnv(t)
	want := make([][]Object, len(queries))
	for i, q := range queries {
		objs, err := exSerial.Query(q.Range, q.Datasets)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = objs
	}

	exPar, _ := batchEnv(t)
	results, err := exPar.QueryBatch(queries, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(results), len(queries))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d", i, r.Index)
		}
		if r.Err != nil {
			t.Fatalf("query %d failed: %v", i, r.Err)
		}
		if !sameObjects(r.Objects, want[i]) {
			t.Errorf("query %d: batch returned %d objects, serial %d",
				i, len(r.Objects), len(want[i]))
		}
	}
}

func TestQueryBatchReportsQueryError(t *testing.T) {
	ex, queries := batchEnv(t)
	bad := queries[3]
	bad.Datasets = []DatasetID{99}
	queries[3] = bad
	results, err := ex.QueryBatch(queries, 4)
	if err == nil {
		t.Fatal("expected the unknown-dataset error to surface")
	}
	if results[3].Err == nil || !errors.Is(err, results[3].Err) {
		t.Fatalf("first error %v does not match failing result's %v", err, results[3].Err)
	}
	for i, r := range results {
		if i != 3 && r.Err != nil {
			t.Errorf("healthy query %d failed: %v", i, r.Err)
		}
	}
}

func TestQueryConcurrentStreams(t *testing.T) {
	ex, queries := batchEnv(t)
	in := make(chan Query)
	go func() {
		for _, q := range queries {
			in <- q
		}
		close(in)
	}()
	seen := make(map[int]bool)
	total := 0
	for r := range ex.QueryConcurrent(in, 4) {
		if r.Err != nil {
			t.Fatalf("query %d failed: %v", r.Index, r.Err)
		}
		if seen[r.Index] {
			t.Fatalf("index %d delivered twice", r.Index)
		}
		seen[r.Index] = true
		total++
	}
	if total != len(queries) {
		t.Fatalf("streamed %d results for %d queries", total, len(queries))
	}
}

func TestDispatcherWorkerStats(t *testing.T) {
	ex, queries := batchEnv(t)
	d := NewDispatcher(ex, 4)
	if d.Workers() != 4 {
		t.Fatalf("Workers = %d", d.Workers())
	}
	out := make(chan BatchResult, len(queries))
	for i, q := range queries {
		if err := d.Submit(i, q, out); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	d.Close() // idempotent
	if err := d.Submit(0, queries[0], out); err != ErrDispatcherClosed {
		t.Fatalf("Submit after Close = %v, want ErrDispatcherClosed", err)
	}
	served := 0
	for _, st := range d.WorkerStats() {
		served += st.Queries
		if st.Queries > 0 && st.Busy <= 0 {
			t.Errorf("worker %d served %d queries in zero time", st.Worker, st.Queries)
		}
	}
	if served != len(queries) {
		t.Fatalf("workers served %d queries, want %d", served, len(queries))
	}
}

// TestDispatcherAdmissionFastFail saturates the in-flight limit and asserts
// that the next submission fails fast with ErrOverloaded instead of
// queue-blocking behind the saturated pool.
func TestDispatcherAdmissionFastFail(t *testing.T) {
	ex, queries := batchEnv(t)
	// Real-time emulation makes the first (index-building) query occupy its
	// worker for hundreds of milliseconds of wall time, holding the single
	// in-flight slot while the test probes the admission gate.
	ex.SetRealTimeScale(1.0)
	d := NewDispatcherWithAdmission(ex, 1, AdmissionConfig{MaxInFlight: 1})
	out := make(chan BatchResult, 4)

	ctx, cancel := context.WithCancel(context.Background())
	if err := d.SubmitCtx(ctx, 0, queries[0], out); err != nil {
		t.Fatalf("first submission should be admitted: %v", err)
	}
	start := time.Now()
	err := d.SubmitCtx(context.Background(), 1, queries[1], out)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated submit = %v, want ErrOverloaded", err)
	}
	if elapsed > 200*time.Millisecond {
		t.Errorf("fast-fail took %v — it queue-blocked", elapsed)
	}

	// Cut the in-flight query short and drain; the slot frees and a new
	// submission is admitted again.
	cancel()
	r := <-out
	if r.Err != nil && !IsCanceled(r.Err) {
		t.Fatalf("canceled in-flight query returned %v", r.Err)
	}
	if err := d.SubmitCtx(context.Background(), 2, queries[2], out); err != nil {
		t.Fatalf("submission after slot release: %v", err)
	}
	d.Close()
	st := d.AdmissionStats()
	if st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
	if st.Admitted != 2 {
		t.Errorf("Admitted = %d, want 2", st.Admitted)
	}
}

// TestDispatcherAdmissionQueueWait covers the bounded-wait variant: a
// submission may wait up to QueueWait for a slot, then still fails with
// ErrOverloaded rather than blocking indefinitely.
func TestDispatcherAdmissionQueueWait(t *testing.T) {
	ex, queries := batchEnv(t)
	ex.SetRealTimeScale(1.0)
	d := NewDispatcherWithAdmission(ex, 1, AdmissionConfig{
		MaxInFlight: 1,
		QueueWait:   30 * time.Millisecond,
	})
	out := make(chan BatchResult, 4)
	ctx, cancel := context.WithCancel(context.Background())
	if err := d.SubmitCtx(ctx, 0, queries[0], out); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := d.SubmitCtx(context.Background(), 1, queries[1], out)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated submit = %v, want ErrOverloaded", err)
	}
	if elapsed < 20*time.Millisecond || elapsed > time.Second {
		t.Errorf("bounded wait lasted %v, want ~30ms", elapsed)
	}
	cancel()
	<-out
	d.Close()
}

// TestDispatcherCancelStormGoroutineLeak floods a dispatcher with
// short-deadline queries, closes it with work still pending, and asserts
// that every admitted query still gets exactly one result and that the
// worker goroutines all exit — no leaked goroutines, no lost results.
func TestDispatcherCancelStormGoroutineLeak(t *testing.T) {
	ex, queries := batchEnv(t)
	ex.SetRealTimeScale(0.5)
	before := runtime.NumGoroutine()
	d := NewDispatcherWithAdmission(ex, 8, AdmissionConfig{
		MaxInFlight: 32,
		Deadline:    2 * time.Millisecond,
	})
	out := make(chan BatchResult, 256)
	admitted := 0
	for i := 0; i < 200; i++ {
		err := d.SubmitCtx(context.Background(), i, queries[i%len(queries)], out)
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, ErrOverloaded):
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	d.Close()
	close(out)
	got := 0
	for range out {
		got++
	}
	if got != admitted {
		t.Fatalf("%d results delivered for %d admitted queries", got, admitted)
	}
	st := d.AdmissionStats()
	if st.Admitted != int64(admitted) || st.Completed+st.Canceled+st.Failed != st.Admitted {
		t.Errorf("admission ledger does not balance: %+v", st)
	}
	// Workers (and deadline timers) must all wind down after Close.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+2 {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutines did not settle after Close: %d before, %d after", before, g)
	}
}

// TestDispatcherCancelAbandonsBlockedSubmit pins the backpressure escape
// hatch: without admission control a Submit blocks when the job queue is
// full, but canceling its context must abandon the wait instead of blocking
// forever (and must not wedge a concurrent Close via the held send lock).
func TestDispatcherCancelAbandonsBlockedSubmit(t *testing.T) {
	ex, queries := batchEnv(t)
	d := NewDispatcher(ex, 1)     // job queue capacity 2
	out := make(chan BatchResult) // unbuffered and undrained: the worker wedges on delivery
	for i := 0; i < 3; i++ {
		// Job 0 is dequeued and wedges delivering; jobs 1-2 fill the queue.
		if err := d.Submit(i, queries[i], out); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := d.SubmitCtx(ctx, 3, queries[3], out)
	if !IsCanceled(err) {
		t.Fatalf("blocked submit under canceled ctx = %v, want cancellation", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled submit took %v to abandon the wait", elapsed)
	}
	for i := 0; i < 3; i++ {
		<-out // release the worker and drain the queue
	}
	d.Close()
	if st := d.AdmissionStats(); st.Admitted != 3 {
		t.Errorf("Admitted = %d, want 3 (the abandoned submit was never admitted)", st.Admitted)
	}
}

// TestDispatcherClosedSubmitNoPanic is the regression test for submitting
// to a closed dispatcher: it must return ErrClosed — never panic on a
// closed channel — including when Submit races Close from many goroutines.
func TestDispatcherClosedSubmitNoPanic(t *testing.T) {
	ex, queries := batchEnv(t)
	d := NewDispatcher(ex, 2)
	d.Close()
	out := make(chan BatchResult, 1)
	if err := d.Submit(0, queries[0], out); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if !errors.Is(ErrDispatcherClosed, ErrClosed) {
		t.Fatal("ErrDispatcherClosed must alias ErrClosed for existing callers")
	}

	// Race storm: 8 submitters against a concurrent Close. Every submission
	// either lands (result delivered) or reports ErrClosed cleanly.
	d2 := NewDispatcher(ex, 4)
	storm := make(chan BatchResult, 1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				err := d2.Submit(g*40+i, queries[(g+i)%len(queries)], storm)
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("racing submit: %v", err)
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		d2.Close()
		close(done)
	}()
	wg.Wait()
	<-done
	d2.Close() // idempotent
}

// sameObjects compares two result sets ignoring order without mutating the
// inputs' backing arrays beyond sorting copies.
func sameObjects(a, b []Object) bool {
	if len(a) != len(b) {
		return false
	}
	am := make(map[Object]int, len(a))
	for _, o := range a {
		am[o]++
	}
	for _, o := range b {
		am[o]--
		if am[o] < 0 {
			return false
		}
	}
	return true
}

// TestDispatcherSweeperReturnsDeadQueuedJobs pins the sweeper contract: a
// queued query whose context dies before any worker reaches it is returned
// to the submitter immediately (Worker == SweptWorker), counted in
// AdmissionStats.Swept, and never occupies a worker. The single worker is
// pinned down by a first query whose level-0 build runs on a real-time
// emulated disk, so the second, canceled job would otherwise sit in the
// queue for the whole build.
func TestDispatcherSweeperReturnsDeadQueuedJobs(t *testing.T) {
	ex, err := NewExplorer(Options{RealTimeScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := GenerateDatasets(DataConfig{Seed: 5, NumObjects: 1500, Clusters: 3}, 2)
	for i, objs := range data {
		if err := ex.AddDataset(DatasetID(i), objs); err != nil {
			t.Fatal(err)
		}
	}
	d := NewDispatcher(ex, 1)
	out := make(chan BatchResult, 2)
	q := Query{Range: Cube(V(0.5, 0.5, 0.5), 0.1), Datasets: []DatasetID{0, 1}}

	// Job 0 occupies the only worker with the expensive first-touch build.
	if err := d.Submit(0, q, out); err != nil {
		t.Fatal(err)
	}
	// Job 1 queues behind it and is canceled while waiting.
	ctx, cancel := context.WithCancel(context.Background())
	if err := d.SubmitCtx(ctx, 1, q, out); err != nil {
		t.Fatal(err)
	}
	cancel()

	// The swept result must arrive long before the worker frees up.
	select {
	case r := <-out:
		if r.Index != 1 {
			t.Fatalf("first delivered result is job %d, want the swept job 1", r.Index)
		}
		if r.Worker != SweptWorker {
			t.Fatalf("swept job carries worker %d, want SweptWorker", r.Worker)
		}
		if !IsCanceled(r.Err) || !errors.Is(r.Err, ErrCanceled) {
			t.Fatalf("swept job error = %v, want a wrapped ErrCanceled", r.Err)
		}
		if r.Objects != nil {
			t.Fatalf("swept job leaked %d objects", len(r.Objects))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled queued job was not swept back while the worker was busy")
	}

	d.Close()
	close(out)
	r := <-out
	if r.Index != 0 || r.Err != nil {
		t.Fatalf("worker job result = %+v", r)
	}
	st := d.AdmissionStats()
	if st.Admitted != 2 || st.Swept != 1 || st.Canceled != 1 || st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("AdmissionStats = %+v, want 2 admitted, 1 swept, 1 canceled, 1 completed", st)
	}
	if st.Admitted != st.Completed+st.Canceled+st.Failed {
		t.Fatalf("admission ledger does not balance: %+v", st)
	}
}

// TestDispatcherSweeperZombiesNeverBlockSubmit pins the admission-capacity
// side of sweeping: a swept job frees its in-flight slot immediately but
// still occupies a queue entry until a worker discards it, so a submission
// that finds the queue full of zombies must shed with ErrOverloaded —
// never block on the send (which would stall Submit and Close behind the
// busy worker).
func TestDispatcherSweeperZombiesNeverBlockSubmit(t *testing.T) {
	ex, err := NewExplorer(Options{RealTimeScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := GenerateDatasets(DataConfig{Seed: 5, NumObjects: 1500, Clusters: 3}, 2)
	for i, objs := range data {
		if err := ex.AddDataset(DatasetID(i), objs); err != nil {
			t.Fatal(err)
		}
	}
	d := NewDispatcherWithAdmission(ex, 1, AdmissionConfig{MaxInFlight: 3})
	out := make(chan BatchResult, 4)
	q := Query{Range: Cube(V(0.5, 0.5, 0.5), 0.1), Datasets: []DatasetID{0, 1}}

	// Fill the in-flight cap: one job on the worker, two queued. The pause
	// lets the worker pop job 0 (its level-0 build then occupies it for
	// hundreds of milliseconds), so the queue afterwards holds exactly the
	// two jobs below.
	if err := d.Submit(0, q, out); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	var cancels []context.CancelFunc
	for i := 1; i <= 2; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels = append(cancels, cancel)
		if err := d.SubmitCtx(ctx, i, q, out); err != nil {
			t.Fatal(err)
		}
	}
	for _, cancel := range cancels {
		cancel()
	}
	// Both queued jobs are swept back...
	for i := 0; i < 2; i++ {
		select {
		case r := <-out:
			if r.Worker != SweptWorker {
				t.Fatalf("result %d: worker %d, want SweptWorker", r.Index, r.Worker)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued canceled jobs were not swept")
		}
	}
	// ...freeing their slots at once: a new submission is admitted into the
	// queue entry the worker's own job left behind...
	start := time.Now()
	if err := d.Submit(3, q, out); err != nil {
		t.Fatalf("submit after sweep: %v, want admission into the freed capacity", err)
	}
	// ...and when the queue itself is full of zombies plus the admitted
	// job, the next submission sheds immediately instead of blocking on the
	// send behind the busy worker.
	err = d.Submit(4, q, out)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit into a zombie-full queue: %v, want ErrOverloaded", err)
	}
	if elapsed > 200*time.Millisecond {
		t.Errorf("submissions over a zombie backlog took %v — one of them queue-blocked", elapsed)
	}
	d.Close()
	close(out)
	st := d.AdmissionStats()
	if st.Admitted != 4 || st.Swept != 2 || st.Rejected != 1 || st.Completed != 2 {
		t.Fatalf("AdmissionStats = %+v, want 4 admitted, 2 swept, 1 rejected, 2 completed", st)
	}
	if st.Admitted != st.Completed+st.Canceled+st.Failed {
		t.Fatalf("admission ledger does not balance: %+v", st)
	}
}
