package odyssey

import (
	"context"
	"testing"
	"time"
)

// Result-cache oracle storms: the race-mode equivalence suite with
// Options.CacheResults on — exact hits, containment answers and epoch
// flushes must change I/O accounting, never what a query returns, even
// while refinement and merging republish the layout underneath.

func TestConcurrentQueriesMatchOracleCacheResults(t *testing.T) {
	env := newOracleEnv(t, Options{
		CacheResults: true, ShareScans: true, RealTimeScale: 0.002,
	}, 3, 2000)
	runConcurrentOracle(t, env, 8, 20)
	if m := env.ex.Metrics(); m.Queries != 8*20 {
		t.Errorf("engine recorded %d queries, want %d", m.Queries, 8*20)
	}
}

func TestConcurrentQueriesMatchOracleCacheAsync(t *testing.T) {
	env := newOracleEnv(t, Options{
		CacheResults: true, ShareScans: true,
		AsyncMaintenance: true, MaintenanceWorkers: 3,
		RealTimeScale: 0.002,
	}, 3, 2000)
	defer env.ex.Close()
	runConcurrentOracle(t, env, 8, 15)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := env.ex.Quiesce(ctx); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	if err := env.ex.MaintenanceErr(); err != nil {
		t.Fatalf("background maintenance task failed: %v", err)
	}
	env.ex.SetRealTimeScale(0)
	// Post-quiesce the layout is frozen, so a repeated query must populate
	// and then hit the cache — and still match the oracle both times.
	q := Query{Range: Cube(V(0.35, 0.4, 0.4), 0.06), Datasets: []DatasetID{0, 1, 2}}
	if err := env.check(q); err != nil {
		t.Fatalf("post-quiesce populate query: %v", err)
	}
	before := env.ex.CacheStats()
	if err := env.check(q); err != nil {
		t.Fatalf("post-quiesce repeat query: %v", err)
	}
	after := env.ex.CacheStats()
	if after.Hits+after.ContainmentHits <= before.Hits+before.ContainmentHits {
		t.Fatalf("repeat query over a frozen layout hit nothing: before %+v after %+v",
			before, after)
	}
	if after.ZeroReadQueries <= before.ZeroReadQueries {
		t.Fatalf("repeat query still charged device reads: before %+v after %+v",
			before, after)
	}
}

// TestCacheStatsLedger drives the same hot repeated query twice — with and
// without caching — and checks that (a) the caching run serves repeats from
// the cache with zero device reads and (b) both runs return identical
// result multisets. Caching may only change I/O, never answers.
func TestCacheStatsLedger(t *testing.T) {
	build := func(cache bool) (*Explorer, []BatchResult) {
		ex, err := NewExplorer(Options{
			CacheResults:  cache,
			RealTimeScale: 0.002,
		})
		if err != nil {
			t.Fatal(err)
		}
		data := GenerateDatasets(DataConfig{Seed: 7, NumObjects: 2000, Clusters: 4}, 3)
		for i, objs := range data {
			if err := ex.AddDataset(DatasetID(i), objs); err != nil {
				t.Fatal(err)
			}
		}
		hot := Cube(V(0.45, 0.45, 0.5), 0.07)
		queries := make([]Query, 48)
		for i := range queries {
			queries[i] = Query{Range: hot, Datasets: []DatasetID{0, 1, 2}}
		}
		res, err := ex.QueryBatch(queries, 8)
		if err != nil {
			t.Fatal(err)
		}
		return ex, res
	}

	exOff, resOff := build(false)
	exOn, resOn := build(true)

	if st := exOff.CacheStats(); st != (CacheStats{}) {
		t.Fatalf("caching off but ledger non-zero: %+v", st)
	}
	st := exOn.CacheStats()
	if st.Inserts == 0 || st.Hits+st.ContainmentHits == 0 {
		t.Fatalf("hot repeated run cached nothing: %+v", st)
	}
	if st.ZeroReadQueries == 0 {
		t.Fatalf("no query was served entirely from the cache: %+v", st)
	}

	// Identical queries, identical answers — caching may only change I/O.
	for i := range resOff {
		if resOff[i].Err != nil || resOn[i].Err != nil {
			t.Fatalf("query %d errored: off=%v on=%v", i, resOff[i].Err, resOn[i].Err)
		}
		if len(resOff[i].Objects) != len(resOn[i].Objects) {
			t.Fatalf("query %d: %d objects without caching, %d with",
				i, len(resOff[i].Objects), len(resOn[i].Objects))
		}
	}
}
