package odyssey

// Health is the Explorer's unified health snapshot: the brownout
// controller's state, the maintenance pipeline's health ledger, and the
// device-level fault/retry counters, in one call. Health checkers (the
// cluster router's shard probes) read it instead of stitching three
// ledgers together; the individual accessors (Degraded, BrownoutStats,
// MaintenanceHealth, DiskStats) remain as thin views over the same state.
type Health struct {
	// Degraded reports whether the graceful-degradation controller is
	// engaged right now (Options.BrownoutThreshold); always false with
	// degradation off.
	Degraded bool
	// Brownout is the degradation controller's ledger.
	Brownout BrownoutStats
	// Maintenance is the background maintenance pipeline's health ledger:
	// bounded failure history, quarantine list, pending retries.
	Maintenance MaintenanceHealth
	// Device-level fault and retry counters, summed across every member
	// device (the fault-relevant subset of DiskStats).
	TransientFaults int64
	PermanentFaults int64
	LatencySpikes   int64
	RetriedOps      int64
	RetryExhausted  int64
	// Closed reports whether Close has been called; inspection keeps
	// working on a closed Explorer, serving does not.
	Closed bool
}

// Health returns the unified health snapshot. Safe to call concurrently
// with queries and on a closed Explorer.
func (e *Explorer) Health() Health {
	h := Health{
		Brownout:    e.BrownoutStats(),
		Maintenance: e.engine.MaintenanceHealth(),
		Closed:      e.closed.Load(),
	}
	h.Degraded = h.Brownout.Engaged
	ds := e.dev.Stats()
	h.TransientFaults = ds.TransientFaults
	h.PermanentFaults = ds.PermanentFaults
	h.LatencySpikes = ds.LatencySpikes
	h.RetriedOps = ds.RetriedOps
	h.RetryExhausted = ds.RetryExhausted
	return h
}
