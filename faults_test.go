package odyssey

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"
)

// faultEnv builds an Explorer over two clustered datasets.
func faultEnv(t *testing.T, opts Options) *Explorer {
	t.Helper()
	ex, err := NewExplorer(opts)
	if err != nil {
		t.Fatal(err)
	}
	data := GenerateDatasets(DataConfig{Seed: 23, NumObjects: 2000, Clusters: 3}, 2)
	for i, objs := range data {
		if err := ex.AddDataset(DatasetID(i), objs); err != nil {
			t.Fatal(err)
		}
	}
	return ex
}

// objIDs flattens a result set into a sorted (dataset, id) list for
// order-independent comparison.
func objIDs(objs []Object) []int64 {
	ids := make([]int64, len(objs))
	for i, o := range objs {
		ids[i] = int64(o.Dataset)<<32 | int64(o.ID)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// TestFaultNeverCachesPartialScan pins the robustness contract of the result
// cache and the scan-sharing layer under device faults: a scan that errors
// mid-read must insert nothing into the result cache (no partial or empty
// result masquerading as a cached answer), concurrent queries of the same
// region must all see the error rather than a truncated buffer, and once the
// device heals the same query must return the full, correct result.
func TestFaultNeverCachesPartialScan(t *testing.T) {
	ex := faultEnv(t, Options{ShareScans: true, CacheResults: true})
	defer ex.Close()
	dss := []DatasetID{0, 1}
	warm := Cube(V(0.3, 0.3, 0.3), 0.08)
	cold := Cube(V(0.7, 0.7, 0.7), 0.08)

	// Warm-up builds the level-0 trees and may populate the cache.
	if _, err := ex.Query(warm, dss); err != nil {
		t.Fatal(err)
	}
	before := ex.CacheStats()

	// Every read of every page now fails permanently: the cold region's
	// scans error mid-read on all concurrent attempts.
	ex.SetFaultPlan(FaultPlan{Seed: 9, PermanentRate: 1})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = ex.Query(cold, dss)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("query %d over a fully faulted device returned no error", i)
		}
		if !errors.Is(err, ErrPermanent) {
			t.Fatalf("query %d error lost its classification: %v", i, err)
		}
	}
	after := ex.CacheStats()
	if after.Inserts != before.Inserts {
		t.Fatalf("failed scans inserted into the result cache: %d -> %d inserts",
			before.Inserts, after.Inserts)
	}

	// The device heals (clearing the plan also clears sticky permanent
	// faults — the simulated sectors were remapped); the same query now
	// returns the full result, identical to an Explorer that never faulted.
	ex.SetFaultPlan(FaultPlan{})
	got, err := ex.Query(cold, dss)
	if err != nil {
		t.Fatalf("query after clearing faults: %v", err)
	}
	ref := faultEnv(t, Options{})
	defer ref.Close()
	if _, err := ref.Query(warm, dss); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Query(cold, dss)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("reference query empty; test region misses the data")
	}
	g, w := objIDs(got), objIDs(want)
	if len(g) != len(w) {
		t.Fatalf("healed query returned %d objects, reference %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("healed query diverged from the never-faulted reference at object %d", i)
		}
	}
}

// TestExplorerRetryPolicy pins the Options.Retry wiring: under a transient
// fault storm a retrying Explorer answers queries that a retry-less one
// would fail, the retries are ledgered in DiskStats, and none of them
// extends the simulated clock (a faulted attempt charges nothing).
func TestExplorerRetryPolicy(t *testing.T) {
	ex := faultEnv(t, Options{
		Retry: RetryPolicy{MaxAttempts: 8, Backoff: 50 * time.Microsecond},
	})
	defer ex.Close()
	dss := []DatasetID{0, 1}
	q := Cube(V(0.7, 0.7, 0.7), 0.08)
	if _, err := ex.Query(q, dss); err != nil {
		t.Fatal(err)
	}

	// Baseline: the same query on a healthy device, for the clock check.
	ex.ResetClock()
	ex.SetFaultPlan(FaultPlan{})
	if _, err := ex.Query(q, dss); err != nil {
		t.Fatal(err)
	}
	clean := ex.Clock()

	ex.SetFaultPlan(FaultPlan{Seed: 13, TransientRate: 0.3})
	ex.ResetClock()
	got, err := ex.Query(q, dss)
	if err != nil {
		t.Fatalf("retrying query failed under 30%% transient faults: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("retried query returned nothing")
	}
	stormy := ex.Clock()
	ds := ex.DiskStats()
	if ds.RetriedOps == 0 || ds.TransientFaults == 0 {
		t.Fatalf("retry ledger empty under a storm: %+v", ds)
	}
	// The query's pages are already buffer-cached from the baseline run, so
	// both runs serve mostly cache hits; the point is only that retries add
	// zero simulated time — the stormy run must not exceed the clean run by
	// more than the noise of layout work already done.
	if stormy > 2*clean+time.Millisecond {
		t.Fatalf("retries extended the simulated clock: clean %v, stormy %v", clean, stormy)
	}
}

// TestBrownoutDegradesAndRecovers pins graceful degradation end to end: a
// fault storm crossing BrownoutThreshold engages the brownout (Degraded
// flips, PriMaintenance dispatcher submissions shed with ErrDegraded, which
// still matches ErrOverloaded for compatibility, foreground submissions
// still admitted), and once the storm clears the controller disengages with
// hysteresis.
func TestBrownoutDegradesAndRecovers(t *testing.T) {
	ex := faultEnv(t, Options{
		AsyncMaintenance:   true,
		MaintenanceWorkers: 2,
		Retry:              RetryPolicy{MaxAttempts: 6, Backoff: 50 * time.Microsecond},
		BrownoutThreshold:  0.2,
		BrownoutWindow:     5 * time.Millisecond,
		DropCachesPerQuery: true,
	})
	defer ex.Close()
	dss := []DatasetID{0, 1}
	hot := Cube(V(0.45, 0.45, 0.5), 0.08)
	if _, err := ex.Query(hot, dss); err != nil {
		t.Fatal(err)
	}
	if ex.Degraded() {
		t.Fatal("Explorer degraded before any fault")
	}

	// Storm: half of all read attempts fault. The query loop keeps reads
	// flowing so the controller has windows to judge.
	ex.SetFaultPlan(FaultPlan{Seed: 21, TransientRate: 0.5})
	deadline := time.Now().Add(10 * time.Second)
	for !ex.Degraded() && time.Now().Before(deadline) {
		ex.Query(hot, dss) // errors expected mid-storm; reads still count
	}
	if !ex.Degraded() {
		t.Fatal("brownout never engaged under a 50% fault storm")
	}

	// Degraded serving: background-tagged submissions shed, foreground
	// admitted.
	d := NewDispatcher(ex, 2)
	out := make(chan BatchResult, 4)
	low := WithPriority(context.Background(), PriMaintenance)
	if err := d.SubmitCtx(low, 0, Query{Range: hot, Datasets: dss}, out); !errors.Is(err, ErrDegraded) {
		t.Fatalf("PriMaintenance submission during brownout = %v, want ErrDegraded", err)
	} else if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("brownout shed %v does not wrap ErrOverloaded; compat contract broken", err)
	}
	if err := d.Submit(1, Query{Range: hot, Datasets: dss}, out); err != nil {
		t.Fatalf("foreground submission during brownout refused: %v", err)
	}
	d.Close()
	<-out // the storm may fail the query itself; only admission is asserted

	// The storm clears; clean traffic must disengage the brownout.
	ex.SetFaultPlan(FaultPlan{})
	deadline = time.Now().Add(10 * time.Second)
	for ex.Degraded() && time.Now().Before(deadline) {
		if _, err := ex.Query(hot, dss); err != nil {
			t.Fatalf("query after the storm cleared: %v", err)
		}
	}
	if ex.Degraded() {
		t.Fatal("brownout never disengaged after the storm cleared")
	}
	bs := ex.BrownoutStats()
	if bs.Engagements == 0 {
		t.Fatalf("no engagement ledgered: %+v", bs)
	}
	if bs.ShedQueries == 0 {
		t.Fatalf("no shed ledgered: %+v", bs)
	}
	if ds := ex.DiskStats(); ds.RetriedOps == 0 {
		t.Fatalf("storm produced no ledgered retries: %+v", ds)
	}
}
