// Package odyssey is the public API of the Space Odyssey reproduction: an
// engine for efficient exploration of multiple spatial datasets that
// incrementally indexes data as range queries arrive (no upfront indexing)
// and reorganizes the on-disk layout so that areas of datasets queried
// together are stored together.
//
// It reproduces Pavlovic et al., "Space Odyssey — Efficient Exploration of
// Scientific Data" (ExploreDB/PODS 2016), including every baseline the
// paper evaluates against. Storage runs on a deterministic simulated disk
// (see internal/simdisk) so experiments are hardware-independent; the
// simulated clock is the reported metric.
//
// Typical use:
//
//	ex, _ := odyssey.NewExplorer(odyssey.Options{})
//	ex.AddDataset(0, objectsFromInstrumentA)
//	ex.AddDataset(1, objectsFromInstrumentB)
//	ex.AddDataset(2, objectsFromInstrumentC)
//	hits, _ := ex.Query(odyssey.Cube(odyssey.V(0.5, 0.5, 0.5), 0.01),
//		[]odyssey.DatasetID{0, 2})
package odyssey

import (
	"context"

	"spaceodyssey/internal/core"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/simdisk"
	"spaceodyssey/internal/workload"
)

// Core geometric and record types, aliased from the internal packages so
// values flow freely between the public API and the engine.
type (
	// Vec is a point in 3D space.
	Vec = geom.Vec
	// Box is a closed axis-aligned box.
	Box = geom.Box
	// Object is one spatial object (id, dataset, center, half-extent).
	Object = object.Object
	// DatasetID identifies a dataset.
	DatasetID = object.DatasetID
	// CostModel holds simulated-disk timing parameters.
	CostModel = simdisk.CostModel
	// DiskStats aggregates simulated-device activity.
	DiskStats = simdisk.Stats
	// ChannelStats snapshots one I/O channel's busy time and seek split.
	ChannelStats = simdisk.ChannelStats
	// PlacementPolicy decides which member device of a storage array a new
	// file lands on (see Options.Placement).
	PlacementPolicy = simdisk.PlacementPolicy
	// Metrics exposes the engine's internal counters.
	Metrics = core.Metrics
	// MaintenanceStats counts the background maintenance pipeline's
	// activity (see Options.AsyncMaintenance).
	MaintenanceStats = core.MaintenanceStats
	// MaintenanceHealth is the pipeline's structured health ledger: bounded
	// failure history, quarantine list, pending retries.
	MaintenanceHealth = core.MaintenanceHealth
	// MaintenanceFailure is one entry of the failure history.
	MaintenanceFailure = core.MaintenanceFailure
	// QuarantinedCell is one maintenance unit the scheduler has stopped
	// working on after repeated failures (see Explorer.Unquarantine).
	QuarantinedCell = core.QuarantinedCell
	// FaultPlan is a deterministic device fault-injection plan (see
	// Explorer.SetFaultPlan).
	FaultPlan = simdisk.FaultPlan
	// PageFault is one explicit per-file/page fault pattern of a FaultPlan.
	PageFault = simdisk.PageFault
	// FaultKind classifies an injected fault: transient, permanent, or a
	// latency spike.
	FaultKind = simdisk.FaultKind
	// RetryPolicy is the storage-read retry policy (see Options.Retry).
	RetryPolicy = simdisk.RetryPolicy
	// CacheStats is the result-cache ledger (see Options.CacheResults).
	CacheStats = core.CacheStats
	// Query couples a range with the datasets it targets.
	Query = workload.Query
	// MergeLevelPolicy selects the mixed-refinement-level merge strategy.
	MergeLevelPolicy = core.LevelPolicy
	// Priority classifies device operations for QoS: foreground query I/O,
	// throttleable background maintenance, or deadline-imminent urgent work
	// (see AdmissionConfig.UrgentDeadline and Options.MaintenanceBudget).
	Priority = simdisk.Priority
)

// Storage QoS priority classes.
const (
	// PriForeground is interactive query I/O (the default class).
	PriForeground = simdisk.PriForeground
	// PriMaintenance is background layout maintenance, throttleable via
	// Options.MaintenanceBudget.
	PriMaintenance = simdisk.PriMaintenance
	// PriUrgent is deadline-imminent query I/O; it jumps per-channel queues.
	PriUrgent = simdisk.PriUrgent
)

// WithPriority returns a context whose queries run under the given storage
// QoS class: their device operations are charged to that class, and
// dispatcher submissions tagged PriMaintenance are shed with ErrDegraded
// (wrapping ErrOverloaded) while the Explorer is browned out
// (Options.BrownoutThreshold). Query APIs
// attach PriForeground themselves when the context carries no class.
func WithPriority(ctx context.Context, pri Priority) context.Context {
	ctx, _ = simdisk.WithOpScope(ctx, pri)
	return ctx
}

// Merge level policies (paper §3.2.5).
const (
	// MergeSameLevel merges only equal-level partitions (paper default).
	MergeSameLevel = core.SameLevel
	// MergeRefineToFinest refines lagging datasets before merging.
	MergeRefineToFinest = core.RefineToFinest
	// MergeCoarsestCover merges at the coarsest covering cell.
	MergeCoarsestCover = core.CoarsestCover
)

// ErrCanceled is the storage stack's cancellation sentinel: every error a
// canceled or deadline-expired query returns wraps it, alongside the
// context's own error. Match with errors.Is(err, ErrCanceled) — or with
// context.Canceled / context.DeadlineExceeded, or the IsCanceled helper.
var ErrCanceled = simdisk.ErrCanceled

// Fault classification sentinels: every injected device read fault wraps
// exactly one of them. Transient faults are worth retrying (Options.Retry
// does, automatically); permanent faults are not, and fail fast through
// every retry policy.
var (
	// ErrTransient marks a fault that may succeed on retry.
	ErrTransient = simdisk.ErrTransient
	// ErrPermanent marks a fault retries cannot fix (bad sector, dead
	// device region).
	ErrPermanent = simdisk.ErrPermanent
)

// Fault kinds for FaultPlan.Pages patterns.
const (
	// FaultTransient injects retryable read failures.
	FaultTransient = simdisk.FaultTransient
	// FaultPermanent injects unretryable read failures.
	FaultPermanent = simdisk.FaultPermanent
	// FaultSpike injects wall-clock latency spikes (reads succeed, slowly).
	FaultSpike = simdisk.FaultSpike
)

// Geometry constructors, re-exported for convenience.
var (
	// V constructs a Vec.
	V = geom.V
	// NewBox constructs a Box from min and max corners.
	NewBox = geom.NewBox
	// Cube constructs an axis-aligned cube from center and side.
	Cube = geom.Cube
	// BoxFromCenter constructs a Box from center and half-extent.
	BoxFromCenter = geom.BoxFromCenter
	// UnitBox returns [0,1]^3.
	UnitBox = geom.UnitBox
	// DefaultCostModel returns the SAS-disk cost model used by the paper's
	// experiments.
	DefaultCostModel = simdisk.DefaultCostModel
	// SSDCostModel returns an SSD-like cost model for sensitivity runs.
	SSDCostModel = simdisk.SSDCostModel
	// GroupAffinityPlacement co-locates a dataset's files (and the merge
	// files of its hottest combinations) on one member device.
	GroupAffinityPlacement = simdisk.GroupAffinity
	// RoundRobinPlacement stripes successive files across member devices.
	RoundRobinPlacement = simdisk.RoundRobin
	// PageStripePlacement stripes every file page-granularly across all
	// member devices in chunks of the given page count (RAID-0 style): one
	// file's sequential run fans out over every spindle and reads proceed
	// on all of them concurrently.
	PageStripePlacement = simdisk.PageStripe
)
