package odyssey

import (
	"testing"

	"spaceodyssey/internal/engine"
)

func testData(n, perDS int, seed int64) [][]Object {
	return GenerateDatasets(DataConfig{Seed: seed, NumObjects: perDS, Clusters: 5}, n)
}

func TestNewExplorerDefaults(t *testing.T) {
	ex, err := NewExplorer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.NumDatasets() != 0 {
		t.Fatal("fresh explorer has datasets")
	}
	if ex.Clock() != 0 {
		t.Fatal("fresh explorer has elapsed time")
	}
}

func TestNewExplorerRejectsBadCost(t *testing.T) {
	if _, err := NewExplorer(Options{Cost: CostModel{Seek: -1}}); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestAddDatasetValidation(t *testing.T) {
	ex, err := NewExplorer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := testData(2, 500, 1)
	if err := ex.AddDataset(0, data[0]); err != nil {
		t.Fatal(err)
	}
	if err := ex.AddDataset(0, data[0]); err == nil {
		t.Fatal("duplicate dataset accepted")
	}
	// Objects tagged with the wrong dataset id are rejected.
	if err := ex.AddDataset(5, data[1]); err == nil {
		t.Fatal("mis-tagged objects accepted")
	}
	if ex.NumDatasets() != 1 {
		t.Fatalf("NumDatasets = %d", ex.NumDatasets())
	}
}

func TestQueryLifecycle(t *testing.T) {
	ex, err := NewExplorer(Options{DropCachesPerQuery: true})
	if err != nil {
		t.Fatal(err)
	}
	data := testData(3, 3000, 2)
	for i, objs := range data {
		if err := ex.AddDataset(DatasetID(i), objs); err != nil {
			t.Fatal(err)
		}
	}
	// Before any query nothing is indexed.
	info, err := ex.Dataset(0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Indexed {
		t.Fatal("dataset indexed before first query")
	}
	if info.Objects != 3000 || info.RawPages == 0 {
		t.Fatalf("info = %+v", info)
	}

	q := Cube(V(0.5, 0.5, 0.5), 0.05)
	objs, dt, err := ex.QueryTimed(q, []DatasetID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if dt <= 0 {
		t.Fatal("query cost zero simulated time")
	}
	// Check against a naive filter of the source data.
	want := 0
	for dsi := 0; dsi < 2; dsi++ {
		for _, o := range data[dsi] {
			if o.Intersects(q) {
				want++
			}
		}
	}
	if len(objs) != want {
		t.Fatalf("query returned %d objects, naive %d", len(objs), want)
	}

	info, _ = ex.Dataset(0)
	if !info.Indexed || info.Leaves == 0 {
		t.Fatal("dataset 0 not indexed after query")
	}
	info2, _ := ex.Dataset(2)
	if info2.Indexed {
		t.Fatal("unqueried dataset 2 was indexed")
	}
	m := ex.Metrics()
	if m.Queries != 1 || m.TreesBuilt != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	if ex.DiskStats().PageReads == 0 {
		t.Fatal("no disk reads recorded")
	}
}

func TestQueryErrors(t *testing.T) {
	ex, err := NewExplorer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Query(UnitBox(), nil); err == nil {
		t.Fatal("empty dataset list accepted")
	}
	if _, err := ex.Query(UnitBox(), []DatasetID{9}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := ex.Dataset(4); err == nil {
		t.Fatal("Dataset(unknown) succeeded")
	}
	if _, err := ex.TargetLevels(4, 1e-6); err == nil {
		t.Fatal("TargetLevels(unknown) succeeded")
	}
}

func TestMergingVisibleThroughAPI(t *testing.T) {
	ex, err := NewExplorer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := testData(4, 2500, 3)
	for i, objs := range data {
		if err := ex.AddDataset(DatasetID(i), objs); err != nil {
			t.Fatal(err)
		}
	}
	q := Cube(V(0.4, 0.4, 0.4), 0.06)
	dss := []DatasetID{0, 1, 2}
	for i := 0; i < 3; i++ {
		if _, err := ex.Query(q, dss); err != nil {
			t.Fatal(err)
		}
	}
	if ex.MergeFileCount() == 0 {
		t.Fatal("no merge file after repeated combination queries")
	}
	if ex.MergeSpacePages() == 0 {
		t.Fatal("merge files occupy no space")
	}
	if ex.Metrics().PartitionsFromMerge == 0 {
		t.Fatal("no partitions served from merge files")
	}
}

func TestDisableMergingOption(t *testing.T) {
	ex, err := NewExplorer(Options{DisableMerging: true})
	if err != nil {
		t.Fatal(err)
	}
	data := testData(3, 1000, 4)
	for i, objs := range data {
		if err := ex.AddDataset(DatasetID(i), objs); err != nil {
			t.Fatal(err)
		}
	}
	q := Cube(V(0.5, 0.5, 0.5), 0.08)
	for i := 0; i < 4; i++ {
		if _, err := ex.Query(q, []DatasetID{0, 1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	if ex.MergeFileCount() != 0 {
		t.Fatal("merge files created despite DisableMerging")
	}
}

func TestTargetLevels(t *testing.T) {
	ex, err := NewExplorer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := testData(1, 100, 5)
	if err := ex.AddDataset(0, data[0]); err != nil {
		t.Fatal(err)
	}
	// ppl=64 → level-1 volume 1/64; qVol 1e-5, rt=4:
	// ratio = (1/64)/(4e-5) ≈ 390 → 2 levels.
	levels, err := ex.TargetLevels(0, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if levels != 2 {
		t.Fatalf("TargetLevels = %d, want 2", levels)
	}
}

func TestCompareAgreesAcrossEngines(t *testing.T) {
	data := testData(4, 1500, 6)
	w, err := GenerateWorkload(WorkloadConfig{
		Seed: 7, NumQueries: 25, NumDatasets: 4, DatasetsPerQuery: 3,
		QueryVolumeFrac: 1e-4, RangeDist: RangeClustered, CombDist: CombZipf,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compare(data, w,
		[]BaselineKind{EngineOdyssey, EngineGrid1fE, EngineNaiveScan},
		CompareOptions{GridCells: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	for _, r := range res[1:] {
		if r.Objects != res[0].Objects {
			t.Fatalf("%s returned %d objects, %s returned %d",
				r.Engine, r.Objects, res[0].Engine, res[0].Objects)
		}
	}
	for _, r := range res {
		if len(r.PerQuery) != 25 {
			t.Fatalf("%s has %d per-query times", r.Engine, len(r.PerQuery))
		}
		if r.Total != r.IndexTime+r.QueryTime {
			t.Fatalf("%s: total mismatch", r.Engine)
		}
	}
	// Odyssey carries metrics; Grid does not.
	if res[0].Metrics == nil {
		t.Fatal("Odyssey result missing metrics")
	}
	if res[1].Metrics != nil {
		t.Fatal("Grid result has Odyssey metrics")
	}
}

func TestPublicOracleAgreement(t *testing.T) {
	// End-to-end: the public API must agree with the naive oracle across a
	// mixed workload (integration test at the API boundary).
	ex, err := NewExplorer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := testData(3, 2000, 8)
	for i, objs := range data {
		if err := ex.AddDataset(DatasetID(i), objs); err != nil {
			t.Fatal(err)
		}
	}
	w, err := GenerateWorkload(WorkloadConfig{
		Seed: 9, NumQueries: 40, NumDatasets: 3, DatasetsPerQuery: 2,
		QueryVolumeFrac: 1e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		got, err := ex.Query(q.Range, q.Datasets)
		if err != nil {
			t.Fatal(err)
		}
		var want []Object
		for _, ds := range q.Datasets {
			for _, o := range data[ds] {
				if o.Intersects(q.Range) {
					want = append(want, o)
				}
			}
		}
		if !engine.SameObjects(got, want) {
			t.Fatalf("query %d: %d objects, oracle %d", q.ID, len(got), len(want))
		}
	}
}

// replayWorkload runs the same serial workload through an Explorer with the
// given storage topology and returns its aggregate disk stats.
func replayWorkload(t *testing.T, opts Options) DiskStats {
	t.Helper()
	ex, err := NewExplorer(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, objs := range testData(4, 1500, 21) {
		if err := ex.AddDataset(DatasetID(i), objs); err != nil {
			t.Fatal(err)
		}
	}
	w, err := GenerateWorkload(WorkloadConfig{
		Seed: 17, NumQueries: 60, NumDatasets: 4, DatasetsPerQuery: 3,
		QueryVolumeFrac: 2e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		if _, err := ex.Query(q.Range, q.Datasets); err != nil {
			t.Fatal(err)
		}
	}
	return ex.DiskStats()
}

// TestDeviceArrayStatsConservation pins the invariant that striping moves
// I/O between devices but never changes how much I/O the engine performs: a
// serial workload replayed on a single device and on a 2x2 array produces
// identical volume counters (reads, writes, bytes, cache hits — the cache
// is ample on both sides, so hit patterns match too). Seek counts are
// excluded by design: they are exactly what the topology is supposed to
// change.
func TestDeviceArrayStatsConservation(t *testing.T) {
	single := replayWorkload(t, Options{CachePages: 8192})
	for name, opts := range map[string]Options{
		"affinity":   {CachePages: 8192, Devices: 2, Channels: 2},
		"roundrobin": {CachePages: 8192, Devices: 2, Channels: 2, Placement: RoundRobinPlacement()},
	} {
		arr := replayWorkload(t, opts)
		if arr.PageReads != single.PageReads || arr.PageWrites != single.PageWrites ||
			arr.BytesRead != single.BytesRead || arr.BytesWritten != single.BytesWritten ||
			arr.CacheHits != single.CacheHits {
			t.Errorf("%s: array stats %+v, single-device %+v — I/O volume must be invariant under placement",
				name, arr, single)
		}
	}
}

// TestTopologyDefaults checks the single-device topology surface.
func TestTopologyDefaults(t *testing.T) {
	ex, err := NewExplorer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	topo := ex.Topology()
	if topo.Devices != 1 || topo.Channels != 1 || topo.Placement != "single" {
		t.Fatalf("default Topology() = %+v", topo)
	}
	if ds := ex.DeviceStats(); len(ds) != 1 || ds[0] != ex.DiskStats() {
		t.Fatalf("single-device DeviceStats = %+v, DiskStats %+v", ds, ex.DiskStats())
	}
	cs := ex.ChannelStats()
	if len(cs) != 1 || len(cs[0]) != 1 {
		t.Fatalf("default ChannelStats shape = %dx?, want 1x1", len(cs))
	}
}
