package odyssey

// Race-mode oracle storm for the adaptive serving stack: the drift scenario
// replayed through a fully adaptive pipeline (adaptive batch window, auto-
// sized result cache, heat decay) from many submitting goroutines at once
// must return byte-identical results to a plain static dispatcher with no
// caching at all. Self-tuning may move latency and I/O, never answers.
// The test is deliberately heavy on concurrency so `go test -race` sweeps
// the tuner, the ghost list, and the lazy decay paths under contention.

import (
	"sync"
	"testing"
	"time"

	"spaceodyssey/internal/workload"
)

func stormEnv(t *testing.T, opts Options) (*Explorer, workload.ScenarioWorkload) {
	t.Helper()
	ex, err := NewExplorer(opts)
	if err != nil {
		t.Fatal(err)
	}
	data := GenerateDatasets(DataConfig{Seed: 7, NumObjects: 4000, Clusters: 6}, 6)
	for i, objs := range data {
		if err := ex.AddDataset(DatasetID(i), objs); err != nil {
			t.Fatal(err)
		}
	}
	w, err := workload.GenerateScenario("drift", workload.ScenarioConfig{
		Seed: 99, NumQueries: 120, NumDatasets: 6, DatasetsPerQuery: 2,
		QueryVolumeFrac: 2e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ex, w
}

func TestScenarioStormAdaptiveMatchesStaticOracle(t *testing.T) {
	// Oracle: static zero-window dispatcher, no result cache, no sharing —
	// the simplest serving path over the same converged layout.
	oracle, w := stormEnv(t, Options{})
	defer oracle.Close()
	want := make([][]Object, len(w.Queries))
	for i, q := range w.Queries {
		objs, err := oracle.Query(q.Range, q.Datasets)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = objs
	}

	// Candidate: everything adaptive at once, tiny starting capacity so the
	// ghost-driven tuner actually resizes mid-storm.
	ex, _ := stormEnv(t, Options{
		ShareScans: true, CacheResults: true, CacheCapacity: 64,
		AdaptiveCache: true, HeatHalfLife: 16,
	})
	defer ex.Close()
	d := NewDispatcherWithAdmission(ex, 4, AdmissionConfig{
		BatchWindow:    time.Millisecond,
		AdaptiveBatch:  true,
		MinBatchWindow: 250 * time.Microsecond,
		MaxBatchWindow: 4 * time.Millisecond,
	})
	out := make(chan BatchResult, len(w.Queries))
	const stormers = 8
	var wg sync.WaitGroup
	for s := 0; s < stormers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// Interleave submitters across the drift phases so cache
			// epochs, decay, and the batch tuner all churn concurrently.
			for i := s; i < len(w.Queries); i += stormers {
				if err := d.Submit(i, w.Queries[i], out); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	d.Close()
	close(out)

	got := 0
	for r := range out {
		if r.Err != nil {
			t.Fatalf("query %d failed: %v", r.Index, r.Err)
		}
		if !sameObjects(r.Objects, want[r.Index]) {
			t.Fatalf("query %d: adaptive pipeline returned %d objects, oracle %d",
				r.Index, len(r.Objects), len(want[r.Index]))
		}
		got++
	}
	if got != len(w.Queries) {
		t.Fatalf("served %d of %d queries", got, len(w.Queries))
	}

	// The adaptive machinery must actually have engaged: the cache saw
	// traffic and the tuner took at least one step somewhere in the run.
	cs := ex.CacheStats()
	if cs.Inserts == 0 {
		t.Fatal("result cache never populated during the storm")
	}
	st := d.AdmissionStats()
	if st.BatchedQueries != int64(len(w.Queries)) {
		t.Fatalf("BatchedQueries = %d, want %d", st.BatchedQueries, len(w.Queries))
	}
}
