package odyssey

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"spaceodyssey/internal/engine"
)

// Contention-model storms: QoS priority classes and the maintenance I/O
// budget shape *when* work runs, never *what* a query returns. The
// throttle gates wall-clock admission of background device operations, so
// a throttled run must produce byte-identical result sets to an
// unthrottled one — and both must match the NaiveScan oracle.

// fixedStormQueries draws a deterministic query list so two independent
// Explorer runs execute the identical workload.
func fixedStormQueries(env *oracleEnv, n int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	queries := make([]Query, n)
	for i := range queries {
		queries[i] = env.randomQuery(rng)
	}
	return queries
}

// runStorm fires the query list at the Explorer from workers goroutines
// (striding over indices) and returns the per-query result sets in input
// order.
func runStorm(t *testing.T, env *oracleEnv, queries []Query, workers int) [][]Object {
	t.Helper()
	results := make([][]Object, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < len(queries); i += workers {
				results[i], errs[i] = env.ex.Query(queries[i].Range, queries[i].Datasets)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	return results
}

// TestThrottledMaintenanceByteIdentical pins the budget throttle's
// zero-effect contract on results: the same concurrent workload on a
// budget-throttled async Explorer and an unthrottled one returns
// byte-identical result sets, and both match the oracle. Only timing may
// differ.
func TestThrottledMaintenanceByteIdentical(t *testing.T) {
	run := func(budget float64) ([]Query, [][]Object, int64) {
		env := newOracleEnv(t, Options{
			AsyncMaintenance: true, MaintenanceWorkers: 2, ShareScans: true,
			RealTimeScale: 0.002, MaintenanceBudget: budget,
		}, 3, 2000)
		defer env.ex.Close()
		queries := fixedStormQueries(env, 48, 99)
		results := runStorm(t, env, queries, 4)
		for i, q := range queries {
			want, err := env.oracle.Query(q.Range, q.Datasets)
			if err != nil {
				t.Fatalf("oracle query %d: %v", i, err)
			}
			if !engine.SameObjects(results[i], want) {
				t.Errorf("budget %v query %d: engine returned %d objects, oracle %d",
					budget, i, len(results[i]), len(want))
			}
		}
		return queries, results, env.ex.DiskStats().ThrottledOps
	}

	baseQueries, base, baseThrottled := run(0)
	thrQueries, throttled, throttledOps := run(0.25)
	if baseThrottled != 0 {
		t.Errorf("unthrottled run recorded %d throttled ops", baseThrottled)
	}
	t.Logf("throttled run gated %d maintenance ops", throttledOps)
	for i := range baseQueries {
		if thrQueries[i].Range != baseQueries[i].Range {
			t.Fatalf("query list diverged at %d; the comparison is vacuous", i)
		}
		if !engine.SameObjects(base[i], throttled[i]) {
			t.Errorf("query %d: throttled run returned %d objects, unthrottled %d — results must be byte-identical",
				i, len(throttled[i]), len(base[i]))
		}
	}
}

// TestUrgentDeadlineOracle covers the dispatcher's deadline-imminent
// escalation: with AdmissionConfig.UrgentDeadline set, queries whose
// remaining deadline is inside the threshold run as PriUrgent — they jump
// per-channel queues but must still return exactly the oracle's answer.
func TestUrgentDeadlineOracle(t *testing.T) {
	env := newOracleEnv(t, Options{
		AsyncMaintenance: true, MaintenanceWorkers: 2, ShareScans: true,
		RealTimeScale: 0.001, MaintenanceBudget: 0.25,
	}, 3, 2000)
	defer env.ex.Close()
	d := NewDispatcherWithAdmission(env.ex, 4, AdmissionConfig{
		UrgentDeadline: time.Minute,
	})
	defer d.Close()

	queries := fixedStormQueries(env, 32, 7)
	out := make(chan BatchResult, len(queries))
	for i, q := range queries {
		// Every context carries a deadline inside the urgent threshold, so
		// each query is escalated at worker pickup. The deadline itself is
		// generous enough that nothing is actually canceled.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := d.SubmitCtx(ctx, i, q, out); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for n := 0; n < len(queries); n++ {
		res := <-out
		if res.Err != nil {
			t.Fatalf("query %d: %v", res.Index, res.Err)
		}
		want, err := env.oracle.Query(queries[res.Index].Range, queries[res.Index].Datasets)
		if err != nil {
			t.Fatal(err)
		}
		if !engine.SameObjects(res.Objects, want) {
			t.Errorf("urgent query %d: engine returned %d objects, oracle %d",
				res.Index, len(res.Objects), len(want))
		}
	}
}
