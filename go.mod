module spaceodyssey

go 1.24
