package odyssey

import (
	"context"
	"testing"
	"time"
)

// Scan-sharing oracle storms: the full race-mode equivalence suite with
// Options.ShareScans on — coalesced device reads, attached scans and
// single-flight builds must change I/O accounting, never what a query
// returns. The real-time emulation stretches device latencies into
// wall-clock windows so attachment genuinely happens under the race
// detector.

func TestConcurrentQueriesMatchOracleShareScans(t *testing.T) {
	env := newOracleEnv(t, Options{ShareScans: true, RealTimeScale: 0.002}, 3, 2000)
	runConcurrentOracle(t, env, 8, 20)
	if m := env.ex.Metrics(); m.Queries != 8*20 {
		t.Errorf("engine recorded %d queries, want %d", m.Queries, 8*20)
	}
}

func TestConcurrentQueriesMatchOracleShareScansAsync(t *testing.T) {
	env := newOracleEnv(t, Options{
		ShareScans: true, AsyncMaintenance: true, MaintenanceWorkers: 3,
		RealTimeScale: 0.002,
	}, 3, 2000)
	defer env.ex.Close()
	runConcurrentOracle(t, env, 8, 15)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := env.ex.Quiesce(ctx); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	if err := env.ex.MaintenanceErr(); err != nil {
		t.Fatalf("background maintenance task failed: %v", err)
	}
	env.ex.SetRealTimeScale(0)
	// Post-quiesce, the converged sharing engine still matches the oracle.
	for i, q := range []Query{
		{Range: Cube(V(0.35, 0.4, 0.4), 0.06), Datasets: []DatasetID{0, 1, 2}},
		{Range: Cube(V(0.5, 0.5, 0.5), 0.12), Datasets: []DatasetID{0, 2}},
	} {
		if err := env.check(q); err != nil {
			t.Fatalf("post-quiesce query %d: %v", i, err)
		}
	}
}

func TestConcurrentQueriesMatchOracleShareScansArray(t *testing.T) {
	env := newOracleEnv(t, Options{
		ShareScans: true, Devices: 2, Channels: 2, RealTimeScale: 0.002,
	}, 3, 2000)
	runConcurrentOracle(t, env, 8, 15)
	// Conservation still holds with coalescing: per-device counters sum to
	// the aggregate view, coalesced counters included.
	var sum DiskStats
	for _, s := range env.ex.DeviceStats() {
		sum.Add(s)
	}
	if sum != env.ex.DiskStats() {
		t.Errorf("DeviceStats sum %+v != DiskStats %+v", sum, env.ex.DiskStats())
	}
}

// TestSharingStatsLedger drives a hot-region pooled workload twice — with
// and without sharing — and checks that (a) the sharing run reports saved
// work in its ledger and (b) both runs return identical result multisets.
func TestSharingStatsLedger(t *testing.T) {
	build := func(share bool) (*Explorer, []BatchResult) {
		ex, err := NewExplorer(Options{
			ShareScans:         share,
			DropCachesPerQuery: true, // the paper's cold-cache methodology: misses galore
			RealTimeScale:      0.002,
		})
		if err != nil {
			t.Fatal(err)
		}
		data := GenerateDatasets(DataConfig{Seed: 7, NumObjects: 2000, Clusters: 4}, 3)
		for i, objs := range data {
			if err := ex.AddDataset(DatasetID(i), objs); err != nil {
				t.Fatal(err)
			}
		}
		hot := Cube(V(0.45, 0.45, 0.5), 0.07)
		queries := make([]Query, 48)
		for i := range queries {
			queries[i] = Query{Range: hot, Datasets: []DatasetID{0, 1, 2}}
		}
		res, err := ex.QueryBatch(queries, 8)
		if err != nil {
			t.Fatal(err)
		}
		return ex, res
	}

	exOff, resOff := build(false)
	exOn, resOn := build(true)

	if st := exOff.SharingStats(); st != (SharingStats{}) {
		t.Fatalf("sharing off but ledger non-zero: %+v", st)
	}
	st := exOn.SharingStats()
	if st.CoalescedReads+st.AttachedScans+st.SharedBuilds == 0 {
		t.Fatalf("hot-region pooled run shared nothing: %+v", st)
	}
	if ds := exOn.DiskStats(); ds.CoalescedPages != st.PagesSaved {
		t.Fatalf("PagesSaved %d != device CoalescedPages %d", st.PagesSaved, ds.CoalescedPages)
	}

	// Identical queries, identical answers — sharing may only change I/O.
	for i := range resOff {
		if resOff[i].Err != nil || resOn[i].Err != nil {
			t.Fatalf("query %d errored: off=%v on=%v", i, resOff[i].Err, resOn[i].Err)
		}
		if len(resOff[i].Objects) != len(resOn[i].Objects) {
			t.Fatalf("query %d: %d objects without sharing, %d with",
				i, len(resOff[i].Objects), len(resOn[i].Objects))
		}
	}
}

// TestBatchWindowDispatch pins the micro-batcher: every submission flows
// through the stage, grouped flushes are counted, every result is
// delivered, and Close flushes the stage before shutting the pool down.
func TestBatchWindowDispatch(t *testing.T) {
	ex, err := NewExplorer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := GenerateDatasets(DataConfig{Seed: 11, NumObjects: 1000, Clusters: 3}, 3)
	for i, objs := range data {
		if err := ex.AddDataset(DatasetID(i), objs); err != nil {
			t.Fatal(err)
		}
	}
	d := NewDispatcherWithAdmission(ex, 4, AdmissionConfig{BatchWindow: 2 * time.Millisecond})
	const n = 40
	out := make(chan BatchResult, n)
	combos := [][]DatasetID{{0, 1, 2}, {1}, {0, 2}}
	for i := 0; i < n; i++ {
		q := Query{Range: Cube(V(0.4, 0.5, 0.5), 0.08), Datasets: combos[i%len(combos)]}
		if err := d.Submit(i, q, out); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	d.Close()
	close(out)
	seen := 0
	for r := range out {
		if r.Err != nil {
			t.Fatalf("query %d failed: %v", r.Index, r.Err)
		}
		seen++
	}
	if seen != n {
		t.Fatalf("delivered %d of %d batched results", seen, n)
	}
	st := d.AdmissionStats()
	if st.BatchedQueries != n {
		t.Fatalf("BatchedQueries = %d, want %d", st.BatchedQueries, n)
	}
	if st.Batches == 0 || st.Batches > n {
		t.Fatalf("Batches = %d, want in [1, %d]", st.Batches, n)
	}
	if st.Admitted != n {
		t.Fatalf("Admitted = %d, want %d", st.Admitted, n)
	}
}

// TestBatchGroupKey pins the grouping rule: same combination and same
// coarse cell collate, different combinations or distant centers do not.
func TestBatchGroupKey(t *testing.T) {
	ex, err := NewExplorer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(ex, 1)
	defer d.Close()
	a := d.batchGroupKey(Query{Range: Cube(V(0.41, 0.42, 0.43), 0.02), Datasets: []DatasetID{2, 0, 1}})
	b := d.batchGroupKey(Query{Range: Cube(V(0.44, 0.41, 0.42), 0.03), Datasets: []DatasetID{0, 1, 2}})
	if a != b {
		t.Fatalf("same combo + same cell produced different keys: %q vs %q", a, b)
	}
	c := d.batchGroupKey(Query{Range: Cube(V(0.41, 0.42, 0.43), 0.02), Datasets: []DatasetID{0, 1}})
	if a == c {
		t.Fatal("different combinations share a group key")
	}
	e := d.batchGroupKey(Query{Range: Cube(V(0.95, 0.95, 0.95), 0.02), Datasets: []DatasetID{2, 0, 1}})
	if a == e {
		t.Fatal("distant centers share a group key")
	}
}

// TestExactChargeAttribution pins the arrival-aware contention model's
// attribution contract on every topology. Every query is billed its own
// service time (the old max-across-channels clock delta shadowed later
// serial queries on multi-channel topologies down to ~0), and the bills
// conserve: summed over a serial workload they equal the platters' total
// busy time plus cache-hit service plus recorded queueing delay — no
// charge is double-billed or dropped. On the 1x1 topology the sum must
// stay bit-for-bit identical to the device clock.
func TestExactChargeAttribution(t *testing.T) {
	cost := CostModel{
		Seek:     500 * time.Microsecond,
		Transfer: 25 * time.Microsecond,
		CacheHit: 200 * time.Nanosecond,
	}
	hot := Cube(V(0.3, 0.3, 0.3), 0.08)
	queries := []Query{
		{Range: hot, Datasets: []DatasetID{0, 1, 2}},
		{Range: hot, Datasets: []DatasetID{0, 1, 2}},
		{Range: Cube(V(0.6, 0.5, 0.4), 0.1), Datasets: []DatasetID{0, 1}},
		{Range: Cube(V(0.3, 0.3, 0.3), 0.06), Datasets: []DatasetID{0, 1, 2}},
		{Range: Cube(V(0.7, 0.7, 0.7), 0.05), Datasets: []DatasetID{2}},
		{Range: Cube(V(0.25, 0.35, 0.3), 0.07), Datasets: []DatasetID{0, 1, 2}},
	}
	data := GenerateDatasets(DataConfig{Seed: 7, NumObjects: 2000, Clusters: 3}, 3)

	run := func(t *testing.T, opts Options) (*Explorer, time.Duration) {
		t.Helper()
		opts.Cost = cost
		ex, err := NewExplorer(opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, objs := range data {
			if err := ex.AddDataset(DatasetID(i), objs); err != nil {
				t.Fatal(err)
			}
		}
		var total time.Duration
		for qi, q := range queries {
			_, dt, err := ex.QueryTimed(q.Range, q.Datasets)
			if err != nil {
				t.Fatal(err)
			}
			if dt <= 0 {
				t.Errorf("query %d billed %v; every query must be charged its own service time", qi, dt)
			}
			total += dt
		}
		return ex, total
	}

	// conserved asserts sum(per-query bills) == busy + cache hits + queueing.
	conserved := func(t *testing.T, ex *Explorer, total time.Duration) {
		t.Helper()
		var busy time.Duration
		for _, dev := range ex.ChannelStats() {
			for _, ch := range dev {
				busy += ch.Busy
			}
		}
		stats := ex.DiskStats()
		want := busy + time.Duration(stats.CacheHits)*cost.CacheHit + stats.QueuedDelay
		if total != want {
			t.Fatalf("QueryTimed sum %v != busy %v + cache %v + queued %v = %v",
				total, busy, time.Duration(stats.CacheHits)*cost.CacheHit, stats.QueuedDelay, want)
		}
	}

	t.Run("1x1_matches_clock", func(t *testing.T) {
		ex, total := run(t, Options{})
		if clk := ex.Clock(); total != clk {
			t.Fatalf("serial 1x1 QueryTimed sum %v != device clock %v (must be bit-for-bit)", total, clk)
		}
		conserved(t, ex, total)
	})
	t.Run("2x2_conserves", func(t *testing.T) {
		ex, total := run(t, Options{Devices: 2, Channels: 2})
		conserved(t, ex, total)
	})
	t.Run("1x4_conserves", func(t *testing.T) {
		ex, total := run(t, Options{Channels: 4})
		conserved(t, ex, total)
	})
}
