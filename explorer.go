package odyssey

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"spaceodyssey/internal/core"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/rawfile"
	"spaceodyssey/internal/simdisk"
)

// Options configures an Explorer. The zero value uses the paper's defaults:
// rt=4, ppl=64, mt=2, |C|>=3, SAS-disk cost model, 1024-page cache, unit
// exploration volume.
type Options struct {
	// Bounds is the shared exploration volume all datasets live in.
	// Defaults to the unit box.
	Bounds Box
	// Cost is the simulated disk's cost model; defaults to the SAS model.
	Cost CostModel
	// CachePages is the buffer-cache capacity in 4 KB pages (default 1024).
	CachePages int
	// RefinementThreshold is rt: a partition is refined when its volume
	// exceeds rt times the query volume (default 4).
	RefinementThreshold float64
	// PartitionsPerLevel is ppl, the refinement fanout; must be a cube
	// (default 64).
	PartitionsPerLevel int
	// MergeThreshold is mt: a combination is merged after this many
	// queries (default 2).
	MergeThreshold int
	// MinMergeCombination is the smallest |C| worth merging (default 3).
	MinMergeCombination int
	// MergeSpaceBudgetPages caps merge-file disk usage with LRU eviction
	// (default 0 = unlimited).
	MergeSpaceBudgetPages int64
	// DisableMerging turns the layout reorganization off (incremental
	// indexing only).
	DisableMerging bool
	// MergeLevelPolicy selects how partitions at different refinement
	// levels merge: SameLevel (paper default), RefineToFinest, or
	// CoarsestCover — the strategies §3.2.5 leaves as future work.
	MergeLevelPolicy MergeLevelPolicy
	// ShareMergeSegments references partition copies that already exist in
	// other merge files instead of duplicating them (§3.2.5's improved
	// disk space management).
	ShareMergeSegments bool
	// AdaptiveMergeThresholds lets the engine adjust the merge threshold
	// at runtime from observed segment reuse (§3.2.5's cost model).
	AdaptiveMergeThresholds bool
	// DropCachesPerQuery clears the buffer cache before every query,
	// matching the paper's measurement methodology (default false for API
	// users; the benchmark harness always drops).
	DropCachesPerQuery bool
	// RealTimeScale, when positive, makes the simulated disk emulate its
	// charged costs in wall-clock time (each charge sleeps scale times the
	// simulated duration, outside all locks). Concurrent queries then
	// genuinely overlap their simulated I/O waits — the serving behaviour
	// QueryBatch/QueryConcurrent exist to exploit. 0 (default) keeps the
	// disk purely virtual and instant.
	RealTimeScale float64
	// Devices is the number of simulated member devices datasets stripe
	// across (default 1 — a single device, the paper's baseline setup; the
	// paper's own evaluation hardware had two SAS disks). With Devices > 1
	// file placement follows the Placement policy and the simulated clock
	// reports the critical path across devices.
	Devices int
	// Channels is the number of independent I/O channels (platter heads,
	// with per-channel seek detection) per device; default 1, the original
	// single-head cost model. Cache misses on files of different channels
	// overlap instead of serializing on one seek queue.
	Channels int
	// Placement chooses the member device for each new file when
	// Devices > 1. Default GroupAffinityPlacement(): a dataset's raw and
	// tree files co-locate, and merge files land next to their hottest
	// member dataset. RoundRobinPlacement() stripes files blindly.
	Placement PlacementPolicy
	// AsyncMaintenance moves layout maintenance (partition refinement and
	// the merge step) off the query path: queries answer immediately from
	// the current layout and enqueue coalescing background tasks that a
	// bounded scheduler drains concurrently across datasets. Use Quiesce to
	// wait for the layout to converge, and Close to shut the pipeline down.
	// Default off — the paper's synchronous inline pipeline, whose oracle
	// contract is byte-for-byte untouched.
	AsyncMaintenance bool
	// MaintenanceWorkers bounds the background scheduler's pool (<= 0
	// defaults to 2). Only meaningful with AsyncMaintenance.
	MaintenanceWorkers int
	// MaintenanceBudget caps the fraction of platter busy time background
	// maintenance I/O may consume while foreground queries are in flight
	// (0.2 = at most 20%). Over budget, maintenance operations wait — in
	// wall-clock time only, never on the simulated clock — until the
	// foreground goes idle or the share drops, so query results, simulated
	// charges and converged layouts are byte-identical with the budget on or
	// off; only wall-clock scheduling changes. <= 0 (default) or >= 1
	// disables throttling. Only meaningful with AsyncMaintenance and
	// RealTimeScale (without emulated I/O waits there is no wall-clock
	// contention to arbitrate).
	MaintenanceBudget float64
	// ShareScans turns on work sharing across concurrent queries through
	// the whole serving stack: overlapping run reads on the simulated disk
	// coalesce into one charged single-flight device read, queries attach
	// to in-flight partition scans of the same (dataset, cell) within a
	// layout epoch instead of re-walking the octree, and a cold dataset's
	// level-0 first-touch build is single-flight per dataset (one builder,
	// no thundering herd). Query results are unchanged — only redundant
	// physical work is removed; see SharingStats for the ledger. Default
	// off: every query pays its own I/O, and single-worker behaviour is
	// bit-for-bit the original model.
	ShareScans bool
	// CacheResults turns on the epoch-scoped result cache: completed
	// partition scans are retained keyed on (dataset, cell, layout epoch)
	// and answer later queries of the same cell — or queries whose range a
	// cached region fully contains (containment answering) — with zero
	// device reads. Every layout publish (refinement, merge, eviction)
	// flushes the cache, so a cached result can never cross a layout
	// epoch; query results are byte-identical to an uncached run. See
	// CacheStats for the ledger. Default off: behaviour is bit-for-bit
	// the uncached model.
	CacheResults bool
	// CacheCapacity bounds the result cache in total cached objects
	// (<= 0 defaults to core.DefaultCacheCapacity, 128Ki objects). When
	// full, the coldest cached scans — fewest hits, oldest first — are
	// evicted. Only meaningful with CacheResults.
	CacheCapacity int64
	// AdaptiveCache lets the result cache tune CacheCapacity at runtime
	// instead of holding it fixed: evicted keys leave ghost entries in a
	// bounded shadow list, a miss that hits a ghost is a capacity miss (a
	// bigger cache would have served it), and at each tuning point — every
	// few hundred operations and at every layout-epoch flush — a window with
	// enough ghost hits doubles the capacity while an eviction-free window
	// with occupancy far below budget halves it, converging toward the knee
	// of the hit curve. CacheCapacity becomes the starting point and the
	// bounds derive from it (capacity/16 floor, capacity x64 ceiling).
	// Query results are unaffected — only the retention budget moves. Only
	// meaningful with CacheResults; see CacheStats.Capacity/GhostHits.
	AdaptiveCache bool
	// HeatHalfLife, when positive, applies exponential decay to the
	// engine's heat ledgers — the result cache's eviction order, the
	// maintenance scheduler's task priorities, and the per-dataset heat
	// that places merge files — with this half-life measured in queries: an
	// entry untouched for HeatHalfLife queries counts half its accumulated
	// heat, so a migrated hotspot releases its resources instead of pinning
	// them forever. Decay is applied lazily in log-space on read (no
	// background rescoring) and changes only eviction, scheduling and
	// placement order — never query results. 0 (default) keeps heat
	// cumulative forever, the original behaviour bit-for-bit.
	HeatHalfLife int
	// Retry is the storage-read retry policy: transient device read faults
	// (ErrTransient) are retried up to MaxAttempts times with exponential
	// wall-clock backoff, bounded by an optional per-read budget. Retries
	// never extend the simulated clock — a faulted attempt charges nothing,
	// so a retried read that succeeds costs exactly one clean read of
	// simulated time. Permanent faults (ErrPermanent) fail fast without
	// retrying. The zero value disables retries (every fault surfaces on
	// first sight, the pre-fault-harness behaviour).
	Retry RetryPolicy
	// QuarantineAfter is how many consecutive failures of one background
	// maintenance unit (a cell's refinement, a combination's merge) trip
	// quarantine: the unit's enqueues are dropped so a poisoned cell cannot
	// occupy maintenance workers in a retry loop, while queries keep serving
	// it from its last published layout. <= 0 defaults to 3. Permanent
	// device faults quarantine on first sight. Only meaningful with
	// AsyncMaintenance; see MaintenanceHealth and Unquarantine.
	QuarantineAfter int
	// MaintenanceRetryBackoff is the base wall-clock delay before a failed
	// maintenance task is re-enqueued; it doubles per consecutive failure
	// with up to 50% jitter. 0 defaults to 2ms. Only meaningful with
	// AsyncMaintenance.
	MaintenanceRetryBackoff time.Duration
	// BrownoutThreshold, when positive, turns on graceful degradation under
	// fault storms: a background controller samples the device's fault rate
	// (faulted read attempts over all read attempts) every BrownoutWindow,
	// and when the rate crosses the threshold the Explorer browns out —
	// background maintenance pauses (shedding retry pressure and freezing
	// the layout) and dispatcher submissions tagged PriMaintenance are shed
	// with ErrDegraded, while foreground queries keep serving from the
	// last published layout, the result cache, and whatever reads still
	// succeed. The brownout disengages, with hysteresis, once the observed
	// rate falls below half the threshold. 0 (default) never degrades.
	BrownoutThreshold float64
	// BrownoutWindow is the degradation controller's sampling period
	// (default 25ms). Only meaningful with BrownoutThreshold > 0.
	BrownoutWindow time.Duration
}

// SharingStats is the scan-sharing ledger (Options.ShareScans): what the
// serving stack saved by coalescing concurrent work. All zeros with sharing
// off.
type SharingStats struct {
	// CoalescedReads counts device run reads answered by attaching to an
	// overlapping in-flight read on the same file (one physical read, many
	// logical answers).
	CoalescedReads int64
	// PagesSaved is the pages those attached reads did not re-read — the
	// device-level I/O the sharing layer removed.
	PagesSaved int64
	// AttachedScans counts partition scans served from the engine's
	// in-flight scan registry: a whole (dataset, cell) read another query
	// was already performing.
	AttachedScans int64
	// SharedBuilds counts queries that waited out another query's level-0
	// first-touch build instead of herding on the tree lock.
	SharedBuilds int64
	// Invalidations counts registry flushes on layout publishes
	// (refinement, merge, eviction) that actually dropped in-flight
	// entries — the epoch guard that keeps shared results inside one
	// layout epoch. Publishes that found the registry empty are not
	// counted: the field measures flushed work, not publish frequency.
	Invalidations int64
}

// Topology describes the storage layout an Explorer runs on.
type Topology struct {
	// Devices is the member-device count D (1 = single device).
	Devices int
	// Channels is the per-device I/O channel count C.
	Channels int
	// Placement names the file placement policy ("single" when D == 1).
	Placement string
}

// engineConfig translates Options into the internal configuration.
func (o Options) engineConfig() core.Config {
	cfg := core.DefaultConfig()
	if o.RefinementThreshold > 0 {
		cfg.Octree.RefinementThreshold = o.RefinementThreshold
	}
	if o.PartitionsPerLevel > 0 {
		cfg.Octree.PartitionsPerLevel = o.PartitionsPerLevel
	}
	if o.MergeThreshold > 0 {
		cfg.Merger.MergeThreshold = o.MergeThreshold
	}
	if o.MinMergeCombination > 0 {
		cfg.Merger.MinCombination = o.MinMergeCombination
	}
	if o.MergeSpaceBudgetPages > 0 {
		cfg.Merger.SpaceBudgetPages = o.MergeSpaceBudgetPages
	}
	cfg.Merger.LevelPolicy = o.MergeLevelPolicy
	cfg.Merger.ShareSegments = o.ShareMergeSegments
	cfg.Merger.AdaptiveThresholds = o.AdaptiveMergeThresholds
	cfg.DisableMerging = o.DisableMerging
	cfg.AsyncMaintenance = o.AsyncMaintenance
	cfg.MaintenanceWorkers = o.MaintenanceWorkers
	cfg.ShareScans = o.ShareScans
	cfg.CacheResults = o.CacheResults
	cfg.CacheCapacity = o.CacheCapacity
	cfg.AdaptiveCache = o.AdaptiveCache
	cfg.HeatHalfLife = o.HeatHalfLife
	cfg.QuarantineAfter = o.QuarantineAfter
	cfg.MaintenanceRetryBackoff = o.MaintenanceRetryBackoff
	return cfg
}

// Explorer is the top-level handle for exploring spatial datasets with
// Space Odyssey. It owns a simulated disk, the raw dataset files, and the
// adaptive engine.
//
// An Explorer is safe for concurrent use: queries may run in parallel with
// each other (see QueryBatch and QueryConcurrent for pooled execution) and
// with AddDataset. Read-only queries proceed concurrently; queries that
// trigger indexing, refinement or merging exclude other users of only the
// affected datasets. AddDataset itself briefly excludes all queries — it
// resets the simulated clock (registered data pre-exists the session), and
// that reset must not land in the middle of an in-flight query's timing.
type Explorer struct {
	opts   Options
	dev    simdisk.Storage
	engine *core.Odyssey
	// brown is the graceful-degradation controller
	// (Options.BrownoutThreshold); nil when degradation is off.
	brown *brownout

	// mu guards raws, and orders queries (shared) against AddDataset
	// (exclusive) so the device clock/stat resets in AddDataset never race
	// in-flight timing measurements. Close takes it exclusively too, so a
	// closed Explorer has no query in flight.
	mu   sync.RWMutex
	raws map[DatasetID]*rawfile.Raw

	// closed is set by Close; checked on the query and dataset paths so
	// every post-Close call fails fast with ErrClosed. closeOnce runs the
	// shutdown exactly once; closeDone lets concurrent Close callers wait
	// for it to actually finish; closeErr (written before closeDone closes)
	// is the device-close outcome every caller returns.
	closed    atomic.Bool
	closeOnce sync.Once
	closeDone chan struct{}
	closeErr  error
}

// NewExplorer creates an Explorer with the given options.
func NewExplorer(opts Options) (*Explorer, error) {
	if opts.Bounds.Volume() == 0 {
		opts.Bounds = geom.UnitBox()
	}
	zero := CostModel{}
	if opts.Cost == zero {
		opts.Cost = simdisk.DefaultCostModel()
	}
	if err := opts.Cost.Validate(); err != nil {
		return nil, err
	}
	if opts.CachePages == 0 {
		opts.CachePages = 1024
	}
	dev := simdisk.NewStorage(opts.Cost, opts.CachePages, opts.Devices, opts.Channels, opts.Placement)
	if opts.RealTimeScale > 0 {
		dev.SetRealTimeScale(opts.RealTimeScale)
	}
	if opts.MaintenanceBudget > 0 {
		dev.SetMaintenanceBudget(opts.MaintenanceBudget)
	}
	if opts.Retry != (RetryPolicy{}) {
		dev.SetRetryPolicy(opts.Retry)
	}
	eng, err := core.New(dev, nil, opts.Bounds, opts.engineConfig())
	if err != nil {
		return nil, err
	}
	e := &Explorer{
		opts:      opts,
		dev:       dev,
		engine:    eng,
		raws:      make(map[DatasetID]*rawfile.Raw),
		closeDone: make(chan struct{}),
	}
	if opts.BrownoutThreshold > 0 {
		e.brown = startBrownout(e, opts.BrownoutThreshold, opts.BrownoutWindow)
	}
	return e, nil
}

// AddDataset registers a dataset: its objects are written to a raw file on
// the simulated disk (modelling data that already exists, so the write does
// not count toward exploration time). Every object must carry the given
// dataset id. The dataset is indexed lazily as queries touch it.
func (e *Explorer) AddDataset(id DatasetID, objs []Object) error {
	if e.closed.Load() {
		return ErrClosed
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed.Load() {
		return ErrClosed
	}
	if _, dup := e.raws[id]; dup {
		return fmt.Errorf("odyssey: dataset %d already added", id)
	}
	for _, o := range objs {
		if o.Dataset != id {
			return fmt.Errorf("odyssey: object %d tagged with dataset %d, expected %d",
				o.ID, o.Dataset, id)
		}
	}
	raw, err := rawfile.Write(e.dev, fmt.Sprintf("ds%d.raw", id), id, objs)
	if err != nil {
		return err
	}
	if err := e.engine.AddRaw(raw); err != nil {
		return err
	}
	e.raws[id] = raw
	// The data pre-exists the exploration session: acquiring it is not
	// query-to-insight time. Holding mu exclusively keeps queries out, but
	// background maintenance tasks run on their own locks — drain them
	// first so the clock reset can never land inside a task's timing
	// interval (a reset mid-task would charge negative phase durations).
	if err := e.engine.Quiesce(nil); err != nil {
		return err
	}
	e.dev.ResetClock()
	e.dev.ResetStats()
	e.dev.DropCaches()
	return nil
}

// NumDatasets returns how many datasets have been added.
func (e *Explorer) NumDatasets() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.raws)
}

// Query returns all objects intersecting q in the requested datasets,
// adapting the physical layout as a side effect (incremental indexing,
// refinement, merging).
func (e *Explorer) Query(q Box, datasets []DatasetID) ([]Object, error) {
	objs, _, err := e.QueryTimedCtx(context.Background(), q, datasets)
	return objs, err
}

// QueryCtx is Query with cancellation and deadline support. When ctx is
// canceled or its deadline passes, the query aborts at the next level step
// or page boundary and returns an error wrapping both ErrCanceled and the
// context's own error (so errors.Is works with either), never a partial
// result set. Simulated I/O performed before the abort stays charged to the
// shared clock — that work really happened — but nothing past the abort
// point is charged, and on a real-time emulated device the in-flight wait
// is cut short. A query that finishes its read phase just before the
// deadline returns its complete result; only layout housekeeping is
// skipped.
func (e *Explorer) QueryCtx(ctx context.Context, q Box, datasets []DatasetID) ([]Object, error) {
	objs, _, err := e.QueryTimedCtx(ctx, q, datasets)
	return objs, err
}

// QueryTimed is Query plus the simulated latency of this query alone. When
// Options.DropCachesPerQuery is set, the buffer cache is cleared first,
// like the paper's cold-cache methodology. The latency is an exact
// per-query charge attribution on every topology: the query's context
// carries a QoS scope the storage layer charges directly — platter service
// time, cache-hit time, and the arrival-gated queueing delay the query's
// operations spent waiting behind earlier arrivals on their channels — so
// concurrent queries never inflate (or shadow) each other's durations, and
// the per-query charges of concurrent queries sum exactly to the device
// busy time. On a serial single-channel workload the duration is
// bit-for-bit the shared-clock delta of the original single-head model.
func (e *Explorer) QueryTimed(q Box, datasets []DatasetID) ([]Object, time.Duration, error) {
	return e.QueryTimedCtx(context.Background(), q, datasets)
}

// QueryTimedCtx is QueryTimed with cancellation (see QueryCtx). On abort
// the returned duration still reports the simulated time this query charged
// before giving up — canceled queries are not free, they cost exactly the
// I/O they performed.
func (e *Explorer) QueryTimedCtx(ctx context.Context, q Box, datasets []DatasetID) ([]Object, time.Duration, error) {
	if len(datasets) == 0 {
		return nil, 0, fmt.Errorf("odyssey: query names no datasets")
	}
	if e.closed.Load() {
		return nil, 0, ErrClosed
	}
	if err := simdisk.CheckCtx(ctx); err != nil {
		return nil, 0, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	// Re-check under the lock: Close marks closed and then takes mu
	// exclusively, so a query that got its read lock either started before
	// Close (and Close waits for it) or observes the flag here.
	if e.closed.Load() {
		return nil, 0, ErrClosed
	}
	if e.opts.DropCachesPerQuery {
		e.dev.DropCaches()
	}
	// The query runs under a QoS scope: the storage layer charges every
	// device operation the query performs — including queueing delay behind
	// concurrent queries' operations — to it, making the returned duration an
	// exact per-query attribution on any topology. A scope already on the
	// context (the dispatcher attaches one to tag deadline-imminent queries
	// urgent) is reused so its class survives.
	scope := simdisk.ScopeFrom(ctx)
	if scope == nil {
		ctx, scope = simdisk.WithOpScope(ctx, simdisk.PriForeground)
	}
	start := scope.Total()
	objs, err := e.engine.QueryCtx(ctx, q, datasets)
	return objs, scope.Total() - start, err
}

// Clock returns total simulated time spent since the session started (or
// the last ResetClock). On a multi-channel or multi-device topology this is
// the critical path — the busiest channel of the busiest device plus shared
// time — i.e. the time the workload needs when every channel overlaps
// perfectly; with the default 1x1 topology it is the exact serial sum.
func (e *Explorer) Clock() time.Duration { return e.dev.Clock() }

// ResetClock zeroes the simulated clock across every device and channel.
// Measurement harnesses call it after converging the layout so a measured
// phase starts from zero — on a multi-channel topology, clock *deltas*
// across an imbalanced warm-up phase under-report (the busiest channel
// shadows later work on the others), so measure from a reset, not a delta.
// Must not be called concurrently with in-flight queries whose timings
// matter.
func (e *Explorer) ResetClock() { e.dev.ResetClock() }

// SetRealTimeScale changes the real-time emulation scale at runtime (see
// Options.RealTimeScale); 0 turns emulation off. Benchmarks use it to
// converge an Explorer instantly and then measure serving wall time.
func (e *Explorer) SetRealTimeScale(scale float64) { e.dev.SetRealTimeScale(scale) }

// DiskStats returns the simulated device counters, summed across all
// member devices of the storage topology.
func (e *Explorer) DiskStats() DiskStats { return e.dev.Stats() }

// ResetStats zeroes the simulated device counters across every member
// device and channel, so a measurement harness can count a phase from zero
// (the clock is reset separately; see ResetClock). Must not be called
// concurrently with in-flight queries whose statistics matter.
func (e *Explorer) ResetStats() { e.dev.ResetStats() }

// Topology reports the storage layout: device count, channels per device
// and the placement policy in effect.
func (e *Explorer) Topology() Topology {
	return Topology{
		Devices:   e.dev.NumDevices(),
		Channels:  e.dev.NumChannels(),
		Placement: e.dev.PlacementName(),
	}
}

// DeviceStats returns per-member-device counters (one entry per device;
// a single-device Explorer returns one entry equal to DiskStats).
func (e *Explorer) DeviceStats() []DiskStats { return e.dev.DeviceStats() }

// ChannelStats returns per-device, per-channel counters: busy platter time
// and the seek/sequential split of each channel, the utilization breakdown
// the serving benchmarks report.
func (e *Explorer) ChannelStats() [][]ChannelStats { return e.dev.DeviceChannelStats() }

// Metrics returns the engine's internal counters (refinements, merges,
// merge-file serves, ...).
func (e *Explorer) Metrics() Metrics { return e.engine.Metrics() }

// DatasetInfo describes the indexing state of one dataset.
type DatasetInfo struct {
	ID         DatasetID
	Objects    int
	Indexed    bool // level-0 partitioning has run
	Leaves     int  // current number of leaf partitions
	MaxExtent  Vec
	RawPages   int64
	Refineable bool
}

// Dataset returns the indexing state of one dataset. The tree state is a
// consistent snapshot taken under the dataset's read lock, so it is safe to
// call while queries run.
func (e *Explorer) Dataset(id DatasetID) (DatasetInfo, error) {
	e.mu.RLock()
	raw, ok := e.raws[id]
	e.mu.RUnlock()
	if !ok {
		return DatasetInfo{}, fmt.Errorf("odyssey: unknown dataset %d", id)
	}
	tree, _ := e.engine.TreeInfo(id)
	info := DatasetInfo{
		ID:       id,
		Objects:  raw.NumObjects(),
		RawPages: raw.NumPages(),
		Indexed:  tree.Built,
	}
	if tree.Built {
		info.Leaves = tree.Leaves
		info.MaxExtent = tree.MaxExtent
		info.Refineable = true
	}
	return info, nil
}

// MergeFileCount returns how many merge files currently exist.
func (e *Explorer) MergeFileCount() int { return e.engine.MergeFileCount() }

// MergeSpacePages returns the disk space merge files occupy.
func (e *Explorer) MergeSpacePages() int64 { return e.engine.MergeSpacePages() }

// TargetLevels predicts, via the paper's convergence equation, how many
// queries must hit a level-1 partition before it converges for queries of
// volume qVol.
func (e *Explorer) TargetLevels(id DatasetID, qVol float64) (int, error) {
	tree := e.engine.Tree(id)
	if tree == nil {
		return 0, fmt.Errorf("odyssey: unknown dataset %d", id)
	}
	ppl := tree.FanoutPerDim()
	vp := e.opts.Bounds.Volume() / float64(ppl*ppl*ppl)
	return tree.TargetLevels(vp, qVol), nil
}

// Quiesce blocks until the background maintenance pipeline has drained
// every queued and running task — the point where the physical layout has
// absorbed all scheduled refinements and merges for the traffic seen so
// far. Benchmarks and tests call it to compare converged layouts
// deterministically. Without Options.AsyncMaintenance it returns
// immediately (the synchronous engine converges inline). When ctx expires
// first, the wait aborts with a cancellation error; the pipeline keeps
// draining in the background regardless.
func (e *Explorer) Quiesce(ctx context.Context) error {
	return e.engine.Quiesce(ctx)
}

// MaintenanceStats snapshots the background maintenance pipeline's counters
// (queued/coalesced/completed tasks, queue-depth high-water). All zeros
// when AsyncMaintenance is off.
func (e *Explorer) MaintenanceStats() MaintenanceStats {
	return e.engine.MaintenanceStats()
}

// MaintenanceErr returns the most recent background maintenance task error
// (nil when every task succeeded or AsyncMaintenance is off). A failed task
// leaves the layout consistent but unconverged in its region. It is the
// compatibility accessor over the failure ring; MaintenanceHealth returns
// the full history.
func (e *Explorer) MaintenanceErr() error { return e.engine.MaintenanceErr() }

// MaintenanceHealth snapshots the background maintenance pipeline's health
// ledger: the bounded failure history, the quarantine list, and how many
// failed tasks are waiting out a retry backoff. Zero-valued when
// AsyncMaintenance is off.
func (e *Explorer) MaintenanceHealth() MaintenanceHealth {
	return e.engine.MaintenanceHealth()
}

// Unquarantine re-admits one quarantined maintenance unit (identified by a
// QuarantinedCell from MaintenanceHealth), clearing its failure history so
// the next failure starts a fresh streak. Returns whether the unit was
// quarantined.
func (e *Explorer) Unquarantine(q QuarantinedCell) bool {
	return e.engine.Unquarantine(q)
}

// SetFaultPlan installs (or, with the zero plan, clears) a deterministic
// device fault-injection plan across every member device of the storage
// topology: explicit per-file/page fault patterns, seeded probabilistic
// transient/permanent fault rates, latency spikes, and periodic storm
// windows. Same seed, same read sequence, same faults. Fault-injection is a
// test-and-benchmark surface; it composes with Options.Retry (transient
// faults are retried) and the maintenance quarantine.
func (e *Explorer) SetFaultPlan(plan FaultPlan) { e.dev.SetFaultPlan(plan) }

// SetRetryPolicy changes the storage-read retry policy at runtime (see
// Options.Retry); the zero policy disables retries.
func (e *Explorer) SetRetryPolicy(p RetryPolicy) { e.dev.SetRetryPolicy(p) }

// Degraded reports whether the graceful-degradation controller is currently
// engaged (Options.BrownoutThreshold). Always false with degradation off.
// It is a thin view over the unified Health snapshot.
func (e *Explorer) Degraded() bool {
	return e.brown != nil && e.brown.engaged.Load()
}

// BrownoutStats snapshots the degradation controller's ledger. All zeros
// with Options.BrownoutThreshold unset.
func (e *Explorer) BrownoutStats() BrownoutStats {
	if e.brown == nil {
		return BrownoutStats{}
	}
	return BrownoutStats{
		Engaged:     e.brown.engaged.Load(),
		Engagements: e.brown.engagements.Load(),
		ShedQueries: e.brown.sheds.Load(),
	}
}

// shedLowPri reports whether a low-priority submission should be shed right
// now because the Explorer is browned out, counting the shed when so. The
// dispatcher calls it for submissions tagged PriMaintenance.
func (e *Explorer) shedLowPri() bool {
	if e.brown == nil || !e.brown.engaged.Load() {
		return false
	}
	e.brown.sheds.Add(1)
	return true
}

// SharingStats returns the scan-sharing ledger: the device layer's
// coalesced single-flight reads plus the engine layer's attached scans and
// shared builds. All zeros when Options.ShareScans is off.
func (e *Explorer) SharingStats() SharingStats {
	ds := e.dev.Stats()
	es := e.engine.SharingStats()
	return SharingStats{
		CoalescedReads: ds.CoalescedReads,
		PagesSaved:     ds.CoalescedPages,
		AttachedScans:  es.AttachedScans,
		SharedBuilds:   es.SharedBuilds,
		Invalidations:  es.Invalidations,
	}
}

// CacheStats returns the result-cache ledger (Options.CacheResults): exact
// and containment hits, queries served with zero device reads, inserts,
// evictions, and epoch-flush invalidations. All zeros when caching is off.
func (e *Explorer) CacheStats() CacheStats { return e.engine.CacheStats() }

// FlushResultCache drops every entry of the result cache (a no-op with
// Options.CacheResults off). Benchmarks use it to start a measured phase
// cold-cache; the flush counts in CacheStats.Invalidations like any
// layout-publish flush.
func (e *Explorer) FlushResultCache() { e.engine.FlushResultCache() }

// SetMaintenanceBudget changes the background I/O budget at runtime (see
// Options.MaintenanceBudget); <= 0 turns throttling off. Benchmarks use it
// to compare serving behaviour with and without the budget on one Explorer.
func (e *Explorer) SetMaintenanceBudget(frac float64) { e.dev.SetMaintenanceBudget(frac) }

// MaintenanceBudget returns the current background I/O budget (0 = off).
func (e *Explorer) MaintenanceBudget() float64 { return e.dev.MaintenanceBudget() }

// Close shuts the Explorer down: new queries and dataset registrations
// fail fast with ErrClosed, in-flight queries are waited out, the
// maintenance queue is cancel-and-drained (queued tasks dropped, running
// tasks completed — layout mutations are never interrupted mid-way), and
// only then is the simulated device closed, so no maintenance writer can
// ever race device shutdown. Idempotent and safe to call concurrently with
// queries; inspection methods (Clock, DiskStats, Metrics) keep working on
// a closed Explorer.
func (e *Explorer) Close() error {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		// The degradation controller goes first: it pokes the engine's
		// maintenance pause flag and reads device stats, so it must be gone
		// before either shuts down.
		if e.brown != nil {
			e.brown.stop()
		}
		// Taking mu exclusively waits out every in-flight query (they hold
		// it shared for their full duration); new ones fail fast on the
		// flag.
		e.mu.Lock()
		defer e.mu.Unlock()
		e.engine.Close()
		e.closeErr = e.dev.Close()
		close(e.closeDone)
	})
	// Losers of the once race wait for the shutdown to actually finish, so
	// every returning Close call means "closed", not "closing".
	<-e.closeDone
	return e.closeErr
}

// Engine exposes the underlying core engine for advanced inspection.
func (e *Explorer) Engine() *core.Odyssey { return e.engine }
