// Command odyssey-explore is an interactive shell for exploring spatial
// datasets with Space Odyssey: load .sod files (or generate data on the
// fly), issue range queries against dataset combinations, and watch the
// engine adapt — refinement, merge files, simulated I/O cost.
//
// Usage:
//
//	odyssey-explore -data data/            # load every .sod file in data/
//	odyssey-explore -gen 5x20000           # or generate 5 datasets inline
//
// Commands (also shown by `help`):
//
//	query <cx> <cy> <cz> <side> <ds,ds,...>   range query (cube)
//	info                                      per-dataset indexing state
//	metrics                                   engine counters
//	disk                                      simulated device statistics
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	odyssey "spaceodyssey"
	"spaceodyssey/internal/dsfile"
)

func main() {
	var (
		dataDir = flag.String("data", "", "directory of .sod dataset files")
		gen     = flag.String("gen", "", "generate datasets inline, e.g. 5x20000")
		seed    = flag.Int64("seed", 1, "generation seed for -gen")
	)
	flag.Parse()

	ex, err := odyssey.NewExplorer(odyssey.Options{DropCachesPerQuery: true})
	if err != nil {
		fatalf("%v", err)
	}

	switch {
	case *dataDir != "":
		paths, err := filepath.Glob(filepath.Join(*dataDir, "*.sod"))
		if err != nil || len(paths) == 0 {
			fatalf("no .sod files in %q", *dataDir)
		}
		sort.Strings(paths)
		for _, p := range paths {
			ds, objs, err := dsfile.Load(p)
			if err != nil {
				fatalf("%s: %v", p, err)
			}
			if err := ex.AddDataset(ds, objs); err != nil {
				fatalf("%s: %v", p, err)
			}
			fmt.Printf("loaded %s: dataset %d, %d objects\n", p, ds, len(objs))
		}
	case *gen != "":
		var n, objs int
		if _, err := fmt.Sscanf(*gen, "%dx%d", &n, &objs); err != nil || n < 1 {
			fatalf("bad -gen %q (want e.g. 5x20000)", *gen)
		}
		for i, data := range odyssey.GenerateDatasets(odyssey.DataConfig{
			Seed: *seed, NumObjects: objs,
		}, n) {
			if err := ex.AddDataset(odyssey.DatasetID(i), data); err != nil {
				fatalf("%v", err)
			}
		}
		fmt.Printf("generated %d datasets x %d objects\n", n, objs)
	default:
		fatalf("need -data or -gen (see -h)")
	}

	fmt.Println("type 'help' for commands")
	sc := bufio.NewScanner(os.Stdin)
	for fmt.Print("odyssey> "); sc.Scan(); fmt.Print("odyssey> ") {
		if done := dispatch(ex, strings.Fields(sc.Text())); done {
			return
		}
	}
}

// dispatch executes one command; it returns true on quit.
func dispatch(ex *odyssey.Explorer, args []string) bool {
	if len(args) == 0 {
		return false
	}
	switch args[0] {
	case "quit", "exit":
		return true
	case "help":
		fmt.Println("  query <cx> <cy> <cz> <side> <ds,ds,...>  cube range query")
		fmt.Println("  info      per-dataset indexing state")
		fmt.Println("  metrics   engine counters (refinements, merges, ...)")
		fmt.Println("  disk      simulated device statistics")
		fmt.Println("  quit")
	case "query":
		runQuery(ex, args[1:])
	case "info":
		for i := 0; i < ex.NumDatasets(); i++ {
			info, err := ex.Dataset(odyssey.DatasetID(i))
			if err != nil {
				continue
			}
			state := "raw (unindexed)"
			if info.Indexed {
				state = fmt.Sprintf("indexed, %d leaf partitions", info.Leaves)
			}
			fmt.Printf("  dataset %d: %d objects, %d raw pages, %s\n",
				info.ID, info.Objects, info.RawPages, state)
		}
		fmt.Printf("  merge files: %d (%d pages)\n", ex.MergeFileCount(), ex.MergeSpacePages())
	case "metrics":
		m := ex.Metrics()
		fmt.Printf("  queries:                %d\n", m.Queries)
		fmt.Printf("  trees built:            %d\n", m.TreesBuilt)
		fmt.Printf("  refinements:            %d\n", m.Refinements)
		fmt.Printf("  partitions from tree:   %d\n", m.PartitionsFromTree)
		fmt.Printf("  partitions from merge:  %d\n", m.PartitionsFromMerge)
		fmt.Printf("  merge files created:    %d\n", m.MergeFilesCreated)
		fmt.Printf("  partitions merged:      %d\n", m.PartitionsMerged)
		fmt.Printf("  merge evictions:        %d\n", m.MergeEvictions)
		fmt.Printf("  segments shared:        %d\n", m.SegmentsShared)
		fmt.Printf("  merge threshold (mt):   %d\n", m.CurrentMergeThresh)
		fmt.Printf("  time in level-0 builds: %v\n", m.Phases.LevelZeroBuild)
		fmt.Printf("  time in refinement:     %v\n", m.Phases.Refinement)
		fmt.Printf("  time in tree reads:     %v\n", m.Phases.TreeReads)
		fmt.Printf("  time in merge reads:    %v\n", m.Phases.MergeReads)
		fmt.Printf("  time in merge writes:   %v\n", m.Phases.MergeWrites)
	case "disk":
		st := ex.DiskStats()
		fmt.Printf("  page reads:  %d (%d sequential, %d cache hits)\n",
			st.PageReads, st.SeqPages, st.CacheHits)
		fmt.Printf("  page writes: %d\n", st.PageWrites)
		fmt.Printf("  seeks:       %d\n", st.Seeks)
		fmt.Printf("  sim clock:   %v\n", ex.Clock())
	default:
		fmt.Printf("  unknown command %q (try 'help')\n", args[0])
	}
	return false
}

// runQuery parses and executes a cube query.
func runQuery(ex *odyssey.Explorer, args []string) {
	if len(args) != 5 {
		fmt.Println("  usage: query <cx> <cy> <cz> <side> <ds,ds,...>")
		return
	}
	var coords [4]float64
	for i := 0; i < 4; i++ {
		v, err := strconv.ParseFloat(args[i], 64)
		if err != nil {
			fmt.Printf("  bad number %q\n", args[i])
			return
		}
		coords[i] = v
	}
	var dss []odyssey.DatasetID
	for _, part := range strings.Split(args[4], ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Printf("  bad dataset id %q\n", part)
			return
		}
		dss = append(dss, odyssey.DatasetID(id))
	}
	q := odyssey.Cube(odyssey.V(coords[0], coords[1], coords[2]), coords[3])
	objs, dt, err := ex.QueryTimed(q, dss)
	if err != nil {
		fmt.Printf("  query failed: %v\n", err)
		return
	}
	fmt.Printf("  %d objects in %v simulated time\n", len(objs), dt)
	show := len(objs)
	if show > 5 {
		show = 5
	}
	for _, o := range objs[:show] {
		fmt.Printf("    ds%d obj%d center=%v\n", o.Dataset, o.ID, o.Center)
	}
	if len(objs) > show {
		fmt.Printf("    ... and %d more\n", len(objs)-show)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "odyssey-explore: "+format+"\n", args...)
	os.Exit(1)
}
