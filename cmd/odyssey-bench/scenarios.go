package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	odyssey "spaceodyssey"
	"spaceodyssey/internal/bench"
	"spaceodyssey/internal/datagen"
	"spaceodyssey/internal/workload"
)

// The scenario lab (-scenario): each named workload scenario (see
// internal/workload's scenario matrix) is converged once per serving mode on
// the instant disk and then replayed open-loop — queries submitted on the
// scenario's own arrival pacing — through the dispatcher on a real-time
// emulated disk. The sweep compares a grid of static batch-window and
// cache-capacity settings against the adaptive self-tuning mode (adaptive
// batch window + auto-sized result cache + heat decay), reporting per-query
// end-to-end latency percentiles and verifying that every mode returns
// byte-identical results. The machine-readable report lands in
// BENCH_scenarios.json.

// scenarioMode is one serving configuration of the sweep.
type scenarioMode struct {
	name     string
	window   time.Duration
	capacity int64
	adaptive bool
}

// The static grid: both batch-window extremes crossed with both capacity
// extremes. The small capacity thrashes on any repeating hotspot; the large
// one comfortably holds a whole phase's working set — but not every phase
// of a drifting workload at once, which is exactly the regime where
// frequency-kept heat goes stale and decay earns its keep. The adaptive
// mode starts from the same small budget and must grow its way out.
const (
	scenarioSmallCap = 16
	scenarioLargeCap = 1 << 10
)

func scenarioModes(adaptive bool) []scenarioMode {
	modes := []scenarioMode{
		{name: "static-w0-small", window: 0, capacity: scenarioSmallCap},
		{name: "static-w0-large", window: 0, capacity: scenarioLargeCap},
		{name: "static-w4-small", window: 4 * time.Millisecond, capacity: scenarioSmallCap},
		{name: "static-w4-large", window: 4 * time.Millisecond, capacity: scenarioLargeCap},
	}
	if adaptive {
		modes = append(modes, scenarioMode{
			name: "adaptive", window: 2 * time.Millisecond,
			capacity: scenarioSmallCap, adaptive: true,
		})
	}
	return modes
}

// scenarioModeReport is one mode's measured replay of one scenario.
type scenarioModeReport struct {
	Mode          string  `json:"mode"`
	BatchWindowMS float64 `json:"batch_window_ms"`
	Adaptive      bool    `json:"adaptive"`
	CacheCapacity int64   `json:"cache_capacity"`
	WallSeconds   float64 `json:"wall_seconds"`
	SimSeconds    float64 `json:"sim_seconds"`
	PagesRead     int64   `json:"pages_read"`
	Refinements   int     `json:"refinements"`
	Merges        int     `json:"merges"`
	P50Seconds    float64 `json:"latency_p50_seconds"`
	P95Seconds    float64 `json:"latency_p95_seconds"`
	P99Seconds    float64 `json:"latency_p99_seconds"`
	CacheHits     int64   `json:"cache_hits"`
	GhostHits     int64   `json:"ghost_hits"`
	FinalCapacity int64   `json:"final_capacity"`
	CapGrows      int64   `json:"capacity_grows"`
	CapShrinks    int64   `json:"capacity_shrinks"`
	FinalWindowMS float64 `json:"final_window_ms"`
	WindowGrows   int64   `json:"window_grows"`
	WindowShrinks int64   `json:"window_shrinks"`
	Batches       int64   `json:"batches"`
}

// scenarioReport is one scenario's full sweep.
type scenarioReport struct {
	Scenario               string               `json:"scenario"`
	Description            string               `json:"description"`
	Queries                int                  `json:"queries"`
	Modes                  []scenarioModeReport `json:"modes"`
	ResultsIdentical       bool                 `json:"results_identical"`
	AdaptiveP99            float64              `json:"adaptive_p99_seconds,omitempty"`
	BestStaticP99          float64              `json:"best_static_p99_seconds"`
	WorstStaticP99         float64              `json:"worst_static_p99_seconds"`
	AdaptiveBeatsAllStatic bool                 `json:"adaptive_beats_all_static"`
}

// scenariosReport is the machine-readable form of the -scenario sweep
// (BENCH_scenarios.json).
type scenariosReport struct {
	Experiment    string           `json:"experiment"`
	Devices       int              `json:"devices"`
	Channels      int              `json:"channels"`
	Placement     string           `json:"placement"`
	Workers       int              `json:"workers"`
	RealtimeScale float64          `json:"realtime_scale"`
	GapMS         float64          `json:"gap_ms"`
	Scenarios     []scenarioReport `json:"scenarios"`
}

// runScenarios drives the scenario lab over one scenario name or "all".
func runScenarios(cfg bench.Config, wcfg bench.WorkloadConfig, scenario string, adaptive bool, workers int, scale float64, gap time.Duration, jsonPath string) {
	names := []string{scenario}
	if scenario == "all" {
		names = workload.ScenarioNames()
	} else if workload.ScenarioDescription(scenario) == "" {
		fatalf("unknown scenario %q (want one of %v or 'all')", scenario, workload.ScenarioNames())
	}
	// Fewer workers than the burst size: the dispatcher's group-sorted
	// flush then decides which queries run concurrently, which is where
	// batching earns its sharing wins.
	if workers <= 0 {
		workers = 4
	}
	data := datagen.GenerateDatasets(datagen.Config{
		Seed: cfg.DataSeed, NumObjects: cfg.ObjectsPerDataset,
		Bounds: cfg.Bounds, Layout: cfg.DataLayout,
	}, cfg.Datasets)
	policy, err := bench.PlacementByName(cfg.Placement)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("scenario lab: %d datasets x %d objects, %d queries, %d workers, realtime x%g, gap %v\n",
		cfg.Datasets, cfg.ObjectsPerDataset, wcfg.Queries, workers, scale, gap)
	fmt.Printf("storage: %d device(s) x %d channel(s), placement %s; adaptive mode: %v\n\n",
		cfg.Devices, cfg.Channels, cfg.Placement, adaptive)

	report := scenariosReport{
		Experiment: "scenario-lab",
		Devices:    cfg.Devices, Channels: cfg.Channels, Placement: cfg.Placement,
		Workers: workers, RealtimeScale: scale,
		GapMS: float64(gap) / float64(time.Millisecond),
	}
	for _, name := range names {
		report.Scenarios = append(report.Scenarios,
			runScenario(name, cfg, wcfg, data, policy, adaptive, workers, scale, gap))
	}
	if jsonPath == "" {
		jsonPath = "BENCH_scenarios.json"
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(jsonPath, append(out, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("(wrote %s)\n", jsonPath)
}

// runScenario sweeps every mode over one scenario.
func runScenario(name string, cfg bench.Config, wcfg bench.WorkloadConfig, data [][]odyssey.Object, policy odyssey.PlacementPolicy, adaptive bool, workers int, scale float64, gap time.Duration) scenarioReport {
	k := 3
	if k > cfg.Datasets {
		k = cfg.Datasets
	}
	scfg := workload.ScenarioConfig{
		Seed: wcfg.Seed, NumQueries: wcfg.Queries,
		NumDatasets: cfg.Datasets, DatasetsPerQuery: k,
		Bounds: cfg.Bounds, QueryVolumeFrac: wcfg.QueryVolumeFrac,
	}
	w, err := workload.GenerateScenario(name, scfg)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("--- %s: %s\n", name, w.Description)

	rep := scenarioReport{
		Scenario: name, Description: w.Description, Queries: len(w.Queries),
		ResultsIdentical: true,
	}
	var basePrints map[int]uint64
	for _, mode := range scenarioModes(adaptive) {
		mrep, prints := runScenarioMode(mode, cfg, w, data, policy, workers, scale, gap)
		rep.Modes = append(rep.Modes, mrep)
		if basePrints == nil {
			basePrints = prints
		} else if len(prints) != len(basePrints) {
			rep.ResultsIdentical = false
		} else {
			for i, fp := range basePrints {
				if prints[i] != fp {
					rep.ResultsIdentical = false
					break
				}
			}
		}
	}
	for _, m := range rep.Modes {
		if m.Adaptive {
			rep.AdaptiveP99 = m.P99Seconds
			continue
		}
		if rep.BestStaticP99 == 0 || m.P99Seconds < rep.BestStaticP99 {
			rep.BestStaticP99 = m.P99Seconds
		}
		if m.P99Seconds > rep.WorstStaticP99 {
			rep.WorstStaticP99 = m.P99Seconds
		}
	}
	if adaptive {
		rep.AdaptiveBeatsAllStatic = rep.AdaptiveP99 > 0 && rep.AdaptiveP99 < rep.BestStaticP99
	}
	if !rep.ResultsIdentical {
		fatalf("scenario %s: modes returned different results — the oracle contract is broken", name)
	}
	fmt.Println()
	return rep
}

// runScenarioMode converges one Explorer for the mode and replays the
// scenario open-loop through a dispatcher, returning the measured report and
// the per-query result fingerprints.
func runScenarioMode(mode scenarioMode, cfg bench.Config, w workload.ScenarioWorkload, data [][]odyssey.Object, policy odyssey.PlacementPolicy, workers int, scale float64, gap time.Duration) (scenarioModeReport, map[int]uint64) {
	opts := odyssey.Options{
		Bounds: cfg.Bounds, Cost: cfg.Cost, CachePages: cfg.CachePages,
		DropCachesPerQuery: true,
		Devices:            cfg.Devices, Channels: cfg.Channels, Placement: policy,
		ShareScans:    true,
		CacheResults:  true,
		CacheCapacity: mode.capacity,
	}
	if mode.adaptive {
		opts.AdaptiveCache = true
		opts.HeatHalfLife = 64
	}
	ex, err := odyssey.NewExplorer(opts)
	if err != nil {
		fatalf("%v", err)
	}
	defer func() {
		if err := ex.Close(); err != nil {
			fatalf("close: %v", err)
		}
	}()
	for i, objs := range data {
		if err := ex.AddDataset(odyssey.DatasetID(i), objs); err != nil {
			fatalf("%v", err)
		}
	}
	// Converge the layout on the instant disk so the replay measures
	// steady-state serving, then flush the result cache: the measured pass
	// runs fresh-cache serving against a warm layout, so repeats in the
	// scenario stream have to re-earn their hits under each mode's capacity.
	for pass := 0; pass < 4; pass++ {
		before := ex.Metrics()
		for _, q := range w.Queries {
			if _, err := ex.Query(q.Range, q.Datasets); err != nil {
				fatalf("converge: %v", err)
			}
		}
		if err := ex.Quiesce(context.Background()); err != nil {
			fatalf("quiesce: %v", err)
		}
		after := ex.Metrics()
		if after.Refinements == before.Refinements &&
			after.PartitionsMerged == before.PartitionsMerged &&
			after.MergeEvictions == before.MergeEvictions {
			break
		}
	}
	ex.FlushResultCache()
	ex.ResetClock()
	ex.ResetStats()
	cs0 := ex.CacheStats()
	m0 := ex.Metrics()
	ex.SetRealTimeScale(scale)

	adm := odyssey.AdmissionConfig{BatchWindow: mode.window}
	if mode.adaptive {
		adm.AdaptiveBatch = true
		adm.MinBatchWindow = 250 * time.Microsecond
		adm.MaxBatchWindow = 8 * time.Millisecond
	}
	d := odyssey.NewDispatcherWithAdmission(ex, workers, adm)
	out := make(chan odyssey.BatchResult, len(w.Queries))
	sched := make([]time.Time, len(w.Queries))
	prints := make(map[int]uint64, len(w.Queries))
	e2e := make([]time.Duration, 0, len(w.Queries))
	// Results are collected concurrently and latency is measured from each
	// query's SCHEDULED arrival, not its accepted submission: when a mode
	// falls behind, blocked submissions must count against it rather than
	// silently throttling the open loop (coordinated omission).
	var badResult odyssey.BatchResult
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for r := range out {
			if r.Err != nil && badResult.Err == nil {
				badResult = r
				continue
			}
			prints[r.Index] = fingerprint(r.Objects)
			e2e = append(e2e, time.Since(sched[r.Index]))
		}
	}()
	t0 := time.Now()
	// Open-loop replay: query i is due at its scenario arrival time
	// (cumulative gaps in base units of the -gap duration), regardless of
	// how the pool is keeping up — the pacing the adaptive batch window
	// tunes itself to.
	next := t0
	for i, q := range w.Queries {
		if w.Gaps != nil {
			next = next.Add(time.Duration(w.Gaps[i] * float64(gap)))
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			sched[i] = next
		} else {
			sched[i] = time.Now()
		}
		if err := d.Submit(i, q, out); err != nil {
			fatalf("submit: %v", err)
		}
	}
	d.Close()
	wall := time.Since(t0)
	close(out)
	<-collected
	if badResult.Err != nil {
		fatalf("worker %d query %d: %v", badResult.Worker, badResult.Index, badResult.Err)
	}
	ast := d.AdmissionStats()
	cs := ex.CacheStats()
	ds := ex.DiskStats()
	m1 := ex.Metrics()
	rep := scenarioModeReport{
		Mode:          mode.name,
		BatchWindowMS: float64(mode.window) / float64(time.Millisecond),
		Adaptive:      mode.adaptive,
		CacheCapacity: mode.capacity,
		WallSeconds:   wall.Seconds(),
		SimSeconds:    ex.Clock().Seconds(),
		PagesRead:     ds.PageReads,
		Refinements:   m1.Refinements - m0.Refinements,
		Merges:        m1.PartitionsMerged - m0.PartitionsMerged,
		P50Seconds:    bench.Percentile(e2e, 50).Seconds(),
		P95Seconds:    bench.Percentile(e2e, 95).Seconds(),
		P99Seconds:    bench.Percentile(e2e, 99).Seconds(),
		CacheHits:     cs.Hits - cs0.Hits + cs.ContainmentHits - cs0.ContainmentHits,
		GhostHits:     cs.GhostHits - cs0.GhostHits,
		FinalCapacity: cs.Capacity,
		CapGrows:      cs.CapacityGrows - cs0.CapacityGrows,
		CapShrinks:    cs.CapacityShrinks - cs0.CapacityShrinks,
		FinalWindowMS: float64(ast.BatchWindow) / float64(time.Millisecond),
		WindowGrows:   ast.WindowGrows,
		WindowShrinks: ast.WindowShrinks,
		Batches:       ast.Batches,
	}
	fmt.Printf("%-16s p50 %8.2fms  p95 %8.2fms  p99 %8.2fms  %7d pages  cap %6d  win %5.2fms\n",
		mode.name, 1e3*rep.P50Seconds, 1e3*rep.P95Seconds, 1e3*rep.P99Seconds,
		rep.PagesRead, rep.FinalCapacity, rep.FinalWindowMS)
	return rep, prints
}
