// Command odyssey-bench reproduces the paper's evaluation figures on the
// simulated disk and prints them as text tables.
//
// Usage:
//
//	odyssey-bench -experiment fig4a            # one figure
//	odyssey-bench -experiment all              # everything (slow)
//	odyssey-bench -experiment fig4a -objects 20000 -queries 500
//	odyssey-bench -experiment fig4a -verify    # check engines vs oracle first
//	odyssey-bench -parallel 8                  # concurrent serving experiment
//	odyssey-bench -parallel 8 -deadline 5ms    # + per-query deadlines
//	odyssey-bench -parallel 8 -maxinflight 16  # + admission control fast-fail
//
// The reported times are simulated disk seconds (deterministic), matching
// the paper's disk-bound methodology; see DESIGN.md §3. With -parallel N
// the tool instead drives the converged workload through the Explorer's
// worker pool on a real-time emulated disk and reports per-worker
// throughput, the wall-clock speedup over serial serving, and — when
// -deadline or -maxinflight are set — the admission ledger plus per-query
// latency percentiles (service, queue wait, end-to-end).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	odyssey "spaceodyssey"
	"spaceodyssey/cluster"
	"spaceodyssey/internal/bench"
	"spaceodyssey/internal/datagen"
	"spaceodyssey/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "figure id (fig4a..fig4d, fig5a..fig5c), comma list, or 'all'")
		datasets   = flag.Int("datasets", 10, "number of datasets (paper: 10)")
		objects    = flag.Int("objects", 100000, "objects per dataset")
		queries    = flag.Int("queries", 1000, "queries per workload (paper: 1000)")
		qvol       = flag.Float64("qvol", 1e-4, "query volume fraction of the explored volume")
		seed       = flag.Int64("seed", 7, "workload seed")
		dataSeed   = flag.Int64("data-seed", 1, "dataset generation seed")
		gridCells  = flag.Int("grid-cells", 6, "grid baseline cells per dimension")
		ksFlag     = flag.String("ks", "1,3,5,7,9", "datasets-per-query sweep for figure 4")
		layout     = flag.String("layout", "clustered", "data layout: clustered|uniform|filamentary")
		verify     = flag.Bool("verify", false, "verify each engine against the naive oracle first (slow)")
		seekUS     = flag.Int("seek-us", 500, "simulated seek+rotational latency in microseconds (8000 = unscaled SAS; 500 = reduced-scale calibration, see DESIGN.md)")
		transferUS = flag.Int("transfer-us", 25, "simulated per-page transfer time in microseconds")
		csvDir     = flag.String("csv", "", "also write plot-ready CSV files into this directory")
		parallel   = flag.Int("parallel", 0, "run the concurrent-serving experiment with this many pool workers (0 = off)")
		rtScale    = flag.Float64("realtime-scale", 1.0, "wall-clock seconds slept per simulated second in the -parallel experiment")
		deadline   = flag.Duration("deadline", 0, "per-query deadline in the -parallel experiment (0 = none); canceled queries are counted and abort at the next page boundary")
		maxInFl    = flag.Int("maxinflight", 0, "admission cap on in-flight queries in the -parallel experiment (0 = unlimited); beyond it submissions fast-fail with ErrOverloaded")
		queueWait  = flag.Duration("queuewait", 0, "how long a submission may wait for an in-flight slot before fast-failing (needs -maxinflight)")
		devices    = flag.Int("devices", 1, "number of simulated member devices to stripe files across")
		channels   = flag.Int("channels", 1, "independent I/O channels (platter heads) per device")
		placement  = flag.String("placement", "affinity", "file placement across devices: affinity|roundrobin")
		jsonPath   = flag.String("json", "", "also write the -parallel serving report (topology, timings, per-channel utilization) as JSON to this file")
		asyncCmp   = flag.Bool("async", false, "with -parallel: compare synchronous vs asynchronous layout maintenance on the miss-heavy adapting workload (per-query latency percentiles + time-to-convergence); with -share: run the sharing comparison's engines in async-maintenance mode")
		maintWk    = flag.Int("maintworkers", 2, "maintenance worker pool size for async-maintenance modes")
		share      = flag.Bool("share", false, "with -parallel: compare ShareScans off vs on under an overlapping hot-region pooled workload (coalesced reads, pages saved, byte-identical results), writing BENCH_sharing.json fields via -json")
		cacheCmp   = flag.Bool("cache", false, "with -parallel: compare CacheResults off vs on under a zipf hot-region pooled workload (exact + containment cache hits, zero-device-read queries, byte-identical results), writing BENCH_cache.json fields via -json; composes with -share and -async")
		batchWin   = flag.Duration("batchwindow", 2*time.Millisecond, "dispatcher micro-batch window for the -share comparison's sharing mode (0 disables batching)")
		faults     = flag.Bool("faults", false, "with -parallel: availability experiment under a seeded transient device fault storm — the converged workload is replayed fault-free and then mid-storm with read retries on, reporting served fraction, latency percentiles, the retry ledger and fingerprint identity of every served query, writing BENCH_faults.json via -json; composes with -share/-cache/-async")
		faultRate  = flag.Float64("faultrate", 0.01, "base transient fault probability per read attempt for -faults (storm windows run at 10x this rate)")
		contention = flag.Bool("contention", false, "with -parallel -async: additionally replay the cold async pass with the background I/O budget on (-maintbudget), reporting foreground latency percentiles under mixed query+maintenance contention, throttled vs unthrottled")
		maintBgt   = flag.Float64("maintbudget", 0.2, "background I/O budget fraction for -contention: the share of platter busy time maintenance may consume while foreground queries are in flight")
		scenario   = flag.String("scenario", "", "run the workload scenario lab on this named scenario (zipf|drift|scanheavy|pointheavy|diurnal|adversarial) or 'all': sweep static batch-window x cache-capacity settings (plus the adaptive mode with -adaptive) over an open-loop paced replay and write BENCH_scenarios.json")
		adaptive   = flag.Bool("adaptive", false, "with -scenario: include the adaptive self-tuning mode (adaptive batch window, auto-sized result cache, heat decay) in the sweep")
		gapDur     = flag.Duration("gap", 2*time.Millisecond, "with -scenario: base open-loop inter-arrival unit; each scenario scales it by its own pacing curve")
		clusterOn  = flag.Bool("cluster", false, "run the replicated-cluster serving experiment: the workload replays through a sharded, replicated Router (health-checked failover, hedged reads) and is pinned byte-identical to a single Explorer over the union of the datasets, writing BENCH_cluster.json via -json")
		shards     = flag.Int("shards", 4, "with -cluster: shard count N")
		replicas   = flag.Int("replicas", 2, "with -cluster: replication factor R (clamped to -shards)")
		shardFlts  = flag.Bool("shardfaults", false, "with -cluster: additionally replay under deterministic shard fault plans — a crash window (availability + failover) and a slow-shard storm (hedged vs unhedged tail latency)")
	)
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatalf("%v", err)
		}
	}

	cfg := bench.DefaultConfig()
	cfg.Datasets = *datasets
	cfg.ObjectsPerDataset = *objects
	cfg.DataSeed = *dataSeed
	cfg.GridCells = *gridCells
	cfg.Cost.Seek = time.Duration(*seekUS) * time.Microsecond
	cfg.Cost.Transfer = time.Duration(*transferUS) * time.Microsecond
	cfg.Devices = *devices
	cfg.Channels = *channels
	cfg.Placement = *placement
	if *devices < 1 || *channels < 1 {
		fatalf("-devices and -channels must be >= 1")
	}
	if _, err := bench.PlacementByName(*placement); err != nil {
		fatalf("%v", err)
	}
	switch *layout {
	case "clustered":
		cfg.DataLayout = datagen.Clustered
	case "uniform":
		cfg.DataLayout = datagen.Uniform
	case "filamentary":
		cfg.DataLayout = datagen.Filamentary
	default:
		fatalf("unknown layout %q", *layout)
	}
	wcfg := bench.WorkloadConfig{Queries: *queries, QueryVolumeFrac: *qvol, Seed: *seed}

	var ks []int
	for _, part := range strings.Split(*ksFlag, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k < 1 {
			fatalf("bad -ks entry %q", part)
		}
		ks = append(ks, k)
	}

	ids := map[bool][]string{
		true:  {"fig4a", "fig4b", "fig4c", "fig4d", "fig5a", "fig5b", "fig5c"},
		false: strings.Split(*experiment, ","),
	}[*experiment == "all"]

	if *scenario != "" {
		// The scenario lab generates its own workload and mode grid; the
		// comparison and admission flags belong to the other experiments.
		if *verify || *experiment != "all" {
			fatalf("-scenario cannot be combined with -verify or -experiment (the lab runs its own workload)")
		}
		if *share || *cacheCmp || *asyncCmp || *faults || *contention {
			fatalf("-scenario cannot be combined with -share/-cache/-async/-faults/-contention")
		}
		if *deadline != 0 || *maxInFl != 0 || *queueWait != 0 {
			fatalf("-deadline/-maxinflight/-queuewait cannot be combined with -scenario (the lab measures raw serving latency)")
		}
		runScenarios(cfg, wcfg, *scenario, *adaptive, *parallel, *rtScale, *gapDur, *jsonPath)
		return
	}

	if *clusterOn {
		// The cluster experiment replays its own fixed workload through a
		// Router; the single-Explorer experiment flags would silently
		// measure something else.
		if *verify || *experiment != "all" {
			fatalf("-cluster cannot be combined with -verify or -experiment (it replays a fixed workload)")
		}
		if *parallel > 0 || *share || *cacheCmp || *asyncCmp || *faults || *contention {
			fatalf("-cluster cannot be combined with -parallel/-share/-cache/-async/-faults/-contention")
		}
		if *deadline != 0 || *maxInFl != 0 || *queueWait != 0 {
			fatalf("-deadline/-maxinflight/-queuewait cannot be combined with -cluster (availability is measured without admission shedding)")
		}
		if *shards < 2 {
			fatalf("-shards must be >= 2")
		}
		if *replicas < 1 {
			fatalf("-replicas must be >= 1")
		}
		runClusterServing(cfg, wcfg, *shards, *replicas, *shardFlts, *jsonPath)
		return
	}
	if *shardFlts {
		fatalf("-shardfaults needs -cluster")
	}

	if *parallel > 0 {
		// The serving experiment has a fixed workload shape (fig4a's
		// distributions); combining it with figure selection or oracle
		// verification would silently measure something else.
		if *verify {
			fatalf("-verify is not supported with -parallel")
		}
		if *experiment != "all" {
			fatalf("-experiment cannot be combined with -parallel (the serving workload is fixed to fig4a's distributions)")
		}
		if *queueWait != 0 && *maxInFl == 0 {
			fatalf("-queuewait needs -maxinflight (there is no slot wait without an in-flight cap)")
		}
		if *contention {
			if !*asyncCmp || *share || *cacheCmp {
				fatalf("-contention needs -async without -share/-cache (it extends the async-maintenance comparison)")
			}
			if *maintBgt <= 0 || *maintBgt >= 1 {
				fatalf("-maintbudget must be in (0,1)")
			}
		}
		if *faults {
			if *deadline != 0 || *maxInFl != 0 || *queueWait != 0 {
				fatalf("-deadline/-maxinflight/-queuewait cannot be combined with -faults (availability is measured without admission shedding)")
			}
			if *faultRate <= 0 || *faultRate >= 1 {
				fatalf("-faultrate must be in (0,1)")
			}
			runFaultsServing(cfg, wcfg, *parallel, *rtScale, *share, *cacheCmp, *asyncCmp, *maintWk, *faultRate, *jsonPath)
			return
		}
		if *cacheCmp {
			if *deadline != 0 || *maxInFl != 0 || *queueWait != 0 {
				fatalf("-deadline/-maxinflight/-queuewait cannot be combined with -cache (the comparison measures raw caching gains)")
			}
			runCacheServing(cfg, wcfg, *parallel, *rtScale, *share, *asyncCmp, *maintWk, *jsonPath)
			return
		}
		if *share {
			if *deadline != 0 || *maxInFl != 0 || *queueWait != 0 {
				fatalf("-deadline/-maxinflight/-queuewait cannot be combined with -share (the comparison measures raw sharing gains)")
			}
			runSharingServing(cfg, wcfg, *parallel, *rtScale, *asyncCmp, *maintWk, *batchWin, *jsonPath)
			return
		}
		if *asyncCmp {
			if *deadline != 0 || *maxInFl != 0 || *queueWait != 0 {
				fatalf("-deadline/-maxinflight/-queuewait cannot be combined with -async (the comparison measures raw serving latency)")
			}
			runAsyncServing(cfg, wcfg, *parallel, *rtScale, *maintWk, *jsonPath, *contention, *maintBgt)
			return
		}
		adm := odyssey.AdmissionConfig{
			MaxInFlight: *maxInFl,
			Deadline:    *deadline,
			QueueWait:   *queueWait,
		}
		runParallelServing(cfg, wcfg, *parallel, *rtScale, adm, *jsonPath)
		return
	}
	if *asyncCmp {
		fatalf("-async needs -parallel (it compares pooled serving under both maintenance modes)")
	}
	if *contention {
		fatalf("-contention needs -parallel -async (it measures the pooled serving experiment under maintenance contention)")
	}
	if *share {
		fatalf("-share needs -parallel (sharing only pays off across concurrent queries)")
	}
	if *cacheCmp {
		fatalf("-cache needs -parallel (the caching comparison replays a pooled serving workload)")
	}
	if *faults {
		fatalf("-faults needs -parallel (availability is measured on the pooled serving workload)")
	}
	if *deadline != 0 || *maxInFl != 0 || *queueWait != 0 {
		fatalf("-deadline/-maxinflight/-queuewait only apply to the -parallel experiment")
	}
	if *jsonPath != "" {
		fatalf("-json only applies to the -parallel experiment")
	}

	env := bench.NewEnv(cfg)
	fmt.Printf("environment: %d datasets x %d objects (%s), %d queries, qvol=%g, grid=%d^3\n\n",
		cfg.Datasets, cfg.ObjectsPerDataset, cfg.DataLayout, wcfg.Queries,
		wcfg.QueryVolumeFrac, cfg.GridCells)

	if *verify {
		runVerification(env, wcfg)
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "gridsweep" {
			rows, err := bench.GridSweep(env, wcfg, nil, nil)
			if err != nil {
				fatalf("gridsweep: %v", err)
			}
			bench.PrintGridSweep(os.Stdout, rows)
			fmt.Println()
			continue
		}
		spec, err := bench.FigureByID(id)
		if err != nil {
			fatalf("%v", err)
		}
		start := time.Now()
		switch {
		case strings.HasPrefix(id, "fig4"):
			res, err := bench.Figure4(env, spec, wcfg, ks, nil)
			if err != nil {
				fatalf("%s: %v", id, err)
			}
			bench.PrintFigure4(os.Stdout, res)
			writeCSV(*csvDir, id, func(w io.Writer) error { return bench.WriteFigure4CSV(w, res) })
		case id == "fig5c":
			res, err := bench.Figure5c(env, wcfg)
			if err != nil {
				fatalf("%s: %v", id, err)
			}
			bench.PrintFigure5c(os.Stdout, res)
			writeCSV(*csvDir, id, func(w io.Writer) error { return bench.WriteFigure5cCSV(w, res) })
		default: // fig5a, fig5b
			res, err := bench.Figure5(env, spec, wcfg, nil)
			if err != nil {
				fatalf("%s: %v", id, err)
			}
			bench.PrintFigure5(os.Stdout, res)
			writeCSV(*csvDir, id, func(w io.Writer) error { return bench.WriteFigure5CSV(w, res) })
		}
		fmt.Printf("(%s completed in %.1fs wall time)\n\n", id, time.Since(start).Seconds())
	}
}

// runParallelServing measures concurrent query serving: the configured
// workload is converged once on a purely virtual disk, then replayed both
// serially and through an Explorer worker pool with real-time emulation on
// (platter charges sleep their scaled simulated duration), so the pool's
// wall-clock speedup reflects genuinely overlapped I/O waits. With a
// deadline or in-flight cap configured, the pooled run additionally reports
// the admission ledger (admitted/rejected/canceled/swept/completed) and
// per-query latency percentiles; the serial baseline always runs without
// deadlines so the two runs are comparable. The storage topology follows
// -devices/-channels/-placement, and the report breaks utilization down per
// device and per channel (jsonPath non-empty also writes it as JSON).
func runParallelServing(cfg bench.Config, wcfg bench.WorkloadConfig, workers int, scale float64, adm odyssey.AdmissionConfig, jsonPath string) {
	spec, err := bench.FigureByID("fig4a")
	if err != nil {
		fatalf("%v", err)
	}
	k := 3
	if k > cfg.Datasets {
		k = cfg.Datasets
	}
	w, err := workload.Generate(workload.Config{
		Seed: wcfg.Seed, NumQueries: wcfg.Queries, NumDatasets: cfg.Datasets,
		DatasetsPerQuery: k, QueryVolumeFrac: wcfg.QueryVolumeFrac,
		RangeDist: spec.RangeDist, CombDist: spec.CombDist,
		ClusterCenters: spec.ClusterCenters,
	})
	if err != nil {
		fatalf("%v", err)
	}
	data := datagen.GenerateDatasets(datagen.Config{
		Seed: cfg.DataSeed, NumObjects: cfg.ObjectsPerDataset,
		Bounds: cfg.Bounds, Layout: cfg.DataLayout,
	}, cfg.Datasets)

	newConverged := func() *odyssey.Explorer {
		policy, err := bench.PlacementByName(cfg.Placement)
		if err != nil {
			fatalf("%v", err)
		}
		ex, err := odyssey.NewExplorer(odyssey.Options{
			Bounds: cfg.Bounds, Cost: cfg.Cost, CachePages: cfg.CachePages,
			DropCachesPerQuery: true,
			Devices:            cfg.Devices, Channels: cfg.Channels, Placement: policy,
		})
		if err != nil {
			fatalf("%v", err)
		}
		for i, objs := range data {
			if err := ex.AddDataset(odyssey.DatasetID(i), objs); err != nil {
				fatalf("%v", err)
			}
		}
		// Replay the workload until the layout is quiescent (no refinements
		// or merges in a full pass, up to a small bound): repeat queries
		// cross merge thresholds on later passes, and a measured run should
		// observe steady-state serving, not leftover reorganization. The
		// extra passes are nearly free on the virtual (instant) disk.
		for pass := 0; pass < 4; pass++ {
			before := ex.Metrics()
			for _, q := range w.Queries {
				if _, err := ex.Query(q.Range, q.Datasets); err != nil {
					fatalf("converge: %v", err)
				}
			}
			after := ex.Metrics()
			if after.Refinements == before.Refinements &&
				after.PartitionsMerged == before.PartitionsMerged &&
				after.MergeEvictions == before.MergeEvictions {
				break
			}
		}
		ex.SetRealTimeScale(scale)
		return ex
	}

	fmt.Printf("concurrent serving: %d datasets x %d objects, %d queries, %d workers, realtime x%g\n",
		cfg.Datasets, cfg.ObjectsPerDataset, wcfg.Queries, workers, scale)
	fmt.Printf("storage: %d device(s) x %d channel(s), placement %s\n\n",
		cfg.Devices, cfg.Channels, cfg.Placement)

	// Serial baseline.
	ex := newConverged()
	// Measure from a zeroed clock: on a multi-channel topology, deltas
	// across the (imbalanced) convergence phase under-report — the busiest
	// channel's head start shadows measured-phase work on the others.
	ex.ResetClock()
	sim0 := ex.Clock()
	t0 := time.Now()
	for _, q := range w.Queries {
		if _, err := ex.Query(q.Range, q.Datasets); err != nil {
			fatalf("serial: %v", err)
		}
	}
	serialWall := time.Since(t0)
	serialSim := ex.Clock() - sim0
	fmt.Printf("serial:     %8.3fs wall  %8.3fs simulated  %7.1f q/s\n",
		serialWall.Seconds(), serialSim.Seconds(),
		float64(len(w.Queries))/serialWall.Seconds())

	// Pooled run via the dispatcher, to surface per-worker stats and (when
	// configured) the admission controller's behaviour under deadlines.
	ex = newConverged()
	ex.ResetClock() // see the serial baseline's comment
	m0 := ex.Metrics()
	chan0 := ex.ChannelStats() // baseline for the measured run's utilization
	sim0 = ex.Clock()
	d := odyssey.NewDispatcherWithAdmission(ex, workers, adm)
	out := make(chan odyssey.BatchResult, len(w.Queries))
	t0 = time.Now()
	for i, q := range w.Queries {
		switch err := d.Submit(i, q, out); {
		case err == nil:
		case errors.Is(err, odyssey.ErrOverloaded):
			// Fast-failed by admission control; counted in the ledger.
		default:
			fatalf("%v", err)
		}
	}
	d.Close()
	poolWall := time.Since(t0)
	poolSim := ex.Clock() - sim0
	close(out)
	var service, wait, e2e []time.Duration
	canceled := 0
	for r := range out {
		if r.Err != nil && !odyssey.IsCanceled(r.Err) {
			fatalf("worker %d query %d: %v", r.Worker, r.Index, r.Err)
		}
		if r.Err != nil {
			canceled++
		}
		service = append(service, r.Wall)
		wait = append(wait, r.Wait)
		e2e = append(e2e, r.Wait+r.Wall)
	}
	st := d.AdmissionStats()
	admitted := len(service)
	m := ex.Metrics()
	if r, p := m.Refinements-m0.Refinements, m.PartitionsMerged-m0.PartitionsMerged; r > 0 || p > 0 {
		fmt.Printf("note: layout still adapting during the measured run (%d refinements, %d partitions merged)\n", r, p)
	}
	fmt.Printf("%d workers: %8.3fs wall  %8.3fs simulated  %7.1f q/s admitted  (%.2fx speedup)\n",
		workers, poolWall.Seconds(), poolSim.Seconds(),
		float64(admitted)/poolWall.Seconds(),
		serialWall.Seconds()/poolWall.Seconds())
	fmt.Printf("admission: %d admitted  %d rejected  %d canceled (%d swept in queue)  %d completed\n",
		st.Admitted, st.Rejected, st.Canceled, st.Swept, st.Completed) // failures fatal above
	if adm.Deadline > 0 {
		fmt.Printf("deadline %v: %d of %d admitted queries canceled (%.1f%%)\n",
			adm.Deadline, canceled, admitted,
			100*float64(canceled)/float64(max(admitted, 1)))
	}
	fmt.Printf("latency  service: p50 %-10v p95 %-10v p99 %v\n",
		pct(service, 50), pct(service, 95), pct(service, 99))
	fmt.Printf("         queue:   p50 %-10v p95 %-10v p99 %v\n",
		pct(wait, 50), pct(wait, 95), pct(wait, 99))
	fmt.Printf("         e2e:     p50 %-10v p95 %-10v p99 %v\n\n",
		pct(e2e, 50), pct(e2e, 95), pct(e2e, 99))
	fmt.Println("per-worker throughput:")
	for _, ws := range d.WorkerStats() {
		fmt.Printf("  worker %2d: %4d queries (%d canceled) in %8.3fs busy  %7.1f q/s\n",
			ws.Worker, ws.Queries, ws.Canceled, ws.Busy.Seconds(), ws.Throughput())
	}

	// Per-device / per-channel utilization of the measured pooled run:
	// busy platter time relative to the run's simulated elapsed time.
	chans := ex.ChannelStats()
	topo := ex.Topology()
	report := servingReport{
		Devices:   topo.Devices,
		Channels:  topo.Channels,
		Placement: topo.Placement,
		Workers:   workers,
		Queries:   len(w.Queries),
		Serial:    servingRun{WallSeconds: serialWall.Seconds(), SimSeconds: serialSim.Seconds()},
		Pool: servingRun{
			WallSeconds: poolWall.Seconds(), SimSeconds: poolSim.Seconds(),
			Speedup: serialWall.Seconds() / poolWall.Seconds(),
		},
		Admission: admissionReport{
			Admitted: st.Admitted, Rejected: st.Rejected, Canceled: st.Canceled,
			Swept: st.Swept, Completed: st.Completed, Failed: st.Failed,
		},
	}
	fmt.Println("\nper-channel utilization (measured run):")
	for di := range chans {
		for ci := range chans[di] {
			cs := chans[di][ci]
			if di < len(chan0) && ci < len(chan0[di]) {
				base := chan0[di][ci]
				cs.Busy -= base.Busy
				cs.Seeks -= base.Seeks
				cs.SeqPages -= base.SeqPages
			}
			util := 0.0
			if poolSim > 0 {
				util = cs.Busy.Seconds() / poolSim.Seconds()
			}
			fmt.Printf("  device %d channel %d: %8.3fs busy  %5.1f%% util  %6d seeks  %6d seq pages\n",
				di, ci, cs.Busy.Seconds(), 100*util, cs.Seeks, cs.SeqPages)
			report.ChannelUtil = append(report.ChannelUtil, channelUtil{
				Device: di, Channel: cs.Channel,
				BusySeconds: cs.Busy.Seconds(), Utilization: util,
				Seeks: cs.Seeks, SeqPages: cs.SeqPages,
			})
		}
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("\n(wrote %s)\n", jsonPath)
	}
}

// runAsyncServing compares synchronous (inline) against asynchronous
// (background) layout maintenance on the miss-heavy adapting workload: both
// modes serve the SAME cold workload through a pool of the given size on a
// real-time emulated disk, WITHOUT pre-converging the layout — so the
// measured pass includes level-0 builds, refinements and merges. In sync
// mode the unlucky queries pay that maintenance inline; in async mode they
// answer from the current layout while a background scheduler converges it.
// After the measured pass, both modes replay the workload until the layout
// is quiescent (async quiesces the pipeline each pass), yielding
// time-to-convergence. The report (stdout + optional JSON) carries p50/p95/
// p99 per-query wall latency, simulated time, convergence wall time and
// pass count, and the async maintenance ledger.
//
// With contention set, the cold async pass runs a third time with the
// background I/O budget on (Options.MaintenanceBudget = maintBudget):
// maintenance device operations wait, wall-clock only, whenever foreground
// queries are in flight and maintenance exceeds its share of platter busy
// time. The report's contention section compares foreground latency
// percentiles throttled vs unthrottled — same queries, same layout work,
// byte-identical results; only when maintenance I/O runs moves.
func runAsyncServing(cfg bench.Config, wcfg bench.WorkloadConfig, workers int, scale float64, maintWorkers int, jsonPath string, contention bool, maintBudget float64) {
	spec, err := bench.FigureByID("fig4a")
	if err != nil {
		fatalf("%v", err)
	}
	k := 3
	if k > cfg.Datasets {
		k = cfg.Datasets
	}
	w, err := workload.Generate(workload.Config{
		Seed: wcfg.Seed, NumQueries: wcfg.Queries, NumDatasets: cfg.Datasets,
		DatasetsPerQuery: k, QueryVolumeFrac: wcfg.QueryVolumeFrac,
		RangeDist: spec.RangeDist, CombDist: spec.CombDist,
		ClusterCenters: spec.ClusterCenters,
	})
	if err != nil {
		fatalf("%v", err)
	}
	data := datagen.GenerateDatasets(datagen.Config{
		Seed: cfg.DataSeed, NumObjects: cfg.ObjectsPerDataset,
		Bounds: cfg.Bounds, Layout: cfg.DataLayout,
	}, cfg.Datasets)
	policy, err := bench.PlacementByName(cfg.Placement)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("async-maintenance comparison: %d datasets x %d objects, %d queries, %d workers, realtime x%g\n",
		cfg.Datasets, cfg.ObjectsPerDataset, wcfg.Queries, workers, scale)
	fmt.Printf("storage: %d device(s) x %d channel(s), placement %s; maintenance workers (async mode): %d\n\n",
		cfg.Devices, cfg.Channels, cfg.Placement, maintWorkers)

	// runPass replays the workload through a fresh pool. gap > 0 paces the
	// submissions open-loop (one query per gap) instead of firing the whole
	// workload at once: per-query wall latency then measures service under
	// concurrent load rather than position in a saturated queue.
	runPass := func(ex *odyssey.Explorer, gap time.Duration) []time.Duration {
		d := odyssey.NewDispatcher(ex, workers)
		out := make(chan odyssey.BatchResult, len(w.Queries))
		for i, q := range w.Queries {
			if err := d.Submit(i, q, out); err != nil {
				fatalf("submit: %v", err)
			}
			if gap > 0 && i < len(w.Queries)-1 {
				time.Sleep(gap)
			}
		}
		d.Close()
		close(out)
		lat := make([]time.Duration, 0, len(w.Queries))
		for r := range out {
			if r.Err != nil {
				fatalf("worker %d query %d: %v", r.Worker, r.Index, r.Err)
			}
			lat = append(lat, r.Wall)
		}
		return lat
	}

	runMode := func(name string, async bool, budget float64) asyncModeReport {
		ex, err := odyssey.NewExplorer(odyssey.Options{
			Bounds: cfg.Bounds, Cost: cfg.Cost, CachePages: cfg.CachePages,
			DropCachesPerQuery: true,
			Devices:            cfg.Devices, Channels: cfg.Channels, Placement: policy,
			AsyncMaintenance: async, MaintenanceWorkers: maintWorkers,
			MaintenanceBudget: budget,
		})
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := ex.Close(); err != nil {
				fatalf("close: %v", err)
			}
		}()
		for i, objs := range data {
			if err := ex.AddDataset(odyssey.DatasetID(i), objs); err != nil {
				fatalf("%v", err)
			}
		}
		ex.SetRealTimeScale(scale)

		// Measured pass: cold layout, the pool serves while the engine
		// adapts (inline in sync mode, in the background in async mode).
		t0 := time.Now()
		sim0 := ex.Clock()
		lat := runPass(ex, 0)
		measuredWall := time.Since(t0)
		// Quiesce before reading the pass's simulated time: in async mode
		// background maintenance is still charging the clock when the pool
		// drains, and a mid-flight snapshot would compare sync's complete
		// total against a racy partial one. After the quiesce, sim_seconds
		// covers the pass's queries plus all maintenance they scheduled —
		// the same work sync pays inline.
		if err := ex.Quiesce(context.Background()); err != nil {
			fatalf("quiesce: %v", err)
		}
		measuredSim := ex.Clock() - sim0

		// Convergence: replay until a full pass leaves the layout alone.
		// The async pipeline is quiesced each pass, so convergence time
		// includes its background work — deferred maintenance is not free,
		// it is just off the query path.
		const maxPasses = 10
		converged := false
		passes := 1
		for ; passes < maxPasses; passes++ {
			before := ex.Metrics()
			runPass(ex, 0)
			if err := ex.Quiesce(context.Background()); err != nil {
				fatalf("quiesce: %v", err)
			}
			after := ex.Metrics()
			if after.Refinements == before.Refinements &&
				after.PartitionsMerged == before.PartitionsMerged &&
				after.MergeEvictions == before.MergeEvictions {
				converged = true
				break
			}
		}
		if !converged {
			fmt.Printf("      WARNING: layout still adapting after %d passes — convergence figures are a lower bound\n", maxPasses)
		}
		convergedWall := time.Since(t0)
		if err := ex.MaintenanceErr(); err != nil {
			fatalf("maintenance task failed: %v", err)
		}

		m := ex.Metrics()
		disk := ex.DiskStats()
		rep := asyncModeReport{
			WallSeconds:            measuredWall.Seconds(),
			SimSeconds:             measuredSim.Seconds(),
			LatencyP50:             bench.Percentile(lat, 50).Seconds(),
			LatencyP95:             bench.Percentile(lat, 95).Seconds(),
			LatencyP99:             bench.Percentile(lat, 99).Seconds(),
			Converged:              converged,
			ConvergenceWallSeconds: convergedWall.Seconds(),
			ConvergencePasses:      passes,
			Refinements:            m.Refinements,
			PartitionsMerged:       m.PartitionsMerged,
			MergeFiles:             ex.MergeFileCount(),
			MaintenanceBudget:      budget,
			ThrottledOps:           disk.ThrottledOps,
			QueuedDelaySeconds:     disk.QueuedDelay.Seconds(),
		}
		if async {
			st := ex.MaintenanceStats()
			rep.Maintenance = &maintenanceReport{
				Queued: st.Queued, Coalesced: st.Coalesced, Completed: st.Completed,
				Failed: st.Failed, Dropped: st.Dropped,
				RefineTasks: st.RefineTasks, MergeTasks: st.MergeTasks,
				Refinements: st.Refinements, QueueDepthHighWater: st.QueueDepthHighWater,
			}
		}
		fmt.Printf("%-5s measured pass: %8.3fs wall  %8.3fs simulated  %7.1f q/s\n",
			name, measuredWall.Seconds(), measuredSim.Seconds(),
			float64(len(w.Queries))/measuredWall.Seconds())
		fmt.Printf("      latency: p50 %-10v p95 %-10v p99 %v\n",
			pct(lat, 50), pct(lat, 95), pct(lat, 99))
		fmt.Printf("      converged after %d pass(es), %.3fs wall (%d refinements, %d partitions merged, %d merge files)\n",
			passes, convergedWall.Seconds(), m.Refinements, m.PartitionsMerged, ex.MergeFileCount())
		if rep.Maintenance != nil {
			fmt.Printf("      maintenance: %d queued, %d coalesced, %d completed, %d refine / %d merge tasks, queue high-water %d\n",
				rep.Maintenance.Queued, rep.Maintenance.Coalesced, rep.Maintenance.Completed,
				rep.Maintenance.RefineTasks, rep.Maintenance.MergeTasks,
				rep.Maintenance.QueueDepthHighWater)
		}
		if budget > 0 {
			fmt.Printf("      budget %.2f: %d maintenance ops gated, %.3fs queueing delay attributed\n",
				budget, rep.ThrottledOps, rep.QueuedDelaySeconds)
		}
		fmt.Println()
		return rep
	}

	syncRep := runMode("sync", false, 0)
	asyncRep := runMode("async", true, 0)

	report := asyncReport{
		Experiment: "async-maintenance",
		Devices:    cfg.Devices, Channels: cfg.Channels, Placement: cfg.Placement,
		Workers: workers, Queries: len(w.Queries), RealtimeScale: scale,
		MaintenanceWorkers: maintWorkers,
		Sync:               syncRep,
		Async:              asyncRep,
	}
	if asyncRep.LatencyP99 > 0 {
		report.P99Speedup = syncRep.LatencyP99 / asyncRep.LatencyP99
	}
	fmt.Printf("p99 latency: sync %v  async %v  (%.2fx)\n",
		time.Duration(syncRep.LatencyP99*float64(time.Second)).Round(10*time.Microsecond),
		time.Duration(asyncRep.LatencyP99*float64(time.Second)).Round(10*time.Microsecond),
		report.P99Speedup)
	if contention {
		fmt.Println()
		report.Contention = runContention(cfg, wcfg, spec, data, policy,
			workers, scale, maintWorkers, maintBudget)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("(wrote %s)\n", jsonPath)
	}
}

// runContention measures the background I/O budget's foreground-QoS effect
// in the regime it is designed for: interactive queries over CONVERGED
// datasets — stable, layout-independent cost — served open-loop while
// background maintenance churns over OTHER datasets. The datasets are split
// in half: the foreground workload touches only the first half, the churn
// workload only the second. Per leg (budget off, then -maintbudget) a fresh
// async engine converges the foreground datasets with emulation disabled
// (setup, not measurement), then — emulation on — a 2-worker side pool
// fires the cold churn batch (every query schedules refinement and merge
// work) while the main pool serves the paced foreground workload and its
// per-query wall latency is recorded. Foreground queries' own simulated
// charges are identical across legs (their layout no longer changes); any
// latency difference is maintenance interference — channel-frontier pushes
// lengthening foreground emulation sleeps, plus CPU and lock pressure —
// which the throttle confines to foreground-idle gaps.
func runContention(cfg bench.Config, wcfg bench.WorkloadConfig, spec bench.FigureSpec,
	data [][]odyssey.Object, policy odyssey.PlacementPolicy,
	workers int, scale float64, maintWorkers int, maintBudget float64) *contentionReport {

	fgN := cfg.Datasets / 2
	if fgN < 1 {
		fgN = 1
	}
	bgN := cfg.Datasets - fgN
	kOf := func(n int) int {
		if n < 3 {
			return n
		}
		return 3
	}
	wFg, err := workload.Generate(workload.Config{
		Seed: wcfg.Seed + 101, NumQueries: wcfg.Queries, NumDatasets: fgN,
		DatasetsPerQuery: kOf(fgN), QueryVolumeFrac: wcfg.QueryVolumeFrac,
		RangeDist: spec.RangeDist, CombDist: spec.CombDist,
		ClusterCenters: spec.ClusterCenters,
	})
	if err != nil {
		fatalf("%v", err)
	}
	var bgQueries []workload.Query
	if bgN > 0 {
		wBg, err := workload.Generate(workload.Config{
			Seed: wcfg.Seed + 202, NumQueries: wcfg.Queries, NumDatasets: bgN,
			DatasetsPerQuery: kOf(bgN), QueryVolumeFrac: wcfg.QueryVolumeFrac,
			RangeDist: spec.RangeDist, CombDist: spec.CombDist,
			ClusterCenters: spec.ClusterCenters,
		})
		if err != nil {
			fatalf("%v", err)
		}
		bgQueries = wBg.Queries
		// Shift the churn workload onto the background half of the datasets.
		// Copy each combination first: generated queries may share one
		// underlying slice (the heavy-hitter combination), and shifting in
		// place would compound across the queries aliasing it.
		for i := range bgQueries {
			shifted := make([]odyssey.DatasetID, len(bgQueries[i].Datasets))
			for j, d := range bgQueries[i].Datasets {
				shifted[j] = d + odyssey.DatasetID(fgN)
			}
			bgQueries[i].Datasets = shifted
		}
	}

	fmt.Printf("contention comparison: foreground = %d converged dataset(s), churn = %d cold queries over %d dataset(s), budget %.2f\n",
		fgN, len(bgQueries), bgN, maintBudget)

	var gap time.Duration // derived once in the first leg, shared by both

	runLeg := func(name string, budget float64) contentionLegReport {
		ex, err := odyssey.NewExplorer(odyssey.Options{
			Bounds: cfg.Bounds, Cost: cfg.Cost, CachePages: cfg.CachePages,
			DropCachesPerQuery: true,
			Devices:            cfg.Devices, Channels: cfg.Channels, Placement: policy,
			AsyncMaintenance: true, MaintenanceWorkers: maintWorkers,
		})
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := ex.Close(); err != nil {
				fatalf("close: %v", err)
			}
		}()
		for i, objs := range data {
			if err := ex.AddDataset(odyssey.DatasetID(i), objs); err != nil {
				fatalf("%v", err)
			}
		}

		// Converge the foreground datasets with emulation off: replay until a
		// full pass leaves their layout alone.
		for pass := 0; pass < 10; pass++ {
			before := ex.Metrics()
			for _, q := range wFg.Queries {
				if _, err := ex.Query(q.Range, q.Datasets); err != nil {
					fatalf("%v", err)
				}
			}
			if err := ex.Quiesce(context.Background()); err != nil {
				fatalf("quiesce: %v", err)
			}
			after := ex.Metrics()
			if after.Refinements == before.Refinements &&
				after.PartitionsMerged == before.PartitionsMerged &&
				after.MergeEvictions == before.MergeEvictions {
				break
			}
		}

		ex.SetRealTimeScale(scale)
		if gap == 0 {
			// Capacity probe (first leg only): one unpaced pooled replay of
			// the converged foreground workload, no churn. Open-loop arrivals
			// in both legs then target ~60% of that capacity.
			t0 := time.Now()
			d := odyssey.NewDispatcher(ex, workers)
			out := make(chan odyssey.BatchResult, len(wFg.Queries))
			for i, q := range wFg.Queries {
				if err := d.Submit(i, q, out); err != nil {
					fatalf("probe submit: %v", err)
				}
			}
			d.Close()
			close(out)
			for r := range out {
				if r.Err != nil {
					fatalf("probe query %d: %v", r.Index, r.Err)
				}
			}
			gap = time.Duration(float64(time.Since(t0)) / (0.6 * float64(len(wFg.Queries))))
			fmt.Printf("  open-loop arrival gap %v (~60%% of measured foreground capacity)\n",
				gap.Round(10*time.Microsecond))
		}

		ex.SetMaintenanceBudget(budget)
		statsBefore := ex.DiskStats()

		// Churn: a side pool serves the cold background batch, scheduling
		// refinement and merge maintenance throughout the foreground pass.
		var bgDisp *odyssey.Dispatcher
		var bgFeed sync.WaitGroup
		bgOut := make(chan odyssey.BatchResult, len(bgQueries))
		if len(bgQueries) > 0 {
			bgDisp = odyssey.NewDispatcher(ex, 2)
			bgFeed.Add(1)
			go func() {
				defer bgFeed.Done()
				for i, q := range bgQueries {
					if err := bgDisp.Submit(i, q, bgOut); err != nil {
						fatalf("churn submit: %v", err)
					}
				}
			}()
		}

		// Measured: the foreground workload, paced open-loop.
		fgDisp := odyssey.NewDispatcher(ex, workers)
		fgOut := make(chan odyssey.BatchResult, len(wFg.Queries))
		for i, q := range wFg.Queries {
			if err := fgDisp.Submit(i, q, fgOut); err != nil {
				fatalf("submit: %v", err)
			}
			if i < len(wFg.Queries)-1 {
				time.Sleep(gap)
			}
		}
		fgDisp.Close()
		close(fgOut)
		lat := make([]time.Duration, 0, len(wFg.Queries))
		for r := range fgOut {
			if r.Err != nil {
				fatalf("worker %d query %d: %v", r.Worker, r.Index, r.Err)
			}
			lat = append(lat, r.Wall)
		}

		if bgDisp != nil {
			bgFeed.Wait()
			bgDisp.Close()
			close(bgOut)
			for r := range bgOut {
				if r.Err != nil {
					fatalf("churn query %d: %v", r.Index, r.Err)
				}
			}
		}
		// Drain deferred maintenance at full speed before tearing down.
		ex.SetRealTimeScale(0)
		ex.SetMaintenanceBudget(0)
		if err := ex.Quiesce(context.Background()); err != nil {
			fatalf("quiesce: %v", err)
		}
		if err := ex.MaintenanceErr(); err != nil {
			fatalf("maintenance task failed: %v", err)
		}

		stats := ex.DiskStats()
		leg := contentionLegReport{
			MaintenanceBudget:  budget,
			LatencyP50:         bench.Percentile(lat, 50).Seconds(),
			LatencyP95:         bench.Percentile(lat, 95).Seconds(),
			LatencyP99:         bench.Percentile(lat, 99).Seconds(),
			ThrottledOps:       stats.ThrottledOps - statsBefore.ThrottledOps,
			QueuedDelaySeconds: (stats.QueuedDelay - statsBefore.QueuedDelay).Seconds(),
		}
		fmt.Printf("%-5s fg latency: p50 %-10v p95 %-10v p99 %v   (%d maintenance waits gated)\n",
			name, pct(lat, 50), pct(lat, 95), pct(lat, 99), leg.ThrottledOps)
		return leg
	}

	unthr := runLeg("unthr", 0)
	thr := runLeg("thrtl", maintBudget)

	rep := &contentionReport{
		MaintenanceBudget:           maintBudget,
		ArrivalGapSeconds:           gap.Seconds(),
		ForegroundDatasets:          fgN,
		BackgroundDatasets:          bgN,
		BackgroundQueries:           len(bgQueries),
		Unthrottled:                 unthr,
		Throttled:                   thr,
		FgP99UnderContentionSeconds: unthr.LatencyP99,
		FgP99ThrottledSeconds:       thr.LatencyP99,
	}
	if thr.LatencyP99 > 0 {
		rep.P99Improvement = unthr.LatencyP99 / thr.LatencyP99
	}
	fmt.Printf("\nfg p99 under churn: unthrottled %v  budget %.2f %v  (%.2fx)\n",
		time.Duration(rep.FgP99UnderContentionSeconds*float64(time.Second)).Round(10*time.Microsecond),
		maintBudget,
		time.Duration(rep.FgP99ThrottledSeconds*float64(time.Second)).Round(10*time.Microsecond),
		rep.P99Improvement)
	return rep
}

// runSharingServing measures scan sharing & single-flight I/O: the same
// overlapping hot-region workload (clustered query centers, a heavy-hitter
// combination — the "many users on the same hot sky region" shape shared
// archive portals serve) is converged once per mode on a virtual disk, then
// replayed cold-cache (DropCachesPerQuery) through a pool of the given size
// on a real-time emulated disk, with Options.ShareScans off and on. The
// sharing mode also stages submissions in the dispatcher's micro-batch
// window so workers present coalescable work. The report compares pages
// read from the device, simulated critical-path time and wall time, carries
// the sharing ledger (coalesced reads, pages saved, attached scans, shared
// builds, batches), and verifies byte-identical per-query results between
// the modes.
func runSharingServing(cfg bench.Config, wcfg bench.WorkloadConfig, workers int, scale float64, async bool, maintWorkers int, batchWindow time.Duration, jsonPath string) {
	k := 3
	if k > cfg.Datasets {
		k = cfg.Datasets
	}
	// The overlapping hot-region shape: two tight query clusters and a
	// heavy-hitter combination drawing 70% of the traffic — many users
	// revisiting the same hot sky regions over the same dataset bundle.
	w, err := workload.Generate(workload.Config{
		Seed: wcfg.Seed, NumQueries: wcfg.Queries, NumDatasets: cfg.Datasets,
		DatasetsPerQuery: k, QueryVolumeFrac: wcfg.QueryVolumeFrac,
		RangeDist: workload.RangeClustered, CombDist: workload.CombHeavyHitter,
		ClusterCenters: 2, SigmaFactor: 0.25, HeavyHitterShare: 0.7,
	})
	if err != nil {
		fatalf("%v", err)
	}
	data := datagen.GenerateDatasets(datagen.Config{
		Seed: cfg.DataSeed, NumObjects: cfg.ObjectsPerDataset,
		Bounds: cfg.Bounds, Layout: cfg.DataLayout,
	}, cfg.Datasets)
	policy, err := bench.PlacementByName(cfg.Placement)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("scan-sharing comparison: %d datasets x %d objects, %d queries, %d workers, realtime x%g\n",
		cfg.Datasets, cfg.ObjectsPerDataset, wcfg.Queries, workers, scale)
	fmt.Printf("storage: %d device(s) x %d channel(s), placement %s; async maintenance: %v; batch window (sharing mode): %v\n\n",
		cfg.Devices, cfg.Channels, cfg.Placement, async, batchWindow)

	runMode := func(shareOn bool) (sharingModeReport, map[int]uint64) {
		ex, err := odyssey.NewExplorer(odyssey.Options{
			Bounds: cfg.Bounds, Cost: cfg.Cost, CachePages: cfg.CachePages,
			DropCachesPerQuery: true, // pooled miss-heavy serving: every query pays platter time
			Devices:            cfg.Devices, Channels: cfg.Channels, Placement: policy,
			AsyncMaintenance: async, MaintenanceWorkers: maintWorkers,
			ShareScans: shareOn,
		})
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := ex.Close(); err != nil {
				fatalf("close: %v", err)
			}
		}()
		for i, objs := range data {
			if err := ex.AddDataset(odyssey.DatasetID(i), objs); err != nil {
				fatalf("%v", err)
			}
		}
		// Converge on the instant disk so the measured pass compares
		// steady-state serving, not leftover reorganization.
		for pass := 0; pass < 4; pass++ {
			before := ex.Metrics()
			for _, q := range w.Queries {
				if _, err := ex.Query(q.Range, q.Datasets); err != nil {
					fatalf("converge: %v", err)
				}
			}
			if err := ex.Quiesce(context.Background()); err != nil {
				fatalf("quiesce: %v", err)
			}
			after := ex.Metrics()
			if after.Refinements == before.Refinements &&
				after.PartitionsMerged == before.PartitionsMerged &&
				after.MergeEvictions == before.MergeEvictions {
				break
			}
		}
		ex.ResetClock()
		ex.ResetStats()          // device counters (pages read, coalesced) restart at zero
		ss0 := ex.SharingStats() // engine-side sharing counters are lifetime; delta below
		ex.SetRealTimeScale(scale)

		adm := odyssey.AdmissionConfig{}
		if shareOn {
			adm.BatchWindow = batchWindow
		}
		d := odyssey.NewDispatcherWithAdmission(ex, workers, adm)
		out := make(chan odyssey.BatchResult, len(w.Queries))
		t0 := time.Now()
		for i, q := range w.Queries {
			if err := d.Submit(i, q, out); err != nil {
				fatalf("submit: %v", err)
			}
		}
		d.Close()
		wall := time.Since(t0)
		close(out)
		// Per-query result fingerprints, order-independent: sharing may
		// change I/O, never answers.
		prints := make(map[int]uint64, len(w.Queries))
		for r := range out {
			if r.Err != nil {
				fatalf("worker %d query %d: %v", r.Worker, r.Index, r.Err)
			}
			prints[r.Index] = fingerprint(r.Objects)
		}
		if err := ex.Quiesce(context.Background()); err != nil {
			fatalf("quiesce: %v", err)
		}
		sim := ex.Clock()
		ds := ex.DiskStats()
		ss := ex.SharingStats()
		ss.AttachedScans -= ss0.AttachedScans
		ss.SharedBuilds -= ss0.SharedBuilds
		ss.Invalidations -= ss0.Invalidations
		ast := d.AdmissionStats()
		rep := sharingModeReport{
			Share:          shareOn,
			WallSeconds:    wall.Seconds(),
			SimSeconds:     sim.Seconds(),
			PagesRead:      ds.PageReads,
			CacheHits:      ds.CacheHits,
			CoalescedReads: ss.CoalescedReads,
			PagesSaved:     ss.PagesSaved,
			AttachedScans:  ss.AttachedScans,
			SharedBuilds:   ss.SharedBuilds,
			Invalidations:  ss.Invalidations,
			Batches:        ast.Batches,
			BatchedQueries: ast.BatchedQueries,
		}
		name := "share-off"
		if shareOn {
			name = "share-on"
		}
		fmt.Printf("%-9s %8.3fs wall  %8.3fs simulated  %8d pages read  %6d cache hits\n",
			name, rep.WallSeconds, rep.SimSeconds, rep.PagesRead, rep.CacheHits)
		if shareOn {
			fmt.Printf("          sharing: %d coalesced reads (%d pages saved), %d attached scans, %d shared builds, %d batches/%d batched\n",
				ss.CoalescedReads, ss.PagesSaved, ss.AttachedScans, ss.SharedBuilds, ast.Batches, ast.BatchedQueries)
		}
		return rep, prints
	}

	offRep, offPrints := runMode(false)
	onRep, onPrints := runMode(true)

	identical := len(offPrints) == len(onPrints)
	for i, fp := range offPrints {
		if onPrints[i] != fp {
			identical = false
			break
		}
	}
	report := sharingReport{
		Experiment: "scan-sharing",
		Devices:    cfg.Devices, Channels: cfg.Channels, Placement: cfg.Placement,
		Workers: workers, Queries: len(w.Queries), RealtimeScale: scale,
		Async: async, BatchWindowMS: float64(batchWindow) / float64(time.Millisecond),
		Off: offRep, On: onRep,
		ResultsIdentical: identical,
	}
	if offRep.PagesRead > 0 {
		report.PagesReadReduction = 1 - float64(onRep.PagesRead)/float64(offRep.PagesRead)
	}
	if onRep.SimSeconds > 0 {
		report.SimSpeedupOffOverOn = offRep.SimSeconds / onRep.SimSeconds
	}
	fmt.Printf("\npages read: %d -> %d (%.1f%% fewer)  simulated: %.3fs -> %.3fs (%.2fx)  results identical: %v\n",
		offRep.PagesRead, onRep.PagesRead, 100*report.PagesReadReduction,
		offRep.SimSeconds, onRep.SimSeconds, report.SimSpeedupOffOverOn, identical)
	if !identical {
		fatalf("sharing changed query results — the oracle contract is broken")
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("(wrote %s)\n", jsonPath)
	}
}

// fingerprint hashes a result multiset order-independently: per object an
// FNV-1a hash of its identity and geometry, combined by addition so
// delivery order is irrelevant.
func fingerprint(objs []odyssey.Object) uint64 {
	var sum uint64
	for _, o := range objs {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d/%d/%v/%v", o.Dataset, o.ID, o.Center, o.HalfExtent)
		sum += h.Sum64()
	}
	return sum
}

// sharingModeReport is one mode's measured behaviour in the -share
// comparison.
type sharingModeReport struct {
	Share          bool    `json:"share"`
	WallSeconds    float64 `json:"wall_seconds"`
	SimSeconds     float64 `json:"sim_seconds"`
	PagesRead      int64   `json:"pages_read"`
	CacheHits      int64   `json:"cache_hits"`
	CoalescedReads int64   `json:"coalesced_reads"`
	PagesSaved     int64   `json:"pages_saved"`
	AttachedScans  int64   `json:"attached_scans"`
	SharedBuilds   int64   `json:"shared_builds"`
	Invalidations  int64   `json:"invalidations"`
	Batches        int64   `json:"batches"`
	BatchedQueries int64   `json:"batched_queries"`
}

// sharingReport is the machine-readable form of the -share comparison
// (BENCH_sharing.json).
type sharingReport struct {
	Experiment          string            `json:"experiment"`
	Devices             int               `json:"devices"`
	Channels            int               `json:"channels"`
	Placement           string            `json:"placement"`
	Workers             int               `json:"workers"`
	Queries             int               `json:"queries"`
	RealtimeScale       float64           `json:"realtime_scale"`
	Async               bool              `json:"async"`
	BatchWindowMS       float64           `json:"batch_window_ms"`
	Off                 sharingModeReport `json:"off"`
	On                  sharingModeReport `json:"on"`
	PagesReadReduction  float64           `json:"pages_read_reduction"`
	SimSpeedupOffOverOn float64           `json:"sim_speedup_off_over_on"`
	ResultsIdentical    bool              `json:"results_identical"`
}

// runCacheServing measures the epoch-scoped result cache: a zipf hot-region
// workload (clustered query centers, a zipf-skewed combination distribution —
// a few regions and dataset bundles drawing most of the traffic) is converged
// once per mode on a virtual disk, then replayed cold-cache
// (DropCachesPerQuery) through a pool of the given size on a real-time
// emulated disk, with Options.CacheResults off and on. Converged serving
// means no layout publishes flush the cache mid-replay, so the report shows
// the steady-state gain: the fraction of queries answered with zero device
// reads, split into exact per-cell hits and containment answers (a query
// window inside a cached coarse region — merge-frozen cells and unrefined
// zipf-tail datasets are the prime source). Per-query fingerprints verify
// byte-identical results between the modes: caching may change I/O, never
// answers.
func runCacheServing(cfg bench.Config, wcfg bench.WorkloadConfig, workers int, scale float64, share, async bool, maintWorkers int, jsonPath string) {
	k := 3
	if k > cfg.Datasets {
		k = cfg.Datasets
	}
	w, err := workload.Generate(workload.Config{
		Seed: wcfg.Seed, NumQueries: wcfg.Queries, NumDatasets: cfg.Datasets,
		DatasetsPerQuery: k, QueryVolumeFrac: wcfg.QueryVolumeFrac,
		RangeDist: workload.RangeClustered, CombDist: workload.CombZipf,
		ClusterCenters: 4, SigmaFactor: 0.2,
	})
	if err != nil {
		fatalf("%v", err)
	}
	data := datagen.GenerateDatasets(datagen.Config{
		Seed: cfg.DataSeed, NumObjects: cfg.ObjectsPerDataset,
		Bounds: cfg.Bounds, Layout: cfg.DataLayout,
	}, cfg.Datasets)
	policy, err := bench.PlacementByName(cfg.Placement)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("result-cache comparison: %d datasets x %d objects, %d queries, %d workers, realtime x%g\n",
		cfg.Datasets, cfg.ObjectsPerDataset, wcfg.Queries, workers, scale)
	fmt.Printf("storage: %d device(s) x %d channel(s), placement %s; scan sharing: %v; async maintenance: %v\n\n",
		cfg.Devices, cfg.Channels, cfg.Placement, share, async)

	runMode := func(cacheOn bool) (cacheModeReport, map[int]uint64) {
		ex, err := odyssey.NewExplorer(odyssey.Options{
			Bounds: cfg.Bounds, Cost: cfg.Cost, CachePages: cfg.CachePages,
			DropCachesPerQuery: true, // pooled miss-heavy serving: the page cache never helps
			Devices:            cfg.Devices, Channels: cfg.Channels, Placement: policy,
			AsyncMaintenance: async, MaintenanceWorkers: maintWorkers,
			ShareScans:   share,
			CacheResults: cacheOn,
		})
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := ex.Close(); err != nil {
				fatalf("close: %v", err)
			}
		}()
		for i, objs := range data {
			if err := ex.AddDataset(odyssey.DatasetID(i), objs); err != nil {
				fatalf("%v", err)
			}
		}
		// Converge on the instant disk so the measured pass compares
		// steady-state serving — and, with caching on, replays against the
		// cache the convergence passes populated.
		for pass := 0; pass < 4; pass++ {
			before := ex.Metrics()
			for _, q := range w.Queries {
				if _, err := ex.Query(q.Range, q.Datasets); err != nil {
					fatalf("converge: %v", err)
				}
			}
			if err := ex.Quiesce(context.Background()); err != nil {
				fatalf("quiesce: %v", err)
			}
			after := ex.Metrics()
			if after.Refinements == before.Refinements &&
				after.PartitionsMerged == before.PartitionsMerged &&
				after.MergeEvictions == before.MergeEvictions {
				break
			}
		}
		ex.ResetClock()
		ex.ResetStats()        // device counters (pages read) restart at zero
		cs0 := ex.CacheStats() // cache counters are lifetime; delta below
		ex.SetRealTimeScale(scale)

		d := odyssey.NewDispatcherWithAdmission(ex, workers, odyssey.AdmissionConfig{})
		out := make(chan odyssey.BatchResult, len(w.Queries))
		t0 := time.Now()
		for i, q := range w.Queries {
			if err := d.Submit(i, q, out); err != nil {
				fatalf("submit: %v", err)
			}
		}
		d.Close()
		wall := time.Since(t0)
		close(out)
		// Per-query result fingerprints, order-independent: caching may
		// change I/O, never answers.
		prints := make(map[int]uint64, len(w.Queries))
		for r := range out {
			if r.Err != nil {
				fatalf("worker %d query %d: %v", r.Worker, r.Index, r.Err)
			}
			prints[r.Index] = fingerprint(r.Objects)
		}
		if err := ex.Quiesce(context.Background()); err != nil {
			fatalf("quiesce: %v", err)
		}
		sim := ex.Clock()
		ds := ex.DiskStats()
		cs := ex.CacheStats()
		rep := cacheModeReport{
			Cache:           cacheOn,
			WallSeconds:     wall.Seconds(),
			SimSeconds:      sim.Seconds(),
			PagesRead:       ds.PageReads,
			Hits:            cs.Hits - cs0.Hits,
			ContainmentHits: cs.ContainmentHits - cs0.ContainmentHits,
			Misses:          cs.Misses - cs0.Misses,
			Inserts:         cs.Inserts - cs0.Inserts,
			Evictions:       cs.Evictions - cs0.Evictions,
			Invalidations:   cs.Invalidations - cs0.Invalidations,
			ZeroReadQueries: cs.ZeroReadQueries - cs0.ZeroReadQueries,
			Entries:         cs.Entries,
			CachedObjects:   cs.CachedObjects,
		}
		if n := len(w.Queries); n > 0 {
			rep.ZeroReadFraction = float64(rep.ZeroReadQueries) / float64(n)
		}
		name := "cache-off"
		if cacheOn {
			name = "cache-on"
		}
		fmt.Printf("%-9s %8.3fs wall  %8.3fs simulated  %8d pages read\n",
			name, rep.WallSeconds, rep.SimSeconds, rep.PagesRead)
		if cacheOn {
			fmt.Printf("          cache: %d exact + %d containment hits, %d/%d queries zero-read (%.1f%%), %d inserts, %d evictions, %d invalidations\n",
				rep.Hits, rep.ContainmentHits, rep.ZeroReadQueries, len(w.Queries),
				100*rep.ZeroReadFraction, rep.Inserts, rep.Evictions, rep.Invalidations)
		}
		return rep, prints
	}

	offRep, offPrints := runMode(false)
	onRep, onPrints := runMode(true)

	identical := len(offPrints) == len(onPrints)
	for i, fp := range offPrints {
		if onPrints[i] != fp {
			identical = false
			break
		}
	}
	report := cacheReport{
		Experiment: "result-cache",
		Devices:    cfg.Devices, Channels: cfg.Channels, Placement: cfg.Placement,
		Workers: workers, Queries: len(w.Queries), RealtimeScale: scale,
		Share: share, Async: async,
		Off: offRep, On: onRep,
		ResultsIdentical: identical,
	}
	if offRep.PagesRead > 0 {
		report.PagesReadReduction = 1 - float64(onRep.PagesRead)/float64(offRep.PagesRead)
	}
	if onRep.SimSeconds > 0 {
		report.SimSpeedupOffOverOn = offRep.SimSeconds / onRep.SimSeconds
	}
	fmt.Printf("\npages read: %d -> %d (%.1f%% fewer)  simulated: %.3fs -> %.3fs (%.2fx)  results identical: %v\n",
		offRep.PagesRead, onRep.PagesRead, 100*report.PagesReadReduction,
		offRep.SimSeconds, onRep.SimSeconds, report.SimSpeedupOffOverOn, identical)
	if !identical {
		fatalf("caching changed query results — the oracle contract is broken")
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("(wrote %s)\n", jsonPath)
	}
}

// cacheModeReport is one mode's measured behaviour in the -cache
// comparison. Cache counters are deltas over the measured replay (the
// convergence passes populate the cache but are not reported); Entries and
// CachedObjects are the end-of-run snapshot.
type cacheModeReport struct {
	Cache            bool    `json:"cache"`
	WallSeconds      float64 `json:"wall_seconds"`
	SimSeconds       float64 `json:"sim_seconds"`
	PagesRead        int64   `json:"pages_read"`
	Hits             int64   `json:"hits"`
	ContainmentHits  int64   `json:"containment_hits"`
	Misses           int64   `json:"misses"`
	Inserts          int64   `json:"inserts"`
	Evictions        int64   `json:"evictions"`
	Invalidations    int64   `json:"invalidations"`
	ZeroReadQueries  int64   `json:"zero_read_queries"`
	ZeroReadFraction float64 `json:"zero_read_fraction"`
	Entries          int     `json:"entries"`
	CachedObjects    int64   `json:"cached_objects"`
}

// cacheReport is the machine-readable form of the -cache comparison
// (BENCH_cache.json).
type cacheReport struct {
	Experiment          string          `json:"experiment"`
	Devices             int             `json:"devices"`
	Channels            int             `json:"channels"`
	Placement           string          `json:"placement"`
	Workers             int             `json:"workers"`
	Queries             int             `json:"queries"`
	RealtimeScale       float64         `json:"realtime_scale"`
	Share               bool            `json:"share"`
	Async               bool            `json:"async"`
	Off                 cacheModeReport `json:"off"`
	On                  cacheModeReport `json:"on"`
	PagesReadReduction  float64         `json:"pages_read_reduction"`
	SimSpeedupOffOverOn float64         `json:"sim_speedup_off_over_on"`
	ResultsIdentical    bool            `json:"results_identical"`
}

// runFaultsServing measures availability under a deterministic device fault
// storm: the zipf hot-region workload converges once on a healthy instant
// disk, replays once fault-free through the pool (recording a per-query
// result fingerprint — every query must succeed on a healthy device), then a
// seeded transient-fault plan with periodic 10x storm windows is installed
// alongside the read retry policy and the identical workload replays again.
// The report is the availability ledger: the fraction of queries served
// mid-storm, their latency percentiles, the device's fault/retry counters,
// and fingerprint identity of every served query with its fault-free answer —
// a degraded device may fail queries, never corrupt them. The result cache
// (-cache) is the degradation backstop: windows it contains are answered with
// zero device reads no matter how sick the platter is.
func runFaultsServing(cfg bench.Config, wcfg bench.WorkloadConfig, workers int, scale float64, share, cache, async bool, maintWorkers int, faultRate float64, jsonPath string) {
	const retryAttempts = 4
	k := 3
	if k > cfg.Datasets {
		k = cfg.Datasets
	}
	w, err := workload.Generate(workload.Config{
		Seed: wcfg.Seed, NumQueries: wcfg.Queries, NumDatasets: cfg.Datasets,
		DatasetsPerQuery: k, QueryVolumeFrac: wcfg.QueryVolumeFrac,
		RangeDist: workload.RangeClustered, CombDist: workload.CombZipf,
		ClusterCenters: 4, SigmaFactor: 0.2,
	})
	if err != nil {
		fatalf("%v", err)
	}
	data := datagen.GenerateDatasets(datagen.Config{
		Seed: cfg.DataSeed, NumObjects: cfg.ObjectsPerDataset,
		Bounds: cfg.Bounds, Layout: cfg.DataLayout,
	}, cfg.Datasets)
	policy, err := bench.PlacementByName(cfg.Placement)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("fault-storm availability: %d datasets x %d objects, %d queries, %d workers, realtime x%g\n",
		cfg.Datasets, cfg.ObjectsPerDataset, wcfg.Queries, workers, scale)
	fmt.Printf("storage: %d device(s) x %d channel(s), placement %s; share: %v; cache: %v; async maintenance: %v\n",
		cfg.Devices, cfg.Channels, cfg.Placement, share, cache, async)
	fmt.Printf("faults: transient rate %g (10x in storm windows), retries: %d attempts\n\n",
		faultRate, retryAttempts)

	ex, err := odyssey.NewExplorer(odyssey.Options{
		Bounds: cfg.Bounds, Cost: cfg.Cost, CachePages: cfg.CachePages,
		DropCachesPerQuery: true,
		Devices:            cfg.Devices, Channels: cfg.Channels, Placement: policy,
		AsyncMaintenance: async, MaintenanceWorkers: maintWorkers,
		ShareScans:   share,
		CacheResults: cache,
		Retry:        odyssey.RetryPolicy{MaxAttempts: retryAttempts, Backoff: 200 * time.Microsecond},
		// The brownout controller runs but should only engage in a real
		// catastrophe — the experiment measures retry-backed availability,
		// not shedding.
		BrownoutThreshold: 0.5,
		BrownoutWindow:    10 * time.Millisecond,
	})
	if err != nil {
		fatalf("%v", err)
	}
	defer func() {
		if err := ex.Close(); err != nil {
			fatalf("close: %v", err)
		}
	}()
	for i, objs := range data {
		if err := ex.AddDataset(odyssey.DatasetID(i), objs); err != nil {
			fatalf("%v", err)
		}
	}
	for pass := 0; pass < 4; pass++ {
		before := ex.Metrics()
		for _, q := range w.Queries {
			if _, err := ex.Query(q.Range, q.Datasets); err != nil {
				fatalf("converge: %v", err)
			}
		}
		if err := ex.Quiesce(context.Background()); err != nil {
			fatalf("quiesce: %v", err)
		}
		after := ex.Metrics()
		if after.Refinements == before.Refinements &&
			after.PartitionsMerged == before.PartitionsMerged &&
			after.MergeEvictions == before.MergeEvictions {
			break
		}
	}
	ex.SetRealTimeScale(scale)

	replay := func(name string) (faultsModeReport, map[int]uint64) {
		// Both replays start cold-cache so their device traffic is
		// symmetric: misses hit the (possibly faulting) platter, and the
		// zipf repeats re-populate and then hit the cache mid-replay.
		ex.FlushResultCache()
		ex.ResetClock()
		ex.ResetStats()
		cs0 := ex.CacheStats()
		d := odyssey.NewDispatcherWithAdmission(ex, workers, odyssey.AdmissionConfig{})
		out := make(chan odyssey.BatchResult, len(w.Queries))
		t0 := time.Now()
		for i, q := range w.Queries {
			if err := d.Submit(i, q, out); err != nil {
				fatalf("submit: %v", err)
			}
		}
		d.Close()
		wall := time.Since(t0)
		close(out)
		prints := make(map[int]uint64, len(w.Queries))
		var lat []time.Duration
		var served, failed int
		for r := range out {
			if r.Err != nil {
				failed++
				continue
			}
			served++
			prints[r.Index] = fingerprint(r.Objects)
			lat = append(lat, r.Wall)
		}
		if err := ex.Quiesce(context.Background()); err != nil {
			fatalf("quiesce: %v", err)
		}
		ds := ex.DiskStats()
		cs := ex.CacheStats()
		rep := faultsModeReport{
			WallSeconds:     wall.Seconds(),
			SimSeconds:      ex.Clock().Seconds(),
			Served:          served,
			Failed:          failed,
			LatencyP50:      pct(lat, 50).Seconds(),
			LatencyP95:      pct(lat, 95).Seconds(),
			LatencyP99:      pct(lat, 99).Seconds(),
			PagesRead:       ds.PageReads,
			TransientFaults: ds.TransientFaults,
			PermanentFaults: ds.PermanentFaults,
			LatencySpikes:   ds.LatencySpikes,
			RetriedOps:      ds.RetriedOps,
			RetryExhausted:  ds.RetryExhausted,
			ZeroReadQueries: cs.ZeroReadQueries - cs0.ZeroReadQueries,
		}
		if n := len(w.Queries); n > 0 {
			rep.ServedFraction = float64(rep.Served) / float64(n)
		}
		fmt.Printf("%-11s %4d/%d served (%.2f%%)  wall %7.3fs  fg p50 %-10v p99 %v\n",
			name, served, len(w.Queries), 100*rep.ServedFraction, rep.WallSeconds,
			pct(lat, 50), pct(lat, 99))
		if rep.TransientFaults+rep.PermanentFaults > 0 {
			fmt.Printf("            faults: %d transient, %d permanent, %d spikes; retries: %d performed, %d exhausted; %d zero-read queries\n",
				rep.TransientFaults, rep.PermanentFaults, rep.LatencySpikes,
				rep.RetriedOps, rep.RetryExhausted, rep.ZeroReadQueries)
		}
		return rep, prints
	}

	cleanRep, cleanPrints := replay("fault-free")
	if cleanRep.Failed > 0 {
		fatalf("healthy device failed %d queries", cleanRep.Failed)
	}
	ex.SetFaultPlan(odyssey.FaultPlan{
		Seed:          wcfg.Seed + 101,
		TransientRate: faultRate,
		StormEvery:    2048,
		StormLength:   256,
		StormFactor:   10,
	})
	stormRep, stormPrints := replay("fault-storm")

	identical := true
	for i, fp := range stormPrints {
		if cleanPrints[i] != fp {
			identical = false
			break
		}
	}
	bs := ex.BrownoutStats()
	report := faultsReport{
		Experiment: "fault-storm",
		Devices:    cfg.Devices, Channels: cfg.Channels, Placement: cfg.Placement,
		Workers: workers, Queries: len(w.Queries), RealtimeScale: scale,
		Share: share, Cache: cache, Async: async,
		FaultRate: faultRate, RetryMaxAttempts: retryAttempts,
		Clean: cleanRep, Storm: stormRep,
		ServedResultsIdentical: identical,
		BrownoutEngagements:    bs.Engagements,
		BrownoutSheds:          bs.ShedQueries,
		DegradedAtEnd:          bs.Engaged,
	}
	fmt.Printf("\nserved fraction mid-storm: %.2f%%  served results identical to fault-free: %v  brownout engagements: %d\n",
		100*stormRep.ServedFraction, identical, bs.Engagements)
	if !identical {
		fatalf("a query served mid-storm returned a different result than fault-free — partial results leaked")
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("(wrote %s)\n", jsonPath)
	}
}

// faultsModeReport is one replay's measured behaviour in the -faults
// experiment. Device counters are deltas over the replay; latency
// percentiles cover served queries only.
type faultsModeReport struct {
	WallSeconds     float64 `json:"wall_seconds"`
	SimSeconds      float64 `json:"sim_seconds"`
	Served          int     `json:"served"`
	Failed          int     `json:"failed"`
	ServedFraction  float64 `json:"served_fraction"`
	LatencyP50      float64 `json:"latency_p50_seconds"`
	LatencyP95      float64 `json:"latency_p95_seconds"`
	LatencyP99      float64 `json:"latency_p99_seconds"`
	PagesRead       int64   `json:"pages_read"`
	TransientFaults int64   `json:"transient_faults"`
	PermanentFaults int64   `json:"permanent_faults"`
	LatencySpikes   int64   `json:"latency_spikes"`
	RetriedOps      int64   `json:"retried_ops"`
	RetryExhausted  int64   `json:"retry_exhausted"`
	ZeroReadQueries int64   `json:"zero_read_queries"`
}

// faultsReport is the machine-readable form of the -faults experiment
// (BENCH_faults.json).
type faultsReport struct {
	Experiment             string           `json:"experiment"`
	Devices                int              `json:"devices"`
	Channels               int              `json:"channels"`
	Placement              string           `json:"placement"`
	Workers                int              `json:"workers"`
	Queries                int              `json:"queries"`
	RealtimeScale          float64          `json:"realtime_scale"`
	Share                  bool             `json:"share"`
	Cache                  bool             `json:"cache"`
	Async                  bool             `json:"async"`
	FaultRate              float64          `json:"fault_rate"`
	RetryMaxAttempts       int              `json:"retry_max_attempts"`
	Clean                  faultsModeReport `json:"clean"`
	Storm                  faultsModeReport `json:"storm"`
	ServedResultsIdentical bool             `json:"served_results_identical"`
	BrownoutEngagements    int64            `json:"brownout_engagements"`
	BrownoutSheds          int64            `json:"brownout_sheds"`
	DegradedAtEnd          bool             `json:"degraded_at_end"`
}

// runClusterServing measures the replicated-cluster serving stack: the zipf
// hot-region workload converges once on a single Explorer (the oracle,
// recording per-query result fingerprints), then replays through a sharded,
// replicated Router — clean, through a deterministic crash window (one
// shard down for a third of the replay, plus a brief overlap where a whole
// replica pair is down, exercising rejects, failover and partial serving),
// and through a slow-shard storm twice, hedged and unhedged, so the report
// pins the tail-latency win of hedged reads. Every fully-served answer must
// fingerprint-identical to the oracle, and the cluster-wide charge ledger
// must conserve exactly: ChargedSim + WastedSim equals the shards'
// device-side charges — hedging re-routes work, it never double-counts it.
func runClusterServing(cfg bench.Config, wcfg bench.WorkloadConfig, shards, replicas int, shardFaults bool, jsonPath string) {
	const workers = 8
	const slowDelay = 25 * time.Millisecond
	k := 3
	if k > cfg.Datasets {
		k = cfg.Datasets
	}
	w, err := workload.Generate(workload.Config{
		Seed: wcfg.Seed, NumQueries: wcfg.Queries, NumDatasets: cfg.Datasets,
		DatasetsPerQuery: k, QueryVolumeFrac: wcfg.QueryVolumeFrac,
		RangeDist: workload.RangeClustered, CombDist: workload.CombZipf,
		ClusterCenters: 4, SigmaFactor: 0.2,
	})
	if err != nil {
		fatalf("%v", err)
	}
	n := len(w.Queries)
	data := datagen.GenerateDatasets(datagen.Config{
		Seed: cfg.DataSeed, NumObjects: cfg.ObjectsPerDataset,
		Bounds: cfg.Bounds, Layout: cfg.DataLayout,
	}, cfg.Datasets)
	policy, err := bench.PlacementByName(cfg.Placement)
	if err != nil {
		fatalf("%v", err)
	}
	opts := odyssey.Options{
		Bounds: cfg.Bounds, Cost: cfg.Cost, CachePages: cfg.CachePages,
		Devices: cfg.Devices, Channels: cfg.Channels, Placement: policy,
	}

	fmt.Printf("cluster serving: %d shards, R=%d, %d datasets x %d objects, %d queries, %d submitters\n",
		shards, replicas, cfg.Datasets, cfg.ObjectsPerDataset, n, workers)
	fmt.Printf("storage per shard: %d device(s) x %d channel(s), placement %s; shard faults: %v\n\n",
		cfg.Devices, cfg.Channels, cfg.Placement, shardFaults)

	// Oracle: one Explorer over the union of the datasets, converged, then
	// replayed serially for the per-query result fingerprints.
	ex, err := odyssey.NewExplorer(opts)
	if err != nil {
		fatalf("%v", err)
	}
	for i, objs := range data {
		if err := ex.AddDataset(odyssey.DatasetID(i), objs); err != nil {
			fatalf("%v", err)
		}
	}
	for pass := 0; pass < 4; pass++ {
		before := ex.Metrics()
		for _, q := range w.Queries {
			if _, err := ex.Query(q.Range, q.Datasets); err != nil {
				fatalf("converge: %v", err)
			}
		}
		after := ex.Metrics()
		if after.Refinements == before.Refinements &&
			after.PartitionsMerged == before.PartitionsMerged &&
			after.MergeEvictions == before.MergeEvictions {
			break
		}
	}
	ex.ResetClock()
	basePrints := make([]uint64, n)
	for i, q := range w.Queries {
		objs, err := ex.Query(q.Range, q.Datasets)
		if err != nil {
			fatalf("baseline: %v", err)
		}
		basePrints[i] = fingerprint(objs)
	}
	baseSim := ex.Clock()
	if err := ex.Close(); err != nil {
		fatalf("close baseline: %v", err)
	}
	fmt.Printf("%-15s %d/%d served, sim %.3fs (single Explorer, serial)\n",
		"baseline", n, n, baseSim.Seconds())

	newRouter := func(hedged bool) *cluster.Router {
		r, err := cluster.New(cluster.Config{
			Shards: shards, Replicas: replicas, Options: opts,
			Policy:   cluster.ServePartial,
			Failover: odyssey.RetryPolicy{MaxAttempts: 3, Backoff: 200 * time.Microsecond, Budget: 50 * time.Millisecond},
			Health:   cluster.HealthConfig{ProbeInterval: 2 * time.Millisecond},
			Hedge:    cluster.HedgeConfig{Enabled: hedged, MinDelay: 2 * time.Millisecond},
		})
		if err != nil {
			fatalf("%v", err)
		}
		for i, objs := range data {
			if err := r.AddDataset(odyssey.DatasetID(i), objs); err != nil {
				fatalf("%v", err)
			}
		}
		for pass := 0; pass < 4; pass++ {
			var before, after odyssey.Metrics
			for _, m := range r.ShardMetrics() {
				before.Refinements += m.Refinements
				before.PartitionsMerged += m.PartitionsMerged
				before.MergeEvictions += m.MergeEvictions
			}
			for _, q := range w.Queries {
				if _, err := r.Query(q.Range, q.Datasets); err != nil {
					fatalf("cluster converge: %v", err)
				}
			}
			if err := r.Quiesce(context.Background()); err != nil {
				fatalf("quiesce: %v", err)
			}
			for _, m := range r.ShardMetrics() {
				after.Refinements += m.Refinements
				after.PartitionsMerged += m.PartitionsMerged
				after.MergeEvictions += m.MergeEvictions
			}
			if after.Refinements == before.Refinements &&
				after.PartitionsMerged == before.PartitionsMerged &&
				after.MergeEvictions == before.MergeEvictions {
				break
			}
		}
		return r
	}

	// phase replays the workload through r from `workers` submitting
	// goroutines and reports the availability ledger of the replay.
	phase := func(name string, r *cluster.Router) clusterPhaseReport {
		st0 := r.Stats()
		errs := make([]error, n)
		lats := make([]time.Duration, n)
		prints := make([]uint64, n)
		var wg sync.WaitGroup
		t0 := time.Now()
		for s := 0; s < workers; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := s; i < n; i += workers {
					q0 := time.Now()
					objs, err := r.Query(w.Queries[i].Range, w.Queries[i].Datasets)
					lats[i] = time.Since(q0)
					errs[i] = err
					if err == nil {
						prints[i] = fingerprint(objs)
					}
				}
			}(s)
		}
		wg.Wait()
		wall := time.Since(t0)
		st := r.Stats()
		rep := clusterPhaseReport{
			WallSeconds:      wall.Seconds(),
			ResultsIdentical: true,
			LatencyP50:       pct(lats, 50).Seconds(),
			LatencyP95:       pct(lats, 95).Seconds(),
			LatencyP99:       pct(lats, 99).Seconds(),
			Failovers:        st.Failovers - st0.Failovers,
			Retries:          st.Retries - st0.Retries,
			HedgesFired:      st.HedgesFired - st0.HedgesFired,
			HedgeWins:        st.HedgeWins - st0.HedgeWins,
			ShardRejects:     st.ShardRejects - st0.ShardRejects,
		}
		for i, err := range errs {
			switch {
			case err == nil:
				rep.Served++
				if prints[i] != basePrints[i] {
					rep.ResultsIdentical = false
				}
			case errors.Is(err, cluster.ErrPartial):
				rep.Partial++
			default:
				rep.Failed++
			}
		}
		rep.Availability = float64(rep.Served+rep.Partial) / float64(n)
		rep.FullFraction = float64(rep.Served) / float64(n)
		fmt.Printf("%-15s %d/%d full + %d partial (availability %.2f%%)  wall %.3fs  p50 %-10v p99 %-10v  failovers %d  rejects %d  hedges %d (%d won)  identical %v\n",
			name, rep.Served, n, rep.Partial, 100*rep.Availability, rep.WallSeconds,
			pct(lats, 50), pct(lats, 99), rep.Failovers, rep.ShardRejects,
			rep.HedgesFired, rep.HedgeWins, rep.ResultsIdentical)
		return rep
	}

	// conservation closes r and checks the cluster charge ledger against
	// the shards' device-side charges.
	conservation := func(r *cluster.Router) (charged, wasted, ledger time.Duration) {
		if err := r.Close(); err != nil {
			fatalf("close cluster: %v", err)
		}
		st := r.Stats()
		for si, dev := range r.ShardChannelStats() {
			for _, chans := range dev {
				for _, ch := range chans {
					ledger += ch.Busy
				}
			}
			ds := r.ShardDiskStats()[si]
			ledger += time.Duration(ds.CacheHits)*cfg.Cost.CacheHit + ds.QueuedDelay
		}
		return st.ChargedSim, st.WastedSim, ledger
	}

	r := newRouter(true)
	report := clusterReport{
		Experiment: "cluster-serving",
		Shards:     shards, Replicas: replicas, Workers: workers,
		Queries: n, Datasets: cfg.Datasets, ShardFaults: shardFaults,
		BaselineSimSeconds: baseSim.Seconds(),
	}
	report.Clean = phase("clean", r)
	if report.Clean.Served != n {
		fatalf("healthy cluster failed %d of %d queries", n-report.Clean.Served, n)
	}
	if !report.Clean.ResultsIdentical {
		fatalf("a healthy cluster query diverged from the single-Explorer oracle")
	}

	if shardFaults {
		// Crash window, in query ordinals relative to this replay: shard 1
		// is down for the middle third, and for a brief overlap shard 2 dies
		// too — any dataset replicated exactly on that pair is unreachable,
		// so the partial path and the reject ledger are exercised for real.
		base := r.Stats().Queries
		nn := int64(n)
		crashPlan := cluster.ShardFaultPlan{Faults: []cluster.ShardFault{
			{Shard: 1 % shards, CrashAfter: base + nn/4, CrashFor: nn / 3},
			{Shard: 2 % shards, CrashAfter: base + nn/3, CrashFor: nn / 8},
		}}
		r.SetShardFaultPlan(crashPlan)
		rep := phase("crash-window", r)
		r.SetShardFaultPlan(cluster.ShardFaultPlan{})
		if !rep.ResultsIdentical {
			fatalf("a query fully served through the crash window diverged from the oracle")
		}
		report.Crash = &rep

		// Slow-shard storm, unhedged first (a fresh Router with hedging off,
		// converged the same way), then hedged on the main Router: identical
		// storms, so the p99 delta is the hedging win.
		slow := func(r *cluster.Router) cluster.ShardFaultPlan {
			return cluster.ShardFaultPlan{Faults: []cluster.ShardFault{{
				Shard: 0, SlowAfter: r.Stats().Queries, SlowFor: nn, SlowDelay: slowDelay,
			}}}
		}
		ru := newRouter(false)
		ru.SetShardFaultPlan(slow(ru))
		repU := phase("slow-unhedged", ru)
		report.SlowUnhedged = &repU
		chU, waU, ledU := conservation(ru)
		if chU+waU != ledU {
			fatalf("unhedged charge conservation broken: charged %v + wasted %v != device ledger %v", chU, waU, ledU)
		}

		r.SetShardFaultPlan(slow(r))
		repH := phase("slow-hedged", r)
		r.SetShardFaultPlan(cluster.ShardFaultPlan{})
		if !repH.ResultsIdentical {
			fatalf("a hedged query diverged from the oracle")
		}
		report.SlowHedged = &repH
		if repH.LatencyP99 > 0 {
			report.HedgeP99Speedup = repU.LatencyP99 / repH.LatencyP99
		}
		fmt.Printf("\nslow-shard storm p99: unhedged %.1fms, hedged %.1fms (speedup x%.1f)\n",
			1e3*repU.LatencyP99, 1e3*repH.LatencyP99, report.HedgeP99Speedup)
	}

	for _, h := range r.Health() {
		report.ShardHealth = append(report.ShardHealth, shardHealthReport{
			Shard: h.Shard, State: h.State.String(),
			Probes: h.Probes, ProbeFailures: h.ProbeFailures,
			Transitions: h.Transitions, Serves: h.Serves, Rejects: h.Rejects,
		})
	}
	charged, wasted, ledger := conservation(r)
	report.ChargedSimSeconds = charged.Seconds()
	report.WastedSimSeconds = wasted.Seconds()
	report.DeviceLedgerSeconds = ledger.Seconds()
	report.ChargeConserved = charged+wasted == ledger
	fmt.Printf("charge ledger: attributed %.3fs + wasted %.3fs vs device %.3fs — conserved: %v\n",
		charged.Seconds(), wasted.Seconds(), ledger.Seconds(), report.ChargeConserved)
	if !report.ChargeConserved {
		fatalf("cluster charge conservation broken: hedged reads double- or under-counted device work")
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("(wrote %s)\n", jsonPath)
	}
}

// clusterPhaseReport is one replay's availability ledger in the -cluster
// experiment. Counter fields are deltas over the replay; latency
// percentiles are wall-clock and cover every query.
type clusterPhaseReport struct {
	WallSeconds float64 `json:"wall_seconds"`
	Served      int     `json:"served"`
	Partial     int     `json:"partial"`
	Failed      int     `json:"failed"`
	// Availability counts every answered query (full or partial) against
	// the workload; FullFraction counts only complete answers.
	Availability float64 `json:"availability"`
	FullFraction float64 `json:"full_fraction"`
	// ResultsIdentical reports whether every fully-served query
	// fingerprint-matched the single-Explorer oracle.
	ResultsIdentical bool    `json:"results_identical"`
	LatencyP50       float64 `json:"latency_p50_seconds"`
	LatencyP95       float64 `json:"latency_p95_seconds"`
	LatencyP99       float64 `json:"latency_p99_seconds"`
	Failovers        int64   `json:"failovers"`
	Retries          int64   `json:"retries"`
	HedgesFired      int64   `json:"hedges_fired"`
	HedgeWins        int64   `json:"hedge_wins"`
	ShardRejects     int64   `json:"shard_rejects"`
}

// shardHealthReport mirrors cluster.ShardHealth with snake_case keys.
type shardHealthReport struct {
	Shard         int    `json:"shard"`
	State         string `json:"state"`
	Probes        int64  `json:"probes"`
	ProbeFailures int64  `json:"probe_failures"`
	Transitions   int64  `json:"transitions"`
	Serves        int64  `json:"serves"`
	Rejects       int64  `json:"rejects"`
}

// clusterReport is the machine-readable form of the -cluster experiment
// (BENCH_cluster.json).
type clusterReport struct {
	Experiment          string              `json:"experiment"`
	Shards              int                 `json:"shards"`
	Replicas            int                 `json:"replicas"`
	Workers             int                 `json:"workers"`
	Queries             int                 `json:"queries"`
	Datasets            int                 `json:"datasets"`
	ShardFaults         bool                `json:"shard_faults"`
	BaselineSimSeconds  float64             `json:"baseline_sim_seconds"`
	Clean               clusterPhaseReport  `json:"clean"`
	Crash               *clusterPhaseReport `json:"crash,omitempty"`
	SlowUnhedged        *clusterPhaseReport `json:"slow_unhedged,omitempty"`
	SlowHedged          *clusterPhaseReport `json:"slow_hedged,omitempty"`
	HedgeP99Speedup     float64             `json:"hedge_p99_speedup"`
	ChargedSimSeconds   float64             `json:"charged_sim_seconds"`
	WastedSimSeconds    float64             `json:"wasted_sim_seconds"`
	DeviceLedgerSeconds float64             `json:"device_ledger_seconds"`
	ChargeConserved     bool                `json:"charge_conserved"`
	ShardHealth         []shardHealthReport `json:"shard_health"`
}

// asyncModeReport is one maintenance mode's measured behaviour.
type asyncModeReport struct {
	WallSeconds            float64 `json:"wall_seconds"`
	SimSeconds             float64 `json:"sim_seconds"`
	LatencyP50             float64 `json:"latency_p50_seconds"`
	LatencyP95             float64 `json:"latency_p95_seconds"`
	LatencyP99             float64 `json:"latency_p99_seconds"`
	Converged              bool    `json:"converged"`
	ConvergenceWallSeconds float64 `json:"convergence_wall_seconds"`
	ConvergencePasses      int     `json:"convergence_passes"`
	Refinements            int     `json:"refinements"`
	PartitionsMerged       int     `json:"partitions_merged"`
	MergeFiles             int     `json:"merge_files"`
	// MaintenanceBudget is the background I/O budget this mode ran under (0
	// = unthrottled); ThrottledOps counts maintenance device operations the
	// budget gated, and QueuedDelaySeconds is the total arrival-gated
	// queueing delay the contention model attributed to queries.
	MaintenanceBudget  float64            `json:"maintenance_budget"`
	ThrottledOps       int64              `json:"throttled_ops"`
	QueuedDelaySeconds float64            `json:"queued_delay_seconds"`
	Maintenance        *maintenanceReport `json:"maintenance,omitempty"`
}

// maintenanceReport mirrors odyssey.MaintenanceStats with snake_case keys.
type maintenanceReport struct {
	Queued              int64 `json:"queued"`
	Coalesced           int64 `json:"coalesced"`
	Completed           int64 `json:"completed"`
	Failed              int64 `json:"failed"`
	Dropped             int64 `json:"dropped"`
	RefineTasks         int64 `json:"refine_tasks"`
	MergeTasks          int64 `json:"merge_tasks"`
	Refinements         int64 `json:"refinements"`
	QueueDepthHighWater int   `json:"queue_depth_high_water"`
}

// asyncReport is the machine-readable form of the -async comparison.
type asyncReport struct {
	Experiment         string            `json:"experiment"`
	Devices            int               `json:"devices"`
	Channels           int               `json:"channels"`
	Placement          string            `json:"placement"`
	Workers            int               `json:"workers"`
	Queries            int               `json:"queries"`
	RealtimeScale      float64           `json:"realtime_scale"`
	MaintenanceWorkers int               `json:"maintenance_workers"`
	Sync               asyncModeReport   `json:"sync"`
	Async              asyncModeReport   `json:"async"`
	P99Speedup         float64           `json:"p99_speedup_sync_over_async"`
	Contention         *contentionReport `json:"contention,omitempty"`
}

// contentionReport is the -contention extension of the -async comparison:
// foreground QoS measured in the regime the background I/O budget targets.
// The foreground half of the datasets is converged first (stable,
// layout-independent query cost), then its workload is replayed open-loop
// (arrivals paced to ~60% of the pool's measured capacity) while a side
// pool fires cold queries at the remaining datasets, churning refinement
// and merge maintenance through the whole pass. The two legs differ only
// in the budget (off / -maintbudget). Throttling moves maintenance work in
// wall-clock time only — results and simulated charges are identical — so
// any foreground tail improvement is contention relief, not skipped work.
type contentionReport struct {
	MaintenanceBudget           float64             `json:"maintenance_budget"`
	ArrivalGapSeconds           float64             `json:"arrival_gap_seconds"`
	ForegroundDatasets          int                 `json:"foreground_datasets"`
	BackgroundDatasets          int                 `json:"background_datasets"`
	BackgroundQueries           int                 `json:"background_queries"`
	Unthrottled                 contentionLegReport `json:"unthrottled"`
	Throttled                   contentionLegReport `json:"throttled"`
	FgP99UnderContentionSeconds float64             `json:"fg_p99_under_contention_seconds"`
	FgP99ThrottledSeconds       float64             `json:"fg_p99_throttled_seconds"`
	P99Improvement              float64             `json:"p99_improvement_unthrottled_over_throttled"`
}

// contentionLegReport is one leg of the contention comparison: the paced
// foreground pass's latency profile plus the throttle's activity during it.
type contentionLegReport struct {
	MaintenanceBudget  float64 `json:"maintenance_budget"`
	LatencyP50         float64 `json:"latency_p50_seconds"`
	LatencyP95         float64 `json:"latency_p95_seconds"`
	LatencyP99         float64 `json:"latency_p99_seconds"`
	ThrottledOps       int64   `json:"throttled_ops"`
	QueuedDelaySeconds float64 `json:"queued_delay_seconds"`
}

// servingRun is one timed replay of the workload.
type servingRun struct {
	WallSeconds float64 `json:"wall_seconds"`
	SimSeconds  float64 `json:"sim_seconds"`
	Speedup     float64 `json:"speedup_vs_serial,omitempty"`
}

// channelUtil is one channel's share of the measured run.
type channelUtil struct {
	Device      int     `json:"device"`
	Channel     int     `json:"channel"`
	BusySeconds float64 `json:"busy_seconds"`
	Utilization float64 `json:"utilization"`
	Seeks       int64   `json:"seeks"`
	SeqPages    int64   `json:"seq_pages"`
}

// admissionReport mirrors odyssey.AdmissionStats with snake_case keys so
// the whole JSON document keeps one naming convention.
type admissionReport struct {
	Admitted  int64 `json:"admitted"`
	Rejected  int64 `json:"rejected"`
	Canceled  int64 `json:"canceled"`
	Swept     int64 `json:"swept"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
}

// servingReport is the machine-readable form of the -parallel experiment.
type servingReport struct {
	Devices     int             `json:"devices"`
	Channels    int             `json:"channels"`
	Placement   string          `json:"placement"`
	Workers     int             `json:"workers"`
	Queries     int             `json:"queries"`
	Serial      servingRun      `json:"serial"`
	Pool        servingRun      `json:"pool"`
	Admission   admissionReport `json:"admission"`
	ChannelUtil []channelUtil   `json:"channel_utilization"`
}

// pct rounds bench.Percentile for display.
func pct(ds []time.Duration, p float64) time.Duration {
	return bench.Percentile(ds, p).Round(10 * time.Microsecond)
}

// writeCSV writes one figure's CSV into dir (no-op when dir is empty).
func writeCSV(dir, id string, write func(io.Writer) error) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatalf("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("(wrote %s)\n", path)
}

// runVerification checks every engine against the oracle on a reduced
// workload before trusting the numbers.
func runVerification(env *bench.Env, wcfg bench.WorkloadConfig) {
	fmt.Println("verifying engines against the naive-scan oracle...")
	spec, err := bench.FigureByID("fig4a")
	if err != nil {
		fatalf("%v", err)
	}
	small := wcfg
	if small.Queries > 100 {
		small.Queries = 100
	}
	w, err := bench.WorkloadForSpec(env, spec, small, 3)
	if err != nil {
		fatalf("%v", err)
	}
	for _, kind := range []bench.EngineKind{
		bench.KindOdyssey, bench.KindOdysseyNoMerge, bench.KindFLATAin1,
		bench.KindFLAT1fE, bench.KindRTreeAin1, bench.KindRTree1fE,
		bench.KindGrid1fE, bench.KindGridAin1,
	} {
		if err := env.VerifyAgainstOracle(kind, w); err != nil {
			fatalf("VERIFICATION FAILED: %v", err)
		}
		fmt.Printf("  %-16s ok\n", kind)
	}
	fmt.Println()
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "odyssey-bench: "+format+"\n", args...)
	os.Exit(1)
}
