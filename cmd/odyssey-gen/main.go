// Command odyssey-gen synthesizes spatial datasets and writes them as .sod
// files that odyssey-explore (and any program using internal/dsfile) can
// load. The generator models the paper's neuroscience data: clustered 3D
// micro-objects inside a shared brain volume (see DESIGN.md §3 for the
// substitution rationale).
//
// Usage:
//
//	odyssey-gen -out data/ -datasets 10 -objects 50000
//	odyssey-gen -out data/ -layout filamentary -seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"spaceodyssey/internal/datagen"
	"spaceodyssey/internal/dsfile"
	"spaceodyssey/internal/object"
)

func main() {
	var (
		out      = flag.String("out", "data", "output directory")
		datasets = flag.Int("datasets", 10, "number of datasets")
		objects  = flag.Int("objects", 50000, "objects per dataset")
		layout   = flag.String("layout", "clustered", "clustered|uniform|filamentary")
		seed     = flag.Int64("seed", 1, "generation seed")
		clusters = flag.Int("clusters", 20, "spatial clusters per dataset")
	)
	flag.Parse()

	var l datagen.Layout
	switch *layout {
	case "clustered":
		l = datagen.Clustered
	case "uniform":
		l = datagen.Uniform
	case "filamentary":
		l = datagen.Filamentary
	default:
		fmt.Fprintf(os.Stderr, "odyssey-gen: unknown layout %q\n", *layout)
		os.Exit(1)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "odyssey-gen: %v\n", err)
		os.Exit(1)
	}

	cfg := datagen.Config{
		Seed: *seed, NumObjects: *objects, Layout: l, Clusters: *clusters,
	}
	dss := datagen.GenerateDatasets(cfg, *datasets)
	for i, objs := range dss {
		path := filepath.Join(*out, fmt.Sprintf("ds%02d.sod", i))
		if err := dsfile.Save(path, object.DatasetID(i), objs); err != nil {
			fmt.Fprintf(os.Stderr, "odyssey-gen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d objects, %s layout)\n", path, len(objs), l)
	}
}
