package odyssey

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// asyncEnv builds an Explorer with background maintenance on plus a few
// datasets.
func asyncEnv(t testing.TB, opts Options) *Explorer {
	t.Helper()
	opts.AsyncMaintenance = true
	ex, err := NewExplorer(opts)
	if err != nil {
		t.Fatal(err)
	}
	data := GenerateDatasets(DataConfig{Seed: 17, NumObjects: 1500, Clusters: 3}, 3)
	for i, objs := range data {
		if err := ex.AddDataset(DatasetID(i), objs); err != nil {
			t.Fatal(err)
		}
	}
	return ex
}

// TestExplorerCloseDrainsMaintenance mirrors the dispatcher's
// goroutine-leak test for the maintenance pipeline: Close must
// cancel-and-drain the queue before closing the device — no maintenance
// writer may ever touch a closed device — wind every scheduler goroutine
// down, and leave Query/QueryCtx/AddDataset failing fast with ErrClosed.
func TestExplorerCloseDrainsMaintenance(t *testing.T) {
	before := runtime.NumGoroutine()
	ex := asyncEnv(t, Options{MaintenanceWorkers: 3})
	// Slow the simulated device slightly so background refinements are
	// still in flight when Close lands.
	ex.SetRealTimeScale(0.05)

	hot := Cube(V(0.4, 0.45, 0.5), 0.1)
	dss := []DatasetID{0, 1, 2}
	for i := 0; i < 6; i++ {
		if _, err := ex.Query(hot, dss); err != nil {
			t.Fatal(err)
		}
	}
	if err := ex.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := ex.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// The maintenance ledger balances: every queued task was completed
	// before the device closed, or dropped — none may fail against a
	// closed device.
	st := ex.MaintenanceStats()
	if st.Queued != st.Completed+st.Failed+st.Dropped {
		t.Errorf("maintenance ledger does not balance after Close: %+v", st)
	}
	if err := ex.MaintenanceErr(); err != nil {
		t.Errorf("maintenance task failed during Close: %v", err)
	}

	// Query paths fail fast with ErrClosed after Close.
	if _, err := ex.Query(hot, dss); !errors.Is(err, ErrClosed) {
		t.Errorf("Query after Close = %v, want ErrClosed", err)
	}
	if _, err := ex.QueryCtx(context.Background(), hot, dss); !errors.Is(err, ErrClosed) {
		t.Errorf("QueryCtx after Close = %v, want ErrClosed", err)
	}
	extra := GenerateDatasets(DataConfig{Seed: 18, NumObjects: 100, Clusters: 1}, 4)[3]
	if err := ex.AddDataset(3, extra); !errors.Is(err, ErrClosed) {
		t.Errorf("AddDataset after Close = %v, want ErrClosed", err)
	}

	// Scheduler goroutines must all wind down.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+2 {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutines did not settle after Close: %d before, %d after", before, g)
	}
}

// TestExplorerCloseDuringFaultStorm extends the drain test into the worst
// weather: Close lands while a fault storm has queries retrying, maintenance
// tasks failing into backoff re-enqueues and quarantine, and the brownout
// controller sampling — every goroutine (workers, retry timers, the
// controller) must still wind down, the ledger must balance, and the device
// must close cleanly.
func TestExplorerCloseDuringFaultStorm(t *testing.T) {
	before := runtime.NumGoroutine()
	ex := asyncEnv(t, Options{
		MaintenanceWorkers:      3,
		Retry:                   RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond},
		QuarantineAfter:         2,
		MaintenanceRetryBackoff: time.Millisecond,
		BrownoutThreshold:       0.25,
		BrownoutWindow:          2 * time.Millisecond,
	})
	ex.SetRealTimeScale(0.05)
	ex.SetFaultPlan(FaultPlan{
		Seed:          33,
		TransientRate: 0.3,
		SpikeRate:     0.05,
		SpikeLatency:  2 * time.Millisecond,
	})

	hot := Cube(V(0.4, 0.45, 0.5), 0.1)
	dss := []DatasetID{0, 1, 2}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				ex.Query(hot, dss) // faults and ErrClosed both expected
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if err := ex.Close(); err != nil {
		t.Fatalf("Close mid-storm: %v", err)
	}
	wg.Wait()

	st := ex.MaintenanceStats()
	if st.Queued != st.Completed+st.Failed+st.Dropped {
		t.Errorf("maintenance ledger does not balance after mid-storm Close: %+v", st)
	}
	if _, err := ex.Query(hot, dss); !errors.Is(err, ErrClosed) {
		t.Errorf("Query after Close = %v, want ErrClosed", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+2 {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutines did not settle after mid-storm Close: %d before, %d after", before, g)
	}
}

// TestSubmitAfterExplorerClose pins the serving-layer contract on a closed
// Explorer: a dispatcher's Submit after its own Close returns ErrClosed,
// and a worker serving a closed Explorer delivers ErrClosed through the
// result — never a panic or a device error.
func TestSubmitAfterExplorerClose(t *testing.T) {
	ex := asyncEnv(t, Options{})
	hot := Cube(V(0.4, 0.45, 0.5), 0.1)
	q := Query{Range: hot, Datasets: []DatasetID{0, 1, 2}}

	d := NewDispatcher(ex, 2)
	out := make(chan BatchResult, 4)
	if err := d.Submit(0, q, out); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if r := <-out; r.Err != nil {
		t.Fatalf("pre-close query failed: %v", r.Err)
	}
	if err := d.Submit(1, q, out); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after dispatcher Close = %v, want ErrClosed", err)
	}

	// A fresh dispatcher over a closed Explorer: submission is accepted
	// (the pool is alive) and the worker reports ErrClosed per query.
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := NewDispatcher(ex, 2)
	if err := d2.Submit(0, q, out); err != nil {
		t.Fatalf("Submit to live dispatcher over closed explorer: %v", err)
	}
	d2.Close()
	if r := <-out; !errors.Is(r.Err, ErrClosed) {
		t.Errorf("query on closed Explorer returned %v, want ErrClosed", r.Err)
	}
}
