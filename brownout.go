package odyssey

import (
	"sync/atomic"
	"time"
)

// DefaultBrownoutWindow is the degradation controller's sampling period when
// Options.BrownoutWindow is unset.
const DefaultBrownoutWindow = 25 * time.Millisecond

// brownoutMinReads is the fewest read attempts a sampling window must have
// observed before the controller judges the fault rate; quieter windows keep
// the previous state, so an idle Explorer neither engages on one stray fault
// nor disengages just because no traffic arrived to measure.
const brownoutMinReads = 16

// BrownoutStats is the graceful-degradation ledger
// (Options.BrownoutThreshold).
type BrownoutStats struct {
	// Engaged reports whether the Explorer is browned out right now.
	Engaged bool
	// Engagements counts how many times the controller engaged a brownout.
	Engagements int64
	// ShedQueries counts dispatcher submissions shed with ErrDegraded
	// because they were tagged PriMaintenance during a brownout.
	ShedQueries int64
}

// brownout is the graceful-degradation controller: a sampling loop that
// watches the device's fault/retry counters and flips the Explorer into (and
// out of) degraded serving. Engaging pauses background maintenance — the
// retry/quarantine machinery stops burning reads against a sick device and
// the layout freezes, so queries keep answering from the last published
// layout and the result cache — and makes the dispatcher shed PriMaintenance
// submissions with ErrDegraded. Disengagement uses hysteresis (half the
// engage threshold) so a rate hovering at the threshold does not flap.
type brownout struct {
	ex        *Explorer
	threshold float64
	window    time.Duration

	stopCh chan struct{}
	done   chan struct{}

	engaged     atomic.Bool
	engagements atomic.Int64
	sheds       atomic.Int64
}

// startBrownout launches the controller loop. threshold must be positive;
// window <= 0 defaults to DefaultBrownoutWindow.
func startBrownout(ex *Explorer, threshold float64, window time.Duration) *brownout {
	if window <= 0 {
		window = DefaultBrownoutWindow
	}
	b := &brownout{
		ex:        ex,
		threshold: threshold,
		window:    window,
		stopCh:    make(chan struct{}),
		done:      make(chan struct{}),
	}
	go b.run()
	return b
}

// stop terminates the controller loop and, if a brownout is engaged, leaves
// it engaged — Explorer.Close calls stop first and the engine's own Close
// unpauses maintenance on its way down, so nothing is left stuck.
func (b *brownout) stop() {
	close(b.stopCh)
	<-b.done
}

// run is the sampling loop: every window, compute the fault rate of the
// window's read attempts and move the engaged state through the
// engage/disengage thresholds.
func (b *brownout) run() {
	defer close(b.done)
	ticker := time.NewTicker(b.window)
	defer ticker.Stop()
	last := b.ex.dev.Stats()
	for {
		select {
		case <-b.stopCh:
			return
		case <-ticker.C:
		}
		cur := b.ex.dev.Stats()
		// Faulted attempts are rejected before any charge or counter, so the
		// window's total read attempts are the successful reads plus the
		// faults themselves. Stat resets (AddDataset, harness phases) make
		// deltas negative; treat such a window as unmeasurable.
		faults := (cur.TransientFaults - last.TransientFaults) +
			(cur.PermanentFaults - last.PermanentFaults)
		attempts := (cur.PageReads - last.PageReads) +
			(cur.CacheHits - last.CacheHits) + faults
		last = cur
		if attempts < brownoutMinReads || faults < 0 {
			continue
		}
		rate := float64(faults) / float64(attempts)
		if !b.engaged.Load() {
			if rate >= b.threshold {
				b.engaged.Store(true)
				b.engagements.Add(1)
				b.ex.engine.SetMaintenancePaused(true)
			}
		} else if rate < b.threshold/2 {
			b.engaged.Store(false)
			b.ex.engine.SetMaintenancePaused(false)
		}
	}
}
