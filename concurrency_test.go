package odyssey

// Race-mode oracle tests: many goroutines fire range queries at a shared
// Explorer while the engine concurrently builds, refines and merges, and
// every result set must equal the NaiveScan oracle's answer over the same
// raw files. Run under `go test -race` these tests are the contract the
// concurrent read/mutate locking discipline has to satisfy.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spaceodyssey/internal/engine"
	"spaceodyssey/internal/rawfile"
)

// oracleEnv is a shared Explorer plus the NaiveScan oracle over its raw
// files.
type oracleEnv struct {
	ex     *Explorer
	oracle *engine.NaiveScan
	nds    int
}

// newOracleEnv builds an Explorer with nds generated datasets and the
// oracle over the same raw files.
func newOracleEnv(t testing.TB, opts Options, nds, objects int) *oracleEnv {
	t.Helper()
	ex, err := NewExplorer(opts)
	if err != nil {
		t.Fatal(err)
	}
	data := GenerateDatasets(DataConfig{Seed: 42, NumObjects: objects, Clusters: 4}, nds)
	for i, objs := range data {
		if err := ex.AddDataset(DatasetID(i), objs); err != nil {
			t.Fatal(err)
		}
	}
	raws := make([]*rawfile.Raw, 0, nds)
	for _, raw := range ex.raws {
		raws = append(raws, raw)
	}
	return &oracleEnv{ex: ex, oracle: engine.NewNaiveScan(raws), nds: nds}
}

// randomQuery draws either one of a small pool of popular queries (so
// combinations cross the merge threshold and merge files are read back) or
// a fresh random range over a random dataset subset.
func (env *oracleEnv) randomQuery(rng *rand.Rand) Query {
	var q Box
	if rng.Intn(2) == 0 {
		// Popular centers: repeated combos drive merging.
		i := rng.Intn(8)
		q = Cube(V(0.15+0.1*float64(i%4), 0.25+0.15*float64(i/4), 0.4), 0.05)
	} else {
		q = Cube(V(rng.Float64(), rng.Float64(), rng.Float64()), 0.01+0.1*rng.Float64())
	}
	k := 1 + rng.Intn(env.nds)
	perm := rng.Perm(env.nds)[:k]
	dss := make([]DatasetID, k)
	for i, d := range perm {
		dss[i] = DatasetID(d)
	}
	return Query{Range: q, Datasets: dss}
}

// check runs one query through the engine and the oracle and compares.
func (env *oracleEnv) check(q Query) error {
	got, err := env.ex.Query(q.Range, q.Datasets)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	want, err := env.oracle.Query(q.Range, q.Datasets)
	if err != nil {
		return fmt.Errorf("oracle: %w", err)
	}
	if !engine.SameObjects(got, want) {
		return fmt.Errorf("query %v over %v: engine returned %d objects, oracle %d",
			q.Range, q.Datasets, len(got), len(want))
	}
	return nil
}

// runConcurrentOracle fires workers goroutines of queriesEach random
// queries each at the shared Explorer, checking every result against the
// oracle.
func runConcurrentOracle(t *testing.T, env *oracleEnv, workers, queriesEach int) {
	t.Helper()
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < queriesEach; i++ {
				if err := env.check(env.randomQuery(rng)); err != nil {
					errc <- fmt.Errorf("goroutine %d query %d: %w", g, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestConcurrentQueriesMatchOracle is the main equivalence suite: 8
// goroutines of mixed popular/random queries, with the full pipeline
// (incremental indexing, refinement, merging) adapting underneath.
func TestConcurrentQueriesMatchOracle(t *testing.T) {
	env := newOracleEnv(t, Options{}, 3, 2000)
	runConcurrentOracle(t, env, 8, 20)
	if m := env.ex.Metrics(); m.Queries != 8*20 {
		t.Errorf("engine recorded %d queries, want %d", m.Queries, 8*20)
	}
}

// TestConcurrentQueriesMatchOracleNoMerge runs the same suite with merging
// disabled (the paper's ablation), so the octree read/refine split is
// exercised without the merge step's exclusive phases.
func TestConcurrentQueriesMatchOracleNoMerge(t *testing.T) {
	env := newOracleEnv(t, Options{DisableMerging: true}, 3, 2000)
	runConcurrentOracle(t, env, 8, 20)
	if n := env.ex.MergeFileCount(); n != 0 {
		t.Errorf("merging disabled but %d merge files exist", n)
	}
}

// TestConcurrentQueriesMatchOracleDeviceArray runs the main equivalence
// storm on a 2-device array with 2 channels per device: datasets striped by
// affinity, merge files co-located with their hottest member, every cache
// miss routed to a per-file channel head. Result sets must stay equal to
// the NaiveScan oracle — placement moves I/O between spindles, it must
// never change what a query returns.
func TestConcurrentQueriesMatchOracleDeviceArray(t *testing.T) {
	env := newOracleEnv(t, Options{Devices: 2, Channels: 2}, 3, 2000)
	if topo := env.ex.Topology(); topo.Devices != 2 || topo.Channels != 2 || topo.Placement != "affinity" {
		t.Fatalf("Topology() = %+v, want 2 devices x 2 channels, affinity", topo)
	}
	runConcurrentOracle(t, env, 8, 20)
	if m := env.ex.Metrics(); m.Queries != 8*20 {
		t.Errorf("engine recorded %d queries, want %d", m.Queries, 8*20)
	}
	// Per-device counters must sum to the aggregate view.
	var sum DiskStats
	for _, s := range env.ex.DeviceStats() {
		sum.Add(s)
	}
	if sum != env.ex.DiskStats() {
		t.Errorf("DeviceStats sum %+v != DiskStats %+v", sum, env.ex.DiskStats())
	}
}

// TestConcurrentQueriesMatchOracleAsync is the stale-read regression for
// the asynchronous maintenance pipeline: the full oracle storm runs with
// AsyncMaintenance on, so queries race background refinements and staged
// merges the whole time. Every result must equal the oracle — in
// particular, a query racing a concurrent merge must never observe a
// partial merge file (the staged publish is atomic under the layout lock).
// After Quiesce the converged engine must still answer identically to the
// synchronous contract (the oracle), and no background task may have
// failed.
func TestConcurrentQueriesMatchOracleAsync(t *testing.T) {
	env := newOracleEnv(t, Options{AsyncMaintenance: true, MaintenanceWorkers: 3}, 3, 2000)
	defer env.ex.Close()
	runConcurrentOracle(t, env, 8, 20)
	if m := env.ex.Metrics(); m.Queries != 8*20 {
		t.Errorf("engine recorded %d queries, want %d", m.Queries, 8*20)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := env.ex.Quiesce(ctx); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	if err := env.ex.MaintenanceErr(); err != nil {
		t.Fatalf("background maintenance task failed: %v", err)
	}
	st := env.ex.MaintenanceStats()
	if st.Queued == 0 || st.Completed != st.Queued-st.Dropped-st.Failed {
		t.Errorf("maintenance ledger does not balance: %+v", st)
	}
	// Post-quiesce results are identical to synchronous mode: both equal
	// the oracle on any workload, exercised here across the merge files the
	// storm built.
	rng := rand.New(rand.NewSource(515151))
	for i := 0; i < 16; i++ {
		if err := env.check(env.randomQuery(rng)); err != nil {
			t.Fatalf("post-quiesce query %d: %v", i, err)
		}
	}
}

// TestConcurrentQueriesMatchOracleAsyncDeviceArray runs the async storm on
// a 2x2 storage array: background maintenance I/O lands on per-channel
// heads across member devices and must never change what a query returns.
func TestConcurrentQueriesMatchOracleAsyncDeviceArray(t *testing.T) {
	env := newOracleEnv(t, Options{
		AsyncMaintenance: true, MaintenanceWorkers: 2,
		Devices: 2, Channels: 2,
	}, 3, 2000)
	defer env.ex.Close()
	runConcurrentOracle(t, env, 8, 15)
	if err := env.ex.Quiesce(context.Background()); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	if err := env.ex.MaintenanceErr(); err != nil {
		t.Fatalf("background maintenance task failed: %v", err)
	}
	rng := rand.New(rand.NewSource(616161))
	for i := 0; i < 10; i++ {
		if err := env.check(env.randomQuery(rng)); err != nil {
			t.Fatalf("post-quiesce query %d: %v", i, err)
		}
	}
}

// TestConcurrentQueriesSmallCache forces heavy cache-eviction traffic
// through the sharded LRU while queries race (capacity far below the
// working set, so shards churn constantly).
func TestConcurrentQueriesSmallCache(t *testing.T) {
	env := newOracleEnv(t, Options{CachePages: 64}, 3, 1500)
	runConcurrentOracle(t, env, 8, 12)
}

// TestCancellationStormOracle is the cancellation contract under fire: 8
// goroutines issue queries with randomized deadlines — some already expired,
// some tight enough to fire mid-query, some generous — against a real-time
// emulated Explorer while it builds, refines and merges. Every completed
// result must still equal the NaiveScan oracle, every canceled query must
// return a wrapped ErrCanceled (matching its context cause) with no partial
// result, and the engine must serve correct un-canceled queries afterwards —
// no poisoned locks, no leaked exclusive holds, no half-applied refinements.
func TestCancellationStormOracle(t *testing.T) {
	env := newOracleEnv(t, Options{RealTimeScale: 0.01}, 3, 2000)
	var completed, canceled atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + g)))
			for i := 0; i < 15; i++ {
				q := env.randomQuery(rng)
				ctx, cancel := context.Background(), context.CancelFunc(func() {})
				switch rng.Intn(4) {
				case 0: // impossible: dead before the query starts
					ctx, cancel = context.WithCancel(ctx)
					cancel()
				case 1: // tight: likely to fire mid-query
					ctx, cancel = context.WithTimeout(ctx,
						time.Duration(50+rng.Intn(1000))*time.Microsecond)
				case 2: // generous: must complete
					ctx, cancel = context.WithTimeout(ctx, time.Minute)
				default: // no deadline at all
				}
				got, err := env.ex.QueryCtx(ctx, q.Range, q.Datasets)
				cancel()
				if err != nil {
					if !IsCanceled(err) {
						errc <- fmt.Errorf("goroutine %d query %d: non-cancellation error %w", g, i, err)
						return
					}
					if !errors.Is(err, ErrCanceled) {
						errc <- fmt.Errorf("goroutine %d query %d: cancellation %v does not wrap ErrCanceled", g, i, err)
						return
					}
					if got != nil {
						errc <- fmt.Errorf("goroutine %d query %d: canceled query leaked a partial result (%d objects)", g, i, len(got))
						return
					}
					canceled.Add(1)
					continue
				}
				want, oerr := env.oracle.Query(q.Range, q.Datasets)
				if oerr != nil {
					errc <- oerr
					return
				}
				if !engine.SameObjects(got, want) {
					errc <- fmt.Errorf("goroutine %d query %d: completed under deadline pressure but engine returned %d objects, oracle %d",
						g, i, len(got), len(want))
					return
				}
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if canceled.Load() == 0 {
		t.Error("storm produced no canceled queries (pre-canceled contexts must at least fail fast)")
	}
	if completed.Load() == 0 {
		t.Error("storm produced no completed queries")
	}
	t.Logf("storm: %d completed, %d canceled, %d device ops aborted",
		completed.Load(), canceled.Load(), env.ex.DiskStats().CanceledOps)

	// The engine is not poisoned: fresh un-canceled queries still match the
	// oracle (and exercise merge files built during the storm).
	env.ex.SetRealTimeScale(0) // instant disk for the verification sweep
	rng := rand.New(rand.NewSource(424242))
	for i := 0; i < 12; i++ {
		if err := env.check(env.randomQuery(rng)); err != nil {
			t.Fatalf("post-storm query %d: %v", i, err)
		}
	}
}

// TestConcurrentAddDataset races dataset registration against a query
// storm on the already-registered datasets, then verifies the newcomers
// answer correctly too.
func TestConcurrentAddDataset(t *testing.T) {
	env := newOracleEnv(t, Options{}, 3, 1200)
	extra := GenerateDatasets(DataConfig{Seed: 99, NumObjects: 800, Clusters: 3}, 5)[3:]

	var wg sync.WaitGroup
	errc := make(chan error, 9)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + g)))
			for i := 0; i < 10; i++ {
				if err := env.check(env.randomQuery(rng)); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, objs := range extra {
			// GenerateDatasets tagged these with ids 3 and 4 already.
			if err := env.ex.AddDataset(DatasetID(3+i), objs); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	if n := env.ex.NumDatasets(); n != 5 {
		t.Fatalf("NumDatasets = %d, want 5", n)
	}
	// The oracle was built before the extra datasets existed; rebuild it
	// and check a query spanning old and new data.
	raws := make([]*rawfile.Raw, 0, 5)
	for _, raw := range env.ex.raws {
		raws = append(raws, raw)
	}
	env.oracle = engine.NewNaiveScan(raws)
	env.nds = 5
	q := Query{Range: Cube(V(0.5, 0.5, 0.5), 0.2), Datasets: []DatasetID{0, 2, 3, 4}}
	if err := env.check(q); err != nil {
		t.Error(err)
	}
}
