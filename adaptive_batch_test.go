package odyssey

import (
	"testing"
	"time"
)

// TestBatchTunerIdleShrinksToMin pins the tuner's idle trajectory: flushes
// that keep draining an empty stage halve the window step by step down to
// the floor, and it stays there — an idle dispatcher stops taxing the next
// lone query with staging latency.
func TestBatchTunerIdleShrinksToMin(t *testing.T) {
	tuner := newBatchTuner(4*time.Millisecond, 500*time.Microsecond, 16*time.Millisecond)
	want := []time.Duration{
		2 * time.Millisecond,
		1 * time.Millisecond,
		500 * time.Microsecond, // clamped at the floor
		500 * time.Microsecond,
		500 * time.Microsecond,
	}
	for i, w := range want {
		if got := tuner.observe(0, 0, 0); got != w {
			t.Fatalf("idle flush %d: window %v, want %v", i, got, w)
		}
	}
	if tuner.shrinks != 3 {
		t.Fatalf("shrinks = %d, want 3 (moves stop at the floor)", tuner.shrinks)
	}
	if tuner.grows != 0 {
		t.Fatalf("grows = %d on an all-idle sequence", tuner.grows)
	}
}

// TestBatchTunerBacklogGrowsToMax pins the growth trajectory: flushes that
// keep finding a deep stage double the window up to the cap. The EWMA needs
// a couple of samples to cross the grow threshold from zero, so the first
// flush holds steady.
func TestBatchTunerBacklogGrowsToMax(t *testing.T) {
	tuner := newBatchTuner(2*time.Millisecond, 500*time.Microsecond, 8*time.Millisecond)
	// depth 20 packing 4 queries per group: ewma after one sample is 6
	// (>= grow threshold) and the grouping gate holds, so every flush from
	// the first doubles until the cap.
	want := []time.Duration{
		4 * time.Millisecond,
		8 * time.Millisecond, // clamped at the cap
		8 * time.Millisecond,
	}
	for i, w := range want {
		if got := tuner.observe(20, 20, 5); got != w {
			t.Fatalf("backlog flush %d: window %v, want %v", i, got, w)
		}
	}
	if tuner.grows != 2 {
		t.Fatalf("grows = %d, want 2 (moves stop at the cap)", tuner.grows)
	}

	// The backlog clears: the EWMA decays and the window walks back down.
	for i := 0; i < 32; i++ {
		tuner.observe(0, 0, 0)
	}
	if tuner.window != 500*time.Microsecond {
		t.Fatalf("window %v after a long idle tail, want the %v floor",
			tuner.window, 500*time.Microsecond)
	}
}

// TestBatchTunerHysteresis pins the dead zone: a steady groupable trickle
// (depth between the shrink and grow thresholds, two queries per group)
// leaves the window untouched.
func TestBatchTunerHysteresis(t *testing.T) {
	tuner := newBatchTuner(2*time.Millisecond, 500*time.Microsecond, 8*time.Millisecond)
	for i := 0; i < 50; i++ {
		if got := tuner.observe(2, 4, 2); got != 2*time.Millisecond {
			t.Fatalf("steady trickle moved the window to %v on flush %d", got, i)
		}
	}
	if tuner.grows != 0 || tuner.shrinks != 0 {
		t.Fatalf("steady trickle counted moves: grows=%d shrinks=%d",
			tuner.grows, tuner.shrinks)
	}
}

// TestBatchTunerUngroupableBacklogNarrows pins the grouping gate: a deep
// backlog whose flushes never pack more than one query per dispatch group
// must narrow the window to its floor, never widen it — under saturation
// with no reuse, staging only defers work.
func TestBatchTunerUngroupableBacklogNarrows(t *testing.T) {
	tuner := newBatchTuner(2*time.Millisecond, 500*time.Microsecond, 8*time.Millisecond)
	for i := 0; i < 20; i++ {
		tuner.observe(20, 2, 2) // heavy backlog, one query per group
	}
	if tuner.window != 500*time.Microsecond {
		t.Fatalf("window %v under an ungroupable backlog, want the 500µs floor",
			tuner.window)
	}
	if tuner.grows != 0 {
		t.Fatalf("grows = %d on an ungroupable backlog", tuner.grows)
	}
	if tuner.shrinks == 0 {
		t.Fatal("grouping gate never narrowed the window")
	}
}

// TestBatchTunerDefaults pins the zero-value bounds: min defaults to an
// eighth of the starting window (floored at 100µs) and max to four times it.
func TestBatchTunerDefaults(t *testing.T) {
	tuner := newBatchTuner(4*time.Millisecond, 0, 0)
	if tuner.min != 500*time.Microsecond {
		t.Fatalf("default min = %v, want 500µs", tuner.min)
	}
	if tuner.max != 16*time.Millisecond {
		t.Fatalf("default max = %v, want 16ms", tuner.max)
	}
	// A tiny starting window floors the default min at 100µs.
	tiny := newBatchTuner(200*time.Microsecond, 0, 0)
	if tiny.min != 100*time.Microsecond {
		t.Fatalf("floored min = %v, want 100µs", tiny.min)
	}
}

// TestAdaptiveBatchDispatcherServes runs a real dispatcher with the
// adaptive window on and checks results are complete and correct and the
// stats surface the tuner's state (current window within bounds, shrink
// moves recorded across an idle tail).
func TestAdaptiveBatchDispatcherServes(t *testing.T) {
	ex, queries := batchEnv(t)
	d := NewDispatcherWithAdmission(ex, 4, AdmissionConfig{
		BatchWindow:    2 * time.Millisecond,
		AdaptiveBatch:  true,
		MinBatchWindow: 500 * time.Microsecond,
		MaxBatchWindow: 8 * time.Millisecond,
	})
	out := make(chan BatchResult, len(queries))
	for i, q := range queries {
		if err := d.Submit(i, q, out); err != nil {
			t.Fatal(err)
		}
	}
	// An idle tail long enough for several empty flushes even if the burst
	// grew the window to its 8ms cap: the EWMA needs ~8 empty flushes to
	// decay below the shrink threshold from a depth-40 burst.
	time.Sleep(250 * time.Millisecond)
	d.Close()
	close(out)
	got := 0
	for r := range out {
		if r.Err != nil {
			t.Fatalf("query %d failed: %v", r.Index, r.Err)
		}
		got++
	}
	if got != len(queries) {
		t.Fatalf("served %d of %d queries", got, len(queries))
	}
	st := d.AdmissionStats()
	if st.BatchedQueries != int64(len(queries)) {
		t.Fatalf("BatchedQueries = %d, want %d", st.BatchedQueries, len(queries))
	}
	if st.BatchWindow < 500*time.Microsecond || st.BatchWindow > 8*time.Millisecond {
		t.Fatalf("current window %v outside [500µs, 8ms]", st.BatchWindow)
	}
	if st.WindowShrinks == 0 {
		t.Fatalf("no shrink moves across a 60ms idle tail: %+v", st)
	}
}

// TestPageStripeTopologyResultsIdentical pins the striping satellite at the
// explorer level: the same datasets and queries on a page-striped 3-device
// array return exactly the objects a single-device run returns — placement
// moves I/O between spindles, never changes answers.
func TestPageStripeTopologyResultsIdentical(t *testing.T) {
	build := func(opts Options) (*Explorer, []Query) {
		ex, err := NewExplorer(opts)
		if err != nil {
			t.Fatal(err)
		}
		data := GenerateDatasets(DataConfig{Seed: 11, NumObjects: 2000, Clusters: 3}, 3)
		for i, objs := range data {
			if err := ex.AddDataset(DatasetID(i), objs); err != nil {
				t.Fatal(err)
			}
		}
		w, err := GenerateWorkload(WorkloadConfig{
			Seed: 4, NumQueries: 60, NumDatasets: 3, DatasetsPerQuery: 2,
			QueryVolumeFrac: 2e-4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ex, w.Queries
	}
	single, queries := build(Options{})
	defer single.Close()
	striped, _ := build(Options{Devices: 3, Placement: PageStripePlacement(4)})
	defer striped.Close()
	if top := striped.Topology(); top.Placement != "pagestripe" || top.Devices != 3 {
		t.Fatalf("topology = %+v, want 3-device pagestripe", top)
	}
	for i, q := range queries {
		want, err := single.Query(q.Range, q.Datasets)
		if err != nil {
			t.Fatal(err)
		}
		got, err := striped.Query(q.Range, q.Datasets)
		if err != nil {
			t.Fatal(err)
		}
		if !sameObjects(got, want) {
			t.Fatalf("query %d: striped run returned %d objects, single-device %d",
				i, len(got), len(want))
		}
	}
	// The stripes really spread the I/O: every member device did work.
	for m, st := range striped.DeviceStats() {
		if st.PageReads == 0 {
			t.Fatalf("member %d served no reads under pagestripe", m)
		}
	}
}
