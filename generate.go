package odyssey

import (
	"spaceodyssey/internal/datagen"
	"spaceodyssey/internal/workload"
)

// DataLayout selects the spatial distribution of generated objects.
type DataLayout = datagen.Layout

// Data layouts.
const (
	// LayoutClustered concentrates objects around Gaussian clusters —
	// neuron-morphology-like data.
	LayoutClustered = datagen.Clustered
	// LayoutUniform spreads objects uniformly.
	LayoutUniform = datagen.Uniform
	// LayoutFilamentary strings objects along line segments — axon- or
	// cosmic-filament-like data.
	LayoutFilamentary = datagen.Filamentary
)

// DataConfig parametrizes synthetic dataset generation (a stand-in for the
// paper's Human Brain Project meshes; see DESIGN.md for the substitution
// rationale).
type DataConfig = datagen.Config

// GenerateObjects produces one synthetic dataset tagged with id.
func GenerateObjects(cfg DataConfig, id DatasetID) []Object {
	return datagen.Generate(cfg, id)
}

// GenerateDatasets produces n datasets sharing cfg.Bounds, with ids 0..n-1.
func GenerateDatasets(cfg DataConfig, n int) [][]Object {
	return datagen.GenerateDatasets(cfg, n)
}

// Workload distributions, re-exported.
type (
	// RangeDist selects the query-center distribution.
	RangeDist = workload.RangeDist
	// CombDist selects the dataset-combination distribution.
	CombDist = workload.CombDist
	// WorkloadConfig parametrizes query-workload generation.
	WorkloadConfig = workload.Config
	// Workload is a generated query sequence.
	Workload = workload.Workload
)

// Distribution constants (paper §4.1).
const (
	RangeClustered  = workload.RangeClustered
	RangeUniform    = workload.RangeUniform
	CombUniform     = workload.CombUniform
	CombHeavyHitter = workload.CombHeavyHitter
	CombSelfSimilar = workload.CombSelfSimilar
	CombZipf        = workload.CombZipf
)

// GenerateWorkload builds a deterministic exploratory workload: fixed-volume
// range queries (clustered or uniform centers) paired with dataset
// combinations drawn from a Gray et al. distribution.
func GenerateWorkload(cfg WorkloadConfig) (Workload, error) {
	return workload.Generate(cfg)
}
