package odyssey

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spaceodyssey/internal/simdisk"
)

// Sentinel errors of the serving layer.
var (
	// ErrClosed is returned by Submit/SubmitCtx after Close. Submitting to a
	// closed dispatcher is always a clean error, never a panic, even when
	// racing a concurrent Close.
	ErrClosed = errors.New("odyssey: dispatcher closed")

	// ErrDispatcherClosed is the pre-admission-control name of ErrClosed.
	//
	// Deprecated: use ErrClosed.
	ErrDispatcherClosed = ErrClosed

	// ErrOverloaded is the admission controller's fast-fail: the in-flight
	// limit is reached and no slot freed up within the queue-wait budget.
	// Callers should shed the query (or retry with backoff) instead of
	// queueing behind an already-saturated pool.
	ErrOverloaded = errors.New("odyssey: dispatcher overloaded")

	// ErrDegraded is the brownout shed: a PriMaintenance submission refused
	// because the Explorer is browned out (Options.BrownoutThreshold) —
	// the shard is degraded, not merely busy. It wraps ErrOverloaded, so
	// errors.Is(err, ErrOverloaded) keeps matching for callers that treat
	// both as back-off signals, while errors.Is(err, ErrDegraded) tells
	// "browning out" from "saturated". Health-aware callers (the cluster
	// router) key on the distinction: overload calls for retry elsewhere,
	// degradation for steering background work away entirely.
	ErrDegraded = fmt.Errorf("odyssey: dispatcher degraded (brownout shed): %w", ErrOverloaded)
)

// IsCanceled reports whether err is a cancellation outcome: a wrapped
// ErrCanceled from the storage stack, or a bare context error. Rejections
// (ErrOverloaded) and closed-dispatcher errors are not cancellations.
func IsCanceled(err error) bool {
	return err != nil && (errors.Is(err, ErrCanceled) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// BatchResult is the outcome of one query executed by the worker pool.
type BatchResult struct {
	// Index identifies the query: its position in the QueryBatch slice, or
	// its arrival order on the QueryConcurrent input channel.
	Index int
	// Query is the executed query.
	Query Query
	// Objects is the result set (nil when Err is set).
	Objects []Object
	// Worker is the pool worker that served the query, or SweptWorker (-1)
	// when the sweeper returned a dead-on-arrival job straight from the
	// queue without it ever reaching a worker.
	Worker int
	// Wait is the queue wait: submit to worker pickup (or to the sweeper's
	// early return). A query canceled while still queued is returned with
	// its real Wait and a ~0 Wall.
	Wait time.Duration
	// Wall is the wall-clock time the query took on its worker.
	Wall time.Duration
	// Err is the query's error, if any. Cancellation errors satisfy
	// IsCanceled (and errors.Is against ErrCanceled, context.Canceled or
	// context.DeadlineExceeded).
	Err error
}

// SweptWorker is the BatchResult.Worker value of a query the sweeper
// returned while it was still queued: no pool worker ever touched it.
const SweptWorker = -1

// WorkerStats summarizes one pool worker's activity.
type WorkerStats struct {
	// Worker is the worker's index in the pool.
	Worker int
	// Queries is how many queries the worker served (canceled included).
	Queries int
	// Canceled is how many of those ended in a cancellation error.
	Canceled int
	// Busy is the wall-clock time the worker spent inside Explorer.Query.
	Busy time.Duration
}

// Throughput returns the worker's queries per wall-clock second of busy
// time (0 when idle).
func (w WorkerStats) Throughput() float64 {
	if w.Busy <= 0 {
		return 0
	}
	return float64(w.Queries) / w.Busy.Seconds()
}

// AdmissionConfig configures the dispatcher's admission controller. The
// zero value disables admission control entirely: every Submit is admitted,
// with the bounded job queue providing blocking backpressure as before.
type AdmissionConfig struct {
	// MaxInFlight caps admitted-but-unfinished queries (queued + running).
	// At the cap, SubmitCtx fast-fails with ErrOverloaded instead of
	// blocking (after at most QueueWait). 0 disables the cap.
	MaxInFlight int
	// Deadline is the per-query deadline attached at admission to any query
	// whose own context carries none. It covers job-queue wait plus
	// execution; time spent waiting for an admission slot (bounded by
	// QueueWait) comes before the deadline is attached. 0 attaches no
	// deadline.
	Deadline time.Duration
	// QueueWait is how long SubmitCtx may wait for an in-flight slot before
	// failing with ErrOverloaded. 0 means fail immediately (pure fast-fail).
	// Only meaningful with MaxInFlight > 0.
	QueueWait time.Duration
	// UrgentDeadline, when positive, turns on deadline-aware storage
	// priority: a query picked up by a worker with this much (or less) of
	// its deadline remaining is tagged urgent, and the storage layer lets
	// its operations jump the per-channel queue — no queueing-delay charge
	// (and no emulated queueing wait) behind concurrent queries' I/O. The
	// service time itself is unchanged, so a quiet device behaves
	// identically; under contention, deadline-imminent queries stop paying
	// for earlier arrivals. 0 (the default) tags nothing.
	UrgentDeadline time.Duration
	// BatchWindow, when positive, turns on micro-batching: admitted queries
	// are staged for up to this long and released to the worker pool
	// grouped by dataset combination and query locality (a coarse spatial
	// cell of the query center), so concurrent workers pull overlapping
	// work the scan-sharing layers (Options.ShareScans) can coalesce into
	// single-flight reads. The window adds up to ~2x its length to queue
	// wait (it buys coalesced I/O with a little latency); 0 (the default)
	// dispatches every submission immediately. Staging never blocks, and
	// the stage is bounded: with MaxInFlight set admission caps it, and
	// without admission it holds at most batchStageCap jobs — beyond that,
	// submissions bypass the stage and take the direct dispatch path with
	// its ordinary blocking backpressure (they lose grouping, not safety).
	BatchWindow time.Duration
	// AdaptiveBatch, with BatchWindow > 0, lets the micro-batcher resize its
	// window at every flush boundary instead of ticking at a fixed rate: an
	// EWMA of the stage depth sampled at each flush drives the window down
	// toward MinBatchWindow when the stage drains near-empty (an idle or
	// trickling workload should not pay batching latency) and up toward
	// MaxBatchWindow when flushes keep finding a backlog (a burst is worth
	// batching harder for coalescing). The window moves by doubling and
	// halving, so it adapts within a handful of flushes. False (the default)
	// keeps the fixed window.
	AdaptiveBatch bool
	// MinBatchWindow and MaxBatchWindow bound the adaptive window. Zero
	// values default to BatchWindow/8 (floored at 100µs — the timer must
	// stay coarser than the flush itself) and 4x BatchWindow respectively.
	// Ignored unless AdaptiveBatch is set.
	MinBatchWindow time.Duration
	MaxBatchWindow time.Duration
}

// batchStageCap bounds the micro-batcher's stage when no admission cap
// does: a flush stalled on a saturated pool must shed overflow submissions
// to the blocking direct path instead of buffering an unbounded backlog.
const batchStageCap = 4096

// AdmissionStats counts the admission controller's decisions and outcomes.
type AdmissionStats struct {
	// Admitted is how many queries passed admission and were enqueued.
	Admitted int64
	// Rejected is how many submissions fast-failed with ErrOverloaded.
	Rejected int64
	// Canceled is how many admitted queries ended in a cancellation error
	// (deadline expiry in queue or mid-execution, caller cancellation).
	// Submissions refused before admission — a context already dead at
	// Submit, or canceled while waiting for a slot — appear in no bucket,
	// so Admitted == Completed + Canceled + Failed once the dispatcher is
	// closed.
	Canceled int64
	// Swept is how many of the canceled queries the sweeper returned
	// straight from the queue — their context died before any worker
	// picked them up, and instead of occupying queue slots until a worker
	// skipped them they were delivered back to the submitter immediately.
	// Swept queries are included in Canceled.
	Swept int64
	// Completed is how many admitted queries finished successfully.
	Completed int64
	// Failed is how many admitted queries ended in a non-cancellation error
	// (e.g. an unknown dataset).
	Failed int64
	// Batches and BatchedQueries count the micro-batcher's activity
	// (AdmissionConfig.BatchWindow): how many distinct coalescible groups
	// (same combination, same coarse query cell) the flushes released to
	// the pool, and how many queries went through the stage. Zero with
	// batching off.
	Batches        int64
	BatchedQueries int64
	// BatchWindow is the micro-batcher's current flush window: the
	// configured window normally, the tuner's latest choice under
	// AdmissionConfig.AdaptiveBatch. Zero with batching off.
	BatchWindow time.Duration
	// WindowGrows and WindowShrinks count the adaptive tuner's moves
	// (AdmissionConfig.AdaptiveBatch): how many flush boundaries doubled
	// the window under backlog and how many halved it toward idle. Zero
	// with the fixed window.
	WindowGrows   int64
	WindowShrinks int64
}

// batchTuner resizes the micro-batcher's flush window from the stage depth
// and grouping observed at each flush boundary. It is pure state-machine
// (no clocks, no goroutines) so its trajectory under a given sample
// sequence is exactly testable: an EWMA of the depth smooths out
// single-flush noise, a persistent backlog (ewma >= batchGrowDepth) that is
// actually groupable (multiple queries per dispatch group) doubles the
// window toward max — batching harder buys more coalescing when there is
// work to group — and a drained stage (ewma < batchShrinkDepth) OR a
// backlog whose flushes pack nothing (one query per group) halves it toward
// min: under saturation with no reuse, a wide window only defers work, so
// the tuner falls back to immediate dispatch.
type batchTuner struct {
	window   time.Duration
	min, max time.Duration
	ewma     float64
	gewma    float64
	grows    int64
	shrinks  int64
}

const (
	// batchEwmaAlpha weights the newest depth sample; ~3 flushes of history
	// dominate the average.
	batchEwmaAlpha = 0.3
	// batchGrowDepth and batchShrinkDepth are the EWMA thresholds for
	// doubling and halving the window.
	batchGrowDepth   = 4.0
	batchShrinkDepth = 1.0
	// batchGroupGrow and batchGroupShrink gate window moves on the EWMA of
	// queries-per-group in flushed batches: widening needs flushes that
	// actually pack (>= batchGroupGrow per group), and a backlog whose
	// batches never pack (< batchGroupShrink) narrows instead — grouping
	// that coalesces nothing is pure staging latency.
	batchGroupGrow   = 1.5
	batchGroupShrink = 1.2
)

func newBatchTuner(start, min, max time.Duration) *batchTuner {
	if min <= 0 {
		min = start / 8
		if min < 100*time.Microsecond {
			min = 100 * time.Microsecond
		}
	}
	if min > start {
		min = start
	}
	if max <= 0 {
		max = 4 * start
	}
	if max < start {
		max = start
	}
	// The EWMAs are seeded neutrally, not at zero: a cold start moves the
	// window only on real evidence — an empty stage decays the depth below
	// the shrink threshold, a backlog jumps it over the grow threshold, and
	// a steady trickle holds it in the dead zone. The grouping EWMA starts
	// at the grow gate so early backlog can widen the window until flushes
	// prove the traffic does not pack.
	return &batchTuner{
		window: start, min: min, max: max,
		ewma: batchShrinkDepth, gewma: batchGroupGrow,
	}
}

// observe folds one flush boundary's samples into the EWMAs and returns the
// window to arm the next flush with. depth is the whole admission backlog
// at the boundary, staged and groups are what this flush drained and how
// many dispatch groups it packed into (0/0 for an empty flush, which
// leaves the grouping estimate untouched).
func (t *batchTuner) observe(depth, staged, groups int) time.Duration {
	t.ewma = (1-batchEwmaAlpha)*t.ewma + batchEwmaAlpha*float64(depth)
	if groups > 0 {
		t.gewma = (1-batchEwmaAlpha)*t.gewma + batchEwmaAlpha*float64(staged)/float64(groups)
	}
	switch {
	case t.ewma >= batchGrowDepth && t.gewma >= batchGroupGrow && t.window < t.max:
		t.window *= 2
		if t.window > t.max {
			t.window = t.max
		}
		t.grows++
	case (t.ewma < batchShrinkDepth || t.gewma < batchGroupShrink) && t.window > t.min:
		t.window /= 2
		if t.window < t.min {
			t.window = t.min
		}
		t.shrinks++
	}
	return t.window
}

// Dispatcher is a bounded worker pool serving queries against one Explorer,
// with optional admission control (in-flight cap, default deadlines,
// fast-fail under overload). It is the concurrency front-end the batch APIs
// are built on: submit jobs from any goroutine, close the dispatcher to
// drain, then read per-worker statistics. A Dispatcher must not be reused
// after Close.
type Dispatcher struct {
	ex    *Explorer
	cfg   AdmissionConfig
	jobs  chan dispatchJob
	slots chan struct{} // in-flight semaphore; nil when MaxInFlight == 0
	wg    sync.WaitGroup
	// sweepWg tracks the per-job sweeper watchers; Close drains it after
	// the workers so no sweeper delivery can race the caller closing its
	// result channel.
	sweepWg sync.WaitGroup
	stats   []WorkerStats

	admitted  atomic.Int64
	rejected  atomic.Int64
	canceled  atomic.Int64
	swept     atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64

	// sendMu orders Submit (shared) against Close (exclusive) so a racing
	// Submit can never send on the closed jobs channel.
	sendMu  sync.RWMutex
	closed  bool
	closing sync.Once

	// Micro-batching (AdmissionConfig.BatchWindow): admitted jobs are
	// staged in batchBuf (guarded by batchMu) and a dedicated batcher
	// goroutine flushes them every window, grouped by combination and
	// query locality, into the jobs channel. batchStop/batchDone bound the
	// batcher's lifetime inside Close, before the jobs channel closes.
	batchMu   sync.Mutex
	batchBuf  []dispatchJob
	batchStop chan struct{}
	batchDone chan struct{}
	batches   atomic.Int64
	batched   atomic.Int64

	// Adaptive window telemetry (AdmissionConfig.AdaptiveBatch): the
	// batcher goroutine owns the tuner; these mirror its state for
	// AdmissionStats readers.
	curWindow     atomic.Int64 // nanoseconds
	windowGrows   atomic.Int64
	windowShrinks atomic.Int64
}

type dispatchJob struct {
	index     int
	query     Query
	ctx       context.Context
	cancel    context.CancelFunc // non-nil when the dispatcher attached a deadline
	submitted time.Time
	out       chan<- BatchResult

	// done arbitrates between the worker that pops the job and the sweeper
	// watching its context: whoever flips it first owns delivery. claimed
	// is closed by the worker on pop so the watcher can retire. Both are
	// nil for jobs with an uncancellable context (nothing to sweep).
	done    *atomic.Bool
	claimed chan struct{}
}

// NewDispatcher starts a pool of the given number of workers over the
// Explorer, with admission control disabled. workers <= 0 defaults to
// GOMAXPROCS.
func NewDispatcher(ex *Explorer, workers int) *Dispatcher {
	return NewDispatcherWithAdmission(ex, workers, AdmissionConfig{})
}

// NewDispatcherWithAdmission starts a pool with the given admission policy.
// The job queue is sized to hold MaxInFlight jobs (at least 2x workers), so
// an admitted query never blocks on the queue itself — admission is the only
// gate, and it fails fast.
func NewDispatcherWithAdmission(ex *Explorer, workers int, cfg AdmissionConfig) *Dispatcher {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	qcap := 2 * workers
	if cfg.MaxInFlight > qcap {
		qcap = cfg.MaxInFlight
	}
	d := &Dispatcher{
		ex:    ex,
		cfg:   cfg,
		jobs:  make(chan dispatchJob, qcap),
		stats: make([]WorkerStats, workers),
	}
	if cfg.MaxInFlight > 0 {
		d.slots = make(chan struct{}, cfg.MaxInFlight)
	}
	if cfg.BatchWindow > 0 {
		d.batchStop = make(chan struct{})
		d.batchDone = make(chan struct{})
		d.curWindow.Store(int64(cfg.BatchWindow))
		go d.batcher()
	}
	for w := 0; w < workers; w++ {
		d.wg.Add(1)
		go d.worker(w)
	}
	return d
}

// Workers returns the pool size.
func (d *Dispatcher) Workers() int { return len(d.stats) }

// AdmissionStats returns a snapshot of the admission counters. Under
// concurrent load the snapshot is a consistent per-counter sum, not an
// instantaneous cross-counter cut; after Close it is exact.
func (d *Dispatcher) AdmissionStats() AdmissionStats {
	return AdmissionStats{
		Admitted:       d.admitted.Load(),
		Rejected:       d.rejected.Load(),
		Canceled:       d.canceled.Load(),
		Swept:          d.swept.Load(),
		Completed:      d.completed.Load(),
		Failed:         d.failed.Load(),
		Batches:        d.batches.Load(),
		BatchedQueries: d.batched.Load(),
		BatchWindow:    time.Duration(d.curWindow.Load()),
		WindowGrows:    d.windowGrows.Load(),
		WindowShrinks:  d.windowShrinks.Load(),
	}
}

// Topology reports the storage layout of the Explorer the pool serves.
func (d *Dispatcher) Topology() Topology { return d.ex.Topology() }

// Quiesce waits until the served Explorer's background maintenance
// pipeline has drained (see Explorer.Quiesce). Serving benchmarks call it
// after Close to include layout convergence in an async run's
// time-to-convergence without racing the measurement against background
// workers. Immediate when the Explorer runs synchronous maintenance.
func (d *Dispatcher) Quiesce(ctx context.Context) error { return d.ex.Quiesce(ctx) }

// Submit enqueues one query with no caller context; its result is delivered
// on out. Without admission control Submit blocks when all workers are busy
// and the (bounded) queue is full — the backpressure that keeps a heavy
// caller from buffering an unbounded backlog. With MaxInFlight set it
// fast-fails with ErrOverloaded instead. The out channel must have capacity
// for every result submitted to it, or be drained concurrently; otherwise
// workers block delivering. Submitting to a closed dispatcher returns
// ErrClosed (racing a concurrent Close is safe — never a panic).
func (d *Dispatcher) Submit(index int, q Query, out chan<- BatchResult) error {
	return d.SubmitCtx(context.Background(), index, q, out)
}

// SubmitCtx is Submit with a caller context. The context governs the whole
// lifetime of the query: a submission whose context is already done is
// refused immediately, cancellation while waiting for an admission slot
// abandons the wait, and the context travels with the job so the worker
// aborts the query the moment it expires — whether that happens in the
// queue or mid-execution. When AdmissionConfig.Deadline is set and ctx
// carries no deadline of its own, the default deadline is attached here, at
// submit time, so queue wait counts against it.
func (d *Dispatcher) SubmitCtx(ctx context.Context, index int, q Query, out chan<- BatchResult) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// A dead context is refused before admission; it does not enter the
	// ledger at all (Canceled counts only admitted queries, so that
	// Admitted == Completed + Canceled holds after Close).
	if err := simdisk.CheckCtx(ctx); err != nil {
		return err
	}
	// Graceful degradation: while the Explorer is browned out
	// (Options.BrownoutThreshold), submissions tagged as background work —
	// a PriMaintenance scope on the context — are shed with ErrDegraded
	// (which wraps ErrOverloaded) before taking an admission slot, keeping
	// the surviving device capacity for foreground queries. Untagged and
	// foreground/urgent submissions are unaffected.
	if sc := simdisk.ScopeFrom(ctx); sc != nil && sc.Priority() == simdisk.PriMaintenance && d.ex.shedLowPri() {
		d.rejected.Add(1)
		return ErrDegraded
	}
	if d.slots != nil {
		select {
		case d.slots <- struct{}{}:
		default:
			if d.cfg.QueueWait <= 0 {
				d.rejected.Add(1)
				return ErrOverloaded
			}
			timer := time.NewTimer(d.cfg.QueueWait)
			select {
			case d.slots <- struct{}{}:
				timer.Stop()
			case <-timer.C:
				d.rejected.Add(1)
				return ErrOverloaded
			case <-ctx.Done():
				// Canceled while waiting for a slot: never admitted, so it
				// counts in no ledger bucket (see the dead-context refusal
				// above).
				timer.Stop()
				return simdisk.Canceled(ctx.Err())
			}
		}
	}
	job := dispatchJob{index: index, query: q, ctx: ctx, submitted: time.Now(), out: out}
	if d.cfg.Deadline > 0 {
		if _, has := ctx.Deadline(); !has {
			job.ctx, job.cancel = context.WithTimeout(ctx, d.cfg.Deadline)
		}
	}
	if job.ctx.Done() != nil {
		// The job can expire in the queue; arm the sweeper's claim state.
		job.done = new(atomic.Bool)
		job.claimed = make(chan struct{})
	}
	d.sendMu.RLock()
	if d.closed {
		d.sendMu.RUnlock()
		if job.cancel != nil {
			job.cancel()
		}
		d.releaseSlot()
		return ErrClosed
	}
	staged := false
	if d.batchStop != nil {
		// Micro-batching: stage the job for the batcher to flush grouped
		// with its neighbours. Staging never blocks, so it can never stall
		// a concurrent Close from here — and it is bounded: admission caps
		// it when configured, batchStageCap otherwise. Overflow falls
		// through to the direct dispatch path below, whose blocking send
		// is the documented backpressure.
		d.batchMu.Lock()
		if d.slots != nil || len(d.batchBuf) < batchStageCap {
			d.batchBuf = append(d.batchBuf, job)
			staged = true
		}
		d.batchMu.Unlock()
		if staged {
			d.batched.Add(1)
		}
	}
	switch {
	case staged:
		// Already on its way to the pool via the batcher's next flush.
	case d.slots != nil:
		// With admission on, the queue is sized for MaxInFlight live jobs —
		// but swept jobs keep their queue entries until a worker discards
		// them, so under a backlog of zombies the send could block while
		// holding sendMu (stalling a concurrent Close). It must not: shed
		// the submission like any other overload instead. Workers drain
		// zombies without doing work, so the condition clears in
		// microseconds.
		select {
		case d.jobs <- job:
		default:
			d.sendMu.RUnlock()
			if job.cancel != nil {
				job.cancel()
			}
			d.releaseSlot()
			d.rejected.Add(1)
			return ErrOverloaded
		}
	default:
		// Without admission the send may block — that is the documented
		// blocking backpressure — but cancellation still abandons the wait
		// (the channel cannot be closed underneath the select: Close needs
		// sendMu exclusively first). Watching job.ctx, not ctx, means a
		// dispatcher-attached default deadline bounds the queue wait too;
		// the two are identical when no deadline was attached.
		select {
		case d.jobs <- job:
		case <-job.ctx.Done():
			d.sendMu.RUnlock()
			if job.cancel != nil {
				job.cancel()
			}
			d.releaseSlot()
			return simdisk.Canceled(job.ctx.Err())
		}
	}
	d.admitted.Add(1)
	if job.done != nil {
		d.sweepWg.Add(1)
		go d.sweep(job)
	}
	d.sendMu.RUnlock()
	return nil
}

// batcher drains the micro-batching stage every BatchWindow, releasing the
// staged jobs to the worker pool grouped by dataset combination and query
// locality — so workers executing concurrently hold overlapping work the
// scan-sharing layers can coalesce. On stop it flushes whatever is staged
// before signalling done, which is why Close stops the batcher before
// closing the jobs channel.
// With AdaptiveBatch set the fixed ticker becomes a re-armed timer: each
// flush feeds the depth it found to the window tuner and arms the next
// flush with the tuner's answer, so the cadence tracks the workload — tight
// when the stage keeps draining empty, wide when flushes keep finding work
// worth grouping.
func (d *Dispatcher) batcher() {
	defer close(d.batchDone)
	if !d.cfg.AdaptiveBatch {
		ticker := time.NewTicker(d.cfg.BatchWindow)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				d.flushBatch()
			case <-d.batchStop:
				d.flushBatch()
				return
			}
		}
	}
	tuner := newBatchTuner(d.cfg.BatchWindow, d.cfg.MinBatchWindow, d.cfg.MaxBatchWindow)
	timer := time.NewTimer(tuner.window)
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
			// The sampled depth is the whole admission backlog at the batch
			// boundary: what this flush staged plus what earlier flushes
			// released that the pool has not picked up yet. Counting only
			// the stage would read a saturated pool as "idle" (arrivals per
			// window stay small) and hold the window at its floor exactly
			// when grouping pays most.
			staged, groups := d.flushBatch()
			w := tuner.observe(staged+len(d.jobs), staged, groups)
			d.curWindow.Store(int64(w))
			d.windowGrows.Store(tuner.grows)
			d.windowShrinks.Store(tuner.shrinks)
			timer.Reset(w)
		case <-d.batchStop:
			d.flushBatch()
			return
		}
	}
}

// batchGroupKey orders staged jobs so that queries over the same dataset
// combination — and within a combination, the same coarse spatial cell —
// dispatch adjacently. The cell grid is 8^3 over the Explorer's bounds:
// coarse enough that a hot region's queries group, fine enough that distant
// queries do not.
func (d *Dispatcher) batchGroupKey(q Query) string {
	b := d.ex.opts.Bounds
	c := q.Range.Center()
	sz := b.Size()
	cell := func(lo, span, v float64) int {
		if span <= 0 {
			return 0
		}
		i := int(8 * (v - lo) / span)
		if i < 0 {
			i = 0
		}
		if i > 7 {
			i = 7
		}
		return i
	}
	dss := append([]DatasetID(nil), q.Datasets...)
	sort.Slice(dss, func(i, j int) bool { return dss[i] < dss[j] })
	var sb strings.Builder
	for _, ds := range dss {
		fmt.Fprintf(&sb, "%d,", ds)
	}
	fmt.Fprintf(&sb, "|%d.%d.%d",
		cell(b.Min.X, sz.X, c.X), cell(b.Min.Y, sz.Y, c.Y), cell(b.Min.Z, sz.Z, c.Z))
	return sb.String()
}

// flushBatch groups and forwards every staged job, returning the stage
// depth it drained and how many dispatch groups it packed into (the
// adaptive tuner's depth and grouping samples). The sends may block on a
// full jobs queue — the batcher holds no locks here, and the workers drain
// the queue, so the stall is bounded by pool throughput.
func (d *Dispatcher) flushBatch() (int, int) {
	d.batchMu.Lock()
	staged := d.batchBuf
	d.batchBuf = nil
	d.batchMu.Unlock()
	if len(staged) == 0 {
		return 0, 0
	}
	keys := make([]string, len(staged))
	order := make([]int, len(staged))
	for i := range staged {
		keys[i] = d.batchGroupKey(staged[i].query)
		order[i] = i
	}
	// Stable by group key: same-combination, same-cell queries become
	// adjacent while arrival order within a group is preserved.
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	groups := int64(1)
	for i := 1; i < len(order); i++ {
		if keys[order[i]] != keys[order[i-1]] {
			groups++
		}
	}
	d.batches.Add(groups)
	for _, i := range order {
		d.jobs <- staged[i]
	}
	return len(staged), int(groups)
}

// sweep watches one queued job's context. If the context dies before a
// worker claims the job, the sweeper delivers the cancellation result and
// releases the in-flight slot immediately — the submitter gets its answer
// and its capacity back at expiry time instead of after the residual queue
// wait — and the worker that eventually pops the job discards it. Exactly
// one of worker and sweeper delivers (the done flag arbitrates). The
// discarded job still occupies a queue entry until that pop, which is why
// the admission-path enqueue in SubmitCtx is non-blocking: a zombie
// backlog sheds new submissions instead of blocking them.
func (d *Dispatcher) sweep(job dispatchJob) {
	defer d.sweepWg.Done()
	select {
	case <-job.claimed:
		return
	case <-job.ctx.Done():
	}
	if !job.done.CompareAndSwap(false, true) {
		return // a worker claimed the job first
	}
	err := simdisk.Canceled(job.ctx.Err())
	if job.cancel != nil {
		job.cancel()
	}
	d.releaseSlot()
	d.canceled.Add(1)
	d.swept.Add(1)
	job.out <- BatchResult{
		Index:  job.index,
		Query:  job.query,
		Worker: SweptWorker,
		Wait:   time.Since(job.submitted),
		Err:    err,
	}
}

// releaseSlot frees one in-flight slot (no-op without admission control).
func (d *Dispatcher) releaseSlot() {
	if d.slots != nil {
		<-d.slots
	}
}

// Close stops accepting work and blocks until every submitted query has
// finished — including any sweeper deliveries, so once Close returns the
// caller may safely close its result channel. Safe to call more than once
// and concurrently with Submit.
func (d *Dispatcher) Close() {
	d.closing.Do(func() {
		d.sendMu.Lock()
		d.closed = true
		d.sendMu.Unlock()
		// Stop the micro-batcher first: it flushes the stage into the jobs
		// channel on its way out, and only then is the channel safe to
		// close (no Submit can stage anymore — the closed flag is set).
		if d.batchStop != nil {
			close(d.batchStop)
			<-d.batchDone
		}
		close(d.jobs)
	})
	d.wg.Wait()
	// Every job has been popped by now (claimed or discarded), so every
	// watcher can finish; wait so no delivery outlives Close.
	d.sweepWg.Wait()
}

// WorkerStats returns per-worker activity. Call after Close; during a run
// the slice is being written by the workers.
func (d *Dispatcher) WorkerStats() []WorkerStats {
	out := make([]WorkerStats, len(d.stats))
	copy(out, d.stats)
	return out
}

// worker serves jobs until the queue closes. Each worker owns its stats
// slot, so no locking is needed on the hot path. A job the sweeper already
// returned is discarded on pop; a job whose context died in the queue but
// which the worker claimed first is skipped, not executed — delivered
// straight back with the cancellation error. Either way no worker time is
// spent on dead-on-arrival queries and the queue drains at full speed
// during a cancellation storm.
func (d *Dispatcher) worker(w int) {
	defer d.wg.Done()
	st := &d.stats[w]
	st.Worker = w
	for job := range d.jobs {
		if job.done != nil {
			won := job.done.CompareAndSwap(false, true)
			close(job.claimed) // retire the sweeper's watcher
			if !won {
				continue // the sweeper already returned this job
			}
		}
		wait := time.Since(job.submitted)
		var objs []Object
		err := simdisk.CheckCtx(job.ctx)
		t0 := time.Now()
		if err == nil {
			ctx := job.ctx
			// Deadline-aware priority: a query whose deadline is imminent at
			// pickup runs under an urgent scope — its storage operations jump
			// the per-channel queue instead of absorbing queueing delay it has
			// no time left to pay.
			if d.cfg.UrgentDeadline > 0 && simdisk.ScopeFrom(ctx) == nil {
				if dl, has := ctx.Deadline(); has && time.Until(dl) <= d.cfg.UrgentDeadline {
					ctx, _ = simdisk.WithOpScope(ctx, simdisk.PriUrgent)
				}
			}
			objs, err = d.ex.QueryCtx(ctx, job.query.Range, job.query.Datasets)
		}
		wall := time.Since(t0)
		if job.cancel != nil {
			job.cancel()
		}
		d.releaseSlot()
		st.Queries++
		st.Busy += wall
		switch {
		case err == nil:
			d.completed.Add(1)
		case IsCanceled(err):
			st.Canceled++
			d.canceled.Add(1)
		default:
			d.failed.Add(1)
		}
		job.out <- BatchResult{
			Index:   job.index,
			Query:   job.query,
			Objects: objs,
			Worker:  w,
			Wait:    wait,
			Wall:    wall,
			Err:     err,
		}
	}
}

// QueryBatch executes all queries through a bounded worker pool of the
// given parallelism and returns the results in input order. Each result
// carries its own error; the returned error is the first per-query error in
// input order (the remaining queries still run). workers <= 0 defaults to
// GOMAXPROCS; workers == 1 degenerates to serial execution through one
// worker.
func (e *Explorer) QueryBatch(queries []Query, workers int) ([]BatchResult, error) {
	return e.QueryBatchCtx(context.Background(), queries, workers)
}

// QueryBatchCtx is QueryBatch under one shared context: canceling it aborts
// every query still queued or running, each of which reports its own
// cancellation error in its slot (IsCanceled distinguishes them from real
// failures). Queries that completed before the cancellation keep their full
// results — a batch is not transactional.
func (e *Explorer) QueryBatchCtx(ctx context.Context, queries []Query, workers int) ([]BatchResult, error) {
	d := NewDispatcher(e, workers)
	// out is buffered for every result so workers never block on delivery
	// and the submit loop below cannot deadlock against them.
	out := make(chan BatchResult, len(queries))
	results := make([]BatchResult, len(queries))
	for i, q := range queries {
		// The dispatcher is private to this call and has no admission cap,
		// so the only submit failure is a context already done — which gets
		// recorded in place of a delivered result.
		if err := d.SubmitCtx(ctx, i, q, out); err != nil {
			results[i] = BatchResult{Index: i, Query: q, Err: err}
		}
	}
	d.Close()
	close(out)
	for r := range out {
		results[r.Index] = r
	}
	var firstErr error
	for i := range results {
		if results[i].Err != nil {
			firstErr = results[i].Err
			break
		}
	}
	return results, firstErr
}

// QueryConcurrent streams queries from a channel through a bounded worker
// pool, delivering results on the returned channel as they complete (not in
// input order — Index carries the arrival order). The result channel closes
// once the input channel is closed and drained.
//
// Production and consumption must run concurrently: the pipeline's buffers
// hold only a few in-flight queries (jobs 2x workers, results 1x), so a
// caller that pushes every query into the input channel before reading any
// results deadlocks once the buffers fill — feed the input from its own
// goroutine (or select over both channels), as in the package tests. For a
// fixed slice of queries, QueryBatch handles this for you. Likewise the
// result channel must be consumed to completion: abandoning it while
// queries are in flight blocks the pool's workers forever — to bail out
// early, cancel the context passed to QueryConcurrentCtx and keep draining.
// workers <= 0 defaults to GOMAXPROCS.
func (e *Explorer) QueryConcurrent(queries <-chan Query, workers int) <-chan BatchResult {
	return e.QueryConcurrentCtx(context.Background(), queries, workers)
}

// QueryConcurrentCtx is QueryConcurrent under one shared context; canceling
// it turns the remaining stream into fast cancellation results (the result
// channel still closes only when the input channel does).
func (e *Explorer) QueryConcurrentCtx(ctx context.Context, queries <-chan Query, workers int) <-chan BatchResult {
	d := NewDispatcher(e, workers)
	out := make(chan BatchResult, d.Workers())
	go func() {
		i := 0
		for q := range queries {
			// Private dispatcher, never closed here; a dead context is
			// reported through the result stream like any other outcome.
			if err := d.SubmitCtx(ctx, i, q, out); err != nil {
				out <- BatchResult{Index: i, Query: q, Err: err}
			}
			i++
		}
		d.Close()
		close(out)
	}()
	return out
}
