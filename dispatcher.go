package odyssey

import (
	"errors"
	"runtime"
	"sync"
	"time"
)

// BatchResult is the outcome of one query executed by the worker pool.
type BatchResult struct {
	// Index identifies the query: its position in the QueryBatch slice, or
	// its arrival order on the QueryConcurrent input channel.
	Index int
	// Query is the executed query.
	Query Query
	// Objects is the result set (nil when Err is set).
	Objects []Object
	// Worker is the pool worker that served the query.
	Worker int
	// Wall is the wall-clock time the query took on its worker.
	Wall time.Duration
	// Err is the query's error, if any.
	Err error
}

// WorkerStats summarizes one pool worker's activity.
type WorkerStats struct {
	// Worker is the worker's index in the pool.
	Worker int
	// Queries is how many queries the worker served.
	Queries int
	// Busy is the wall-clock time the worker spent inside Explorer.Query.
	Busy time.Duration
}

// Throughput returns the worker's queries per wall-clock second of busy
// time (0 when idle).
func (w WorkerStats) Throughput() float64 {
	if w.Busy <= 0 {
		return 0
	}
	return float64(w.Queries) / w.Busy.Seconds()
}

// Dispatcher is a bounded worker pool serving queries against one Explorer.
// It is the concurrency front-end the batch APIs are built on: submit jobs
// from any goroutine, close the dispatcher to drain, then read per-worker
// statistics. A Dispatcher must not be reused after Close.
type Dispatcher struct {
	ex    *Explorer
	jobs  chan dispatchJob
	wg    sync.WaitGroup
	stats []WorkerStats

	// sendMu orders Submit (shared) against Close (exclusive) so a racing
	// Submit can never send on the closed jobs channel.
	sendMu  sync.RWMutex
	closed  bool
	closing sync.Once
}

type dispatchJob struct {
	index int
	query Query
	out   chan<- BatchResult
}

// NewDispatcher starts a pool of the given number of workers over the
// Explorer. workers <= 0 defaults to GOMAXPROCS.
func NewDispatcher(ex *Explorer, workers int) *Dispatcher {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	d := &Dispatcher{
		ex:    ex,
		jobs:  make(chan dispatchJob, 2*workers),
		stats: make([]WorkerStats, workers),
	}
	for w := 0; w < workers; w++ {
		d.wg.Add(1)
		go d.worker(w)
	}
	return d
}

// Workers returns the pool size.
func (d *Dispatcher) Workers() int { return len(d.stats) }

// Submit enqueues one query; its result is delivered on out. Submit blocks
// when all workers are busy and the (bounded) queue is full — the
// backpressure that keeps a heavy caller from buffering an unbounded
// backlog. The out channel must have capacity for every result submitted to
// it, or be drained concurrently; otherwise workers block delivering.
// Submitting to a closed dispatcher returns ErrDispatcherClosed (racing a
// concurrent Close is safe).
func (d *Dispatcher) Submit(index int, q Query, out chan<- BatchResult) error {
	d.sendMu.RLock()
	defer d.sendMu.RUnlock()
	if d.closed {
		return ErrDispatcherClosed
	}
	d.jobs <- dispatchJob{index: index, query: q, out: out}
	return nil
}

// ErrDispatcherClosed is returned by Submit after Close.
var ErrDispatcherClosed = errors.New("odyssey: dispatcher closed")

// Close stops accepting work and blocks until every submitted query has
// finished. Safe to call more than once and concurrently with Submit.
func (d *Dispatcher) Close() {
	d.closing.Do(func() {
		d.sendMu.Lock()
		d.closed = true
		d.sendMu.Unlock()
		close(d.jobs)
	})
	d.wg.Wait()
}

// WorkerStats returns per-worker activity. Call after Close; during a run
// the slice is being written by the workers.
func (d *Dispatcher) WorkerStats() []WorkerStats {
	out := make([]WorkerStats, len(d.stats))
	copy(out, d.stats)
	return out
}

// worker serves jobs until the queue closes. Each worker owns its stats
// slot, so no locking is needed on the hot path.
func (d *Dispatcher) worker(w int) {
	defer d.wg.Done()
	st := &d.stats[w]
	st.Worker = w
	for job := range d.jobs {
		t0 := time.Now()
		objs, err := d.ex.Query(job.query.Range, job.query.Datasets)
		wall := time.Since(t0)
		st.Queries++
		st.Busy += wall
		job.out <- BatchResult{
			Index:   job.index,
			Query:   job.query,
			Objects: objs,
			Worker:  w,
			Wall:    wall,
			Err:     err,
		}
	}
}

// QueryBatch executes all queries through a bounded worker pool of the
// given parallelism and returns the results in input order. Each result
// carries its own error; the returned error is the first per-query error in
// input order (the remaining queries still run). workers <= 0 defaults to
// GOMAXPROCS; workers == 1 degenerates to serial execution through one
// worker.
func (e *Explorer) QueryBatch(queries []Query, workers int) ([]BatchResult, error) {
	d := NewDispatcher(e, workers)
	// out is buffered for every result so workers never block on delivery
	// and the submit loop below cannot deadlock against them.
	out := make(chan BatchResult, len(queries))
	for i, q := range queries {
		// The dispatcher is private to this call, so Submit cannot observe
		// it closed.
		_ = d.Submit(i, q, out)
	}
	d.Close()
	close(out)
	results := make([]BatchResult, len(queries))
	for r := range out {
		results[r.Index] = r
	}
	var firstErr error
	for i := range results {
		if results[i].Err != nil {
			firstErr = results[i].Err
			break
		}
	}
	return results, firstErr
}

// QueryConcurrent streams queries from a channel through a bounded worker
// pool, delivering results on the returned channel as they complete (not in
// input order — Index carries the arrival order). The result channel closes
// once the input channel is closed and drained.
//
// Production and consumption must run concurrently: the pipeline's buffers
// hold only a few in-flight queries (jobs 2x workers, results 1x), so a
// caller that pushes every query into the input channel before reading any
// results deadlocks once the buffers fill — feed the input from its own
// goroutine (or select over both channels), as in the package tests. For a
// fixed slice of queries, QueryBatch handles this for you. Likewise the
// result channel must be consumed to completion: abandoning it while
// queries are in flight blocks the pool's workers forever (per-query
// cancellation is a planned follow-up; see ROADMAP). workers <= 0 defaults
// to GOMAXPROCS.
func (e *Explorer) QueryConcurrent(queries <-chan Query, workers int) <-chan BatchResult {
	d := NewDispatcher(e, workers)
	out := make(chan BatchResult, d.Workers())
	go func() {
		i := 0
		for q := range queries {
			_ = d.Submit(i, q, out) // private dispatcher, never closed here
			i++
		}
		d.Close()
		close(out)
	}()
	return out
}
