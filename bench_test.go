package odyssey

// Benchmarks reproducing the paper's evaluation, one per figure, plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// runs a reduced-scale version of the experiment (the full-scale runs are
// driven by cmd/odyssey-bench; see EXPERIMENTS.md for the recorded
// results). The interesting output is the custom metric `sim_sec/op` — the
// simulated disk time, which is what the paper reports — not the wall
// time Go measures.

import (
	"testing"
	"time"

	"spaceodyssey/internal/bench"
	"spaceodyssey/internal/core"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/grid"
	"spaceodyssey/internal/simdisk"
	"spaceodyssey/internal/workload"
)

// benchEnvConfig is the reduced scale used by all figure benches.
func benchEnvConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.Datasets = 6
	cfg.ObjectsPerDataset = 5000
	cfg.GridCells = 5
	return cfg
}

func benchWorkloadConfig() bench.WorkloadConfig {
	return bench.WorkloadConfig{Queries: 120, QueryVolumeFrac: 5e-5, Seed: 11}
}

// runFigure4 runs one Figure 4 subfigure at bench scale and reports the
// total simulated seconds across engines.
func runFigure4(b *testing.B, figID string) {
	env := bench.NewEnv(benchEnvConfig())
	spec, err := bench.FigureByID(figID)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sim float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Figure4(env, spec, benchWorkloadConfig(), []int{1, 3, 5},
			bench.Figure4Engines)
		if err != nil {
			b.Fatal(err)
		}
		sim = 0
		for _, row := range res.Rows {
			sim += row.Total.Seconds()
		}
	}
	b.ReportMetric(sim, "sim_sec/op")
}

// BenchmarkFigure4a reproduces Figure 4a (clustered ranges, Zipf ids).
func BenchmarkFigure4a(b *testing.B) { runFigure4(b, "fig4a") }

// BenchmarkFigure4b reproduces Figure 4b (clustered ranges, heavy-hitter ids).
func BenchmarkFigure4b(b *testing.B) { runFigure4(b, "fig4b") }

// BenchmarkFigure4c reproduces Figure 4c (clustered ranges, self-similar ids).
func BenchmarkFigure4c(b *testing.B) { runFigure4(b, "fig4c") }

// BenchmarkFigure4d reproduces Figure 4d (uniform ranges, uniform ids).
func BenchmarkFigure4d(b *testing.B) { runFigure4(b, "fig4d") }

// runFigure5 runs a Figure 5 per-query-latency series at bench scale.
func runFigure5(b *testing.B, figID string) {
	env := bench.NewEnv(benchEnvConfig())
	spec, err := bench.FigureByID(figID)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var firstOdyssey, lastOdyssey float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Figure5(env, spec, benchWorkloadConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
		series := res.Series[bench.KindOdyssey]
		firstOdyssey = series[0].Seconds()
		lastOdyssey = series[len(series)-1].Seconds()
	}
	b.ReportMetric(firstOdyssey, "sim_first_q_sec")
	b.ReportMetric(lastOdyssey, "sim_last_q_sec")
}

// BenchmarkFigure5a reproduces Figure 5a (clustered / self-similar, k=5).
func BenchmarkFigure5a(b *testing.B) { runFigure5(b, "fig5a") }

// BenchmarkFigure5b reproduces Figure 5b (uniform / uniform, k=5).
func BenchmarkFigure5b(b *testing.B) { runFigure5(b, "fig5b") }

// BenchmarkFigure5c reproduces Figure 5c (effect of merging).
func BenchmarkFigure5c(b *testing.B) {
	env := bench.NewEnv(benchEnvConfig())
	wcfg := benchWorkloadConfig()
	b.ResetTimer()
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Figure5c(env, wcfg)
		if err != nil {
			b.Fatal(err)
		}
		gain = res.GainPercent
	}
	b.ReportMetric(gain, "merge_gain_%")
}

// runOdysseyWorkload runs the full 120-query workload through Odyssey with
// the given engine config and reports simulated seconds.
func runOdysseyWorkload(b *testing.B, mutate func(*bench.Config), kind bench.EngineKind) {
	cfg := benchEnvConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	env := bench.NewEnv(cfg)
	spec, err := bench.FigureByID("fig4a")
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.Generate(workload.Config{
		Seed: 11, NumQueries: 120, NumDatasets: cfg.Datasets, DatasetsPerQuery: 3,
		QueryVolumeFrac: 5e-5, RangeDist: spec.RangeDist, CombDist: spec.CombDist,
		ClusterCenters: spec.ClusterCenters,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sim float64
	for i := 0; i < b.N; i++ {
		res, err := env.Run(kind, w)
		if err != nil {
			b.Fatal(err)
		}
		sim = res.Total().Seconds()
	}
	b.ReportMetric(sim, "sim_sec/op")
}

// BenchmarkAblationMerging compares Odyssey with and without merging.
func BenchmarkAblationMerging(b *testing.B) {
	b.Run("merge=on", func(b *testing.B) {
		runOdysseyWorkload(b, nil, bench.KindOdyssey)
	})
	b.Run("merge=off", func(b *testing.B) {
		runOdysseyWorkload(b, nil, bench.KindOdysseyNoMerge)
	})
}

// BenchmarkAblationPPL compares ppl = 8 vs 64 convergence (§3.1.2).
func BenchmarkAblationPPL(b *testing.B) {
	for _, ppl := range []int{8, 27, 64} {
		ppl := ppl
		b.Run(map[int]string{8: "ppl=8", 27: "ppl=27", 64: "ppl=64"}[ppl], func(b *testing.B) {
			runOdysseyWorkload(b, func(c *bench.Config) {
				c.Odyssey.Octree.PartitionsPerLevel = ppl
			}, bench.KindOdyssey)
		})
	}
}

// BenchmarkAblationRT sweeps the refinement threshold.
func BenchmarkAblationRT(b *testing.B) {
	for _, rt := range []float64{1, 4, 16} {
		rt := rt
		b.Run(map[float64]string{1: "rt=1", 4: "rt=4", 16: "rt=16"}[rt], func(b *testing.B) {
			runOdysseyWorkload(b, func(c *bench.Config) {
				c.Odyssey.Octree.RefinementThreshold = rt
			}, bench.KindOdyssey)
		})
	}
}

// BenchmarkAblationMinComb sweeps the minimum merge combination size.
func BenchmarkAblationMinComb(b *testing.B) {
	for _, mc := range []int{2, 3, 4} {
		mc := mc
		b.Run(map[int]string{2: "minC=2", 3: "minC=3", 4: "minC=4"}[mc], func(b *testing.B) {
			runOdysseyWorkload(b, func(c *bench.Config) {
				c.Odyssey.Merger.MinCombination = mc
			}, bench.KindOdyssey)
		})
	}
}

// BenchmarkAblationBudget sweeps the merge space budget (LRU pressure).
func BenchmarkAblationBudget(b *testing.B) {
	for _, pages := range []int64{0, 512, 64} {
		pages := pages
		name := map[int64]string{0: "budget=unlimited", 512: "budget=512p", 64: "budget=64p"}[pages]
		b.Run(name, func(b *testing.B) {
			runOdysseyWorkload(b, func(c *bench.Config) {
				c.Odyssey.Merger.SpaceBudgetPages = pages
			}, bench.KindOdyssey)
		})
	}
}

// BenchmarkAblationLevelPolicy compares the paper's same-level merge rule
// against the two §3.2.5 strategies implemented here.
func BenchmarkAblationLevelPolicy(b *testing.B) {
	for _, policy := range []core.LevelPolicy{core.SameLevel, core.RefineToFinest, core.CoarsestCover} {
		policy := policy
		b.Run(policy.String(), func(b *testing.B) {
			runOdysseyWorkload(b, func(c *bench.Config) {
				c.Odyssey.Merger.LevelPolicy = policy
			}, bench.KindOdyssey)
		})
	}
}

// BenchmarkAblationSegmentSharing measures §3.2.5's shared-segment space
// optimization.
func BenchmarkAblationSegmentSharing(b *testing.B) {
	for _, share := range []bool{false, true} {
		share := share
		name := map[bool]string{false: "share=off", true: "share=on"}[share]
		b.Run(name, func(b *testing.B) {
			runOdysseyWorkload(b, func(c *bench.Config) {
				c.Odyssey.Merger.ShareSegments = share
			}, bench.KindOdyssey)
		})
	}
}

// BenchmarkAblationAdaptiveMT measures the §3.2.5 runtime threshold
// adaptation.
func BenchmarkAblationAdaptiveMT(b *testing.B) {
	for _, adaptive := range []bool{false, true} {
		adaptive := adaptive
		name := map[bool]string{false: "mt=static", true: "mt=adaptive"}[adaptive]
		b.Run(name, func(b *testing.B) {
			runOdysseyWorkload(b, func(c *bench.Config) {
				c.Odyssey.Merger.AdaptiveThresholds = adaptive
			}, bench.KindOdyssey)
		})
	}
}

// BenchmarkAblationReplication compares the query-window extension (the
// paper's choice, following Stefanakis et al.) against object replication
// on the Grid baseline: replication stores objects once per overlapped cell
// and deduplicates at query time.
func BenchmarkAblationReplication(b *testing.B) {
	run := func(b *testing.B, replicate bool) {
		env := bench.NewEnv(benchEnvConfig())
		spec, err := bench.FigureByID("fig4a")
		if err != nil {
			b.Fatal(err)
		}
		w, err := bench.WorkloadForSpec(env, spec, benchWorkloadConfig(), 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var sim float64
		for i := 0; i < b.N; i++ {
			dev, raws, err := env.Deploy()
			if err != nil {
				b.Fatal(err)
			}
			eng, err := grid.NewOneForEach(dev, raws, geom.UnitBox(), grid.Config{
				CellsPerDim: 5, Replicate: replicate,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Build(); err != nil {
				b.Fatal(err)
			}
			start := dev.Clock()
			for _, q := range w.Queries {
				dev.DropCaches()
				if _, err := eng.Query(q.Range, q.Datasets); err != nil {
					b.Fatal(err)
				}
			}
			sim = (dev.Clock() - start).Seconds()
		}
		b.ReportMetric(sim, "sim_sec/op")
	}
	b.Run("extension", func(b *testing.B) { run(b, false) })
	b.Run("replication", func(b *testing.B) { run(b, true) })
}

// BenchmarkBaselines runs every baseline on the fig4a workload for direct
// comparison in one table.
func BenchmarkBaselines(b *testing.B) {
	for _, kind := range []bench.EngineKind{
		bench.KindFLATAin1, bench.KindFLAT1fE, bench.KindRTreeAin1,
		bench.KindRTree1fE, bench.KindGrid1fE, bench.KindGridAin1,
	} {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			runOdysseyWorkload(b, nil, kind)
		})
	}
}

// BenchmarkExplorerQuery measures steady-state public-API query latency
// (wall time; the engine is converged so little refinement happens).
func BenchmarkExplorerQuery(b *testing.B) {
	ex, err := NewExplorer(Options{})
	if err != nil {
		b.Fatal(err)
	}
	data := GenerateDatasets(DataConfig{Seed: 3, NumObjects: 5000, Clusters: 5}, 3)
	for i, objs := range data {
		if err := ex.AddDataset(DatasetID(i), objs); err != nil {
			b.Fatal(err)
		}
	}
	q := Cube(V(0.5, 0.5, 0.5), 0.03)
	dss := []DatasetID{0, 1, 2}
	for i := 0; i < 10; i++ { // converge
		if _, err := ex.Query(q, dss); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Query(q, dss); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelQuery measures concurrent serving: the same converged
// workload is driven serially and through QueryBatch pools of 1, 4 and 8
// workers over a real-time emulated disk (platter charges sleep their
// simulated duration, outside all locks), so worker pools genuinely overlap
// simulated I/O the way a real deployment overlaps device latency. It
// reports wall-clock throughput per configuration plus the 8-worker speedup
// over serial, and records the series as a BENCH_parallel.json trajectory
// via the internal/bench helpers.
func BenchmarkParallelQuery(b *testing.B) {
	const nQueries = 96
	data := GenerateDatasets(DataConfig{Seed: 3, NumObjects: 4000, Clusters: 5}, 3)
	w, err := GenerateWorkload(WorkloadConfig{
		Seed: 11, NumQueries: nQueries, NumDatasets: 3, DatasetsPerQuery: 2,
		QueryVolumeFrac: 1e-4,
	})
	if err != nil {
		b.Fatal(err)
	}

	// newConverged builds a fresh Explorer, converges it on the workload
	// with the disk purely virtual (instant), then switches on real-time
	// emulation for the measured serving phase.
	newConverged := func() *Explorer {
		ex, err := NewExplorer(Options{
			Cost:               simdisk.ReducedScaleCostModel(),
			DropCachesPerQuery: true, // every query pays platter time, like the paper
		})
		if err != nil {
			b.Fatal(err)
		}
		for i, objs := range data {
			if err := ex.AddDataset(DatasetID(i), objs); err != nil {
				b.Fatal(err)
			}
		}
		for _, q := range w.Queries {
			if _, err := ex.Query(q.Range, q.Datasets); err != nil {
				b.Fatal(err)
			}
		}
		ex.SetRealTimeScale(1)
		return ex
	}

	run := func(workers int) (wall, sim time.Duration) {
		ex := newConverged()
		simStart := ex.Clock()
		t0 := time.Now()
		if workers == 0 {
			for _, q := range w.Queries {
				if _, err := ex.Query(q.Range, q.Datasets); err != nil {
					b.Fatal(err)
				}
			}
		} else {
			if _, err := ex.QueryBatch(w.Queries, workers); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(t0), ex.Clock() - simStart
	}

	configs := []int{0, 1, 4, 8} // 0 = serial baseline
	walls := make(map[int]time.Duration, len(configs))
	sims := make(map[int]time.Duration, len(configs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, workers := range configs {
			walls[workers], sims[workers] = run(workers)
		}
	}
	b.StopTimer()

	serial := walls[0]
	b.ReportMetric(float64(nQueries)/serial.Seconds(), "serial_q/s")
	b.ReportMetric(float64(nQueries)/walls[8].Seconds(), "8w_q/s")
	b.ReportMetric(serial.Seconds()/walls[8].Seconds(), "speedup_8w")
	b.ReportMetric(sims[0].Seconds(), "sim_sec_serial")

	points := make([]bench.TrajectoryPoint, 0, len(configs))
	for _, workers := range configs {
		points = append(points, bench.NewTrajectoryPoint(
			"parallel-query", workers, nQueries, walls[workers], sims[workers], serial))
	}
	if err := bench.WriteTrajectory("BENCH_parallel.json", points); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChannelScaling measures how the multi-channel storage layer
// shrinks *simulated* time under parallel serving: the default miss-heavy
// workload (caches dropped before every query, so every query pays platter
// time) is replayed through an 8-worker pool on storage topologies from one
// single-head device up to a 2-device array with 4 channels each. With one
// channel every miss serializes on one seek queue, so sim_seconds barely
// moves with workers (BENCH_parallel.json); with C channels per device and
// D devices the simulated clock is the critical path across C*D heads and
// drops as the topology widens. The series is recorded in
// BENCH_channels.json; the single-channel point also anchors the
// "bit-for-bit identical to the single-device model" guarantee.
func BenchmarkChannelScaling(b *testing.B) {
	const (
		nQueries = 96
		workers  = 8
		nDS      = 6
	)
	data := GenerateDatasets(DataConfig{Seed: 3, NumObjects: 3000, Clusters: 5}, nDS)
	w, err := GenerateWorkload(WorkloadConfig{
		Seed: 11, NumQueries: nQueries, NumDatasets: nDS, DatasetsPerQuery: 2,
		QueryVolumeFrac: 1e-4,
	})
	if err != nil {
		b.Fatal(err)
	}

	newConverged := func(devices, channels int) *Explorer {
		ex, err := NewExplorer(Options{
			Cost:               simdisk.ReducedScaleCostModel(),
			DropCachesPerQuery: true, // miss-heavy: every query pays platter time
			Devices:            devices,
			Channels:           channels,
		})
		if err != nil {
			b.Fatal(err)
		}
		for i, objs := range data {
			if err := ex.AddDataset(DatasetID(i), objs); err != nil {
				b.Fatal(err)
			}
		}
		for _, q := range w.Queries {
			if _, err := ex.Query(q.Range, q.Datasets); err != nil {
				b.Fatal(err)
			}
		}
		ex.SetRealTimeScale(1)
		// Measure the serving phase from a zeroed clock: on multi-channel
		// topologies, deltas across the imbalanced convergence phase are
		// shadowed by the busiest channel's head start.
		ex.ResetClock()
		return ex
	}

	type topo struct{ C, D int }
	configs := []topo{{1, 1}, {2, 1}, {4, 1}, {1, 2}, {2, 2}, {4, 2}}
	walls := make(map[topo]time.Duration, len(configs))
	sims := make(map[topo]time.Duration, len(configs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tc := range configs {
			ex := newConverged(tc.D, tc.C)
			t0 := time.Now()
			if _, err := ex.QueryBatch(w.Queries, workers); err != nil {
				b.Fatal(err)
			}
			walls[tc], sims[tc] = time.Since(t0), ex.Clock()
		}
	}
	b.StopTimer()

	base := sims[topo{1, 1}]
	b.ReportMetric(base.Seconds(), "sim_sec_c1d1")
	b.ReportMetric(sims[topo{4, 2}].Seconds(), "sim_sec_c4d2")
	b.ReportMetric(base.Seconds()/sims[topo{4, 2}].Seconds(), "sim_speedup_c4d2")

	points := make([]bench.TrajectoryPoint, 0, len(configs))
	for _, tc := range configs {
		// No serial baseline in this series — every point is the 8-worker
		// pool; comparisons are against the C=1 D=1 pooled point.
		p := bench.NewTrajectoryPoint(
			"channel-scaling", workers, nQueries, walls[tc], sims[tc], 0)
		p.Channels, p.Devices = tc.C, tc.D
		if sims[tc] > 0 {
			p.SimSpeedupVsBase = base.Seconds() / sims[tc].Seconds()
		}
		if walls[tc] > 0 {
			p.WallSpeedupVsBase = walls[topo{1, 1}].Seconds() / walls[tc].Seconds()
		}
		points = append(points, p)
	}
	if err := bench.WriteTrajectory("BENCH_channels.json", points); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMergeRouting measures the merger's directory lookup.
func BenchmarkMergeRouting(b *testing.B) {
	_ = core.DefaultConfig() // keep the core import for the metric types
	env := bench.NewEnv(benchEnvConfig())
	spec, _ := bench.FigureByID("fig4a")
	w, err := workload.Generate(workload.Config{
		Seed: 13, NumQueries: 60, NumDatasets: 6, DatasetsPerQuery: 4,
		QueryVolumeFrac: 5e-5, RangeDist: spec.RangeDist, CombDist: spec.CombDist,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Run(bench.KindOdyssey, w); err != nil {
			b.Fatal(err)
		}
	}
}
