package rawfile

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/simdisk"
)

func mkObjs(n int, seed int64) []object.Object {
	r := rand.New(rand.NewSource(seed))
	objs := make([]object.Object, n)
	for i := range objs {
		objs[i] = object.Object{
			ID:      uint64(i),
			Dataset: 3,
			Center:  geom.V(r.Float64()*10, r.Float64()*10, r.Float64()*10),
			HalfExtent: geom.V(
				r.Float64()*0.1, r.Float64()*0.1, r.Float64()*0.1),
		}
	}
	return objs
}

func TestWriteAndScan(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	objs := mkObjs(200, 1)
	raw, err := Write(dev, "ds3.raw", 3, objs)
	if err != nil {
		t.Fatal(err)
	}
	if raw.NumObjects() != 200 {
		t.Fatalf("NumObjects = %d", raw.NumObjects())
	}
	if raw.Name() != "ds3.raw" || raw.Dataset() != 3 {
		t.Fatalf("metadata: %q %d", raw.Name(), raw.Dataset())
	}
	if want := object.PagesFor(200); raw.NumPages() != want {
		t.Fatalf("NumPages = %d, want %d", raw.NumPages(), want)
	}
	got, err := raw.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("All returned %d", len(got))
	}
	for i := range objs {
		if got[i] != objs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestBounds(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	objs := []object.Object{
		{ID: 1, Center: geom.V(0, 0, 0), HalfExtent: geom.V(1, 1, 1)},
		{ID: 2, Center: geom.V(10, 10, 10), HalfExtent: geom.V(2, 2, 2)},
	}
	raw, err := Write(dev, "b", 0, objs)
	if err != nil {
		t.Fatal(err)
	}
	b := raw.Bounds()
	if b.Min != geom.V(-1, -1, -1) || b.Max != geom.V(12, 12, 12) {
		t.Fatalf("Bounds = %v", b)
	}
}

func TestScanRange(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	objs := mkObjs(500, 2)
	raw, err := Write(dev, "r", 0, objs)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.NewBox(geom.V(2, 2, 2), geom.V(5, 5, 5))
	var got []object.Object
	if err := raw.ScanRange(q, func(o object.Object) error {
		got = append(got, o)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, o := range objs {
		if o.Intersects(q) {
			want++
		}
	}
	if len(got) != want || want == 0 {
		t.Fatalf("ScanRange found %d, naive found %d", len(got), want)
	}
	for _, o := range got {
		if !o.Intersects(q) {
			t.Fatalf("non-intersecting object %d returned", o.ID)
		}
	}
}

func TestScanAbortsOnCallbackError(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	raw, err := Write(dev, "r", 0, mkObjs(100, 3))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("stop")
	calls := 0
	err = raw.Scan(func(o object.Object) error {
		calls++
		if calls == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 5 {
		t.Fatalf("callback ran %d times", calls)
	}
}

func TestWriteRejectsInvalidObjects(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	bad := []object.Object{{ID: 1, HalfExtent: geom.V(-1, 0, 0)}}
	if _, err := Write(dev, "bad", 0, bad); err == nil {
		t.Fatal("invalid object accepted")
	}
}

func TestDelete(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	raw, err := Write(dev, "r", 0, mkObjs(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := raw.Delete(); err != nil {
		t.Fatal(err)
	}
	if err := raw.Scan(func(object.Object) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("scan after delete: %v", err)
	}
	if err := raw.Delete(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestScanChargesSequentialCost(t *testing.T) {
	cost := simdisk.CostModel{Seek: 1000, Transfer: 1}
	dev := simdisk.NewDevice(cost, 0)
	raw, err := Write(dev, "r", 0, mkObjs(object.PageCapacity*10, 5))
	if err != nil {
		t.Fatal(err)
	}
	dev.ResetClock()
	dev.DropCaches()
	if err := raw.Scan(func(object.Object) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// One seek, then 10 sequential transfers.
	want := cost.Seek + 10*cost.Transfer
	if got := dev.Clock(); got != want {
		t.Fatalf("scan cost = %v, want %v", got, want)
	}
}

// TestConcurrentScansCoalesce is the charge-accounting regression for the
// first-touch scan path: scans read ReadRun-sized chunks, so with
// single-flight run coalescing on, two concurrent cold scans of the same
// dataset share chunk reads instead of streaming page-by-page past the
// coalescing layer (the old behaviour, which charged every page twice).
func TestConcurrentScansCoalesce(t *testing.T) {
	cost := simdisk.ReducedScaleCostModel()
	dev := simdisk.NewDevice(cost, 0) // no cache: every page platter or coalesced
	nPages := int64(2 * scanChunkPages)
	raw, err := Write(dev, "r", 0, mkObjs(int(nPages)*object.PageCapacity, 7))
	if err != nil {
		t.Fatal(err)
	}
	dev.SetShareReads(true)
	dev.DropCaches()
	dev.ResetClock()
	dev.ResetStats()
	// Stretch real time so the first scan is still inside its first chunk's
	// emulated sleep when the second scan starts — the second attaches to the
	// in-flight chunk read instead of issuing its own.
	dev.SetRealTimeScale(5)
	defer dev.SetRealTimeScale(0)

	scan := func() (int, error) {
		n := 0
		err := raw.Scan(func(object.Object) error { n++; return nil })
		return n, err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var n1 int
	var err1 error
	go func() {
		defer wg.Done()
		n1, err1 = scan()
	}()
	// Wait until the leader has charged its first chunk (it then sleeps the
	// emulated latency with the chunk still registered in flight).
	deadline := time.Now().Add(5 * time.Second)
	for dev.Stats().PageReads == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never started reading")
		}
		time.Sleep(100 * time.Microsecond)
	}
	n2, err2 := scan()
	wg.Wait()
	if err1 != nil || err2 != nil {
		t.Fatalf("scan errors: %v, %v", err1, err2)
	}
	if want := int(nPages) * object.PageCapacity; n1 != want || n2 != want {
		t.Fatalf("scans saw %d and %d objects, want %d", n1, n2, want)
	}
	st := dev.Stats()
	// Every page each scan touched was either a charged platter read or a
	// coalesced fan-out — and at least the first chunk coalesced, so the two
	// scans together charged strictly less than two full reads.
	if got, want := st.PageReads+st.CoalescedPages, 2*nPages; got != want {
		t.Fatalf("pages accounted %d (reads %d + coalesced %d), want %d",
			got, st.PageReads, st.CoalescedPages, want)
	}
	if st.CoalescedPages < int64(scanChunkPages) {
		t.Fatalf("coalesced %d pages, want at least one full chunk (%d)",
			st.CoalescedPages, scanChunkPages)
	}
}

func TestScanPropagatesDeviceFault(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	raw, err := Write(dev, "r", 0, mkObjs(object.PageCapacity*3, 6))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("media error")
	// Raw files are created on a fresh device; file IDs start at 1.
	dev.InjectReadFault(simdisk.FileID(1), 1, boom)
	if err := raw.Scan(func(object.Object) error { return nil }); !errors.Is(err, boom) {
		t.Fatalf("fault not propagated: %v", err)
	}
}

func TestEmptyRawFile(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	raw, err := Write(dev, "empty", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if raw.NumObjects() != 0 || raw.NumPages() != 0 {
		t.Fatalf("empty file: %d objects %d pages", raw.NumObjects(), raw.NumPages())
	}
	if err := raw.Scan(func(object.Object) error {
		t.Fatal("callback invoked on empty file")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
