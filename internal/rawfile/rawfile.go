// Package rawfile implements the unindexed, in-situ dataset files every
// approach in the paper starts from. A raw file stores object records in
// acquisition order, packed into pages with no spatial organization; the
// only access path is a full sequential scan, which is exactly what Space
// Odyssey's first query and every index build pay for (NoDB-style in-situ
// processing).
package rawfile

import (
	"context"
	"errors"
	"fmt"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/pagefile"
	"spaceodyssey/internal/simdisk"
)

// ErrClosed is returned for operations on a deleted raw file.
var ErrClosed = errors.New("rawfile: file deleted")

// GroupName is the placement affinity group of a dataset's files: every
// file derived from the dataset (raw, octree) created under this group
// co-locates on one member of a device array.
func GroupName(dataset object.DatasetID) string {
	return fmt.Sprintf("ds%d", dataset)
}

// Raw is one raw dataset file on the simulated disk.
type Raw struct {
	name    string
	dataset object.DatasetID
	file    *pagefile.File
	run     pagefile.Run
	count   int
	bounds  geom.Box
	deleted bool
}

// Write materializes objs as a raw file on dev. The write is charged to the
// device clock; callers that model pre-existing data (the usual case — the
// paper's datasets already sit on disk) should ResetClock afterwards.
// The dataset's bounding box is recorded for engines that need the indexed
// space (it would be dataset metadata in a real deployment). On a device
// array the file is placed under the dataset's affinity group, so the raw
// file and the octree built over it land on the same member device.
func Write(dev simdisk.Storage, name string, dataset object.DatasetID, objs []object.Object) (*Raw, error) {
	f := pagefile.CreateInGroup(dev, name, GroupName(dataset))
	run, err := f.AppendObjects(objs)
	if err != nil {
		return nil, fmt.Errorf("rawfile %q: %w", name, err)
	}
	bounds := geom.Box{}
	for i, o := range objs {
		if err := o.Validate(); err != nil {
			return nil, fmt.Errorf("rawfile %q: %w", name, err)
		}
		if i == 0 {
			bounds = o.Box()
		} else {
			bounds = bounds.Union(o.Box())
		}
	}
	return &Raw{
		name:    name,
		dataset: dataset,
		file:    f,
		run:     run,
		count:   len(objs),
		bounds:  bounds,
	}, nil
}

// Name returns the file's name.
func (r *Raw) Name() string { return r.name }

// Dataset returns the dataset id the file stores.
func (r *Raw) Dataset() object.DatasetID { return r.dataset }

// NumObjects returns the number of records in the file.
func (r *Raw) NumObjects() int { return r.count }

// NumPages returns the file length in pages.
func (r *Raw) NumPages() int64 { return r.run.Count }

// Bounds returns the union of all object boxes (dataset metadata).
func (r *Raw) Bounds() geom.Box { return r.bounds }

// Scan performs a full sequential in-situ scan, invoking fn for every
// record in storage order. fn returning an error aborts the scan.
func (r *Raw) Scan(fn func(object.Object) error) error {
	return r.ScanCtx(nil, fn)
}

// scanChunkPages is the run size in-situ scans read at a time: large enough
// that a chunk is a genuine sequential run, small enough that huge files
// never need one giant buffer (128 pages = 512 KB).
const scanChunkPages = 128

// ScanCtx is Scan with cancellation: the context (nil disables) is checked
// at every page boundary, so an abandoned in-situ scan stops charging
// simulated I/O where it was abandoned. The in-situ first-touch scan is the
// most expensive single operation in the system — exactly the one an
// interactive caller most wants to walk away from.
//
// The scan reads ReadRun-sized chunks aligned to fixed offsets from the
// run's start (not single pages): every concurrent scan of the same file
// issues identical page ranges, so with single-flight run coalescing on,
// concurrent cold-start scans of one dataset coalesce — one charged read
// per chunk, fanned out — instead of racing page-by-page past the
// coalescing layer. The simulated charges are identical to a page-by-page
// scan: same pages, same order, same head.
func (r *Raw) ScanCtx(ctx context.Context, fn func(object.Object) error) error {
	if r.deleted {
		return ErrClosed
	}
	dev := r.file.Device()
	id := r.file.ID()
	end := r.run.Start + r.run.Count
	for p := r.run.Start; p < end; {
		n := scanChunkPages - (p-r.run.Start)%scanChunkPages
		if p+n > end {
			n = end - p
		}
		buf, err := dev.ReadRunCtx(ctx, id, p, n)
		if err != nil {
			return err
		}
		for i := int64(0); i < n; i++ {
			objs, err := object.DecodePage(buf[i*simdisk.PageSize : (i+1)*simdisk.PageSize])
			if err != nil {
				return fmt.Errorf("rawfile %q page %d: %w", r.name, p+i, err)
			}
			for _, o := range objs {
				if err := fn(o); err != nil {
					return err
				}
			}
		}
		p += n
	}
	return nil
}

// All reads every record into memory.
func (r *Raw) All() ([]object.Object, error) {
	out := make([]object.Object, 0, r.count)
	err := r.Scan(func(o object.Object) error {
		out = append(out, o)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ScanRange performs a full scan and reports only records intersecting q —
// the query path of a completely unindexed dataset.
func (r *Raw) ScanRange(q geom.Box, fn func(object.Object) error) error {
	return r.Scan(func(o object.Object) error {
		if o.Intersects(q) {
			return fn(o)
		}
		return nil
	})
}

// Delete removes the file from the device.
func (r *Raw) Delete() error {
	if r.deleted {
		return ErrClosed
	}
	r.deleted = true
	return r.file.Delete()
}
