// Package object defines the spatial object record shared by every engine
// in the repository and its fixed-width binary page encoding.
//
// The paper's datasets model neuron morphologies as 3D surface meshes; each
// indexed element carries an identifier, a dataset id, and a spatial extent.
// Space-oriented partitioning (octree, grid) assigns objects by their center
// point and answers queries via the query-window extension, so the record
// stores center + half-extent explicitly.
package object

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/simdisk"
)

// DatasetID identifies one of the n datasets under exploration.
type DatasetID uint32

// Object is one spatial object: an axis-aligned box described by its center
// and half-extent, tagged with the dataset it belongs to.
type Object struct {
	ID         uint64
	Dataset    DatasetID
	Center     geom.Vec
	HalfExtent geom.Vec
}

// Box returns the object's axis-aligned bounding box.
func (o Object) Box() geom.Box {
	return geom.BoxFromCenter(o.Center, o.HalfExtent)
}

// Intersects reports whether the object's box intersects q.
func (o Object) Intersects(q geom.Box) bool {
	return o.Box().Intersects(q)
}

// RecordSize is the fixed on-disk size of one object record:
// id(8) + dataset(4) + pad(4) + center(3*8) + halfExtent(3*8) = 64 bytes.
const RecordSize = 64

// pageHeaderSize is the per-page header: magic(2) count(2) crc32(4) pad(8).
const pageHeaderSize = 16

// PageCapacity is the number of object records per 4 KB page.
const PageCapacity = (simdisk.PageSize - pageHeaderSize) / RecordSize

// pageMagic marks a valid object page.
const pageMagic = 0x5D0D // "SpODyssey"

// Encoding/decoding errors.
var (
	ErrPageFull     = errors.New("object: too many records for one page")
	ErrBadMagic     = errors.New("object: page has bad magic (not an object page)")
	ErrBadChecksum  = errors.New("object: page checksum mismatch (corrupted page)")
	ErrBadCount     = errors.New("object: page record count out of range")
	ErrShortBuffer  = errors.New("object: buffer shorter than one page")
	ErrNonFiniteVec = errors.New("object: non-finite coordinate")
)

// Validate reports an error when the object's geometry is unusable.
func (o Object) Validate() error {
	if !o.Center.Finite() || !o.HalfExtent.Finite() {
		return fmt.Errorf("%w: object %d", ErrNonFiniteVec, o.ID)
	}
	if o.HalfExtent.X < 0 || o.HalfExtent.Y < 0 || o.HalfExtent.Z < 0 {
		return fmt.Errorf("object %d: negative half-extent %v", o.ID, o.HalfExtent)
	}
	return nil
}

// putVec writes v at buf[off:], returning the next offset.
func putVec(buf []byte, off int, v geom.Vec) int {
	binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v.X))
	binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(v.Y))
	binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(v.Z))
	return off + 24
}

// getVec reads a Vec from buf[off:], returning it and the next offset.
func getVec(buf []byte, off int) (geom.Vec, int) {
	return geom.Vec{
		X: math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])),
		Y: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:])),
		Z: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+16:])),
	}, off + 24
}

// EncodeRecord writes o into buf (at least RecordSize bytes).
func EncodeRecord(buf []byte, o Object) {
	binary.LittleEndian.PutUint64(buf[0:], o.ID)
	binary.LittleEndian.PutUint32(buf[8:], uint32(o.Dataset))
	binary.LittleEndian.PutUint32(buf[12:], 0) // padding
	off := putVec(buf, 16, o.Center)
	putVec(buf, off, o.HalfExtent)
}

// DecodeRecord reads an Object from buf (at least RecordSize bytes).
func DecodeRecord(buf []byte) Object {
	var o Object
	o.ID = binary.LittleEndian.Uint64(buf[0:])
	o.Dataset = DatasetID(binary.LittleEndian.Uint32(buf[8:]))
	var off int
	o.Center, off = getVec(buf, 16)
	o.HalfExtent, _ = getVec(buf, off)
	return o
}

// EncodePage encodes up to PageCapacity objects into a fresh PageSize
// buffer with header and checksum.
func EncodePage(objs []Object) ([]byte, error) {
	if len(objs) > PageCapacity {
		return nil, fmt.Errorf("%w: %d > %d", ErrPageFull, len(objs), PageCapacity)
	}
	buf := make([]byte, simdisk.PageSize)
	binary.LittleEndian.PutUint16(buf[0:], pageMagic)
	binary.LittleEndian.PutUint16(buf[2:], uint16(len(objs)))
	for i, o := range objs {
		EncodeRecord(buf[pageHeaderSize+i*RecordSize:], o)
	}
	crc := crc32.ChecksumIEEE(buf[pageHeaderSize:])
	binary.LittleEndian.PutUint32(buf[4:], crc)
	return buf, nil
}

// DecodePage decodes the objects stored in one page, verifying the header
// magic and payload checksum.
func DecodePage(buf []byte) ([]Object, error) {
	if len(buf) < simdisk.PageSize {
		return nil, ErrShortBuffer
	}
	if binary.LittleEndian.Uint16(buf[0:]) != pageMagic {
		return nil, ErrBadMagic
	}
	count := int(binary.LittleEndian.Uint16(buf[2:]))
	if count > PageCapacity {
		return nil, fmt.Errorf("%w: %d", ErrBadCount, count)
	}
	wantCRC := binary.LittleEndian.Uint32(buf[4:])
	if crc32.ChecksumIEEE(buf[pageHeaderSize:simdisk.PageSize]) != wantCRC {
		return nil, ErrBadChecksum
	}
	objs := make([]Object, count)
	for i := 0; i < count; i++ {
		objs[i] = DecodeRecord(buf[pageHeaderSize+i*RecordSize:])
	}
	return objs, nil
}

// AppendPageInto decodes one page and appends the records to dst, returning
// the extended slice. It avoids re-allocating when callers accumulate many
// pages.
func AppendPageInto(dst []Object, buf []byte) ([]Object, error) {
	objs, err := DecodePage(buf)
	if err != nil {
		return dst, err
	}
	return append(dst, objs...), nil
}

// PagesFor returns the number of pages needed to store n records.
func PagesFor(n int) int64 {
	if n <= 0 {
		return 0
	}
	return int64((n + PageCapacity - 1) / PageCapacity)
}
