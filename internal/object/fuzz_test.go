package object

import (
	"testing"

	"spaceodyssey/internal/simdisk"
)

// FuzzDecodePage checks that arbitrary page bytes never panic the decoder
// and that accepted pages re-encode consistently.
func FuzzDecodePage(f *testing.F) {
	// Seed corpus: a valid page, an empty page, truncated and corrupted
	// variants.
	valid, err := EncodePage([]Object{{ID: 1, Dataset: 2}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	empty, err := EncodePage(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add([]byte{})
	f.Add(make([]byte, simdisk.PageSize))
	corrupted := append([]byte(nil), valid...)
	corrupted[100] ^= 0xFF
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		objs, err := DecodePage(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted pages must round-trip.
		page, err := EncodePage(objs)
		if err != nil {
			t.Fatalf("decoded page failed to re-encode: %v", err)
		}
		again, err := DecodePage(page)
		if err != nil {
			t.Fatalf("re-encoded page failed to decode: %v", err)
		}
		if len(again) != len(objs) {
			t.Fatalf("round trip changed count: %d vs %d", len(again), len(objs))
		}
	})
}

// FuzzDecodeRecord checks the fixed-width record decoder tolerates any
// 64-byte input.
func FuzzDecodeRecord(f *testing.F) {
	buf := make([]byte, RecordSize)
	EncodeRecord(buf, Object{ID: 42, Dataset: 7})
	f.Add(buf)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < RecordSize {
			return
		}
		o := DecodeRecord(data[:RecordSize])
		out := make([]byte, RecordSize)
		EncodeRecord(out, o)
		// Re-decoding the re-encoding must be stable.
		if got := DecodeRecord(out); got.ID != o.ID || got.Dataset != o.Dataset {
			t.Fatal("record round trip unstable")
		}
	})
}
