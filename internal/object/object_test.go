package object

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/simdisk"
)

func randObject(r *rand.Rand) Object {
	return Object{
		ID:      r.Uint64(),
		Dataset: DatasetID(r.Uint32()),
		Center: geom.V(
			r.Float64()*200-100, r.Float64()*200-100, r.Float64()*200-100),
		HalfExtent: geom.V(r.Float64(), r.Float64(), r.Float64()),
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	buf := make([]byte, RecordSize)
	for i := 0; i < 1000; i++ {
		o := randObject(r)
		EncodeRecord(buf, o)
		got := DecodeRecord(buf)
		if got != o {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, o)
		}
	}
}

func TestPageRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 7, PageCapacity} {
		objs := make([]Object, n)
		for i := range objs {
			objs[i] = randObject(r)
		}
		page, err := EncodePage(objs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(page) != simdisk.PageSize {
			t.Fatalf("n=%d: page size %d", n, len(page))
		}
		got, err := DecodePage(page)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d", n, len(got))
		}
		for i := range objs {
			if got[i] != objs[i] {
				t.Fatalf("n=%d: record %d mismatch", n, i)
			}
		}
	}
}

func TestEncodePageTooMany(t *testing.T) {
	objs := make([]Object, PageCapacity+1)
	if _, err := EncodePage(objs); !errors.Is(err, ErrPageFull) {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodePageErrors(t *testing.T) {
	page, err := EncodePage([]Object{{ID: 1}})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := DecodePage(page[:100]); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("short buffer: %v", err)
	}

	bad := append([]byte(nil), page...)
	bad[0] = 0xFF // break magic
	if _, err := DecodePage(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}

	bad = append([]byte(nil), page...)
	bad[simdisk.PageSize-1] ^= 0xFF // flip payload bit
	if _, err := DecodePage(bad); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corruption: %v", err)
	}

	bad = append([]byte(nil), page...)
	bad[2] = 0xFF // absurd count (and checksum covers payload, not header,
	bad[3] = 0xFF // so the count check fires first)
	if _, err := DecodePage(bad); !errors.Is(err, ErrBadCount) {
		t.Errorf("bad count: %v", err)
	}
}

func TestAppendPageInto(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := []Object{randObject(r)}
	page, err := EncodePage([]Object{randObject(r), randObject(r)})
	if err != nil {
		t.Fatal(err)
	}
	out, err := AppendPageInto(a, page)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	if _, err := AppendPageInto(nil, make([]byte, simdisk.PageSize)); err == nil {
		t.Error("decoding zero page succeeded")
	}
}

func TestObjectBoxAndIntersects(t *testing.T) {
	o := Object{Center: geom.V(1, 1, 1), HalfExtent: geom.V(0.5, 0.5, 0.5)}
	b := o.Box()
	if b.Min != geom.V(0.5, 0.5, 0.5) || b.Max != geom.V(1.5, 1.5, 1.5) {
		t.Fatalf("Box = %v", b)
	}
	if !o.Intersects(geom.NewBox(geom.V(1.4, 1.4, 1.4), geom.V(2, 2, 2))) {
		t.Error("Intersects = false for overlapping query")
	}
	if o.Intersects(geom.NewBox(geom.V(2, 2, 2), geom.V(3, 3, 3))) {
		t.Error("Intersects = true for disjoint query")
	}
}

func TestValidate(t *testing.T) {
	good := Object{Center: geom.V(0, 0, 0), HalfExtent: geom.V(1, 1, 1)}
	if err := good.Validate(); err != nil {
		t.Errorf("valid object rejected: %v", err)
	}
	bad := Object{Center: geom.V(math.NaN(), 0, 0)}
	if err := bad.Validate(); !errors.Is(err, ErrNonFiniteVec) {
		t.Errorf("NaN center: %v", err)
	}
	neg := Object{HalfExtent: geom.V(-1, 0, 0)}
	if err := neg.Validate(); err == nil {
		t.Error("negative half-extent accepted")
	}
}

func TestPagesFor(t *testing.T) {
	cases := []struct {
		n    int
		want int64
	}{
		{0, 0}, {-5, 0}, {1, 1}, {PageCapacity, 1}, {PageCapacity + 1, 2},
		{3 * PageCapacity, 3}, {3*PageCapacity + 1, 4},
	}
	for _, c := range cases {
		if got := PagesFor(c.n); got != c.want {
			t.Errorf("PagesFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPageCapacityIsSane(t *testing.T) {
	// 4096-byte pages with 64-byte records and a 16-byte header hold 63.
	if PageCapacity != 63 {
		t.Fatalf("PageCapacity = %d, want 63", PageCapacity)
	}
}

// Property: record encode/decode round-trips for arbitrary bit patterns
// (including NaN payloads, which must survive byte-exactly as structs are
// compared by bits here via Float64bits).
func TestRecordRoundTripProperty(t *testing.T) {
	f := func(id uint64, ds uint32, cx, cy, cz, hx, hy, hz float64) bool {
		o := Object{
			ID: id, Dataset: DatasetID(ds),
			Center:     geom.V(cx, cy, cz),
			HalfExtent: geom.V(hx, hy, hz),
		}
		buf := make([]byte, RecordSize)
		EncodeRecord(buf, o)
		got := DecodeRecord(buf)
		same := func(a, b float64) bool {
			return math.Float64bits(a) == math.Float64bits(b)
		}
		return got.ID == o.ID && got.Dataset == o.Dataset &&
			same(got.Center.X, o.Center.X) && same(got.Center.Y, o.Center.Y) &&
			same(got.Center.Z, o.Center.Z) &&
			same(got.HalfExtent.X, o.HalfExtent.X) &&
			same(got.HalfExtent.Y, o.HalfExtent.Y) &&
			same(got.HalfExtent.Z, o.HalfExtent.Z)
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: any single-bit corruption of the payload is detected.
func TestChecksumDetectsBitFlipsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	objs := []Object{randObject(r), randObject(r), randObject(r)}
	page, err := EncodePage(objs)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		bad := append([]byte(nil), page...)
		// Flip a random payload bit (past the header).
		byteIdx := 16 + r.Intn(simdisk.PageSize-16)
		bad[byteIdx] ^= 1 << uint(r.Intn(8))
		if _, err := DecodePage(bad); err == nil {
			t.Fatalf("bit flip at byte %d undetected", byteIdx)
		}
	}
}
