package grid

import (
	"math/rand"
	"testing"

	"spaceodyssey/internal/datagen"
	"spaceodyssey/internal/engine"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/rawfile"
	"spaceodyssey/internal/simdisk"
)

func mkRaws(t *testing.T, dev *simdisk.Device, n, perDS int, seed int64) []*rawfile.Raw {
	t.Helper()
	dss := datagen.GenerateDatasets(datagen.Config{Seed: seed, NumObjects: perDS}, n)
	raws := make([]*rawfile.Raw, n)
	for i, objs := range dss {
		raw, err := rawfile.Write(dev, "ds", object.DatasetID(i), objs)
		if err != nil {
			t.Fatal(err)
		}
		raws[i] = raw
	}
	return raws
}

func TestConfigValidation(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	raws := mkRaws(t, dev, 1, 10, 1)
	if _, err := NewIndex(dev, raws, geom.UnitBox(), Config{CellsPerDim: -1}); err == nil {
		t.Error("negative CellsPerDim accepted")
	}
	if _, err := NewIndex(dev, raws, geom.Box{}, DefaultConfig()); err == nil {
		t.Error("zero-volume bounds accepted")
	}
	if DefaultConfig().CellsPerDim != 60 {
		t.Error("paper default is 60 cells per dimension")
	}
}

func TestQueryBeforeBuildFails(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	raws := mkRaws(t, dev, 1, 10, 2)
	idx, err := NewIndex(dev, raws, geom.UnitBox(), Config{CellsPerDim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Query(geom.UnitBox(), nil); err == nil {
		t.Fatal("query before build succeeded")
	}
}

func TestIndexMatchesNaiveScan(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	raws := mkRaws(t, dev, 1, 4000, 3)
	idx, err := NewIndex(dev, raws, geom.UnitBox(), Config{CellsPerDim: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Build(); err != nil {
		t.Fatal(err)
	}
	if idx.NumObjects() != 4000 {
		t.Fatalf("NumObjects = %d", idx.NumObjects())
	}
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		side := 0.01 + r.Float64()*0.3
		c := geom.V(r.Float64(), r.Float64(), r.Float64())
		q, ok := geom.Cube(c, side).Clip(geom.UnitBox())
		if !ok {
			continue
		}
		got, err := idx.Query(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		var want []object.Object
		if err := raws[0].ScanRange(q, func(o object.Object) error {
			want = append(want, o)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !engine.SameObjects(got, want) {
			t.Fatalf("trial %d: grid %d objects, naive %d", trial, len(got), len(want))
		}
	}
}

func TestMemBudgetCausesFragmentation(t *testing.T) {
	devA := simdisk.NewDevice(simdisk.CostModel{}, 0)
	rawsA := mkRaws(t, devA, 1, 5000, 5)
	big, err := NewIndex(devA, rawsA, geom.UnitBox(), Config{CellsPerDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := big.Build(); err != nil {
		t.Fatal(err)
	}

	devB := simdisk.NewDevice(simdisk.CostModel{}, 0)
	rawsB := mkRaws(t, devB, 1, 5000, 5)
	small, err := NewIndex(devB, rawsB, geom.UnitBox(),
		Config{CellsPerDim: 2, MemBudgetObjects: 500})
	if err != nil {
		t.Fatal(err)
	}
	if err := small.Build(); err != nil {
		t.Fatal(err)
	}

	p := geom.V(0.25, 0.25, 0.25)
	if big.CellRuns(p) != 1 {
		t.Fatalf("unbudgeted build produced %d runs", big.CellRuns(p))
	}
	if small.CellRuns(p) <= big.CellRuns(p) {
		t.Fatalf("budgeted build should fragment: %d runs vs %d",
			small.CellRuns(p), big.CellRuns(p))
	}

	// Both must return identical results.
	q := geom.NewBox(geom.V(0.1, 0.1, 0.1), geom.V(0.4, 0.4, 0.4))
	a, err := big.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := small.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !engine.SameObjects(a, b) {
		t.Fatal("fragmented grid returns different results")
	}
}

func TestOneForEachMatchesOracle(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	raws := mkRaws(t, dev, 4, 1500, 6)
	eng, err := NewOneForEach(dev, raws, geom.UnitBox(), Config{CellsPerDim: 6})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Name() != "Grid-1fE" {
		t.Fatalf("Name = %q", eng.Name())
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	oracle := engine.NewNaiveScan(raws)
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		q, ok := geom.Cube(geom.V(r.Float64(), r.Float64(), r.Float64()), 0.1).Clip(geom.UnitBox())
		if !ok {
			continue
		}
		dss := []object.DatasetID{object.DatasetID(r.Intn(4)), object.DatasetID(r.Intn(4))}
		if dss[0] == dss[1] {
			dss = dss[:1]
		}
		got, err := eng.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		if !engine.SameObjects(got, want) {
			t.Fatalf("trial %d: 1fE %d objects, oracle %d", trial, len(got), len(want))
		}
	}
}

func TestOneForEachUnknownDataset(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	raws := mkRaws(t, dev, 2, 100, 8)
	eng, err := NewOneForEach(dev, raws, geom.UnitBox(), Config{CellsPerDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(geom.UnitBox(), []object.DatasetID{99}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestAllInOneFiltersDatasets(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	raws := mkRaws(t, dev, 4, 1500, 9)
	eng, err := NewAllInOne(dev, raws, geom.UnitBox(), Config{CellsPerDim: 6})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Name() != "Grid-Ain1" {
		t.Fatalf("Name = %q", eng.Name())
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	oracle := engine.NewNaiveScan(raws)
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		q, ok := geom.Cube(geom.V(r.Float64(), r.Float64(), r.Float64()), 0.15).Clip(geom.UnitBox())
		if !ok {
			continue
		}
		dss := []object.DatasetID{object.DatasetID(r.Intn(4))}
		got, err := eng.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		if !engine.SameObjects(got, want) {
			t.Fatalf("trial %d: Ain1 %d objects, oracle %d", trial, len(got), len(want))
		}
		for _, o := range got {
			if o.Dataset != dss[0] {
				t.Fatalf("dataset filter leaked object from %d", o.Dataset)
			}
		}
	}
}

func TestReplicatingGridMatchesOracle(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	raws := mkRaws(t, dev, 1, 3000, 12)
	idx, err := NewIndex(dev, raws, geom.UnitBox(), Config{CellsPerDim: 6, Replicate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Build(); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		side := 0.01 + r.Float64()*0.3
		q, ok := geom.Cube(geom.V(r.Float64(), r.Float64(), r.Float64()), side).Clip(geom.UnitBox())
		if !ok {
			continue
		}
		got, err := idx.Query(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		var want []object.Object
		if err := raws[0].ScanRange(q, func(o object.Object) error {
			want = append(want, o)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !engine.SameObjects(got, want) {
			t.Fatalf("trial %d: replicated grid %d objects, naive %d (duplicates?)",
				trial, len(got), len(want))
		}
	}
}

func TestReplicationUsesMoreSpace(t *testing.T) {
	// Objects spanning cell boundaries are stored once per overlapped cell,
	// so the replicated grid writes strictly more pages.
	build := func(replicate bool) int64 {
		dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
		// Objects a third of a cell wide straddle boundaries frequently.
		objs := datagen.Generate(datagen.Config{
			Seed: 14, NumObjects: 4000, ObjectSizeFrac: 0.02,
		}, 0)
		raw, err := rawfile.Write(dev, "ds", 0, objs)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := NewIndex(dev, []*rawfile.Raw{raw}, geom.UnitBox(),
			Config{CellsPerDim: 16, Replicate: replicate})
		if err != nil {
			t.Fatal(err)
		}
		if err := idx.Build(); err != nil {
			t.Fatal(err)
		}
		return dev.TotalPages()
	}
	plain := build(false)
	repl := build(true)
	if repl <= plain {
		t.Fatalf("replication pages %d <= extension pages %d", repl, plain)
	}
}

func TestBuildIsIdempotent(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{Seek: 1, Transfer: 1}, 0)
	raws := mkRaws(t, dev, 1, 500, 11)
	idx, err := NewIndex(dev, raws, geom.UnitBox(), Config{CellsPerDim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Build(); err != nil {
		t.Fatal(err)
	}
	clock := dev.Clock()
	if err := idx.Build(); err != nil {
		t.Fatal(err)
	}
	if dev.Clock() != clock {
		t.Fatal("second Build performed I/O")
	}
}
