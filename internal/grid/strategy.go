package grid

import (
	"fmt"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/rawfile"
	"spaceodyssey/internal/simdisk"
)

// OneForEach is the paper's Grid-1fE strategy: one grid per dataset; a query
// probes only the grids of the datasets it touches.
type OneForEach struct {
	indexes map[object.DatasetID]*Index
}

// NewOneForEach creates unbuilt per-dataset grids.
func NewOneForEach(dev simdisk.Storage, raws []*rawfile.Raw, bounds geom.Box, cfg Config) (*OneForEach, error) {
	m := make(map[object.DatasetID]*Index, len(raws))
	for _, raw := range raws {
		idx, err := NewIndex(dev, []*rawfile.Raw{raw}, bounds, cfg)
		if err != nil {
			return nil, err
		}
		m[raw.Dataset()] = idx
	}
	return &OneForEach{indexes: m}, nil
}

// Name implements engine.Engine.
func (e *OneForEach) Name() string { return "Grid-1fE" }

// Build implements engine.Engine by building every per-dataset grid.
func (e *OneForEach) Build() error {
	for _, idx := range e.indexes {
		if err := idx.Build(); err != nil {
			return err
		}
	}
	return nil
}

// Query implements engine.Engine.
func (e *OneForEach) Query(q geom.Box, datasets []object.DatasetID) ([]object.Object, error) {
	var out []object.Object
	for _, ds := range datasets {
		idx, ok := e.indexes[ds]
		if !ok {
			return nil, fmt.Errorf("grid: unknown dataset %d", ds)
		}
		objs, err := idx.Query(q, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, objs...)
	}
	return out, nil
}

// AllInOne is the Grid-Ain1 strategy: a single grid holding every dataset's
// objects; queries filter out datasets that were not requested.
type AllInOne struct {
	index *Index
}

// NewAllInOne creates an unbuilt combined grid.
func NewAllInOne(dev simdisk.Storage, raws []*rawfile.Raw, bounds geom.Box, cfg Config) (*AllInOne, error) {
	idx, err := NewIndex(dev, raws, bounds, cfg)
	if err != nil {
		return nil, err
	}
	return &AllInOne{index: idx}, nil
}

// Name implements engine.Engine.
func (e *AllInOne) Name() string { return "Grid-Ain1" }

// Build implements engine.Engine.
func (e *AllInOne) Build() error { return e.index.Build() }

// Query implements engine.Engine.
func (e *AllInOne) Query(q geom.Box, datasets []object.DatasetID) ([]object.Object, error) {
	filter := make(map[object.DatasetID]bool, len(datasets))
	for _, ds := range datasets {
		filter[ds] = true
	}
	return e.index.Query(q, filter)
}
