// Package grid implements the paper's static uniform-grid baseline: the
// indexed space is partitioned into a fixed number of cells up front.
// Objects are assigned to cells in memory and flushed to disk when the
// memory buffer fills, so a cell's storage fragments into multiple runs
// under memory pressure — exactly the behaviour the paper describes for its
// own Grid implementation. Replication is avoided with the query-window
// extension technique, like Space Odyssey.
package grid

import (
	"fmt"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/pagefile"
	"spaceodyssey/internal/rawfile"
	"spaceodyssey/internal/simdisk"
)

// Config tunes the grid.
type Config struct {
	// CellsPerDim is the grid resolution per dimension; the paper uses 60
	// (60^3 cells), determined by a parameter sweep. Experiments at reduced
	// dataset scale use a proportionally reduced resolution.
	CellsPerDim int
	// MemBudgetObjects caps how many objects are buffered in memory during
	// the build before a flush (models the 1 GB memory limit). Default:
	// unlimited (single flush).
	MemBudgetObjects int
	// Replicate switches off the query-window extension and instead stores
	// an object in every cell its box overlaps, deduplicating results at
	// query time. The paper rejects this design for its storage blow-up and
	// duplicate work; the ablation bench quantifies that choice.
	Replicate bool
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{CellsPerDim: 60}
}

func (c Config) withDefaults() (Config, error) {
	if c.CellsPerDim == 0 {
		c.CellsPerDim = 60
	}
	if c.CellsPerDim < 1 {
		return c, fmt.Errorf("grid: CellsPerDim %d < 1", c.CellsPerDim)
	}
	return c, nil
}

// Index is a uniform grid over one or more datasets.
type Index struct {
	cfg    Config
	bounds geom.Box
	raws   []*rawfile.Raw
	file   *pagefile.File

	cells     [][]pagefile.Run // per-cell runs, len k^3
	counts    []int
	maxExtent geom.Vec
	built     bool
	total     int
}

// NewIndex creates an unbuilt grid over the given raw files (one for the
// one-for-each strategy, all of them for all-in-one).
func NewIndex(dev simdisk.Storage, raws []*rawfile.Raw, bounds geom.Box, cfg Config) (*Index, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if bounds.Volume() <= 0 {
		return nil, fmt.Errorf("grid: bounds %v has no volume", bounds)
	}
	name := "grid"
	if len(raws) == 1 {
		name = raws[0].Name() + ".grid"
	}
	k := cfg.CellsPerDim
	return &Index{
		cfg:    cfg,
		bounds: bounds,
		raws:   raws,
		file:   pagefile.Create(dev, name),
		cells:  make([][]pagefile.Run, k*k*k),
		counts: make([]int, k*k*k),
	}, nil
}

// Built reports whether Build has completed.
func (g *Index) Built() bool { return g.built }

// NumObjects returns the number of indexed objects.
func (g *Index) NumObjects() int { return g.total }

// MaxExtent returns the per-dimension maximum object half-extent.
func (g *Index) MaxExtent() geom.Vec { return g.maxExtent }

// Build scans every raw file, assigns objects to cells by center, and
// flushes cell buffers to disk whenever the memory budget is exceeded.
func (g *Index) Build() error {
	if g.built {
		return nil
	}
	k := g.cfg.CellsPerDim
	buffers := make([][]object.Object, k*k*k)
	buffered := 0
	flush := func() error {
		for ci, objs := range buffers {
			if len(objs) == 0 {
				continue
			}
			run, err := g.file.AppendObjects(objs)
			if err != nil {
				return err
			}
			g.cells[ci] = append(g.cells[ci], run)
			g.counts[ci] += len(objs)
			buffers[ci] = nil
		}
		buffered = 0
		return nil
	}
	for _, raw := range g.raws {
		err := raw.Scan(func(o object.Object) error {
			for _, ci := range g.cellsOf(o) {
				buffers[ci] = append(buffers[ci], o)
				buffered++
			}
			g.maxExtent = g.maxExtent.Max(o.HalfExtent)
			g.total++
			if g.cfg.MemBudgetObjects > 0 && buffered >= g.cfg.MemBudgetObjects {
				return flush()
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("grid build: %w", err)
		}
	}
	if err := flush(); err != nil {
		return fmt.Errorf("grid build flush: %w", err)
	}
	g.built = true
	return nil
}

// cellsOf returns the cell indexes an object is assigned to: the cell of
// its center under the query-window-extension scheme, or every overlapping
// cell under replication.
func (g *Index) cellsOf(o object.Object) []int {
	k := g.cfg.CellsPerDim
	if !g.cfg.Replicate {
		ix, iy, iz := g.bounds.CellIndex(k, o.Center)
		return []int{(iz*k+iy)*k + ix}
	}
	b := o.Box()
	loX, loY, loZ := g.bounds.CellIndex(k, b.Min)
	hiX, hiY, hiZ := g.bounds.CellIndex(k, b.Max)
	var out []int
	for z := loZ; z <= hiZ; z++ {
		for y := loY; y <= hiY; y++ {
			for x := loX; x <= hiX; x++ {
				out = append(out, (z*k+y)*k+x)
			}
		}
	}
	return out
}

// Query returns all indexed objects intersecting q, optionally restricted to
// the datasets in filter (nil means no filtering). Under the query-window
// extension the window is widened by the max object extent; under
// replication cells are read as-is and duplicates are removed.
func (g *Index) Query(q geom.Box, filter map[object.DatasetID]bool) ([]object.Object, error) {
	if !g.built {
		return nil, fmt.Errorf("grid: query before build")
	}
	k := g.cfg.CellsPerDim
	ext := q
	if !g.cfg.Replicate {
		ext = q.Expand(g.maxExtent)
	}
	loX, loY, loZ := g.bounds.CellIndex(k, ext.Min)
	hiX, hiY, hiZ := g.bounds.CellIndex(k, ext.Max)
	var seen map[objKey]bool
	if g.cfg.Replicate {
		seen = make(map[objKey]bool)
	}
	var out []object.Object
	for z := loZ; z <= hiZ; z++ {
		for y := loY; y <= hiY; y++ {
			for x := loX; x <= hiX; x++ {
				ci := (z*k+y)*k + x
				objs, err := g.file.ReadRuns(g.cells[ci])
				if err != nil {
					return nil, err
				}
				for _, o := range objs {
					if !o.Intersects(q) {
						continue
					}
					if filter != nil && !filter[o.Dataset] {
						continue
					}
					if seen != nil {
						key := objKey{o.Dataset, o.ID}
						if seen[key] {
							continue
						}
						seen[key] = true
					}
					out = append(out, o)
				}
			}
		}
	}
	return out, nil
}

// objKey identifies an object for replication dedup.
type objKey struct {
	ds object.DatasetID
	id uint64
}

// CellRuns returns the number of storage runs of the cell holding p; tests
// use it to observe flush fragmentation.
func (g *Index) CellRuns(p geom.Vec) int {
	k := g.cfg.CellsPerDim
	ix, iy, iz := g.bounds.CellIndex(k, p)
	return len(g.cells[(iz*k+iy)*k+ix])
}
