package pagefile

import (
	"errors"
	"math/rand"
	"testing"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/simdisk"
)

func newFile(t *testing.T) *File {
	t.Helper()
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	return Create(dev, "test")
}

func mkObjs(n int, seed int64) []object.Object {
	r := rand.New(rand.NewSource(seed))
	objs := make([]object.Object, n)
	for i := range objs {
		objs[i] = object.Object{
			ID:         uint64(i),
			Dataset:    object.DatasetID(r.Intn(10)),
			Center:     geom.V(r.Float64(), r.Float64(), r.Float64()),
			HalfExtent: geom.V(r.Float64()*0.01, r.Float64()*0.01, r.Float64()*0.01),
		}
	}
	return objs
}

func TestAppendAndReadRun(t *testing.T) {
	f := newFile(t)
	objs := mkObjs(object.PageCapacity*2+5, 1)
	run, err := f.AppendObjects(objs)
	if err != nil {
		t.Fatal(err)
	}
	if run.Start != 0 || run.Count != 3 {
		t.Fatalf("run = %+v", run)
	}
	got, err := f.ReadRun(run)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(objs) {
		t.Fatalf("read %d objects, want %d", len(got), len(objs))
	}
	for i := range objs {
		if got[i] != objs[i] {
			t.Fatalf("object %d mismatch", i)
		}
	}
}

func TestAppendEmpty(t *testing.T) {
	f := newFile(t)
	run, err := f.AppendObjects(nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.Count != 0 {
		t.Fatalf("empty append run = %+v", run)
	}
	got, err := f.ReadRun(run)
	if err != nil || len(got) != 0 {
		t.Fatalf("read empty run: %v, %d objects", err, len(got))
	}
}

func TestOverwriteObjects(t *testing.T) {
	f := newFile(t)
	orig := mkObjs(object.PageCapacity*3, 2)
	run, err := f.AppendObjects(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite with fewer objects; trailing pages must be emptied.
	repl := mkObjs(object.PageCapacity+1, 3)
	used, err := f.OverwriteObjects(run, repl)
	if err != nil {
		t.Fatal(err)
	}
	if used.Count != 2 {
		t.Fatalf("used = %+v", used)
	}
	// Reading the full original run yields only the replacement records.
	got, err := f.ReadRun(run)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(repl) {
		t.Fatalf("read %d, want %d (stale records resurfaced?)", len(got), len(repl))
	}
	for i := range repl {
		if got[i] != repl[i] {
			t.Fatalf("object %d mismatch", i)
		}
	}
}

func TestOverwriteTooMany(t *testing.T) {
	f := newFile(t)
	run, err := f.AppendObjects(mkObjs(object.PageCapacity, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.OverwriteObjects(run, mkObjs(object.PageCapacity+1, 5)); err == nil {
		t.Fatal("overflow overwrite succeeded")
	}
}

func TestReadRuns(t *testing.T) {
	f := newFile(t)
	a := mkObjs(10, 6)
	b := mkObjs(20, 7)
	ra, err := f.AppendObjects(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := f.AppendObjects(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadRuns([]Run{ra, rb})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("read %d", len(got))
	}
	for i := range a {
		if got[i] != a[i] {
			t.Fatalf("run a object %d mismatch", i)
		}
	}
	for i := range b {
		if got[10+i] != b[i] {
			t.Fatalf("run b object %d mismatch", i)
		}
	}
}

func TestWriteIntoReusesPagesThenAppends(t *testing.T) {
	f := newFile(t)
	// Occupy pages 0..4.
	parent, err := f.AppendObjects(mkObjs(object.PageCapacity*5, 8))
	if err != nil {
		t.Fatal(err)
	}
	if parent.Count != 5 {
		t.Fatalf("parent = %+v", parent)
	}
	// Write 7 pages worth: 5 reused + 2 appended.
	objs := mkObjs(object.PageCapacity*7, 9)
	runs, err := f.WriteInto([]Run{parent}, objs)
	if err != nil {
		t.Fatal(err)
	}
	if Pages(runs) != 7 {
		t.Fatalf("runs = %+v", runs)
	}
	// Parent occupied pages [0,5); overflow appended at [5,7) is contiguous,
	// so WriteInto reports a single merged run.
	if len(runs) != 1 || runs[0] != (Run{0, 7}) {
		t.Fatalf("runs = %+v, want single merged run {0 7}", runs)
	}
	if n, _ := f.NumPages(); n != 7 {
		t.Fatalf("file has %d pages, want 7", n)
	}
	got, err := f.ReadRuns(runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(objs) {
		t.Fatalf("read %d, want %d", len(got), len(objs))
	}
	for i := range objs {
		if got[i] != objs[i] {
			t.Fatalf("object %d mismatch", i)
		}
	}
}

func TestWriteIntoMergesAdjacentRuns(t *testing.T) {
	f := newFile(t)
	// Two adjacent reuse runs [0,2) and [2,4).
	if _, err := f.AppendObjects(mkObjs(object.PageCapacity*4, 10)); err != nil {
		t.Fatal(err)
	}
	objs := mkObjs(object.PageCapacity*4, 11)
	runs, err := f.WriteInto([]Run{{0, 2}, {2, 2}}, objs)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0] != (Run{0, 4}) {
		t.Fatalf("adjacent runs not merged: %+v", runs)
	}
}

func TestWriteIntoSmallData(t *testing.T) {
	f := newFile(t)
	if _, err := f.AppendObjects(mkObjs(object.PageCapacity*4, 12)); err != nil {
		t.Fatal(err)
	}
	// One object: should use a single reused page, no appends.
	objs := mkObjs(1, 13)
	runs, err := f.WriteInto([]Run{{0, 4}}, objs)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0] != (Run{0, 1}) {
		t.Fatalf("runs = %+v", runs)
	}
	if n, _ := f.NumPages(); n != 4 {
		t.Fatalf("file grew to %d pages", n)
	}
}

func TestWriteIntoNoReuse(t *testing.T) {
	f := newFile(t)
	objs := mkObjs(5, 14)
	runs, err := f.WriteInto(nil, objs)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Count != 1 {
		t.Fatalf("runs = %+v", runs)
	}
}

func TestReadRunPropagatesDeviceError(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	f := Create(dev, "test")
	run, err := f.AppendObjects(mkObjs(object.PageCapacity*2, 15))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("media error")
	dev.InjectReadFault(f.ID(), 1, boom)
	if _, err := f.ReadRun(run); !errors.Is(err, boom) {
		t.Fatalf("device fault not propagated: %v", err)
	}
}

func TestReadRunDetectsCorruption(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	f := Create(dev, "test")
	run, err := f.AppendObjects(mkObjs(object.PageCapacity, 16))
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the page with garbage directly on the device.
	garbage := make([]byte, simdisk.PageSize)
	for i := range garbage {
		garbage[i] = 0x5A
	}
	if err := dev.WritePage(f.ID(), 0, garbage); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadRun(run); !errors.Is(err, object.ErrBadMagic) {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestPagesHelper(t *testing.T) {
	if got := Pages(nil); got != 0 {
		t.Errorf("Pages(nil) = %d", got)
	}
	if got := Pages([]Run{{0, 3}, {7, 2}}); got != 5 {
		t.Errorf("Pages = %d", got)
	}
}

func TestDelete(t *testing.T) {
	f := newFile(t)
	run, err := f.AppendObjects(mkObjs(3, 17))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Delete(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadRun(run); !errors.Is(err, simdisk.ErrNoSuchFile) {
		t.Fatalf("read after delete: %v", err)
	}
}

// Property: WriteInto over random reuse layouts and sizes always reads back
// exactly what was written, in order, and never grows the file more than the
// overflow requires.
func TestWriteIntoRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	for trial := 0; trial < 60; trial++ {
		f := newFile(t)
		// Build a file with some pages to reuse.
		totalPages := 1 + r.Intn(6)
		if _, err := f.AppendObjects(mkObjs(object.PageCapacity*totalPages, int64(trial))); err != nil {
			t.Fatal(err)
		}
		// Random non-overlapping reuse runs.
		var reuse []Run
		p := int64(0)
		for p < int64(totalPages) {
			cnt := int64(1 + r.Intn(2))
			if p+cnt > int64(totalPages) {
				cnt = int64(totalPages) - p
			}
			if r.Intn(2) == 0 {
				reuse = append(reuse, Run{p, cnt})
			}
			p += cnt
		}
		n := r.Intn(object.PageCapacity * 8)
		objs := mkObjs(n, int64(trial*31))
		runs, err := f.WriteInto(reuse, objs)
		if err != nil {
			t.Fatal(err)
		}
		if Pages(runs) != object.PagesFor(n) {
			t.Fatalf("trial %d: runs hold %d pages, want %d", trial, Pages(runs), object.PagesFor(n))
		}
		got, err := f.ReadRuns(runs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("trial %d: read %d, want %d", trial, len(got), n)
		}
		for i := range objs {
			if got[i] != objs[i] {
				t.Fatalf("trial %d: object %d mismatch", trial, i)
			}
		}
	}
}
