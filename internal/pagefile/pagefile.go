// Package pagefile layers object-record storage on top of the simulated
// disk: files of fixed-size pages holding object records, addressed by runs
// of consecutive pages.
//
// A Run is the unit partitions and merge files are stored in. Reading a run
// is a sequential scan on the device; a partition that was refined in place
// may span two runs (the reused parent pages plus appended overflow), which
// costs one extra seek — exactly the behaviour the paper describes for
// in-place refinement with appended pages.
package pagefile

import (
	"context"
	"fmt"
	"sync"

	"spaceodyssey/internal/object"
	"spaceodyssey/internal/simdisk"
)

// Run is a range of consecutive pages [Start, Start+Count) in one file.
type Run struct {
	Start int64
	Count int64
}

// Pages returns the total page count across runs.
func Pages(runs []Run) int64 {
	var n int64
	for _, r := range runs {
		n += r.Count
	}
	return n
}

// File stores object pages on simulated storage (a single device or a
// device array).
type File struct {
	dev simdisk.Storage
	id  simdisk.FileID
}

// Create allocates a new empty page file on dev with no placement affinity.
func Create(dev simdisk.Storage, name string) *File {
	return CreateInGroup(dev, name, "")
}

// CreateInGroup allocates a new empty page file with an affinity group hint:
// on a DeviceArray the placement policy can co-locate files of one group on
// one member device; on a single Device the hint is ignored.
func CreateInGroup(dev simdisk.Storage, name, group string) *File {
	return &File{dev: dev, id: dev.CreateFileInGroup(name, group)}
}

// Device returns the underlying storage.
func (f *File) Device() simdisk.Storage { return f.dev }

// ID returns the device file handle.
func (f *File) ID() simdisk.FileID { return f.id }

// NumPages returns the file length in pages.
func (f *File) NumPages() (int64, error) { return f.dev.NumPages(f.id) }

// Delete removes the file from the device.
func (f *File) Delete() error { return f.dev.DeleteFile(f.id) }

// AppendObjects writes objs to freshly appended pages and returns the run
// they occupy. An empty slice returns a zero-length run at EOF.
func (f *File) AppendObjects(objs []object.Object) (Run, error) {
	return f.AppendObjectsCtx(nil, objs)
}

// AppendObjectsCtx is AppendObjects with the context threaded to the device,
// so the write I/O is charged to the context's QoS scope. Callers that must
// not leave a partial append pass a non-cancelable context
// (context.WithoutCancel keeps the scope).
func (f *File) AppendObjectsCtx(ctx context.Context, objs []object.Object) (Run, error) {
	end, err := f.dev.NumPages(f.id)
	if err != nil {
		return Run{}, err
	}
	run := Run{Start: end, Count: 0}
	for off := 0; off < len(objs); off += object.PageCapacity {
		hi := off + object.PageCapacity
		if hi > len(objs) {
			hi = len(objs)
		}
		page, err := object.EncodePage(objs[off:hi])
		if err != nil {
			return Run{}, err
		}
		if _, err := f.dev.AppendPageCtx(ctx, f.id, page); err != nil {
			return Run{}, err
		}
		run.Count++
	}
	return run, nil
}

// OverwriteObjects writes objs into the existing pages of run. The objects
// must fit: object.PagesFor(len(objs)) <= run.Count. Pages of the run beyond
// the data are rewritten empty so stale records cannot resurface. It returns
// the sub-run actually holding data.
func (f *File) OverwriteObjects(run Run, objs []object.Object) (Run, error) {
	return f.OverwriteObjectsCtx(nil, run, objs)
}

// OverwriteObjectsCtx is OverwriteObjects with the context threaded to the
// device for QoS charge attribution (see AppendObjectsCtx).
func (f *File) OverwriteObjectsCtx(ctx context.Context, run Run, objs []object.Object) (Run, error) {
	need := object.PagesFor(len(objs))
	if need > run.Count {
		return Run{}, fmt.Errorf("pagefile: %d objects need %d pages, run has %d",
			len(objs), need, run.Count)
	}
	for i := int64(0); i < run.Count; i++ {
		lo := int(i) * object.PageCapacity
		hi := lo + object.PageCapacity
		if lo > len(objs) {
			lo = len(objs)
		}
		if hi > len(objs) {
			hi = len(objs)
		}
		page, err := object.EncodePage(objs[lo:hi])
		if err != nil {
			return Run{}, err
		}
		if err := f.dev.WritePageCtx(ctx, f.id, run.Start+i, page); err != nil {
			return Run{}, err
		}
	}
	return Run{Start: run.Start, Count: need}, nil
}

// ReadRun reads and decodes every object stored in run.
func (f *File) ReadRun(run Run) ([]object.Object, error) {
	return f.ReadRunIntoCtx(nil, nil, run)
}

// ReadRunCtx is ReadRun with cancellation: the device aborts at the page
// boundary where the context expired, charging only the pages actually read.
func (f *File) ReadRunCtx(ctx context.Context, run Run) ([]object.Object, error) {
	return f.ReadRunIntoCtx(ctx, nil, run)
}

// ReadRunInto appends the objects of run to dst.
func (f *File) ReadRunInto(dst []object.Object, run Run) ([]object.Object, error) {
	return f.ReadRunIntoCtx(nil, dst, run)
}

// ReadRunIntoCtx appends the objects of run to dst, aborting on ctx (nil
// disables cancellation).
func (f *File) ReadRunIntoCtx(ctx context.Context, dst []object.Object, run Run) ([]object.Object, error) {
	if run.Count == 0 {
		return dst, nil
	}
	buf, err := f.dev.ReadRunCtx(ctx, f.id, run.Start, run.Count)
	if err != nil {
		return dst, err
	}
	for i := int64(0); i < run.Count; i++ {
		dst, err = object.AppendPageInto(dst, buf[i*simdisk.PageSize:(i+1)*simdisk.PageSize])
		if err != nil {
			return dst, fmt.Errorf("page %d of run %+v: %w", run.Start+i, run, err)
		}
	}
	return dst, nil
}

// ReadRuns reads all objects across runs in order.
func (f *File) ReadRuns(runs []Run) ([]object.Object, error) {
	return f.ReadRunsCtx(nil, runs)
}

// ReadRunsCtx reads all objects across runs in order, aborting between and
// within runs when ctx is canceled (nil disables cancellation).
func (f *File) ReadRunsCtx(ctx context.Context, runs []Run) ([]object.Object, error) {
	return f.ReadRunsIntoCtx(ctx, nil, runs)
}

// ReadRunsIntoCtx appends the objects of every run, in order, to dst — the
// allocation-free variant hot read paths combine with GetObjSlice /
// PutObjSlice so steady-state queries stop allocating a fresh object slice
// per partition read. Returns dst (possibly regrown) even on error.
func (f *File) ReadRunsIntoCtx(ctx context.Context, dst []object.Object, runs []Run) ([]object.Object, error) {
	var err error
	for _, r := range runs {
		dst, err = f.ReadRunIntoCtx(ctx, dst, r)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// objSlicePool recycles the transient object slices of the query read path:
// a partition read decodes into a pooled slice, the query filters what it
// needs (objects are values — filtering copies), and the slice goes back.
var objSlicePool = sync.Pool{
	New: func() any {
		s := make([]object.Object, 0, 4*object.PageCapacity)
		return &s
	},
}

// GetObjSlice returns an empty object slice from the pool.
func GetObjSlice() *[]object.Object {
	return objSlicePool.Get().(*[]object.Object)
}

// PutObjSlice returns a slice obtained from GetObjSlice to the pool. The
// caller must not retain s (or any alias of its backing array) afterwards.
func PutObjSlice(s *[]object.Object) {
	*s = (*s)[:0]
	objSlicePool.Put(s)
}

// WriteInto distributes objs across the free capacity described by reuse
// (pages to overwrite, in order) and appends whatever does not fit. It
// returns the runs now holding the data. This is the primitive behind the
// paper's in-place partition refinement: children reuse the parent's pages
// first, overflow goes to end of file.
func (f *File) WriteInto(reuse []Run, objs []object.Object) ([]Run, error) {
	return f.WriteIntoCtx(nil, reuse, objs)
}

// WriteIntoCtx is WriteInto with the context threaded to the device for QoS
// charge attribution (see AppendObjectsCtx).
func (f *File) WriteIntoCtx(ctx context.Context, reuse []Run, objs []object.Object) ([]Run, error) {
	var out []Run
	remaining := objs
	for _, r := range reuse {
		if len(remaining) == 0 {
			break
		}
		fit := int(r.Count) * object.PageCapacity
		take := len(remaining)
		if take > fit {
			take = fit
		}
		used, err := f.OverwriteObjectsCtx(ctx, r, remaining[:take])
		if err != nil {
			return nil, err
		}
		if used.Count > 0 {
			out = appendRun(out, used)
		}
		remaining = remaining[take:]
	}
	if len(remaining) > 0 {
		run, err := f.AppendObjectsCtx(ctx, remaining)
		if err != nil {
			return nil, err
		}
		if run.Count > 0 {
			out = appendRun(out, run)
		}
	}
	return out, nil
}

// appendRun adds r to runs, merging with the previous run when contiguous.
func appendRun(runs []Run, r Run) []Run {
	if n := len(runs); n > 0 && runs[n-1].Start+runs[n-1].Count == r.Start {
		runs[n-1].Count += r.Count
		return runs
	}
	return append(runs, r)
}
