// Package datagen synthesizes the spatial datasets the experiments run on.
//
// The paper uses 10 real Human Brain Project datasets: subsets of neurons
// (3D surface meshes) inside the same brain volume, ~5 GB each. We cannot
// ship that data, so this package generates the closest synthetic
// equivalent: datasets of small axis-aligned objects whose centers follow a
// clustered spatial distribution (neuron morphologies concentrate in
// columns and layers), all sharing one bounding "brain" volume. The object
// schema (id, dataset, center, extent) and the spatial skew — which drive
// octree refinement and merge-file behaviour — are preserved; absolute
// sizes are scaled by NumObjects so experiments run anywhere.
package datagen

import (
	"fmt"
	"math/rand"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
)

// Layout selects the spatial distribution of object centers.
type Layout int

const (
	// Clustered concentrates objects around Gaussian cluster centers —
	// the neuroscience-like default.
	Clustered Layout = iota
	// Uniform spreads objects uniformly over the volume.
	Uniform
	// Filamentary strings objects along random line segments, approximating
	// elongated structures (axons, astronomy filaments).
	Filamentary
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case Clustered:
		return "clustered"
	case Uniform:
		return "uniform"
	case Filamentary:
		return "filamentary"
	}
	return fmt.Sprintf("Layout(%d)", int(l))
}

// Config parametrizes dataset generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// NumObjects is the number of objects per dataset.
	NumObjects int
	// Bounds is the shared volume (the "brain"); defaults to [0,1]^3.
	Bounds geom.Box
	// Layout selects the spatial distribution (default Clustered).
	Layout Layout
	// Clusters is the number of spatial clusters (Clustered/Filamentary);
	// default 20.
	Clusters int
	// ClusterSigmaFrac is the Gaussian sigma of a cluster as a fraction of
	// the volume's longest side; default 0.03.
	ClusterSigmaFrac float64
	// ObjectSizeFrac is the mean object half-extent as a fraction of the
	// volume's longest side; default 0.001 (tiny mesh fragments).
	ObjectSizeFrac float64
	// SizeJitter is the multiplicative jitter on object size in [0,1);
	// default 0.5.
	SizeJitter float64
	// BackgroundFrac is the fraction of objects placed uniformly regardless
	// of Layout, modelling diffuse tissue between clusters; default 0.2 for
	// Clustered/Filamentary, ignored for Uniform. Set negative to disable.
	BackgroundFrac float64
	// ClusterSeed, when non-zero, fixes the cluster (or filament) positions
	// independently of Seed. Datasets generated with the same ClusterSeed
	// share their anatomy — like the paper's captures of the same brain by
	// different instruments — while object placement still varies by Seed.
	ClusterSeed int64
}

// withDefaults fills zero fields with defaults.
func (c Config) withDefaults() Config {
	if c.Bounds.Volume() == 0 {
		c.Bounds = geom.UnitBox()
	}
	if c.NumObjects < 0 {
		c.NumObjects = 0
	}
	if c.Clusters <= 0 {
		c.Clusters = 20
	}
	if c.ClusterSigmaFrac <= 0 {
		c.ClusterSigmaFrac = 0.03
	}
	if c.ObjectSizeFrac <= 0 {
		c.ObjectSizeFrac = 0.001
	}
	if c.SizeJitter <= 0 || c.SizeJitter >= 1 {
		c.SizeJitter = 0.5
	}
	if c.BackgroundFrac == 0 {
		c.BackgroundFrac = 0.2
	}
	if c.BackgroundFrac < 0 {
		c.BackgroundFrac = 0
	}
	return c
}

// Generate produces one dataset according to cfg, tagged with dataset id ds.
// Object centers always lie inside cfg.Bounds; object boxes may protrude
// slightly past the boundary, as real meshes do.
func Generate(cfg Config, ds object.DatasetID) []object.Object {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	side := cfg.Bounds.LongestSide()
	sigma := cfg.ClusterSigmaFrac * side
	meanHE := cfg.ObjectSizeFrac * side / 2

	// Anatomy (cluster and filament positions) may come from a dedicated
	// seed so multiple datasets share it.
	anatomyRand := r
	if cfg.ClusterSeed != 0 {
		anatomyRand = rand.New(rand.NewSource(cfg.ClusterSeed))
	}
	var centers []geom.Vec
	var filaments [][2]geom.Vec
	switch cfg.Layout {
	case Clustered:
		centers = make([]geom.Vec, cfg.Clusters)
		for i := range centers {
			centers[i] = uniformPoint(anatomyRand, cfg.Bounds)
		}
	case Filamentary:
		filaments = make([][2]geom.Vec, cfg.Clusters)
		for i := range filaments {
			filaments[i] = [2]geom.Vec{uniformPoint(anatomyRand, cfg.Bounds), uniformPoint(anatomyRand, cfg.Bounds)}
		}
	}

	sample := func() geom.Vec {
		if cfg.Layout != Uniform && r.Float64() < cfg.BackgroundFrac {
			return uniformPoint(r, cfg.Bounds) // diffuse background object
		}
		switch cfg.Layout {
		case Clustered:
			base := centers[r.Intn(len(centers))]
			return clampPoint(gaussianAround(r, base, sigma), cfg.Bounds)
		case Filamentary:
			f := filaments[r.Intn(len(filaments))]
			t := r.Float64()
			along := f[0].Add(f[1].Sub(f[0]).Mul(t))
			return clampPoint(gaussianAround(r, along, sigma/3), cfg.Bounds)
		default:
			return uniformPoint(r, cfg.Bounds)
		}
	}

	objs := make([]object.Object, cfg.NumObjects)
	for i := range objs {
		c := sample()
		jitter := 1 + cfg.SizeJitter*(2*r.Float64()-1)
		he := meanHE * jitter
		objs[i] = object.Object{
			ID:         uint64(i),
			Dataset:    ds,
			Center:     c,
			HalfExtent: geom.V(he*(0.5+r.Float64()), he*(0.5+r.Float64()), he*(0.5+r.Float64())),
		}
	}
	return objs
}

// GenerateDatasets produces n datasets sharing cfg.Bounds with dataset ids
// 0..n-1. The datasets share their anatomy (cluster positions) — they are
// captures of the same brain region by different instruments — while each
// gets a distinct object-placement seed. Set cfg.ClusterSeed explicitly to
// control the shared anatomy, or generate datasets individually with
// distinct ClusterSeeds for unrelated volumes.
func GenerateDatasets(cfg Config, n int) [][]object.Object {
	out := make([][]object.Object, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed*1000003 + int64(i)*7919
		if c.ClusterSeed == 0 {
			c.ClusterSeed = cfg.Seed*31 + 17
		}
		out[i] = Generate(c, object.DatasetID(i))
	}
	return out
}

// Anatomy returns the cluster centers (or filament endpoints, flattened)
// the configuration generates objects around. Workload generators use it to
// aim query clusters at populated areas, the way scientists query regions
// where structures actually exist.
func Anatomy(cfg Config) []geom.Vec {
	cfg = cfg.withDefaults()
	seed := cfg.ClusterSeed
	if seed == 0 {
		seed = cfg.Seed
	}
	r := rand.New(rand.NewSource(seed))
	switch cfg.Layout {
	case Filamentary:
		out := make([]geom.Vec, 0, 2*cfg.Clusters)
		for i := 0; i < cfg.Clusters; i++ {
			a, b := uniformPoint(r, cfg.Bounds), uniformPoint(r, cfg.Bounds)
			out = append(out, a.Add(b).Mul(0.5)) // filament midpoint
		}
		return out
	case Uniform:
		return nil
	default:
		out := make([]geom.Vec, cfg.Clusters)
		for i := range out {
			out[i] = uniformPoint(r, cfg.Bounds)
		}
		return out
	}
}

// uniformPoint samples a point uniformly inside b.
func uniformPoint(r *rand.Rand, b geom.Box) geom.Vec {
	s := b.Size()
	return geom.Vec{
		X: b.Min.X + r.Float64()*s.X,
		Y: b.Min.Y + r.Float64()*s.Y,
		Z: b.Min.Z + r.Float64()*s.Z,
	}
}

// gaussianAround samples an isotropic Gaussian with the given sigma.
func gaussianAround(r *rand.Rand, mean geom.Vec, sigma float64) geom.Vec {
	return geom.Vec{
		X: mean.X + r.NormFloat64()*sigma,
		Y: mean.Y + r.NormFloat64()*sigma,
		Z: mean.Z + r.NormFloat64()*sigma,
	}
}

// clampPoint clamps p into b.
func clampPoint(p geom.Vec, b geom.Box) geom.Vec {
	return p.Max(b.Min).Min(b.Max)
}
