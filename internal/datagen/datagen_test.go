package datagen

import (
	"math"
	"testing"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, NumObjects: 500}
	a := Generate(cfg, 1)
	b := Generate(cfg, 1)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("object %d differs between identical-seed runs", i)
		}
	}
	c := Generate(Config{Seed: 43, NumObjects: 500}, 1)
	same := 0
	for i := range a {
		if a[i].Center == c[i].Center {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateRespectsBoundsAndIDs(t *testing.T) {
	bounds := geom.NewBox(geom.V(-10, 0, 5), geom.V(10, 40, 25))
	for _, layout := range []Layout{Clustered, Uniform, Filamentary} {
		cfg := Config{Seed: 7, NumObjects: 2000, Bounds: bounds, Layout: layout}
		objs := Generate(cfg, 4)
		if len(objs) != 2000 {
			t.Fatalf("%v: %d objects", layout, len(objs))
		}
		for i, o := range objs {
			if o.ID != uint64(i) {
				t.Fatalf("%v: object %d has ID %d", layout, i, o.ID)
			}
			if o.Dataset != 4 {
				t.Fatalf("%v: object %d has dataset %d", layout, i, o.Dataset)
			}
			if !bounds.ContainsPoint(o.Center) {
				t.Fatalf("%v: center %v outside bounds", layout, o.Center)
			}
			if err := o.Validate(); err != nil {
				t.Fatalf("%v: %v", layout, err)
			}
			if o.HalfExtent.X <= 0 || o.HalfExtent.Y <= 0 || o.HalfExtent.Z <= 0 {
				t.Fatalf("%v: degenerate half-extent %v", layout, o.HalfExtent)
			}
		}
	}
}

func TestObjectsAreSmall(t *testing.T) {
	cfg := Config{Seed: 1, NumObjects: 1000, ObjectSizeFrac: 0.001}
	objs := Generate(cfg, 0)
	side := geom.UnitBox().LongestSide()
	for _, o := range objs {
		if o.HalfExtent.Len() > 0.01*side {
			t.Fatalf("object half-extent %v too large for frac 0.001", o.HalfExtent)
		}
	}
}

func TestClusteredIsSkewed(t *testing.T) {
	// Clustered data must concentrate mass: partition space into 8 octants
	// and check the occupancy spread far exceeds uniform.
	spread := func(layout Layout) float64 {
		cfg := Config{Seed: 11, NumObjects: 4000, Layout: layout, Clusters: 5}
		objs := Generate(cfg, 0)
		var counts [8]int
		b := geom.UnitBox()
		c := b.Center()
		for _, o := range objs {
			i := 0
			if o.Center.X >= c.X {
				i |= 1
			}
			if o.Center.Y >= c.Y {
				i |= 2
			}
			if o.Center.Z >= c.Z {
				i |= 4
			}
			counts[i]++
		}
		mean := float64(len(objs)) / 8
		var chi2 float64
		for _, n := range counts {
			d := float64(n) - mean
			chi2 += d * d / mean
		}
		return chi2
	}
	uni := spread(Uniform)
	clu := spread(Clustered)
	if clu < 10*uni {
		t.Fatalf("clustered chi2 %.1f not ≫ uniform chi2 %.1f", clu, uni)
	}
}

func TestGenerateDatasetsDistinct(t *testing.T) {
	cfg := Config{Seed: 5, NumObjects: 300}
	dss := GenerateDatasets(cfg, 4)
	if len(dss) != 4 {
		t.Fatalf("%d datasets", len(dss))
	}
	for i, ds := range dss {
		if len(ds) != 300 {
			t.Fatalf("dataset %d has %d objects", i, len(ds))
		}
		for _, o := range ds {
			if o.Dataset != object.DatasetID(i) {
				t.Fatalf("dataset %d contains object tagged %d", i, o.Dataset)
			}
		}
	}
	// Different datasets must differ spatially.
	if dss[0][0].Center == dss[1][0].Center {
		t.Fatal("datasets 0 and 1 share object positions")
	}
}

func TestDefaults(t *testing.T) {
	got := (Config{}).withDefaults()
	if got.Bounds != geom.UnitBox() {
		t.Errorf("default bounds = %v", got.Bounds)
	}
	if got.Clusters != 20 || got.ClusterSigmaFrac != 0.03 ||
		got.ObjectSizeFrac != 0.001 || got.SizeJitter != 0.5 {
		t.Errorf("defaults = %+v", got)
	}
	if len(Generate(Config{NumObjects: -5}, 0)) != 0 {
		t.Error("negative NumObjects produced objects")
	}
}

func TestLayoutString(t *testing.T) {
	if Clustered.String() != "clustered" || Uniform.String() != "uniform" ||
		Filamentary.String() != "filamentary" {
		t.Error("layout names wrong")
	}
	if Layout(99).String() != "Layout(99)" {
		t.Error("unknown layout name wrong")
	}
}

func TestAnatomy(t *testing.T) {
	bounds := geom.NewBox(geom.V(0, 0, 0), geom.V(4, 4, 4))
	cfg := Config{Seed: 9, Clusters: 7, Bounds: bounds}

	// Clustered anatomy: one center per cluster, inside bounds, and stable
	// across calls.
	a := Anatomy(cfg)
	b := Anatomy(cfg)
	if len(a) != 7 {
		t.Fatalf("%d anatomy points", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("anatomy not deterministic")
		}
		if !bounds.ContainsPoint(a[i]) {
			t.Fatalf("anatomy point %v outside bounds", a[i])
		}
	}

	// ClusterSeed overrides Seed, matching GenerateDatasets' sharing: two
	// configs with different Seeds but equal ClusterSeeds agree.
	c1 := cfg
	c1.Seed, c1.ClusterSeed = 100, 55
	c2 := cfg
	c2.Seed, c2.ClusterSeed = 200, 55
	x, y := Anatomy(c1), Anatomy(c2)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("shared ClusterSeed produced different anatomy")
		}
	}

	// Filamentary anatomy returns midpoints; uniform has none.
	fil := cfg
	fil.Layout = Filamentary
	if got := Anatomy(fil); len(got) != 7 {
		t.Fatalf("filamentary anatomy = %d points", len(got))
	}
	uni := cfg
	uni.Layout = Uniform
	if got := Anatomy(uni); got != nil {
		t.Fatalf("uniform anatomy = %v", got)
	}
}

func TestAnatomyMatchesGeneratedClusters(t *testing.T) {
	// Objects generated with a shared ClusterSeed must concentrate near the
	// anatomy points Anatomy reports.
	cfg := Config{Seed: 3, NumObjects: 3000, Clusters: 5, ClusterSeed: 77,
		BackgroundFrac: -1}
	objs := Generate(cfg, 0)
	centers := Anatomy(cfg)
	near := 0
	for _, o := range objs {
		for _, c := range centers {
			if o.Center.Dist(c) < 0.15 {
				near++
				break
			}
		}
	}
	if frac := float64(near) / float64(len(objs)); frac < 0.8 {
		t.Fatalf("only %.0f%% of objects near reported anatomy", frac*100)
	}
}

func TestGaussianClampedNotNaN(t *testing.T) {
	cfg := Config{Seed: 3, NumObjects: 1000, Layout: Clustered,
		ClusterSigmaFrac: 5} // huge sigma forces clamping
	objs := Generate(cfg, 0)
	b := geom.UnitBox()
	onBoundary := 0
	for _, o := range objs {
		if math.IsNaN(o.Center.X) {
			t.Fatal("NaN center")
		}
		if !b.ContainsPoint(o.Center) {
			t.Fatalf("center %v escaped bounds", o.Center)
		}
		if o.Center.X == 0 || o.Center.X == 1 {
			onBoundary++
		}
	}
	if onBoundary == 0 {
		t.Error("huge sigma produced no clamped points; clamping untested")
	}
}
