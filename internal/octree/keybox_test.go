package octree

import (
	"math/rand"
	"testing"

	"spaceodyssey/internal/geom"
)

// TestKeyBox pins the cell-box geometry consumers of partition reads rely
// on: the root key spans the whole bounds, and a child's box is its slice
// of the parent's.
func TestKeyBox(t *testing.T) {
	bounds := geom.UnitBox()
	if got := (Key{}).Box(bounds, 2); got != bounds {
		t.Fatalf("root box = %v, want the full bounds", got)
	}
	got := Key{Level: 1, X: 1, Y: 0, Z: 0}.Box(bounds, 2)
	want := geom.NewBox(geom.V(0.5, 0, 0), geom.V(1, 0.5, 0.5))
	if got != want {
		t.Fatalf("cell (1,1,0,0) box = %v, want %v", got, want)
	}
}

// Property: for random descent paths, every key's box is contained in its
// parent's, and the cell's center maps back to the same key through the
// box's geometry (the round trip the containment probe depends on).
func TestKeyBoxNesting(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	bounds := geom.NewBox(geom.V(-1, 0, 2), geom.V(3, 2, 4)) // non-unit bounds
	for trial := 0; trial < 200; trial++ {
		fanout := []int{2, 3, 4}[r.Intn(3)]
		k := Key{}
		box := k.Box(bounds, fanout)
		if box != bounds {
			t.Fatalf("trial %d: root box %v != bounds", trial, box)
		}
		for lvl := 0; lvl < 5; lvl++ {
			child := k.Child(fanout, r.Intn(fanout), r.Intn(fanout), r.Intn(fanout))
			cbox := child.Box(bounds, fanout)
			// Cell walls are computed independently per level, so a child
			// wall may land an ulp outside the parent's — geometrically the
			// same wall. Nesting must hold within that float tolerance.
			if !box.Expand(geom.Splat(1e-9)).Contains(cbox) {
				t.Fatalf("trial %d level %d: child box %v escapes parent %v",
					trial, lvl, cbox, box)
			}
			if !cbox.ContainsPoint(cbox.Center()) {
				t.Fatalf("trial %d level %d: degenerate child box %v", trial, lvl, cbox)
			}
			k, box = child, cbox
		}
	}
}
