package octree

import (
	"testing"

	"spaceodyssey/internal/geom"
)

// deepen refines the tree along a query until some partition reaches at
// least the given level, returning one such leaf.
func deepen(t *testing.T, tree *Tree, level uint8) *Partition {
	t.Helper()
	q := geom.Cube(geom.V(0.3, 0.3, 0.3), 1e-4)
	for i := 0; i < 20; i++ {
		if _, err := tree.Query(q, nil); err != nil {
			t.Fatal(err)
		}
		for _, p := range tree.Lookup(q) {
			if p.Key().Level >= level {
				return p
			}
		}
	}
	t.Fatalf("could not refine to level %d", level)
	return nil
}

func TestLeafCovering(t *testing.T) {
	tree, _, _ := testTree(t, 4000, DefaultConfig(), 41)
	if tree.LeafCovering(Key{Level: 1}) != nil {
		t.Fatal("unbuilt tree returned covering leaf")
	}
	if err := tree.EnsureBuilt(); err != nil {
		t.Fatal(err)
	}
	// A level-1 key is covered by exactly the leaf at that key.
	leaves := tree.Lookup(tree.Bounds())
	l1 := leaves[0]
	if got := tree.LeafCovering(l1.Key()); got != l1 {
		t.Fatalf("covering of level-1 key = %v", got)
	}
	// A deeper key under an unrefined leaf is covered by that leaf.
	child := l1.Key().Child(tree.FanoutPerDim(), 0, 0, 0)
	if got := tree.LeafCovering(child); got != l1 {
		t.Fatalf("covering of child key = %v, want parent leaf", got)
	}
	// Refine a leaf; its own key is no longer covered by a single leaf
	// deeper than it... but covering of the refined key must now return nil
	// only for keys ABOVE the leaves. The refined cell itself is now
	// internal: LeafCovering returns nil for it.
	deep := deepen(t, tree, 2)
	refinedParent := deep.Key().Ancestor(1, tree.FanoutPerDim())
	if got := tree.LeafCovering(refinedParent); got != nil {
		t.Fatalf("covering of refined internal cell = %v, want nil", got)
	}
}

func TestRefineTo(t *testing.T) {
	tree, _, _ := testTree(t, 4000, DefaultConfig(), 42)
	if _, err := tree.RefineTo(Key{Level: 1}); err == nil {
		t.Fatal("RefineTo on unbuilt tree succeeded")
	}
	if err := tree.EnsureBuilt(); err != nil {
		t.Fatal(err)
	}
	// Pick a populated level-1 leaf and force two levels of refinement.
	var target *Partition
	for _, p := range tree.Lookup(tree.Bounds()) {
		if p.Count() > 100 {
			target = p
			break
		}
	}
	if target == nil {
		t.Fatal("no populated leaf")
	}
	k := tree.FanoutPerDim()
	deepKey := target.Key().Child(k, 1, 1, 1).Child(k, 2, 2, 2)
	before := tree.NumObjects()
	leaf, err := tree.RefineTo(deepKey)
	if err != nil {
		t.Fatal(err)
	}
	if leaf.Key() != deepKey {
		t.Fatalf("RefineTo returned leaf at %v, want %v", leaf.Key(), deepKey)
	}
	if tree.LeafAt(deepKey) != leaf {
		t.Fatal("LeafAt disagrees after RefineTo")
	}
	if tree.NumObjects() != before {
		t.Fatal("RefineTo lost objects")
	}
	// Idempotent.
	again, err := tree.RefineTo(deepKey)
	if err != nil || again != leaf {
		t.Fatalf("second RefineTo: %v %v", again, err)
	}
	// RefineTo above an already-deeper area fails.
	if _, err := tree.RefineTo(target.Key()); err == nil {
		t.Fatal("RefineTo on internal cell succeeded")
	}
	// MaxDepth guard.
	cfg := DefaultConfig()
	cfg.MaxDepth = 1
	shallow, _, _ := testTree(t, 500, cfg, 43)
	if err := shallow.EnsureBuilt(); err != nil {
		t.Fatal(err)
	}
	tooDeep := Key{Level: 3, X: 1, Y: 1, Z: 1}
	if _, err := shallow.RefineTo(tooDeep); err == nil {
		t.Fatal("RefineTo past MaxDepth succeeded")
	}
}

func TestLeavesUnder(t *testing.T) {
	tree, _, _ := testTree(t, 4000, DefaultConfig(), 44)
	if tree.LeavesUnder(Key{}) != nil {
		t.Fatal("unbuilt tree returned leaves")
	}
	if err := tree.EnsureBuilt(); err != nil {
		t.Fatal(err)
	}
	// Under the root: all leaves.
	all := tree.LeavesUnder(Key{})
	if len(all) != tree.NumLeaves() {
		t.Fatalf("LeavesUnder(root) = %d, want %d", len(all), tree.NumLeaves())
	}
	// Refine an area and collect under its level-1 ancestor: counts must
	// equal the original leaf's objects.
	deep := deepen(t, tree, 2)
	anc := deep.Key().Ancestor(1, tree.FanoutPerDim())
	under := tree.LeavesUnder(anc)
	if len(under) < 2 {
		t.Fatalf("refined cell has %d leaves under it", len(under))
	}
	total := 0
	for _, p := range under {
		if !p.IsLeaf() {
			t.Fatal("LeavesUnder returned non-leaf")
		}
		if !anc.AncestorOf(p.Key(), tree.FanoutPerDim()) {
			t.Fatalf("leaf %v not under %v", p.Key(), anc)
		}
		total += p.Count()
	}
	// Under a key deeper than the local tree: nil.
	var coarse *Partition
	for _, p := range tree.Lookup(tree.Bounds()) {
		if p.Key().Level == 1 && p.IsLeaf() {
			coarse = p
			break
		}
	}
	if coarse != nil {
		sub := coarse.Key().Child(tree.FanoutPerDim(), 0, 0, 0)
		if got := tree.LeavesUnder(sub); got != nil {
			t.Fatalf("LeavesUnder below a leaf = %v", got)
		}
	}
}
