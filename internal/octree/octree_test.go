package octree

import (
	"math/rand"
	"testing"

	"spaceodyssey/internal/datagen"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/rawfile"
	"spaceodyssey/internal/simdisk"
)

// testTree builds a tree over a synthetic dataset.
func testTree(t *testing.T, n int, cfg Config, seed int64) (*Tree, *rawfile.Raw, *simdisk.Device) {
	t.Helper()
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	objs := datagen.Generate(datagen.Config{
		Seed: seed, NumObjects: n, Clusters: 5,
	}, 1)
	raw, err := rawfile.Write(dev, "ds1", 1, objs)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := New(dev, raw, geom.UnitBox(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tree, raw, dev
}

func TestConfigValidation(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	raw, err := rawfile.Write(dev, "d", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(dev, raw, geom.UnitBox(), Config{PartitionsPerLevel: 10}); err == nil {
		t.Error("ppl=10 accepted (not a cube)")
	}
	if _, err := New(dev, raw, geom.UnitBox(), Config{PartitionsPerLevel: 1}); err == nil {
		t.Error("ppl=1 accepted")
	}
	if _, err := New(dev, raw, geom.Box{}, DefaultConfig()); err == nil {
		t.Error("zero-volume bounds accepted")
	}
	for _, ppl := range []int{8, 27, 64, 125} {
		if _, err := New(dev, raw, geom.UnitBox(), Config{PartitionsPerLevel: ppl}); err != nil {
			t.Errorf("ppl=%d rejected: %v", ppl, err)
		}
	}
}

func TestLazyBuild(t *testing.T) {
	tree, _, dev := testTree(t, 1000, DefaultConfig(), 1)
	dev.ResetStats()
	if tree.Built() {
		t.Fatal("tree built before first use")
	}
	if got := tree.Lookup(geom.UnitBox()); got != nil {
		t.Fatal("Lookup on unbuilt tree returned partitions")
	}
	if st := dev.Stats(); st.PageReads != 0 {
		t.Fatal("unbuilt tree performed I/O")
	}
	if err := tree.EnsureBuilt(); err != nil {
		t.Fatal(err)
	}
	if !tree.Built() || tree.NumObjects() != 1000 {
		t.Fatalf("built=%v objects=%d", tree.Built(), tree.NumObjects())
	}
	if tree.NumLeaves() != 64 {
		t.Fatalf("level-0 leaves = %d, want ppl=64", tree.NumLeaves())
	}
	// Idempotent.
	dev.ResetStats()
	if err := tree.EnsureBuilt(); err != nil {
		t.Fatal(err)
	}
	if st := dev.Stats(); st.PageReads != 0 || st.PageWrites != 0 {
		t.Fatal("second EnsureBuilt performed I/O")
	}
}

// leafInvariants checks that leaves tile the bounds, are disjoint, and
// together hold exactly the tree's objects.
func leafInvariants(t *testing.T, tree *Tree) {
	t.Helper()
	leaves := tree.Lookup(tree.Bounds())
	var vol float64
	total := 0
	seen := make(map[uint64]int)
	for _, p := range leaves {
		if !p.IsLeaf() {
			t.Fatal("Lookup returned non-leaf")
		}
		vol += p.Box().Volume()
		total += p.Count()
		objs, err := tree.ReadPartition(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(objs) != p.Count() {
			t.Fatalf("partition %v count %d but stores %d", p.Key(), p.Count(), len(objs))
		}
		for _, o := range objs {
			seen[o.ID]++
			if !p.Box().ContainsPointHalfOpen(o.Center) && !onUpperBoundary(o.Center, p.Box(), tree.Bounds()) {
				t.Fatalf("object %d center %v outside its partition %v", o.ID, o.Center, p.Box())
			}
		}
	}
	if total != tree.NumObjects() {
		t.Fatalf("leaves hold %d objects, tree has %d", total, tree.NumObjects())
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("object %d stored %d times", id, n)
		}
	}
	if b := tree.Bounds().Volume(); vol < b*(1-1e-9) || vol > b*(1+1e-9) {
		t.Fatalf("leaf volumes sum to %g, bounds volume %g", vol, b)
	}
	if len(leaves) != tree.NumLeaves() {
		t.Fatalf("Lookup found %d leaves, NumLeaves=%d", len(leaves), tree.NumLeaves())
	}
}

// onUpperBoundary allows centers sitting exactly on the global upper faces,
// which CellIndex clamps into the last cell.
func onUpperBoundary(p geom.Vec, cell, bounds geom.Box) bool {
	return (p.X == bounds.Max.X && cell.Max.X == bounds.Max.X) ||
		(p.Y == bounds.Max.Y && cell.Max.Y == bounds.Max.Y) ||
		(p.Z == bounds.Max.Z && cell.Max.Z == bounds.Max.Z)
}

func TestLevel0Invariants(t *testing.T) {
	tree, _, _ := testTree(t, 3000, DefaultConfig(), 2)
	if err := tree.EnsureBuilt(); err != nil {
		t.Fatal(err)
	}
	leafInvariants(t, tree)
}

func TestQueryMatchesNaiveScan(t *testing.T) {
	tree, raw, _ := testTree(t, 5000, DefaultConfig(), 3)
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		side := 0.02 + r.Float64()*0.2
		c := geom.V(r.Float64(), r.Float64(), r.Float64())
		q, ok := geom.Cube(c, side).Clip(geom.UnitBox())
		if !ok {
			continue
		}
		res, err := tree.Query(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		var want []object.Object
		if err := raw.ScanRange(q, func(o object.Object) error {
			want = append(want, o)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		got := append([]object.Object(nil), res.Objects...)
		if !sameObjects(got, want) {
			t.Fatalf("trial %d: query %v returned %d objects, naive %d",
				trial, q, len(res.Objects), len(want))
		}
	}
	// After refinement storms the invariants must still hold.
	leafInvariants(t, tree)
}

func sameObjects(a, b []object.Object) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[object.Object]int, len(a))
	for _, o := range a {
		m[o]++
	}
	for _, o := range b {
		m[o]--
		if m[o] < 0 {
			return false
		}
	}
	return true
}

func TestRefinementOneLevelPerQuery(t *testing.T) {
	cfg := DefaultConfig()
	tree, _, _ := testTree(t, 4000, cfg, 5)
	q := geom.Cube(geom.V(0.5, 0.5, 0.5), 0.01)

	// First query builds level 0, then refines the hit partitions once.
	res, err := tree.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Built() {
		t.Fatal("query did not build")
	}
	first := tree.Refinements
	if res.Refined != first {
		t.Fatalf("result.Refined=%d, tree.Refinements=%d", res.Refined, first)
	}

	// The same query again refines at most one more level of the hit cells.
	prevLeaves := tree.NumLeaves()
	res2, err := tree.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Refined > 8 { // a tiny query touches at most 2^3 partitions
		t.Fatalf("second query refined %d partitions", res2.Refined)
	}
	grown := tree.NumLeaves() - prevLeaves
	if grown > res2.Refined*64 {
		t.Fatalf("leaves grew by %d after %d refinements", grown, res2.Refined)
	}
}

func TestRefinementConverges(t *testing.T) {
	cfg := DefaultConfig()
	tree, _, _ := testTree(t, 5000, cfg, 6)
	q := geom.Cube(geom.V(0.25, 0.25, 0.25), 0.02)
	var last int
	for i := 0; i < 12; i++ {
		res, err := tree.Query(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		last = res.Refined
	}
	if last != 0 {
		t.Fatalf("still refining after 12 identical queries (refined=%d)", last)
	}
	// Converged partitions obey the rt rule.
	ext := q.Expand(tree.MaxExtent())
	for _, p := range tree.Lookup(ext) {
		if tree.NeedsRefinement(p, q.Volume()) {
			t.Fatalf("partition %v still needs refinement after convergence", p.Key())
		}
	}
	leafInvariants(t, tree)
}

func TestConvergenceMatchesTargetLevels(t *testing.T) {
	cfg := DefaultConfig() // rt=4, ppl=64
	tree, _, _ := testTree(t, 20000, cfg, 7)
	if err := tree.EnsureBuilt(); err != nil {
		t.Fatal(err)
	}
	vp := 1.0 / 64 // level-1 partition volume over the unit box
	vq := 1e-5
	want := tree.TargetLevels(vp, vq)
	// log_64((1/64)/(1e-5*4)) = log_64(390) ≈ 1.43 → 2 levels.
	if want != 2 {
		t.Fatalf("TargetLevels = %d, want 2", want)
	}
	q := geom.Cube(geom.V(0.3, 0.3, 0.3), cbrt(vq))
	hits := 0
	for ; hits < 20; hits++ {
		res, err := tree.Query(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Refined == 0 && hits > 0 {
			break
		}
	}
	if hits > want+1 {
		t.Fatalf("converged after %d queries, equation predicts %d", hits, want)
	}
}

func cbrt(v float64) float64 {
	s := 1.0
	for i := 0; i < 80; i++ {
		s = s - (s*s*s-v)/(3*s*s)
	}
	return s
}

func TestTargetLevelsEdges(t *testing.T) {
	tree, _, _ := testTree(t, 10, DefaultConfig(), 8)
	if got := tree.TargetLevels(0, 1); got != 0 {
		t.Errorf("TargetLevels(0,1) = %d", got)
	}
	if got := tree.TargetLevels(1, 0); got != 0 {
		t.Errorf("TargetLevels(1,0) = %d", got)
	}
	if got := tree.TargetLevels(1, 1); got != 0 {
		t.Errorf("TargetLevels(1,1) = %d (ratio <= 1)", got)
	}
	if got := tree.TargetLevels(64, 1.0/4); got != 1 {
		t.Errorf("TargetLevels(64, 0.25) = %d, want 1", got)
	}
}

func TestEmptyPartitionsNeverRefine(t *testing.T) {
	// A dataset confined to one octant leaves other cells empty; queries
	// into empty space must not refine anything.
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	objs := datagen.Generate(datagen.Config{
		Seed: 9, NumObjects: 500,
		Bounds:         geom.NewBox(geom.V(0, 0, 0), geom.V(0.1, 0.1, 0.1)),
		BackgroundFrac: -1,
	}, 1)
	raw, err := rawfile.Write(dev, "d", 1, objs)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := New(dev, raw, geom.UnitBox(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Cube(geom.V(0.9, 0.9, 0.9), 0.01)
	for i := 0; i < 3; i++ {
		res, err := tree.Query(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Objects) != 0 {
			t.Fatal("objects found in empty space")
		}
		if res.Refined != 0 {
			t.Fatal("empty partition was refined")
		}
	}
}

func TestMaxDepthBoundsRefinement(t *testing.T) {
	cfg := Config{RefinementThreshold: 4, PartitionsPerLevel: 8, MaxDepth: 2}
	tree, _, _ := testTree(t, 2000, cfg, 10)
	q := geom.Cube(geom.V(0.5, 0.5, 0.5), 1e-4)
	for i := 0; i < 10; i++ {
		if _, err := tree.Query(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range tree.Lookup(tree.Bounds()) {
		if int(p.Key().Level) > 2 {
			t.Fatalf("partition at level %d exceeds MaxDepth 2", p.Key().Level)
		}
	}
}

func TestInPlaceReuseBoundsFileGrowth(t *testing.T) {
	tree, raw, _ := testTree(t, 5000, DefaultConfig(), 11)
	if err := tree.EnsureBuilt(); err != nil {
		t.Fatal(err)
	}
	after0, err := tree.File().NumPages()
	if err != nil {
		t.Fatal(err)
	}
	// Drive many refinements.
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 40; i++ {
		c := geom.V(r.Float64(), r.Float64(), r.Float64())
		q, ok := geom.Cube(c, 0.01).Clip(geom.UnitBox())
		if !ok {
			continue
		}
		if _, err := tree.Query(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	afterN, err := tree.File().NumPages()
	if err != nil {
		t.Fatal(err)
	}
	// Data pages needed: one page can be wasted per non-empty leaf, but
	// growth must stay within a small multiple of the raw size thanks to
	// page reuse (without reuse it would grow per refinement).
	if afterN > after0*6 {
		t.Fatalf("file grew from %d to %d pages despite in-place reuse", after0, afterN)
	}
	if tree.Refinements == 0 {
		t.Fatal("no refinements happened; growth test vacuous")
	}
	_ = raw
}

func TestLeafAt(t *testing.T) {
	tree, _, _ := testTree(t, 3000, DefaultConfig(), 13)
	if tree.LeafAt(Key{Level: 1}) != nil {
		t.Fatal("LeafAt on unbuilt tree returned partition")
	}
	if err := tree.EnsureBuilt(); err != nil {
		t.Fatal(err)
	}
	// Every level-1 cell is a leaf right after build.
	leaves := tree.Lookup(tree.Bounds())
	for _, p := range leaves {
		got := tree.LeafAt(p.Key())
		if got != p {
			t.Fatalf("LeafAt(%v) = %v", p.Key(), got)
		}
	}
	// Root key is never a leaf.
	if tree.LeafAt(Key{}) != nil {
		t.Fatal("LeafAt(root) returned partition")
	}
	// Descend one level via a query, then the old key is internal and the
	// child key is a leaf.
	target := leaves[0]
	for tree.LeafAt(target.Key()) != nil {
		q, ok := geom.Cube(target.Box().Center(), target.Box().LongestSide()/100).Clip(tree.Bounds())
		if !ok {
			t.Fatal("query construction failed")
		}
		if _, err := tree.Query(q, nil); err != nil {
			t.Fatal(err)
		}
		if target.Count() == 0 {
			break // empty partitions never refine; cannot descend here
		}
	}
	if target.Count() > 0 {
		if tree.LeafAt(target.Key()) != nil {
			t.Fatal("refined key still reported as leaf")
		}
		child := target.children[0]
		if tree.LeafAt(child.Key()) != child {
			t.Fatal("child key not found as leaf")
		}
		// A key deeper than the tree returns nil.
		deep := child.Key().Child(tree.FanoutPerDim(), 0, 0, 0)
		if tree.LeafAt(deep) != nil {
			t.Fatal("over-deep key reported as leaf")
		}
	}
}

func TestServeFromStoreHookSkipsReads(t *testing.T) {
	tree, _, dev := testTree(t, 3000, DefaultConfig(), 14)
	q := geom.Cube(geom.V(0.5, 0.5, 0.5), 0.05)
	if _, err := tree.Query(q, nil); err != nil {
		t.Fatal(err)
	}
	// Serve everything from the (imaginary) store: no reads, no objects.
	dev.ResetStats()
	res, err := tree.Query(q, func(*Partition) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objects) != 0 {
		t.Fatal("hook did not suppress object reads")
	}
	if res.Refined != 0 {
		t.Fatal("hook did not suppress refinement")
	}
	if len(res.Touched) == 0 {
		t.Fatal("touched partitions not reported")
	}
	if st := dev.Stats(); st.PageReads != 0 {
		t.Fatalf("device saw %d reads despite hook", st.PageReads)
	}
}

func TestKeysShareGeometryAcrossTrees(t *testing.T) {
	// Two trees over the same bounds must agree on keys and boxes.
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	mk := func(ds object.DatasetID, seed int64) *Tree {
		objs := datagen.Generate(datagen.Config{Seed: seed, NumObjects: 2000}, ds)
		raw, err := rawfile.Write(dev, "d", ds, objs)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := New(dev, raw, geom.UnitBox(), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.EnsureBuilt(); err != nil {
			t.Fatal(err)
		}
		return tree
	}
	a := mk(1, 100)
	b := mk(2, 200)
	q := geom.Cube(geom.V(0.7, 0.2, 0.4), 0.01)
	if _, err := a.Query(q, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Query(q, nil); err != nil {
		t.Fatal(err)
	}
	// Boxes for equal keys must be identical.
	boxes := map[Key]geom.Box{}
	for _, p := range a.Lookup(geom.UnitBox()) {
		boxes[p.Key()] = p.Box()
	}
	matched := 0
	for _, p := range b.Lookup(geom.UnitBox()) {
		if box, ok := boxes[p.Key()]; ok {
			matched++
			if box != p.Box() {
				t.Fatalf("key %v has box %v in tree a, %v in tree b", p.Key(), box, p.Box())
			}
		}
	}
	if matched == 0 {
		t.Fatal("no shared keys between trees over identical bounds")
	}
}

func TestKeyChild(t *testing.T) {
	root := Key{}
	c := root.Child(4, 1, 2, 3)
	if c != (Key{Level: 1, X: 1, Y: 2, Z: 3}) {
		t.Fatalf("Child = %+v", c)
	}
	g := c.Child(4, 3, 0, 1)
	if g != (Key{Level: 2, X: 7, Y: 8, Z: 13}) {
		t.Fatalf("grandchild = %+v", g)
	}
}

func TestRefineNonLeafFails(t *testing.T) {
	tree, _, _ := testTree(t, 2000, DefaultConfig(), 15)
	q := geom.Cube(geom.V(0.5, 0.5, 0.5), 0.01)
	if _, err := tree.Query(q, nil); err != nil {
		t.Fatal(err)
	}
	// Find a refined partition.
	var refined *Partition
	var findInternal func(p *Partition)
	findInternal = func(p *Partition) {
		if p.IsLeaf() || refined != nil {
			return
		}
		if p.Key().Level > 0 {
			refined = p
			return
		}
		for _, c := range p.children {
			findInternal(c)
		}
	}
	findInternal(tree.root)
	if refined == nil {
		t.Skip("no refined partition produced")
	}
	if _, err := tree.Refine(refined); err == nil {
		t.Fatal("refining a non-leaf succeeded")
	}
}

// Property: random query workloads never violate the structural invariants.
func TestRandomWorkloadInvariantsProperty(t *testing.T) {
	for _, ppl := range []int{8, 64} {
		cfg := Config{RefinementThreshold: 4, PartitionsPerLevel: ppl, MaxDepth: 6}
		tree, _, _ := testTree(t, 4000, cfg, int64(16+ppl))
		r := rand.New(rand.NewSource(int64(17 + ppl)))
		for i := 0; i < 50; i++ {
			side := 0.005 + r.Float64()*0.1
			c := geom.V(r.Float64(), r.Float64(), r.Float64())
			q, ok := geom.Cube(c, side).Clip(geom.UnitBox())
			if !ok || q.Volume() == 0 {
				continue
			}
			if _, err := tree.Query(q, nil); err != nil {
				t.Fatal(err)
			}
		}
		leafInvariants(t, tree)
	}
}
