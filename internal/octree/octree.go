// Package octree implements the paper's incremental space-oriented index:
// one adaptive octree per dataset, built lazily as queries arrive.
//
// The tree starts unbuilt. The first query triggers the level-0 in-situ
// scan that partitions the raw file into ppl uniform cells. Each subsequent
// query refines — by exactly one level per query, as in the paper — every
// hit partition whose volume exceeds RefinementThreshold times the query
// volume. Refinement rewrites the partition in place, reusing its pages and
// appending overflow at end of file (§3.1.2).
//
// All trees over the same exploration volume share cell geometry: a
// partition is globally identified by its (level, cell) key, which is what
// lets the Merger combine equally-refined partitions of different datasets.
package octree

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/pagefile"
	"spaceodyssey/internal/rawfile"
	"spaceodyssey/internal/simdisk"
)

// Config holds the tuning parameters of the incremental index.
type Config struct {
	// RefinementThreshold is rt: a partition hit by a query is refined when
	// partitionVolume/queryVolume > rt. Paper default: 4.
	RefinementThreshold float64
	// PartitionsPerLevel is ppl, the fanout of one refinement step. It must
	// be a perfect cube (k^3); the paper uses 64 (= 4^3) for faster
	// convergence than the canonical octree's 8.
	PartitionsPerLevel int
	// MaxDepth bounds refinement as a safety net. Default 16.
	MaxDepth int
}

// DefaultConfig returns the paper's configuration (rt=4, ppl=64).
func DefaultConfig() Config {
	return Config{RefinementThreshold: 4, PartitionsPerLevel: 64, MaxDepth: 16}
}

// withDefaults fills zero fields and validates ppl.
func (c Config) withDefaults() (Config, int, error) {
	if c.RefinementThreshold <= 0 {
		c.RefinementThreshold = 4
	}
	if c.PartitionsPerLevel == 0 {
		c.PartitionsPerLevel = 64
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 16
	}
	k := int(math.Round(math.Cbrt(float64(c.PartitionsPerLevel))))
	if k < 2 || k*k*k != c.PartitionsPerLevel {
		return c, 0, fmt.Errorf("octree: ppl=%d is not a cube k^3 with k >= 2",
			c.PartitionsPerLevel)
	}
	return c, k, nil
}

// Key globally identifies a partition: the cell (X, Y, Z) of the uniform
// k^Level × k^Level × k^Level grid over the exploration volume. Trees that
// share bounds and ppl produce identical keys for identical regions.
type Key struct {
	Level   uint8
	X, Y, Z uint32
}

// Child returns the key of the child cell (cx, cy, cz) one level down.
func (k Key) Child(fanoutPerDim, cx, cy, cz int) Key {
	return Key{
		Level: k.Level + 1,
		X:     k.X*uint32(fanoutPerDim) + uint32(cx),
		Y:     k.Y*uint32(fanoutPerDim) + uint32(cy),
		Z:     k.Z*uint32(fanoutPerDim) + uint32(cz),
	}
}

// Ancestor returns k's ancestor cell at the given (shallower or equal)
// level. It panics if level exceeds k's.
func (k Key) Ancestor(level uint8, fanoutPerDim int) Key {
	if level > k.Level {
		panic(fmt.Sprintf("octree: ancestor level %d below key level %d", level, k.Level))
	}
	div := uint32(pow(fanoutPerDim, int(k.Level-level)))
	return Key{Level: level, X: k.X / div, Y: k.Y / div, Z: k.Z / div}
}

// AncestorOf reports whether k's cell contains other's cell (equality
// included).
func (k Key) AncestorOf(other Key, fanoutPerDim int) bool {
	if k.Level > other.Level {
		return false
	}
	return other.Ancestor(k.Level, fanoutPerDim) == k
}

// Box returns k's cell as a spatial box within bounds, for trees of the
// given per-dimension fanout. It is the region metadata consumers of
// partition reads key spatial decisions on: the engine's result cache uses
// it for containment answering (a query window inside the box is fully
// answerable from the cell's content), the merger for diagnostics. Keys of
// live partitions satisfy p.Box() == p.Key().Box(bounds, fanout).
func (k Key) Box(bounds geom.Box, fanoutPerDim int) geom.Box {
	cellsPerDim := 1
	for i := uint8(0); i < k.Level; i++ {
		cellsPerDim *= fanoutPerDim
	}
	size := bounds.Size().Div(float64(cellsPerDim))
	min := bounds.Min.Add(geom.Vec{
		X: size.X * float64(k.X),
		Y: size.Y * float64(k.Y),
		Z: size.Z * float64(k.Z),
	})
	return geom.NewBox(min, min.Add(size))
}

// Partition is a leaf of the tree: a spatial cell plus the disk runs holding
// the objects whose centers fall inside it.
type Partition struct {
	key      Key
	box      geom.Box
	runs     []pagefile.Run
	count    int
	children []*Partition // non-nil once refined (then no longer a leaf)
}

// Key returns the partition's global cell key.
func (p *Partition) Key() Key { return p.key }

// Box returns the partition's cell box.
func (p *Partition) Box() geom.Box { return p.box }

// Count returns the number of objects stored in the partition.
func (p *Partition) Count() int { return p.count }

// Runs returns the disk runs holding the partition (for inspection).
func (p *Partition) Runs() []pagefile.Run { return p.runs }

// IsLeaf reports whether the partition has not been refined.
func (p *Partition) IsLeaf() bool { return p.children == nil }

// Pages returns the partition's size on disk in pages.
func (p *Partition) Pages() int64 { return pagefile.Pages(p.runs) }

// Tree is the incremental octree over one dataset.
type Tree struct {
	cfg    Config
	k      int // fanout per dimension (ppl = k^3)
	bounds geom.Box
	raw    *rawfile.Raw
	file   *pagefile.File
	root   *Partition

	built      bool
	maxExtent  geom.Vec // per-dimension max object half-extent (query-window extension)
	numObjects int
	numLeaves  int

	// epoch tags the tree's physical layout: it advances on every mutation
	// that changes what a partition read returns — the level-0 build and
	// each refinement. Scan-sharing registries key in-flight reads by it so
	// a result can never be handed across a layout change. Mutations run
	// under the caller's exclusive tree lock, reads under the shared lock,
	// so the atomic is only needed for cross-dataset observers.
	epoch atomic.Int64

	// ShareReader, when non-nil, intercepts leaf-partition reads on the
	// query path (QueryCtx's non-refining reads and QueryReadOnlyCtx): it is
	// called with the partition and a read function performing the actual
	// I/O, and may serve the objects from an attached in-flight scan or a
	// result cache instead. The partition carries the region metadata such
	// interceptors key on — its cell Key and spatial Box — and its content
	// is immutable for the duration of the caller's shared tree lock. The
	// returned slice must be treated as read-only — it may be shared with
	// concurrent queries. Set once before queries run.
	ShareReader func(ctx context.Context, p *Partition, read func(context.Context) ([]object.Object, error)) ([]object.Object, error)

	// Refinements counts completed refinement operations (for stats).
	Refinements int
}

// New creates an unbuilt tree for raw over the shared exploration volume
// bounds. Storage pages are allocated on dev in a file named after the raw
// file, placed under the dataset's affinity group so tree and raw file
// co-locate on a device array. No I/O happens until the first query
// (EnsureBuilt).
func New(dev simdisk.Storage, raw *rawfile.Raw, bounds geom.Box, cfg Config) (*Tree, error) {
	cfg, k, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if bounds.Volume() <= 0 {
		return nil, fmt.Errorf("octree: bounds %v has no volume", bounds)
	}
	return &Tree{
		cfg:    cfg,
		k:      k,
		bounds: bounds,
		raw:    raw,
		file:   pagefile.CreateInGroup(dev, raw.Name()+".octree", rawfile.GroupName(raw.Dataset())),
	}, nil
}

// Built reports whether the level-0 partitioning has run.
func (t *Tree) Built() bool { return t.built }

// Dataset returns the dataset id the tree indexes.
func (t *Tree) Dataset() object.DatasetID { return t.raw.Dataset() }

// MaxExtent returns the per-dimension maximum object half-extent, the
// amount by which queries must be extended (query-window extension).
func (t *Tree) MaxExtent() geom.Vec { return t.maxExtent }

// Bounds returns the exploration volume the tree partitions.
func (t *Tree) Bounds() geom.Box { return t.bounds }

// NumObjects returns the number of indexed objects (0 before build).
func (t *Tree) NumObjects() int { return t.numObjects }

// NumLeaves returns the number of leaf partitions (0 before build).
func (t *Tree) NumLeaves() int { return t.numLeaves }

// FanoutPerDim returns k where ppl = k^3.
func (t *Tree) FanoutPerDim() int { return t.k }

// Epoch returns the tree's layout epoch: 0 while unbuilt, advanced by the
// level-0 build and every refinement. Two reads of the same partition key at
// the same epoch return the same bytes.
func (t *Tree) Epoch() int64 { return t.epoch.Load() }

// EnsureBuilt runs the level-0 partitioning if it has not happened yet: one
// full in-situ scan of the raw file, assigning every object to one of ppl
// uniform cells by its center, then writing each cell sequentially. This is
// the expensive first query of the paper's Figure 5.
func (t *Tree) EnsureBuilt() error {
	return t.EnsureBuiltCtx(nil)
}

// EnsureBuiltCtx is EnsureBuilt with cancellation. The context is observed
// only during the read phase (the in-situ scan, which dominates the cost):
// an abort there leaves the tree untouched and unbuilt — no partial
// partitioning can ever be observed. Once the scan has completed, the cell
// writes always run to completion, so the built state commits atomically.
func (t *Tree) EnsureBuiltCtx(ctx context.Context) error {
	if t.built {
		return nil
	}
	buckets := make([][]object.Object, t.k*t.k*t.k)
	var maxExt geom.Vec
	n := 0
	err := t.raw.ScanCtx(ctx, func(o object.Object) error {
		ix, iy, iz := t.bounds.CellIndex(t.k, o.Center)
		idx := (iz*t.k+iy)*t.k + ix
		buckets[idx] = append(buckets[idx], o)
		maxExt = maxExt.Max(o.HalfExtent)
		n++
		return nil
	})
	if err != nil {
		return fmt.Errorf("octree level-0 scan: %w", err)
	}

	cells := t.bounds.Subdivide(t.k)
	root := &Partition{
		key:      Key{},
		box:      t.bounds,
		children: make([]*Partition, 0, len(cells)),
	}
	// The cell writes always complete (the built state commits atomically),
	// but their I/O is still attributed to the caller's QoS scope: strip
	// cancellation, keep context values.
	wctx := ctx
	if wctx != nil {
		wctx = context.WithoutCancel(wctx)
	}
	for ci, cell := range cells {
		cx := ci % t.k
		cy := (ci / t.k) % t.k
		cz := ci / (t.k * t.k)
		objs := buckets[ci]
		runs, err := t.file.WriteIntoCtx(wctx, nil, objs)
		if err != nil {
			return fmt.Errorf("octree level-0 write: %w", err)
		}
		root.children = append(root.children, &Partition{
			key:   root.key.Child(t.k, cx, cy, cz),
			box:   cell,
			runs:  runs,
			count: len(objs),
		})
	}
	t.root = root
	t.built = true
	t.maxExtent = maxExt
	t.numObjects = n
	t.numLeaves = len(root.children)
	t.epoch.Add(1)
	return nil
}

// Lookup returns the leaf partitions intersecting area. The caller is
// responsible for extending the query window by MaxExtent first when the
// goal is retrieving all intersecting objects. Lookup never performs I/O.
func (t *Tree) Lookup(area geom.Box) []*Partition {
	if !t.built {
		return nil
	}
	var out []*Partition
	var walk func(p *Partition)
	walk = func(p *Partition) {
		if !p.box.Intersects(area) {
			return
		}
		if p.IsLeaf() {
			out = append(out, p)
			return
		}
		for _, c := range p.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// LeafAt returns the leaf partition with exactly the given key, or nil if
// that cell is unbuilt, internal, or refined past the key's level. The
// Merger uses it to enforce the same-refinement-level rule.
func (t *Tree) LeafAt(key Key) *Partition {
	if !t.built || key.Level == 0 {
		return nil
	}
	p := t.root
	for lvl := uint8(0); lvl < key.Level; lvl++ {
		if p.IsLeaf() {
			return nil // tree is coarser here than the key
		}
		shift := int(key.Level - lvl - 1)
		div := pow(t.k, shift)
		cx := int(key.X) / div % t.k
		cy := int(key.Y) / div % t.k
		cz := int(key.Z) / div % t.k
		p = p.children[(cz*t.k+cy)*t.k+cx]
	}
	if !p.IsLeaf() || p.key != key {
		return nil
	}
	return p
}

// ReadPartition reads every object stored in p from disk.
func (t *Tree) ReadPartition(p *Partition) ([]object.Object, error) {
	return t.file.ReadRuns(p.runs)
}

// ReadPartitionCtx is ReadPartition with cancellation (nil ctx disables it).
func (t *Tree) ReadPartitionCtx(ctx context.Context, p *Partition) ([]object.Object, error) {
	return t.file.ReadRunsCtx(ctx, p.runs)
}

// File exposes the partition storage file (merge copies read through it).
func (t *Tree) File() *pagefile.File { return t.file }

// pow returns base**exp for small non-negative integers.
func pow(base, exp int) int {
	r := 1
	for i := 0; i < exp; i++ {
		r *= base
	}
	return r
}
