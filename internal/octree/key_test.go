package octree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAncestorOfSelf(t *testing.T) {
	k := Key{Level: 3, X: 5, Y: 6, Z: 7}
	if !k.AncestorOf(k, 4) {
		t.Fatal("key not ancestor of itself")
	}
}

func TestAncestorPanicsBelowLevel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Ancestor(level > key.Level) did not panic")
		}
	}()
	Key{Level: 1}.Ancestor(2, 4)
}

// Property: for random descent paths, every prefix of the path is an
// ancestor of the final key, and Ancestor() recovers exactly that prefix.
func TestKeyAncestryProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		fanout := []int{2, 3, 4}[r.Intn(3)]
		depth := 1 + r.Intn(6)
		path := make([]Key, depth+1)
		path[0] = Key{}
		for lvl := 1; lvl <= depth; lvl++ {
			path[lvl] = path[lvl-1].Child(fanout,
				r.Intn(fanout), r.Intn(fanout), r.Intn(fanout))
		}
		leaf := path[depth]
		for lvl := 0; lvl <= depth; lvl++ {
			if got := leaf.Ancestor(uint8(lvl), fanout); got != path[lvl] {
				t.Fatalf("fanout=%d: Ancestor(%d) = %v, want %v", fanout, lvl, got, path[lvl])
			}
			if !path[lvl].AncestorOf(leaf, fanout) {
				t.Fatalf("fanout=%d: path[%d] not AncestorOf leaf", fanout, lvl)
			}
		}
		// A sibling at any level is NOT an ancestor.
		if depth >= 1 {
			lvl := 1 + r.Intn(depth)
			sib := path[lvl]
			sib.X ^= 1 // flip to a different cell at the same level
			if sib.AncestorOf(leaf, fanout) && sib != path[lvl] {
				t.Fatalf("fanout=%d: sibling %v claimed ancestry of %v", fanout, sib, leaf)
			}
		}
	}
}

// Property: AncestorOf is antisymmetric for distinct keys and transitive
// along chains.
func TestAncestorOfAntisymmetryProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	f := func(lvlA, lvlB uint8, xa, ya, za, xb, yb, zb uint16) bool {
		const fanout = 4
		a := Key{Level: lvlA % 8, X: uint32(xa) % 64, Y: uint32(ya) % 64, Z: uint32(za) % 64}
		b := Key{Level: lvlB % 8, X: uint32(xb) % 64, Y: uint32(yb) % 64, Z: uint32(zb) % 64}
		// Clamp coordinates into each level's valid grid.
		clamp := func(k Key) Key {
			max := uint32(pow(fanout, int(k.Level)))
			k.X %= max
			k.Y %= max
			k.Z %= max
			return k
		}
		a, b = clamp(a), clamp(b)
		if a == b {
			return a.AncestorOf(b, fanout) && b.AncestorOf(a, fanout)
		}
		// Distinct keys cannot both be ancestors of each other.
		return !(a.AncestorOf(b, fanout) && b.AncestorOf(a, fanout))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPow(t *testing.T) {
	cases := map[[2]int]int{
		{2, 0}: 1, {2, 3}: 8, {4, 2}: 16, {3, 3}: 27, {10, 1}: 10,
	}
	for in, want := range cases {
		if got := pow(in[0], in[1]); got != want {
			t.Errorf("pow(%d,%d) = %d, want %d", in[0], in[1], got, want)
		}
	}
}
