package octree

import (
	"sort"
	"testing"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
)

// sortObjs orders objects by id for comparison.
func sortObjs(objs []object.Object) {
	sort.Slice(objs, func(i, j int) bool { return objs[i].ID < objs[j].ID })
}

// TestQueryReadOnlyMatchesQuery pins the read-only walk's contract: same
// result set as the mutating Query, zero mutations, and the refinement
// demand the inline walk would have executed reported in WantRefine.
func TestQueryReadOnlyMatchesQuery(t *testing.T) {
	roTree, _, _ := testTree(t, 5000, DefaultConfig(), 51)
	rwTree, _, _ := testTree(t, 5000, DefaultConfig(), 51)

	q := geom.Cube(geom.V(0.3, 0.3, 0.3), 0.08)
	if _, err := roTree.QueryReadOnlyCtx(nil, q, nil); err == nil {
		t.Fatal("read-only query on an unbuilt tree must fail")
	}
	if err := roTree.EnsureBuilt(); err != nil {
		t.Fatal(err)
	}

	ro, err := roTree.QueryReadOnlyCtx(nil, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Refined != 0 || roTree.Refinements != 0 {
		t.Fatalf("read-only walk refined (%d ops)", roTree.Refinements)
	}
	if len(ro.WantRefine) == 0 {
		t.Fatal("hot query reported no refinement demand")
	}

	rw, err := rwTree.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Refined == 0 {
		t.Fatal("mutating walk refined nothing; the comparison is vacuous")
	}
	sortObjs(ro.Objects)
	sortObjs(rw.Objects)
	if len(ro.Objects) != len(rw.Objects) {
		t.Fatalf("read-only walk returned %d objects, mutating walk %d",
			len(ro.Objects), len(rw.Objects))
	}
	for i := range ro.Objects {
		if ro.Objects[i].ID != rw.Objects[i].ID {
			t.Fatalf("object %d differs: %d vs %d", i, ro.Objects[i].ID, rw.Objects[i].ID)
		}
	}
	// The demand set is exactly the leaves the mutating walk refined.
	if len(ro.WantRefine) != rw.Refined {
		t.Fatalf("WantRefine reports %d leaves, mutating walk refined %d",
			len(ro.WantRefine), rw.Refined)
	}
}

// TestRefineRegionConverges pins RefineRegion's fixpoint semantics: after
// one call per wanted key, the region no longer demands refinement for the
// same query, and repeated identical queries would have reached the same
// leaf structure one level at a time.
func TestRefineRegionConverges(t *testing.T) {
	bgTree, _, _ := testTree(t, 5000, DefaultConfig(), 52)
	fgTree, _, _ := testTree(t, 5000, DefaultConfig(), 52)
	if err := bgTree.EnsureBuilt(); err != nil {
		t.Fatal(err)
	}

	q := geom.Cube(geom.V(0.3, 0.3, 0.3), 0.05)
	qVol := q.Volume()
	ro, err := bgTree.QueryReadOnlyCtx(nil, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ro.WantRefine) == 0 {
		t.Fatal("no refinement demand; the test is vacuous")
	}
	total := 0
	for _, key := range ro.WantRefine {
		n, err := bgTree.RefineRegion(nil, key, q, qVol)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total == 0 {
		t.Fatal("RefineRegion applied no refinements")
	}
	after, err := bgTree.QueryReadOnlyCtx(nil, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.WantRefine) != 0 {
		t.Fatalf("region still wants %d refinements after RefineRegion", len(after.WantRefine))
	}

	// The foreground tree converges by repeating the query (one level per
	// pass); both must land on the same leaf structure.
	for i := 0; i < 20; i++ {
		res, err := fgTree.Query(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Refined == 0 {
			break
		}
	}
	bgLeaves := bgTree.Lookup(bgTree.Bounds())
	fgLeaves := fgTree.Lookup(fgTree.Bounds())
	if len(bgLeaves) != len(fgLeaves) {
		t.Fatalf("background convergence: %d leaves, foreground: %d",
			len(bgLeaves), len(fgLeaves))
	}
	for i := range bgLeaves {
		if bgLeaves[i].Key() != fgLeaves[i].Key() {
			t.Fatalf("leaf %d differs: %v vs %v", i, bgLeaves[i].Key(), fgLeaves[i].Key())
		}
	}
}
