package octree

import (
	"context"
	"fmt"
	"time"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/pagefile"
	"spaceodyssey/internal/simdisk"
)

// NeedsRefinement applies the paper's rt rule: a partition hit by a query of
// volume qVol is refined when Vp/Vq > rt, it still holds objects, and the
// depth bound has not been reached.
func (t *Tree) NeedsRefinement(p *Partition, qVol float64) bool {
	if !p.IsLeaf() || p.count == 0 || int(p.key.Level) >= t.cfg.MaxDepth {
		return false
	}
	if qVol <= 0 {
		return false
	}
	return p.box.Volume()/qVol > t.cfg.RefinementThreshold
}

// Refine splits leaf p into ppl children, reassigning its objects by center
// and rewriting them in place: children reuse p's pages first and overflow
// is appended at end of file, exactly as §3.1.2 describes. It returns the
// objects that were read in the process so callers answering a query can
// filter them without a second read.
func (t *Tree) Refine(p *Partition) ([]object.Object, error) {
	return t.refineCtx(nil, p)
}

// refineCtx is Refine with cancellation limited to the read phase: aborting
// while the partition is being read leaves it exactly as it was (runs and
// children untouched), while the split-and-rewrite phase always runs to
// completion so the tree can never hold a half-rewritten partition. This is
// the "check cancellation between level steps, never inside a layout
// mutation" rule the concurrent storm tests pin down.
func (t *Tree) refineCtx(ctx context.Context, p *Partition) ([]object.Object, error) {
	if !p.IsLeaf() {
		return nil, fmt.Errorf("octree: refine on non-leaf %v", p.key)
	}
	objs, err := t.ReadPartitionCtx(ctx, p)
	if err != nil {
		return nil, fmt.Errorf("octree refine read: %w", err)
	}

	// Bucket objects into the k^3 children by center.
	buckets := make([][]object.Object, t.k*t.k*t.k)
	for _, o := range objs {
		ix, iy, iz := p.box.CellIndex(t.k, o.Center)
		idx := (iz*t.k+iy)*t.k + ix
		buckets[idx] = append(buckets[idx], o)
	}

	// The parent's pages become the free pool children draw from in order.
	// The rewrite phase always completes (no half-rewritten partition), but
	// its I/O is still attributed to the caller's QoS scope: strip
	// cancellation, keep context values.
	wctx := ctx
	if wctx != nil {
		wctx = context.WithoutCancel(wctx)
	}
	alloc := &runAllocator{free: p.runs}
	cells := p.box.Subdivide(t.k)
	children := make([]*Partition, 0, len(cells))
	for ci, cell := range cells {
		cx := ci % t.k
		cy := (ci / t.k) % t.k
		cz := ci / (t.k * t.k)
		bucket := buckets[ci]
		reuse := alloc.take(object.PagesFor(len(bucket)))
		runs, err := t.file.WriteIntoCtx(wctx, reuse, bucket)
		if err != nil {
			return nil, fmt.Errorf("octree refine write: %w", err)
		}
		children = append(children, &Partition{
			key:   p.key.Child(t.k, cx, cy, cz),
			box:   cell,
			runs:  runs,
			count: len(bucket),
		})
	}
	p.children = children
	p.runs = nil
	t.numLeaves += len(children) - 1
	t.Refinements++
	t.epoch.Add(1)
	return objs, nil
}

// NeedsWrite reports whether answering q could mutate the tree: either the
// level-0 build has not run yet, or some leaf the (extended) query window
// hits qualifies for refinement. servedElsewhere, when non-nil, mirrors
// Query's serveFromStore hook: leaves it claims are served from a merge
// file are neither read nor refined by Query (§3.2.2), so they do not count
// as pending writes — without this, a partition merged before converging
// would keep the exclusive lock engaged on every query forever. Concurrent
// callers use NeedsWrite to decide between a shared and an exclusive tree
// lock before calling Query; it performs no I/O, and the predicate must be
// read-only. A false answer is stable for as long as the caller excludes
// writers, since only Query itself builds or refines.
func (t *Tree) NeedsWrite(q geom.Box, servedElsewhere func(*Partition) bool) bool {
	if !t.built {
		return true
	}
	qVol := q.Volume()
	for _, leaf := range t.Lookup(q.Expand(t.maxExtent)) {
		if servedElsewhere != nil && servedElsewhere(leaf) {
			continue
		}
		if t.NeedsRefinement(leaf, qVol) {
			return true
		}
	}
	return false
}

// QueryResult carries the outcome of a single-tree range query.
type QueryResult struct {
	// Objects are the dataset's objects intersecting the query range.
	Objects []object.Object
	// Touched lists the leaf partitions (post-refinement) the query hit.
	Touched []*Partition
	// Refined is the number of refinement operations the query triggered.
	Refined int
	// WantRefine lists, after a read-only walk (QueryReadOnlyCtx), the keys
	// of leaves that qualified for refinement but were served as-is. The
	// caller schedules their refinement asynchronously.
	WantRefine []Key
	// BuildTime, RefineTime and ReadTime break the simulated cost of this
	// query down by phase: the level-0 in-situ build (first touch only),
	// refinement I/O, and partition reads.
	BuildTime  time.Duration
	RefineTime time.Duration
	ReadTime   time.Duration
}

// Query runs a range query against this tree alone: it builds level 0 on
// first use, locates the hit partitions via the extended query window,
// refines each hit partition by at most one level (the paper's
// one-level-per-query rule), and returns the intersecting objects.
//
// serveFromStore, when non-nil, lets the caller intercept a partition: if it
// returns true the partition's objects are assumed served elsewhere (e.g.
// from a merge file) — it is neither read nor refined here. The core engine
// uses this hook to route partitions to merge files.
func (t *Tree) Query(q geom.Box, serveFromStore func(*Partition) bool) (QueryResult, error) {
	return t.QueryCtx(nil, q, serveFromStore)
}

// QueryCtx is Query with cancellation. The context is checked between level
// steps — before the level-0 build, before each partition read or
// refinement — and inside the reads themselves down to the page boundary,
// so an abandoned query stops charging simulated I/O almost immediately.
// Refinements that already started always complete (see refineCtx), keeping
// the tree consistent; on error the partial QueryResult must be discarded.
func (t *Tree) QueryCtx(ctx context.Context, q geom.Box, serveFromStore func(*Partition) bool) (QueryResult, error) {
	var res QueryResult
	// Phase times are exact per-query attribution when the context carries a
	// QoS scope (any topology); the device-clock fallback is exact only for
	// a serial caller on C=1 D=1.
	clock := simdisk.PhaseClock(ctx, t.file.Device())
	t0 := clock()
	if err := t.EnsureBuiltCtx(ctx); err != nil {
		return res, err
	}
	res.BuildTime = clock() - t0
	extended := q.Expand(t.maxExtent)
	qVol := q.Volume()
	leaves := t.Lookup(extended)
	for _, leaf := range leaves {
		if serveFromStore != nil && serveFromStore(leaf) {
			res.Touched = append(res.Touched, leaf)
			continue
		}
		if err := simdisk.CheckCtx(ctx); err != nil {
			return res, err
		}
		if t.NeedsRefinement(leaf, qVol) {
			// Refinement reads the partition; reuse those objects and
			// descend to the children actually intersecting the query.
			t1 := clock()
			objs, err := t.refineCtx(ctx, leaf)
			res.RefineTime += clock() - t1
			if err != nil {
				return res, err
			}
			res.Refined++
			for _, c := range leaf.children {
				if c.box.Intersects(extended) {
					res.Touched = append(res.Touched, c)
				}
			}
			filterInto(&res, objs, q)
		} else {
			t1 := clock()
			objs, token, err := t.readLeaf(ctx, leaf)
			res.ReadTime += clock() - t1
			if err != nil {
				return res, err
			}
			res.Touched = append(res.Touched, leaf)
			filterInto(&res, objs, q)
			releaseLeaf(token)
		}
	}
	return res, nil
}

// filterInto appends the objects intersecting q to res.Objects. Objects are
// values, so the source slice (possibly pooled or shared with concurrent
// queries) is never retained.
func filterInto(res *QueryResult, objs []object.Object, q geom.Box) {
	for _, o := range objs {
		if o.Intersects(q) {
			res.Objects = append(res.Objects, o)
		}
	}
}

// readLeaf reads one leaf partition on the query path. With a ShareReader
// installed (scan sharing) the read routes through it — the result may be a
// slice shared with concurrent queries, so there is nothing to recycle and
// the returned pool token is nil. Otherwise the read decodes into a pooled
// slice and the token returns it via releaseLeaf; the caller must be done
// with the objects (filtered into its own result) before releasing.
func (t *Tree) readLeaf(ctx context.Context, p *Partition) ([]object.Object, *[]object.Object, error) {
	if t.ShareReader != nil {
		objs, err := t.ShareReader(ctx, p, func(ctx context.Context) ([]object.Object, error) {
			return t.file.ReadRunsCtx(ctx, p.runs)
		})
		return objs, nil, err
	}
	sp := pagefile.GetObjSlice()
	objs, err := t.file.ReadRunsIntoCtx(ctx, *sp, p.runs)
	*sp = objs
	if err != nil {
		pagefile.PutObjSlice(sp)
		return nil, nil, err
	}
	return objs, sp, nil
}

// releaseLeaf returns a readLeaf pool token (nil-safe).
func releaseLeaf(sp *[]object.Object) {
	if sp != nil {
		pagefile.PutObjSlice(sp)
	}
}

// QueryReadOnlyCtx answers q strictly from the current layout: the tree must
// already be built, and nothing is built or refined — the walk takes no
// write intent whatsoever, so concurrent callers can run it under a shared
// tree lock. Leaves that qualify for refinement under the rt rule are served
// as-is and reported in res.WantRefine, for the caller to hand to an
// asynchronous maintenance scheduler. serveFromStore behaves exactly as in
// QueryCtx: intercepted partitions are neither read nor reported as wanting
// refinement (merged partitions are not refined, §3.2.2).
func (t *Tree) QueryReadOnlyCtx(ctx context.Context, q geom.Box, serveFromStore func(*Partition) bool) (QueryResult, error) {
	var res QueryResult
	if !t.built {
		return res, fmt.Errorf("octree: read-only query on unbuilt tree")
	}
	clock := simdisk.PhaseClock(ctx, t.file.Device())
	extended := q.Expand(t.maxExtent)
	qVol := q.Volume()
	for _, leaf := range t.Lookup(extended) {
		if serveFromStore != nil && serveFromStore(leaf) {
			res.Touched = append(res.Touched, leaf)
			continue
		}
		if err := simdisk.CheckCtx(ctx); err != nil {
			return res, err
		}
		if t.NeedsRefinement(leaf, qVol) {
			res.WantRefine = append(res.WantRefine, leaf.key)
		}
		t1 := clock()
		objs, token, err := t.readLeaf(ctx, leaf)
		res.ReadTime += clock() - t1
		if err != nil {
			return res, err
		}
		res.Touched = append(res.Touched, leaf)
		filterInto(&res, objs, q)
		releaseLeaf(token)
	}
	return res, nil
}

// RefineRegionStep performs at most one refinement toward the convergence
// of the region under key for the query window that demanded it: the first
// leaf under key that intersects the (extended) window and whose volume
// still exceeds rt times qVol is refined. It reports whether a refinement
// happened — false means the region has converged for this demand. The
// caller must hold the tree's write lock; a background scheduler calls it
// in a lock-release loop so queries interleave between steps instead of
// waiting out a whole region's convergence. The context (nil allowed)
// carries the caller's QoS scope — the maintenance scheduler's refinement
// I/O is charged as PriMaintenance through it.
func (t *Tree) RefineRegionStep(ctx context.Context, key Key, q geom.Box, qVol float64) (bool, error) {
	if !t.built {
		return false, nil
	}
	stack := t.LeavesUnder(key)
	if len(stack) == 0 {
		// The tree is coarser than the key here (it cannot un-refine, but a
		// caller may schedule conservatively): the covering leaf owns the
		// cell.
		if leaf := t.LeafCovering(key); leaf != nil {
			stack = []*Partition{leaf}
		}
	}
	extended := q.Expand(t.maxExtent)
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !p.IsLeaf() || !p.box.Intersects(extended) || !t.NeedsRefinement(p, qVol) {
			continue
		}
		_, err := t.refineCtx(ctx, p)
		return err == nil, err
	}
	return false, nil
}

// RefineRegion refines, to convergence, the leaves under key that intersect
// the (extended) window of the query that demanded the refinement: each such
// leaf whose volume still exceeds rt times qVol is refined, and the children
// that intersect the window are considered in turn — the fixpoint a stream
// of identical queries would drive the region to one level at a time. It
// returns the number of refinement operations performed. The caller must
// hold the tree's write lock.
func (t *Tree) RefineRegion(ctx context.Context, key Key, q geom.Box, qVol float64) (int, error) {
	refined := 0
	for {
		step, err := t.RefineRegionStep(ctx, key, q, qVol)
		if err != nil {
			return refined, err
		}
		if !step {
			return refined, nil
		}
		refined++
	}
}

// TargetLevels returns the number of refinement levels (queries hitting the
// partition) needed before a level-0 partition of volume vp converges for
// queries of volume vq: log_ppl(vp / (vq * rt)), the paper's convergence
// equation (§3.1.2).
func (t *Tree) TargetLevels(vp, vq float64) int {
	if vp <= 0 || vq <= 0 {
		return 0
	}
	ratio := vp / (vq * t.cfg.RefinementThreshold)
	if ratio <= 1 {
		return 0
	}
	levels := 0
	ppl := float64(t.cfg.PartitionsPerLevel)
	for ratio > 1 {
		ratio /= ppl
		levels++
	}
	return levels
}

// LeafCovering returns the leaf whose cell contains the given key's cell
// (the leaf at key itself, or an ancestor when the tree is coarser there).
// It returns nil when the tree is unbuilt or refined *past* the key — then
// no single leaf covers the cell.
func (t *Tree) LeafCovering(key Key) *Partition {
	if !t.built || key.Level == 0 {
		return nil
	}
	p := t.root
	for lvl := uint8(0); lvl < key.Level; lvl++ {
		if p.IsLeaf() {
			return p // coarser than key: this leaf covers the cell
		}
		shift := int(key.Level - lvl - 1)
		div := pow(t.k, shift)
		cx := int(key.X) / div % t.k
		cy := int(key.Y) / div % t.k
		cz := int(key.Z) / div % t.k
		p = p.children[(cz*t.k+cy)*t.k+cx]
	}
	if !p.IsLeaf() {
		return nil // refined deeper than key
	}
	return p
}

// RefineTo refines the tree along the path to key until a leaf exists at
// exactly that cell, and returns it. This implements the paper's §3.2.5
// "refine all partitions to the same level as the finest before merging"
// strategy: lagging datasets are brought to the leader's refinement level
// at merge time (the refinement I/O is charged like any other). It fails
// when the tree is unbuilt or already refined past the key.
func (t *Tree) RefineTo(key Key) (*Partition, error) {
	return t.RefineToCtx(nil, key)
}

// RefineToCtx is RefineTo with the context (and its QoS scope) threaded to
// the refinement I/O.
func (t *Tree) RefineToCtx(ctx context.Context, key Key) (*Partition, error) {
	if !t.built {
		return nil, fmt.Errorf("octree: RefineTo on unbuilt tree")
	}
	for {
		if leaf := t.LeafAt(key); leaf != nil {
			return leaf, nil
		}
		cover := t.LeafCovering(key)
		if cover == nil {
			return nil, fmt.Errorf("octree: tree refined past key %v", key)
		}
		if int(cover.key.Level) >= t.cfg.MaxDepth {
			return nil, fmt.Errorf("octree: RefineTo %v exceeds MaxDepth", key)
		}
		if _, err := t.refineCtx(ctx, cover); err != nil {
			return nil, err
		}
	}
}

// LeavesUnder returns every leaf whose cell lies inside the given key's
// cell (including a leaf exactly at the key). The coarsest-cover merge
// strategy reads them all to build one segment.
func (t *Tree) LeavesUnder(key Key) []*Partition {
	if !t.built {
		return nil
	}
	var start *Partition
	if key.Level == 0 {
		start = t.root
	} else {
		p := t.root
		for lvl := uint8(0); lvl < key.Level; lvl++ {
			if p.IsLeaf() {
				return nil // tree coarser than the key: nothing strictly under it
			}
			shift := int(key.Level - lvl - 1)
			div := pow(t.k, shift)
			cx := int(key.X) / div % t.k
			cy := int(key.Y) / div % t.k
			cz := int(key.Z) / div % t.k
			p = p.children[(cz*t.k+cy)*t.k+cx]
		}
		start = p
	}
	var out []*Partition
	var walk func(p *Partition)
	walk = func(p *Partition) {
		if p.IsLeaf() {
			out = append(out, p)
			return
		}
		for _, c := range p.children {
			walk(c)
		}
	}
	walk(start)
	return out
}

// runAllocator hands out pages from a free pool of runs in order.
type runAllocator struct {
	free []pagefile.Run
}

// take removes up to n pages from the pool and returns them as runs.
func (a *runAllocator) take(n int64) []pagefile.Run {
	var out []pagefile.Run
	for n > 0 && len(a.free) > 0 {
		r := &a.free[0]
		if r.Count <= n {
			out = append(out, *r)
			n -= r.Count
			a.free = a.free[1:]
			continue
		}
		out = append(out, pagefile.Run{Start: r.Start, Count: n})
		r.Start += n
		r.Count -= n
		n = 0
	}
	return out
}
