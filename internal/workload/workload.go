package workload

import (
	"fmt"
	"math"
	"math/rand"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
)

// RangeDist selects the spatial distribution of query centers.
type RangeDist int

const (
	// RangeClustered draws query centers from Gaussians around a fixed set
	// of cluster centers — the paper's skewed scenario.
	RangeClustered RangeDist = iota
	// RangeUniform draws query centers uniformly over the volume — the
	// paper's worst case for adaptivity.
	RangeUniform
)

// String implements fmt.Stringer.
func (d RangeDist) String() string {
	switch d {
	case RangeClustered:
		return "clustered"
	case RangeUniform:
		return "uniform"
	}
	return fmt.Sprintf("RangeDist(%d)", int(d))
}

// Query is one exploratory request: a spatial range evaluated against a
// combination of datasets.
type Query struct {
	ID       int
	Range    geom.Box
	Datasets []object.DatasetID
}

// Config parametrizes workload generation with the paper's defaults.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// NumQueries is the workload length (paper: 1000).
	NumQueries int
	// NumDatasets is n, the total number of datasets (paper: 10).
	NumDatasets int
	// DatasetsPerQuery is k, how many datasets each query touches
	// (paper sweeps 1, 3, 5, 7, 9).
	DatasetsPerQuery int
	// Bounds is the explored volume; defaults to [0,1]^3.
	Bounds geom.Box
	// QueryVolumeFrac is the query volume as a fraction of the explored
	// volume (paper: 1e-6, i.e. 10^-4 %). Queries are cubes.
	QueryVolumeFrac float64
	// RangeDist selects clustered or uniform query centers.
	RangeDist RangeDist
	// CombDist selects the dataset-combination chooser.
	CombDist CombDist
	// ClusterCenters is the number of query cluster centers (paper: 10;
	// 5 in the merging experiment).
	ClusterCenters int
	// Centers optionally fixes the cluster centers explicitly; when set it
	// overrides ClusterCenters.
	Centers []geom.Vec
	// SigmaFactor scales the Gaussian spread around a cluster center:
	// sigma = SigmaFactor × query side. The paper states σ = qvol×10 with
	// qvol = 1e-6; reading that as the variance of the normalized volume
	// (σ² = 1e-5) gives σ ≈ 0.3 query sides — tight clusters, consistent
	// with Figure 3's compact query blobs and with the ~25% merging gain
	// of Figure 5c (which needs heavily revisited areas). Default 0.5.
	SigmaFactor float64
	// ZipfTheta is the Zipf exponent (paper: 2).
	ZipfTheta float64
	// SelfSimilarH is the self-similar skew (paper: 0.8 for 80–20).
	SelfSimilarH float64
	// HeavyHitterShare is the hot combination's share (paper: 0.5).
	HeavyHitterShare float64
}

// withDefaults fills zero fields with the paper's defaults.
func (c Config) withDefaults() Config {
	if c.NumQueries <= 0 {
		c.NumQueries = 1000
	}
	if c.NumDatasets <= 0 {
		c.NumDatasets = 10
	}
	if c.DatasetsPerQuery <= 0 {
		c.DatasetsPerQuery = 5
	}
	if c.Bounds.Volume() == 0 {
		c.Bounds = geom.UnitBox()
	}
	if c.QueryVolumeFrac <= 0 {
		c.QueryVolumeFrac = 1e-6
	}
	if c.ClusterCenters <= 0 {
		c.ClusterCenters = 10
	}
	if c.SigmaFactor <= 0 {
		c.SigmaFactor = 0.5
	}
	if c.ZipfTheta <= 0 {
		c.ZipfTheta = 2
	}
	if c.SelfSimilarH <= 0 || c.SelfSimilarH >= 1 {
		c.SelfSimilarH = 0.8
	}
	if c.HeavyHitterShare <= 0 || c.HeavyHitterShare > 1 {
		c.HeavyHitterShare = 0.5
	}
	return c
}

// Workload is a generated query sequence plus the combination universe it
// draws from.
type Workload struct {
	Queries      []Query
	Combinations [][]object.DatasetID
	Centers      []geom.Vec // query cluster centers (empty for uniform)
	QuerySide    float64    // edge length of every query cube
}

// DistinctCombinations returns how many distinct dataset combinations the
// generated queries actually touch (the paper reports it on the x axis of
// Figure 4).
func (w Workload) DistinctCombinations() int {
	seen := make(map[string]struct{})
	for _, q := range w.Queries {
		key := ""
		for _, ds := range q.Datasets {
			key += fmt.Sprintf("%d,", ds)
		}
		seen[key] = struct{}{}
	}
	return len(seen)
}

// Generate builds a deterministic workload from cfg.
func Generate(cfg Config) (Workload, error) {
	cfg = cfg.withDefaults()
	if cfg.DatasetsPerQuery > cfg.NumDatasets {
		return Workload{}, fmt.Errorf(
			"workload: k=%d exceeds n=%d", cfg.DatasetsPerQuery, cfg.NumDatasets)
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	// Query cube side from the volume fraction.
	side := math.Cbrt(cfg.QueryVolumeFrac * cfg.Bounds.Volume())

	// Combination universe, shuffled so "popular" combinations are not
	// biased toward lexicographically small ones.
	combos := Combinations(cfg.NumDatasets, cfg.DatasetsPerQuery)
	r.Shuffle(len(combos), func(i, j int) { combos[i], combos[j] = combos[j], combos[i] })
	comboSampler := NewSampler(cfg.CombDist, r, len(combos),
		cfg.HeavyHitterShare, cfg.SelfSimilarH, cfg.ZipfTheta)

	// Cluster centers for the clustered range distribution.
	centers := cfg.Centers
	if cfg.RangeDist == RangeClustered && len(centers) == 0 {
		centers = make([]geom.Vec, cfg.ClusterCenters)
		for i := range centers {
			centers[i] = uniformPoint(r, cfg.Bounds)
		}
	}
	sigma := cfg.SigmaFactor * side

	queries := make([]Query, cfg.NumQueries)
	for i := range queries {
		var center geom.Vec
		switch cfg.RangeDist {
		case RangeClustered:
			base := centers[r.Intn(len(centers))]
			center = geom.Vec{
				X: base.X + r.NormFloat64()*sigma,
				Y: base.Y + r.NormFloat64()*sigma,
				Z: base.Z + r.NormFloat64()*sigma,
			}
		default:
			center = uniformPoint(r, cfg.Bounds)
		}
		// Keep the whole query cube inside the explored volume.
		center = clampCenter(center, cfg.Bounds, side/2)
		queries[i] = Query{
			ID:       i,
			Range:    geom.Cube(center, side),
			Datasets: combos[comboSampler()],
		}
	}
	return Workload{
		Queries:      queries,
		Combinations: combos,
		Centers:      centers,
		QuerySide:    side,
	}, nil
}

// uniformPoint samples a point uniformly inside b.
func uniformPoint(r *rand.Rand, b geom.Box) geom.Vec {
	s := b.Size()
	return geom.Vec{
		X: b.Min.X + r.Float64()*s.X,
		Y: b.Min.Y + r.Float64()*s.Y,
		Z: b.Min.Z + r.Float64()*s.Z,
	}
}

// clampCenter clamps c so that a cube of half-side hs centered at c stays
// inside b (assuming b is at least 2*hs wide in every dimension).
func clampCenter(c geom.Vec, b geom.Box, hs float64) geom.Vec {
	lo := b.Min.Add(geom.Splat(hs))
	hi := b.Max.Sub(geom.Splat(hs))
	return c.Max(lo).Min(hi)
}
