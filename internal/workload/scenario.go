package workload

import (
	"fmt"
	"math"
	"math/rand"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
)

// The scenario lab: a matrix of named, seeded, deterministic workload
// generators modelling the traffic shapes a long-lived archive actually
// sees — static hotspots, hotspots that migrate mid-run, scan/point mixes,
// diurnal load curves, and an adversarial pattern built to defeat layout
// adaptivity. Every scenario is a pure function of (name, ScenarioConfig):
// the same seed always yields byte-identical queries and pacing.

// ScenarioConfig parametrizes scenario generation. Zero fields take the
// same defaults as Config.withDefaults plus a scenario-friendly query
// count.
type ScenarioConfig struct {
	Seed             int64
	NumQueries       int
	NumDatasets      int
	DatasetsPerQuery int
	Bounds           geom.Box
	// QueryVolumeFrac is the BASE query volume fraction; scan/point
	// scenarios scale individual queries around it.
	QueryVolumeFrac float64
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.NumQueries <= 0 {
		c.NumQueries = 300
	}
	if c.NumDatasets <= 0 {
		c.NumDatasets = 10
	}
	if c.DatasetsPerQuery <= 0 {
		c.DatasetsPerQuery = 3
	}
	if c.Bounds.Volume() == 0 {
		c.Bounds = geom.UnitBox()
	}
	if c.QueryVolumeFrac <= 0 {
		c.QueryVolumeFrac = 1e-4
	}
	return c
}

// ScenarioWorkload is a Workload plus open-loop pacing metadata.
type ScenarioWorkload struct {
	Workload
	Name        string
	Description string
	// Gaps paces open-loop replay: Gaps[i] is the relative delay before
	// query i is submitted, in units of the harness's base inter-arrival
	// gap (mean ≈ 1.0). nil means unpaced (closed loop).
	Gaps []float64
}

// scenarioDef couples a name to its generator.
type scenarioDef struct {
	name, desc string
	gen        func(cfg ScenarioConfig) (ScenarioWorkload, error)
}

var scenarioDefs = []scenarioDef{
	{"zipf", "static zipf hotspot: tight clusters, zipf combinations, steady arrivals", genZipf},
	{"drift", "drifting hotspot: hot region migrates across three phases, bursty arrivals", genDrift},
	{"scanheavy", "scan-heavy mix: 80% large scans / 20% point probes, uniform combinations", func(c ScenarioConfig) (ScenarioWorkload, error) { return genMix(c, 0.8) }},
	{"pointheavy", "point-heavy mix: 20% large scans / 80% point probes, zipf combinations", func(c ScenarioConfig) (ScenarioWorkload, error) { return genMix(c, 0.2) }},
	{"diurnal", "diurnal load: sinusoidal arrival rate over two cycles, day/night hotspots", genDiurnal},
	{"adversarial", "anti-layout: low-discrepancy center sweep, round-robin combinations, no reuse", genAdversarial},
}

// ScenarioNames lists the scenario matrix in its canonical order.
func ScenarioNames() []string {
	names := make([]string, len(scenarioDefs))
	for i, d := range scenarioDefs {
		names[i] = d.name
	}
	return names
}

// ScenarioDescription returns the one-line description for name ("" if
// unknown).
func ScenarioDescription(name string) string {
	for _, d := range scenarioDefs {
		if d.name == name {
			return d.desc
		}
	}
	return ""
}

// GenerateScenario builds the named scenario deterministically from cfg.
func GenerateScenario(name string, cfg ScenarioConfig) (ScenarioWorkload, error) {
	cfg = cfg.withDefaults()
	if cfg.DatasetsPerQuery > cfg.NumDatasets {
		return ScenarioWorkload{}, fmt.Errorf(
			"workload: k=%d exceeds n=%d", cfg.DatasetsPerQuery, cfg.NumDatasets)
	}
	for _, d := range scenarioDefs {
		if d.name == name {
			w, err := d.gen(cfg)
			if err != nil {
				return ScenarioWorkload{}, err
			}
			w.Name = d.name
			w.Description = d.desc
			return w, nil
		}
	}
	return ScenarioWorkload{}, fmt.Errorf(
		"workload: unknown scenario %q (want one of %v)", name, ScenarioNames())
}

// shuffledCombos builds the combination universe shuffled by r so popular
// combinations are not biased toward lexicographically small ones.
func shuffledCombos(r *rand.Rand, n, k int) [][]object.DatasetID {
	combos := Combinations(n, k)
	r.Shuffle(len(combos), func(i, j int) { combos[i], combos[j] = combos[j], combos[i] })
	return combos
}

// uniformGaps is steady open-loop pacing: every gap is 1.0 base units.
func uniformGaps(n int) []float64 {
	gaps := make([]float64, n)
	for i := range gaps {
		gaps[i] = 1
	}
	return gaps
}

// repeatPoolSize is how many distinct queries back a repeating scenario: a
// quarter of the stream, so popular queries recur and result caching has
// something to earn.
func repeatPoolSize(n int) int {
	p := n / 4
	if p < 8 {
		p = 8
	}
	if p > n {
		p = n
	}
	return p
}

// zipfRepeat expands a pool of distinct queries into a stream of n queries
// whose popularity is zipf(theta)-distributed over the pool — the repetition
// pattern real archive front-ends see, and the one that makes result-cache
// capacity a live tuning axis.
func zipfRepeat(r *rand.Rand, pool []Query, n int, theta float64) []Query {
	sample := NewZipfSampler(r, len(pool), theta)
	queries := make([]Query, n)
	for i := range queries {
		q := pool[sample()]
		q.ID = i
		queries[i] = q
	}
	return queries
}

// genZipf is the static hotspot baseline: a handful of tight clusters with
// zipf-skewed combinations, zipf-repeated queries, and steady arrivals — the
// workload the layout is best at, so adaptivity must not regress it.
func genZipf(cfg ScenarioConfig) (ScenarioWorkload, error) {
	pool := repeatPoolSize(cfg.NumQueries)
	w, err := Generate(Config{
		Seed:             cfg.Seed,
		NumQueries:       pool,
		NumDatasets:      cfg.NumDatasets,
		DatasetsPerQuery: cfg.DatasetsPerQuery,
		Bounds:           cfg.Bounds,
		QueryVolumeFrac:  cfg.QueryVolumeFrac,
		RangeDist:        RangeClustered,
		CombDist:         CombZipf,
		ClusterCenters:   4,
		SigmaFactor:      0.2,
	})
	if err != nil {
		return ScenarioWorkload{}, err
	}
	r := rand.New(rand.NewSource(cfg.Seed + 0x5eed))
	w.Queries = zipfRepeat(r, w.Queries, cfg.NumQueries, 0.9)
	return ScenarioWorkload{Workload: w, Gaps: uniformGaps(cfg.NumQueries)}, nil
}

// genDrift migrates the hot region across three disjoint phases: each phase
// clusters around fresh centers, so heat and cache entries earned in phase
// p are stale in phase p+1. Arrivals come in bursts of eight (seven
// back-to-back, then a long idle gap) so the queue oscillates between
// backlog and idle — the shape an adaptive batch window exploits.
func genDrift(cfg ScenarioConfig) (ScenarioWorkload, error) {
	r := rand.New(rand.NewSource(cfg.Seed))
	side := math.Cbrt(cfg.QueryVolumeFrac * cfg.Bounds.Volume())
	combos := shuffledCombos(r, cfg.NumDatasets, cfg.DatasetsPerQuery)
	comboSampler := NewZipfSampler(r, len(combos), 2)

	const phases = 3
	const centersPerPhase = 2
	phaseCenters := make([][]geom.Vec, phases)
	for p := range phaseCenters {
		phaseCenters[p] = make([]geom.Vec, centersPerPhase)
		for i := range phaseCenters[p] {
			phaseCenters[p][i] = uniformPoint(r, cfg.Bounds)
		}
	}
	sigma := 0.2 * side

	// Each phase draws from its own pool of distinct queries, zipf-repeated:
	// the popular queries of phase p never recur in phase p+1, so cache
	// entries and heat earned early in the run go stale mid-run.
	queries := make([]Query, 0, cfg.NumQueries)
	gaps := make([]float64, cfg.NumQueries)
	var centers []geom.Vec
	rr := rand.New(rand.NewSource(cfg.Seed + 0x5eed))
	for p := 0; p < phases; p++ {
		lo := p * cfg.NumQueries / phases
		hi := (p + 1) * cfg.NumQueries / phases
		if hi == lo {
			continue
		}
		pool := make([]Query, repeatPoolSize(hi-lo))
		for j := range pool {
			base := phaseCenters[p][r.Intn(centersPerPhase)]
			center := geom.Vec{
				X: base.X + r.NormFloat64()*sigma,
				Y: base.Y + r.NormFloat64()*sigma,
				Z: base.Z + r.NormFloat64()*sigma,
			}
			center = clampCenter(center, cfg.Bounds, side/2)
			pool[j] = Query{
				Range:    geom.Cube(center, side),
				Datasets: combos[comboSampler()],
			}
		}
		phaseQueries := zipfRepeat(rr, pool, hi-lo, 0.9)
		for j := range phaseQueries {
			phaseQueries[j].ID = lo + j
		}
		queries = append(queries, phaseQueries...)
	}
	for i := range gaps {
		if i%8 == 0 {
			gaps[i] = 8
		}
	}
	for _, pc := range phaseCenters {
		centers = append(centers, pc...)
	}
	return ScenarioWorkload{
		Workload: Workload{
			Queries:      queries,
			Combinations: combos,
			Centers:      centers,
			QuerySide:    side,
		},
		Gaps: gaps,
	}, nil
}

// genMix interleaves large scans (volume 64x base) with point probes
// (volume base/64) at the given scan fraction, clustered so both kinds
// revisit the same hot regions.
func genMix(cfg ScenarioConfig, scanFrac float64) (ScenarioWorkload, error) {
	r := rand.New(rand.NewSource(cfg.Seed))
	baseSide := math.Cbrt(cfg.QueryVolumeFrac * cfg.Bounds.Volume())
	scanSide := baseSide * 4   // 64x the base volume
	pointSide := baseSide / 4  // base volume / 64
	combos := shuffledCombos(r, cfg.NumDatasets, cfg.DatasetsPerQuery)
	var comboSampler IndexSampler
	if scanFrac >= 0.5 {
		comboSampler = NewUniformSampler(r, len(combos))
	} else {
		comboSampler = NewZipfSampler(r, len(combos), 2)
	}

	const numCenters = 4
	centers := make([]geom.Vec, numCenters)
	for i := range centers {
		centers[i] = uniformPoint(r, cfg.Bounds)
	}
	sigma := 0.3 * scanSide

	queries := make([]Query, cfg.NumQueries)
	for i := range queries {
		side := pointSide
		if r.Float64() < scanFrac {
			side = scanSide
		}
		base := centers[r.Intn(numCenters)]
		center := geom.Vec{
			X: base.X + r.NormFloat64()*sigma,
			Y: base.Y + r.NormFloat64()*sigma,
			Z: base.Z + r.NormFloat64()*sigma,
		}
		center = clampCenter(center, cfg.Bounds, side/2)
		queries[i] = Query{
			ID:       i,
			Range:    geom.Cube(center, side),
			Datasets: combos[comboSampler()],
		}
	}
	return ScenarioWorkload{
		Workload: Workload{
			Queries:      queries,
			Combinations: combos,
			Centers:      centers,
			QuerySide:    baseSide,
		},
		Gaps: uniformGaps(cfg.NumQueries),
	}, nil
}

// genDiurnal models two day/night cycles: the arrival rate follows a
// sinusoid (peak ≈ 19x the trough), and the hot region flips between a
// "day" and a "night" cluster set with the cycle.
func genDiurnal(cfg ScenarioConfig) (ScenarioWorkload, error) {
	r := rand.New(rand.NewSource(cfg.Seed))
	side := math.Cbrt(cfg.QueryVolumeFrac * cfg.Bounds.Volume())
	combos := shuffledCombos(r, cfg.NumDatasets, cfg.DatasetsPerQuery)
	comboSampler := NewZipfSampler(r, len(combos), 2)

	const centersPerSet = 2
	daySet := make([]geom.Vec, centersPerSet)
	nightSet := make([]geom.Vec, centersPerSet)
	for i := range daySet {
		daySet[i] = uniformPoint(r, cfg.Bounds)
		nightSet[i] = uniformPoint(r, cfg.Bounds)
	}
	sigma := 0.2 * side

	const cycles = 2
	queries := make([]Query, cfg.NumQueries)
	gaps := make([]float64, cfg.NumQueries)
	for i := range queries {
		phase := 2 * math.Pi * cycles * float64(i) / float64(cfg.NumQueries)
		rate := 1 + 0.9*math.Sin(phase) // in (0.1, 1.9]
		gaps[i] = 1 / rate
		set := daySet
		if math.Sin(phase) < 0 {
			set = nightSet
		}
		base := set[r.Intn(centersPerSet)]
		center := geom.Vec{
			X: base.X + r.NormFloat64()*sigma,
			Y: base.Y + r.NormFloat64()*sigma,
			Z: base.Z + r.NormFloat64()*sigma,
		}
		center = clampCenter(center, cfg.Bounds, side/2)
		queries[i] = Query{
			ID:       i,
			Range:    geom.Cube(center, side),
			Datasets: combos[comboSampler()],
		}
	}
	centers := append(append([]geom.Vec{}, daySet...), nightSet...)
	return ScenarioWorkload{
		Workload: Workload{
			Queries:      queries,
			Combinations: combos,
			Centers:      centers,
			QuerySide:    side,
		},
		Gaps: gaps,
	}, nil
}

// genAdversarial is the anti-layout pattern: query centers sweep the volume
// on a low-discrepancy Halton sequence (no region is ever revisited while
// it is still hot) and combinations cycle round-robin through the whole
// universe (no combination ever dominates), so merging, caching, and heat
// ranking all earn nothing.
func genAdversarial(cfg ScenarioConfig) (ScenarioWorkload, error) {
	r := rand.New(rand.NewSource(cfg.Seed))
	side := math.Cbrt(cfg.QueryVolumeFrac * cfg.Bounds.Volume())
	combos := shuffledCombos(r, cfg.NumDatasets, cfg.DatasetsPerQuery)
	// Deterministic rotation start so the cycle is seed-dependent.
	start := r.Intn(len(combos))

	size := cfg.Bounds.Size()
	queries := make([]Query, cfg.NumQueries)
	for i := range queries {
		center := geom.Vec{
			X: cfg.Bounds.Min.X + halton(i+1, 2)*size.X,
			Y: cfg.Bounds.Min.Y + halton(i+1, 3)*size.Y,
			Z: cfg.Bounds.Min.Z + halton(i+1, 5)*size.Z,
		}
		center = clampCenter(center, cfg.Bounds, side/2)
		queries[i] = Query{
			ID:       i,
			Range:    geom.Cube(center, side),
			Datasets: combos[(start+i)%len(combos)],
		}
	}
	return ScenarioWorkload{
		Workload: Workload{
			Queries:      queries,
			Combinations: combos,
			QuerySide:    side,
		},
		Gaps: uniformGaps(cfg.NumQueries),
	}, nil
}

// halton returns element i of the base-b Halton low-discrepancy sequence
// in [0, 1).
func halton(i, b int) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(b)
		r += f * float64(i%b)
		i /= b
	}
	return r
}

// Centroid returns the mean query center of queries[lo:hi], a cheap way to
// observe hotspot migration in tests and reports.
func Centroid(queries []Query, lo, hi int) geom.Vec {
	if lo < 0 {
		lo = 0
	}
	if hi > len(queries) {
		hi = len(queries)
	}
	if lo >= hi {
		return geom.Vec{}
	}
	var c geom.Vec
	for _, q := range queries[lo:hi] {
		mid := q.Range.Min.Add(q.Range.Max).Mul(0.5)
		c = c.Add(mid)
	}
	return c.Mul(1 / float64(hi-lo))
}
