package workload

import (
	"fmt"

	"spaceodyssey/internal/object"
)

// Combinations enumerates all k-element subsets of datasets 0..n-1 in
// lexicographic order. It panics when k is outside [1, n]; for the paper's
// n = 10 the largest result (k = 5) has 252 entries.
func Combinations(n, k int) [][]object.DatasetID {
	if k < 1 || k > n {
		panic(fmt.Sprintf("workload: combinations k=%d outside [1,%d]", k, n))
	}
	var out [][]object.DatasetID
	cur := make([]object.DatasetID, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == k {
			out = append(out, append([]object.DatasetID(nil), cur...))
			return
		}
		// Prune: need k-len(cur) more elements from [start, n).
		for i := start; i <= n-(k-len(cur)); i++ {
			cur = append(cur, object.DatasetID(i))
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

// Binomial returns C(n, k) without overflow for the small arguments used
// here (n <= 30).
func Binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i) / (i + 1)
	}
	return res
}
