package workload

import (
	"math"
	"testing"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
)

func TestCombinationsEnumeration(t *testing.T) {
	combos := Combinations(4, 2)
	if len(combos) != 6 {
		t.Fatalf("C(4,2) = %d", len(combos))
	}
	want := [][]object.DatasetID{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
	}
	for i := range want {
		if len(combos[i]) != 2 || combos[i][0] != want[i][0] || combos[i][1] != want[i][1] {
			t.Fatalf("combo %d = %v, want %v", i, combos[i], want[i])
		}
	}
}

func TestCombinationsPaperSizes(t *testing.T) {
	// The paper's x axis: k of 10 datasets peaks at C(10,5)=252.
	sizes := map[int]int{1: 10, 3: 120, 5: 252, 7: 120, 9: 10}
	for k, want := range sizes {
		if got := len(Combinations(10, k)); got != want {
			t.Errorf("C(10,%d) = %d, want %d", k, got, want)
		}
		if got := Binomial(10, k); got != want {
			t.Errorf("Binomial(10,%d) = %d, want %d", k, got, want)
		}
	}
}

func TestCombinationsPanics(t *testing.T) {
	for _, k := range []int{0, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Combinations(4,%d) did not panic", k)
				}
			}()
			Combinations(4, k)
		}()
	}
}

func TestBinomialEdges(t *testing.T) {
	if Binomial(10, -1) != 0 || Binomial(10, 11) != 0 {
		t.Error("out-of-range Binomial nonzero")
	}
	if Binomial(0, 0) != 1 || Binomial(5, 0) != 1 || Binomial(5, 5) != 1 {
		t.Error("Binomial edge cases wrong")
	}
}

func TestGenerateDefaultsAndDeterminism(t *testing.T) {
	w1, err := Generate(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Queries) != 1000 {
		t.Fatalf("NumQueries default = %d", len(w1.Queries))
	}
	w2, err := Generate(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1.Queries {
		q1, q2 := w1.Queries[i], w2.Queries[i]
		if q1.Range != q2.Range || len(q1.Datasets) != len(q2.Datasets) {
			t.Fatalf("query %d differs between identical seeds", i)
		}
	}
}

func TestGenerateQueryGeometry(t *testing.T) {
	cfg := Config{
		Seed: 2, NumQueries: 500, NumDatasets: 10, DatasetsPerQuery: 5,
		QueryVolumeFrac: 1e-6, RangeDist: RangeClustered,
	}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bounds := geom.UnitBox()
	wantVol := 1e-6 * bounds.Volume()
	for _, q := range w.Queries {
		if !bounds.Contains(q.Range) {
			t.Fatalf("query %d range %v outside bounds", q.ID, q.Range)
		}
		if math.Abs(q.Range.Volume()-wantVol) > 1e-12 {
			t.Fatalf("query %d volume %g, want %g", q.ID, q.Range.Volume(), wantVol)
		}
		if len(q.Datasets) != 5 {
			t.Fatalf("query %d touches %d datasets", q.ID, len(q.Datasets))
		}
		seen := map[object.DatasetID]bool{}
		for _, ds := range q.Datasets {
			if ds >= 10 {
				t.Fatalf("query %d references dataset %d", q.ID, ds)
			}
			if seen[ds] {
				t.Fatalf("query %d repeats dataset %d", q.ID, ds)
			}
			seen[ds] = true
		}
	}
	if w.QuerySide <= 0 {
		t.Fatal("QuerySide not recorded")
	}
}

func TestGenerateRejectsTooManyDatasetsPerQuery(t *testing.T) {
	_, err := Generate(Config{Seed: 1, NumDatasets: 3, DatasetsPerQuery: 5})
	if err == nil {
		t.Fatal("k > n accepted")
	}
}

func TestClusteredQueriesAreSkewed(t *testing.T) {
	gen := func(rd RangeDist) Workload {
		w, err := Generate(Config{
			Seed: 3, NumQueries: 2000, RangeDist: rd, ClusterCenters: 5})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	chi2 := func(w Workload) float64 {
		var counts [8]int
		c := geom.UnitBox().Center()
		for _, q := range w.Queries {
			qc := q.Range.Center()
			i := 0
			if qc.X >= c.X {
				i |= 1
			}
			if qc.Y >= c.Y {
				i |= 2
			}
			if qc.Z >= c.Z {
				i |= 4
			}
			counts[i]++
		}
		mean := float64(len(w.Queries)) / 8
		var x float64
		for _, n := range counts {
			d := float64(n) - mean
			x += d * d / mean
		}
		return x
	}
	clustered := gen(RangeClustered)
	uniform := gen(RangeUniform)
	if chi2(clustered) < 10*chi2(uniform) {
		t.Fatalf("clustered chi2 %.1f not ≫ uniform chi2 %.1f",
			chi2(clustered), chi2(uniform))
	}
	if len(clustered.Centers) != 5 {
		t.Fatalf("centers = %d", len(clustered.Centers))
	}
	if len(uniform.Centers) != 0 {
		t.Fatal("uniform workload has cluster centers")
	}
}

func TestExplicitCentersRespected(t *testing.T) {
	centers := []geom.Vec{geom.V(0.25, 0.25, 0.25)}
	w, err := Generate(Config{
		Seed: 4, NumQueries: 300, RangeDist: RangeClustered, Centers: centers,
		SigmaFactor: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// All query centers should be near the single cluster center.
	for _, q := range w.Queries {
		if q.Range.Center().Dist(centers[0]) > 0.2 {
			t.Fatalf("query center %v far from cluster center", q.Range.Center())
		}
	}
}

func TestSkewedCombinationsConcentrate(t *testing.T) {
	// Zipf(2) over 120 combinations: the top combination should dominate
	// and the distinct count should be far below 120 (paper shows 22).
	w, err := Generate(Config{
		Seed: 5, NumQueries: 1000, NumDatasets: 10, DatasetsPerQuery: 3,
		CombDist: CombZipf,
	})
	if err != nil {
		t.Fatal(err)
	}
	distinct := w.DistinctCombinations()
	if distinct > 60 {
		t.Fatalf("zipf workload touched %d combinations, expected strong concentration", distinct)
	}
	wUni, err := Generate(Config{
		Seed: 5, NumQueries: 1000, NumDatasets: 10, DatasetsPerQuery: 3,
		CombDist: CombUniform,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wUni.DistinctCombinations() <= distinct {
		t.Fatalf("uniform (%d) should touch more combinations than zipf (%d)",
			wUni.DistinctCombinations(), distinct)
	}
}

func TestRangeDistString(t *testing.T) {
	if RangeClustered.String() != "clustered" || RangeUniform.String() != "uniform" {
		t.Error("RangeDist names wrong")
	}
	if RangeDist(9).String() != "RangeDist(9)" {
		t.Error("unknown RangeDist name wrong")
	}
}

func TestHeavyHitterWorkloadHasHotCombination(t *testing.T) {
	w, err := Generate(Config{
		Seed: 6, NumQueries: 1000, NumDatasets: 10, DatasetsPerQuery: 5,
		CombDist: CombHeavyHitter,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, q := range w.Queries {
		key := ""
		for _, ds := range q.Datasets {
			key += string(rune('a' + int(ds)))
		}
		counts[key]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 400 || max > 600 {
		t.Fatalf("hot combination got %d of 1000 queries, want ~500", max)
	}
}
