package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// drawHistogram samples the sampler and returns per-index counts.
func drawHistogram(s IndexSampler, n, draws int) []int {
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		idx := s()
		if idx < 0 || idx >= n {
			panic("sampler out of range")
		}
		counts[idx]++
	}
	return counts
}

func TestUniformSamplerIsFlat(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	n, draws := 50, 100000
	counts := drawHistogram(NewUniformSampler(r, n), n, draws)
	mean := float64(draws) / float64(n)
	for i, c := range counts {
		if math.Abs(float64(c)-mean) > 5*math.Sqrt(mean) {
			t.Errorf("index %d count %d deviates from mean %.0f", i, c, mean)
		}
	}
}

func TestHeavyHitterShare(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	n, draws := 20, 100000
	counts := drawHistogram(NewHeavyHitterSampler(r, n, 0.5), n, draws)
	share := float64(counts[0]) / float64(draws)
	if math.Abs(share-0.5) > 0.02 {
		t.Fatalf("hot index share = %.3f, want ~0.5", share)
	}
	// Remaining mass roughly uniform over the other n-1.
	rest := draws - counts[0]
	meanRest := float64(rest) / float64(n-1)
	for i := 1; i < n; i++ {
		if math.Abs(float64(counts[i])-meanRest) > 6*math.Sqrt(meanRest) {
			t.Errorf("cold index %d count %d deviates from %.0f", i, counts[i], meanRest)
		}
	}
}

func TestHeavyHitterSingleItem(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	s := NewHeavyHitterSampler(r, 1, 0.5)
	for i := 0; i < 100; i++ {
		if s() != 0 {
			t.Fatal("n=1 sampler returned nonzero")
		}
	}
}

func TestSelfSimilar8020(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	n, draws := 100, 200000
	counts := drawHistogram(NewSelfSimilarSampler(r, n, 0.8), n, draws)
	// 80% of draws should land in the first 20% of indices.
	first20 := 0
	for i := 0; i < n/5; i++ {
		first20 += counts[i]
	}
	got := float64(first20) / float64(draws)
	if math.Abs(got-0.8) > 0.02 {
		t.Fatalf("first 20%% received %.3f of draws, want ~0.8", got)
	}
	// Recursive: first 4% should receive ~64%.
	first4 := 0
	for i := 0; i < n*4/100; i++ {
		first4 += counts[i]
	}
	got4 := float64(first4) / float64(draws)
	if math.Abs(got4-0.64) > 0.03 {
		t.Fatalf("first 4%% received %.3f of draws, want ~0.64", got4)
	}
}

func TestZipfShape(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n, draws := 50, 300000
	counts := drawHistogram(NewZipfSampler(r, n, 2), n, draws)
	// P(0) for theta=2 over 50 items: 1 / sum(1/i^2) ≈ 1/1.625 ≈ 0.615.
	var norm float64
	for i := 1; i <= n; i++ {
		norm += 1 / float64(i*i)
	}
	p0 := 1 / norm
	got := float64(counts[0]) / float64(draws)
	if math.Abs(got-p0) > 0.02 {
		t.Fatalf("P(0) = %.3f, want ~%.3f", got, p0)
	}
	// Monotone non-increasing in expectation: compare coarse buckets.
	if counts[0] < counts[1] || counts[1] < counts[10] {
		t.Fatalf("zipf counts not decreasing: %d %d %d", counts[0], counts[1], counts[10])
	}
	// Ratio P(0)/P(1) ≈ 4 for theta=2.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 3 || ratio > 5 {
		t.Fatalf("P(0)/P(1) = %.2f, want ~4", ratio)
	}
}

func TestSamplersDeterministic(t *testing.T) {
	for _, dist := range []CombDist{CombUniform, CombHeavyHitter, CombSelfSimilar, CombZipf} {
		a := NewSampler(dist, rand.New(rand.NewSource(7)), 30, 0.5, 0.8, 2)
		b := NewSampler(dist, rand.New(rand.NewSource(7)), 30, 0.5, 0.8, 2)
		for i := 0; i < 1000; i++ {
			if a() != b() {
				t.Fatalf("%v: sampler not deterministic", dist)
			}
		}
	}
}

func TestSamplerPanics(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	cases := []func(){
		func() { NewUniformSampler(r, 0) },
		func() { NewHeavyHitterSampler(r, 10, 1.5) },
		func() { NewSelfSimilarSampler(r, 10, 0) },
		func() { NewSelfSimilarSampler(r, 10, 1) },
		func() { NewZipfSampler(r, 10, 0) },
		func() { NewSampler(CombDist(99), r, 10, 0.5, 0.8, 2) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCombDistString(t *testing.T) {
	want := map[CombDist]string{
		CombUniform: "uniform", CombHeavyHitter: "heavy-hitter",
		CombSelfSimilar: "self-similar", CombZipf: "zipf",
	}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(d), d.String(), s)
		}
	}
	if CombDist(42).String() != "CombDist(42)" {
		t.Error("unknown dist name wrong")
	}
}

// Property: all samplers stay in range for many domain sizes.
func TestSamplersInRangeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 3, 10, 252} {
		for _, dist := range []CombDist{CombUniform, CombHeavyHitter, CombSelfSimilar, CombZipf} {
			s := NewSampler(dist, r, n, 0.5, 0.8, 2)
			for i := 0; i < 2000; i++ {
				if got := s(); got < 0 || got >= n {
					t.Fatalf("%v n=%d: sample %d out of range", dist, n, got)
				}
			}
		}
	}
}

// Property: Zipf CDF sampling covers all indices eventually for small theta.
func TestZipfCoversDomain(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	n := 5
	s := NewZipfSampler(r, n, 1.01)
	seen := make(map[int]bool)
	for i := 0; i < 50000 && len(seen) < n; i++ {
		seen[s()] = true
	}
	if len(seen) != n {
		t.Fatalf("only %d of %d indices drawn", len(seen), n)
	}
	// Sanity: sorted keys are 0..n-1.
	keys := make([]int, 0, n)
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for i, k := range keys {
		if i != k {
			t.Fatalf("missing index %d", i)
		}
	}
}
