package workload

import (
	"math"
	"reflect"
	"testing"
)

func TestScenarioNamesAllGenerate(t *testing.T) {
	cfg := ScenarioConfig{Seed: 7, NumQueries: 120, NumDatasets: 6, DatasetsPerQuery: 3}
	for _, name := range ScenarioNames() {
		w, err := GenerateScenario(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(w.Queries) != 120 {
			t.Fatalf("%s: got %d queries, want 120", name, len(w.Queries))
		}
		if w.Name != name {
			t.Fatalf("got name %q, want %q", w.Name, name)
		}
		if w.Description == "" || ScenarioDescription(name) != w.Description {
			t.Fatalf("%s: missing or mismatched description", name)
		}
		if len(w.Gaps) != len(w.Queries) {
			t.Fatalf("%s: %d gaps for %d queries", name, len(w.Gaps), len(w.Queries))
		}
		bounds := cfg.withDefaults().Bounds
		for i, q := range w.Queries {
			if q.ID != i {
				t.Fatalf("%s: query %d has ID %d", name, i, q.ID)
			}
			if !bounds.Contains(q.Range) {
				t.Fatalf("%s: query %d range %v escapes bounds", name, i, q.Range)
			}
			if len(q.Datasets) != 3 {
				t.Fatalf("%s: query %d touches %d datasets", name, i, len(q.Datasets))
			}
			if w.Gaps[i] < 0 {
				t.Fatalf("%s: negative gap %g at %d", name, w.Gaps[i], i)
			}
		}
	}
}

func TestScenarioUnknownName(t *testing.T) {
	if _, err := GenerateScenario("nope", ScenarioConfig{Seed: 1}); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
}

func TestScenarioDeterministic(t *testing.T) {
	cfg := ScenarioConfig{Seed: 42, NumQueries: 100, NumDatasets: 5, DatasetsPerQuery: 2}
	for _, name := range ScenarioNames() {
		a, err := GenerateScenario(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := GenerateScenario(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different workloads", name)
		}
		c, err := GenerateScenario(name, ScenarioConfig{
			Seed: 43, NumQueries: 100, NumDatasets: 5, DatasetsPerQuery: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if reflect.DeepEqual(a.Queries, c.Queries) {
			t.Fatalf("%s: different seeds produced identical queries", name)
		}
	}
}

func TestDriftHotspotMigrates(t *testing.T) {
	w, err := GenerateScenario("drift", ScenarioConfig{Seed: 3, NumQueries: 300})
	if err != nil {
		t.Fatal(err)
	}
	n := len(w.Queries)
	first := Centroid(w.Queries, 0, n/3)
	last := Centroid(w.Queries, 2*n/3, n)
	if d := first.Dist(last); d < 0.05 {
		t.Fatalf("drift phases barely moved: centroid distance %g", d)
	}
	// Bursty arrivals: mostly zero gaps punctuated by long idles.
	var zeros, longs int
	for _, g := range w.Gaps {
		switch {
		case g == 0:
			zeros++
		case g >= 4:
			longs++
		}
	}
	if zeros == 0 || longs == 0 {
		t.Fatalf("drift pacing not bursty: %d zero gaps, %d long gaps", zeros, longs)
	}
}

func TestMixScenarioVolumes(t *testing.T) {
	scan, err := GenerateScenario("scanheavy", ScenarioConfig{Seed: 9, NumQueries: 200})
	if err != nil {
		t.Fatal(err)
	}
	point, err := GenerateScenario("pointheavy", ScenarioConfig{Seed: 9, NumQueries: 200})
	if err != nil {
		t.Fatal(err)
	}
	bigVol := func(w ScenarioWorkload) int {
		big := 0
		for _, q := range w.Queries {
			if q.Range.Volume() > math.Pow(w.QuerySide, 3)*1.5 {
				big++
			}
		}
		return big
	}
	sb, pb := bigVol(scan), bigVol(point)
	if sb <= pb {
		t.Fatalf("scanheavy should have more large scans: scan=%d point=%d", sb, pb)
	}
	if sb < 120 || sb > 190 {
		t.Fatalf("scanheavy large-scan count %d outside ~80%% band", sb)
	}
	if pb < 15 || pb > 85 {
		t.Fatalf("pointheavy large-scan count %d outside ~20%% band", pb)
	}
}

func TestDiurnalGapsOscillate(t *testing.T) {
	w, err := GenerateScenario("diurnal", ScenarioConfig{Seed: 5, NumQueries: 200})
	if err != nil {
		t.Fatal(err)
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, g := range w.Gaps {
		min = math.Min(min, g)
		max = math.Max(max, g)
	}
	if max/min < 3 {
		t.Fatalf("diurnal pacing too flat: min=%g max=%g", min, max)
	}
}

func TestAdversarialNoComboReuseWithinCycle(t *testing.T) {
	w, err := GenerateScenario("adversarial", ScenarioConfig{
		Seed: 11, NumQueries: 100, NumDatasets: 8, DatasetsPerQuery: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 8 choose 3 = 56 > cycle prefix: the first 56 queries must all use
	// distinct combinations.
	seen := make(map[string]bool)
	for _, q := range w.Queries[:56] {
		key := ""
		for _, ds := range q.Datasets {
			key += string(rune(ds)) + ","
		}
		if seen[key] {
			t.Fatalf("combination reused within one cycle: %v", q.Datasets)
		}
		seen[key] = true
	}
}
