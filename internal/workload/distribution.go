// Package workload generates the exploratory query workloads of the
// evaluation: 3D range queries of fixed volume whose centers follow a
// clustered or uniform spatial distribution, combined with a chooser that
// selects which subset of datasets each query touches.
//
// The dataset-combination choosers follow Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases" (SIGMOD'94), as the paper specifies:
// heavy hitter (one combination receives 50% of accesses), self-similar
// (80–20), Zipf with exponent 2, and uniform.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// CombDist selects the distribution over dataset combinations.
type CombDist int

const (
	// CombUniform picks combinations uniformly at random.
	CombUniform CombDist = iota
	// CombHeavyHitter sends HeavyHitterShare of queries to one combination
	// and spreads the rest uniformly over the others.
	CombHeavyHitter
	// CombSelfSimilar uses the 80–20 self-similar distribution.
	CombSelfSimilar
	// CombZipf uses a Zipf distribution with exponent ZipfTheta.
	CombZipf
)

// String implements fmt.Stringer.
func (d CombDist) String() string {
	switch d {
	case CombUniform:
		return "uniform"
	case CombHeavyHitter:
		return "heavy-hitter"
	case CombSelfSimilar:
		return "self-similar"
	case CombZipf:
		return "zipf"
	}
	return fmt.Sprintf("CombDist(%d)", int(d))
}

// IndexSampler draws indices in [0, n) under some skew.
type IndexSampler func() int

// NewUniformSampler returns a sampler uniform over [0, n).
func NewUniformSampler(r *rand.Rand, n int) IndexSampler {
	mustPositive(n)
	return func() int { return r.Intn(n) }
}

// NewHeavyHitterSampler returns a sampler that yields index 0 with
// probability share and otherwise a uniform index in [1, n). With n == 1
// every draw is 0.
func NewHeavyHitterSampler(r *rand.Rand, n int, share float64) IndexSampler {
	mustPositive(n)
	if share < 0 || share > 1 {
		panic(fmt.Sprintf("workload: heavy-hitter share %v outside [0,1]", share))
	}
	return func() int {
		if n == 1 || r.Float64() < share {
			return 0
		}
		return 1 + r.Intn(n-1)
	}
}

// NewSelfSimilarSampler returns Gray et al.'s self-similar sampler: a
// fraction h of the draws fall on the first (1-h) fraction of the indices
// (h = 0.8 gives the 80–20 rule), recursively at every scale.
func NewSelfSimilarSampler(r *rand.Rand, n int, h float64) IndexSampler {
	mustPositive(n)
	if h <= 0 || h >= 1 {
		panic(fmt.Sprintf("workload: self-similar h %v outside (0,1)", h))
	}
	exp := math.Log(1-h) / math.Log(h)
	return func() int {
		idx := int(float64(n) * math.Pow(r.Float64(), exp))
		if idx >= n {
			idx = n - 1
		}
		return idx
	}
}

// NewZipfSampler returns a Zipf sampler over [0, n) with
// P(i) ∝ 1/(i+1)^theta. The paper uses theta = 2.
func NewZipfSampler(r *rand.Rand, n int, theta float64) IndexSampler {
	mustPositive(n)
	if theta <= 0 {
		panic(fmt.Sprintf("workload: zipf theta %v must be positive", theta))
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return func() int {
		u := r.Float64()
		return sort.SearchFloat64s(cdf, u)
	}
}

// NewSampler builds the sampler for dist over [0, n) with the given
// parameters (share for heavy hitter, h for self-similar, theta for Zipf).
func NewSampler(dist CombDist, r *rand.Rand, n int, share, h, theta float64) IndexSampler {
	switch dist {
	case CombUniform:
		return NewUniformSampler(r, n)
	case CombHeavyHitter:
		return NewHeavyHitterSampler(r, n, share)
	case CombSelfSimilar:
		return NewSelfSimilarSampler(r, n, h)
	case CombZipf:
		return NewZipfSampler(r, n, theta)
	}
	panic(fmt.Sprintf("workload: unknown distribution %d", int(dist)))
}

func mustPositive(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("workload: sampler domain size %d must be positive", n))
	}
}
