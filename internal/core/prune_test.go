package core

import (
	"context"
	"testing"
	"time"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
)

// TestPruneCoveredRefines pins the heat-ledger prune: pending refinement
// tasks whose cells a merge publish covers are dropped from the queues
// (counted as Dropped, balancing the ledger), uncovered tasks survive, and
// pruning the whole backlog makes the pipeline idle — Quiesce returns even
// with the workers frozen.
func TestPruneCoveredRefines(t *testing.T) {
	eng, _, _ := testSetup(t, 3, 3000, 51, asyncConfig(2))
	defer eng.Close()
	eng.maint.SetPaused(true)

	// One query: every queued task is a refinement (the merge task only
	// arrives when the combination crosses mt on a repeat).
	q := geom.Cube(geom.V(0.42, 0.42, 0.42), 0.1)
	if _, err := eng.Query(q, []object.DatasetID{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	before := eng.MaintenanceStats()
	if before.QueueDepth == 0 {
		t.Fatal("query enqueued nothing; the prune test is vacuous")
	}

	// A covered predicate that spares dataset 0: only its tasks survive.
	pruned := eng.maint.PruneCoveredRefines(func(ds object.DatasetID, _ refineTask) bool {
		return ds != 0
	})
	if pruned == 0 {
		t.Fatal("nothing pruned despite covering datasets 1 and 2")
	}
	mid := eng.MaintenanceStats()
	if mid.QueueDepth != before.QueueDepth-pruned {
		t.Fatalf("queue depth %d, want %d - %d", mid.QueueDepth, before.QueueDepth, pruned)
	}
	if mid.Dropped != int64(pruned) {
		t.Fatalf("Dropped = %d, want %d", mid.Dropped, pruned)
	}

	// Cover everything: the backlog empties and the pipeline reports idle
	// even though the workers are still paused.
	pruned2 := eng.maint.PruneCoveredRefines(func(object.DatasetID, refineTask) bool {
		return true
	})
	after := eng.MaintenanceStats()
	if after.QueueDepth != 0 {
		t.Fatalf("queue depth %d after full prune", after.QueueDepth)
	}
	if got := int64(pruned+pruned2) + after.Completed + after.Failed; got != after.Queued {
		t.Fatalf("ledger does not balance: %d pruned+done of %d queued", got, after.Queued)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := eng.Quiesce(ctx); err != nil {
		t.Fatalf("Quiesce after full prune (workers paused): %v", err)
	}
	eng.maint.SetPaused(false)
}
