package core

import (
	"fmt"
	"testing"
	"time"

	"spaceodyssey/internal/datagen"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/rawfile"
	"spaceodyssey/internal/simdisk"
)

func TestPhaseTimesAccounting(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.ReducedScaleCostModel(), 0)
	eng, err := New(dev, nil, geom.UnitBox(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	addPhaseDatasets(t, eng, dev, 3, 3000)
	dev.ResetClock()

	q := geom.Cube(geom.V(0.5, 0.5, 0.5), 0.05)
	dss := []object.DatasetID{0, 1, 2}
	for i := 0; i < 6; i++ {
		if _, err := eng.Query(q, dss); err != nil {
			t.Fatal(err)
		}
	}

	p := eng.Metrics().Phases
	if p.LevelZeroBuild == 0 {
		t.Error("no level-0 build time recorded")
	}
	if p.Refinement == 0 {
		t.Error("no refinement time recorded")
	}
	if p.MergeWrites == 0 {
		t.Error("no merge-write time recorded")
	}
	if p.MergeReads == 0 {
		t.Error("no merge-read time recorded")
	}
	// Phases are disjoint clock intervals, so their sum is bounded by the
	// total simulated time.
	if total := dev.Clock(); p.Total() > total {
		t.Fatalf("phase sum %v exceeds wall clock %v", p.Total(), total)
	}
	// The phases should dominate the clock (little unattributed time).
	if total := dev.Clock(); p.Total() < total/2 {
		t.Fatalf("phases %v attribute less than half of %v", p.Total(), total)
	}
}

func TestPhaseTimesNoMerge(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.ReducedScaleCostModel(), 0)
	cfg := DefaultConfig()
	cfg.DisableMerging = true
	eng, err := New(dev, nil, geom.UnitBox(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	addPhaseDatasets(t, eng, dev, 3, 2000)
	q := geom.Cube(geom.V(0.5, 0.5, 0.5), 0.05)
	for i := 0; i < 5; i++ {
		if _, err := eng.Query(q, []object.DatasetID{0, 1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	p := eng.Metrics().Phases
	if p.MergeWrites != 0 || p.MergeReads != 0 {
		t.Fatalf("merge phases nonzero with merging disabled: %+v", p)
	}
	if p.TreeReads == 0 {
		t.Error("no tree-read time recorded")
	}
}

func TestPhaseTimesTotal(t *testing.T) {
	p := PhaseTimes{
		LevelZeroBuild: time.Second, Refinement: 2 * time.Second,
		TreeReads: 3 * time.Second, MergeReads: 4 * time.Second,
		MergeWrites: 5 * time.Second,
	}
	if p.Total() != 15*time.Second {
		t.Fatalf("Total = %v", p.Total())
	}
}

// addPhaseDatasets writes synthetic datasets directly (testSetup uses a
// zero-cost device, which would leave all phases at zero).
func addPhaseDatasets(t *testing.T, eng *Odyssey, dev *simdisk.Device, n, perDS int) {
	t.Helper()
	dss := datagen.GenerateDatasets(datagen.Config{Seed: 71, NumObjects: perDS, Clusters: 6}, n)
	for i, objs := range dss {
		raw, err := rawfile.Write(dev, fmt.Sprintf("ds%d", i), object.DatasetID(i), objs)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.AddRaw(raw); err != nil {
			t.Fatal(err)
		}
	}
	dev.ResetClock()
}
