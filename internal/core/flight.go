package core

import "sync"

// flightGroup single-flights function calls per key: the first caller for a
// key (the leader) runs fn; callers arriving while it runs attach — they
// block until the leader finishes and share its error instead of running fn
// again. Calls for distinct keys proceed independently. The merge pipeline
// uses it keyed by ComboKey so concurrent merge triggers for one combination
// — racing synchronous queries past the threshold, or the async scheduler's
// task racing a direct caller — share one PrepareMerge/MergeOrExtend instead
// of queueing repeated exclusive merge steps for the same work.
//
// Do must not be re-entered for the same key from inside fn (the leader
// would wait on itself).
type flightGroup[K comparable] struct {
	mu       sync.Mutex
	inflight map[K]*flightCall
}

// flightCall is one in-flight leader execution.
type flightCall struct {
	done chan struct{}
	err  error
}

// Do runs fn under single-flight per key. It reports whether this call
// attached to another caller's execution (true) or led its own (false),
// along with the shared error.
func (g *flightGroup[K]) Do(key K, fn func() error) (bool, error) {
	g.mu.Lock()
	if g.inflight == nil {
		g.inflight = make(map[K]*flightCall)
	}
	if c, ok := g.inflight[key]; ok {
		g.mu.Unlock()
		<-c.done
		return true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.inflight[key] = c
	g.mu.Unlock()

	c.err = fn()

	g.mu.Lock()
	delete(g.inflight, key)
	g.mu.Unlock()
	close(c.done)
	return false, c.err
}
