package core

import (
	"math/rand"
	"testing"

	"spaceodyssey/internal/datagen"
	"spaceodyssey/internal/engine"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/octree"
	"spaceodyssey/internal/rawfile"
	"spaceodyssey/internal/simdisk"
)

// testSetup creates n datasets on a fresh device plus the engine.
func testSetup(t *testing.T, n, perDS int, seed int64, cfg Config) (*Odyssey, []*rawfile.Raw, *simdisk.Device) {
	t.Helper()
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	dss := datagen.GenerateDatasets(datagen.Config{Seed: seed, NumObjects: perDS, Clusters: 6}, n)
	raws := make([]*rawfile.Raw, n)
	for i, objs := range dss {
		raw, err := rawfile.Write(dev, "ds", object.DatasetID(i), objs)
		if err != nil {
			t.Fatal(err)
		}
		raws[i] = raw
	}
	eng, err := New(dev, raws, geom.UnitBox(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, raws, dev
}

func TestNewRejectsDuplicateDatasets(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	objs := datagen.Generate(datagen.Config{Seed: 1, NumObjects: 10}, 3)
	a, err := rawfile.Write(dev, "a", 3, objs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rawfile.Write(dev, "b", 3, objs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(dev, []*rawfile.Raw{a, b}, geom.UnitBox(), DefaultConfig()); err == nil {
		t.Fatal("duplicate dataset accepted")
	}
}

func TestUnknownDatasetRejected(t *testing.T) {
	eng, _, _ := testSetup(t, 2, 100, 2, DefaultConfig())
	if _, err := eng.Query(geom.UnitBox(), []object.DatasetID{7}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestNames(t *testing.T) {
	eng, _, _ := testSetup(t, 1, 10, 3, DefaultConfig())
	if eng.Name() != "Odyssey" {
		t.Fatalf("Name = %q", eng.Name())
	}
	cfg := DefaultConfig()
	cfg.DisableMerging = true
	nm, _, _ := testSetup(t, 1, 10, 3, cfg)
	if nm.Name() != "Odyssey-NoMerge" {
		t.Fatalf("Name = %q", nm.Name())
	}
	if err := eng.Build(); err != nil {
		t.Fatal("Build must be a no-op")
	}
}

func TestKeyOfCanonical(t *testing.T) {
	a := KeyOf([]object.DatasetID{3, 1, 2})
	b := KeyOf([]object.DatasetID{2, 3, 1})
	if a != b || a != ComboKey("1,2,3") {
		t.Fatalf("keys %q %q", a, b)
	}
}

// TestQueryMatchesOracle is the central equivalence test: random workloads
// over multiple datasets, with merging active, must return exactly the
// oracle's results.
func TestQueryMatchesOracle(t *testing.T) {
	cfg := DefaultConfig()
	eng, raws, _ := testSetup(t, 5, 2500, 4, cfg)
	oracle := engine.NewNaiveScan(raws)
	r := rand.New(rand.NewSource(5))
	clusters := []geom.Vec{
		geom.V(0.3, 0.3, 0.3), geom.V(0.7, 0.6, 0.4),
	}
	for trial := 0; trial < 120; trial++ {
		// Mix clustered queries (drive refinement + merging) with uniform.
		var c geom.Vec
		if r.Intn(3) > 0 {
			base := clusters[r.Intn(len(clusters))]
			c = geom.V(base.X+r.NormFloat64()*0.05, base.Y+r.NormFloat64()*0.05, base.Z+r.NormFloat64()*0.05)
		} else {
			c = geom.V(r.Float64(), r.Float64(), r.Float64())
		}
		side := 0.01 + r.Float64()*0.08
		q, ok := geom.Cube(c, side).Clip(geom.UnitBox())
		if !ok || q.Volume() == 0 {
			continue
		}
		k := 1 + r.Intn(5)
		seen := map[object.DatasetID]bool{}
		var dss []object.DatasetID
		for len(dss) < k {
			ds := object.DatasetID(r.Intn(5))
			if !seen[ds] {
				seen[ds] = true
				dss = append(dss, ds)
			}
		}
		got, err := eng.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		if !engine.SameObjects(got, want) {
			t.Fatalf("trial %d: odyssey %d objects, oracle %d (q=%v dss=%v)",
				trial, len(got), len(want), q, dss)
		}
	}
	m := eng.Metrics()
	if m.Queries == 0 || m.Refinements == 0 {
		t.Fatalf("suspicious metrics: %+v", m)
	}
}

func TestLazyIndexing(t *testing.T) {
	eng, _, dev := testSetup(t, 4, 1000, 6, DefaultConfig())
	dev.ResetStats()
	if st := dev.Stats(); st.PageReads != 0 {
		t.Fatal("engine did I/O before any query")
	}
	// A query touching datasets 0 and 1 must not build trees 2 and 3.
	q := geom.Cube(geom.V(0.5, 0.5, 0.5), 0.05)
	if _, err := eng.Query(q, []object.DatasetID{0, 1}); err != nil {
		t.Fatal(err)
	}
	if !eng.Tree(0).Built() || !eng.Tree(1).Built() {
		t.Fatal("queried trees not built")
	}
	if eng.Tree(2).Built() || eng.Tree(3).Built() {
		t.Fatal("unqueried trees were built")
	}
	if got := eng.Metrics().TreesBuilt; got != 2 {
		t.Fatalf("TreesBuilt = %d", got)
	}
}

func TestMergeHappensAfterThreshold(t *testing.T) {
	cfg := DefaultConfig()
	eng, _, _ := testSetup(t, 4, 2000, 7, cfg)
	q := geom.Cube(geom.V(0.4, 0.4, 0.4), 0.06)
	dss := []object.DatasetID{0, 1, 2}

	if _, err := eng.Query(q, dss); err != nil {
		t.Fatal(err)
	}
	if eng.Merger().NumFiles() != 0 {
		t.Fatal("merged after one query (mt=2)")
	}
	if _, err := eng.Query(q, dss); err != nil {
		t.Fatal(err)
	}
	if eng.Merger().NumFiles() != 1 {
		t.Fatalf("merge files = %d after threshold", eng.Merger().NumFiles())
	}
	m := eng.Metrics()
	if m.MergeFilesCreated != 1 || m.PartitionsMerged == 0 {
		t.Fatalf("metrics = %+v", m)
	}

	// Subsequent identical queries must be served from the merge file.
	if _, err := eng.Query(q, dss); err != nil {
		t.Fatal(err)
	}
	m = eng.Metrics()
	if m.PartitionsFromMerge == 0 {
		t.Fatal("no partitions served from merge file")
	}
	if m.RelationCounts[RelExact] == 0 {
		t.Fatalf("no exact-relation lookups: %+v", m.RelationCounts)
	}
}

func TestSmallCombinationsNeverMerge(t *testing.T) {
	cfg := DefaultConfig() // MinCombination = 3
	eng, _, _ := testSetup(t, 3, 1500, 8, cfg)
	q := geom.Cube(geom.V(0.5, 0.5, 0.5), 0.05)
	for i := 0; i < 5; i++ {
		if _, err := eng.Query(q, []object.DatasetID{0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Merger().NumFiles() != 0 {
		t.Fatal("|C|=2 combination was merged")
	}
}

func TestDisableMerging(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableMerging = true
	eng, raws, _ := testSetup(t, 4, 1500, 9, cfg)
	oracle := engine.NewNaiveScan(raws)
	q := geom.Cube(geom.V(0.5, 0.5, 0.5), 0.05)
	dss := []object.DatasetID{0, 1, 2, 3}
	for i := 0; i < 5; i++ {
		got, err := eng.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		if !engine.SameObjects(got, want) {
			t.Fatal("no-merge engine returns wrong results")
		}
	}
	if eng.Merger().NumFiles() != 0 {
		t.Fatal("merging happened despite DisableMerging")
	}
	if eng.Metrics().PartitionsFromMerge != 0 {
		t.Fatal("merge serves counted despite DisableMerging")
	}
}

func TestSupersetAndSubsetRouting(t *testing.T) {
	cfg := DefaultConfig()
	eng, raws, _ := testSetup(t, 5, 2000, 10, cfg)
	oracle := engine.NewNaiveScan(raws)
	q := geom.Cube(geom.V(0.45, 0.45, 0.45), 0.06)
	full := []object.DatasetID{0, 1, 2, 3}

	// Create a merge file for {0,1,2,3}.
	for i := 0; i < 2; i++ {
		if _, err := eng.Query(q, full); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Merger().NumFiles() != 1 {
		t.Fatalf("merge files = %d", eng.Merger().NumFiles())
	}

	// Subset query {0,1,2} routes through the superset merge file.
	sub := []object.DatasetID{0, 1, 2}
	got, err := eng.Query(q, sub)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Query(q, sub)
	if err != nil {
		t.Fatal(err)
	}
	if !engine.SameObjects(got, want) {
		t.Fatal("superset-routed query wrong")
	}
	if eng.Metrics().RelationCounts[RelSuperset] == 0 {
		t.Fatalf("superset routing unused: %+v", eng.Metrics().RelationCounts)
	}

	// Query for {0,1,2,3,4}: the merge file is a subset; dataset 4 comes
	// from its own tree.
	allds := []object.DatasetID{0, 1, 2, 3, 4}
	got, err = eng.Query(q, allds)
	if err != nil {
		t.Fatal(err)
	}
	want, err = oracle.Query(q, allds)
	if err != nil {
		t.Fatal(err)
	}
	if !engine.SameObjects(got, want) {
		t.Fatal("subset-routed query wrong")
	}
	if eng.Metrics().RelationCounts[RelSubset] == 0 {
		t.Fatalf("subset routing unused: %+v", eng.Metrics().RelationCounts)
	}
}

func TestMergedPartitionsNotRefined(t *testing.T) {
	cfg := DefaultConfig()
	eng, _, _ := testSetup(t, 3, 2500, 11, cfg)
	q := geom.Cube(geom.V(0.35, 0.35, 0.35), 0.05)
	dss := []object.DatasetID{0, 1, 2}
	for i := 0; i < 2; i++ {
		if _, err := eng.Query(q, dss); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Merger().NumFiles() == 0 {
		t.Skip("no merge file created for this layout")
	}
	before := eng.Metrics().Refinements
	for i := 0; i < 4; i++ {
		if _, err := eng.Query(q, dss); err != nil {
			t.Fatal(err)
		}
	}
	after := eng.Metrics().Refinements
	if after != before {
		t.Fatalf("merged partitions were refined (%d -> %d)", before, after)
	}
}

func TestSpaceBudgetEvictsLRU(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Merger.SpaceBudgetPages = 40
	eng, _, _ := testSetup(t, 6, 3000, 12, cfg)
	r := rand.New(rand.NewSource(13))
	// Drive many distinct 3-dataset combinations to force churn.
	combos := [][]object.DatasetID{
		{0, 1, 2}, {1, 2, 3}, {2, 3, 4}, {3, 4, 5}, {0, 2, 4}, {1, 3, 5},
	}
	for i := 0; i < 40; i++ {
		c := combos[r.Intn(len(combos))]
		q, ok := geom.Cube(geom.V(0.3+r.Float64()*0.4, 0.3+r.Float64()*0.4, 0.3+r.Float64()*0.4), 0.05).Clip(geom.UnitBox())
		if !ok {
			continue
		}
		if _, err := eng.Query(q, c); err != nil {
			t.Fatal(err)
		}
		if got := eng.Merger().TotalPages(); got > cfg.Merger.SpaceBudgetPages {
			t.Fatalf("merge space %d exceeds budget %d", got, cfg.Merger.SpaceBudgetPages)
		}
	}
	if eng.Metrics().MergeEvictions == 0 {
		t.Fatal("tight budget caused no evictions")
	}
}

func TestMergeRequiresSameRefinementLevel(t *testing.T) {
	cfg := DefaultConfig()
	eng, _, _ := testSetup(t, 3, 2500, 14, cfg)
	// Refine dataset 0 alone in an area, then query the 3-combination once:
	// levels differ, so the first over-threshold merge may skip those cells.
	qa := geom.Cube(geom.V(0.6, 0.6, 0.6), 0.03)
	for i := 0; i < 4; i++ {
		if _, err := eng.Query(qa, []object.DatasetID{0}); err != nil {
			t.Fatal(err)
		}
	}
	dss := []object.DatasetID{0, 1, 2}
	if _, err := eng.Query(qa, dss); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(qa, dss); err != nil {
		t.Fatal(err)
	}
	// The invariant we guarantee: every merged entry key corresponds to a
	// leaf at the same level in all member trees at merge time, which means
	// entries must be pairwise non-overlapping.
	mf := eng.Merger().files[KeyOf(dss)]
	if mf == nil {
		t.Skip("no merge file created for this layout")
	}
	var all []octree.Key
	for k := range mf.entries {
		all = append(all, k)
	}
	fanout := eng.Tree(0).FanoutPerDim()
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[i].AncestorOf(all[j], fanout) || all[j].AncestorOf(all[i], fanout) {
				t.Fatalf("overlapping merge entries %v and %v", all[i], all[j])
			}
		}
	}
	// And every entry's key is a leaf at the same level in all member
	// trees, or the trees have since refined past it (never shallower).
	for _, k := range all {
		for _, ds := range dss {
			if leaf := eng.Tree(ds).LeafAt(k); leaf != nil && leaf.Key() != k {
				t.Fatalf("entry %v resolves to different leaf %v in ds %d", k, leaf.Key(), ds)
			}
		}
	}
}
