package core

import "math"

// Heat decay (Config.HeatHalfLife): the heat ledgers — maintenance task
// priority, result-cache eviction order, per-dataset placement heat —
// historically accumulate forever, so a hotspot that migrated away keeps
// its cache entries pinned and its maintenance priority inflated. With a
// half-life h (in queries), every accumulated access count halves every h
// queries, applied lazily on read: no background rescans, no per-entry
// timers.
//
// The trick that keeps the decayed ordering heap-safe is working in log
// space. An entry whose effective (decayed) heat is `eff` as of logical
// tick t is keyed by
//
//	score = log2(eff) + t/h
//
// Between touches eff decays as eff·2^-(Δt/h), which adds -Δt/h to the
// log2 term and +Δt/h to the t/h term — the score is CONSTANT while the
// entry is untouched, and comparing two scores at any later tick compares
// their decayed heats exactly. So the heap never needs rescoring: only the
// touched entry's key changes, and container/heap.Fix repositions it.
//
// A zero half-life disables decay; entries then carry score 0 and the
// heaps fall back to the exact legacy (heat, FIFO) ordering bit for bit.

// heatScore keys an entry whose effective heat is eff as of tick t.
func heatScore(eff float64, tick int64, halfLife float64) float64 {
	return math.Log2(eff) + float64(tick)/halfLife
}

// effectiveHeat decodes the decayed access count at tick t. Scores far in
// the past underflow toward 0 — fully cooled, as intended.
func effectiveHeat(score float64, tick int64, halfLife float64) float64 {
	return math.Exp2(score - float64(tick)/halfLife)
}

// bumpScore adds one fresh demand at tick t to an existing score: the old
// heat decayed to now, plus one.
func bumpScore(score float64, tick int64, halfLife float64) float64 {
	return heatScore(effectiveHeat(score, tick, halfLife)+1, tick, halfLife)
}

// hotter orders maintenance work hottest-first under decay: score first
// (identical zeros when decay is off), then the legacy (heat desc, FIFO)
// order.
func hotter[T any](a, b *heatItem[T]) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	if a.heat != b.heat {
		return a.heat > b.heat
	}
	return a.seq < b.seq
}
