package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/octree"
	"spaceodyssey/internal/rawfile"
	"spaceodyssey/internal/simdisk"
)

// Config assembles the engine parameters (paper defaults throughout).
type Config struct {
	// Octree configures the incremental indexing (rt, ppl).
	Octree octree.Config
	// Merger configures merging (mt, |C| minimum, space budget).
	Merger MergerConfig
	// DisableMerging turns the Merger off — the paper's "Odyssey w/o
	// merging" ablation (Figure 5c).
	DisableMerging bool
	// AsyncMaintenance moves layout maintenance (refinement and merging)
	// off the query path: queries answer immediately from the current
	// layout — the level-0 scan or the best-available tree partitions —
	// and enqueue coalescing maintenance tasks that a background scheduler
	// drains concurrently across datasets. Default off: the synchronous
	// inline pipeline of the paper.
	AsyncMaintenance bool
	// MaintenanceWorkers bounds the background scheduler's worker pool
	// (<= 0 defaults to 2). Only meaningful with AsyncMaintenance.
	MaintenanceWorkers int
	// ShareScans turns on work sharing across concurrent queries: the
	// storage layer coalesces overlapping run reads into single-flight
	// device reads, the engine attaches queries to in-flight partition
	// scans of the same (dataset, cell) within a layout epoch, and level-0
	// first-touch builds are single-flight per dataset. Results are
	// unchanged — only the redundant physical work is. Default off: every
	// query pays its own I/O, the original cost model bit for bit.
	ShareScans bool
	// CacheResults turns on the epoch-scoped result cache: completed
	// partition scans and merge-segment reads are retained keyed on
	// (dataset, cell, layout epoch), so later queries of the same cells —
	// and queries whose extended window is contained in a cached region —
	// are answered without device reads. The cache is flushed on every
	// layout publish through bumpLayoutEpoch, results are byte-identical to
	// the uncached engine. Default off: behavior and I/O accounting are
	// bit-for-bit the original model.
	CacheResults bool
	// CacheCapacity bounds the result cache in cached objects (<= 0
	// defaults to DefaultCacheCapacity). Eviction is heat-aware: coldest
	// entries (fewest hits, oldest among equals) leave first.
	CacheCapacity int64
	// HeatHalfLife decays every heat ledger — maintenance task priority,
	// result-cache eviction order, the per-dataset placement heat — with the
	// given half-life in queries: an access count halves every HeatHalfLife
	// queries, applied lazily on read (see decay.go). A migrated hotspot
	// then releases its cache entries and placement priority instead of
	// pinning them forever. 0 (the default) disables decay: all orderings
	// are bit-for-bit the legacy cumulative-count behavior.
	HeatHalfLife int
	// AdaptiveCache lets the result cache tune its own capacity between
	// layout epochs: shadow-LRU ghost entries record recently evicted keys,
	// a re-miss on a ghost is evidence the cache is undersized (grow toward
	// the knee of the hit curve), sustained low occupancy with no evictions
	// is evidence it is oversized (shrink). CacheCapacity becomes the
	// starting point instead of a fixed bound. Capacity only affects which
	// reads hit the cache — results are identical regardless.
	AdaptiveCache bool
	// QuarantineAfter is how many consecutive failures of one maintenance
	// unit (a dataset cell's refinement, a combination's merge) quarantine
	// it — its enqueues are then dropped until Unquarantine, so a poisoned
	// cell cannot wedge the scheduler. <= 0 defaults to
	// DefaultQuarantineAfter. Permanent device faults quarantine on first
	// sight. Only meaningful with AsyncMaintenance.
	QuarantineAfter int
	// MaintenanceRetryBackoff is the base wall-clock delay before a failed
	// maintenance task is re-enqueued, doubling per consecutive failure with
	// up to 50% jitter. <= 0 defaults to DefaultMaintenanceRetryBackoff.
	MaintenanceRetryBackoff time.Duration
	// MaintenanceHealthRing bounds the failure-history ring MaintenanceHealth
	// reports. <= 0 defaults to DefaultMaintenanceHealthRing.
	MaintenanceHealthRing int
}

// DefaultConfig returns the paper's configuration: rt=4, ppl=64, mt=2,
// |C| >= 3, unlimited merge space.
func DefaultConfig() Config {
	return Config{
		Octree: octree.DefaultConfig(),
		Merger: MergerConfig{MergeThreshold: 2, MinCombination: 3},
	}
}

// PhaseTimes breaks the engine's simulated time down by activity — the
// adaptive analogue of the paper's indexing/querying split for static
// engines (Figure 4's stacked bars). Phase durations are exact per-query
// charge attributions on every topology: each query's context carries a QoS
// scope the storage layer charges directly (service time plus arrival-gated
// queueing delay), so concurrent queries never bleed into each other's
// buckets and nothing is shadowed by a busier channel. Contexts without a
// scope fall back to device-clock deltas, exact for a serial caller on the
// default single-channel topology.
type PhaseTimes struct {
	// LevelZeroBuild is the in-situ first-touch partitioning of raw files.
	LevelZeroBuild time.Duration
	// Refinement is the read-split-rewrite I/O of the Adaptor.
	Refinement time.Duration
	// TreeReads is time reading partitions from individual dataset files.
	TreeReads time.Duration
	// MergeReads is time reading segments from merge files.
	MergeReads time.Duration
	// MergeWrites is the Merger's copy I/O (reads of originals included).
	MergeWrites time.Duration
}

// Total sums all phases.
func (p PhaseTimes) Total() time.Duration {
	return p.LevelZeroBuild + p.Refinement + p.TreeReads + p.MergeReads + p.MergeWrites
}

// Metrics aggregates engine activity for reporting.
type Metrics struct {
	Queries             int
	Refinements         int
	TreesBuilt          int
	PartitionsFromTree  int
	PartitionsFromMerge int
	MergeFilesCreated   int
	PartitionsMerged    int
	MergeEvictions      int
	SegmentsShared      int
	CurrentMergeThresh  int
	RelationCounts      map[Relation]int
	Phases              PhaseTimes
}

// Odyssey is the Space Odyssey engine: adaptive per-dataset octrees plus
// cross-dataset merge files, orchestrated by the query processor in Query.
//
// All methods are safe for concurrent use. The locking discipline splits
// the read path from the mutate path:
//
//   - mu (the layout lock) is held shared for the whole read side of a
//     query — merge-file routing, the per-dataset tree walks, merge-segment
//     reads — and exclusively only by layout mutations: the post-query merge
//     step (MergeOrExtend + EnforceBudget) and AddRaw.
//   - treeMu[ds] guards one dataset's octree. Queries take it shared when
//     octree.Tree.NeedsWrite proves the walk is read-only, exclusive when
//     the query must run the level-0 build or refine a partition — so
//     refinement excludes only readers of the affected dataset, never the
//     whole engine. The merge step takes the write lock of every member
//     dataset (RefineTo can refine lagging trees).
//   - statsMu guards the statistics collector and the metric counters;
//     critical sections are a few map operations.
//
// Lock order is always mu -> treeMu[ds] -> statsMu; treeMu locks are never
// nested during queries and are taken in sorted dataset order by the merge
// step.
type Odyssey struct {
	dev    simdisk.Storage
	cfg    Config
	bounds geom.Box

	mu     sync.RWMutex // layout lock: trees map membership + merger layout
	trees  map[object.DatasetID]*octree.Tree
	treeMu map[object.DatasetID]*sync.RWMutex
	merger *Merger

	// mergeFlight single-flights the merge step per combination: concurrent
	// triggers for one ComboKey — synchronous queries racing past the
	// threshold, or the async scheduler's task — attach to the in-flight
	// step instead of queueing repeated exclusive merges of the same
	// candidates. It also discharges PrepareMerge's single-flight
	// precondition structurally rather than by scheduler convention.
	mergeFlight flightGroup[ComboKey]

	// maint is the background maintenance scheduler; nil unless
	// Config.AsyncMaintenance is set. See maintenance.go.
	maint *maintainer

	// scans is the in-flight scan-sharing registry; nil unless
	// Config.ShareScans is set. buildMu/building single-flight the level-0
	// first-touch builds (one builder per dataset, waiters block on the
	// channel instead of herding on the tree lock). See scanshare.go.
	scans    *scanRegistry
	buildMu  sync.Mutex
	building map[object.DatasetID]chan struct{}

	// rcache is the epoch-scoped result cache; nil unless
	// Config.CacheResults is set. See resultcache.go.
	rcache *resultCache

	// layoutEpoch counts physical-layout changes: level-0 builds,
	// refinements (query- and merge-time) and merge-file evictions. The
	// steady-state fast path uses it to recognize that a previously futile
	// merge attempt cannot succeed now either.
	layoutEpoch atomic.Int64
	// futile (guarded by statsMu) records, per combination, the candidate
	// count and layout epoch as of the last time merging was found to have
	// no work: a MergeOrExtend attempt that appended nothing (candidates
	// can be unmergeable under the level policy — e.g. a key one tree has
	// refined past), or a NeedsMerge scan that found everything covered.
	// While neither count nor epoch has changed, the merge step would be a
	// no-op and both the exclusive lock and the coverage re-scan are
	// skipped.
	futile map[ComboKey]futileMark

	// heatTick is the logical clock heat decay runs on: one tick per query.
	// halfLife mirrors Config.HeatHalfLife as a float (0 = no decay).
	heatTick atomic.Int64
	halfLife float64

	statsMu        sync.Mutex // guards everything below
	stats          *Collector
	queries        int
	partsFromTree  int
	partsFromMerge int
	relationCounts map[Relation]int
	phases         PhaseTimes
	// dsQueries tracks how often each dataset appeared in a query — the
	// per-dataset heat the merge-file placement group is derived from —
	// decayed under Config.HeatHalfLife (without decay, val is the exact
	// integer count).
	dsQueries map[object.DatasetID]*dsHeat
}

// dsHeat is one dataset's decayed query count: val as of tick.
type dsHeat struct {
	val  float64
	tick int64
}

// decayed returns the heat as of tick now.
func (h *dsHeat) decayed(now int64, halfLife float64) float64 {
	if halfLife <= 0 || now <= h.tick {
		return h.val
	}
	return h.val * math.Exp2(-float64(now-h.tick)/halfLife)
}

// New creates the engine over the given raw files. Nothing is indexed until
// queries arrive.
func New(dev simdisk.Storage, raws []*rawfile.Raw, bounds geom.Box, cfg Config) (*Odyssey, error) {
	trees := make(map[object.DatasetID]*octree.Tree, len(raws))
	treeMu := make(map[object.DatasetID]*sync.RWMutex, len(raws))
	for _, raw := range raws {
		if _, dup := trees[raw.Dataset()]; dup {
			return nil, fmt.Errorf("core: duplicate dataset %d", raw.Dataset())
		}
		tree, err := octree.New(dev, raw, bounds, cfg.Octree)
		if err != nil {
			return nil, err
		}
		trees[raw.Dataset()] = tree
		treeMu[raw.Dataset()] = new(sync.RWMutex)
	}
	o := &Odyssey{
		dev:            dev,
		cfg:            cfg,
		bounds:         bounds,
		trees:          trees,
		treeMu:         treeMu,
		futile:         make(map[ComboKey]futileMark),
		stats:          NewCollector(),
		merger:         NewMerger(dev, cfg.Merger),
		relationCounts: make(map[Relation]int),
		dsQueries:      make(map[object.DatasetID]*dsHeat),
		halfLife:       float64(cfg.HeatHalfLife),
	}
	// Merge files co-locate with their hottest member dataset by default:
	// a superset/subset-routed query most often reads the merge file next
	// to that dataset's tree, so placing them together saves cross-device
	// head movement on an array.
	o.merger.PlaceGroup = func(members []object.DatasetID) string {
		return rawfile.GroupName(o.hottestMember(members))
	}
	if cfg.ShareScans {
		o.scans = newScanRegistry()
		o.building = make(map[object.DatasetID]chan struct{})
		dev.SetShareReads(true)
	}
	if cfg.CacheResults {
		o.rcache = newResultCache(bounds, cfg.CacheCapacity)
		o.rcache.halfLife = o.halfLife
		o.rcache.tick = o.heatTick.Load
		if cfg.AdaptiveCache {
			o.rcache.enableAdaptive()
		}
	}
	if o.scans != nil || o.rcache != nil {
		// The share-reader hook carries both layers: single-flight scan
		// attachment (sharing) and result retention (caching); either one
		// alone still needs the hook installed.
		for ds, tree := range trees {
			tree.ShareReader = o.shareReaderFor(ds, tree)
		}
	}
	if cfg.AsyncMaintenance {
		o.maint = newMaintainer(o, cfg.MaintenanceWorkers)
	}
	return o, nil
}

// hottestMember returns the member dataset queried most often so far (ties
// resolve to the lowest id; members must be non-empty and sorted).
func (o *Odyssey) hottestMember(members []object.DatasetID) object.DatasetID {
	now := o.heatTick.Load()
	o.statsMu.Lock()
	defer o.statsMu.Unlock()
	best, bestN := members[0], -1.0
	for _, ds := range members {
		var n float64
		if h := o.dsQueries[ds]; h != nil {
			n = h.decayed(now, o.halfLife)
		}
		if n > bestN {
			best, bestN = ds, n
		}
	}
	return best
}

// futileMark snapshots the state under which a merge attempt appended
// nothing; see Odyssey.futile.
type futileMark struct {
	candidates int
	epoch      int64
}

// AddRaw registers one more raw dataset with the engine. The dataset is
// indexed lazily like any other; adding is cheap and can happen at any
// point of the exploration session, including concurrently with queries.
func (o *Odyssey) AddRaw(raw *rawfile.Raw) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.trees[raw.Dataset()]; dup {
		return fmt.Errorf("core: duplicate dataset %d", raw.Dataset())
	}
	tree, err := octree.New(o.dev, raw, o.bounds, o.cfg.Octree)
	if err != nil {
		return err
	}
	if o.scans != nil || o.rcache != nil {
		tree.ShareReader = o.shareReaderFor(raw.Dataset(), tree)
	}
	o.trees[raw.Dataset()] = tree
	o.treeMu[raw.Dataset()] = new(sync.RWMutex)
	return nil
}

// Name implements engine.Engine.
func (o *Odyssey) Name() string {
	if o.cfg.DisableMerging {
		return "Odyssey-NoMerge"
	}
	return "Odyssey"
}

// Build implements engine.Engine. Space Odyssey never indexes up front;
// indexing happens incrementally during Query.
func (o *Odyssey) Build() error { return nil }

// Tree returns the incremental index of one dataset (nil if unknown). The
// tree itself is not synchronized; concurrent callers must not mutate it
// while queries run (use TreeInfo for a consistent snapshot).
func (o *Odyssey) Tree(ds object.DatasetID) *octree.Tree {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.trees[ds]
}

// TreeInfo is a consistent snapshot of one dataset's indexing state.
type TreeInfo struct {
	Built       bool
	Leaves      int
	MaxExtent   geom.Vec
	Refinements int
}

// TreeInfo snapshots a dataset's tree under its read lock; ok is false for
// unknown datasets.
func (o *Odyssey) TreeInfo(ds object.DatasetID) (info TreeInfo, ok bool) {
	o.mu.RLock()
	tree, lk := o.trees[ds], o.treeMu[ds]
	if tree == nil {
		o.mu.RUnlock()
		return TreeInfo{}, false
	}
	lk.RLock()
	info = TreeInfo{
		Built:       tree.Built(),
		Leaves:      tree.NumLeaves(),
		MaxExtent:   tree.MaxExtent(),
		Refinements: tree.Refinements,
	}
	lk.RUnlock()
	o.mu.RUnlock()
	return info, true
}

// Merger exposes the merger for inspection. The merger is synchronized only
// through the engine's locks; single-threaded inspection only.
func (o *Odyssey) Merger() *Merger { return o.merger }

// MergeFileCount returns how many merge files currently exist.
func (o *Odyssey) MergeFileCount() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.merger.NumFiles()
}

// MergeSpacePages returns the disk space merge files currently occupy.
func (o *Odyssey) MergeSpacePages() int64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.merger.TotalPages()
}

// Stats exposes the statistics collector for inspection. The collector is
// guarded by the engine during queries; single-threaded inspection only.
func (o *Odyssey) Stats() *Collector { return o.stats }

// Metrics returns a snapshot of the engine counters.
func (o *Odyssey) Metrics() Metrics {
	o.mu.RLock()
	refinements := 0
	built := 0
	for ds, t := range o.trees {
		lk := o.treeMu[ds]
		lk.RLock()
		refinements += t.Refinements
		if t.Built() {
			built++
		}
		lk.RUnlock()
	}
	m := Metrics{
		Refinements:        refinements,
		TreesBuilt:         built,
		MergeFilesCreated:  o.merger.MergesCreated,
		PartitionsMerged:   o.merger.PartitionsMerged,
		MergeEvictions:     o.merger.Evictions,
		SegmentsShared:     o.merger.SegmentsShared,
		CurrentMergeThresh: o.merger.Threshold(),
	}
	o.mu.RUnlock()

	o.statsMu.Lock()
	m.Queries = o.queries
	m.PartitionsFromTree = o.partsFromTree
	m.PartitionsFromMerge = o.partsFromMerge
	rel := make(map[Relation]int, len(o.relationCounts))
	for k, v := range o.relationCounts {
		rel[k] = v
	}
	m.RelationCounts = rel
	m.Phases = o.phases
	o.statsMu.Unlock()
	return m
}

// queryTree runs the per-dataset tree walk with the read/mutate split: a
// shared lock when NeedsWrite proves the walk is read-only, an exclusive
// lock when the query must build level 0 or refine. covered is the
// side-effect-free merge-coverage predicate matching hook, so leaves served
// from a merge file do not force the exclusive path. Because NeedsWrite is
// evaluated under the shared lock and only Query mutates trees, the
// read-only decision cannot be invalidated before the walk completes.
// Cancellation mid-walk releases the lock like any other error; refinements
// that completed before the abort still bump the layout epoch.
func (o *Odyssey) queryTree(ctx context.Context, tree *octree.Tree, lk *sync.RWMutex, q geom.Box,
	hook, covered func(*octree.Partition) bool) (octree.QueryResult, error) {
	lk.RLock()
	if !tree.NeedsWrite(q, covered) {
		res, err := tree.QueryCtx(ctx, q, hook)
		lk.RUnlock()
		return res, err
	}
	lk.RUnlock()
	lk.Lock()
	built := tree.Built()
	res, err := tree.QueryCtx(ctx, q, hook)
	if res.Refined > 0 || (!built && tree.Built()) {
		o.bumpLayoutEpoch()
	}
	lk.Unlock()
	return res, err
}

// queryTreeAsync is the read-mostly variant of queryTree used when the
// maintenance pipeline is on: the walk never refines — leaves that qualify
// are reported in the result's WantRefine for the scheduler to pick up —
// so the exclusive tree lock is taken only for the level-0 first-touch
// build (the one mutation a query cannot answer without).
func (o *Odyssey) queryTreeAsync(ctx context.Context, tree *octree.Tree, lk *sync.RWMutex, q geom.Box,
	hook func(*octree.Partition) bool) (octree.QueryResult, error) {
	lk.RLock()
	if tree.Built() {
		res, err := tree.QueryReadOnlyCtx(ctx, q, hook)
		lk.RUnlock()
		return res, err
	}
	lk.RUnlock()
	lk.Lock()
	var res octree.QueryResult
	built := tree.Built()
	clock := simdisk.PhaseClock(ctx, o.dev)
	t0 := clock()
	err := tree.EnsureBuiltCtx(ctx)
	buildTime := clock() - t0
	if err == nil {
		res, err = tree.QueryReadOnlyCtx(ctx, q, hook)
	}
	res.BuildTime += buildTime
	if !built && tree.Built() {
		o.bumpLayoutEpoch()
	}
	lk.Unlock()
	return res, err
}

// answerContained tries to answer one dataset's share of a query entirely
// from the result cache: under the dataset's shared tree lock (so Built and
// MaxExtent are stable) it extends the query window by the tree's max
// object half-extent and probes the cache for a region containing it. On a
// hit the cached region content is filtered by the original query box —
// exact, because every object intersecting q has its center inside the
// extended window, hence inside the region. Only called with caching on.
func (o *Odyssey) answerContained(ds object.DatasetID, tree *octree.Tree, q geom.Box) ([]object.Object, bool) {
	lk := o.treeMu[ds]
	lk.RLock()
	defer lk.RUnlock()
	if !tree.Built() {
		return nil, false
	}
	ext := q.Expand(tree.MaxExtent())
	objs, ok := o.rcache.AnswerContained(ds, tree.FanoutPerDim(), o.layoutEpoch.Load(), ext)
	if !ok {
		return nil, false
	}
	var out []object.Object
	for _, obj := range objs {
		if obj.Intersects(q) {
			out = append(out, obj)
		}
	}
	return out, true
}

// Query implements engine.Engine: it executes the paper's full pipeline —
// statistics, merge-file routing (exact / superset / subset / none),
// incremental indexing with per-query refinement, merge-file reads, and the
// post-query merge step. Queries may run concurrently; see the type comment
// for the locking discipline.
func (o *Odyssey) Query(q geom.Box, datasets []object.DatasetID) ([]object.Object, error) {
	return o.QueryCtx(nil, q, datasets)
}

// QueryCtx is Query with cancellation. The context is observed on the read
// side only — between and inside the per-dataset tree walks and the
// merge-segment reads, down to page-boundary granularity in simdisk — and a
// canceled query returns a wrapped simdisk.ErrCanceled with nil objects,
// never a partial result. Layout mutations are never interrupted mid-way:
// a refinement that already started completes, and the post-query merge
// step is skipped entirely (not aborted) when the context has expired —
// merging is housekeeping for future queries, so a caller that walked away
// should not pay for it. A query whose context expires only after the read
// side finished still returns its full, correct result.
func (o *Odyssey) QueryCtx(ctx context.Context, q geom.Box, datasets []object.DatasetID) ([]object.Object, error) {
	if err := simdisk.CheckCtx(ctx); err != nil {
		return nil, err
	}
	// With caching on, a per-query scope rides the context so the layers
	// that actually perform device I/O can mark it; a query whose scope
	// stays clean is counted as served with zero device reads.
	var scope *cacheScope
	if o.rcache != nil {
		ctx, scope = withCacheScope(ctx)
	}
	ordered := append([]object.DatasetID(nil), datasets...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	key := KeyOf(ordered)

	o.mu.RLock()
	for _, ds := range ordered {
		if o.trees[ds] == nil {
			o.mu.RUnlock()
			return nil, fmt.Errorf("core: unknown dataset %d", ds)
		}
	}

	tick := o.heatTick.Add(1) // one decay tick per query
	o.statsMu.Lock()
	o.queries++
	for _, ds := range ordered {
		h := o.dsQueries[ds]
		if h == nil {
			h = &dsHeat{}
			o.dsQueries[ds] = h
		}
		h.val = h.decayed(tick, o.halfLife) + 1
		h.tick = tick
	}
	count := o.stats.RecordQuery(key)
	o.statsMu.Unlock()

	// Merge-file routing (§3.2.3).
	var mf *MergeFile
	rel := RelNone
	if !o.cfg.DisableMerging {
		mf, rel = o.merger.Lookup(ordered)
	}
	o.statsMu.Lock()
	o.relationCounts[rel]++
	o.statsMu.Unlock()

	// Per-dataset execution through the Adaptor. Partitions covered by the
	// chosen merge file are served from it (and, per §3.2.2, not refined).
	type mergeRead struct {
		entry octree.Key
		ds    object.DatasetID
	}
	servedSet := make(map[mergeRead]bool)
	servedLeaves := 0
	async := o.maint != nil
	type dsWants struct {
		ds   object.DatasetID
		keys []octree.Key
	}
	var wants []dsWants
	var out []object.Object
	var touched []octree.Key
	var phases PhaseTimes
	for _, ds := range ordered {
		tree := o.trees[ds]
		if o.rcache != nil {
			// Containment answering: a query whose extended window lies
			// inside a cached region is answered by filtering the region's
			// objects — no build, no walk, no merge routing, zero device
			// reads for this dataset. Objects are keyed by center, so every
			// object intersecting q has its center inside the extended
			// window and therefore inside the cached cell; filtering the
			// full cell content is exact. Partition statistics are not
			// accumulated for contained answers (there was no walk); the
			// layout keeps converging from the queries that do walk.
			if objs, ok := o.answerContained(ds, tree, q); ok {
				out = append(out, objs...)
				continue
			}
		}
		if o.scans != nil {
			// Single-flight the level-0 first touch: one builder per
			// dataset, concurrent queries wait on the build instead of
			// herding on the exclusive tree lock.
			bt, err := o.ensureBuiltShared(ctx, ds, tree, o.treeMu[ds])
			if err != nil {
				o.mu.RUnlock()
				return nil, fmt.Errorf("core: dataset %d: %w", ds, err)
			}
			if bt > 0 {
				missCacheScope(ctx)
			}
			phases.LevelZeroBuild += bt
		}
		var hook, covered func(*octree.Partition) bool
		if mf != nil && mf.memberOf[ds] {
			ds := ds
			fanout := tree.FanoutPerDim()
			hook = func(p *octree.Partition) bool {
				entry, ok := mf.covering(p.Key(), fanout)
				if !ok {
					return false
				}
				servedSet[mergeRead{entry, ds}] = true
				servedLeaves++
				return true
			}
			covered = func(p *octree.Partition) bool {
				_, ok := mf.covering(p.Key(), fanout)
				return ok
			}
		}
		var res octree.QueryResult
		var err error
		if async {
			res, err = o.queryTreeAsync(ctx, tree, o.treeMu[ds], q, hook)
		} else {
			res, err = o.queryTree(ctx, tree, o.treeMu[ds], q, hook, covered)
		}
		if err != nil {
			o.mu.RUnlock()
			return nil, fmt.Errorf("core: dataset %d: %w", ds, err)
		}
		if o.rcache != nil && (res.BuildTime > 0 || res.RefineTime > 0 || res.Refined > 0) {
			// Builds and refinements read the device outside the
			// share-reader hook; a query that triggered either was not
			// answered read-free.
			missCacheScope(ctx)
		}
		if len(res.WantRefine) > 0 {
			wants = append(wants, dsWants{ds: ds, keys: res.WantRefine})
		}
		phases.LevelZeroBuild += res.BuildTime
		phases.Refinement += res.RefineTime
		phases.TreeReads += res.ReadTime
		out = append(out, res.Objects...)
		for _, p := range res.Touched {
			touched = append(touched, p.Key())
		}
	}

	// Read the merge-file segments, ordered by file position so the device
	// sees a (mostly) sequential pass over the merge file.
	if len(servedSet) > 0 {
		reads := make([]mergeRead, 0, len(servedSet))
		for r := range servedSet {
			reads = append(reads, r)
		}
		sort.Slice(reads, func(i, j int) bool {
			a := mf.entries[reads[i].entry][reads[i].ds].run.Start
			b := mf.entries[reads[j].entry][reads[j].ds].run.Start
			return a < b
		})
		// Merge segments cache like partitions: a segment is the full
		// per-dataset content of its entry cell, so the entry key and its
		// cell box are the cache's (cell, region) metadata. Merged cells
		// are frozen coarse (merged partitions are never refined, §3.2.2),
		// which makes their cached regions the prime source of containment
		// answers.
		var qEpoch int64
		var fanout int
		if o.rcache != nil {
			qEpoch = o.layoutEpoch.Load()
			fanout = o.trees[ordered[0]].FanoutPerDim()
		}
		clock := simdisk.PhaseClock(ctx, o.dev)
		t0 := clock()
		for _, r := range reads {
			var objs []object.Object
			hit := false
			if o.rcache != nil {
				objs, hit = o.rcache.Lookup(r.ds, r.entry, qEpoch)
			}
			if !hit {
				var err error
				objs, err = o.merger.ReadSegmentCtx(ctx, mf, r.entry, r.ds)
				if err != nil {
					o.mu.RUnlock()
					return nil, err
				}
				if o.rcache != nil {
					missCacheScope(ctx)
					o.rcache.Insert(r.ds, r.entry, qEpoch, EntryBox(o.bounds, r.entry, fanout), objs)
				}
			}
			for _, obj := range objs {
				if obj.Intersects(q) {
					out = append(out, obj)
				}
			}
		}
		phases.MergeReads += clock() - t0
	}

	o.statsMu.Lock()
	o.phases.LevelZeroBuild += phases.LevelZeroBuild
	o.phases.Refinement += phases.Refinement
	o.phases.TreeReads += phases.TreeReads
	o.phases.MergeReads += phases.MergeReads
	o.partsFromMerge += len(servedSet)
	o.partsFromTree += len(touched) - servedLeaves
	o.stats.RecordPartitions(key, touched)
	o.statsMu.Unlock()

	// The read side is complete; a scope no I/O layer marked means every
	// partition and segment came from the result cache (or another query's
	// in-flight scan) — the query cost zero device reads. The merge step
	// below is layout maintenance, not query reading, and is not attributed.
	if scope != nil && !scope.missed.Load() {
		o.rcache.zeroReads.Add(1)
	}

	o.merger.OnQuery()
	// A context that expired after the read side completed skips the merge
	// step instead of aborting inside it: the result is already correct and
	// complete, and layout reorganization must never be left half-done.
	doMerge := !o.cfg.DisableMerging && count >= o.merger.Threshold() &&
		simdisk.CheckCtx(ctx) == nil
	if doMerge {
		// Steady-state fast path: skip the exclusive merge step when it
		// would provably be a no-op — either every accumulated partition is
		// already covered by the combination's merge file, or the last
		// attempt was futile and nothing it depends on (candidate set,
		// physical layout) has changed since. Without this, every
		// post-threshold query would barrier the whole engine on the layout
		// lock.
		epoch := o.layoutEpoch.Load()
		o.statsMu.Lock()
		nCand := o.stats.NumPartitions(key)
		mark, tried := o.futile[key]
		o.statsMu.Unlock()
		if tried && nCand <= mark.candidates && epoch == mark.epoch {
			doMerge = false
		} else if nCand == 0 {
			doMerge = false
		} else {
			fanout := o.trees[ordered[0]].FanoutPerDim()
			o.statsMu.Lock()
			candidates := o.stats.PartitionsUnsorted(key)
			o.statsMu.Unlock()
			doMerge = o.merger.NeedsMerge(key, ordered, candidates, fanout)
			if !doMerge {
				// Everything covered: memoize so converged steady-state
				// traffic skips even this coverage scan next time.
				o.statsMu.Lock()
				o.futile[key] = futileMark{candidates: nCand, epoch: epoch}
				o.statsMu.Unlock()
			}
		}
	}
	o.mu.RUnlock()

	// Asynchronous maintenance: the query returns now; refinement and the
	// merge step become coalescing background tasks. The refinements are
	// enqueued first so the scheduler's merge gate (members must be
	// refinement-quiescent) orders this query's merge after them.
	if async {
		qVol := q.Volume()
		for _, w := range wants {
			o.maint.EnqueueRefine(w.ds, w.keys, q, qVol, ordered)
		}
		if doMerge {
			o.maint.EnqueueMerge(key, ordered)
		}
		return out, nil
	}

	// Post-query merge step (§3.2.1): once the combination crossed mt,
	// merge (or extend the merge file with) every qualifying partition.
	// Concurrent queries that crossed the threshold together single-flight
	// the step per combination — the late arrivals attach to the leader's
	// merge instead of queueing identical exclusive steps behind it. The
	// step runs under a non-cancelable context (layout mutations are never
	// interrupted mid-way) that keeps the query's QoS scope, so the merge
	// I/O is charged to the query that triggered it.
	if doMerge {
		mctx := ctx
		if mctx != nil {
			mctx = context.WithoutCancel(mctx)
		}
		if _, err := o.mergeFlight.Do(key, func() error {
			return o.runMergeStep(mctx, key, ordered)
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runMergeStep is the synchronous merge step. Layout reorganization takes
// the exclusive layout lock plus the write lock of every member dataset
// (RefineTo may refine lagging trees), runs MergeOrExtend plus the budget
// enforcement, and maintains the futility memo and the layout epoch.
func (o *Odyssey) runMergeStep(ctx context.Context, key ComboKey, ordered []object.DatasetID) error {
	o.mu.Lock()
	for _, ds := range ordered {
		o.treeMu[ds].Lock()
	}
	o.statsMu.Lock()
	candidates := o.stats.Partitions(key)
	o.statsMu.Unlock()
	refBefore := 0
	for _, ds := range ordered {
		refBefore += o.trees[ds].Refinements
	}
	clock := simdisk.PhaseClock(ctx, o.dev)
	t0 := clock()
	appended, err := o.merger.MergeOrExtend(ctx, key, ordered, candidates, o.trees)
	var evicted []ComboKey
	if err == nil {
		evicted, err = o.merger.EnforceBudget()
	}
	dt := clock() - t0
	refAfter := 0
	for _, ds := range ordered {
		refAfter += o.trees[ds].Refinements
	}
	bumped := false
	if err == nil {
		// Advance the epoch only on real layout change (appends,
		// merge-time refinement, evictions) — a no-op attempt must not
		// invalidate other combinations' futile marks, or two stuck
		// combinations would ping-pong exclusive retries forever.
		if appended > 0 || refAfter != refBefore || len(evicted) > 0 {
			o.bumpLayoutEpoch()
			bumped = true
		}
		o.statsMu.Lock()
		if appended == 0 {
			o.futile[key] = futileMark{candidates: len(candidates), epoch: o.layoutEpoch.Load()}
		} else {
			delete(o.futile, key)
		}
		// Reset evicted combinations' statistics before releasing the
		// layout lock: a concurrent query that observed the eviction
		// with stale pre-eviction counts would immediately re-merge
		// the combination from its old candidates, thrashing the
		// budget. Evicted combinations must re-earn merging from zero.
		for _, combo := range evicted {
			delete(o.futile, combo)
			o.stats.Reset(combo)
		}
		o.statsMu.Unlock()
	}
	for i := len(ordered) - 1; i >= 0; i-- {
		o.treeMu[ordered[i]].Unlock()
	}
	o.mu.Unlock()
	if bumped && o.maint != nil {
		// The publish may have covered cells with pending refinement
		// demands; drop them from the heat ledger (behavior-identical —
		// the worker would skip them — but the heap stays bounded).
		o.maint.PruneCoveredRefines(o.regionCovered)
	}
	if err != nil {
		return err
	}
	o.statsMu.Lock()
	o.phases.MergeWrites += dt
	o.statsMu.Unlock()
	return nil
}

// runRefineTask executes one background refinement task: the region under
// the task's partition key is refined to convergence for the query window
// that demanded it, one refinement per lock acquisition — the dataset's
// write lock is released between steps, so queries on the same dataset
// interleave with the convergence instead of waiting it out, and queries
// on other datasets are completely undisturbed (the concurrent-refinement
// property the scheduler exists for). Returns the number of refinement
// operations applied.
func (o *Odyssey) runRefineTask(ds object.DatasetID, t refineTask) (int, error) {
	o.mu.RLock()
	tree, lk := o.trees[ds], o.treeMu[ds]
	o.mu.RUnlock()
	if tree == nil {
		return 0, nil
	}
	// Background refinement runs under a maintenance-priority scope: the
	// scope's charges attribute the task's exact cost, and each step waits
	// out the background I/O budget before taking the dataset's write lock
	// — the wait sits at a lock-free point, so a throttled refinement never
	// blocks the foreground queries the budget protects. The context is
	// non-cancelable — layout mutations are never interrupted mid-way.
	ctx, _ := simdisk.WithOpScope(context.Background(), simdisk.PriMaintenance)
	clock := simdisk.PhaseClock(ctx, o.dev)
	refined := 0
	var dt time.Duration
	var taskErr error
	for {
		// Re-check merge coverage before every step: a merge published
		// since the demanding query ran may now cover this cell for the
		// query's combination, and merged partitions are not refined
		// (§3.2.2) — the sync pipeline enforces this with its covered
		// predicate, the async pipeline re-evaluates it across the gap.
		if o.regionCovered(ds, t) {
			break
		}
		if err := o.dev.AwaitMaintenanceTurn(ctx); err != nil {
			taskErr = err
			break
		}
		lk.Lock()
		t0 := clock()
		step, err := tree.RefineRegionStep(ctx, t.key, t.box, t.qVol)
		dt += clock() - t0
		lk.Unlock()
		if err != nil {
			taskErr = err
			break
		}
		if !step {
			break
		}
		refined++
	}
	if refined > 0 {
		o.bumpLayoutEpoch()
	}
	o.statsMu.Lock()
	o.phases.Refinement += dt
	o.statsMu.Unlock()
	return refined, taskErr
}

// regionCovered reports whether the merge file routing the task's
// combination now covers the task's cell — then the refinement demand is
// void (the partition is served from the merge file and never refined).
func (o *Odyssey) regionCovered(ds object.DatasetID, t refineTask) bool {
	if o.cfg.DisableMerging || len(t.members) == 0 {
		return false
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	tree := o.trees[ds]
	if tree == nil {
		return true // dataset vanished; nothing to refine
	}
	mf, _ := o.merger.LookupNoTouch(t.members)
	if mf == nil || !mf.memberOf[ds] {
		return false
	}
	_, covered := mf.covering(t.key, tree.FanoutPerDim())
	return covered
}

// runMergeAsync executes one background merge task. Under the default
// configuration (same-level policy, no segment sharing) it uses the
// two-stage path: PrepareMerge copies partitions under the shared layout
// lock plus member tree read locks — queries keep flowing during the copy
// I/O — and PublishMerge registers the entries atomically under a brief
// exclusive lock, so a racing query observes either none or all of the
// step's entries, never a partial merge file. Configurations the staged
// path cannot serve fall back to the synchronous exclusive merge step.
// The whole step is single-flight per combination (PrepareMerge's
// precondition), and runs under a maintenance-priority scope: a storage
// budget throttles the copy I/O while foreground queries are in flight.
func (o *Odyssey) runMergeAsync(key ComboKey, ordered []object.DatasetID) error {
	_, err := o.mergeFlight.Do(key, func() error {
		return o.mergeAsyncStep(key, ordered)
	})
	return err
}

// mergeAsyncStep is runMergeAsync's body; callers hold the combination's
// mergeFlight slot.
func (o *Odyssey) mergeAsyncStep(key ComboKey, ordered []object.DatasetID) error {
	ctx, _ := simdisk.WithOpScope(context.Background(), simdisk.PriMaintenance)
	// Honor the background I/O budget before acquiring any tree locks (a
	// gated wait under the member read locks would stall racing writers and,
	// behind them, foreground readers). A query whose sync merge attaches to
	// this flight waits too — but it is doing no device I/O while it waits,
	// so it does not hold the foreground-in-flight signal up itself.
	if err := o.dev.AwaitMaintenanceTurn(ctx); err != nil {
		return err
	}
	if !o.merger.CanStageMerges() {
		// Direct call, not through mergeFlight: this goroutine already
		// holds the combination's flight slot.
		return o.runMergeStep(ctx, key, ordered)
	}
	clock := simdisk.PhaseClock(ctx, o.dev)

	// The futility memo for a no-op outcome uses the epoch from before the
	// prepare stage: if anything (a racing refinement of another region)
	// advances the layout mid-stage, the stale mark makes the next query
	// re-attempt rather than wedge the combination.
	epochBefore := o.layoutEpoch.Load()

	o.mu.RLock()
	for _, ds := range ordered {
		if o.trees[ds] == nil {
			o.mu.RUnlock()
			return nil
		}
	}
	for _, ds := range ordered {
		o.treeMu[ds].RLock()
	}
	o.statsMu.Lock()
	candidates := o.stats.Partitions(key)
	o.statsMu.Unlock()
	t0 := clock()
	prep, prepErr := o.merger.PrepareMerge(ctx, key, ordered, candidates, o.trees)
	dt := clock() - t0
	for i := len(ordered) - 1; i >= 0; i-- {
		o.treeMu[ordered[i]].RUnlock()
	}
	o.mu.RUnlock()
	if prep == nil && prepErr != nil {
		return prepErr
	}

	// Publish even after a prepare error: like the synchronous step, the
	// entries staged before the failure are kept (their pages are already
	// written — dropping them would leak unreachable space in a live merge
	// file). Futility is memoized only on a clean no-op: a failed prepare
	// saw an incomplete picture, so the next query must re-attempt.
	o.mu.Lock()
	t1 := clock()
	appended := o.merger.PublishMerge(prep)
	evicted, err := o.merger.EnforceBudget()
	dt += clock() - t1
	bumped := false
	if err == nil {
		if appended > 0 || len(evicted) > 0 {
			o.bumpLayoutEpoch()
			bumped = true
		}
		o.statsMu.Lock()
		if appended == 0 && prepErr == nil {
			o.futile[key] = futileMark{candidates: len(candidates), epoch: epochBefore}
		} else {
			delete(o.futile, key)
		}
		for _, combo := range evicted {
			delete(o.futile, combo)
			o.stats.Reset(combo)
		}
		o.statsMu.Unlock()
	}
	o.mu.Unlock()
	if bumped && o.maint != nil {
		// See runMergeStep: newly covered cells void their pending
		// refinement demands.
		o.maint.PruneCoveredRefines(o.regionCovered)
	}
	if err == nil {
		err = prepErr
	}
	if err != nil {
		return err
	}
	o.statsMu.Lock()
	o.phases.MergeWrites += dt
	o.statsMu.Unlock()
	return nil
}

// AsyncMaintenance reports whether the background maintenance pipeline is
// on.
func (o *Odyssey) AsyncMaintenance() bool { return o.maint != nil }

// ShareScans reports whether cross-query work sharing is on.
func (o *Odyssey) ShareScans() bool { return o.scans != nil }

// CacheResults reports whether the epoch-scoped result cache is on.
func (o *Odyssey) CacheResults() bool { return o.rcache != nil }

// CacheStats snapshots the result-cache ledger (all zero when
// Config.CacheResults is off).
func (o *Odyssey) CacheStats() CacheStats {
	if o.rcache == nil {
		return CacheStats{}
	}
	return o.rcache.Stats()
}

// SharingStats snapshots the engine-layer scan-sharing counters (all zero
// when Config.ShareScans is off). The device-layer counters (coalesced run
// reads, pages saved) are in the storage Stats.
func (o *Odyssey) SharingStats() SharingStats {
	if o.scans == nil {
		return SharingStats{}
	}
	return o.scans.Stats()
}

// MaintenanceStats snapshots the background pipeline's counters (zero when
// maintenance is synchronous).
func (o *Odyssey) MaintenanceStats() MaintenanceStats {
	if o.maint == nil {
		return MaintenanceStats{}
	}
	return o.maint.Stats()
}

// MaintenanceErr returns the most recent background task error, nil when
// every task succeeded or maintenance is synchronous. It is the
// compatibility accessor over the bounded failure ring — MaintenanceHealth
// returns the full history, the quarantine list and the retry state.
func (o *Odyssey) MaintenanceErr() error {
	if o.maint == nil {
		return nil
	}
	return o.maint.Err()
}

// MaintenanceHealth snapshots the background pipeline's structured health
// ledger: the bounded failure history, the currently quarantined units, and
// how many failed tasks are waiting out a retry backoff. Zero when
// maintenance is synchronous.
func (o *Odyssey) MaintenanceHealth() MaintenanceHealth {
	if o.maint == nil {
		return MaintenanceHealth{}
	}
	return o.maint.Health()
}

// Unquarantine re-admits one quarantined maintenance unit (operator
// recovery after replacing a bad device, say), clearing its failure streak.
// Returns whether the unit was quarantined.
func (o *Odyssey) Unquarantine(q QuarantinedCell) bool {
	if o.maint == nil {
		return false
	}
	return o.maint.Unquarantine(q)
}

// SetMaintenancePaused freezes (true) or thaws (false) background task
// pickup; queued work stays queued while paused. The brownout controller
// uses it to shed maintenance load during fault storms. A no-op when
// maintenance is synchronous.
func (o *Odyssey) SetMaintenancePaused(paused bool) {
	if o.maint != nil {
		o.maint.SetPaused(paused)
	}
}

// FlushResultCache drops every entry of the result cache (a no-op with
// caching off). An operator control and measurement knob: benchmarks use it
// to start a measured phase cold-cache without touching the layout.
func (o *Odyssey) FlushResultCache() {
	if o.rcache != nil {
		o.rcache.Invalidate()
	}
}

// Quiesce blocks until the maintenance pipeline has drained every queued
// and running task — the point where the layout has converged for the
// traffic seen so far. It returns immediately when maintenance is
// synchronous (the layout is always converged then), and early with a
// cancellation error when ctx expires first.
func (o *Odyssey) Quiesce(ctx context.Context) error {
	if o.maint == nil {
		return nil
	}
	return o.maint.Quiesce(ctx)
}

// Close shuts the maintenance pipeline down: queued tasks are dropped,
// in-flight tasks run to completion (layout mutations are never
// interrupted mid-way), and the worker goroutines exit before Close
// returns. Queries remain answerable afterwards — they simply stop
// scheduling maintenance. Safe to call more than once; a no-op when
// maintenance is synchronous.
func (o *Odyssey) Close() {
	if o.maint != nil {
		o.maint.Close()
	}
}

// LayoutSignature renders the physical layout deterministically: per
// dataset the sorted leaf cell keys, per merge file the combination and its
// sorted entry keys. Two engines that converged to the same layout produce
// identical strings — the async-vs-sync equivalence tests and the bench's
// convergence check compare layouts through it. Meaningful on a quiescent
// engine; safe (but racy in content) while queries run.
func (o *Odyssey) LayoutSignature() string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	ids := make([]object.DatasetID, 0, len(o.trees))
	for ds := range o.trees {
		ids = append(ids, ds)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for _, ds := range ids {
		tree, lk := o.trees[ds], o.treeMu[ds]
		lk.RLock()
		fmt.Fprintf(&b, "ds%d:", ds)
		if tree.Built() {
			keys := make([]octree.Key, 0, tree.NumLeaves())
			for _, p := range tree.Lookup(tree.Bounds()) {
				keys = append(keys, p.Key())
			}
			sortKeys(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " %d/%d.%d.%d", k.Level, k.X, k.Y, k.Z)
			}
		} else {
			b.WriteString(" unbuilt")
		}
		b.WriteByte('\n')
		lk.RUnlock()
	}
	for _, mf := range o.merger.Files() {
		fmt.Fprintf(&b, "merge %s:", mf.Combo())
		for _, k := range mf.EntryKeys() {
			fmt.Fprintf(&b, " %d/%d.%d.%d", k.Level, k.X, k.Y, k.Z)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
