package core

import (
	"fmt"
	"sort"
	"time"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/octree"
	"spaceodyssey/internal/rawfile"
	"spaceodyssey/internal/simdisk"
)

// Config assembles the engine parameters (paper defaults throughout).
type Config struct {
	// Octree configures the incremental indexing (rt, ppl).
	Octree octree.Config
	// Merger configures merging (mt, |C| minimum, space budget).
	Merger MergerConfig
	// DisableMerging turns the Merger off — the paper's "Odyssey w/o
	// merging" ablation (Figure 5c).
	DisableMerging bool
}

// DefaultConfig returns the paper's configuration: rt=4, ppl=64, mt=2,
// |C| >= 3, unlimited merge space.
func DefaultConfig() Config {
	return Config{
		Octree: octree.DefaultConfig(),
		Merger: MergerConfig{MergeThreshold: 2, MinCombination: 3},
	}
}

// PhaseTimes breaks the engine's simulated time down by activity — the
// adaptive analogue of the paper's indexing/querying split for static
// engines (Figure 4's stacked bars).
type PhaseTimes struct {
	// LevelZeroBuild is the in-situ first-touch partitioning of raw files.
	LevelZeroBuild time.Duration
	// Refinement is the read-split-rewrite I/O of the Adaptor.
	Refinement time.Duration
	// TreeReads is time reading partitions from individual dataset files.
	TreeReads time.Duration
	// MergeReads is time reading segments from merge files.
	MergeReads time.Duration
	// MergeWrites is the Merger's copy I/O (reads of originals included).
	MergeWrites time.Duration
}

// Total sums all phases.
func (p PhaseTimes) Total() time.Duration {
	return p.LevelZeroBuild + p.Refinement + p.TreeReads + p.MergeReads + p.MergeWrites
}

// Metrics aggregates engine activity for reporting.
type Metrics struct {
	Queries             int
	Refinements         int
	TreesBuilt          int
	PartitionsFromTree  int
	PartitionsFromMerge int
	MergeFilesCreated   int
	PartitionsMerged    int
	MergeEvictions      int
	SegmentsShared      int
	CurrentMergeThresh  int
	RelationCounts      map[Relation]int
	Phases              PhaseTimes
}

// Odyssey is the Space Odyssey engine: adaptive per-dataset octrees plus
// cross-dataset merge files, orchestrated by the query processor in Query.
type Odyssey struct {
	dev    *simdisk.Device
	cfg    Config
	bounds geom.Box
	trees  map[object.DatasetID]*octree.Tree
	stats  *Collector
	merger *Merger

	queries        int
	partsFromTree  int
	partsFromMerge int
	relationCounts map[Relation]int
	phases         PhaseTimes
}

// New creates the engine over the given raw files. Nothing is indexed until
// queries arrive.
func New(dev *simdisk.Device, raws []*rawfile.Raw, bounds geom.Box, cfg Config) (*Odyssey, error) {
	trees := make(map[object.DatasetID]*octree.Tree, len(raws))
	for _, raw := range raws {
		if _, dup := trees[raw.Dataset()]; dup {
			return nil, fmt.Errorf("core: duplicate dataset %d", raw.Dataset())
		}
		tree, err := octree.New(dev, raw, bounds, cfg.Octree)
		if err != nil {
			return nil, err
		}
		trees[raw.Dataset()] = tree
	}
	return &Odyssey{
		dev:            dev,
		cfg:            cfg,
		bounds:         bounds,
		trees:          trees,
		stats:          NewCollector(),
		merger:         NewMerger(dev, cfg.Merger),
		relationCounts: make(map[Relation]int),
	}, nil
}

// AddRaw registers one more raw dataset with the engine. The dataset is
// indexed lazily like any other; adding is cheap and can happen at any
// point of the exploration session.
func (o *Odyssey) AddRaw(raw *rawfile.Raw) error {
	if _, dup := o.trees[raw.Dataset()]; dup {
		return fmt.Errorf("core: duplicate dataset %d", raw.Dataset())
	}
	tree, err := octree.New(o.dev, raw, o.bounds, o.cfg.Octree)
	if err != nil {
		return err
	}
	o.trees[raw.Dataset()] = tree
	return nil
}

// Name implements engine.Engine.
func (o *Odyssey) Name() string {
	if o.cfg.DisableMerging {
		return "Odyssey-NoMerge"
	}
	return "Odyssey"
}

// Build implements engine.Engine. Space Odyssey never indexes up front;
// indexing happens incrementally during Query.
func (o *Odyssey) Build() error { return nil }

// Tree returns the incremental index of one dataset (nil if unknown).
func (o *Odyssey) Tree(ds object.DatasetID) *octree.Tree { return o.trees[ds] }

// Merger exposes the merger for inspection.
func (o *Odyssey) Merger() *Merger { return o.merger }

// Stats exposes the statistics collector for inspection.
func (o *Odyssey) Stats() *Collector { return o.stats }

// Metrics returns a snapshot of the engine counters.
func (o *Odyssey) Metrics() Metrics {
	refinements := 0
	built := 0
	for _, t := range o.trees {
		refinements += t.Refinements
		if t.Built() {
			built++
		}
	}
	rel := make(map[Relation]int, len(o.relationCounts))
	for k, v := range o.relationCounts {
		rel[k] = v
	}
	return Metrics{
		Queries:             o.queries,
		Refinements:         refinements,
		TreesBuilt:          built,
		PartitionsFromTree:  o.partsFromTree,
		PartitionsFromMerge: o.partsFromMerge,
		MergeFilesCreated:   o.merger.MergesCreated,
		PartitionsMerged:    o.merger.PartitionsMerged,
		MergeEvictions:      o.merger.Evictions,
		SegmentsShared:      o.merger.SegmentsShared,
		CurrentMergeThresh:  o.merger.Threshold(),
		RelationCounts:      rel,
		Phases:              o.phases,
	}
}

// Query implements engine.Engine: it executes the paper's full pipeline —
// statistics, merge-file routing (exact / superset / subset / none),
// incremental indexing with per-query refinement, merge-file reads, and the
// post-query merge step.
func (o *Odyssey) Query(q geom.Box, datasets []object.DatasetID) ([]object.Object, error) {
	o.queries++
	ordered := append([]object.DatasetID(nil), datasets...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, ds := range ordered {
		if o.trees[ds] == nil {
			return nil, fmt.Errorf("core: unknown dataset %d", ds)
		}
	}
	key := KeyOf(ordered)
	count := o.stats.RecordQuery(key)

	// Merge-file routing (§3.2.3).
	var mf *MergeFile
	rel := RelNone
	if !o.cfg.DisableMerging {
		mf, rel = o.merger.Lookup(ordered)
	}
	o.relationCounts[rel]++

	// Per-dataset execution through the Adaptor. Partitions covered by the
	// chosen merge file are served from it (and, per §3.2.2, not refined).
	type mergeRead struct {
		entry octree.Key
		ds    object.DatasetID
	}
	servedSet := make(map[mergeRead]bool)
	servedLeaves := 0
	var out []object.Object
	var touched []octree.Key
	for _, ds := range ordered {
		tree := o.trees[ds]
		var hook func(*octree.Partition) bool
		if mf != nil && mf.memberOf[ds] {
			ds := ds
			fanout := tree.FanoutPerDim()
			hook = func(p *octree.Partition) bool {
				entry, ok := mf.covering(p.Key(), fanout)
				if !ok {
					return false
				}
				servedSet[mergeRead{entry, ds}] = true
				servedLeaves++
				return true
			}
		}
		res, err := tree.Query(q, hook)
		if err != nil {
			return nil, fmt.Errorf("core: dataset %d: %w", ds, err)
		}
		o.phases.LevelZeroBuild += res.BuildTime
		o.phases.Refinement += res.RefineTime
		o.phases.TreeReads += res.ReadTime
		out = append(out, res.Objects...)
		for _, p := range res.Touched {
			touched = append(touched, p.Key())
		}
	}

	// Read the merge-file segments, ordered by file position so the device
	// sees a (mostly) sequential pass over the merge file.
	if len(servedSet) > 0 {
		reads := make([]mergeRead, 0, len(servedSet))
		for r := range servedSet {
			reads = append(reads, r)
		}
		sort.Slice(reads, func(i, j int) bool {
			a := mf.entries[reads[i].entry][reads[i].ds].run.Start
			b := mf.entries[reads[j].entry][reads[j].ds].run.Start
			return a < b
		})
		t0 := o.dev.Clock()
		for _, r := range reads {
			objs, err := o.merger.ReadSegment(mf, r.entry, r.ds)
			if err != nil {
				return nil, err
			}
			for _, obj := range objs {
				if obj.Intersects(q) {
					out = append(out, obj)
				}
			}
		}
		o.phases.MergeReads += o.dev.Clock() - t0
		o.partsFromMerge += len(reads)
	}
	o.partsFromTree += len(touched) - servedLeaves
	o.stats.RecordPartitions(key, touched)

	// Post-query merge step (§3.2.1): once the combination crossed mt,
	// merge (or extend the merge file with) every qualifying partition.
	o.merger.OnQuery()
	if !o.cfg.DisableMerging && count >= o.merger.Threshold() {
		t0 := o.dev.Clock()
		if _, err := o.merger.MergeOrExtend(key, ordered, o.stats.Partitions(key), o.trees); err != nil {
			return nil, err
		}
		evicted, err := o.merger.EnforceBudget()
		if err != nil {
			return nil, err
		}
		for _, combo := range evicted {
			o.stats.Reset(combo)
		}
		o.phases.MergeWrites += o.dev.Clock() - t0
	}
	return out, nil
}
