package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/octree"
	"spaceodyssey/internal/rawfile"
	"spaceodyssey/internal/simdisk"
)

// Config assembles the engine parameters (paper defaults throughout).
type Config struct {
	// Octree configures the incremental indexing (rt, ppl).
	Octree octree.Config
	// Merger configures merging (mt, |C| minimum, space budget).
	Merger MergerConfig
	// DisableMerging turns the Merger off — the paper's "Odyssey w/o
	// merging" ablation (Figure 5c).
	DisableMerging bool
}

// DefaultConfig returns the paper's configuration: rt=4, ppl=64, mt=2,
// |C| >= 3, unlimited merge space.
func DefaultConfig() Config {
	return Config{
		Octree: octree.DefaultConfig(),
		Merger: MergerConfig{MergeThreshold: 2, MinCombination: 3},
	}
}

// PhaseTimes breaks the engine's simulated time down by activity — the
// adaptive analogue of the paper's indexing/querying split for static
// engines (Figure 4's stacked bars). Under concurrent queries the phases
// are attributed from shared-clock deltas, so overlapping queries can bleed
// into each other's buckets; the total remains exact on the default
// single-channel topology. On multi-channel or multi-device storage the
// clock is a critical-path max, so phase deltas under-count work shadowed
// by a busier channel — treat PhaseTimes as single-channel diagnostics.
type PhaseTimes struct {
	// LevelZeroBuild is the in-situ first-touch partitioning of raw files.
	LevelZeroBuild time.Duration
	// Refinement is the read-split-rewrite I/O of the Adaptor.
	Refinement time.Duration
	// TreeReads is time reading partitions from individual dataset files.
	TreeReads time.Duration
	// MergeReads is time reading segments from merge files.
	MergeReads time.Duration
	// MergeWrites is the Merger's copy I/O (reads of originals included).
	MergeWrites time.Duration
}

// Total sums all phases.
func (p PhaseTimes) Total() time.Duration {
	return p.LevelZeroBuild + p.Refinement + p.TreeReads + p.MergeReads + p.MergeWrites
}

// Metrics aggregates engine activity for reporting.
type Metrics struct {
	Queries             int
	Refinements         int
	TreesBuilt          int
	PartitionsFromTree  int
	PartitionsFromMerge int
	MergeFilesCreated   int
	PartitionsMerged    int
	MergeEvictions      int
	SegmentsShared      int
	CurrentMergeThresh  int
	RelationCounts      map[Relation]int
	Phases              PhaseTimes
}

// Odyssey is the Space Odyssey engine: adaptive per-dataset octrees plus
// cross-dataset merge files, orchestrated by the query processor in Query.
//
// All methods are safe for concurrent use. The locking discipline splits
// the read path from the mutate path:
//
//   - mu (the layout lock) is held shared for the whole read side of a
//     query — merge-file routing, the per-dataset tree walks, merge-segment
//     reads — and exclusively only by layout mutations: the post-query merge
//     step (MergeOrExtend + EnforceBudget) and AddRaw.
//   - treeMu[ds] guards one dataset's octree. Queries take it shared when
//     octree.Tree.NeedsWrite proves the walk is read-only, exclusive when
//     the query must run the level-0 build or refine a partition — so
//     refinement excludes only readers of the affected dataset, never the
//     whole engine. The merge step takes the write lock of every member
//     dataset (RefineTo can refine lagging trees).
//   - statsMu guards the statistics collector and the metric counters;
//     critical sections are a few map operations.
//
// Lock order is always mu -> treeMu[ds] -> statsMu; treeMu locks are never
// nested during queries and are taken in sorted dataset order by the merge
// step.
type Odyssey struct {
	dev    simdisk.Storage
	cfg    Config
	bounds geom.Box

	mu     sync.RWMutex // layout lock: trees map membership + merger layout
	trees  map[object.DatasetID]*octree.Tree
	treeMu map[object.DatasetID]*sync.RWMutex
	merger *Merger

	// layoutEpoch counts physical-layout changes: level-0 builds,
	// refinements (query- and merge-time) and merge-file evictions. The
	// steady-state fast path uses it to recognize that a previously futile
	// merge attempt cannot succeed now either.
	layoutEpoch atomic.Int64
	// futile (guarded by statsMu) records, per combination, the candidate
	// count and layout epoch as of the last time merging was found to have
	// no work: a MergeOrExtend attempt that appended nothing (candidates
	// can be unmergeable under the level policy — e.g. a key one tree has
	// refined past), or a NeedsMerge scan that found everything covered.
	// While neither count nor epoch has changed, the merge step would be a
	// no-op and both the exclusive lock and the coverage re-scan are
	// skipped.
	futile map[ComboKey]futileMark

	statsMu        sync.Mutex // guards everything below
	stats          *Collector
	queries        int
	partsFromTree  int
	partsFromMerge int
	relationCounts map[Relation]int
	phases         PhaseTimes
	// dsQueries counts how often each dataset appeared in a query — the
	// per-dataset heat the merge-file placement group is derived from.
	dsQueries map[object.DatasetID]int
}

// New creates the engine over the given raw files. Nothing is indexed until
// queries arrive.
func New(dev simdisk.Storage, raws []*rawfile.Raw, bounds geom.Box, cfg Config) (*Odyssey, error) {
	trees := make(map[object.DatasetID]*octree.Tree, len(raws))
	treeMu := make(map[object.DatasetID]*sync.RWMutex, len(raws))
	for _, raw := range raws {
		if _, dup := trees[raw.Dataset()]; dup {
			return nil, fmt.Errorf("core: duplicate dataset %d", raw.Dataset())
		}
		tree, err := octree.New(dev, raw, bounds, cfg.Octree)
		if err != nil {
			return nil, err
		}
		trees[raw.Dataset()] = tree
		treeMu[raw.Dataset()] = new(sync.RWMutex)
	}
	o := &Odyssey{
		dev:            dev,
		cfg:            cfg,
		bounds:         bounds,
		trees:          trees,
		treeMu:         treeMu,
		futile:         make(map[ComboKey]futileMark),
		stats:          NewCollector(),
		merger:         NewMerger(dev, cfg.Merger),
		relationCounts: make(map[Relation]int),
		dsQueries:      make(map[object.DatasetID]int),
	}
	// Merge files co-locate with their hottest member dataset by default:
	// a superset/subset-routed query most often reads the merge file next
	// to that dataset's tree, so placing them together saves cross-device
	// head movement on an array.
	o.merger.PlaceGroup = func(members []object.DatasetID) string {
		return rawfile.GroupName(o.hottestMember(members))
	}
	return o, nil
}

// hottestMember returns the member dataset queried most often so far (ties
// resolve to the lowest id; members must be non-empty and sorted).
func (o *Odyssey) hottestMember(members []object.DatasetID) object.DatasetID {
	o.statsMu.Lock()
	defer o.statsMu.Unlock()
	best, bestN := members[0], -1
	for _, ds := range members {
		if n := o.dsQueries[ds]; n > bestN {
			best, bestN = ds, n
		}
	}
	return best
}

// futileMark snapshots the state under which a merge attempt appended
// nothing; see Odyssey.futile.
type futileMark struct {
	candidates int
	epoch      int64
}

// AddRaw registers one more raw dataset with the engine. The dataset is
// indexed lazily like any other; adding is cheap and can happen at any
// point of the exploration session, including concurrently with queries.
func (o *Odyssey) AddRaw(raw *rawfile.Raw) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.trees[raw.Dataset()]; dup {
		return fmt.Errorf("core: duplicate dataset %d", raw.Dataset())
	}
	tree, err := octree.New(o.dev, raw, o.bounds, o.cfg.Octree)
	if err != nil {
		return err
	}
	o.trees[raw.Dataset()] = tree
	o.treeMu[raw.Dataset()] = new(sync.RWMutex)
	return nil
}

// Name implements engine.Engine.
func (o *Odyssey) Name() string {
	if o.cfg.DisableMerging {
		return "Odyssey-NoMerge"
	}
	return "Odyssey"
}

// Build implements engine.Engine. Space Odyssey never indexes up front;
// indexing happens incrementally during Query.
func (o *Odyssey) Build() error { return nil }

// Tree returns the incremental index of one dataset (nil if unknown). The
// tree itself is not synchronized; concurrent callers must not mutate it
// while queries run (use TreeInfo for a consistent snapshot).
func (o *Odyssey) Tree(ds object.DatasetID) *octree.Tree {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.trees[ds]
}

// TreeInfo is a consistent snapshot of one dataset's indexing state.
type TreeInfo struct {
	Built       bool
	Leaves      int
	MaxExtent   geom.Vec
	Refinements int
}

// TreeInfo snapshots a dataset's tree under its read lock; ok is false for
// unknown datasets.
func (o *Odyssey) TreeInfo(ds object.DatasetID) (info TreeInfo, ok bool) {
	o.mu.RLock()
	tree, lk := o.trees[ds], o.treeMu[ds]
	if tree == nil {
		o.mu.RUnlock()
		return TreeInfo{}, false
	}
	lk.RLock()
	info = TreeInfo{
		Built:       tree.Built(),
		Leaves:      tree.NumLeaves(),
		MaxExtent:   tree.MaxExtent(),
		Refinements: tree.Refinements,
	}
	lk.RUnlock()
	o.mu.RUnlock()
	return info, true
}

// Merger exposes the merger for inspection. The merger is synchronized only
// through the engine's locks; single-threaded inspection only.
func (o *Odyssey) Merger() *Merger { return o.merger }

// MergeFileCount returns how many merge files currently exist.
func (o *Odyssey) MergeFileCount() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.merger.NumFiles()
}

// MergeSpacePages returns the disk space merge files currently occupy.
func (o *Odyssey) MergeSpacePages() int64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.merger.TotalPages()
}

// Stats exposes the statistics collector for inspection. The collector is
// guarded by the engine during queries; single-threaded inspection only.
func (o *Odyssey) Stats() *Collector { return o.stats }

// Metrics returns a snapshot of the engine counters.
func (o *Odyssey) Metrics() Metrics {
	o.mu.RLock()
	refinements := 0
	built := 0
	for ds, t := range o.trees {
		lk := o.treeMu[ds]
		lk.RLock()
		refinements += t.Refinements
		if t.Built() {
			built++
		}
		lk.RUnlock()
	}
	m := Metrics{
		Refinements:        refinements,
		TreesBuilt:         built,
		MergeFilesCreated:  o.merger.MergesCreated,
		PartitionsMerged:   o.merger.PartitionsMerged,
		MergeEvictions:     o.merger.Evictions,
		SegmentsShared:     o.merger.SegmentsShared,
		CurrentMergeThresh: o.merger.Threshold(),
	}
	o.mu.RUnlock()

	o.statsMu.Lock()
	m.Queries = o.queries
	m.PartitionsFromTree = o.partsFromTree
	m.PartitionsFromMerge = o.partsFromMerge
	rel := make(map[Relation]int, len(o.relationCounts))
	for k, v := range o.relationCounts {
		rel[k] = v
	}
	m.RelationCounts = rel
	m.Phases = o.phases
	o.statsMu.Unlock()
	return m
}

// queryTree runs the per-dataset tree walk with the read/mutate split: a
// shared lock when NeedsWrite proves the walk is read-only, an exclusive
// lock when the query must build level 0 or refine. covered is the
// side-effect-free merge-coverage predicate matching hook, so leaves served
// from a merge file do not force the exclusive path. Because NeedsWrite is
// evaluated under the shared lock and only Query mutates trees, the
// read-only decision cannot be invalidated before the walk completes.
// Cancellation mid-walk releases the lock like any other error; refinements
// that completed before the abort still bump the layout epoch.
func (o *Odyssey) queryTree(ctx context.Context, tree *octree.Tree, lk *sync.RWMutex, q geom.Box,
	hook, covered func(*octree.Partition) bool) (octree.QueryResult, error) {
	lk.RLock()
	if !tree.NeedsWrite(q, covered) {
		res, err := tree.QueryCtx(ctx, q, hook)
		lk.RUnlock()
		return res, err
	}
	lk.RUnlock()
	lk.Lock()
	built := tree.Built()
	res, err := tree.QueryCtx(ctx, q, hook)
	if res.Refined > 0 || (!built && tree.Built()) {
		o.layoutEpoch.Add(1)
	}
	lk.Unlock()
	return res, err
}

// Query implements engine.Engine: it executes the paper's full pipeline —
// statistics, merge-file routing (exact / superset / subset / none),
// incremental indexing with per-query refinement, merge-file reads, and the
// post-query merge step. Queries may run concurrently; see the type comment
// for the locking discipline.
func (o *Odyssey) Query(q geom.Box, datasets []object.DatasetID) ([]object.Object, error) {
	return o.QueryCtx(nil, q, datasets)
}

// QueryCtx is Query with cancellation. The context is observed on the read
// side only — between and inside the per-dataset tree walks and the
// merge-segment reads, down to page-boundary granularity in simdisk — and a
// canceled query returns a wrapped simdisk.ErrCanceled with nil objects,
// never a partial result. Layout mutations are never interrupted mid-way:
// a refinement that already started completes, and the post-query merge
// step is skipped entirely (not aborted) when the context has expired —
// merging is housekeeping for future queries, so a caller that walked away
// should not pay for it. A query whose context expires only after the read
// side finished still returns its full, correct result.
func (o *Odyssey) QueryCtx(ctx context.Context, q geom.Box, datasets []object.DatasetID) ([]object.Object, error) {
	if err := simdisk.CheckCtx(ctx); err != nil {
		return nil, err
	}
	ordered := append([]object.DatasetID(nil), datasets...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	key := KeyOf(ordered)

	o.mu.RLock()
	for _, ds := range ordered {
		if o.trees[ds] == nil {
			o.mu.RUnlock()
			return nil, fmt.Errorf("core: unknown dataset %d", ds)
		}
	}

	o.statsMu.Lock()
	o.queries++
	for _, ds := range ordered {
		o.dsQueries[ds]++
	}
	count := o.stats.RecordQuery(key)
	o.statsMu.Unlock()

	// Merge-file routing (§3.2.3).
	var mf *MergeFile
	rel := RelNone
	if !o.cfg.DisableMerging {
		mf, rel = o.merger.Lookup(ordered)
	}
	o.statsMu.Lock()
	o.relationCounts[rel]++
	o.statsMu.Unlock()

	// Per-dataset execution through the Adaptor. Partitions covered by the
	// chosen merge file are served from it (and, per §3.2.2, not refined).
	type mergeRead struct {
		entry octree.Key
		ds    object.DatasetID
	}
	servedSet := make(map[mergeRead]bool)
	servedLeaves := 0
	var out []object.Object
	var touched []octree.Key
	var phases PhaseTimes
	for _, ds := range ordered {
		tree := o.trees[ds]
		var hook, covered func(*octree.Partition) bool
		if mf != nil && mf.memberOf[ds] {
			ds := ds
			fanout := tree.FanoutPerDim()
			hook = func(p *octree.Partition) bool {
				entry, ok := mf.covering(p.Key(), fanout)
				if !ok {
					return false
				}
				servedSet[mergeRead{entry, ds}] = true
				servedLeaves++
				return true
			}
			covered = func(p *octree.Partition) bool {
				_, ok := mf.covering(p.Key(), fanout)
				return ok
			}
		}
		res, err := o.queryTree(ctx, tree, o.treeMu[ds], q, hook, covered)
		if err != nil {
			o.mu.RUnlock()
			return nil, fmt.Errorf("core: dataset %d: %w", ds, err)
		}
		phases.LevelZeroBuild += res.BuildTime
		phases.Refinement += res.RefineTime
		phases.TreeReads += res.ReadTime
		out = append(out, res.Objects...)
		for _, p := range res.Touched {
			touched = append(touched, p.Key())
		}
	}

	// Read the merge-file segments, ordered by file position so the device
	// sees a (mostly) sequential pass over the merge file.
	if len(servedSet) > 0 {
		reads := make([]mergeRead, 0, len(servedSet))
		for r := range servedSet {
			reads = append(reads, r)
		}
		sort.Slice(reads, func(i, j int) bool {
			a := mf.entries[reads[i].entry][reads[i].ds].run.Start
			b := mf.entries[reads[j].entry][reads[j].ds].run.Start
			return a < b
		})
		t0 := o.dev.Clock()
		for _, r := range reads {
			objs, err := o.merger.ReadSegmentCtx(ctx, mf, r.entry, r.ds)
			if err != nil {
				o.mu.RUnlock()
				return nil, err
			}
			for _, obj := range objs {
				if obj.Intersects(q) {
					out = append(out, obj)
				}
			}
		}
		phases.MergeReads += o.dev.Clock() - t0
	}

	o.statsMu.Lock()
	o.phases.LevelZeroBuild += phases.LevelZeroBuild
	o.phases.Refinement += phases.Refinement
	o.phases.TreeReads += phases.TreeReads
	o.phases.MergeReads += phases.MergeReads
	o.partsFromMerge += len(servedSet)
	o.partsFromTree += len(touched) - servedLeaves
	o.stats.RecordPartitions(key, touched)
	o.statsMu.Unlock()

	o.merger.OnQuery()
	// A context that expired after the read side completed skips the merge
	// step instead of aborting inside it: the result is already correct and
	// complete, and layout reorganization must never be left half-done.
	doMerge := !o.cfg.DisableMerging && count >= o.merger.Threshold() &&
		simdisk.CheckCtx(ctx) == nil
	if doMerge {
		// Steady-state fast path: skip the exclusive merge step when it
		// would provably be a no-op — either every accumulated partition is
		// already covered by the combination's merge file, or the last
		// attempt was futile and nothing it depends on (candidate set,
		// physical layout) has changed since. Without this, every
		// post-threshold query would barrier the whole engine on the layout
		// lock.
		epoch := o.layoutEpoch.Load()
		o.statsMu.Lock()
		nCand := o.stats.NumPartitions(key)
		mark, tried := o.futile[key]
		o.statsMu.Unlock()
		if tried && nCand <= mark.candidates && epoch == mark.epoch {
			doMerge = false
		} else if nCand == 0 {
			doMerge = false
		} else {
			fanout := o.trees[ordered[0]].FanoutPerDim()
			o.statsMu.Lock()
			candidates := o.stats.PartitionsUnsorted(key)
			o.statsMu.Unlock()
			doMerge = o.merger.NeedsMerge(key, ordered, candidates, fanout)
			if !doMerge {
				// Everything covered: memoize so converged steady-state
				// traffic skips even this coverage scan next time.
				o.statsMu.Lock()
				o.futile[key] = futileMark{candidates: nCand, epoch: epoch}
				o.statsMu.Unlock()
			}
		}
	}
	o.mu.RUnlock()

	// Post-query merge step (§3.2.1): once the combination crossed mt,
	// merge (or extend the merge file with) every qualifying partition.
	// Layout reorganization takes the exclusive layout lock plus the write
	// lock of every member dataset (RefineTo may refine lagging trees).
	if doMerge {
		o.mu.Lock()
		for _, ds := range ordered {
			o.treeMu[ds].Lock()
		}
		o.statsMu.Lock()
		candidates := o.stats.Partitions(key)
		o.statsMu.Unlock()
		refBefore := 0
		for _, ds := range ordered {
			refBefore += o.trees[ds].Refinements
		}
		t0 := o.dev.Clock()
		appended, err := o.merger.MergeOrExtend(key, ordered, candidates, o.trees)
		var evicted []ComboKey
		if err == nil {
			evicted, err = o.merger.EnforceBudget()
		}
		dt := o.dev.Clock() - t0
		refAfter := 0
		for _, ds := range ordered {
			refAfter += o.trees[ds].Refinements
		}
		if err == nil {
			// Advance the epoch only on real layout change (appends,
			// merge-time refinement, evictions) — a no-op attempt must not
			// invalidate other combinations' futile marks, or two stuck
			// combinations would ping-pong exclusive retries forever.
			if appended > 0 || refAfter != refBefore || len(evicted) > 0 {
				o.layoutEpoch.Add(1)
			}
			o.statsMu.Lock()
			if appended == 0 {
				o.futile[key] = futileMark{candidates: len(candidates), epoch: o.layoutEpoch.Load()}
			} else {
				delete(o.futile, key)
			}
			// Reset evicted combinations' statistics before releasing the
			// layout lock: a concurrent query that observed the eviction
			// with stale pre-eviction counts would immediately re-merge
			// the combination from its old candidates, thrashing the
			// budget. Evicted combinations must re-earn merging from zero.
			for _, combo := range evicted {
				delete(o.futile, combo)
				o.stats.Reset(combo)
			}
			o.statsMu.Unlock()
		}
		for i := len(ordered) - 1; i >= 0; i-- {
			o.treeMu[ordered[i]].Unlock()
		}
		o.mu.Unlock()
		if err != nil {
			return nil, err
		}
		o.statsMu.Lock()
		o.phases.MergeWrites += dt
		o.statsMu.Unlock()
	}
	return out, nil
}
