package core

import (
	"context"
	"fmt"

	"spaceodyssey/internal/object"
	"spaceodyssey/internal/octree"
)

// LevelPolicy selects how the Merger handles partitions whose refinement
// level differs across the datasets of a combination. The paper's current
// implementation merges only equal-level partitions and names the other two
// strategies as open issues (§3.2.5); all three are implemented here.
type LevelPolicy int

const (
	// SameLevel merges a partition only when every member dataset has a
	// leaf at exactly that cell — the paper's default.
	SameLevel LevelPolicy = iota
	// RefineToFinest refines lagging datasets to the candidate partition's
	// level at merge time (paying the refinement I/O), so hot areas merge
	// sooner after their levels diverge.
	RefineToFinest
	// CoarsestCover merges at the coarsest cell that is a leaf in some
	// member dataset, aggregating the finer datasets' leaves under that
	// cell into one segment. Merges happen earlier but copy more data.
	CoarsestCover
)

// String implements fmt.Stringer.
func (p LevelPolicy) String() string {
	switch p {
	case SameLevel:
		return "same-level"
	case RefineToFinest:
		return "refine-to-finest"
	case CoarsestCover:
		return "coarsest-cover"
	}
	return fmt.Sprintf("LevelPolicy(%d)", int(p))
}

// mergeJob describes one partition to copy into a merge file: the cell key
// of the new entry and, per member dataset (in order), a reader producing
// the objects of that cell. Readers take the merge's context so the read
// I/O is charged to the merge's QoS scope.
type mergeJob struct {
	key     octree.Key
	readers []func(context.Context) ([]object.Object, error)
}

// planJob applies the level policy to one candidate key, returning the
// entry key and per-dataset readers, or ok=false when the candidate cannot
// be merged under the policy.
func (m *Merger) planJob(
	cand octree.Key,
	datasets []object.DatasetID,
	trees map[object.DatasetID]*octree.Tree,
) (mergeJob, bool) {
	switch m.cfg.LevelPolicy {
	case RefineToFinest:
		return m.planRefineToFinest(cand, datasets, trees)
	case CoarsestCover:
		return m.planCoarsestCover(cand, datasets, trees)
	default:
		return m.planSameLevel(cand, datasets, trees)
	}
}

// planSameLevel is the paper's rule: all members must hold a leaf at
// exactly the candidate key.
func (m *Merger) planSameLevel(
	cand octree.Key,
	datasets []object.DatasetID,
	trees map[object.DatasetID]*octree.Tree,
) (mergeJob, bool) {
	job := mergeJob{key: cand}
	for _, ds := range datasets {
		tree := trees[ds]
		if tree == nil {
			return mergeJob{}, false
		}
		leaf := tree.LeafAt(cand)
		if leaf == nil {
			return mergeJob{}, false
		}
		job.readers = append(job.readers, func(ctx context.Context) ([]object.Object, error) {
			return tree.ReadPartitionCtx(ctx, leaf)
		})
	}
	return job, true
}

// planRefineToFinest refines datasets that are coarser than the candidate
// down to its level, then merges like SameLevel. Datasets already refined
// past the candidate still disqualify it (its cell has no single-level
// representation there).
func (m *Merger) planRefineToFinest(
	cand octree.Key,
	datasets []object.DatasetID,
	trees map[object.DatasetID]*octree.Tree,
) (mergeJob, bool) {
	job := mergeJob{key: cand}
	for _, ds := range datasets {
		tree := trees[ds]
		if tree == nil || !tree.Built() {
			return mergeJob{}, false
		}
		// Qualify up front: the tree must not be refined past the
		// candidate (RefineTo would fail mid-merge otherwise).
		if tree.LeafAt(cand) == nil && tree.LeafCovering(cand) == nil {
			return mergeJob{}, false
		}
		job.readers = append(job.readers, func(ctx context.Context) ([]object.Object, error) {
			leaf, err := tree.RefineToCtx(ctx, cand)
			if err != nil {
				return nil, err
			}
			return tree.ReadPartitionCtx(ctx, leaf)
		})
	}
	return job, true
}

// planCoarsestCover lifts the candidate to the coarsest cell that is a
// leaf in at least one member dataset, and aggregates the finer members'
// leaves under that cell.
func (m *Merger) planCoarsestCover(
	cand octree.Key,
	datasets []object.DatasetID,
	trees map[object.DatasetID]*octree.Tree,
) (mergeJob, bool) {
	// Find the coarsest covering-leaf level among members.
	minLevel := int(cand.Level)
	fanout := 0
	for _, ds := range datasets {
		tree := trees[ds]
		if tree == nil || !tree.Built() {
			return mergeJob{}, false
		}
		fanout = tree.FanoutPerDim()
		if cover := tree.LeafCovering(cand); cover != nil {
			if lvl := int(cover.Key().Level); lvl < minLevel {
				minLevel = lvl
			}
		}
	}
	if minLevel < 1 {
		minLevel = 1 // never merge the whole volume as a single entry
	}
	key := cand.Ancestor(uint8(minLevel), fanout)
	job := mergeJob{key: key}
	for _, ds := range datasets {
		tree := trees[ds]
		leaves := tree.LeavesUnder(key)
		if len(leaves) == 0 {
			// Tree is coarser than even the lifted key in this area (its
			// leaf sits above the key); aggregation is impossible.
			return mergeJob{}, false
		}
		job.readers = append(job.readers, func(ctx context.Context) ([]object.Object, error) {
			var out []object.Object
			for _, leaf := range leaves {
				objs, err := tree.ReadPartitionCtx(ctx, leaf)
				if err != nil {
					return nil, err
				}
				out = append(out, objs...)
			}
			return out, nil
		})
	}
	return job, true
}

// overlapsEntry reports whether key contains (or equals) an existing entry
// of mf — appending it would create overlapping entries. The covering()
// check handles the opposite direction (key inside an existing entry).
func overlapsEntry(mf *MergeFile, key octree.Key, fanout int) bool {
	for existing := range mf.entries {
		if key.AncestorOf(existing, fanout) {
			return true
		}
	}
	return false
}
