package core

import (
	"container/heap"
	"context"
	"math"
	"sync"
	"sync/atomic"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/octree"
)

// DefaultCacheCapacity is the result cache's object budget when
// Config.CacheCapacity is zero: enough for the hot working set of the
// paper-scale experiments (~10 MB of object records) without letting an
// exploratory sweep pin every partition it ever touched.
const DefaultCacheCapacity = 1 << 17

// cachedScan is one completed partition or merge-segment scan the cache
// retains: the full object content of region (a cell box) as of the layout
// epoch it was read under. The slice is shared with every query the entry
// answers and must be treated as read-only (the engine only filters from
// it — objects are values).
type cachedScan struct {
	key    scanKey
	epoch  int64
	region geom.Box
	objs   []object.Object
}

// coldHeap is a min-heap of cached scans by (heat, FIFO): the coldest —
// and, among equals, oldest — entry surfaces first for eviction. It reuses
// the maintenance scheduler's heatItem access-count machinery with the
// comparison inverted: the maintainer drains hottest-first, the cache
// evicts coldest-first. Under Config.HeatHalfLife the decayed-heat score
// takes precedence (zero scores with decay off restore the legacy order),
// so a stale hotspot's once-hot entries cool down and become evictable.
type coldHeap []*heatItem[*cachedScan]

func (h coldHeap) Len() int { return len(h) }
func (h coldHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score < h[j].score
	}
	if h[i].heat != h[j].heat {
		return h[i].heat < h[j].heat
	}
	return h[i].seq < h[j].seq
}
func (h coldHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *coldHeap) Push(x any) {
	it := x.(*heatItem[*cachedScan])
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *coldHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// resultCache is the epoch-scoped result cache behind Config.CacheResults:
// completed partition scans and merge-segment reads are retained keyed on
// (dataset, cell) and tagged with the global layout epoch they were read
// under, so a later query of the same cell within the same epoch is served
// without touching the device — the temporal extension of the scan
// registry's single-flight sharing. Every layout publish (bumpLayoutEpoch)
// flushes the cache; entries inserted with a stale epoch are dropped lazily
// on their next lookup. Capacity is bounded in cached objects with
// heat-aware eviction: every hit bumps the entry's access count, eviction
// removes the coldest entry first.
//
// Beyond exact per-cell hits, the cache answers by containment: a query
// whose extended window lies inside a cached region is answered by
// filtering that region's objects — objects are keyed by center, so every
// object intersecting the query has its center inside the extended window
// and therefore inside the cached cell. AnswerContained is the probe.
//
// Locking: mu is a leaf lock (never held while acquiring any engine lock);
// callers hold the engine's shared layout lock, so entry content cannot be
// invalidated between a lookup and the caller's use of the slice.
type resultCache struct {
	bounds geom.Box

	// halfLife and tick wire heat decay in (see decay.go); both zero-valued
	// when Config.HeatHalfLife is off.
	halfLife float64
	tick     func() int64

	mu       sync.Mutex
	capacity int64 // max cached objects across all entries
	entries  map[scanKey]*heatItem[*cachedScan]
	// levels counts entries per (dataset, cell level) so the containment
	// probe only computes candidate ancestor keys for levels that can hit.
	levels  map[object.DatasetID]map[uint8]int
	cold    coldHeap
	objects int64 // cached objects across all entries
	seq     int64 // FIFO tiebreak for equal heat

	// Adaptive capacity (Config.AdaptiveCache): evicted keys linger as
	// shadow-LRU ghosts; a miss that hits a ghost within the same epoch is
	// a capacity miss — the entry would have hit had the cache been bigger
	// — and grows the budget toward the knee of the hit curve. Sustained
	// low occupancy with no evictions shrinks it back. Tuning runs between
	// layout epochs (Invalidate) and every tuneEvery operations, entirely
	// under mu; capacity only changes what the cache retains, never what a
	// query returns.
	adaptive       bool
	minCap, maxCap int64
	ghost          map[scanKey]struct{}
	ghostRing      []scanKey // FIFO bound for the ghost set
	ghostHitsWin   int64     // capacity misses since the last tune
	evictionsWin   int64
	peakObjects    int64
	sinceTune      int64
	ghostHits      int64 // lifetime counters, guarded by mu
	grows          int64
	shrinks        int64

	hits            atomic.Int64
	containmentHits atomic.Int64
	misses          atomic.Int64
	inserts         atomic.Int64
	evictions       atomic.Int64
	invalidations   atomic.Int64
	zeroReads       atomic.Int64
}

// Adaptive-capacity tuning constants: the ghost list remembers up to
// ghostCap evicted keys, tuning runs every tuneEvery cache operations (and
// on every layout epoch), growth needs growAfter capacity misses in a
// window, and a shrink fires when peak occupancy stayed under capacity/4
// with no evictions.
const (
	ghostCap  = 4096
	tuneEvery = 256
	growAfter = 8
)

// newResultCache creates an empty cache over the engine's exploration
// bounds. capacity <= 0 selects DefaultCacheCapacity.
func newResultCache(bounds geom.Box, capacity int64) *resultCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &resultCache{
		bounds:   bounds,
		capacity: capacity,
		entries:  make(map[scanKey]*heatItem[*cachedScan]),
		levels:   make(map[object.DatasetID]map[uint8]int),
	}
}

// enableAdaptive turns on self-tuning capacity around the configured
// starting capacity: the budget floats in [capacity/16, capacity*64].
func (c *resultCache) enableAdaptive() {
	c.mu.Lock()
	c.adaptive = true
	c.minCap = c.capacity / 16
	if c.minCap < 1024 {
		c.minCap = 1024
	}
	c.maxCap = c.capacity * 64
	c.ghost = make(map[scanKey]struct{})
	c.mu.Unlock()
}

// touchLocked bumps a hit entry's heat (and decayed score) and repositions
// it in the eviction heap. Caller holds mu.
func (c *resultCache) touchLocked(it *heatItem[*cachedScan]) {
	it.heat++
	if c.halfLife > 0 {
		it.score = bumpScore(it.score, c.tick(), c.halfLife)
	}
	heap.Fix(&c.cold, it.index)
}

// noteGhostLocked records a capacity miss when the missed key is still on
// the ghost list. Caller holds mu.
func (c *resultCache) noteGhostLocked(key scanKey) {
	if !c.adaptive {
		return
	}
	if _, ok := c.ghost[key]; ok {
		c.ghostHitsWin++
		c.ghostHits++
	}
}

// pushGhostLocked remembers an evicted key on the bounded shadow list.
// Caller holds mu.
func (c *resultCache) pushGhostLocked(key scanKey) {
	if !c.adaptive {
		return
	}
	if _, ok := c.ghost[key]; ok {
		return
	}
	if len(c.ghostRing) >= ghostCap {
		delete(c.ghost, c.ghostRing[0])
		c.ghostRing = c.ghostRing[1:]
	}
	c.ghost[key] = struct{}{}
	c.ghostRing = append(c.ghostRing, key)
}

// maybeTuneLocked runs the capacity tuner on its operation cadence.
// Caller holds mu.
func (c *resultCache) maybeTuneLocked() {
	if !c.adaptive {
		return
	}
	if c.sinceTune++; c.sinceTune >= tuneEvery {
		c.tuneLocked()
	}
}

// tuneLocked moves capacity toward the knee of the observed hit curve:
// ghost re-misses in the window mean entries the budget pushed out were
// still wanted (grow — the hit curve is still climbing past the current
// size); an eviction-free window that never filled a quarter of the budget
// means the curve flattened well below it (shrink). Caller holds mu.
func (c *resultCache) tuneLocked() {
	if c.peakObjects < c.objects {
		c.peakObjects = c.objects
	}
	switch {
	case c.ghostHitsWin >= growAfter && c.capacity < c.maxCap:
		c.capacity *= 2
		if c.capacity > c.maxCap {
			c.capacity = c.maxCap
		}
		c.grows++
	case c.evictionsWin == 0 && c.ghostHitsWin == 0 &&
		c.peakObjects*4 <= c.capacity && c.capacity > c.minCap:
		c.capacity /= 2
		if c.capacity < c.minCap {
			c.capacity = c.minCap
		}
		c.shrinks++
	}
	c.ghostHitsWin = 0
	c.evictionsWin = 0
	c.peakObjects = c.objects
	c.sinceTune = 0
}

// Lookup returns the cached content of (ds, cell) if present at the given
// layout epoch. A present entry from an older epoch is dead (the global
// epoch only advances) and is dropped on sight. ok distinguishes a cached
// empty cell from a miss.
func (c *resultCache) Lookup(ds object.DatasetID, cell octree.Key, epoch int64) ([]object.Object, bool) {
	key := scanKey{ds: ds, cell: cell}
	c.mu.Lock()
	it, ok := c.entries[key]
	if !ok {
		c.noteGhostLocked(key)
		c.maybeTuneLocked()
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	if it.task.epoch != epoch {
		c.removeLocked(it)
		c.maybeTuneLocked()
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.touchLocked(it)
	c.maybeTuneLocked()
	objs := it.task.objs
	c.mu.Unlock()
	c.hits.Add(1)
	return objs, true
}

// AnswerContained probes for any cached region of ds (at the given epoch)
// containing ext, the query window already extended by the tree's max
// object half-extent. Because cached regions are cell boxes of the uniform
// k^level grid, the only candidate at each level is the cell containing
// ext's min corner — one map lookup per cached level, not a scan. The
// returned slice is the full region content; the caller filters by the
// original query box.
func (c *resultCache) AnswerContained(ds object.DatasetID, fanout int, epoch int64,
	ext geom.Box) ([]object.Object, bool) {
	c.mu.Lock()
	for level := range c.levels[ds] {
		cell, ok := cellAt(c.bounds, fanout, level, ext.Min)
		if !ok {
			continue
		}
		it, ok := c.entries[scanKey{ds: ds, cell: cell}]
		if !ok {
			continue
		}
		if it.task.epoch != epoch {
			c.removeLocked(it)
			continue
		}
		if !it.task.region.Contains(ext) {
			continue
		}
		c.touchLocked(it)
		objs := it.task.objs
		c.mu.Unlock()
		c.containmentHits.Add(1)
		return objs, true
	}
	c.mu.Unlock()
	return nil, false
}

// cellAt returns the key of the level-cell of the uniform fanout^level grid
// over bounds containing point p, false when p lies outside bounds or the
// level's grid exceeds the key coordinate space.
func cellAt(bounds geom.Box, fanout int, level uint8, p geom.Vec) (octree.Key, bool) {
	if !bounds.ContainsPoint(p) {
		return octree.Key{}, false
	}
	cells := math.Pow(float64(fanout), float64(level))
	if cells > float64(math.MaxUint32) {
		return octree.Key{}, false
	}
	size := bounds.Size()
	idx := func(lo, sz, v float64) uint32 {
		i := int64((v - lo) / sz * cells)
		if i < 0 {
			i = 0
		}
		if i >= int64(cells) {
			i = int64(cells) - 1
		}
		return uint32(i)
	}
	return octree.Key{
		Level: level,
		X:     idx(bounds.Min.X, size.X, p.X),
		Y:     idx(bounds.Min.Y, size.Y, p.Y),
		Z:     idx(bounds.Min.Z, size.Z, p.Z),
	}, true
}

// Insert retains a completed scan of (ds, cell): region is the cell box the
// objects are the full content of, epoch the global layout epoch loaded
// before the read began (a publish racing the read leaves a dead entry that
// never hits — conservative, correct). Entries larger than the whole budget
// are not admitted; otherwise the coldest entries are evicted until the new
// one fits. Re-inserting a present key replaces its content and keeps its
// heat — the region is evidently hot.
func (c *resultCache) Insert(ds object.DatasetID, cell octree.Key, epoch int64,
	region geom.Box, objs []object.Object) {
	key := scanKey{ds: ds, cell: cell}
	c.mu.Lock()
	if int64(len(objs)) > c.capacity {
		// An entry that cannot fit at all is the strongest undersizing
		// signal there is: with adaptive capacity, grow until it can
		// (bounded by maxCap); otherwise reject as before.
		if !c.adaptive || int64(len(objs)) > c.maxCap {
			c.mu.Unlock()
			return
		}
		for c.capacity < int64(len(objs)) && c.capacity < c.maxCap {
			c.capacity *= 2
		}
		if c.capacity > c.maxCap {
			c.capacity = c.maxCap
		}
		c.grows++
	}
	heat := int64(1)
	score := float64(0)
	if c.halfLife > 0 {
		score = heatScore(1, c.tick(), c.halfLife)
	}
	if old, ok := c.entries[key]; ok {
		heat = old.heat + 1
		if c.halfLife > 0 {
			score = bumpScore(old.score, c.tick(), c.halfLife)
		}
		c.removeLocked(old)
	}
	for c.objects+int64(len(objs)) > c.capacity && len(c.cold) > 0 {
		evicted := c.cold[0]
		c.pushGhostLocked(evicted.task.key)
		c.removeLocked(evicted)
		c.evictions.Add(1)
		c.evictionsWin++
	}
	c.seq++
	it := &heatItem[*cachedScan]{
		task:  &cachedScan{key: key, epoch: epoch, region: region, objs: objs},
		heat:  heat,
		score: score,
		seq:   c.seq,
	}
	heap.Push(&c.cold, it)
	c.entries[key] = it
	lv := c.levels[ds]
	if lv == nil {
		lv = make(map[uint8]int)
		c.levels[ds] = lv
	}
	lv[cell.Level]++
	c.objects += int64(len(objs))
	if c.objects > c.peakObjects {
		c.peakObjects = c.objects
	}
	if c.adaptive {
		// The key is cached again — it is no longer a ghost (the ring keeps
		// a harmless stale copy that pushGhostLocked dedupes against).
		delete(c.ghost, key)
	}
	c.maybeTuneLocked()
	c.mu.Unlock()
	c.inserts.Add(1)
}

// removeLocked unlinks one entry from the map, the heap, the level index
// and the object budget. Caller holds mu.
func (c *resultCache) removeLocked(it *heatItem[*cachedScan]) {
	delete(c.entries, it.task.key)
	heap.Remove(&c.cold, it.index)
	c.objects -= int64(len(it.task.objs))
	ds, level := it.task.key.ds, it.task.key.cell.Level
	if lv := c.levels[ds]; lv != nil {
		if lv[level]--; lv[level] <= 0 {
			delete(lv, level)
		}
		if len(lv) == 0 {
			delete(c.levels, ds)
		}
	}
}

// Invalidate flushes the cache on a layout publish. Like the scan
// registry's Invalidate, a publish that finds the cache empty is not
// counted — Invalidations measures actual flushes.
func (c *resultCache) Invalidate() {
	c.mu.Lock()
	flushed := len(c.entries) > 0
	if c.adaptive {
		// The epoch boundary is the tuning point the hit curve was observed
		// for; ghosts from the dying epoch would misread the coming
		// compulsory misses as capacity misses, so they flush too.
		c.tuneLocked()
		c.ghost = make(map[scanKey]struct{})
		c.ghostRing = nil
	}
	if flushed {
		c.entries = make(map[scanKey]*heatItem[*cachedScan])
		c.levels = make(map[object.DatasetID]map[uint8]int)
		c.cold = nil
		c.objects = 0
	}
	c.mu.Unlock()
	if flushed {
		c.invalidations.Add(1)
	}
}

// Stats snapshots the cache ledger.
func (c *resultCache) Stats() CacheStats {
	c.mu.Lock()
	entries, objects := len(c.entries), c.objects
	capacity := c.capacity
	ghostHits, grows, shrinks := c.ghostHits, c.grows, c.shrinks
	c.mu.Unlock()
	return CacheStats{
		Hits:            c.hits.Load(),
		ContainmentHits: c.containmentHits.Load(),
		Misses:          c.misses.Load(),
		Inserts:         c.inserts.Load(),
		Evictions:       c.evictions.Load(),
		Invalidations:   c.invalidations.Load(),
		ZeroReadQueries: c.zeroReads.Load(),
		Entries:         entries,
		CachedObjects:   objects,
		Capacity:        capacity,
		GhostHits:       ghostHits,
		CapacityGrows:   grows,
		CapacityShrinks: shrinks,
	}
}

// cacheScope tracks whether one query performed any device read on its read
// side. QueryCtx installs a scope in the context; the layers that actually
// perform I/O — the wrapped partition read under the share-reader hook,
// merge-segment reads on a cache miss, level-0 builds and refinements —
// mark it. A query whose scope stays clean was answered entirely from the
// result cache: zero device reads.
type cacheScope struct {
	missed atomic.Bool
}

// cacheScopeKey is the context key for the per-query cacheScope.
type cacheScopeKey struct{}

// withCacheScope attaches a fresh scope to ctx (nil ctx allowed).
func withCacheScope(ctx context.Context) (context.Context, *cacheScope) {
	if ctx == nil {
		ctx = context.Background()
	}
	s := &cacheScope{}
	return context.WithValue(ctx, cacheScopeKey{}, s), s
}

// missCacheScope marks the context's query (if any) as having performed
// device I/O. Called by the goroutine doing the read, inside the wrapped
// read function — a query attached to another's single-flight scan stays
// clean, which is correct: it charged no device read of its own.
func missCacheScope(ctx context.Context) {
	if ctx == nil {
		return
	}
	if s, _ := ctx.Value(cacheScopeKey{}).(*cacheScope); s != nil {
		s.missed.Store(true)
	}
}
