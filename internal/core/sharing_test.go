package core

import (
	"testing"

	"spaceodyssey/internal/engine"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
)

// driveOverlappingCombos queries two combinations sharing datasets {0,1,2}
// in the same hot area so their merge files cover the same partitions.
func driveOverlappingCombos(t *testing.T, eng *Odyssey) {
	t.Helper()
	q := geom.Cube(geom.V(0.45, 0.45, 0.45), 0.05)
	a := []object.DatasetID{0, 1, 2}
	b := []object.DatasetID{0, 1, 2, 3}
	for i := 0; i < 3; i++ {
		if _, err := eng.Query(q, a); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Query(q, b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSegmentSharingSavesSpace(t *testing.T) {
	mk := func(share bool) (*Odyssey, int64) {
		cfg := DefaultConfig()
		cfg.Merger.ShareSegments = share
		eng, _, _ := testSetup(t, 4, 2500, 31, cfg)
		driveOverlappingCombos(t, eng)
		return eng, eng.Merger().TotalPages()
	}
	engPlain, plainPages := mk(false)
	engShared, sharedPages := mk(true)
	if engPlain.Merger().NumFiles() < 2 || engShared.Merger().NumFiles() < 2 {
		t.Skip("workload did not produce two merge files")
	}
	if engShared.Merger().SegmentsShared == 0 {
		t.Fatal("no segments were shared despite overlapping combinations")
	}
	if sharedPages >= plainPages {
		t.Fatalf("sharing used %d pages, plain %d", sharedPages, plainPages)
	}
}

func TestSegmentSharingResultsExact(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Merger.ShareSegments = true
	eng, raws, _ := testSetup(t, 4, 2500, 32, cfg)
	oracle := engine.NewNaiveScan(raws)
	driveOverlappingCombos(t, eng)
	q := geom.Cube(geom.V(0.45, 0.45, 0.45), 0.05)
	for _, dss := range [][]object.DatasetID{{0, 1, 2}, {0, 1, 2, 3}, {1, 2}} {
		got, err := eng.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		if !engine.SameObjects(got, want) {
			t.Fatalf("dss=%v: %d objects, oracle %d", dss, len(got), len(want))
		}
	}
}

func TestSharedSegmentOwnerEvictionInvalidatesReferences(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Merger.ShareSegments = true
	eng, raws, _ := testSetup(t, 4, 2500, 33, cfg)
	oracle := engine.NewNaiveScan(raws)
	driveOverlappingCombos(t, eng)
	m := eng.Merger()
	if m.SegmentsShared == 0 {
		t.Skip("no sharing happened for this layout")
	}
	// Evict every owner file by slamming the budget to (almost) zero.
	m.cfg.SpaceBudgetPages = 1
	evicted, err := m.EnforceBudget()
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) == 0 {
		t.Fatal("nothing evicted under 1-page budget")
	}
	for _, combo := range evicted {
		eng.Stats().Reset(combo)
	}
	m.cfg.SpaceBudgetPages = 0 // lift the budget again

	// No surviving entry may reference an evicted file, and queries must
	// still be exact.
	for _, f := range m.files {
		for key, segs := range f.entries {
			for ds, seg := range segs {
				if seg.sharedFrom == "" {
					continue
				}
				if _, live := m.files[seg.sharedFrom]; !live {
					t.Fatalf("entry %v ds %d references evicted file %s", key, ds, seg.sharedFrom)
				}
			}
		}
	}
	q := geom.Cube(geom.V(0.45, 0.45, 0.45), 0.05)
	got, err := eng.Query(q, []object.DatasetID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Query(q, []object.DatasetID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !engine.SameObjects(got, want) {
		t.Fatalf("post-eviction query wrong: %d vs %d", len(got), len(want))
	}
}

func TestAdaptiveThresholdRaisesOnLowReuse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Merger.AdaptiveThresholds = true
	cfg.Merger.AdaptEvery = 10
	eng, _, _ := testSetup(t, 6, 2000, 34, cfg)
	if eng.Merger().Threshold() != 2 {
		t.Fatalf("initial mt = %d", eng.Merger().Threshold())
	}
	// Scattered queries over many distinct 3-combinations: each combo hits
	// mt=2 (merging happens) but merged areas are never revisited — reuse
	// stays low, so the threshold must rise.
	combos := [][]object.DatasetID{
		{0, 1, 2}, {1, 2, 3}, {2, 3, 4}, {3, 4, 5}, {0, 2, 4}, {1, 3, 5},
		{0, 3, 5}, {0, 1, 4}, {1, 2, 5}, {2, 4, 5},
	}
	for i := 0; i < 80; i++ {
		f := float64(i%40)/40*0.8 + 0.1
		q, ok := geom.Cube(geom.V(f, f, f), 0.04).Clip(geom.UnitBox())
		if !ok {
			continue
		}
		if _, err := eng.Query(q, combos[i%len(combos)]); err != nil {
			t.Fatal(err)
		}
	}
	m := eng.Merger()
	if m.Threshold() <= 2 {
		t.Fatalf("threshold did not rise under low reuse: mt=%d raises=%d",
			m.Threshold(), m.ThresholdRaises)
	}
	if m.Threshold() > m.cfg.MaxMergeThreshold {
		t.Fatalf("threshold %d exceeds bound %d", m.Threshold(), m.cfg.MaxMergeThreshold)
	}
}

func TestAdaptiveThresholdRecoversOnHighReuse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Merger.AdaptiveThresholds = true
	cfg.Merger.AdaptEvery = 10
	eng, _, _ := testSetup(t, 3, 2000, 35, cfg)
	m := eng.Merger()
	// Force the threshold up, then hammer one hot combination; reuse soars
	// and the threshold must come back down to the configured floor.
	m.currentMT = 6
	q := geom.Cube(geom.V(0.5, 0.5, 0.5), 0.05)
	dss := []object.DatasetID{0, 1, 2}
	for i := 0; i < 120; i++ {
		if _, err := eng.Query(q, dss); err != nil {
			t.Fatal(err)
		}
	}
	if m.Threshold() >= 6 {
		t.Fatalf("threshold did not drop under high reuse: mt=%d drops=%d",
			m.Threshold(), m.ThresholdDrops)
	}
	if m.Threshold() < cfg.Merger.MergeThreshold {
		t.Fatalf("threshold %d fell below floor %d", m.Threshold(), cfg.Merger.MergeThreshold)
	}
}

func TestAdaptiveDisabledKeepsThreshold(t *testing.T) {
	eng, _, _ := testSetup(t, 3, 500, 36, DefaultConfig())
	q := geom.Cube(geom.V(0.5, 0.5, 0.5), 0.05)
	for i := 0; i < 60; i++ {
		if _, err := eng.Query(q, []object.DatasetID{0, 1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Merger().Threshold() != 2 {
		t.Fatalf("threshold moved without adaptation: %d", eng.Merger().Threshold())
	}
}
