// Package core implements Space Odyssey itself: the Query Processor that
// orchestrates query execution, the Adaptor (incremental per-dataset
// octrees, package octree), the Statistics Collector that tracks which
// dataset combinations are queried together and which partitions they
// touch, and the Merger that reorganizes the disk layout by copying
// partitions of frequently co-queried datasets into sequential merge files.
package core

import (
	"fmt"
	"sort"
	"strings"

	"spaceodyssey/internal/object"
	"spaceodyssey/internal/octree"
)

// ComboKey canonically identifies a combination of datasets (sorted,
// comma-separated ids).
type ComboKey string

// CacheStats is the result-cache ledger (Config.CacheResults): what the
// epoch-scoped cache saved and how it is being maintained. All zeros with
// caching off. See resultcache.go for the mechanism.
type CacheStats struct {
	// Hits counts partition and merge-segment reads answered from the
	// cache: an exact (dataset, cell) match within the current layout epoch.
	Hits int64
	// ContainmentHits counts whole per-dataset answers served by filtering
	// a cached region that contains the query's extended window — zero
	// device reads, no tree walk.
	ContainmentHits int64
	// Misses counts exact lookups that found nothing (or only a dead entry
	// from an older epoch).
	Misses int64
	// Inserts counts completed scans retained.
	Inserts int64
	// Evictions counts entries removed by the capacity bound (coldest
	// first).
	Evictions int64
	// Invalidations counts layout publishes that actually flushed cached
	// entries. Publishes that found the cache empty are not counted — the
	// field measures flushes, not publish frequency (the same semantics as
	// SharingStats.Invalidations).
	Invalidations int64
	// ZeroReadQueries counts queries whose whole read side was served
	// without any device read: every partition or segment came from the
	// cache (or from another query's in-flight scan). Maintenance I/O
	// (refinement, merging) is not attributed to queries here.
	ZeroReadQueries int64
	// Entries and CachedObjects describe the current cache occupancy.
	Entries       int
	CachedObjects int64
	// Capacity is the current object budget — fixed at Config.CacheCapacity
	// normally, floating under Config.AdaptiveCache.
	Capacity int64
	// GhostHits counts capacity misses: lookups that missed the cache but
	// hit a shadow-LRU ghost of a recently evicted key — reads a bigger
	// cache would have served. Only tracked under AdaptiveCache.
	GhostHits int64
	// CapacityGrows and CapacityShrinks count the adaptive tuner's moves.
	CapacityGrows   int64
	CapacityShrinks int64
}

// KeyOf returns the canonical key for a set of datasets.
func KeyOf(datasets []object.DatasetID) ComboKey {
	ids := append([]object.DatasetID(nil), datasets...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for i, ds := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", ds)
	}
	return ComboKey(b.String())
}

// Collector is the Statistics Collector of Figure 1: it records, per
// combination C, (1) how often C has been queried and (2) which partitions
// have been retrieved in the context of C.
type Collector struct {
	counts     map[ComboKey]int
	partitions map[ComboKey]map[octree.Key]struct{}
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		counts:     make(map[ComboKey]int),
		partitions: make(map[ComboKey]map[octree.Key]struct{}),
	}
}

// RecordQuery increments the retrieval count of the combination and returns
// the new count.
func (c *Collector) RecordQuery(key ComboKey) int {
	c.counts[key]++
	return c.counts[key]
}

// RecordPartitions adds the partitions a query touched to the combination's
// accumulated set.
func (c *Collector) RecordPartitions(key ComboKey, parts []octree.Key) {
	set, ok := c.partitions[key]
	if !ok {
		set = make(map[octree.Key]struct{})
		c.partitions[key] = set
	}
	for _, p := range parts {
		set[p] = struct{}{}
	}
}

// Count returns how many times the combination has been queried.
func (c *Collector) Count(key ComboKey) int { return c.counts[key] }

// NumPartitions returns the size of the combination's accumulated partition
// set without copying it.
func (c *Collector) NumPartitions(key ComboKey) int { return len(c.partitions[key]) }

// PartitionsUnsorted returns a copy of the combination's accumulated
// partition keys in map order. Callers that do not need the deterministic
// layout order of Partitions (e.g. coverage checks) use it to skip the
// sort.
func (c *Collector) PartitionsUnsorted(key ComboKey) []octree.Key {
	set := c.partitions[key]
	out := make([]octree.Key, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

// Partitions returns the accumulated partition keys of the combination in
// the canonical (level, z, y, x) order.
func (c *Collector) Partitions(key ComboKey) []octree.Key {
	out := c.PartitionsUnsorted(key)
	sortKeys(out)
	return out
}

// Reset clears the statistics of one combination (used after a merge file
// for it is evicted, so it must re-earn merging).
func (c *Collector) Reset(key ComboKey) {
	delete(c.counts, key)
	delete(c.partitions, key)
}

// Combinations returns the number of distinct combinations seen.
func (c *Collector) Combinations() int { return len(c.counts) }
