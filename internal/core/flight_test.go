package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupSingleRun pins the single-flight contract: while a call
// for a key is in flight, concurrent Do calls for the same key attach to
// it — exactly one fn runs, and every caller observes the leader's error.
func TestFlightGroupSingleRun(t *testing.T) {
	var g flightGroup[string]
	started := make(chan struct{})
	release := make(chan struct{})
	var runs atomic.Int64
	boom := errors.New("boom")

	go func() {
		g.Do("k", func() error {
			runs.Add(1)
			close(started)
			<-release
			return boom
		})
	}()
	<-started

	// The leader cannot finish until release closes, so any follower that
	// calls Do before then must attach. The barrier plus settle delay puts
	// every follower at the Do doorstep first.
	const followers = 8
	var wg sync.WaitGroup
	var ready sync.WaitGroup
	attachedCount := make(chan bool, followers)
	errs := make(chan error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		ready.Add(1)
		go func() {
			defer wg.Done()
			ready.Done()
			attached, err := g.Do("k", func() error {
				runs.Add(1)
				return nil
			})
			attachedCount <- attached
			errs <- err
		}()
	}
	ready.Wait()
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()
	close(attachedCount)
	close(errs)

	if n := runs.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want exactly 1", n)
	}
	for attached := range attachedCount {
		if !attached {
			t.Fatal("a follower reported attached=false while the leader was in flight")
		}
	}
	for err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("follower error = %v, want the leader's error", err)
		}
	}
}

// TestFlightGroupReRunsAfterCompletion pins that completion clears the
// slot: a Do after the previous flight finished runs fn again rather than
// returning the stale result.
func TestFlightGroupReRunsAfterCompletion(t *testing.T) {
	var g flightGroup[int]
	var runs int
	for i := 0; i < 3; i++ {
		attached, err := g.Do(7, func() error {
			runs++
			return nil
		})
		if attached || err != nil {
			t.Fatalf("call %d: attached=%v err=%v, want a fresh run", i, attached, err)
		}
	}
	if runs != 3 {
		t.Fatalf("fn ran %d times across sequential calls, want 3", runs)
	}
}

// TestFlightGroupDistinctKeysIndependent pins that flights for different
// keys do not serialize: a second key's fn runs to completion while the
// first key's flight is still blocked.
func TestFlightGroupDistinctKeysIndependent(t *testing.T) {
	var g flightGroup[string]
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		g.Do("a", func() error {
			close(started)
			<-release
			return nil
		})
		close(done)
	}()
	<-started

	ran := false
	attached, err := g.Do("b", func() error {
		ran = true
		return nil
	})
	if attached || err != nil || !ran {
		t.Fatalf("Do(b) while Do(a) in flight: attached=%v err=%v ran=%v", attached, err, ran)
	}
	close(release)
	<-done
}
