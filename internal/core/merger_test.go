package core

import (
	"testing"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/octree"
	"spaceodyssey/internal/simdisk"
)

func TestRelationString(t *testing.T) {
	want := map[Relation]string{
		RelNone: "none", RelExact: "exact", RelSuperset: "superset", RelSubset: "subset",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), s)
		}
	}
	if Relation(9).String() != "Relation(9)" {
		t.Error("unknown relation name wrong")
	}
}

func TestMergerDefaults(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	m := NewMerger(dev, MergerConfig{})
	if m.Config().MergeThreshold != 2 || m.Config().MinCombination != 3 {
		t.Fatalf("defaults = %+v", m.Config())
	}
	if m.NumFiles() != 0 || m.TotalPages() != 0 {
		t.Fatal("fresh merger not empty")
	}
}

// mkMergeFile registers a fake merge file directly for Lookup tests.
func mkMergeFile(m *Merger, dev *simdisk.Device, datasets ...object.DatasetID) *MergeFile {
	memberOf := make(map[object.DatasetID]bool)
	for _, ds := range datasets {
		memberOf[ds] = true
	}
	key := KeyOf(datasets)
	mf := &MergeFile{
		combo:    key,
		members:  datasets,
		memberOf: memberOf,
		entries:  make(map[octree.Key]map[object.DatasetID]segment),
	}
	m.files[key] = mf
	return mf
}

func TestLookupPriorities(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	m := NewMerger(dev, MergerConfig{})

	// No files: none.
	if mf, rel := m.Lookup([]object.DatasetID{1, 2, 3}); mf != nil || rel != RelNone {
		t.Fatalf("empty lookup = %v %v", mf, rel)
	}

	big := mkMergeFile(m, dev, 0, 1, 2, 3, 4) // superset of {1,2,3}
	small := mkMergeFile(m, dev, 1, 2, 3, 4)  // smaller superset
	sub2 := mkMergeFile(m, dev, 1, 2)         // subset, 2 members
	sub3 := mkMergeFile(m, dev, 1, 2, 5)      // overlapping but neither
	exact := mkMergeFile(m, dev, 1, 2, 3)     // exact
	_ = big
	_ = sub3

	// Exact wins.
	if mf, rel := m.Lookup([]object.DatasetID{3, 2, 1}); mf != exact || rel != RelExact {
		t.Fatalf("exact lookup = %v %v", mf.combo, rel)
	}

	// Remove exact: smallest superset wins.
	delete(m.files, exact.combo)
	if mf, rel := m.Lookup([]object.DatasetID{1, 2, 3}); mf != small || rel != RelSuperset {
		t.Fatalf("superset lookup = %v %v", mf.combo, rel)
	}

	// Remove supersets: largest subset wins ({1,2} is the only subset;
	// {1,2,5} is not a subset because 5 is not requested).
	delete(m.files, small.combo)
	delete(m.files, big.combo)
	if mf, rel := m.Lookup([]object.DatasetID{1, 2, 3}); mf != sub2 || rel != RelSubset {
		t.Fatalf("subset lookup = %v %v", mf, rel)
	}

	// Only the partial-overlap file left: none (paper describes only the
	// exact/superset/subset cases).
	delete(m.files, sub2.combo)
	if mf, rel := m.Lookup([]object.DatasetID{1, 2, 3}); mf != nil || rel != RelNone {
		t.Fatalf("overlap lookup = %v %v", mf, rel)
	}
}

func TestLookupPrefersLargerSubset(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	m := NewMerger(dev, MergerConfig{})
	mkMergeFile(m, dev, 1, 2)
	sub3 := mkMergeFile(m, dev, 1, 2, 3)
	mf, rel := m.Lookup([]object.DatasetID{1, 2, 3, 4})
	if mf != sub3 || rel != RelSubset {
		t.Fatalf("lookup = %v %v, want larger subset", mf, rel)
	}
}

func TestMergeOrExtendRespectsMinCombination(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	m := NewMerger(dev, MergerConfig{MinCombination: 3})
	n, err := m.MergeOrExtend(nil, "1,2", []object.DatasetID{1, 2},
		[]octree.Key{{Level: 1}}, nil)
	if err != nil || n != 0 {
		t.Fatalf("small combination merged: n=%d err=%v", n, err)
	}
	if m.NumFiles() != 0 {
		t.Fatal("merge file created for |C|<3")
	}
}

func TestEntryBox(t *testing.T) {
	bounds := geom.NewBox(geom.V(0, 0, 0), geom.V(8, 8, 8))
	// Level 1 with fanout 2: cell (1,0,1) spans [4,0,4]..[8,4,8].
	b := EntryBox(bounds, octree.Key{Level: 1, X: 1, Y: 0, Z: 1}, 2)
	if b.Min != geom.V(4, 0, 4) || b.Max != geom.V(8, 4, 8) {
		t.Fatalf("EntryBox = %v", b)
	}
	// Level 0 = the whole bounds.
	if got := EntryBox(bounds, octree.Key{}, 2); got != bounds {
		t.Fatalf("root EntryBox = %v", got)
	}
	// Level 2 with fanout 4: 16 cells per dim, each side 0.5.
	b = EntryBox(bounds, octree.Key{Level: 2, X: 15, Y: 15, Z: 15}, 4)
	if b.Max != geom.V(8, 8, 8) || b.Min != geom.V(7.5, 7.5, 7.5) {
		t.Fatalf("deep EntryBox = %v", b)
	}
}

func TestReadSegmentErrors(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	m := NewMerger(dev, MergerConfig{})
	mf := mkMergeFile(m, dev, 1, 2, 3)
	if _, err := m.ReadSegment(mf, octree.Key{Level: 1}, 1); err == nil {
		t.Fatal("missing entry accepted")
	}
	mf.entries[octree.Key{Level: 1}] = map[object.DatasetID]segment{}
	if _, err := m.ReadSegment(mf, octree.Key{Level: 1}, 1); err == nil {
		t.Fatal("missing dataset segment accepted")
	}
}

func TestEnforceBudgetNoBudget(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	m := NewMerger(dev, MergerConfig{})
	evicted, err := m.EnforceBudget()
	if err != nil || evicted != nil {
		t.Fatalf("unlimited budget evicted %v, %v", evicted, err)
	}
}
