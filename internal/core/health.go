package core

import (
	"errors"
	"math/rand"
	"time"

	"spaceodyssey/internal/object"
	"spaceodyssey/internal/octree"
	"spaceodyssey/internal/simdisk"
)

// Self-healing defaults (Config.QuarantineAfter / MaintenanceRetryBackoff /
// MaintenanceHealthRing override them).
const (
	// DefaultQuarantineAfter is how many consecutive failures of one
	// maintenance unit trip quarantine.
	DefaultQuarantineAfter = 3
	// DefaultMaintenanceRetryBackoff is the base re-enqueue backoff for a
	// failed maintenance task; it doubles per consecutive failure, with up
	// to 50% random jitter added so correlated failures do not re-arrive in
	// lockstep.
	DefaultMaintenanceRetryBackoff = 2 * time.Millisecond
	// maxMaintenanceRetryBackoff caps the exponential growth.
	maxMaintenanceRetryBackoff = time.Second
	// DefaultMaintenanceHealthRing bounds the failure-history ring.
	DefaultMaintenanceHealthRing = 64
)

// MaintenanceFailure is one entry of the bounded failure history every
// failed background task appends: what failed, why, how many consecutive
// times, and what the scheduler decided to do about it.
type MaintenanceFailure struct {
	// Kind is "refine" or "merge".
	Kind string
	// Dataset and Cell identify a refinement unit (Kind == "refine").
	Dataset object.DatasetID
	Cell    octree.Key
	// Combo identifies a merge unit (Kind == "merge").
	Combo ComboKey
	// Err is the task's error.
	Err error
	// Attempt is the unit's consecutive-failure count at the time (1 for a
	// first failure).
	Attempt int
	// Retried reports that the failure was answered with a backoff
	// re-enqueue; Quarantined that it tripped (or was a permanent fault
	// escalated straight into) quarantine. Both false means the scheduler
	// recorded the failure and moved on (shutdown noise, cancellations).
	Retried     bool
	Quarantined bool
	// Time is the wall-clock failure time, for operators correlating with
	// external monitoring.
	Time time.Time
}

// QuarantinedCell is one maintenance unit the scheduler has stopped
// working on: after QuarantineAfter consecutive failures (or one permanent
// fault) the unit's enqueues are dropped, so a poisoned cell cannot occupy
// maintenance workers in a retry loop. Queries keep serving the unit from
// its last published layout. Unquarantine re-admits it.
type QuarantinedCell struct {
	// Kind is "refine" or "merge".
	Kind    string
	Dataset object.DatasetID
	Cell    octree.Key
	Combo   ComboKey
	// Failures is the consecutive-failure count that tripped quarantine.
	Failures int
	// LastErr is the error that tripped it.
	LastErr error
	// Permanent reports the fast path: the task failed with a permanent
	// device fault and was quarantined on first sight, retries being
	// pointless.
	Permanent bool
}

// MaintenanceHealth is the structured health ledger behind the maintenance
// pipeline, replacing the old single-error MaintenanceErr surface: the
// bounded failure history (most recent last), the current quarantine list,
// and how many failed tasks are waiting out a retry backoff.
type MaintenanceHealth struct {
	Failures       []MaintenanceFailure
	Quarantined    []QuarantinedCell
	PendingRetries int
}

// healthKey identifies one maintenance unit across retries: a (dataset,
// cell) refinement or a combination's merge.
type healthKey struct {
	merge bool
	ds    object.DatasetID
	cell  octree.Key
	combo ComboKey
}

func taskHealthKey(task execTask) healthKey {
	if task.isMerge {
		return healthKey{merge: true, combo: task.merge.key}
	}
	return healthKey{ds: task.ds, cell: task.refine.key}
}

func (k healthKey) kind() string {
	if k.merge {
		return "merge"
	}
	return "refine"
}

// quarantineEntry is the scheduler-side record behind one QuarantinedCell.
type quarantineEntry struct {
	failures  int
	lastErr   error
	permanent bool
}

// noteFailureLocked routes one failed task through the self-healing policy:
// record it in the ring, then either re-enqueue with backoff and jitter,
// quarantine the unit, or (for cancellations and shutdown noise) leave it.
// Called from the worker loop under m.mu.
func (m *maintainer) noteFailureLocked(task execTask, err error) {
	k := taskHealthKey(task)
	attempt := m.failCount[k] + 1
	m.failCount[k] = attempt

	permanent := errors.Is(err, simdisk.ErrPermanent)
	benign := errors.Is(err, simdisk.ErrCanceled) || errors.Is(err, simdisk.ErrDeviceClosed)
	f := MaintenanceFailure{
		Kind: k.kind(), Dataset: k.ds, Cell: k.cell, Combo: k.combo,
		Err: err, Attempt: attempt, Time: time.Now(),
	}
	switch {
	case benign || m.closed:
		// Cancellation and device-closed failures are shutdown noise, not
		// cell health: record them but neither retry nor quarantine, and
		// don't let them accumulate toward a quarantine verdict.
		delete(m.failCount, k)
	case permanent || attempt >= m.quarantineAfter:
		m.quarantine[k] = &quarantineEntry{failures: attempt, lastErr: err, permanent: permanent}
		m.stats.Quarantined++
		delete(m.failCount, k)
		f.Quarantined = true
	default:
		m.scheduleRetryLocked(task, attempt)
		f.Retried = true
	}
	m.ring = append(m.ring, f)
	if over := len(m.ring) - m.ringCap; over > 0 {
		m.ring = append(m.ring[:0], m.ring[over:]...)
	}
}

// clearFailuresLocked resets a unit's consecutive-failure count after a
// successful run (quarantine decisions only ever see uninterrupted runs of
// failures).
func (m *maintainer) clearFailuresLocked(task execTask) {
	delete(m.failCount, taskHealthKey(task))
}

// quarantinedLocked reports whether a unit is quarantined (its enqueues are
// dropped).
func (m *maintainer) quarantinedLocked(k healthKey) bool {
	_, q := m.quarantine[k]
	return q
}

// scheduleRetryLocked re-enqueues a failed task after an exponential
// backoff with jitter, holding the pipeline non-idle (Quiesce waits retry
// chains out — they terminate because quarantine bounds consecutive
// failures). The timer goroutine aborts early on Close.
func (m *maintainer) scheduleRetryLocked(task execTask, attempt int) {
	d := m.retryBackoff
	for i := 1; i < attempt && d < maxMaintenanceRetryBackoff; i++ {
		d *= 2
	}
	if d > maxMaintenanceRetryBackoff {
		d = maxMaintenanceRetryBackoff
	}
	if d > 0 {
		d += time.Duration(m.rng.Int63n(int64(d)/2 + 1))
	}
	m.pendingRetries++
	m.stats.Retried++
	m.retryWG.Add(1)
	go m.retryAfter(task, d)
}

// retryAfter waits out one retry backoff and re-enqueues the task. The
// decrement of pendingRetries and the re-enqueue happen in one critical
// section, so the pipeline can never look idle between them.
func (m *maintainer) retryAfter(task execTask, d time.Duration) {
	defer m.retryWG.Done()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-m.retryStop:
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pendingRetries--
	if m.closed {
		m.maybeIdleLocked()
		return
	}
	if task.isMerge {
		m.enqueueMergeLocked(task.merge.key, task.merge.members)
	} else {
		m.enqueueRefineLocked(task.ds, []octree.Key{task.refine.key}, task.refine.box, task.refine.qVol, task.refine.members)
	}
}

// Health snapshots the pipeline's health ledger.
func (m *maintainer) Health() MaintenanceHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := MaintenanceHealth{
		Failures:       append([]MaintenanceFailure(nil), m.ring...),
		PendingRetries: m.pendingRetries,
	}
	for k, e := range m.quarantine {
		h.Quarantined = append(h.Quarantined, QuarantinedCell{
			Kind: k.kind(), Dataset: k.ds, Cell: k.cell, Combo: k.combo,
			Failures: e.failures, LastErr: e.lastErr, Permanent: e.permanent,
		})
	}
	return h
}

// Unquarantine re-admits one quarantined unit (identified by a
// QuarantinedCell from Health; Failures/LastErr/Permanent are ignored),
// clearing its failure history so the next failure starts a fresh streak.
// Returns whether the unit was quarantined.
func (m *maintainer) Unquarantine(q QuarantinedCell) bool {
	k := healthKey{merge: q.Kind == "merge", ds: q.Dataset, cell: q.Cell, combo: q.Combo}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.quarantine[k]; !ok {
		return false
	}
	delete(m.quarantine, k)
	delete(m.failCount, k)
	return true
}

// newMaintRand seeds the jitter source. Jitter needs no determinism — it
// exists to decorrelate retry arrivals — but a fixed seed keeps test runs
// repeatable enough to debug.
func newMaintRand() *rand.Rand {
	return rand.New(rand.NewSource(0x0d355e1))
}
