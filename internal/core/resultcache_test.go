package core

import (
	"testing"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
)

// TestResultCacheExactHitAndEpochDrop pins the cache's key contract: an
// insert at epoch E answers a lookup at E (a cached empty cell included),
// and any other epoch is a miss that drops the dead entry on sight.
func TestResultCacheExactHitAndEpochDrop(t *testing.T) {
	c := newResultCache(geom.UnitBox(), 100)
	cell := testKeyAt(1, 0, 0, 0)
	region := cell.Box(geom.UnitBox(), 2)
	objs := []object.Object{{ID: 1, Dataset: 3}, {ID: 2, Dataset: 3}}

	c.Insert(3, cell, 5, region, objs)
	got, ok := c.Lookup(3, cell, 5)
	if !ok || len(got) != 2 {
		t.Fatalf("Lookup = %v, %v; want the 2 inserted objects", got, ok)
	}

	// A cached empty cell is a hit, not a miss — ok carries the answer.
	empty := testKeyAt(1, 1, 0, 0)
	c.Insert(3, empty, 5, empty.Box(geom.UnitBox(), 2), nil)
	if got, ok := c.Lookup(3, empty, 5); !ok || len(got) != 0 {
		t.Fatalf("cached empty cell: Lookup = %v, %v; want [], true", got, ok)
	}

	// A later epoch kills the entry: the stale lookup misses AND removes it,
	// so even the original epoch misses afterwards.
	if _, ok := c.Lookup(3, cell, 6); ok {
		t.Fatal("stale-epoch entry served")
	}
	if _, ok := c.Lookup(3, cell, 5); ok {
		t.Fatal("stale entry not dropped on sight")
	}

	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Inserts != 2 {
		t.Fatalf("ledger = %+v, want 2 hits / 2 misses / 2 inserts", st)
	}
	if st.Entries != 1 || st.CachedObjects != 0 {
		t.Fatalf("entries/objects = %d/%d, want 1/0 (only the empty cell left)",
			st.Entries, st.CachedObjects)
	}
}

// TestResultCacheEvictsColdestFirst pins heat-aware eviction: when capacity
// overflows, the entry with the fewest hits goes first and hot entries
// survive; an entry bigger than the whole budget is never admitted.
func TestResultCacheEvictsColdestFirst(t *testing.T) {
	c := newResultCache(geom.UnitBox(), 4)
	a, b, cc := testKeyAt(2, 0, 0, 0), testKeyAt(2, 1, 0, 0), testKeyAt(2, 2, 0, 0)
	two := []object.Object{{ID: 1}, {ID: 2}}

	c.Insert(0, a, 1, geom.UnitBox(), two)
	c.Insert(0, b, 1, geom.UnitBox(), two)
	c.Lookup(0, a, 1) // heat a above b
	c.Insert(0, cc, 1, geom.UnitBox(), two)

	if _, ok := c.Lookup(0, b, 1); ok {
		t.Fatal("coldest entry survived eviction")
	}
	if _, ok := c.Lookup(0, a, 1); !ok {
		t.Fatal("hot entry was evicted instead of the coldest")
	}
	if _, ok := c.Lookup(0, cc, 1); !ok {
		t.Fatal("freshly inserted entry missing")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.CachedObjects != 4 {
		t.Fatalf("evictions/objects = %d/%d, want 1/4", st.Evictions, st.CachedObjects)
	}

	// An oversized scan must not flush the whole cache just to fail to fit.
	five := make([]object.Object, 5)
	c.Insert(0, testKeyAt(2, 3, 0, 0), 1, geom.UnitBox(), five)
	if _, ok := c.Lookup(0, testKeyAt(2, 3, 0, 0), 1); ok {
		t.Fatal("entry larger than the whole budget was admitted")
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("oversized insert disturbed the cache: %d entries, want 2", st.Entries)
	}
}

// TestResultCacheInvalidateCountsOnlyFlushes mirrors the scan registry's
// Invalidations semantics: a publish over an empty cache is a no-op and is
// not counted.
func TestResultCacheInvalidateCountsOnlyFlushes(t *testing.T) {
	c := newResultCache(geom.UnitBox(), 100)
	c.Invalidate()
	if st := c.Stats(); st.Invalidations != 0 {
		t.Fatalf("empty-cache invalidate counted: %d", st.Invalidations)
	}
	c.Insert(0, testKeyAt(1, 0, 0, 0), 1, geom.UnitBox(), []object.Object{{ID: 1}})
	c.Invalidate()
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("Invalidations = %d, want 1", st.Invalidations)
	}
	if st.Entries != 0 || st.CachedObjects != 0 {
		t.Fatalf("invalidate left entries behind: %+v", st)
	}
	c.Invalidate()
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("second empty invalidate counted: %d", st.Invalidations)
	}
}

// TestResultCacheContainment pins containment answering: a query window
// inside a cached cell box is answered from that entry, a window crossing
// the cell boundary is not, and a stale-epoch region never answers.
func TestResultCacheContainment(t *testing.T) {
	bounds := geom.UnitBox()
	c := newResultCache(bounds, 1000)
	cell := testKeyAt(1, 0, 0, 0) // [0,0.5]^3 at fanout 2
	c.Insert(1, cell, 7, cell.Box(bounds, 2), []object.Object{{ID: 9, Dataset: 1}})

	inside := geom.Cube(geom.V(0.25, 0.25, 0.25), 0.4)
	got, ok := c.AnswerContained(1, 2, 7, inside)
	if !ok || len(got) != 1 || got[0].ID != 9 {
		t.Fatalf("contained probe = %v, %v; want the cached region content", got, ok)
	}

	spanning := geom.Cube(geom.V(0.5, 0.25, 0.25), 0.4) // crosses the cell wall
	if _, ok := c.AnswerContained(1, 2, 7, spanning); ok {
		t.Fatal("region answered a window it does not contain")
	}
	if _, ok := c.AnswerContained(2, 2, 7, inside); ok {
		t.Fatal("region answered another dataset's window")
	}
	if _, ok := c.AnswerContained(1, 2, 8, inside); ok {
		t.Fatal("stale-epoch region answered by containment")
	}
	st := c.Stats()
	if st.ContainmentHits != 1 {
		t.Fatalf("ContainmentHits = %d, want 1", st.ContainmentHits)
	}
	// The stale probe dropped the dead entry.
	if st.Entries != 0 {
		t.Fatalf("stale entry survived the containment probe: %d entries", st.Entries)
	}
}

// TestCellAt pins the containment probe's grid arithmetic: the candidate
// cell of a point at each level, the clamped walls, and the out-of-bounds
// rejection.
func TestCellAt(t *testing.T) {
	b := geom.UnitBox()
	if k, ok := cellAt(b, 2, 1, geom.V(0.75, 0.2, 0.6)); !ok || k != testKeyAt(1, 1, 0, 1) {
		t.Fatalf("cellAt level 1 = %v, %v; want {1 1 0 1}", k, ok)
	}
	if k, ok := cellAt(b, 2, 0, geom.V(0.3, 0.9, 0.1)); !ok || k != testKeyAt(0, 0, 0, 0) {
		t.Fatalf("cellAt level 0 = %v, %v; want the root cell", k, ok)
	}
	// The far wall belongs to the last cell, not a phantom one past it.
	if k, ok := cellAt(b, 2, 2, geom.V(1, 1, 1)); !ok || k != testKeyAt(2, 3, 3, 3) {
		t.Fatalf("cellAt far corner = %v, %v; want the last cell", k, ok)
	}
	if _, ok := cellAt(b, 2, 1, geom.V(1.5, 0, 0)); ok {
		t.Fatal("point outside bounds mapped to a cell")
	}
}
