package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"spaceodyssey/internal/engine"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
)

// asyncConfig returns the default configuration with the background
// maintenance pipeline on.
func asyncConfig(workers int) Config {
	cfg := DefaultConfig()
	cfg.AsyncMaintenance = true
	cfg.MaintenanceWorkers = workers
	return cfg
}

// TestAsyncCoalescing pins the coalescing contract: with the scheduler
// frozen, N identical hot queries enqueue at most one refinement task per
// candidate partition and one merge task per combination — every duplicate
// demand is absorbed and counted in Coalesced.
func TestAsyncCoalescing(t *testing.T) {
	eng, _, _ := testSetup(t, 3, 3000, 11, asyncConfig(2))
	defer eng.Close()
	eng.maint.SetPaused(true)

	// Small enough to demand refinement of every level-1 cell it hits
	// (cell volume (1/4)^3 = 0.0156 >> rt * qVol).
	q := geom.Cube(geom.V(0.42, 0.42, 0.42), 0.1)
	dss := []object.DatasetID{0, 1, 2}

	if _, err := eng.Query(q, dss); err != nil {
		t.Fatal(err)
	}
	first := eng.MaintenanceStats()
	if first.Queued == 0 {
		t.Fatal("hot query enqueued no refinement tasks (query too large for the rt rule?)")
	}
	if first.Coalesced != 0 {
		t.Fatalf("first query already coalesced %d tasks", first.Coalesced)
	}

	const extra = 7
	for i := 0; i < extra; i++ {
		if _, err := eng.Query(q, dss); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.MaintenanceStats()
	// Repeats add at most the one merge task (enqueued when the combination
	// crosses mt on the second query); every refinement demand must fold
	// into the already-pending tasks.
	if st.Queued > first.Queued+1 {
		t.Fatalf("%d identical queries queued %d tasks, want <= %d (first query's %d + 1 merge)",
			extra+1, st.Queued, first.Queued+1, first.Queued)
	}
	wantCoalesced := int64(extra)*first.Queued + (extra - 1) // refines + duplicate merges
	if st.Coalesced != wantCoalesced {
		t.Fatalf("Coalesced = %d, want %d", st.Coalesced, wantCoalesced)
	}
	if st.QueueDepthHighWater < int(first.Queued) {
		t.Fatalf("QueueDepthHighWater = %d, want >= %d", st.QueueDepthHighWater, first.Queued)
	}

	eng.maint.SetPaused(false)
	if err := eng.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := eng.MaintenanceErr(); err != nil {
		t.Fatalf("maintenance task failed: %v", err)
	}
	done := eng.MaintenanceStats()
	if done.Completed != st.Queued {
		t.Fatalf("completed %d of %d queued tasks", done.Completed, st.Queued)
	}
	if done.Refinements == 0 {
		t.Fatal("maintenance applied no refinements")
	}
	if m := eng.Metrics(); m.Refinements == 0 {
		t.Fatal("engine metrics show no refinements after quiesce")
	}

	// Once converged, the same query demands nothing further.
	if _, err := eng.Query(q, dss); err != nil {
		t.Fatal(err)
	}
	if again := eng.MaintenanceStats(); again.Queued > done.Queued+1 {
		t.Fatalf("converged query enqueued %d new tasks", again.Queued-done.Queued)
	}
}

// TestAsyncConvergenceMatchesSync is the equivalence acceptance test: the
// same deterministic workload, replayed to quiescence on a synchronous and
// an asynchronous engine over identical data, must converge to an
// identical physical layout — same tree levels, same merge files with the
// same entries — and return identical result sets along the way. The async
// engine quiesces after every query so the maintenance stream observes the
// same layout states the inline pipeline does.
func TestAsyncConvergenceMatchesSync(t *testing.T) {
	syncEng, raws, _ := testSetup(t, 4, 2500, 21, DefaultConfig())
	asyncEng, _, _ := testSetup(t, 4, 2500, 21, asyncConfig(3))
	defer asyncEng.Close()
	oracle := engine.NewNaiveScan(raws)

	// A deterministic mixed workload: popular hot boxes (drive refinement
	// and merging of the 3-dataset combinations) plus colder probes.
	rng := rand.New(rand.NewSource(77))
	type wq struct {
		box geom.Box
		dss []object.DatasetID
	}
	var workload []wq
	hot := []geom.Box{
		geom.Cube(geom.V(0.3, 0.35, 0.4), 0.09),
		geom.Cube(geom.V(0.62, 0.55, 0.45), 0.11),
		geom.Cube(geom.V(0.45, 0.5, 0.52), 0.07),
	}
	combos := [][]object.DatasetID{
		{0, 1, 2}, {0, 1, 2, 3}, {1, 2, 3}, {0, 2}, {1},
	}
	for i := 0; i < 40; i++ {
		var box geom.Box
		if rng.Intn(3) > 0 {
			box = hot[rng.Intn(len(hot))]
		} else {
			box = geom.Cube(geom.V(rng.Float64(), rng.Float64(), rng.Float64()),
				0.04+0.1*rng.Float64())
		}
		workload = append(workload, wq{box: box, dss: combos[rng.Intn(len(combos))]})
	}

	// Replay passes until both engines are quiescent (no layout change over
	// a full pass), comparing result sets query by query.
	var syncSig, asyncSig string
	for pass := 0; pass < 6; pass++ {
		for i, w := range workload {
			got, err := syncEng.Query(w.box, w.dss)
			if err != nil {
				t.Fatalf("pass %d query %d sync: %v", pass, i, err)
			}
			gotAsync, err := asyncEng.Query(w.box, w.dss)
			if err != nil {
				t.Fatalf("pass %d query %d async: %v", pass, i, err)
			}
			if err := asyncEng.Quiesce(context.Background()); err != nil {
				t.Fatal(err)
			}
			want, err := oracle.Query(w.box, w.dss)
			if err != nil {
				t.Fatal(err)
			}
			if !engine.SameObjects(got, want) {
				t.Fatalf("pass %d query %d: sync engine diverges from oracle", pass, i)
			}
			if !engine.SameObjects(gotAsync, want) {
				t.Fatalf("pass %d query %d: async engine diverges from oracle", pass, i)
			}
		}
		s, a := syncEng.LayoutSignature(), asyncEng.LayoutSignature()
		if s == syncSig && a == asyncSig {
			break // both quiescent
		}
		syncSig, asyncSig = s, a
	}
	if err := asyncEng.MaintenanceErr(); err != nil {
		t.Fatalf("maintenance task failed: %v", err)
	}
	if syncSig != asyncSig {
		t.Errorf("converged layouts differ:\n--- sync ---\n%s\n--- async ---\n%s", syncSig, asyncSig)
	}
	if asyncEng.MergeFileCount() == 0 {
		t.Error("workload produced no merge files — the equivalence test is vacuous")
	}
	if m := asyncEng.Metrics(); m.Refinements == 0 {
		t.Error("workload produced no refinements — the equivalence test is vacuous")
	}
}

// TestMaintenanceCloseDrains pins Close's cancel-and-drain contract: queued
// tasks are dropped, the ledger balances, Quiesce returns immediately, and
// the engine still answers queries (without scheduling new work).
func TestMaintenanceCloseDrains(t *testing.T) {
	eng, raws, _ := testSetup(t, 3, 2000, 31, asyncConfig(2))
	eng.maint.SetPaused(true)
	q := geom.Cube(geom.V(0.4, 0.45, 0.5), 0.08)
	dss := []object.DatasetID{0, 1, 2}
	for i := 0; i < 3; i++ {
		if _, err := eng.Query(q, dss); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.MaintenanceStats(); st.QueueDepth == 0 {
		t.Fatal("nothing queued; the drain test is vacuous")
	}
	eng.Close()
	eng.Close() // idempotent

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := eng.Quiesce(ctx); err != nil {
		t.Fatalf("Quiesce after Close: %v", err)
	}
	st := eng.MaintenanceStats()
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after Close", st.QueueDepth)
	}
	if st.Queued != st.Completed+st.Failed+st.Dropped {
		t.Fatalf("ledger does not balance after Close: %+v", st)
	}
	if st.Dropped == 0 {
		t.Fatal("Close dropped nothing despite a paused, non-empty queue")
	}

	// Queries still answer correctly after Close — they just stop
	// scheduling maintenance.
	oracle := engine.NewNaiveScan(raws)
	got, err := eng.Query(q, dss)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Query(q, dss)
	if err != nil {
		t.Fatal(err)
	}
	if !engine.SameObjects(got, want) {
		t.Fatal("post-Close query diverges from oracle")
	}
	if after := eng.MaintenanceStats(); after.Queued != st.Queued {
		t.Fatalf("post-Close query enqueued maintenance: %d -> %d", st.Queued, after.Queued)
	}
}

// TestAsyncQuiesceCancellation checks that a Quiesce abandoned by its
// context returns a cancellation error while the pipeline keeps draining.
func TestAsyncQuiesceCancellation(t *testing.T) {
	eng, _, _ := testSetup(t, 3, 1500, 41, asyncConfig(1))
	defer eng.Close()
	eng.maint.SetPaused(true)
	if _, err := eng.Query(geom.Cube(geom.V(0.4, 0.4, 0.4), 0.08), []object.DatasetID{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := eng.Quiesce(ctx); err == nil {
		t.Fatal("Quiesce with a dead context and a frozen queue returned nil")
	}
	eng.maint.SetPaused(false)
	if err := eng.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
}
