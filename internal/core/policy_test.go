package core

import (
	"math/rand"
	"testing"

	"spaceodyssey/internal/engine"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/octree"
)

func TestLevelPolicyString(t *testing.T) {
	want := map[LevelPolicy]string{
		SameLevel: "same-level", RefineToFinest: "refine-to-finest",
		CoarsestCover: "coarsest-cover",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
	if LevelPolicy(9).String() != "LevelPolicy(9)" {
		t.Error("unknown policy name wrong")
	}
}

// divergeTrees queries dataset 0 alone so its tree refines deeper than the
// others in the hot area, then returns the 3-dataset combination query.
func divergeTrees(t *testing.T, eng *Odyssey, q geom.Box) {
	t.Helper()
	for i := 0; i < 4; i++ {
		if _, err := eng.Query(q, []object.DatasetID{0}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRefineToFinestMergesDivergedTrees(t *testing.T) {
	mk := func(policy LevelPolicy) (*Odyssey, int) {
		cfg := DefaultConfig()
		cfg.Merger.LevelPolicy = policy
		eng, _, _ := testSetup(t, 3, 2500, 21, cfg)
		q := geom.Cube(geom.V(0.6, 0.6, 0.6), 0.03)
		divergeTrees(t, eng, q)
		dss := []object.DatasetID{0, 1, 2}
		for i := 0; i < 3; i++ {
			if _, err := eng.Query(q, dss); err != nil {
				t.Fatal(err)
			}
		}
		return eng, eng.Merger().PartitionsMerged
	}
	_, samePartitions := mk(SameLevel)
	engFinest, finestPartitions := mk(RefineToFinest)
	// RefineToFinest must merge at least as much as SameLevel on diverged
	// trees, typically more (the lagging trees get refined to match).
	if finestPartitions < samePartitions {
		t.Fatalf("refine-to-finest merged %d partitions, same-level %d",
			finestPartitions, samePartitions)
	}
	if finestPartitions == 0 {
		t.Fatal("refine-to-finest merged nothing on a hot combination")
	}
	// Results must stay exact.
	q := geom.Cube(geom.V(0.6, 0.6, 0.6), 0.03)
	got, err := engFinest.Query(q, []object.DatasetID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Skip("query region empty for this seed; correctness covered below")
	}
}

// policyOracleCheck runs a randomized workload under the given policy and
// compares every result against the naive oracle.
func policyOracleCheck(t *testing.T, policy LevelPolicy, seed int64) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Merger.LevelPolicy = policy
	eng, raws, _ := testSetup(t, 4, 2000, seed, cfg)
	oracle := engine.NewNaiveScan(raws)
	r := rand.New(rand.NewSource(seed + 1))
	hot := geom.V(0.4, 0.4, 0.4)
	for trial := 0; trial < 60; trial++ {
		var c geom.Vec
		if r.Intn(3) > 0 {
			c = geom.V(hot.X+r.NormFloat64()*0.03, hot.Y+r.NormFloat64()*0.03, hot.Z+r.NormFloat64()*0.03)
		} else {
			c = geom.V(r.Float64(), r.Float64(), r.Float64())
		}
		q, ok := geom.Cube(c, 0.01+r.Float64()*0.05).Clip(geom.UnitBox())
		if !ok || q.Volume() == 0 {
			continue
		}
		k := 1 + r.Intn(4)
		seen := map[object.DatasetID]bool{}
		var dss []object.DatasetID
		for len(dss) < k {
			ds := object.DatasetID(r.Intn(4))
			if !seen[ds] {
				seen[ds] = true
				dss = append(dss, ds)
			}
		}
		got, err := eng.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		if !engine.SameObjects(got, want) {
			t.Fatalf("%v trial %d: %d objects, oracle %d", policy, trial, len(got), len(want))
		}
	}
}

func TestRefineToFinestMatchesOracle(t *testing.T) { policyOracleCheck(t, RefineToFinest, 22) }
func TestCoarsestCoverMatchesOracle(t *testing.T)  { policyOracleCheck(t, CoarsestCover, 23) }

func TestCoarsestCoverEntriesDisjoint(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Merger.LevelPolicy = CoarsestCover
	eng, _, _ := testSetup(t, 3, 2500, 24, cfg)
	q := geom.Cube(geom.V(0.5, 0.5, 0.5), 0.04)
	divergeTrees(t, eng, q)
	dss := []object.DatasetID{0, 1, 2}
	for i := 0; i < 4; i++ {
		if _, err := eng.Query(q, dss); err != nil {
			t.Fatal(err)
		}
	}
	mf := eng.Merger().files[KeyOf(dss)]
	if mf == nil {
		t.Skip("no merge file created for this layout")
	}
	fanout := eng.Tree(0).FanoutPerDim()
	keys := make([]octree.Key, 0, len(mf.entries))
	for k := range mf.entries {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[i].AncestorOf(keys[j], fanout) || keys[j].AncestorOf(keys[i], fanout) {
				t.Fatalf("overlapping merge entries %v and %v", keys[i], keys[j])
			}
		}
	}
}
