package core

import (
	"math"
	"testing"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
)

// TestHeatDecayHalfLifeMath pins the log-space half-life arithmetic: a
// score is constant while untouched, the decoded heat halves every
// halfLife ticks exactly, and bumping re-encodes decayed-heat-plus-one.
func TestHeatDecayHalfLifeMath(t *testing.T) {
	const h = 16.0
	s := heatScore(8, 100, h) // heat 8 as of tick 100

	if got := effectiveHeat(s, 100, h); math.Abs(got-8) > 1e-9 {
		t.Fatalf("effectiveHeat at encode tick = %g, want 8", got)
	}
	// One half-life later the heat has halved; two later, quartered.
	if got := effectiveHeat(s, 100+16, h); math.Abs(got-4) > 1e-9 {
		t.Fatalf("after one half-life: %g, want 4", got)
	}
	if got := effectiveHeat(s, 100+32, h); math.Abs(got-2) > 1e-9 {
		t.Fatalf("after two half-lives: %g, want 2", got)
	}

	// bumpScore at tick 116 = decayed heat (4) + 1 = 5 as of 116.
	b := bumpScore(s, 116, h)
	if got := effectiveHeat(b, 116, h); math.Abs(got-5) > 1e-9 {
		t.Fatalf("bumped heat = %g, want 5", got)
	}

	// Score ordering is time-invariant: comparing two untouched entries at
	// any later tick compares their decayed heats.
	a := heatScore(100, 0, h) // very hot, long ago
	c := heatScore(2, 200, h) // barely warm, fresh
	// At tick 200, a has decayed by 2^(200/16) ≈ 5800x — far below 2.
	if !(a < c) {
		t.Fatalf("stale hotspot (score %g) should rank below fresh entry (score %g)", a, c)
	}
}

// TestDSHeatDecay pins the per-dataset placement heat's lazy decay and the
// exact legacy behavior with decay off.
func TestDSHeatDecay(t *testing.T) {
	h := &dsHeat{val: 8, tick: 0}
	if got := h.decayed(10, 0); got != 8 {
		t.Fatalf("decay off: %g, want 8", got)
	}
	if got := h.decayed(10, 10); math.Abs(got-4) > 1e-9 {
		t.Fatalf("one half-life: %g, want 4", got)
	}
	if got := h.decayed(30, 10); math.Abs(got-1) > 1e-9 {
		t.Fatalf("three half-lives: %g, want 1", got)
	}
}

// TestResultCacheDecayReleasesStaleHotspot pins the tentpole behavior: with
// a half-life configured, an entry that was very hot long ago is evicted
// before a fresh barely-touched one — a migrated hotspot releases its cache
// space. (Without decay the old entry's accumulated heat would pin it, as
// TestResultCacheEvictsColdestFirst shows.)
func TestResultCacheDecayReleasesStaleHotspot(t *testing.T) {
	var tick int64
	c := newResultCache(geom.UnitBox(), 4)
	c.halfLife = 2
	c.tick = func() int64 { return tick }

	a, b, cc := testKeyAt(2, 0, 0, 0), testKeyAt(2, 1, 0, 0), testKeyAt(2, 2, 0, 0)
	two := []object.Object{{ID: 1}, {ID: 2}}

	// Phase 1: a is the hotspot — inserted and hit repeatedly at tick 0.
	c.Insert(0, a, 1, geom.UnitBox(), two)
	for i := 0; i < 7; i++ {
		c.Lookup(0, a, 1)
	}
	// Phase 2, 20 ticks later: the hotspot migrated; b arrives once.
	tick = 20
	c.Insert(0, b, 1, geom.UnitBox(), two)
	// Capacity overflow: the decayed-out a must go, not the fresh b.
	c.Insert(0, cc, 1, geom.UnitBox(), two)

	if _, ok := c.Lookup(0, a, 1); ok {
		t.Fatal("stale hotspot entry survived eviction despite decay")
	}
	if _, ok := c.Lookup(0, b, 1); !ok {
		t.Fatal("fresh entry was evicted instead of the stale hotspot")
	}
}

// TestResultCacheAdaptiveGrowsOnGhostHits pins the capacity tuner's grow
// path: a working set larger than the budget causes evict/re-miss churn,
// the ghosts witness it, and the next tuning point doubles the capacity.
func TestResultCacheAdaptiveGrowsOnGhostHits(t *testing.T) {
	c := newResultCache(geom.UnitBox(), 2048)
	c.enableAdaptive()

	one := []object.Object{{ID: 1}}
	// Working set of 3000 single-object entries vs a 2048 budget: inserts
	// evict, re-lookups hit ghosts.
	for round := 0; round < 3; round++ {
		for i := 0; i < 3000; i++ {
			k := testKeyAt(6, uint32(i%64), uint32(i/64), 0)
			if _, ok := c.Lookup(0, k, 1); !ok {
				c.Insert(0, k, 1, geom.UnitBox(), one)
			}
		}
	}
	st := c.Stats()
	if st.GhostHits == 0 {
		t.Fatalf("no ghost hits recorded on a thrashing working set: %+v", st)
	}
	if st.CapacityGrows == 0 || st.Capacity <= 2048 {
		t.Fatalf("capacity did not grow under capacity misses: %+v", st)
	}
}

// TestResultCacheAdaptiveShrinksWhenIdle pins the shrink path: windows with
// no evictions and occupancy far below budget halve the capacity down
// toward the floor, and Invalidate (the epoch boundary) is a tuning point.
func TestResultCacheAdaptiveShrinksWhenIdle(t *testing.T) {
	c := newResultCache(geom.UnitBox(), 1<<16)
	c.enableAdaptive()

	// A tiny steady working set: 4 entries, hit over and over.
	one := []object.Object{{ID: 1}}
	for i := 0; i < 4; i++ {
		c.Insert(0, testKeyAt(2, uint32(i), 0, 0), 1, geom.UnitBox(), one)
	}
	for op := 0; op < 3*tuneEvery; op++ {
		c.Lookup(0, testKeyAt(2, uint32(op%4), 0, 0), 1)
	}
	st := c.Stats()
	if st.CapacityShrinks == 0 || st.Capacity >= 1<<16 {
		t.Fatalf("oversized idle cache did not shrink: %+v", st)
	}
	if st.Capacity < c.minCap {
		t.Fatalf("capacity %d fell below the floor %d", st.Capacity, c.minCap)
	}

	// The epoch boundary also tunes: force another shrink via Invalidate.
	before := c.Stats().Capacity
	c.Invalidate()
	if after := c.Stats().Capacity; after > before {
		t.Fatalf("epoch-boundary tune grew an idle cache: %d -> %d", before, after)
	}
}
