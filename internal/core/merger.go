package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/octree"
	"spaceodyssey/internal/pagefile"
	"spaceodyssey/internal/simdisk"
)

// Relation classifies a merge-file lookup (§3.2.3).
type Relation int

const (
	// RelNone — no usable merge file; individual files serve the query.
	RelNone Relation = iota
	// RelExact — a merge file for exactly the queried combination.
	RelExact
	// RelSuperset — a merge file containing more datasets than requested;
	// unneeded segments are skipped during the sequential read.
	RelSuperset
	// RelSubset — a merge file covering part of the requested datasets; the
	// remainder comes from individual files.
	RelSubset
)

// String implements fmt.Stringer.
func (r Relation) String() string {
	switch r {
	case RelNone:
		return "none"
	case RelExact:
		return "exact"
	case RelSuperset:
		return "superset"
	case RelSubset:
		return "subset"
	}
	return fmt.Sprintf("Relation(%d)", int(r))
}

// segment locates one dataset's objects for one partition. Normally it
// points into the merge file's own pages; with segment sharing enabled it
// may reference another merge file that already stores the same partition
// copy (§3.2.5's improved disk space management).
type segment struct {
	run pagefile.Run
	// sharedFrom, when non-empty, names the merge file actually holding
	// the pages.
	sharedFrom ComboKey
}

// MergeFile stores copies of partitions from the datasets of one
// combination so they can be read together sequentially (§3.2.2). For each
// partition key, the objects of every member dataset are laid out one after
// another; the file is append-only.
type MergeFile struct {
	combo    ComboKey
	members  []object.DatasetID
	memberOf map[object.DatasetID]bool
	file     *pagefile.File
	entries  map[octree.Key]map[object.DatasetID]segment
	lastUsed int64
}

// Combo returns the combination the file was merged for.
func (m *MergeFile) Combo() ComboKey { return m.combo }

// Members returns the datasets stored in the file.
func (m *MergeFile) Members() []object.DatasetID { return m.members }

// NumEntries returns the number of merged partitions.
func (m *MergeFile) NumEntries() int { return len(m.entries) }

// Pages returns the file size in pages.
func (m *MergeFile) Pages() int64 {
	n, err := m.file.NumPages()
	if err != nil {
		return 0
	}
	return n
}

// covering returns the merge entry whose cell contains key (walking the
// ancestor chain), if any.
func (m *MergeFile) covering(key octree.Key, fanout int) (octree.Key, bool) {
	return coveringIn(m.entries, key, fanout)
}

// coveringIn is covering over any entry map (merge files and staged merges
// share it).
func coveringIn(entries map[octree.Key]map[object.DatasetID]segment, key octree.Key, fanout int) (octree.Key, bool) {
	for lvl := int(key.Level); lvl >= 1; lvl-- {
		anc := key.Ancestor(uint8(lvl), fanout)
		if _, ok := entries[anc]; ok {
			return anc, true
		}
	}
	return octree.Key{}, false
}

// EntryKeys returns the merged partition keys in a deterministic order (for
// layout comparison and diagnostics).
func (m *MergeFile) EntryKeys() []octree.Key {
	out := make([]octree.Key, 0, len(m.entries))
	for k := range m.entries {
		out = append(out, k)
	}
	sortKeys(out)
	return out
}

// sortKeys orders keys by (level, z, y, x), the collector's canonical order.
func sortKeys(keys []octree.Key) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Level != b.Level {
			return a.Level < b.Level
		}
		if a.Z != b.Z {
			return a.Z < b.Z
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
}

// MergerConfig tunes the Merger.
type MergerConfig struct {
	// MergeThreshold is mt: a combination is merged once it has been
	// queried this many times. Paper default: 2.
	MergeThreshold int
	// MinCombination is the minimum |C| worth merging. Paper default: 3.
	MinCombination int
	// SpaceBudgetPages caps the total size of all merge files; exceeding it
	// evicts least-recently-used merge files (§3.2.4). 0 = unlimited.
	SpaceBudgetPages int64
	// LevelPolicy selects the strategy for partitions at different
	// refinement levels (§3.2.5). Default SameLevel (the paper's rule).
	LevelPolicy LevelPolicy
	// ShareSegments avoids copying a dataset's partition again when
	// another merge file already stores it, referencing those pages
	// instead (§3.2.5's improved disk space management). Reading a shared
	// segment jumps to the other file, costing one extra seek.
	ShareSegments bool
	// AdaptiveThresholds enables the runtime cost model of §3.2.5: every
	// AdaptEvery queries the merger compares how often merged segments are
	// reused against how much was copied, and adjusts mt within
	// [MergeThreshold, MaxMergeThreshold] — raising it when merges do not
	// pay off, lowering it when they do.
	AdaptiveThresholds bool
	// AdaptEvery is the adaptation period in queries (default 50).
	AdaptEvery int
	// MaxMergeThreshold bounds adaptive mt growth (default 8).
	MaxMergeThreshold int
}

// Merger owns the merge files and the directory that maps combinations to
// them (§3.2).
//
// Synchronization: the engine's layout lock serializes every structural
// mutation (MergeOrExtend, EnforceBudget) against the shared read path
// (Lookup, ReadSegment). The read path still mutates accounting state —
// recency ticks, segment-read counts, the adaptive threshold — so those
// fields live under the internal accMu, making Lookup/ReadSegment safe for
// parallel readers.
type Merger struct {
	cfg   MergerConfig
	dev   simdisk.Storage
	files map[ComboKey]*MergeFile

	// PlaceGroup, when non-nil, names the placement affinity group for a
	// new merge file from its member datasets. The engine sets it to the
	// hottest member's dataset group, so on a device array a merge file
	// co-locates with the data it is most often read alongside. Nil places
	// merge files with no affinity (the policy falls back to name hashing).
	PlaceGroup func(members []object.DatasetID) string

	// accMu guards the accounting fields mutated under the engine's shared
	// (read) lock: tick, every MergeFile.lastUsed, segmentsRead,
	// queriesSeen, currentMT and the threshold counters.
	accMu     sync.Mutex
	tick      int64
	currentMT int // effective merge threshold (adapts when enabled)

	// segIndex maps (entry key, dataset) to the merge file owning a copy,
	// for segment sharing.
	segIndex map[segRef]ComboKey

	// adaptation bookkeeping
	queriesSeen     int
	segmentsWritten int
	segmentsRead    int

	// MergesCreated, PartitionsMerged, Evictions, SegmentsShared,
	// ThresholdRaises and ThresholdDrops are lifetime counters.
	MergesCreated    int
	PartitionsMerged int
	Evictions        int
	SegmentsShared   int
	ThresholdRaises  int
	ThresholdDrops   int
}

// segRef identifies one dataset's copy of one partition across all merge
// files.
type segRef struct {
	key octree.Key
	ds  object.DatasetID
}

// NewMerger returns an empty merger.
func NewMerger(dev simdisk.Storage, cfg MergerConfig) *Merger {
	if cfg.MergeThreshold <= 0 {
		cfg.MergeThreshold = 2
	}
	if cfg.MinCombination <= 0 {
		cfg.MinCombination = 3
	}
	if cfg.AdaptEvery <= 0 {
		cfg.AdaptEvery = 50
	}
	if cfg.MaxMergeThreshold <= 0 {
		cfg.MaxMergeThreshold = 8
	}
	return &Merger{
		cfg:       cfg,
		dev:       dev,
		files:     make(map[ComboKey]*MergeFile),
		currentMT: cfg.MergeThreshold,
		segIndex:  make(map[segRef]ComboKey),
	}
}

// Config returns the effective configuration.
func (m *Merger) Config() MergerConfig { return m.cfg }

// Threshold returns the current (possibly adapted) merge threshold mt.
func (m *Merger) Threshold() int {
	m.accMu.Lock()
	defer m.accMu.Unlock()
	return m.currentMT
}

// OnQuery advances the adaptation clock; the engine calls it once per
// query. When adaptation is enabled, every AdaptEvery queries the merger
// compares segment reuse (reads per written segment) and nudges mt: reuse
// below 1 means copies are rarely read back — merge more conservatively;
// reuse above 4 means merging pays — merge eagerly.
func (m *Merger) OnQuery() {
	if !m.cfg.AdaptiveThresholds {
		return
	}
	m.accMu.Lock()
	defer m.accMu.Unlock()
	m.queriesSeen++
	if m.queriesSeen%m.cfg.AdaptEvery != 0 || m.segmentsWritten == 0 {
		return
	}
	reuse := float64(m.segmentsRead) / float64(m.segmentsWritten)
	switch {
	case reuse < 1 && m.currentMT < m.cfg.MaxMergeThreshold:
		m.currentMT++
		m.ThresholdRaises++
	case reuse > 4 && m.currentMT > m.cfg.MergeThreshold:
		m.currentMT--
		m.ThresholdDrops++
	}
}

// NumFiles returns how many merge files exist.
func (m *Merger) NumFiles() int { return len(m.files) }

// Files returns the merge files ordered by combination key (for layout
// comparison and diagnostics). Caller must hold the engine's layout lock.
func (m *Merger) Files() []*MergeFile {
	out := make([]*MergeFile, 0, len(m.files))
	for _, f := range m.files {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].combo < out[j].combo })
	return out
}

// TotalPages returns the disk space merge files currently occupy.
func (m *Merger) TotalPages() int64 {
	var n int64
	for _, f := range m.files {
		n += f.Pages()
	}
	return n
}

// Lookup applies the paper's routing: exact combination first, then the
// smallest superset, then the subset covering the most requested datasets.
// The chosen file's recency is ticked for budget eviction.
func (m *Merger) Lookup(datasets []object.DatasetID) (*MergeFile, Relation) {
	f, rel := m.lookup(datasets)
	if f != nil {
		m.touch(f)
	}
	return f, rel
}

// LookupNoTouch is Lookup without the recency tick: background maintenance
// re-checks coverage through it so observation never perturbs the LRU
// eviction order queries establish.
func (m *Merger) LookupNoTouch(datasets []object.DatasetID) (*MergeFile, Relation) {
	return m.lookup(datasets)
}

// lookup is the routing rule shared by Lookup and LookupNoTouch.
func (m *Merger) lookup(datasets []object.DatasetID) (*MergeFile, Relation) {
	key := KeyOf(datasets)
	if f, ok := m.files[key]; ok {
		return f, RelExact
	}
	want := make(map[object.DatasetID]bool, len(datasets))
	for _, ds := range datasets {
		want[ds] = true
	}
	var best *MergeFile
	bestRel := RelNone
	for _, f := range m.files {
		super, sub := true, true
		for _, ds := range datasets {
			if !f.memberOf[ds] {
				super = false
				break
			}
		}
		for _, ds := range f.members {
			if !want[ds] {
				sub = false
				break
			}
		}
		switch {
		case super:
			// Prefer the smallest superset (fewest segments to skip); any
			// superset beats any subset.
			if bestRel != RelSuperset || len(f.members) < len(best.members) {
				best, bestRel = f, RelSuperset
			}
		case sub && bestRel != RelSuperset:
			// Prefer the subset holding the most requested datasets.
			if bestRel != RelSubset || len(f.members) > len(best.members) {
				best, bestRel = f, RelSubset
			}
		}
	}
	return best, bestRel
}

// NeedsMerge reports whether MergeOrExtend could possibly do work for the
// combination: merging is allowed and some candidate partition is not yet
// covered by the combination's merge file. It over-approximates (an
// uncovered candidate may still fail level-policy qualification); the
// engine layers a futility check on top so repeated no-op attempts do not
// serialize steady-state traffic. Safe under the engine's shared lock, and
// the candidate order is irrelevant.
func (m *Merger) NeedsMerge(key ComboKey, datasets []object.DatasetID, candidates []octree.Key, fanout int) bool {
	if len(datasets) < m.cfg.MinCombination || len(candidates) == 0 {
		return false
	}
	mf := m.files[key]
	if mf == nil {
		return true
	}
	for _, cand := range candidates {
		if _, covered := mf.covering(cand, fanout); !covered {
			return true
		}
	}
	return false
}

// MergeOrExtend creates the merge file for the combination if the
// thresholds allow, and appends every qualifying partition from candidates
// that is not already covered. Qualification follows the configured
// LevelPolicy — by default the paper's same-refinement-level rule. Returns
// the number of partitions appended. ctx (nil disables) carries the QoS
// scope the copy I/O is charged to; callers pass a non-cancelable context —
// a merge is never interrupted mid-way.
func (m *Merger) MergeOrExtend(
	ctx context.Context,
	key ComboKey,
	datasets []object.DatasetID,
	candidates []octree.Key,
	trees map[object.DatasetID]*octree.Tree,
) (int, error) {
	if len(datasets) < m.cfg.MinCombination {
		return 0, nil
	}
	mf := m.files[key]
	fanout := 0
	for _, t := range trees {
		fanout = t.FanoutPerDim()
		break
	}

	appended := 0
	for _, cand := range candidates {
		if mf != nil {
			if _, covered := mf.covering(cand, fanout); covered {
				continue
			}
		}
		job, ok := m.planJob(cand, datasets, trees)
		if !ok {
			continue
		}
		if mf != nil {
			// The policy may have lifted or kept the key; re-check both
			// directions against existing entries to keep them disjoint.
			if _, covered := mf.covering(job.key, fanout); covered {
				continue
			}
			if overlapsEntry(mf, job.key, fanout) {
				continue
			}
		}
		if mf == nil {
			mf = m.newMergeFile(key, datasets)
		}
		if err := m.appendJob(ctx, mf, datasets, job); err != nil {
			return appended, err
		}
		appended++
	}
	if mf != nil {
		m.touch(mf)
	}
	return appended, nil
}

// newMergeFile registers an empty merge file for the combination.
func (m *Merger) newMergeFile(key ComboKey, datasets []object.DatasetID) *MergeFile {
	mf := m.buildMergeFile(key, datasets)
	m.files[key] = mf
	m.MergesCreated++
	return mf
}

// buildMergeFile allocates an empty merge file for the combination without
// registering it in the directory — staged merges keep the file private
// until PublishMerge.
func (m *Merger) buildMergeFile(key ComboKey, datasets []object.DatasetID) *MergeFile {
	members := append([]object.DatasetID(nil), datasets...)
	memberOf := make(map[object.DatasetID]bool, len(members))
	for _, ds := range members {
		memberOf[ds] = true
	}
	group := ""
	if m.PlaceGroup != nil {
		group = m.PlaceGroup(members)
	}
	return &MergeFile{
		combo:    key,
		members:  members,
		memberOf: memberOf,
		file:     pagefile.CreateInGroup(m.dev, "merge:"+string(key), group),
		entries:  make(map[octree.Key]map[object.DatasetID]segment),
	}
}

// PreparedMerge is a staged merge step: partition copies already appended to
// the merge file's pages but not yet published — no reader can reach pages
// that have no directory entry, so the expensive copy I/O of PrepareMerge
// runs under shared locks, off the query path, and PublishMerge flips the
// entries in under the exclusive layout lock in O(entries) map inserts.
// The stage's reads and appends are charged to the context's QoS scope —
// background merges carry a maintenance-priority scope the storage budget
// can throttle.
type PreparedMerge struct {
	key     ComboKey
	mf      *MergeFile
	isNew   bool
	entries map[octree.Key]map[object.DatasetID]segment
	order   []octree.Key // append order, for deterministic publication
}

// Appended returns how many partition entries the staged merge holds.
func (p *PreparedMerge) Appended() int { return len(p.order) }

// covering reports whether key's cell is covered by a published or staged
// entry.
func (p *PreparedMerge) covering(key octree.Key, fanout int) bool {
	if p.mf != nil {
		if _, ok := p.mf.covering(key, fanout); ok {
			return true
		}
	}
	_, ok := coveringIn(p.entries, key, fanout)
	return ok
}

// overlaps reports whether key contains a published or staged entry.
func (p *PreparedMerge) overlaps(key octree.Key, fanout int) bool {
	if p.mf != nil && overlapsEntry(p.mf, key, fanout) {
		return true
	}
	for existing := range p.entries {
		if key.AncestorOf(existing, fanout) {
			return true
		}
	}
	return false
}

// CanStageMerges reports whether the configuration allows the two-stage
// prepare/publish merge path: the paper's SameLevel policy with segment
// sharing off. RefineToFinest and CoarsestCover may mutate member trees
// mid-merge and segment sharing reads the cross-file segment index, so both
// fall back to the classic exclusive MergeOrExtend.
func (m *Merger) CanStageMerges() bool {
	return m.cfg.LevelPolicy == SameLevel && !m.cfg.ShareSegments
}

// PrepareMerge is stage one of a two-stage merge: it plans and copies every
// qualifying uncovered candidate into the combination's merge file (created
// privately when none exists) WITHOUT registering the entries, and returns
// the staged state for PublishMerge. Because unregistered pages are
// unreachable, the caller only needs the engine's shared layout lock plus
// read locks on every member tree — queries keep flowing while the copies
// run. The caller must guarantee single-flight per combination (two
// concurrent prepares for one combination would race on the file's append
// position). Returns nil when there is nothing to stage.
func (m *Merger) PrepareMerge(
	ctx context.Context,
	key ComboKey,
	datasets []object.DatasetID,
	candidates []octree.Key,
	trees map[object.DatasetID]*octree.Tree,
) (*PreparedMerge, error) {
	if !m.CanStageMerges() {
		return nil, fmt.Errorf("core: merge staging requires the same-level policy without segment sharing")
	}
	if len(datasets) < m.cfg.MinCombination {
		return nil, nil
	}
	fanout := 0
	for _, t := range trees {
		fanout = t.FanoutPerDim()
		break
	}
	prep := &PreparedMerge{
		key:     key,
		mf:      m.files[key],
		entries: make(map[octree.Key]map[object.DatasetID]segment),
	}
	for _, cand := range candidates {
		if prep.covering(cand, fanout) {
			continue
		}
		job, ok := m.planJob(cand, datasets, trees)
		if !ok {
			continue
		}
		// The policy may have lifted or kept the key; re-check both
		// directions against published and staged entries to keep them
		// disjoint.
		if job.key != cand && prep.covering(job.key, fanout) {
			continue
		}
		if prep.overlaps(job.key, fanout) {
			continue
		}
		if prep.mf == nil {
			prep.mf = m.buildMergeFile(key, datasets)
			prep.isNew = true
		}
		segs := make(map[object.DatasetID]segment, len(datasets))
		for i, ds := range datasets {
			objs, err := job.readers[i](ctx)
			if err != nil {
				return prep.failed(), fmt.Errorf("merge read %v ds %d: %w", job.key, ds, err)
			}
			run, err := prep.mf.file.AppendObjectsCtx(ctx, objs)
			if err != nil {
				return prep.failed(), fmt.Errorf("merge write %v ds %d: %w", job.key, ds, err)
			}
			segs[ds] = segment{run: run}
		}
		prep.entries[job.key] = segs
		prep.order = append(prep.order, job.key)
	}
	if len(prep.order) == 0 {
		return nil, nil
	}
	return prep, nil
}

// failed trims a stage that hit an error down to its completed entries —
// mirroring the synchronous MergeOrExtend, which also keeps the partitions
// it appended before failing. A failed stage with nothing completed
// deletes the private file it may have created, so no unreachable pages
// leak; the caller publishes whatever non-nil stage remains.
func (p *PreparedMerge) failed() *PreparedMerge {
	if len(p.order) > 0 {
		return p
	}
	if p.isNew && p.mf != nil {
		_ = p.mf.file.Delete()
	}
	return nil
}

// PublishMerge is stage two: it registers the staged entries (and, for a
// fresh combination, the merge file itself) so readers can route to them.
// The caller holds the exclusive layout lock, so publication is atomic —
// a query sees either none or all of the staged entries, never a partial
// merge step. If the target merge file was evicted between the stages the
// staged pages died with the file and nothing is published. Returns the
// number of entries published.
func (m *Merger) PublishMerge(prep *PreparedMerge) int {
	if prep == nil || len(prep.order) == 0 {
		return 0
	}
	if prep.isNew {
		if m.files[prep.key] != nil {
			// A competing merge registered the combination mid-stage; the
			// scheduler's single-flight rule makes this unreachable, but
			// dropping the stage (and its private file) is always safe.
			_ = prep.mf.file.Delete()
			return 0
		}
		m.files[prep.key] = prep.mf
		m.MergesCreated++
	} else if m.files[prep.key] != prep.mf {
		return 0 // evicted mid-stage; the staged pages are gone with the file
	}
	for _, k := range prep.order {
		segs := prep.entries[k]
		prep.mf.entries[k] = segs
		m.PartitionsMerged++
		m.segmentsWritten += len(segs)
	}
	m.touch(prep.mf)
	return len(prep.order)
}

// appendJob copies one partition into the merge file: for every member
// dataset (in order) the objects are read from the original partitions and
// appended back to back (§3.2.2's layout) — unless another merge file
// already holds that exact copy and sharing is enabled. The copy I/O is
// charged to ctx's QoS scope.
func (m *Merger) appendJob(ctx context.Context, mf *MergeFile, datasets []object.DatasetID, job mergeJob) error {
	segs := make(map[object.DatasetID]segment, len(datasets))
	for i, ds := range datasets {
		ref := segRef{key: job.key, ds: ds}
		if m.cfg.ShareSegments {
			if owner, ok := m.segIndex[ref]; ok && owner != mf.combo {
				if ownerFile, live := m.files[owner]; live {
					seg, ok := ownerFile.entries[job.key][ds]
					if ok && seg.sharedFrom == "" {
						segs[ds] = segment{run: seg.run, sharedFrom: owner}
						m.SegmentsShared++
						continue
					}
				}
			}
		}
		objs, err := job.readers[i](ctx)
		if err != nil {
			return fmt.Errorf("merge read %v ds %d: %w", job.key, ds, err)
		}
		run, err := mf.file.AppendObjectsCtx(ctx, objs)
		if err != nil {
			return fmt.Errorf("merge write %v ds %d: %w", job.key, ds, err)
		}
		segs[ds] = segment{run: run}
		m.segmentsWritten++
		if _, taken := m.segIndex[ref]; !taken {
			m.segIndex[ref] = mf.combo
		}
	}
	mf.entries[job.key] = segs
	m.PartitionsMerged++
	return nil
}

// ReadSegment reads the objects of one dataset for one merged partition,
// following a shared-segment reference when present.
func (m *Merger) ReadSegment(mf *MergeFile, key octree.Key, ds object.DatasetID) ([]object.Object, error) {
	return m.ReadSegmentCtx(nil, mf, key, ds)
}

// ReadSegmentCtx is ReadSegment with cancellation (nil ctx disables it); the
// underlying run read aborts at the page boundary where the context expired.
func (m *Merger) ReadSegmentCtx(ctx context.Context, mf *MergeFile, key octree.Key, ds object.DatasetID) ([]object.Object, error) {
	segs, ok := mf.entries[key]
	if !ok {
		return nil, fmt.Errorf("merge file %s has no entry %v", mf.combo, key)
	}
	seg, ok := segs[ds]
	if !ok {
		return nil, fmt.Errorf("merge file %s entry %v has no dataset %d", mf.combo, key, ds)
	}
	m.touch(mf)
	m.accMu.Lock()
	m.segmentsRead++
	m.accMu.Unlock()
	file := mf.file
	if seg.sharedFrom != "" {
		owner, live := m.files[seg.sharedFrom]
		if !live {
			return nil, fmt.Errorf("merge file %s entry %v: shared owner %s evicted",
				mf.combo, key, seg.sharedFrom)
		}
		m.touch(owner)
		file = owner.file
	}
	return file.ReadRunCtx(ctx, seg.run)
}

// EnforceBudget evicts least-recently-used merge files until the space
// budget is met (§3.2.4). It returns the evicted combinations so the engine
// can reset their statistics.
func (m *Merger) EnforceBudget() ([]ComboKey, error) {
	if m.cfg.SpaceBudgetPages <= 0 {
		return nil, nil
	}
	var evicted []ComboKey
	for m.TotalPages() > m.cfg.SpaceBudgetPages && len(m.files) > 0 {
		var victim *MergeFile
		for _, f := range m.files {
			if victim == nil || f.lastUsed < victim.lastUsed {
				victim = f
			}
		}
		if err := victim.file.Delete(); err != nil {
			return evicted, fmt.Errorf("evict %s: %w", victim.combo, err)
		}
		delete(m.files, victim.combo)
		m.dropReferencesTo(victim.combo)
		evicted = append(evicted, victim.combo)
		m.Evictions++
	}
	return evicted, nil
}

// dropReferencesTo removes segment-index ownership of an evicted file and
// invalidates entries in other files that shared its pages (they lose
// coverage and will re-merge on demand).
func (m *Merger) dropReferencesTo(owner ComboKey) {
	for ref, who := range m.segIndex {
		if who == owner {
			delete(m.segIndex, ref)
		}
	}
	for _, f := range m.files {
		for key, segs := range f.entries {
			for _, seg := range segs {
				if seg.sharedFrom == owner {
					delete(f.entries, key)
					break
				}
			}
		}
	}
}

// EntryBox returns the spatial cell of a merged entry key within bounds —
// the region a cached merge segment covers. fanout is the per-dimension
// fanout of the trees; the geometry is the canonical key-to-cell mapping in
// octree.Key.Box.
func EntryBox(bounds geom.Box, key octree.Key, fanout int) geom.Box {
	return key.Box(bounds, fanout)
}

// touch marks f as most recently used for budget eviction. Safe under the
// engine's shared lock.
func (m *Merger) touch(f *MergeFile) {
	m.accMu.Lock()
	m.tick++
	f.lastUsed = m.tick
	m.accMu.Unlock()
}
