package core

import (
	"math/rand"
	"testing"

	"spaceodyssey/internal/engine"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
)

// TestStressAllFeatureInteractions runs a long randomized exploration with
// every optional mechanism enabled at once — level policies beyond
// same-level, segment sharing, adaptive thresholds, and a tight LRU space
// budget — and checks exact result equality against the oracle on every
// query. This is the interaction test that would catch, e.g., a shared
// segment surviving its owner's eviction or a policy producing overlapping
// entries.
func TestStressAllFeatureInteractions(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, policy := range []LevelPolicy{SameLevel, RefineToFinest, CoarsestCover} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Merger.LevelPolicy = policy
			cfg.Merger.ShareSegments = true
			cfg.Merger.AdaptiveThresholds = true
			cfg.Merger.AdaptEvery = 25
			cfg.Merger.SpaceBudgetPages = 96 // tight: forces eviction churn

			eng, raws, _ := testSetup(t, 5, 2200, 400+int64(policy), cfg)
			oracle := engine.NewNaiveScan(raws)
			r := rand.New(rand.NewSource(500 + int64(policy)))

			hotspots := []geom.Vec{
				geom.V(0.3, 0.3, 0.3), geom.V(0.7, 0.5, 0.4), geom.V(0.5, 0.8, 0.6),
			}
			for i := 0; i < 300; i++ {
				var c geom.Vec
				if r.Intn(4) > 0 { // mostly hot areas, some cold
					h := hotspots[r.Intn(len(hotspots))]
					c = geom.V(h.X+r.NormFloat64()*0.04, h.Y+r.NormFloat64()*0.04, h.Z+r.NormFloat64()*0.04)
				} else {
					c = geom.V(r.Float64(), r.Float64(), r.Float64())
				}
				side := 0.01 + r.Float64()*0.06
				q, ok := geom.Cube(c, side).Clip(geom.UnitBox())
				if !ok || q.Volume() == 0 {
					continue
				}
				k := 1 + r.Intn(5)
				seen := map[object.DatasetID]bool{}
				var dss []object.DatasetID
				for len(dss) < k {
					ds := object.DatasetID(r.Intn(5))
					if !seen[ds] {
						seen[ds] = true
						dss = append(dss, ds)
					}
				}
				got, err := eng.Query(q, dss)
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				want, err := oracle.Query(q, dss)
				if err != nil {
					t.Fatal(err)
				}
				if !engine.SameObjects(got, want) {
					t.Fatalf("query %d (%v, k=%d): %d objects, oracle %d",
						i, policy, k, len(got), len(want))
				}
				if pages := eng.Merger().TotalPages(); pages > cfg.Merger.SpaceBudgetPages {
					t.Fatalf("query %d: merge space %d over budget", i, pages)
				}
			}
			m := eng.Metrics()
			if m.MergeFilesCreated == 0 {
				t.Error("stress run never merged")
			}
			if m.MergeEvictions == 0 {
				t.Error("tight budget never evicted")
			}
			t.Logf("%s: merged=%d served=%d shared=%d evictions=%d mt=%d refinements=%d",
				policy, m.PartitionsMerged, m.PartitionsFromMerge,
				m.SegmentsShared, m.MergeEvictions, m.CurrentMergeThresh, m.Refinements)
		})
	}
}
