package core

import (
	"errors"
	"testing"

	"spaceodyssey/internal/engine"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/simdisk"
)

// TestQuerySurvivesTransientDeviceFault injects a one-shot read error and
// checks that (a) the error propagates to the caller and (b) the engine
// keeps answering correctly afterwards.
func TestQuerySurvivesTransientDeviceFault(t *testing.T) {
	eng, raws, dev := testSetup(t, 3, 2000, 91, DefaultConfig())
	oracle := engine.NewNaiveScan(raws)
	q := geom.Cube(geom.V(0.5, 0.5, 0.5), 0.05)
	dss := []object.DatasetID{0, 1, 2}

	// Prime the engine (build trees).
	if _, err := eng.Query(q, dss); err != nil {
		t.Fatal(err)
	}

	// Fault every file's page 0 so whichever file the next query reads
	// first fails. File ids 1..N exist on this device.
	boom := errors.New("media error")
	for id := simdisk.FileID(1); id < 40; id++ {
		if _, err := dev.NumPages(id); err == nil {
			dev.InjectReadFault(id, 0, boom)
		}
	}
	// A whole-volume query must touch page 0 of the partition files.
	all := geom.NewBox(geom.V(0.001, 0.001, 0.001), geom.V(0.999, 0.999, 0.999))
	if _, err := eng.Query(all, dss); !errors.Is(err, boom) {
		t.Fatalf("fault not propagated: %v", err)
	}

	// Faults are one-shot per page; after clearing the remaining ones by
	// touching them, the engine must return exact results again.
	buf := make([]byte, simdisk.PageSize)
	for id := simdisk.FileID(1); id < 40; id++ {
		if n, err := dev.NumPages(id); err == nil && n > 0 {
			_ = dev.ReadPage(id, 0, buf) // consume any armed fault
		}
	}
	got, err := eng.Query(q, dss)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Query(q, dss)
	if err != nil {
		t.Fatal(err)
	}
	if !engine.SameObjects(got, want) {
		t.Fatalf("post-fault results wrong: %d vs %d", len(got), len(want))
	}
}

// TestFirstQueryFaultDuringBuild injects a fault into a raw file so the
// level-0 scan fails; the tree must stay unbuilt and succeed on retry.
func TestFirstQueryFaultDuringBuild(t *testing.T) {
	eng, _, dev := testSetup(t, 2, 1000, 92, DefaultConfig())
	boom := errors.New("raw read error")
	// Raw files were created first on this device: ids 1 and 2.
	dev.InjectReadFault(1, 0, boom)
	q := geom.Cube(geom.V(0.5, 0.5, 0.5), 0.05)
	if _, err := eng.Query(q, []object.DatasetID{0}); !errors.Is(err, boom) {
		t.Fatalf("build fault not propagated: %v", err)
	}
	if eng.Tree(0).Built() {
		t.Fatal("tree marked built despite failed level-0 scan")
	}
	// Retry succeeds (fault was one-shot).
	if _, err := eng.Query(q, []object.DatasetID{0}); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if !eng.Tree(0).Built() {
		t.Fatal("tree not built after successful retry")
	}
}
