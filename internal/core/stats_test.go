package core

import (
	"math/rand"
	"testing"

	"spaceodyssey/internal/object"
	"spaceodyssey/internal/octree"
)

func TestCollectorCounts(t *testing.T) {
	c := NewCollector()
	key := KeyOf([]object.DatasetID{2, 0})
	if c.Count(key) != 0 {
		t.Fatal("fresh collector has counts")
	}
	if got := c.RecordQuery(key); got != 1 {
		t.Fatalf("first record = %d", got)
	}
	if got := c.RecordQuery(key); got != 2 {
		t.Fatalf("second record = %d", got)
	}
	other := KeyOf([]object.DatasetID{1})
	c.RecordQuery(other)
	if c.Count(key) != 2 || c.Count(other) != 1 {
		t.Fatal("counts mixed up")
	}
	if c.Combinations() != 2 {
		t.Fatalf("Combinations = %d", c.Combinations())
	}
}

func TestCollectorPartitionsDeduplicated(t *testing.T) {
	c := NewCollector()
	key := ComboKey("0,1,2")
	a := octree.Key{Level: 1, X: 1}
	b := octree.Key{Level: 2, X: 5, Y: 3}
	c.RecordPartitions(key, []octree.Key{a, b})
	c.RecordPartitions(key, []octree.Key{a}) // duplicate
	got := c.Partitions(key)
	if len(got) != 2 {
		t.Fatalf("partitions = %v", got)
	}
	// Deterministic order: level first.
	if got[0] != a || got[1] != b {
		t.Fatalf("order = %v", got)
	}
}

func TestCollectorPartitionsOrderDeterministic(t *testing.T) {
	keys := make([]octree.Key, 50)
	r := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = octree.Key{
			Level: uint8(r.Intn(4)),
			X:     uint32(r.Intn(16)), Y: uint32(r.Intn(16)), Z: uint32(r.Intn(16)),
		}
	}
	c1 := NewCollector()
	c2 := NewCollector()
	c1.RecordPartitions("x", keys)
	rev := make([]octree.Key, len(keys))
	for i, k := range keys {
		rev[len(keys)-1-i] = k
	}
	c2.RecordPartitions("x", rev)
	a, b := c1.Partitions("x"), c2.Partitions("x")
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Sorted by level, then z, y, x.
	for i := 1; i < len(a); i++ {
		if a[i].Level < a[i-1].Level {
			t.Fatal("not sorted by level")
		}
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector()
	key := ComboKey("3,4,5")
	c.RecordQuery(key)
	c.RecordPartitions(key, []octree.Key{{Level: 1}})
	c.Reset(key)
	if c.Count(key) != 0 || len(c.Partitions(key)) != 0 {
		t.Fatal("reset did not clear")
	}
	// Resetting an unknown key is a no-op.
	c.Reset("9,9")
}

func TestKeyOfEmptyAndSingle(t *testing.T) {
	if KeyOf(nil) != "" {
		t.Errorf("KeyOf(nil) = %q", KeyOf(nil))
	}
	if KeyOf([]object.DatasetID{7}) != "7" {
		t.Errorf("single = %q", KeyOf([]object.DatasetID{7}))
	}
	// KeyOf must not mutate its argument.
	in := []object.DatasetID{3, 1, 2}
	KeyOf(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("KeyOf mutated input")
	}
}
