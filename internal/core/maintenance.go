package core

import (
	"container/heap"
	"context"
	"math/rand"
	"sync"
	"time"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/octree"
	"spaceodyssey/internal/simdisk"
)

// MaintenanceStats counts the background maintenance pipeline's activity.
// All counters are lifetime totals; the ledger balances as
// Queued == Completed + Failed + Dropped once the pipeline is closed.
type MaintenanceStats struct {
	// Queued is how many tasks (refinement + merge) were accepted onto the
	// queues.
	Queued int64
	// Coalesced is how many enqueue attempts were absorbed by an
	// already-pending task for the same partition or combination — work the
	// pipeline never had to do because duplicates folded together.
	Coalesced int64
	// Completed is how many tasks executed to completion.
	Completed int64
	// Failed is how many tasks returned an error (the layout stays
	// consistent — a failed task simply leaves its region unconverged).
	Failed int64
	// Dropped is how many queued tasks Close discarded (cancel-and-drain).
	Dropped int64
	// RefineTasks and MergeTasks split Completed by kind.
	RefineTasks int64
	MergeTasks  int64
	// Refinements is how many refinement operations maintenance applied.
	Refinements int64
	// Retried is how many failed tasks were re-enqueued with backoff by the
	// self-healing policy (each re-enqueue also counts in Queued when it
	// lands, so the ledger invariant above still balances).
	Retried int64
	// Quarantined is how many units (dataset cells, combinations) were
	// quarantined after repeated or permanent failures (lifetime count; see
	// Health for the current list).
	Quarantined int64
	// QueueDepth is the current number of queued (not yet running) tasks.
	QueueDepth int
	// QueueDepthHighWater is the deepest the queue has ever been — the
	// backlog a sizing exercise has to plan for.
	QueueDepthHighWater int
}

// refineTask asks for one partition of one dataset to be refined to
// convergence for the query window that demanded it. members is the
// demanding query's (sorted) combination: the worker re-checks the
// combination's merge-file coverage before each step, so a partition a
// concurrent merge covered in the meantime is not refined (§3.2.2's
// merged-partitions-are-not-refined rule holds across the async gap).
type refineTask struct {
	key     octree.Key
	box     geom.Box
	qVol    float64
	members []object.DatasetID
}

// mergeTask asks for one combination's merge step to run.
type mergeTask struct {
	key     ComboKey
	members []object.DatasetID
}

// heatItem is one queued maintenance task with its scheduling state: heat
// is the region's access count (1 for the demanding query plus one per
// coalesced duplicate demand), seq breaks heat ties FIFO. The maintenance
// queues are max-heaps on (heat, -seq), so the hottest region's work runs
// first — under backlog, the partitions concurrent traffic keeps hitting
// converge before cold stragglers. With Config.HeatHalfLife set, score is
// the log-space decayed-heat key (see decay.go) and takes precedence; it
// stays 0 with decay off, restoring the exact legacy order.
type heatItem[T any] struct {
	task  T
	heat  int64
	score float64 // decayed-heat key; 0 unless decay is on
	seq   int64
	index int // position in its heap, maintained by the heap interface
}

// heatHeap is a max-heap of maintenance tasks by (decayed heat, FIFO).
type heatHeap[T any] []*heatItem[T]

func (h heatHeap[T]) Len() int           { return len(h) }
func (h heatHeap[T]) Less(i, j int) bool { return hotter(h[i], h[j]) }
func (h heatHeap[T]) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *heatHeap[T]) Push(x any) {
	it := x.(*heatItem[T])
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *heatHeap[T]) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// maintainer is the background maintenance scheduler behind
// Config.AsyncMaintenance: queries enqueue coalescing refinement and merge
// tasks instead of mutating the layout inline, and a bounded worker pool
// drains them — refinement concurrently across datasets (one writer per
// dataset, preserved by taking that dataset's tree lock exclusively), the
// merge step for a combination only once its member datasets have no
// refinement work queued or running, so merges see converged trees.
//
// Synchronization: mu guards every queue, the coalescing maps, the active
// sets and the statistics; cond wakes workers when work arrives or gating
// state changes; idle is the broadcast channel Quiesce waits on (closed
// whenever the pipeline has neither queued nor in-flight work, replaced
// with a fresh channel when work arrives). Task execution itself runs
// outside mu under the engine's own locks.
type maintainer struct {
	o       *Odyssey
	workers int

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	paused bool // tests freeze the pipeline to observe queue state

	refineQ       map[object.DatasetID]*heatHeap[refineTask]
	refinePending map[object.DatasetID]map[octree.Key]*heatItem[refineTask]
	activeRefine  map[object.DatasetID]bool

	mergeQ       heatHeap[mergeTask]
	mergePending map[ComboKey]*heatItem[mergeTask]
	activeMerge  map[ComboKey]bool

	seq      int64   // FIFO tiebreak for equal-heat tasks
	halfLife float64 // heat half-life in queries; 0 = no decay
	queueLen int
	inFlight int
	stats    MaintenanceStats

	// Self-healing state (see health.go): the bounded failure ring, the
	// per-unit consecutive-failure counts, the quarantine set, and the
	// in-flight retry timers (pendingRetries holds the pipeline non-idle
	// while a failed task waits out its backoff; retryStop aborts the
	// timers on Close).
	ring            []MaintenanceFailure
	ringCap         int
	failCount       map[healthKey]int
	quarantine      map[healthKey]*quarantineEntry
	pendingRetries  int
	retryStop       chan struct{}
	retryWG         sync.WaitGroup
	rng             *rand.Rand
	quarantineAfter int
	retryBackoff    time.Duration

	idleNow bool
	idle    chan struct{}

	wg sync.WaitGroup
}

// newMaintainer starts the pipeline with the given worker-pool size
// (<= 0 defaults to 2 — enough to overlap refinement across datasets with
// a concurrent merge without competing with query-serving goroutines for
// the machine).
func newMaintainer(o *Odyssey, workers int) *maintainer {
	if workers <= 0 {
		workers = 2
	}
	quarantineAfter := o.cfg.QuarantineAfter
	if quarantineAfter <= 0 {
		quarantineAfter = DefaultQuarantineAfter
	}
	retryBackoff := o.cfg.MaintenanceRetryBackoff
	if retryBackoff <= 0 {
		retryBackoff = DefaultMaintenanceRetryBackoff
	}
	ringCap := o.cfg.MaintenanceHealthRing
	if ringCap <= 0 {
		ringCap = DefaultMaintenanceHealthRing
	}
	m := &maintainer{
		o:               o,
		workers:         workers,
		halfLife:        o.halfLife,
		refineQ:         make(map[object.DatasetID]*heatHeap[refineTask]),
		refinePending:   make(map[object.DatasetID]map[octree.Key]*heatItem[refineTask]),
		activeRefine:    make(map[object.DatasetID]bool),
		mergePending:    make(map[ComboKey]*heatItem[mergeTask]),
		activeMerge:     make(map[ComboKey]bool),
		ringCap:         ringCap,
		failCount:       make(map[healthKey]int),
		quarantine:      make(map[healthKey]*quarantineEntry),
		retryStop:       make(chan struct{}),
		rng:             newMaintRand(),
		quarantineAfter: quarantineAfter,
		retryBackoff:    retryBackoff,
		idleNow:         true,
		idle:            make(chan struct{}),
	}
	close(m.idle) // idle at birth
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// noteWorkLocked records a newly queued task: high-water tracking and
// re-arming the idle channel.
func (m *maintainer) noteWorkLocked() {
	m.queueLen++
	m.stats.Queued++
	if m.queueLen > m.stats.QueueDepthHighWater {
		m.stats.QueueDepthHighWater = m.queueLen
	}
	if m.idleNow {
		m.idle = make(chan struct{})
		m.idleNow = false
	}
}

// maybeIdleLocked closes the idle channel when nothing is queued, running,
// or waiting out a retry backoff — a pipeline with a pending retry is not
// done, and Quiesce must wait the retry chain out.
func (m *maintainer) maybeIdleLocked() {
	if !m.idleNow && m.queueLen == 0 && m.inFlight == 0 && m.pendingRetries == 0 {
		close(m.idle)
		m.idleNow = true
	}
}

// EnqueueRefine schedules the given partitions of one dataset for
// background refinement, coalescing keys that already have a task pending —
// a coalesced demand bumps the pending task's heat, moving the region up
// the priority heap. box and qVol describe the query that demanded the
// refinement (the worker refines the region to convergence for that
// demand); members is that query's combination, for the worker's
// merge-coverage re-check.
func (m *maintainer) EnqueueRefine(ds object.DatasetID, keys []octree.Key, box geom.Box, qVol float64, members []object.DatasetID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.enqueueRefineLocked(ds, keys, box, qVol, members)
}

// enqueueRefineLocked is EnqueueRefine's core, shared with the retry timers
// (which re-enqueue inside the critical section that releases their
// pendingRetries hold). Quarantined cells are dropped here — the one gate
// that keeps a poisoned cell from ever occupying a worker again.
func (m *maintainer) enqueueRefineLocked(ds object.DatasetID, keys []octree.Key, box geom.Box, qVol float64, members []object.DatasetID) {
	if m.closed {
		return
	}
	pend := m.refinePending[ds]
	if pend == nil {
		pend = make(map[octree.Key]*heatItem[refineTask])
		m.refinePending[ds] = pend
	}
	h := m.refineQ[ds]
	if h == nil {
		h = &heatHeap[refineTask]{}
		m.refineQ[ds] = h
	}
	// Defensive copy, like EnqueueMerge: the tasks outlive the call and a
	// caller reusing its slice must not corrupt the coverage re-check.
	members = append([]object.DatasetID(nil), members...)
	added := false
	for _, k := range keys {
		if m.quarantinedLocked(healthKey{ds: ds, cell: k}) {
			continue
		}
		if it := pend[k]; it != nil {
			m.stats.Coalesced++
			it.heat++
			if m.halfLife > 0 {
				it.score = bumpScore(it.score, m.o.heatTick.Load(), m.halfLife)
			}
			heap.Fix(h, it.index)
			continue
		}
		m.seq++
		it := &heatItem[refineTask]{
			task:  refineTask{key: k, box: box, qVol: qVol, members: members},
			heat:  1,
			score: m.freshScore(),
			seq:   m.seq,
		}
		pend[k] = it
		heap.Push(h, it)
		m.noteWorkLocked()
		added = true
	}
	if added {
		m.cond.Broadcast()
	}
}

// freshScore keys a newly queued task: one demand as of the current query
// tick (0 — the legacy ordering — when decay is off).
func (m *maintainer) freshScore() float64 {
	if m.halfLife <= 0 {
		return 0
	}
	return heatScore(1, m.o.heatTick.Load(), m.halfLife)
}

// EnqueueMerge schedules one combination's merge step, coalescing with (and
// heating up) a pending task for the same combination.
func (m *maintainer) EnqueueMerge(key ComboKey, members []object.DatasetID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.enqueueMergeLocked(key, members)
}

// enqueueMergeLocked is EnqueueMerge's core, shared with the retry timers.
func (m *maintainer) enqueueMergeLocked(key ComboKey, members []object.DatasetID) {
	if m.closed || m.quarantinedLocked(healthKey{merge: true, combo: key}) {
		return
	}
	if it := m.mergePending[key]; it != nil {
		m.stats.Coalesced++
		it.heat++
		if m.halfLife > 0 {
			it.score = bumpScore(it.score, m.o.heatTick.Load(), m.halfLife)
		}
		heap.Fix(&m.mergeQ, it.index)
		return
	}
	m.seq++
	it := &heatItem[mergeTask]{
		task:  mergeTask{key: key, members: append([]object.DatasetID(nil), members...)},
		heat:  1,
		score: m.freshScore(),
		seq:   m.seq,
	}
	m.mergePending[key] = it
	heap.Push(&m.mergeQ, it)
	m.noteWorkLocked()
	m.cond.Broadcast()
}

// execTask is one unit of work a worker picked off the queues.
type execTask struct {
	isMerge bool
	ds      object.DatasetID // refine
	refine  refineTask       // refine
	merge   mergeTask        // merge
}

// membersBusyLocked reports whether any member dataset still has refinement
// work queued or running — the gate that makes the merge step a separate
// stage ordered after refinement.
func (m *maintainer) membersBusyLocked(members []object.DatasetID) bool {
	for _, ds := range members {
		if m.activeRefine[ds] || (m.refineQ[ds] != nil && m.refineQ[ds].Len() > 0) {
			return true
		}
	}
	return false
}

// pickLocked claims the next runnable task, hottest region first: among the
// datasets without an active refinement (one writer per dataset — but
// different datasets refine concurrently), the one whose top task has the
// highest access count wins; then the hottest merge whose combination is
// single-flight and whose members are refinement-quiescent. Heat-ties break
// FIFO, so the priority queue degrades to the old arrival order when every
// region is equally hot.
func (m *maintainer) pickLocked() (execTask, bool) {
	if m.paused {
		return execTask{}, false
	}
	var bestDS object.DatasetID
	var bestH *heatHeap[refineTask]
	for ds, h := range m.refineQ {
		if h.Len() == 0 || m.activeRefine[ds] {
			continue
		}
		top := (*h)[0]
		if bestH == nil || hotter(top, (*bestH)[0]) {
			bestDS, bestH = ds, h
		}
	}
	if bestH != nil {
		it := heap.Pop(bestH).(*heatItem[refineTask])
		delete(m.refinePending[bestDS], it.task.key)
		m.activeRefine[bestDS] = true
		m.queueLen--
		m.stats.QueueDepth = m.queueLen
		return execTask{ds: bestDS, refine: it.task}, true
	}
	// The heap orders merges by heat, but gating (active members, pending
	// refinements) can veto the top — scan for the hottest runnable one.
	var best *heatItem[mergeTask]
	for _, it := range m.mergeQ {
		if m.activeMerge[it.task.key] || m.membersBusyLocked(it.task.members) {
			continue
		}
		if best == nil || hotter(it, best) {
			best = it
		}
	}
	if best != nil {
		heap.Remove(&m.mergeQ, best.index)
		delete(m.mergePending, best.task.key)
		m.activeMerge[best.task.key] = true
		m.queueLen--
		m.stats.QueueDepth = m.queueLen
		return execTask{isMerge: true, merge: best.task}, true
	}
	return execTask{}, false
}

// worker drains tasks until Close. Completion of any task re-broadcasts:
// finishing the last refinement of a dataset can make a gated merge
// runnable for a sibling worker.
func (m *maintainer) worker() {
	defer m.wg.Done()
	m.mu.Lock()
	for {
		task, ok := m.pickLocked()
		for !ok && !m.closed {
			m.cond.Wait()
			task, ok = m.pickLocked()
		}
		if !ok { // closed with nothing runnable
			m.mu.Unlock()
			return
		}
		m.inFlight++
		m.mu.Unlock()

		var refined int
		var err error
		if task.isMerge {
			err = m.o.runMergeAsync(task.merge.key, task.merge.members)
		} else {
			refined, err = m.o.runRefineTask(task.ds, task.refine)
		}

		m.mu.Lock()
		m.inFlight--
		if task.isMerge {
			delete(m.activeMerge, task.merge.key)
		} else {
			delete(m.activeRefine, task.ds)
		}
		if err != nil {
			m.stats.Failed++
			m.noteFailureLocked(task, err)
		} else {
			m.clearFailuresLocked(task)
			m.stats.Completed++
			if task.isMerge {
				m.stats.MergeTasks++
			} else {
				m.stats.RefineTasks++
			}
		}
		m.stats.Refinements += int64(refined)
		m.maybeIdleLocked()
		m.cond.Broadcast()
	}
}

// PruneCoveredRefines drops pending refinement tasks whose cell a merge
// publish now covers for the demanding combination. The worker would skip
// them anyway (runRefineTask re-checks coverage before every step), so this
// is behavior-identical — but without it the heat ledger keeps entries for
// merged cells alive until a worker gets around to each one, and after a
// hotspot migration that dead backlog can dominate the heap. Called after
// every layout-epoch bump from a merge publish; prunes count as Dropped.
//
// covered is evaluated with no maintainer lock held (it takes the engine's
// shared layout lock); candidates that were picked up or re-enqueued in the
// meantime are left alone via pointer identity.
func (m *maintainer) PruneCoveredRefines(covered func(ds object.DatasetID, t refineTask) bool) int {
	type cand struct {
		ds object.DatasetID
		it *heatItem[refineTask]
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0
	}
	var cands []cand
	for ds, pend := range m.refinePending {
		for _, it := range pend {
			cands = append(cands, cand{ds: ds, it: it})
		}
	}
	m.mu.Unlock()
	if len(cands) == 0 {
		return 0
	}
	dead := cands[:0]
	for _, c := range cands {
		if covered(c.ds, c.it.task) {
			dead = append(dead, c)
		}
	}
	if len(dead) == 0 {
		return 0
	}
	m.mu.Lock()
	pruned := 0
	for _, c := range dead {
		pend := m.refinePending[c.ds]
		if pend == nil || pend[c.it.task.key] != c.it {
			continue // picked up or replaced since the snapshot
		}
		heap.Remove(m.refineQ[c.ds], c.it.index)
		delete(pend, c.it.task.key)
		m.queueLen--
		m.stats.QueueDepth = m.queueLen
		m.stats.Dropped++
		pruned++
	}
	if pruned > 0 {
		m.maybeIdleLocked()
		m.cond.Broadcast()
	}
	m.mu.Unlock()
	return pruned
}

// Stats snapshots the pipeline counters.
func (m *maintainer) Stats() MaintenanceStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.QueueDepth = m.queueLen
	return s
}

// Err returns the most recent task error (nil when everything succeeded so
// far, or the ring has aged the last failure out). It is the compatibility
// accessor over the failure ring — Health returns the full history.
func (m *maintainer) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.ring) == 0 {
		return nil
	}
	return m.ring[len(m.ring)-1].Err
}

// SetPaused freezes (true) or thaws (false) task pickup; queued work stays
// queued while paused. Tests use it to observe coalescing deterministically.
func (m *maintainer) SetPaused(paused bool) {
	m.mu.Lock()
	m.paused = paused
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Quiesce blocks until the pipeline has no queued or running tasks — the
// point where the layout has absorbed every scheduled mutation. Returns
// early with a cancellation error when ctx expires first; ctx == nil waits
// indefinitely.
func (m *maintainer) Quiesce(ctx context.Context) error {
	m.mu.Lock()
	ch := m.idle
	m.mu.Unlock()
	if ctx == nil {
		<-ch
		return nil
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return simdisk.Canceled(ctx.Err())
	}
}

// Close cancels-and-drains the pipeline: queued tasks are dropped (counted
// in Stats().Dropped), in-flight tasks run to completion — layout mutations
// are never interrupted mid-way — and every worker goroutine exits before
// Close returns. Safe to call more than once.
func (m *maintainer) Close() {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.retryStop) // wake retry timers; they observe closed and exit
		m.stats.Dropped += int64(m.queueLen)
		m.queueLen = 0
		m.stats.QueueDepth = 0
		m.refineQ = make(map[object.DatasetID]*heatHeap[refineTask])
		m.refinePending = make(map[object.DatasetID]map[octree.Key]*heatItem[refineTask])
		m.mergeQ = nil
		m.mergePending = make(map[ComboKey]*heatItem[mergeTask])
		m.paused = false // a paused pipeline must still wind down
		m.maybeIdleLocked()
		m.cond.Broadcast()
	}
	m.mu.Unlock()
	m.retryWG.Wait()
	m.wg.Wait()
}
