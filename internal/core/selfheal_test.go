package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"spaceodyssey/internal/engine"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/octree"
	"spaceodyssey/internal/simdisk"
)

// healConfig is asyncConfig tightened for fast self-healing tests.
func healConfig(workers, quarantineAfter int) Config {
	cfg := asyncConfig(workers)
	cfg.QuarantineAfter = quarantineAfter
	cfg.MaintenanceRetryBackoff = time.Millisecond
	return cfg
}

// quiesceTimeout fails the test rather than hanging when the pipeline never
// drains.
func quiesceTimeout(t *testing.T, eng *Odyssey) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := eng.Quiesce(ctx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
}

// enqueueHotWork runs a refinement-demanding query with the scheduler
// paused, so tasks are queued but none has run yet.
func enqueueHotWork(t *testing.T, eng *Odyssey, dss []object.DatasetID) {
	t.Helper()
	eng.maint.SetPaused(true)
	q := geom.Cube(geom.V(0.42, 0.42, 0.42), 0.1)
	if _, err := eng.Query(q, dss); err != nil {
		t.Fatal(err)
	}
	if eng.MaintenanceStats().Queued == 0 {
		t.Fatal("hot query enqueued no maintenance work")
	}
}

// TestMaintenanceRetryToSuccess pins the self-healing happy path: a task
// that fails on transient device faults is re-enqueued with backoff and
// eventually completes, with the retry ledgered, the failure recorded in
// the health ring, and nothing quarantined.
func TestMaintenanceRetryToSuccess(t *testing.T) {
	eng, _, dev := testSetup(t, 1, 3000, 11, healConfig(1, 5))
	defer eng.Close()
	enqueueHotWork(t, eng, []object.DatasetID{0})

	// Fault the tree file's next two platter reads: the first task execution
	// fails, its retry (and everything after) succeeds.
	treeFile := eng.Tree(0).File().ID()
	dev.SetFaultPlan(simdisk.FaultPlan{
		Seed:  3,
		Pages: []simdisk.PageFault{{File: treeFile, Page: -1, Kind: simdisk.FaultTransient, Count: 2}},
	})
	eng.maint.SetPaused(false)
	quiesceTimeout(t, eng)

	st := eng.MaintenanceStats()
	if st.Failed == 0 {
		t.Fatal("fault plan never failed a task")
	}
	if st.Retried == 0 {
		t.Fatal("failed task was not retried")
	}
	if st.Completed == 0 {
		t.Fatal("no task completed despite retries")
	}
	if st.Quarantined != 0 {
		t.Fatalf("transient blip quarantined %d units", st.Quarantined)
	}
	// Ledger balances at idle: every queued task completed or failed.
	if st.Queued != st.Completed+st.Failed+st.Dropped {
		t.Fatalf("ledger unbalanced: queued %d != completed %d + failed %d + dropped %d",
			st.Queued, st.Completed, st.Failed, st.Dropped)
	}
	h := eng.MaintenanceHealth()
	if len(h.Failures) == 0 {
		t.Fatal("health ring recorded no failures")
	}
	var sawRetry bool
	for _, f := range h.Failures {
		if f.Retried {
			sawRetry = true
			if !errors.Is(f.Err, simdisk.ErrTransient) {
				t.Fatalf("retried failure lost classification: %v", f.Err)
			}
		}
	}
	if !sawRetry {
		t.Fatal("no ring entry marked Retried")
	}
	if len(h.Quarantined) != 0 {
		t.Fatalf("quarantine list not empty: %+v", h.Quarantined)
	}
	// Compatibility accessor returns the latest ring entry.
	if err := eng.MaintenanceErr(); !errors.Is(err, simdisk.ErrTransient) {
		t.Fatalf("MaintenanceErr = %v, want latest transient fault", err)
	}
	if h.Failures[len(h.Failures)-1].Err != eng.MaintenanceErr() {
		t.Fatal("MaintenanceErr is not the ring's latest entry")
	}
}

// TestMaintenanceQuarantine pins the poisoned-cell path: a unit that keeps
// failing is quarantined after QuarantineAfter consecutive failures, stops
// consuming workers (its enqueues are dropped), queries keep serving from
// the last published layout, and Unquarantine re-admits it.
func TestMaintenanceQuarantine(t *testing.T) {
	eng, raws, dev := testSetup(t, 1, 3000, 11, healConfig(1, 2))
	defer eng.Close()
	oracle := engine.NewNaiveScan(raws)
	enqueueHotWork(t, eng, []object.DatasetID{0})

	// Every tree-file read fails, forever: each queued refinement fails,
	// retries, fails again and lands in quarantine — Quiesce must still
	// return because quarantine bounds every retry chain.
	treeFile := eng.Tree(0).File().ID()
	dev.SetFaultPlan(simdisk.FaultPlan{
		Seed:  4,
		Pages: []simdisk.PageFault{{File: treeFile, Page: -1, Kind: simdisk.FaultTransient}},
	})
	eng.maint.SetPaused(false)
	quiesceTimeout(t, eng)

	st := eng.MaintenanceStats()
	if st.Quarantined == 0 {
		t.Fatal("persistent failures never quarantined")
	}
	h := eng.MaintenanceHealth()
	if len(h.Quarantined) == 0 {
		t.Fatal("health reports no quarantined units")
	}
	for _, q := range h.Quarantined {
		if q.Kind == "refine" && q.Failures < 2 {
			t.Fatalf("unit quarantined after %d failures, want >= QuarantineAfter", q.Failures)
		}
	}
	if st.Queued != st.Completed+st.Failed+st.Dropped {
		t.Fatalf("ledger unbalanced: queued %d != completed %d + failed %d + dropped %d",
			st.Queued, st.Completed, st.Failed, st.Dropped)
	}

	// A quarantined cell stops consuming workers: re-demanding the same
	// region queues nothing for it.
	dev.SetFaultPlan(simdisk.FaultPlan{})
	queuedBefore := eng.MaintenanceStats().Queued
	quarantined := h.Quarantined[0]
	if quarantined.Kind != "refine" {
		t.Fatalf("expected refine quarantine first, got %+v", quarantined)
	}
	eng.maint.EnqueueRefine(quarantined.Dataset, []octree.Key{quarantined.Cell}, geom.Cube(geom.V(0.42, 0.42, 0.42), 0.1), 1e-3, []object.DatasetID{0})
	if got := eng.MaintenanceStats().Queued; got != queuedBefore {
		t.Fatalf("quarantined cell still accepted work: queued %d -> %d", queuedBefore, got)
	}

	// Queries keep serving from the last published layout.
	q := geom.Cube(geom.V(0.42, 0.42, 0.42), 0.1)
	got, err := eng.Query(q, []object.DatasetID{0})
	if err != nil {
		t.Fatalf("query against quarantined layout failed: %v", err)
	}
	want, err := oracle.Query(q, []object.DatasetID{0})
	if err != nil {
		t.Fatal(err)
	}
	if !engine.SameObjects(got, want) {
		t.Fatalf("degraded serving wrong: %d vs %d objects", len(got), len(want))
	}

	// Unquarantine re-admits the unit.
	if !eng.Unquarantine(quarantined) {
		t.Fatal("Unquarantine found nothing")
	}
	if eng.Unquarantine(quarantined) {
		t.Fatal("Unquarantine not idempotent")
	}
	eng.maint.EnqueueRefine(quarantined.Dataset, []octree.Key{quarantined.Cell}, q, 1e-3, []object.DatasetID{0})
	if got := eng.MaintenanceStats().Queued; got != queuedBefore+1 {
		t.Fatalf("unquarantined cell rejected work: queued %d -> %d", queuedBefore, got)
	}
	quiesceTimeout(t, eng)
}

// TestMaintenancePermanentFaultQuarantinesImmediately pins the fast path:
// a permanent device fault quarantines the unit on first failure, with no
// retries wasted.
func TestMaintenancePermanentFaultQuarantinesImmediately(t *testing.T) {
	eng, _, dev := testSetup(t, 1, 3000, 11, healConfig(1, 5))
	defer eng.Close()
	enqueueHotWork(t, eng, []object.DatasetID{0})

	treeFile := eng.Tree(0).File().ID()
	dev.SetFaultPlan(simdisk.FaultPlan{
		Seed:  5,
		Pages: []simdisk.PageFault{{File: treeFile, Page: -1, Kind: simdisk.FaultPermanent}},
	})
	eng.maint.SetPaused(false)
	quiesceTimeout(t, eng)

	st := eng.MaintenanceStats()
	if st.Quarantined == 0 {
		t.Fatal("permanent fault never quarantined")
	}
	if st.Retried != 0 {
		t.Fatalf("permanent fault was retried %d times", st.Retried)
	}
	h := eng.MaintenanceHealth()
	for _, q := range h.Quarantined {
		if !q.Permanent {
			t.Fatalf("quarantine entry not marked permanent: %+v", q)
		}
		if !errors.Is(q.LastErr, simdisk.ErrPermanent) {
			t.Fatalf("quarantine LastErr lost classification: %v", q.LastErr)
		}
	}
}
