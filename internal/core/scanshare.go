package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"spaceodyssey/internal/object"
	"spaceodyssey/internal/octree"
	"spaceodyssey/internal/simdisk"
)

// SharingStats counts the engine layer of scan sharing (Config.ShareScans).
// The device layer's counters (coalesced run reads, pages saved) live in
// simdisk.Stats; the Explorer combines both views.
type SharingStats struct {
	// AttachedScans is how many partition reads were answered by attaching
	// to another query's in-flight scan of the same (dataset, cell) at the
	// same layout epoch — walks the engine never re-ran.
	AttachedScans int64
	// SharedBuilds is how many queries waited out another query's in-flight
	// level-0 build instead of herding on the tree's exclusive lock.
	SharedBuilds int64
	// Invalidations is how many times a layout publish (refinement, merge,
	// eviction) flushed the in-flight scan registry.
	Invalidations int64
}

// scanKey identifies one in-flight partition scan.
type scanKey struct {
	ds   object.DatasetID
	cell octree.Key
}

// scanEntry is one registered in-flight partition scan. The leader fills
// objs/err before closing done; attached readers treat objs as read-only
// (the engine only ever filters from it — objects are values).
type scanEntry struct {
	epoch int64
	done  chan struct{}
	objs  []object.Object
	err   error
}

// scanRegistry is the engine layer of scan sharing: the first query to read
// a (dataset, cell) within a layout epoch registers the scan; queries
// arriving while it is in flight attach to it instead of re-walking the
// partition, provided the tree's epoch still matches. Entries live only for
// the duration of the read — this is single-flight, not a cache — and the
// registry is flushed on every layout publish, so a scan result can never
// be handed across a refinement or merge (the race-mode oracle contract).
//
// Safety: readers hold the engine's shared layout lock and the dataset's
// shared tree lock for the whole read, and every layout mutation takes one
// of those exclusively, so an in-flight entry's bytes cannot change under
// its waiters; the epoch check and publish-time flush are the cross-check
// that keeps attachment conservative.
type scanRegistry struct {
	mu       sync.Mutex
	inflight map[scanKey]*scanEntry

	attached      atomic.Int64
	sharedBuilds  atomic.Int64
	invalidations atomic.Int64
}

func newScanRegistry() *scanRegistry {
	return &scanRegistry{inflight: make(map[scanKey]*scanEntry)}
}

// Invalidate flushes every in-flight entry. Leaders still complete and
// deliver to already-attached waiters (their reads happened under shared
// locks that excluded the publisher), but no new reader attaches to a
// pre-publish scan.
func (r *scanRegistry) Invalidate() {
	r.mu.Lock()
	if len(r.inflight) > 0 {
		r.inflight = make(map[scanKey]*scanEntry)
	}
	r.mu.Unlock()
	r.invalidations.Add(1)
}

// readThrough is the single-flight read: attach to a matching in-flight
// scan, or lead one and fan its result out. read performs the actual
// partition I/O. epoch is the owning tree's current layout epoch.
func (r *scanRegistry) readThrough(ctx context.Context, key scanKey, epoch int64,
	read func(context.Context) ([]object.Object, error)) ([]object.Object, error) {
	r.mu.Lock()
	if e, ok := r.inflight[key]; ok && e.epoch == epoch {
		r.mu.Unlock()
		if err := simdisk.WaitDone(ctx, e.done); err != nil {
			return nil, err
		}
		if e.err != nil {
			// The leader failed; its outcome (cancellation, an injected
			// fault) is not ours. Read independently.
			return read(ctx)
		}
		r.attached.Add(1)
		return e.objs, nil
	} else if ok {
		// An entry from another epoch is still in flight (defensive: the
		// lock discipline should make this unobservable). Do not attach and
		// do not displace it — just read directly.
		r.mu.Unlock()
		return read(ctx)
	}
	e := &scanEntry{epoch: epoch, done: make(chan struct{})}
	r.inflight[key] = e
	r.mu.Unlock()

	e.objs, e.err = read(ctx)

	r.mu.Lock()
	if r.inflight[key] == e {
		delete(r.inflight, key)
	}
	r.mu.Unlock()
	close(e.done)
	return e.objs, e.err
}

// Stats snapshots the registry counters.
func (r *scanRegistry) Stats() SharingStats {
	return SharingStats{
		AttachedScans: r.attached.Load(),
		SharedBuilds:  r.sharedBuilds.Load(),
		Invalidations: r.invalidations.Load(),
	}
}

// shareReaderFor builds the octree.Tree.ShareReader hook routing one
// dataset's query-path partition reads through the registry.
func (o *Odyssey) shareReaderFor(ds object.DatasetID, tree *octree.Tree) func(context.Context, *octree.Partition, func(context.Context) ([]object.Object, error)) ([]object.Object, error) {
	return func(ctx context.Context, p *octree.Partition, read func(context.Context) ([]object.Object, error)) ([]object.Object, error) {
		return o.scans.readThrough(ctx, scanKey{ds: ds, cell: p.Key()}, tree.Epoch(), read)
	}
}

// bumpLayoutEpoch publishes a layout change: the global epoch advances and
// the scan registry (when sharing is on) is flushed so no new reader
// attaches to a pre-publish scan.
func (o *Odyssey) bumpLayoutEpoch() {
	o.layoutEpoch.Add(1)
	if o.scans != nil {
		o.scans.Invalidate()
	}
}

// ensureBuiltShared single-flights a dataset's level-0 first-touch build:
// one query builds under the exclusive tree lock while every concurrent
// query of the dataset waits on the build's completion channel instead of
// queueing on the lock — and then proceeds down its ordinary (shared-lock)
// read path. Returns the simulated build time this caller charged (zero for
// waiters). Only called with ShareScans on.
func (o *Odyssey) ensureBuiltShared(ctx context.Context, ds object.DatasetID,
	tree *octree.Tree, lk *sync.RWMutex) (time.Duration, error) {
	for {
		lk.RLock()
		built := tree.Built()
		lk.RUnlock()
		if built {
			return 0, nil
		}
		o.buildMu.Lock()
		if ch, ok := o.building[ds]; ok {
			o.buildMu.Unlock()
			o.scans.sharedBuilds.Add(1)
			if err := simdisk.WaitDone(ctx, ch); err != nil {
				return 0, err
			}
			continue // the build may have failed; re-check and maybe lead
		}
		ch := make(chan struct{})
		o.building[ds] = ch
		o.buildMu.Unlock()

		lk.Lock()
		t0 := o.dev.Clock()
		err := tree.EnsureBuiltCtx(ctx)
		dt := o.dev.Clock() - t0
		if err == nil {
			o.bumpLayoutEpoch()
		}
		lk.Unlock()

		o.buildMu.Lock()
		delete(o.building, ds)
		o.buildMu.Unlock()
		close(ch)
		return dt, err
	}
}
