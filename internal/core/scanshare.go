package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"spaceodyssey/internal/object"
	"spaceodyssey/internal/octree"
	"spaceodyssey/internal/simdisk"
)

// SharingStats counts the engine layer of scan sharing (Config.ShareScans).
// The device layer's counters (coalesced run reads, pages saved) live in
// simdisk.Stats; the Explorer combines both views.
type SharingStats struct {
	// AttachedScans is how many partition reads were answered by attaching
	// to another query's in-flight scan of the same (dataset, cell) at the
	// same layout epoch — walks the engine never re-ran.
	AttachedScans int64
	// SharedBuilds is how many queries waited out another query's in-flight
	// level-0 build instead of herding on the tree's exclusive lock.
	SharedBuilds int64
	// Invalidations is how many times a layout publish (refinement, merge,
	// eviction) actually flushed in-flight entries from the scan registry.
	// Publishes that found the registry empty are not counted — the field
	// measures flushes of real in-flight work, not publish frequency.
	Invalidations int64
}

// scanKey identifies one in-flight partition scan.
type scanKey struct {
	ds   object.DatasetID
	cell octree.Key
}

// scanEntry is one registered in-flight partition scan. The leader fills
// objs/err before closing done; attached readers treat objs as read-only
// (the engine only ever filters from it — objects are values).
type scanEntry struct {
	epoch int64
	done  chan struct{}
	objs  []object.Object
	err   error
}

// scanRegistry is the engine layer of scan sharing: the first query to read
// a (dataset, cell) within a layout epoch registers the scan; queries
// arriving while it is in flight attach to it instead of re-walking the
// partition, provided the tree's epoch still matches. Entries live only for
// the duration of the read — this is single-flight, not a cache — and the
// registry is flushed on every layout publish, so a scan result can never
// be handed across a refinement or merge (the race-mode oracle contract).
//
// Safety: readers hold the engine's shared layout lock and the dataset's
// shared tree lock for the whole read, and every layout mutation takes one
// of those exclusively, so an in-flight entry's bytes cannot change under
// its waiters; the epoch check and publish-time flush are the cross-check
// that keeps attachment conservative.
type scanRegistry struct {
	mu       sync.Mutex
	inflight map[scanKey]*scanEntry

	attached      atomic.Int64
	sharedBuilds  atomic.Int64
	invalidations atomic.Int64
}

func newScanRegistry() *scanRegistry {
	return &scanRegistry{inflight: make(map[scanKey]*scanEntry)}
}

// Invalidate flushes every in-flight entry. Leaders still complete and
// deliver to already-attached waiters (their reads happened under shared
// locks that excluded the publisher), but no new reader attaches to a
// pre-publish scan.
func (r *scanRegistry) Invalidate() {
	r.mu.Lock()
	flushed := len(r.inflight) > 0
	if flushed {
		r.inflight = make(map[scanKey]*scanEntry)
	}
	r.mu.Unlock()
	// Count only flushes that dropped real in-flight work: a publish over
	// an empty registry is a no-op, and counting it would make the
	// Invalidations ledger track publish frequency instead of flushes.
	if flushed {
		r.invalidations.Add(1)
	}
}

// readThrough is the single-flight read: attach to a matching in-flight
// scan, or lead one and fan its result out. read performs the actual
// partition I/O. epoch is the owning tree's current layout epoch.
//
// When a leader's read fails (cancellation, an injected fault), its waiters
// do not each fall back to an independent read — that would be a thundering
// herd of N redundant scans, the exact failure mode this registry exists to
// prevent. Instead every waiter re-enters the single-flight path: a failed
// leader deregisters its entry before publishing, so the first waiter back
// through the registry lock becomes the one new leader and the rest attach
// to it. failed remembers the entry whose error we just observed: if it is
// somehow still registered (it cannot re-succeed), it is displaced rather
// than re-attached, guaranteeing progress.
func (r *scanRegistry) readThrough(ctx context.Context, key scanKey, epoch int64,
	read func(context.Context) ([]object.Object, error)) ([]object.Object, error) {
	var failed *scanEntry
	for {
		r.mu.Lock()
		if e, ok := r.inflight[key]; ok && e.epoch == epoch && e != failed {
			r.mu.Unlock()
			if err := simdisk.WaitDone(ctx, e.done); err != nil {
				return nil, err
			}
			if e.err != nil {
				// The leader failed; its outcome is not ours. Re-enter the
				// single-flight path: exactly one waiter retries the read.
				failed = e
				continue
			}
			r.attached.Add(1)
			return e.objs, nil
		} else if ok && e.epoch != epoch {
			// An entry from another epoch is still in flight (defensive:
			// the lock discipline should make this unobservable). Do not
			// attach and do not displace it — just read directly.
			r.mu.Unlock()
			return read(ctx)
		}
		// No attachable entry (or only the failed one we just waited out,
		// which is displaced): lead the read ourselves.
		e := &scanEntry{epoch: epoch, done: make(chan struct{})}
		r.inflight[key] = e
		r.mu.Unlock()

		e.objs, e.err = read(ctx)

		// Deregister before publishing: a waiter that observes the error
		// must find the entry gone (or replaced) when it loops back, so the
		// retry single-flights instead of re-attaching to a dead scan.
		r.mu.Lock()
		if r.inflight[key] == e {
			delete(r.inflight, key)
		}
		r.mu.Unlock()
		close(e.done)
		return e.objs, e.err
	}
}

// Stats snapshots the registry counters.
func (r *scanRegistry) Stats() SharingStats {
	return SharingStats{
		AttachedScans: r.attached.Load(),
		SharedBuilds:  r.sharedBuilds.Load(),
		Invalidations: r.invalidations.Load(),
	}
}

// shareReaderFor builds the octree.Tree.ShareReader hook routing one
// dataset's query-path partition reads through the serving stack: the
// result cache first (an exact (dataset, cell, epoch) hit costs nothing),
// then the in-flight scan registry (sharing on), then the actual device
// read — whose completed result is retained in the cache for queries that
// arrive after the scan finished. The partition carries the region metadata
// (cell key and box) the cache keys exact and containment answering on.
func (o *Odyssey) shareReaderFor(ds object.DatasetID, tree *octree.Tree) func(context.Context, *octree.Partition, func(context.Context) ([]object.Object, error)) ([]object.Object, error) {
	return func(ctx context.Context, p *octree.Partition, read func(context.Context) ([]object.Object, error)) ([]object.Object, error) {
		var epoch int64
		if o.rcache != nil {
			// The epoch is loaded before the read: a layout publish racing
			// the read flushes the cache and leaves the later insert dead on
			// arrival (its stored epoch can never match a future lookup) —
			// conservative, never wrong.
			epoch = o.layoutEpoch.Load()
			if objs, ok := o.rcache.Lookup(ds, p.Key(), epoch); ok {
				return objs, nil
			}
			inner := read
			read = func(ctx context.Context) ([]object.Object, error) {
				// Only the goroutine performing the device read marks its
				// own query's scope; queries attached to this scan stay
				// clean (they charged no device read).
				missCacheScope(ctx)
				return inner(ctx)
			}
		}
		var objs []object.Object
		var err error
		if o.scans != nil {
			objs, err = o.scans.readThrough(ctx, scanKey{ds: ds, cell: p.Key()}, tree.Epoch(), read)
		} else {
			objs, err = read(ctx)
		}
		if err == nil && o.rcache != nil {
			o.rcache.Insert(ds, p.Key(), epoch, p.Box(), objs)
		}
		return objs, err
	}
}

// bumpLayoutEpoch publishes a layout change: the global epoch advances, the
// scan registry (when sharing is on) is flushed so no new reader attaches
// to a pre-publish scan, and the result cache (when caching is on) is
// flushed so no post-publish query is answered from a pre-publish scan.
func (o *Odyssey) bumpLayoutEpoch() {
	o.layoutEpoch.Add(1)
	if o.scans != nil {
		o.scans.Invalidate()
	}
	if o.rcache != nil {
		o.rcache.Invalidate()
	}
}

// ensureBuiltShared single-flights a dataset's level-0 first-touch build:
// one query builds under the exclusive tree lock while every concurrent
// query of the dataset waits on the build's completion channel instead of
// queueing on the lock — and then proceeds down its ordinary (shared-lock)
// read path. Returns the simulated build time this caller charged (zero for
// waiters). Only called with ShareScans on.
func (o *Odyssey) ensureBuiltShared(ctx context.Context, ds object.DatasetID,
	tree *octree.Tree, lk *sync.RWMutex) (time.Duration, error) {
	for {
		lk.RLock()
		built := tree.Built()
		lk.RUnlock()
		if built {
			return 0, nil
		}
		o.buildMu.Lock()
		if ch, ok := o.building[ds]; ok {
			o.buildMu.Unlock()
			o.scans.sharedBuilds.Add(1)
			if err := simdisk.WaitDone(ctx, ch); err != nil {
				return 0, err
			}
			continue // the build may have failed; re-check and maybe lead
		}
		ch := make(chan struct{})
		o.building[ds] = ch
		o.buildMu.Unlock()

		lk.Lock()
		clock := simdisk.PhaseClock(ctx, o.dev)
		t0 := clock()
		err := tree.EnsureBuiltCtx(ctx)
		dt := clock() - t0
		if err == nil {
			o.bumpLayoutEpoch()
		}
		lk.Unlock()

		o.buildMu.Lock()
		delete(o.building, ds)
		o.buildMu.Unlock()
		close(ch)
		return dt, err
	}
}
