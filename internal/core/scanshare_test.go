package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spaceodyssey/internal/engine"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/octree"
)

// shareConfig returns the default configuration with scan sharing on.
func testKeyAt(level uint8, x, y, z uint32) octree.Key {
	return octree.Key{Level: level, X: x, Y: y, Z: z}
}

func shareConfig() Config {
	cfg := DefaultConfig()
	cfg.ShareScans = true
	return cfg
}

// TestShareScansOracleStorm fires concurrent mixed queries at a sharing
// engine while it builds, refines and merges, checking every result against
// the oracle — shared scans must change I/O, never answers.
func TestShareScansOracleStorm(t *testing.T) {
	eng, raws, _ := testSetup(t, 3, 2500, 17, shareConfig())
	oracle := engine.NewNaiveScan(raws)
	hot := []geom.Box{
		geom.Cube(geom.V(0.4, 0.45, 0.5), 0.08),
		geom.Cube(geom.V(0.55, 0.5, 0.45), 0.06),
	}
	combos := [][]object.DatasetID{{0, 1, 2}, {0, 1}, {2}, {1, 2}}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				q := hot[(g+i)%len(hot)]
				dss := combos[(g*5+i)%len(combos)]
				got, err := eng.Query(q, dss)
				if err != nil {
					errc <- err
					return
				}
				want, err := oracle.Query(q, dss)
				if err != nil {
					errc <- err
					return
				}
				if !engine.SameObjects(got, want) {
					errc <- errDiverged(g, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// The hot identical queries must have found sharing opportunities at
	// one layer or another; with a zero-cost instant device attachment is
	// timing-dependent, so only the single-flight build is guaranteed (8
	// goroutines, 3 datasets, exactly 3 builds must have run).
	if m := eng.Metrics(); m.TreesBuilt != 3 {
		t.Fatalf("TreesBuilt = %d, want 3", m.TreesBuilt)
	}
}

type divergedErr struct{ g, i int }

func (e divergedErr) Error() string {
	return "shared-scan query diverged from oracle"
}

func errDiverged(g, i int) error { return divergedErr{g, i} }

// TestShareScansSingleFlightBuild pins the first-touch contract: many
// concurrent queries of one cold dataset trigger exactly one level-0 build,
// and the waiters are counted in SharedBuilds.
func TestShareScansSingleFlightBuild(t *testing.T) {
	eng, _, dev := testSetup(t, 2, 3000, 23, shareConfig())
	// A real cost model makes the build take simulated time; the real-time
	// emulation stretches it into a wall-clock window concurrent queries
	// land in.
	_ = dev
	q := geom.Cube(geom.V(0.5, 0.5, 0.5), 0.05)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Query(q, []object.DatasetID{0, 1}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	m := eng.Metrics()
	if m.TreesBuilt != 2 {
		t.Fatalf("TreesBuilt = %d, want 2 (single-flight per dataset)", m.TreesBuilt)
	}
	// Level-0 build time must still be attributed (by the builder).
	if m.Phases.LevelZeroBuild < 0 {
		t.Fatalf("negative build time %v", m.Phases.LevelZeroBuild)
	}
}

// TestScanRegistryAttachAndInvalidate drives the registry white-box with a
// hand-registered in-flight entry, so every interleaving is deterministic:
// a same-epoch reader attaches, a cross-epoch reader reads independently,
// and Invalidate flushes the entry so nobody attaches afterwards.
func TestScanRegistryAttachAndInvalidate(t *testing.T) {
	r := newScanRegistry()
	key := scanKey{ds: 1, cell: testKeyAt(1, 2, 3, 1)}
	want := []object.Object{{ID: 7, Dataset: 1}}

	// Register an entry as a leader mid-flight would.
	e := &scanEntry{epoch: 5, done: make(chan struct{})}
	r.mu.Lock()
	r.inflight[key] = e
	r.mu.Unlock()

	// A cross-epoch reader must not attach — it reads independently even
	// with the entry present.
	ownRead := false
	if _, err := r.readThrough(nil, key, 6, func(context.Context) ([]object.Object, error) {
		ownRead = true
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !ownRead {
		t.Fatal("cross-epoch reader did not perform its own read")
	}

	// Complete the leader's scan (fill, then close — the publish order the
	// real leader uses) and attach a same-epoch reader.
	e.objs = want
	close(e.done)
	got, err := r.readThrough(nil, key, 5, func(context.Context) ([]object.Object, error) {
		t.Error("attacher executed its own read despite a matching in-flight scan")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != want[0].ID {
		t.Fatalf("attached read returned %v, want the leader's objects", got)
	}
	if st := r.Stats(); st.AttachedScans != 1 {
		t.Fatalf("AttachedScans = %d, want 1", st.AttachedScans)
	}

	// Invalidate flushes the registry: the next same-epoch reader performs
	// its own read even though the old entry matched its epoch.
	r.Invalidate()
	own2 := false
	if _, err := r.readThrough(nil, key, 5, func(context.Context) ([]object.Object, error) {
		own2 = true
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !own2 {
		t.Fatal("reader attached to an invalidated in-flight scan")
	}
	if st := r.Stats(); st.Invalidations != 1 {
		t.Fatalf("Invalidations = %d, want 1", st.Invalidations)
	}

	// A failed leader's outcome is not inherited: attachers fall back to
	// their own read.
	e2 := &scanEntry{epoch: 9, done: make(chan struct{})}
	e2.err = context.DeadlineExceeded
	close(e2.done)
	r.mu.Lock()
	r.inflight[key] = e2
	r.mu.Unlock()
	fellBack := false
	if _, err := r.readThrough(nil, key, 9, func(context.Context) ([]object.Object, error) {
		fellBack = true
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !fellBack {
		t.Fatal("attacher inherited the failed leader's outcome")
	}
}

// TestScanRegistryFailedLeaderSingleRetry is the herd-regression contract:
// when a leader's read fails, its waiters must re-enter the single-flight
// path so exactly one of them is charged the retry read — not one
// independent read per waiter, the thundering herd the registry exists to
// prevent. A doomed leader is registered by hand, a herd parks on it, and
// it is failed the way a real leader fails (deregister, then publish); the
// retry leader's read is gated so the rest of the herd attaches to it.
func TestScanRegistryFailedLeaderSingleRetry(t *testing.T) {
	r := newScanRegistry()
	key := scanKey{ds: 2, cell: testKeyAt(1, 1, 1, 0)}
	want := []object.Object{{ID: 42, Dataset: 2}}

	doomed := &scanEntry{epoch: 3, done: make(chan struct{})}
	r.mu.Lock()
	r.inflight[key] = doomed
	r.mu.Unlock()

	var reads atomic.Int64
	gate := make(chan struct{})
	read := func(context.Context) ([]object.Object, error) {
		reads.Add(1)
		<-gate
		return want, nil
	}
	const waiters = 8
	results := make([][]object.Object, waiters)
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for g := 0; g < waiters; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[g], errs[g] = r.readThrough(nil, key, 3, read)
		}()
	}

	// Fail the leader in the order a real one publishes: deregister under
	// the lock, then close done. Every parked waiter wakes and loops back;
	// mutex serialization makes exactly one the retry leader. (A goroutine
	// that never parked on the doomed entry attaches to the retry leader's
	// registration instead — same coalescing, same count.)
	doomed.err = context.DeadlineExceeded
	r.mu.Lock()
	delete(r.inflight, key)
	r.mu.Unlock()
	close(doomed.done)

	// Hold the retry leader's read open until the rest of the herd has had
	// time to loop back and attach, then release it.
	deadline := time.Now().Add(5 * time.Second)
	for reads.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no waiter retried the failed leader's read")
		}
		time.Sleep(100 * time.Microsecond)
	}
	time.Sleep(100 * time.Millisecond)
	close(gate)
	wg.Wait()

	for g := 0; g < waiters; g++ {
		if errs[g] != nil {
			t.Fatalf("waiter %d inherited the dead leader's outcome: %v", g, errs[g])
		}
		if len(results[g]) != 1 || results[g][0].ID != want[0].ID {
			t.Fatalf("waiter %d got %v, want the retry leader's objects", g, results[g])
		}
	}
	if n := reads.Load(); n != 1 {
		t.Fatalf("failed leader triggered %d retry reads, want exactly 1 (thundering herd)", n)
	}
	if st := r.Stats(); st.AttachedScans != waiters-1 {
		t.Fatalf("AttachedScans = %d, want %d (every non-leader attached the retry)",
			st.AttachedScans, waiters-1)
	}
}

// TestMaintenancePriorityHottestFirst pins the scheduler's priority rule:
// with tasks of different access counts queued, pickLocked pops the hottest
// region first, and heat ties break FIFO. The maintainer is constructed
// without workers so the test owns the queue.
func TestMaintenancePriorityHottestFirst(t *testing.T) {
	m := &maintainer{
		refineQ:       make(map[object.DatasetID]*heatHeap[refineTask]),
		refinePending: make(map[object.DatasetID]map[octree.Key]*heatItem[refineTask]),
		activeRefine:  make(map[object.DatasetID]bool),
		mergePending:  make(map[ComboKey]*heatItem[mergeTask]),
		activeMerge:   make(map[ComboKey]bool),
	}
	m.cond = sync.NewCond(&m.mu)

	q := geom.Cube(geom.V(0.5, 0.5, 0.5), 0.1)
	cold := testKeyAt(1, 0, 0, 0)
	warm := testKeyAt(1, 1, 0, 0)
	hotK := testKeyAt(1, 2, 0, 0)
	members := []object.DatasetID{0}
	m.EnqueueRefine(0, []octree.Key{cold, warm, hotK}, q, 0.001, members)
	// Heat the tasks: warm gets one duplicate demand, hot gets three.
	m.EnqueueRefine(0, []octree.Key{warm}, q, 0.001, members)
	for i := 0; i < 3; i++ {
		m.EnqueueRefine(0, []octree.Key{hotK}, q, 0.001, members)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	pop := func() octree.Key {
		task, ok := m.pickLocked()
		if !ok {
			t.Fatal("queue empty")
		}
		if task.isMerge {
			t.Fatal("merge popped before refinements drained")
		}
		// One writer per dataset: release the claim so the next pop works.
		delete(m.activeRefine, task.ds)
		return task.refine.key
	}
	if k := pop(); k != hotK {
		t.Fatalf("first pop = %v, want the hottest %v", k, hotK)
	}
	if k := pop(); k != warm {
		t.Fatalf("second pop = %v, want %v", k, warm)
	}
	if k := pop(); k != cold {
		t.Fatalf("third pop = %v, want %v", k, cold)
	}

	// Merge heat: two combinations, the second demanded twice — it runs
	// first despite arriving later.
	a := KeyOf([]object.DatasetID{0, 1, 2})
	b := KeyOf([]object.DatasetID{1, 2, 3})
	m.mu.Unlock()
	m.EnqueueMerge(a, []object.DatasetID{0, 1, 2})
	m.EnqueueMerge(b, []object.DatasetID{1, 2, 3})
	m.EnqueueMerge(b, []object.DatasetID{1, 2, 3})
	m.mu.Lock()
	task, ok := m.pickLocked()
	if !ok || !task.isMerge || task.merge.key != b {
		t.Fatalf("hot merge not popped first: %+v ok=%v", task, ok)
	}
	task, ok = m.pickLocked()
	if !ok || !task.isMerge || task.merge.key != a {
		t.Fatalf("cold merge not popped second: %+v ok=%v", task, ok)
	}
}
