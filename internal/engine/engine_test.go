package engine

import (
	"math/rand"
	"testing"

	"spaceodyssey/internal/datagen"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/rawfile"
	"spaceodyssey/internal/simdisk"
)

func mkRaws(t *testing.T, n, perDS int) []*rawfile.Raw {
	t.Helper()
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	dss := datagen.GenerateDatasets(datagen.Config{Seed: 1, NumObjects: perDS}, n)
	raws := make([]*rawfile.Raw, n)
	for i, objs := range dss {
		raw, err := rawfile.Write(dev, "ds", object.DatasetID(i), objs)
		if err != nil {
			t.Fatal(err)
		}
		raws[i] = raw
	}
	return raws
}

func TestNaiveScanBasics(t *testing.T) {
	raws := mkRaws(t, 2, 500)
	e := NewNaiveScan(raws)
	if e.Name() != "NaiveScan" {
		t.Fatalf("Name = %q", e.Name())
	}
	if err := e.Build(); err != nil {
		t.Fatal("Build must be a no-op")
	}
	all, err := e.Query(geom.UnitBox().Expand(geom.Splat(1)), []object.DatasetID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1000 {
		t.Fatalf("full query returned %d", len(all))
	}
	// Unknown datasets are silently skipped (no raw file registered).
	some, err := e.Query(geom.UnitBox(), []object.DatasetID{0, 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range some {
		if o.Dataset != 0 {
			t.Fatalf("object from dataset %d returned", o.Dataset)
		}
	}
}

func TestNaiveScanFiltersByRange(t *testing.T) {
	raws := mkRaws(t, 1, 2000)
	e := NewNaiveScan(raws)
	q := geom.Cube(geom.V(0.5, 0.5, 0.5), 0.2)
	got, err := e.Query(q, []object.DatasetID{0})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range got {
		if !o.Intersects(q) {
			t.Fatalf("object %d does not intersect query", o.ID)
		}
	}
	// Cross-check the count against a direct scan.
	want := 0
	if err := raws[0].ScanRange(q, func(object.Object) error {
		want++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != want {
		t.Fatalf("%d objects, want %d", len(got), want)
	}
}

func TestSortObjects(t *testing.T) {
	objs := []object.Object{
		{ID: 2, Dataset: 1}, {ID: 1, Dataset: 0}, {ID: 1, Dataset: 1}, {ID: 3, Dataset: 0},
	}
	SortObjects(objs)
	want := []struct {
		ds object.DatasetID
		id uint64
	}{{0, 1}, {0, 3}, {1, 1}, {1, 2}}
	for i, w := range want {
		if objs[i].Dataset != w.ds || objs[i].ID != w.id {
			t.Fatalf("position %d: got (%d,%d)", i, objs[i].Dataset, objs[i].ID)
		}
	}
}

func TestSameObjects(t *testing.T) {
	a := []object.Object{{ID: 1}, {ID: 2, Dataset: 3}}
	b := []object.Object{{ID: 2, Dataset: 3}, {ID: 1}}
	if !SameObjects(append([]object.Object(nil), a...), append([]object.Object(nil), b...)) {
		t.Fatal("equal sets reported different")
	}
	if SameObjects(a, a[:1]) {
		t.Fatal("different lengths reported same")
	}
	c := []object.Object{{ID: 1}, {ID: 9}}
	if SameObjects(append([]object.Object(nil), a...), c) {
		t.Fatal("different sets reported same")
	}
}

// Property: SameObjects is order-insensitive for random permutations.
func TestSameObjectsPermutationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	base := make([]object.Object, 50)
	for i := range base {
		base[i] = object.Object{ID: uint64(i), Dataset: object.DatasetID(r.Intn(3))}
	}
	for trial := 0; trial < 50; trial++ {
		perm := append([]object.Object(nil), base...)
		r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if !SameObjects(append([]object.Object(nil), base...), perm) {
			t.Fatal("permutation reported different")
		}
	}
}
