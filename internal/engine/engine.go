// Package engine defines the interface every competing approach implements
// — Space Odyssey and the baselines (FLAT, R-tree, Grid, naive scans) — so
// the experiment harness and the equivalence tests can drive them
// uniformly.
package engine

import (
	"sort"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/rawfile"
)

// Engine executes multi-dataset range queries.
//
// Build performs all upfront indexing; adaptive approaches implement it as a
// no-op and amortize indexing into Query. Query returns every object from
// the requested datasets whose box intersects q, in unspecified order.
type Engine interface {
	Name() string
	Build() error
	Query(q geom.Box, datasets []object.DatasetID) ([]object.Object, error)
}

// NaiveScan answers queries by fully scanning the raw files. It is the
// slowest correct engine and doubles as the oracle for equivalence tests.
type NaiveScan struct {
	raws map[object.DatasetID]*rawfile.Raw
}

// NewNaiveScan builds the oracle over the given raw files.
func NewNaiveScan(raws []*rawfile.Raw) *NaiveScan {
	m := make(map[object.DatasetID]*rawfile.Raw, len(raws))
	for _, r := range raws {
		m[r.Dataset()] = r
	}
	return &NaiveScan{raws: m}
}

// Name implements Engine.
func (e *NaiveScan) Name() string { return "NaiveScan" }

// Build implements Engine; raw files need no preparation.
func (e *NaiveScan) Build() error { return nil }

// Query implements Engine by scanning each requested dataset end to end.
func (e *NaiveScan) Query(q geom.Box, datasets []object.DatasetID) ([]object.Object, error) {
	var out []object.Object
	for _, ds := range datasets {
		raw, ok := e.raws[ds]
		if !ok {
			continue
		}
		err := raw.ScanRange(q, func(o object.Object) error {
			out = append(out, o)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SortObjects orders objects by (dataset, id); tests use it to compare
// result sets independent of engine-specific ordering.
func SortObjects(objs []object.Object) {
	sort.Slice(objs, func(i, j int) bool {
		if objs[i].Dataset != objs[j].Dataset {
			return objs[i].Dataset < objs[j].Dataset
		}
		return objs[i].ID < objs[j].ID
	})
}

// SameObjects reports whether a and b contain exactly the same objects,
// ignoring order. It sorts both slices in place.
func SameObjects(a, b []object.Object) bool {
	if len(a) != len(b) {
		return false
	}
	SortObjects(a)
	SortObjects(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
