package flat

import (
	"math/rand"
	"testing"

	"spaceodyssey/internal/datagen"
	"spaceodyssey/internal/engine"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/rawfile"
	"spaceodyssey/internal/simdisk"
)

func buildTestIndex(t *testing.T, n int, seed int64, cfg Config) (*Index, []object.Object, *simdisk.Device) {
	t.Helper()
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	objs := datagen.Generate(datagen.Config{Seed: seed, NumObjects: n, Clusters: 6}, 1)
	cp := append([]object.Object(nil), objs...)
	idx, err := BuildIndex(dev, "f", cp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return idx, objs, dev
}

func TestBuildBasics(t *testing.T) {
	idx, _, _ := buildTestIndex(t, 4000, 1, DefaultConfig())
	if idx.NumObjects() != 4000 {
		t.Fatalf("NumObjects = %d", idx.NumObjects())
	}
	want := (4000 + object.PageCapacity - 1) / object.PageCapacity
	if idx.NumLeaves() != want {
		t.Fatalf("NumLeaves = %d, want %d", idx.NumLeaves(), want)
	}
}

func TestQueryMatchesNaive(t *testing.T) {
	idx, objs, _ := buildTestIndex(t, 6000, 2, DefaultConfig())
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		side := 0.01 + r.Float64()*0.25
		q, ok := geom.Cube(geom.V(r.Float64(), r.Float64(), r.Float64()), side).Clip(geom.UnitBox())
		if !ok {
			continue
		}
		got, err := idx.Query(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		var want []object.Object
		for _, o := range objs {
			if o.Intersects(q) {
				want = append(want, o)
			}
		}
		if !engine.SameObjects(got, want) {
			t.Fatalf("trial %d: flat %d objects, naive %d (misses=%d)",
				trial, len(got), len(want), idx.CrawlMisses)
		}
	}
}

func TestCrawlFindsAlmostEverything(t *testing.T) {
	// The neighbor graph should serve nearly all queries without the
	// paranoid rescue; a high miss count means the crawl is broken and the
	// performance profile no longer resembles FLAT.
	idx, _, _ := buildTestIndex(t, 8000, 4, DefaultConfig())
	r := rand.New(rand.NewSource(5))
	queries := 0
	for trial := 0; trial < 100; trial++ {
		q, ok := geom.Cube(geom.V(r.Float64(), r.Float64(), r.Float64()), 0.05).Clip(geom.UnitBox())
		if !ok {
			continue
		}
		queries++
		if _, err := idx.Query(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	if idx.CrawlMisses > queries/2 {
		t.Fatalf("crawl missed %d leaves over %d queries", idx.CrawlMisses, queries)
	}
}

func TestEmptyRegionQueryIsCheap(t *testing.T) {
	// Data confined to a corner; queries elsewhere must return nothing and
	// read almost nothing (the seed probe proves emptiness).
	dev := simdisk.NewDevice(simdisk.CostModel{Seek: 1000, Transfer: 1}, 0)
	objs := datagen.Generate(datagen.Config{
		Seed: 6, NumObjects: 3000,
		Bounds:         geom.NewBox(geom.V(0, 0, 0), geom.V(0.2, 0.2, 0.2)),
		BackgroundFrac: -1,
	}, 1)
	idx, err := BuildIndex(dev, "f", objs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev.DropCaches()
	dev.ResetClock()
	dev.ResetStats()
	got, err := idx.Query(geom.Cube(geom.V(0.8, 0.8, 0.8), 0.05), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("found %d objects in empty space", len(got))
	}
	st := dev.Stats()
	if st.PageReads > 5 {
		t.Fatalf("empty-region query read %d pages", st.PageReads)
	}
}

func TestEmptyIndex(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	idx, err := BuildIndex(dev, "e", nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := idx.Query(geom.UnitBox(), nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty index query: %v %d", err, len(got))
	}
}

func TestConfigValidation(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	bad := []Config{
		{LeafCapacity: -1},
		{LeafCapacity: object.PageCapacity + 1},
		{MaxNeighbors: 1},
		{SortPasses: -2},
	}
	for i, cfg := range bad {
		if _, err := BuildIndex(dev, "x", nil, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestAdjacencyRoundTrip(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	lists := [][]uint32{
		{1},
		{0, 2},
		{}, // empty list must round-trip too
	}
	s, err := buildAdjacency(dev, "adj", lists)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range lists {
		got, err := s.neighbors(i)
		if err != nil {
			t.Fatalf("leaf %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("leaf %d: %d neighbors, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("leaf %d neighbor %d mismatch", i, j)
			}
		}
	}
	if _, err := s.neighbors(99); err == nil {
		t.Fatal("out-of-range leaf accepted")
	}
}

func TestAdjacencyPacksManyRecords(t *testing.T) {
	// Enough records to span multiple pages: each record is 4+n*4 bytes,
	// so 5000 records of 150 neighbors each need several pages.
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	n := 5000
	lists := make([][]uint32, n)
	for i := range lists {
		for j := 0; j < 150; j++ {
			lists[i] = append(lists[i], uint32((i+j+1)%n))
		}
	}
	s, err := buildAdjacency(dev, "adj", lists)
	if err != nil {
		t.Fatal(err)
	}
	pages, err := dev.NumPages(s.file)
	if err != nil {
		t.Fatal(err)
	}
	if pages < 2 {
		t.Fatalf("expected multiple adjacency pages, got %d", pages)
	}
	for _, i := range []int{0, 2500, 4999} {
		got, err := s.neighbors(i)
		if err != nil || len(got) != 150 {
			t.Fatalf("leaf %d: %v, %d neighbors", i, err, len(got))
		}
	}
}

func TestAdjacencyRejectsOversizedRecord(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	huge := make([]uint32, simdisk.PageSize) // record > one page
	if _, err := buildAdjacency(dev, "adj", [][]uint32{huge}); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestStrategiesMatchOracle(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	dss := datagen.GenerateDatasets(datagen.Config{Seed: 7, NumObjects: 1500}, 4)
	raws := make([]*rawfile.Raw, 4)
	for i, objs := range dss {
		raw, err := rawfile.Write(dev, "ds", object.DatasetID(i), objs)
		if err != nil {
			t.Fatal(err)
		}
		raws[i] = raw
	}
	oracle := engine.NewNaiveScan(raws)

	ain1 := NewAllInOne(dev, raws, DefaultConfig())
	ofe := NewOneForEach(dev, raws, DefaultConfig())
	if ain1.Name() != "FLAT-Ain1" || ofe.Name() != "FLAT-1fE" {
		t.Fatal("strategy names wrong")
	}
	if _, err := ain1.Query(geom.UnitBox(), nil); err == nil {
		t.Fatal("query before build succeeded")
	}
	if _, err := ofe.Query(geom.UnitBox(), nil); err == nil {
		t.Fatal("query before build succeeded")
	}
	if err := ain1.Build(); err != nil {
		t.Fatal(err)
	}
	if err := ofe.Build(); err != nil {
		t.Fatal(err)
	}
	if ain1.Index() == nil {
		t.Fatal("Index() nil after build")
	}

	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		q, ok := geom.Cube(geom.V(r.Float64(), r.Float64(), r.Float64()), 0.1).Clip(geom.UnitBox())
		if !ok {
			continue
		}
		dss := []object.DatasetID{object.DatasetID(r.Intn(4)), object.DatasetID(r.Intn(4))}
		if dss[0] == dss[1] {
			dss = dss[:1]
		}
		want, err := oracle.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		a, err := ain1.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		if !engine.SameObjects(a, append([]object.Object(nil), want...)) {
			t.Fatalf("trial %d: Ain1 mismatch (%d vs %d)", trial, len(a), len(want))
		}
		b, err := ofe.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		if !engine.SameObjects(b, want) {
			t.Fatalf("trial %d: 1fE mismatch (%d vs %d)", trial, len(b), len(want))
		}
	}
	if _, err := ofe.Query(geom.UnitBox(), []object.DatasetID{42}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestFlatQueryCheaperThanGridStyleRead(t *testing.T) {
	// Once built, FLAT must answer small queries with very few page reads —
	// the property that makes it the paper's fastest-querying baseline.
	cost := simdisk.CostModel{Seek: 1000, Transfer: 1}
	dev := simdisk.NewDevice(cost, 0)
	objs := datagen.Generate(datagen.Config{Seed: 9, NumObjects: 20000, Clusters: 6}, 1)
	idx, err := BuildIndex(dev, "f", objs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Query centered on a data cluster.
	q, ok := geom.Cube(objs[0].Center, 0.02).Clip(geom.UnitBox())
	if !ok {
		t.Fatal("query construction failed")
	}
	dev.DropCaches()
	dev.ResetStats()
	if _, err := idx.Query(q, nil); err != nil {
		t.Fatal(err)
	}
	st := dev.Stats()
	if st.PageReads > 40 {
		t.Fatalf("small query read %d pages; FLAT should touch few", st.PageReads)
	}
}
