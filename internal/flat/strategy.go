package flat

import (
	"fmt"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/rawfile"
	"spaceodyssey/internal/simdisk"
)

// readAll scans raw files into memory, charging the sequential read.
func readAll(raws []*rawfile.Raw) ([]object.Object, error) {
	total := 0
	for _, r := range raws {
		total += r.NumObjects()
	}
	objs := make([]object.Object, 0, total)
	for _, r := range raws {
		err := r.Scan(func(o object.Object) error {
			objs = append(objs, o)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return objs, nil
}

// AllInOne is the FLAT-Ain1 strategy: one FLAT index over all datasets.
type AllInOne struct {
	dev  simdisk.Storage
	raws []*rawfile.Raw
	cfg  Config
	idx  *Index
}

// NewAllInOne creates the unbuilt engine.
func NewAllInOne(dev simdisk.Storage, raws []*rawfile.Raw, cfg Config) *AllInOne {
	return &AllInOne{dev: dev, raws: raws, cfg: cfg}
}

// Name implements engine.Engine.
func (e *AllInOne) Name() string { return "FLAT-Ain1" }

// Build implements engine.Engine.
func (e *AllInOne) Build() error {
	if e.idx != nil {
		return nil
	}
	objs, err := readAll(e.raws)
	if err != nil {
		return err
	}
	idx, err := BuildIndex(e.dev, "flat-ain1", objs, e.cfg)
	if err != nil {
		return err
	}
	e.idx = idx
	return nil
}

// Query implements engine.Engine.
func (e *AllInOne) Query(q geom.Box, datasets []object.DatasetID) ([]object.Object, error) {
	if e.idx == nil {
		return nil, fmt.Errorf("flat: query before build")
	}
	filter := make(map[object.DatasetID]bool, len(datasets))
	for _, ds := range datasets {
		filter[ds] = true
	}
	return e.idx.Query(q, filter)
}

// Index exposes the built index (nil before Build).
func (e *AllInOne) Index() *Index { return e.idx }

// OneForEach is the FLAT-1fE strategy: one FLAT index per dataset.
type OneForEach struct {
	dev     simdisk.Storage
	raws    map[object.DatasetID]*rawfile.Raw
	cfg     Config
	indexes map[object.DatasetID]*Index
}

// NewOneForEach creates the unbuilt engine.
func NewOneForEach(dev simdisk.Storage, raws []*rawfile.Raw, cfg Config) *OneForEach {
	m := make(map[object.DatasetID]*rawfile.Raw, len(raws))
	for _, r := range raws {
		m[r.Dataset()] = r
	}
	return &OneForEach{dev: dev, raws: m, cfg: cfg}
}

// Name implements engine.Engine.
func (e *OneForEach) Name() string { return "FLAT-1fE" }

// Build implements engine.Engine.
func (e *OneForEach) Build() error {
	if e.indexes != nil {
		return nil
	}
	indexes := make(map[object.DatasetID]*Index, len(e.raws))
	for ds, raw := range e.raws {
		objs, err := readAll([]*rawfile.Raw{raw})
		if err != nil {
			return err
		}
		idx, err := BuildIndex(e.dev, fmt.Sprintf("flat-ds%d", ds), objs, e.cfg)
		if err != nil {
			return err
		}
		indexes[ds] = idx
	}
	e.indexes = indexes
	return nil
}

// Query implements engine.Engine.
func (e *OneForEach) Query(q geom.Box, datasets []object.DatasetID) ([]object.Object, error) {
	if e.indexes == nil {
		return nil, fmt.Errorf("flat: query before build")
	}
	var out []object.Object
	for _, ds := range datasets {
		idx, ok := e.indexes[ds]
		if !ok {
			return nil, fmt.Errorf("flat: unknown dataset %d", ds)
		}
		objs, err := idx.Query(q, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, objs...)
	}
	return out, nil
}
