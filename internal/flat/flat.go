package flat

import (
	"fmt"
	"sort"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/rtree"
	"spaceodyssey/internal/simdisk"
)

// Config tunes a FLAT index.
type Config struct {
	// LeafCapacity is the number of objects per dense leaf page (default:
	// a full object page).
	LeafCapacity int
	// MaxNeighbors caps the adjacency degree per leaf (default 24; records
	// store 4-byte ids, so even dense graphs pack tens of records per
	// adjacency page). The STR chain links are always present, keeping the
	// graph connected.
	MaxNeighbors int
	// SortPasses is the external-sort charge of the STR packing (default 6
	// — run formation plus merge per dimension, as for the R-tree
	// baseline).
	SortPasses int
	// SeedFanout is the fanout of the seed index (default 64).
	SeedFanout int
	// Paranoid enables a completeness check after the crawl: any leaf that
	// intersects the query but was not reached through neighbor links is
	// read anyway and counted in CrawlMisses. Enabled by default so results
	// are exact even on adversarial data; misses are rare and cheap.
	Paranoid *bool
}

// DefaultConfig returns the standard FLAT configuration.
func DefaultConfig() Config {
	t := true
	return Config{
		LeafCapacity: object.PageCapacity, MaxNeighbors: 24, SortPasses: 6,
		SeedFanout: 64, Paranoid: &t,
	}
}

func (c Config) withDefaults() (Config, error) {
	if c.LeafCapacity == 0 {
		c.LeafCapacity = object.PageCapacity
	}
	if c.LeafCapacity < 1 || c.LeafCapacity > object.PageCapacity {
		return c, fmt.Errorf("flat: leaf capacity %d outside [1,%d]",
			c.LeafCapacity, object.PageCapacity)
	}
	if c.MaxNeighbors == 0 {
		c.MaxNeighbors = 24
	}
	if c.MaxNeighbors < 2 {
		return c, fmt.Errorf("flat: MaxNeighbors %d < 2 (chain links required)", c.MaxNeighbors)
	}
	if c.SortPasses < 0 {
		return c, fmt.Errorf("flat: negative sort passes")
	}
	if c.SeedFanout == 0 {
		c.SeedFanout = 64
	}
	if c.Paranoid == nil {
		t := true
		c.Paranoid = &t
	}
	return c, nil
}

// leafMeta is the in-memory descriptor of one dense leaf page.
type leafMeta struct {
	box  geom.Box
	page int64
}

// Index is one FLAT index over a set of objects.
type Index struct {
	cfg    Config
	dev    simdisk.Storage
	file   simdisk.FileID // dense leaf pages
	leaves []leafMeta
	adj    *adjacencyStore
	seed   *rtree.Tree
	slack  float64
	numObj int

	// CrawlMisses counts intersecting leaves the paranoid check had to
	// rescue; a high number would indicate the neighbor graph is too sparse.
	CrawlMisses int
}

// BuildIndex constructs a FLAT index over objs (reordered in place): STR
// sort (charged), dense leaf pages, neighborhood graph, seed index.
func BuildIndex(dev simdisk.Storage, name string, objs []object.Object, cfg Config) (*Index, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := rtree.ChargeExternalSort(dev, object.PagesFor(len(objs)), cfg.SortPasses); err != nil {
		return nil, err
	}
	idx := &Index{cfg: cfg, dev: dev, file: dev.CreateFile(name + ".leaves"), numObj: len(objs)}

	// Dense leaf pages in STR order.
	packed := rtree.STRPack(objs, cfg.LeafCapacity)
	for _, leaf := range packed {
		page, err := object.EncodePage(leaf)
		if err != nil {
			return nil, err
		}
		p, err := dev.AppendPage(idx.file, page)
		if err != nil {
			return nil, err
		}
		mbr := leaf[0].Box()
		for _, o := range leaf[1:] {
			mbr = mbr.Union(o.Box())
		}
		idx.leaves = append(idx.leaves, leafMeta{box: mbr, page: p})
	}

	// Mean leaf diagonal sizes the adjacency neighborhood.
	if n := len(idx.leaves); n > 0 {
		var sum float64
		for _, l := range idx.leaves {
			sum += l.box.Size().Len()
		}
		idx.slack = sum / float64(n)
	}

	// Neighborhood graph: MBR-overlapping leaves plus the STR chain.
	lists := idx.computeNeighbors()
	adj, err := buildAdjacency(dev, name+".adj", lists)
	if err != nil {
		return nil, err
	}
	idx.adj = adj

	// Seed index: a small STR tree over the leaf MBRs. Leaf i is encoded as
	// a synthetic object with ID i. Tiny, so no sort charge.
	seedObjs := make([]object.Object, len(idx.leaves))
	for i, l := range idx.leaves {
		seedObjs[i] = object.Object{
			ID:         uint64(i),
			Center:     l.box.Center(),
			HalfExtent: l.box.HalfExtent(),
		}
	}
	seed, err := rtree.Build(dev, name+".seed", seedObjs, rtree.Config{
		Fanout: cfg.SeedFanout, SortPasses: 0,
	})
	if err != nil {
		return nil, err
	}
	idx.seed = seed
	return idx, nil
}

// computeNeighbors builds the per-leaf neighbor lists with a spatial hash.
func (idx *Index) computeNeighbors() [][]uint32 {
	n := len(idx.leaves)
	lists := make([][]uint32, n)
	if n == 0 {
		return lists
	}
	// Hash leaf centers on a grid sized to the mean leaf extent.
	bounds := idx.leaves[0].box
	for _, l := range idx.leaves[1:] {
		bounds = bounds.Union(l.box)
	}
	cell := idx.slack
	if cell <= 0 {
		cell = bounds.LongestSide() + 1
	}
	k := int(bounds.LongestSide()/cell) + 1
	if k > 128 {
		k = 128
	}
	if k < 1 {
		k = 1
	}
	hash := make(map[[3]int][]int)
	cellOf := func(p geom.Vec) [3]int {
		ix, iy, iz := bounds.CellIndex(k, p)
		return [3]int{ix, iy, iz}
	}
	for i, l := range idx.leaves {
		c := cellOf(l.box.Center())
		hash[c] = append(hash[c], i)
	}
	for i, l := range idx.leaves {
		c := cellOf(l.box.Center())
		var cands []int
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					cands = append(cands, hash[[3]int{c[0] + dx, c[1] + dy, c[2] + dz}]...)
				}
			}
		}
		type scored struct {
			id   int
			dist float64
		}
		var near []scored
		for _, j := range cands {
			if j == i {
				continue
			}
			d := l.box.Dist(idx.leaves[j].box)
			if d <= idx.slack {
				near = append(near, scored{j, d})
			}
		}
		sort.Slice(near, func(a, b int) bool { return near[a].dist < near[b].dist })
		// Chain links first (they guarantee a connected graph), then every
		// MBR-overlapping leaf (the crawl's completeness depends on them;
		// ids are 4 bytes so large overlap sets stay cheap), then the
		// nearest disjoint leaves up to MaxNeighbors.
		list := make([]uint32, 0, idx.cfg.MaxNeighbors)
		seen := make(map[uint32]bool, idx.cfg.MaxNeighbors)
		addUnique := func(j int) {
			if !seen[uint32(j)] {
				seen[uint32(j)] = true
				list = append(list, uint32(j))
			}
		}
		if i > 0 {
			addUnique(i - 1)
		}
		if i < n-1 {
			addUnique(i + 1)
		}
		// maxDegree bounds the record size (~260 B, 15 records per page) so
		// crawling nearby leaves stays cheap; overlap neighbors beyond the
		// cap are rescued by the paranoid completion at no extra read cost.
		const maxDegree = 64
		for _, s := range near {
			if s.dist > 0 || len(list) >= maxDegree {
				break
			}
			addUnique(s.id)
		}
		for _, s := range near {
			if len(list) >= idx.cfg.MaxNeighbors {
				break
			}
			addUnique(s.id)
		}
		lists[i] = list
	}
	return lists
}

// NumObjects returns the number of indexed objects.
func (idx *Index) NumObjects() int { return idx.numObj }

// NumLeaves returns the number of dense leaf pages.
func (idx *Index) NumLeaves() int { return len(idx.leaves) }

// Query returns every object intersecting q, restricted to filter when
// non-nil. It runs FLAT's seed phase then crawls the neighbor graph.
func (idx *Index) Query(q geom.Box, filter map[object.DatasetID]bool) ([]object.Object, error) {
	if len(idx.leaves) == 0 {
		return nil, nil
	}
	// Seed phase: cheap first-hit probe of the seed index. The seed tree
	// indexes every leaf MBR, so a miss proves the result is empty.
	seedObj, found, err := idx.seed.FirstHit(q)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, nil
	}
	// Crawl phase: flood over the neighbor graph starting from the seed
	// (which intersects q by construction). Neighbor MBRs are stored
	// inline in the adjacency records, so discovery reads only adjacency
	// pages; the intersecting leaf pages themselves are then read in one
	// page-ordered pass. STR packing puts spatially adjacent leaves on
	// consecutive pages, so that pass is largely sequential — the dense
	// sequential retrieval that makes FLAT the fastest-querying baseline.
	visited := map[int]bool{int(seedObj.ID): true}
	frontier := []int{int(seedObj.ID)}
	var hits []int
	for len(frontier) > 0 {
		id := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		if !idx.leaves[id].box.Intersects(q) {
			continue
		}
		hits = append(hits, id)
		neighbors, err := idx.adj.neighbors(id)
		if err != nil {
			return nil, err
		}
		for _, nb := range neighbors {
			nid := int(nb)
			if !visited[nid] && idx.leaves[nid].box.Intersects(q) {
				visited[nid] = true
				frontier = append(frontier, nid)
			}
		}
	}

	// Paranoid completeness check against the in-memory leaf directory:
	// intersecting leaves unreachable through the neighbor graph are read
	// anyway (rare; counted so tests can watch graph quality).
	if *idx.cfg.Paranoid {
		for i, l := range idx.leaves {
			if !visited[i] && l.box.Intersects(q) {
				idx.CrawlMisses++
				hits = append(hits, i)
			}
		}
	}

	sort.Slice(hits, func(a, b int) bool {
		return idx.leaves[hits[a]].page < idx.leaves[hits[b]].page
	})
	var out []object.Object
	for _, id := range hits {
		objs, err := idx.readLeaf(id)
		if err != nil {
			return nil, err
		}
		out = appendFiltered(out, objs, q, filter)
	}
	return out, nil
}

// readLeaf reads and decodes one dense leaf page.
func (idx *Index) readLeaf(id int) ([]object.Object, error) {
	buf := make([]byte, simdisk.PageSize)
	if err := idx.dev.ReadPage(idx.file, idx.leaves[id].page, buf); err != nil {
		return nil, err
	}
	return object.DecodePage(buf)
}

func appendFiltered(dst, objs []object.Object, q geom.Box, filter map[object.DatasetID]bool) []object.Object {
	for _, o := range objs {
		if !o.Intersects(q) {
			continue
		}
		if filter != nil && !filter[o.Dataset] {
			continue
		}
		dst = append(dst, o)
	}
	return dst
}
