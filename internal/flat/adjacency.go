// Package flat reimplements FLAT (Tauheed et al., "Accelerating Range
// Queries For Brain Simulations", ICDE'12), the paper's strongest baseline
// for query performance. FLAT densely packs objects into leaf pages
// (Sort-Tile-Recursive order), links each leaf to its spatial neighbors on
// disk, and answers a range query in two phases:
//
//  1. seed — find *one* leaf intersecting the query through a small index
//     (here: an STR tree over the leaf MBRs probed with FirstHit);
//  2. crawl — breadth-first traversal of the neighbor links, reading only
//     leaves that intersect the query.
//
// This gives FLAT the most expensive build of all approaches (full STR sort
// plus neighborhood-graph construction) and the cheapest queries — the
// trade-off the paper's Figures 4 and 5 show.
package flat

import (
	"encoding/binary"
	"errors"
	"fmt"

	"spaceodyssey/internal/simdisk"
)

// adjLoc locates one leaf's adjacency record inside the adjacency file.
type adjLoc struct {
	page int64
	off  int32
	n    int32
}

// ErrAdjCorrupt reports an unreadable adjacency record.
var ErrAdjCorrupt = errors.New("flat: corrupt adjacency record")

// adjacencyStore keeps per-leaf neighbor lists on disk, packed into pages.
// Records hold neighbor leaf ids only (4 bytes each) — the leaf-MBR
// directory is memory-resident metadata, as in FLAT — so hundreds of
// records fit per page and crawls of nearby leaves (consecutive in STR
// order) usually touch a single adjacency page.
type adjacencyStore struct {
	dev  simdisk.Storage
	file simdisk.FileID
	locs []adjLoc
}

// buildAdjacency writes the neighbor lists to a new device file with
// sequential appends.
func buildAdjacency(dev simdisk.Storage, name string, lists [][]uint32) (*adjacencyStore, error) {
	s := &adjacencyStore{
		dev:  dev,
		file: dev.CreateFile(name),
		locs: make([]adjLoc, len(lists)),
	}
	page := make([]byte, simdisk.PageSize)
	off := 0
	pageIdx := int64(0)
	dirty := false
	for i, list := range lists {
		recSize := 4 + len(list)*4
		if recSize > simdisk.PageSize {
			return nil, fmt.Errorf("flat: adjacency record for leaf %d too large (%d neighbors)",
				i, len(list))
		}
		if off+recSize > simdisk.PageSize {
			if _, err := dev.AppendPage(s.file, page); err != nil {
				return nil, err
			}
			page = make([]byte, simdisk.PageSize)
			off = 0
			pageIdx++
			dirty = false
		}
		s.locs[i] = adjLoc{page: pageIdx, off: int32(off), n: int32(len(list))}
		binary.LittleEndian.PutUint32(page[off:], uint32(len(list)))
		off += 4
		for _, id := range list {
			binary.LittleEndian.PutUint32(page[off:], id)
			off += 4
		}
		dirty = true
	}
	if dirty {
		if _, err := dev.AppendPage(s.file, page); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// neighbors reads the adjacency record of leaf id (one page read, usually a
// cache hit for leaves visited in the same crawl).
func (s *adjacencyStore) neighbors(id int) ([]uint32, error) {
	if id < 0 || id >= len(s.locs) {
		return nil, fmt.Errorf("flat: leaf %d out of range", id)
	}
	loc := s.locs[id]
	buf := make([]byte, simdisk.PageSize)
	if err := s.dev.ReadPage(s.file, loc.page, buf); err != nil {
		return nil, err
	}
	off := int(loc.off)
	if off+4 > len(buf) {
		return nil, ErrAdjCorrupt
	}
	n := int(binary.LittleEndian.Uint32(buf[off:]))
	if n != int(loc.n) || off+4+n*4 > len(buf) {
		return nil, ErrAdjCorrupt
	}
	off += 4
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf[off:])
		off += 4
	}
	return out, nil
}
