// Package dsfile reads and writes dataset files on the real filesystem —
// the interchange format of the odyssey-gen and odyssey-explore tools. A
// dataset file is a small header followed by fixed-width object records
// (the same record codec used on the simulated disk).
package dsfile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"spaceodyssey/internal/object"
)

// magic identifies a dataset file ("SODY" little-endian).
const magic = 0x59444F53

// version is the current format version.
const version = 1

// headerSize is magic(4) + version(4) + dataset(4) + pad(4) + count(8).
const headerSize = 24

// Format errors.
var (
	ErrBadMagic   = errors.New("dsfile: not a dataset file")
	ErrBadVersion = errors.New("dsfile: unsupported version")
	ErrTruncated  = errors.New("dsfile: truncated file")
)

// Save writes objs as a dataset file at path.
func Save(path string, ds object.DatasetID, objs []object.Object) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	header := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(header[0:], magic)
	binary.LittleEndian.PutUint32(header[4:], version)
	binary.LittleEndian.PutUint32(header[8:], uint32(ds))
	binary.LittleEndian.PutUint64(header[16:], uint64(len(objs)))
	if _, err := w.Write(header); err != nil {
		f.Close()
		return err
	}
	rec := make([]byte, object.RecordSize)
	for _, o := range objs {
		object.EncodeRecord(rec, o)
		if _, err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a dataset file.
func Load(path string) (object.DatasetID, []object.Object, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	header := make([]byte, headerSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if binary.LittleEndian.Uint32(header[0:]) != magic {
		return 0, nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(header[4:]); v != version {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	ds := object.DatasetID(binary.LittleEndian.Uint32(header[8:]))
	count := binary.LittleEndian.Uint64(header[16:])
	objs := make([]object.Object, 0, count)
	rec := make([]byte, object.RecordSize)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(r, rec); err != nil {
			return 0, nil, fmt.Errorf("%w: record %d: %v", ErrTruncated, i, err)
		}
		objs = append(objs, object.DecodeRecord(rec))
	}
	return ds, objs, nil
}
