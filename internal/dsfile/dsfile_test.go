package dsfile

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"spaceodyssey/internal/datagen"
	"spaceodyssey/internal/object"
)

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds3.sod")
	objs := datagen.Generate(datagen.Config{Seed: 1, NumObjects: 1234}, 3)
	if err := Save(path, 3, objs); err != nil {
		t.Fatal(err)
	}
	ds, got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds != 3 {
		t.Fatalf("dataset id = %d", ds)
	}
	if len(got) != len(objs) {
		t.Fatalf("loaded %d objects, want %d", len(got), len(objs))
	}
	for i := range objs {
		if got[i] != objs[i] {
			t.Fatalf("object %d mismatch", i)
		}
	}
}

func TestEmptyDataset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.sod")
	if err := Save(path, 7, nil); err != nil {
		t.Fatal(err)
	}
	ds, got, err := Load(path)
	if err != nil || ds != 7 || len(got) != 0 {
		t.Fatalf("ds=%d n=%d err=%v", ds, len(got), err)
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()

	if _, _, err := Load(filepath.Join(dir, "missing.sod")); err == nil {
		t.Error("missing file loaded")
	}

	bad := filepath.Join(dir, "bad.sod")
	if err := os.WriteFile(bad, []byte("not a dataset file at all......"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}

	short := filepath.Join(dir, "short.sod")
	if err := os.WriteFile(short, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(short); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: %v", err)
	}

	// Valid header claiming more records than present.
	good := filepath.Join(dir, "good.sod")
	objs := datagen.Generate(datagen.Config{Seed: 2, NumObjects: 10}, 1)
	if err := Save(good, 1, objs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	truncated := filepath.Join(dir, "trunc.sod")
	if err := os.WriteFile(truncated, data[:len(data)-object.RecordSize], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(truncated); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated records: %v", err)
	}

	// Unsupported version.
	verBad := append([]byte(nil), data...)
	verBad[4] = 99
	verPath := filepath.Join(dir, "ver.sod")
	if err := os.WriteFile(verPath, verBad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(verPath); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
}
