package bench

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	series := make([]time.Duration, 100)
	for i := range series {
		series[i] = time.Duration(i + 1) // 1..100
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1}, {50, 50}, {95, 95}, {99, 99}, {100, 100},
	}
	for _, c := range cases {
		if got := Percentile(series, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty series percentile nonzero")
	}
	// Input must not be mutated (sorted copy).
	shuffled := []time.Duration{5, 1, 4, 2, 3}
	Percentile(shuffled, 50)
	if shuffled[0] != 5 || shuffled[4] != 3 {
		t.Error("Percentile mutated its input")
	}
	if got := Percentile([]time.Duration{7}, 50); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
}

func TestWriteFigure4CSV(t *testing.T) {
	res := Figure4Result{
		Spec: FigureSpec{ID: "fig4a"},
		Rows: []Figure4Row{
			{K: 1, Combinations: 10, Engine: KindOdyssey,
				Index: 0, Query: time.Second, Total: time.Second,
				OdysseyAnsweredByIndexEnd: -1},
			{K: 1, Combinations: 10, Engine: KindGrid1fE,
				Index: 2 * time.Second, Query: 3 * time.Second, Total: 5 * time.Second,
				OdysseyAnsweredByIndexEnd: 42},
		},
	}
	var buf bytes.Buffer
	if err := WriteFigure4CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][0] != "figure" || recs[2][3] != "Grid-1fE" || recs[2][7] != "42" {
		t.Fatalf("unexpected rows: %v", recs)
	}
}

func TestWriteFigure5CSV(t *testing.T) {
	res := Figure5Result{
		Spec:    FigureSpec{ID: "fig5a"},
		Engines: []EngineKind{KindOdyssey, KindGrid1fE},
		Series: map[EngineKind][]time.Duration{
			KindOdyssey: {time.Millisecond, 2 * time.Millisecond},
			KindGrid1fE: {3 * time.Millisecond},
		},
	}
	var buf bytes.Buffer
	if err := WriteFigure5CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	// Row for query 1: Grid's series is shorter, so its column is blank.
	if recs[2][2] != "0.002000" || recs[2][3] != "" {
		t.Fatalf("unexpected row: %v", recs[2])
	}
}

func TestWriteFigure5cCSV(t *testing.T) {
	res := Figure5cResult{
		WithMerge:    []time.Duration{time.Millisecond, time.Millisecond},
		WithoutMerge: []time.Duration{2 * time.Millisecond, 2 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteFigure5cCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "odyssey_s") || strings.Count(out, "\n") != 3 {
		t.Fatalf("csv output:\n%s", out)
	}
}

func TestPrintFigure5IncludesPercentiles(t *testing.T) {
	res := Figure5Result{
		Spec:    FigureSpec{ID: "fig5a"},
		Engines: []EngineKind{KindOdyssey},
		Series: map[EngineKind][]time.Duration{
			KindOdyssey: make([]time.Duration, 100),
		},
	}
	var buf bytes.Buffer
	PrintFigure5(&buf, res)
	for _, want := range []string{"p50", "p95", "p99"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %s:\n%s", want, buf.String())
		}
	}
}
