package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"time"
)

// Percentile returns the p-th percentile (0..100) of the series by
// nearest-rank. An empty series yields 0.
func Percentile(series []time.Duration, p float64) time.Duration {
	if len(series) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), series...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// WriteFigure4CSV emits one row per (k, engine) with indexing, querying and
// total simulated seconds — plot-ready.
func WriteFigure4CSV(w io.Writer, r Figure4Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"figure", "k", "combinations", "engine", "index_s", "query_s", "total_s",
		"odyssey_answered_by_index_end",
	}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			r.Spec.ID,
			fmt.Sprintf("%d", row.K),
			fmt.Sprintf("%d", row.Combinations),
			string(row.Engine),
			fmt.Sprintf("%.6f", row.Index.Seconds()),
			fmt.Sprintf("%.6f", row.Query.Seconds()),
			fmt.Sprintf("%.6f", row.Total.Seconds()),
			fmt.Sprintf("%d", row.OdysseyAnsweredByIndexEnd),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure5CSV emits one row per query id with each engine's simulated
// latency — the raw series behind the paper's scatter plots.
func WriteFigure5CSV(w io.Writer, r Figure5Result) error {
	cw := csv.NewWriter(w)
	header := []string{"figure", "query_id"}
	for _, e := range r.Engines {
		header = append(header, string(e)+"_s")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	n := 0
	for _, s := range r.Series {
		if len(s) > n {
			n = len(s)
		}
	}
	for i := 0; i < n; i++ {
		rec := []string{r.Spec.ID, fmt.Sprintf("%d", i)}
		for _, e := range r.Engines {
			s := r.Series[e]
			if i < len(s) {
				rec = append(rec, fmt.Sprintf("%.6f", s[i].Seconds()))
			} else {
				rec = append(rec, "")
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure5cCSV emits the merging-ablation series (per popular-combo
// query: with and without merging).
func WriteFigure5cCSV(w io.Writer, r Figure5cResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"popular_query_idx", "odyssey_s", "no_merge_s"}); err != nil {
		return err
	}
	for i := range r.WithMerge {
		if err := cw.Write([]string{
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%.6f", r.WithMerge[i].Seconds()),
			fmt.Sprintf("%.6f", r.WithoutMerge[i].Seconds()),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
