package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"spaceodyssey/internal/workload"
)

// smallConfig keeps harness tests fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Datasets = 5
	cfg.ObjectsPerDataset = 2000
	cfg.GridCells = 4
	return cfg
}

func smallWorkload() WorkloadConfig {
	return WorkloadConfig{Queries: 30, QueryVolumeFrac: 1e-4, Seed: 3}
}

func TestDeployIsCleanSlate(t *testing.T) {
	env := NewEnv(smallConfig())
	dev, raws, err := env.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	if dev.Clock() != 0 {
		t.Fatal("clock not reset after deploy")
	}
	if len(raws) != 5 {
		t.Fatalf("%d raw files", len(raws))
	}
	for i, r := range raws {
		if r.NumObjects() != 2000 {
			t.Fatalf("raw %d has %d objects", i, r.NumObjects())
		}
	}
}

func TestAllEnginesRunAndAgree(t *testing.T) {
	env := NewEnv(smallConfig())
	spec, err := FigureByID("fig4a")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloadFor(env, spec, smallWorkload(), 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[EngineKind]int{}
	kinds := []EngineKind{
		KindOdyssey, KindOdysseyNoMerge, KindFLATAin1, KindFLAT1fE,
		KindRTreeAin1, KindRTree1fE, KindGrid1fE, KindGridAin1, KindNaive,
	}
	for _, kind := range kinds {
		r, err := env.Run(kind, w)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(r.QueryTimes) != len(w.Queries) {
			t.Fatalf("%s: %d query times", kind, len(r.QueryTimes))
		}
		counts[kind] = r.ObjectsReturned
	}
	// Every engine must return the same total number of objects.
	want := counts[KindNaive]
	for kind, got := range counts {
		if got != want {
			t.Fatalf("%s returned %d objects, naive %d", kind, got, want)
		}
	}
}

func TestAdaptiveEnginesHaveZeroIndexTime(t *testing.T) {
	env := NewEnv(smallConfig())
	spec, _ := FigureByID("fig4a")
	w, err := workloadFor(env, spec, smallWorkload(), 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := env.Run(KindOdyssey, w)
	if err != nil {
		t.Fatal(err)
	}
	if r.IndexTime != 0 {
		t.Fatalf("Odyssey IndexTime = %v", r.IndexTime)
	}
	if r.Metrics == nil || r.Metrics.Queries != len(w.Queries) {
		t.Fatalf("metrics missing or wrong: %+v", r.Metrics)
	}
	g, err := env.Run(KindGrid1fE, w)
	if err != nil {
		t.Fatal(err)
	}
	if g.IndexTime == 0 {
		t.Fatal("Grid IndexTime = 0")
	}
	if g.Metrics != nil {
		t.Fatal("non-Odyssey engine has Odyssey metrics")
	}
}

func TestQueriesAnsweredBy(t *testing.T) {
	r := Result{
		IndexTime:  0,
		QueryTimes: []time.Duration{1, 1, 1, 1},
	}
	if got := r.QueriesAnsweredBy(2); got != 2 {
		t.Fatalf("QueriesAnsweredBy(2) = %d", got)
	}
	if got := r.QueriesAnsweredBy(0); got != 0 {
		t.Fatalf("QueriesAnsweredBy(0) = %d", got)
	}
	if got := r.QueriesAnsweredBy(100); got != 4 {
		t.Fatalf("QueriesAnsweredBy(100) = %d", got)
	}
	r.IndexTime = 3
	if got := r.QueriesAnsweredBy(3); got != 0 {
		t.Fatalf("with index time: %d", got)
	}
}

func TestUnknownEngineKind(t *testing.T) {
	env := NewEnv(smallConfig())
	dev, raws, err := env.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.NewEngine(EngineKind("bogus"), dev, raws); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestFigureByID(t *testing.T) {
	for _, f := range Figures {
		got, err := FigureByID(f.ID)
		if err != nil || got.ID != f.ID {
			t.Fatalf("FigureByID(%s): %v", f.ID, err)
		}
	}
	if _, err := FigureByID("fig9z"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestFigure4SmallRun(t *testing.T) {
	env := NewEnv(smallConfig())
	spec, _ := FigureByID("fig4a")
	res, err := Figure4(env, spec, smallWorkload(), []int{1, 3},
		[]EngineKind{KindGrid1fE, KindOdyssey})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	var buf bytes.Buffer
	PrintFigure4(&buf, res)
	out := buf.String()
	for _, want := range []string{"fig4a", "Grid-1fE", "Odyssey", "ody@idx"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// The static engine rows must carry the answered-by-index-end metric.
	for _, row := range res.Rows {
		if row.Engine == KindGrid1fE && row.OdysseyAnsweredByIndexEnd < 0 {
			t.Fatal("Grid row missing Odyssey comparison")
		}
		if row.Engine == KindOdyssey && row.Index != 0 {
			t.Fatal("Odyssey has nonzero index time")
		}
	}
}

func TestFigure5SmallRun(t *testing.T) {
	env := NewEnv(smallConfig())
	spec, _ := FigureByID("fig5a")
	res, err := Figure5(env, spec, smallWorkload(), []EngineKind{KindGrid1fE, KindOdyssey})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series[KindOdyssey]) != 30 {
		t.Fatalf("series length %d", len(res.Series[KindOdyssey]))
	}
	var buf bytes.Buffer
	PrintFigure5(&buf, res)
	if !strings.Contains(buf.String(), "first query") {
		t.Fatalf("table missing first-query row:\n%s", buf.String())
	}
}

func TestFigure5cSmallRun(t *testing.T) {
	cfg := smallConfig()
	cfg.Datasets = 6
	env := NewEnv(cfg)
	wcfg := smallWorkload()
	wcfg.Queries = 60
	res, err := Figure5c(env, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PopularCount <= 0 || len(res.WithMerge) != res.PopularCount {
		t.Fatalf("popular combo count %d, series %d", res.PopularCount, len(res.WithMerge))
	}
	if len(res.WithMerge) != len(res.WithoutMerge) {
		t.Fatal("series lengths differ")
	}
	var buf bytes.Buffer
	PrintFigure5c(&buf, res)
	if !strings.Contains(buf.String(), "merging gain") {
		t.Fatalf("output missing gain:\n%s", buf.String())
	}
}

func TestVerifyAgainstOracle(t *testing.T) {
	env := NewEnv(smallConfig())
	spec, _ := FigureByID("fig4a")
	w, err := workloadFor(env, spec, smallWorkload(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []EngineKind{KindOdyssey, KindGrid1fE} {
		if err := env.VerifyAgainstOracle(kind, w); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestPopularComboDatasets(t *testing.T) {
	got := PopularComboDatasets("1,3,10")
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 10 {
		t.Fatalf("parsed %v", got)
	}
	if len(PopularComboDatasets("")) != 0 {
		t.Fatal("empty key parsed to datasets")
	}
	single := PopularComboDatasets("7")
	if len(single) != 1 || single[0] != 7 {
		t.Fatalf("single = %v", single)
	}
}

func TestWorkloadConfigDefaults(t *testing.T) {
	w := DefaultWorkloadConfig()
	if w.Queries != 1000 || w.QueryVolumeFrac != 1e-4 {
		t.Fatalf("defaults = %+v", w)
	}
	if len(Figure4Engines) != 5 {
		t.Fatalf("Figure4Engines = %v", Figure4Engines)
	}
}

func TestGridSweep(t *testing.T) {
	env := NewEnv(smallConfig())
	rows, err := GridSweep(env, smallWorkload(), []int{3, 4}, []int{500})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Total != r.Index+r.Query || r.Total == 0 {
			t.Fatalf("inconsistent row %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintGridSweep(&buf, rows)
	if !strings.Contains(buf.String(), "optimum") {
		t.Fatalf("sweep output missing optimum marker:\n%s", buf.String())
	}
}

func TestWorkloadForUsesFigureSpec(t *testing.T) {
	env := NewEnv(smallConfig())
	spec, _ := FigureByID("fig4d")
	w, err := workloadFor(env, spec, smallWorkload(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Centers) != 0 {
		t.Fatal("uniform figure has cluster centers")
	}
	if w.QuerySide <= 0 {
		t.Fatal("query side missing")
	}
	_ = workload.RangeUniform
}
