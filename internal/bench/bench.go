// Package bench is the experiment harness: it reconstructs every figure of
// the paper's evaluation (Figures 4a–d and 5a–c) on the simulated disk,
// following the paper's methodology — fresh engine per run, OS caches
// dropped before every query, indexing and querying time reported
// separately for the static approaches.
//
// Scale note: the paper uses 10 datasets of ~5 GB each (tens of millions of
// objects). The harness defaults to 10 datasets of 50k objects and a query
// volume chosen so that converged partitions span several pages, preserving
// the paper's partition-size-to-query-size ratio; see EXPERIMENTS.md.
package bench

import (
	"fmt"
	"time"

	"spaceodyssey/internal/core"
	"spaceodyssey/internal/datagen"
	"spaceodyssey/internal/engine"
	"spaceodyssey/internal/flat"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/grid"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/rawfile"
	"spaceodyssey/internal/rtree"
	"spaceodyssey/internal/simdisk"
	"spaceodyssey/internal/workload"
)

// EngineKind names every competing approach the harness can run.
type EngineKind string

// The approaches of the paper's evaluation (plus extras for ablations).
const (
	KindOdyssey        EngineKind = "Odyssey"
	KindOdysseyNoMerge EngineKind = "Odyssey-NoMerge"
	KindFLATAin1       EngineKind = "FLAT-Ain1"
	KindFLAT1fE        EngineKind = "FLAT-1fE"
	KindRTreeAin1      EngineKind = "RTree-Ain1"
	KindRTree1fE       EngineKind = "RTree-1fE"
	KindGrid1fE        EngineKind = "Grid-1fE"
	KindGridAin1       EngineKind = "Grid-Ain1"
	KindNaive          EngineKind = "NaiveScan"
)

// Figure4Engines is the paper's Figure 4 lineup.
var Figure4Engines = []EngineKind{
	KindFLATAin1, KindFLAT1fE, KindRTreeAin1, KindGrid1fE, KindOdyssey,
}

// Config describes one experimental environment.
type Config struct {
	// Datasets is n (paper: 10).
	Datasets int
	// ObjectsPerDataset scales the data (paper: ~5 GB each; harness
	// default 50000 objects ≈ 3.2 MB each on disk).
	ObjectsPerDataset int
	// DataSeed drives dataset generation.
	DataSeed int64
	// DataLayout is the spatial distribution of objects.
	DataLayout datagen.Layout
	// Bounds is the shared exploration volume.
	Bounds geom.Box
	// Cost is the disk cost model.
	Cost simdisk.CostModel
	// CachePages is the buffer-cache capacity (paper: 1 GB ≈ 262144 pages;
	// harness default scales to 1024). Caches are dropped before every
	// query regardless, per the paper's methodology.
	CachePages int
	// GridCells is the Grid baseline's cells per dimension (paper: 60 at
	// full scale, found by a parameter sweep; harness default 6, found by
	// the same sweep at harness scale — see EXPERIMENTS.md).
	GridCells int
	// Devices is the number of simulated member devices files stripe
	// across (0 or 1 = a single device, the original setup).
	Devices int
	// Channels is the number of independent I/O channels (platter heads)
	// per device (0 or 1 = the original single-head model).
	Channels int
	// Placement selects the striping policy for Devices > 1: "affinity"
	// (default; dataset files co-locate) or "roundrobin".
	Placement string
	// GridMemBudgetObjects caps the Grid build's in-memory buffer,
	// modelling the paper's 1 GB memory limit: cells fragment into
	// multiple runs across flushes. Default: 50% of one dataset, the
	// Grid-favoring calibration at reduced scale (the paper's footnote 2
	// likewise favors Grid); see EXPERIMENTS.md for the sweep.
	GridMemBudgetObjects int
	// Odyssey is Space Odyssey's configuration.
	Odyssey core.Config
	// RTree configures both R-tree strategies.
	RTree rtree.Config
	// FLAT configures both FLAT strategies.
	FLAT flat.Config
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config {
	return Config{
		Datasets:          10,
		ObjectsPerDataset: 50000,
		DataSeed:          1,
		DataLayout:        datagen.Clustered,
		Bounds:            geom.UnitBox(),
		Cost:              simdisk.ReducedScaleCostModel(),
		CachePages:        1024,
		GridCells:         6,
		Odyssey:           core.DefaultConfig(),
		RTree:             rtree.DefaultConfig(),
		FLAT:              flat.DefaultConfig(),
	}
}

// Env is a prepared experimental environment: the generated datasets, kept
// in memory so every engine run can start from identical raw files on a
// fresh simulated device.
type Env struct {
	cfg      Config
	datasets [][]object.Object
}

// NewEnv generates the datasets for cfg.
func NewEnv(cfg Config) *Env {
	dss := datagen.GenerateDatasets(datagen.Config{
		Seed:       cfg.DataSeed,
		NumObjects: cfg.ObjectsPerDataset,
		Bounds:     cfg.Bounds,
		Layout:     cfg.DataLayout,
	}, cfg.Datasets)
	return &Env{cfg: cfg, datasets: dss}
}

// NewEnvWithData builds an environment over externally supplied datasets
// (dataset i must be tagged with DatasetID i). The public API's comparison
// helper uses it.
func NewEnvWithData(cfg Config, datasets [][]object.Object) *Env {
	cfg.Datasets = len(datasets)
	return &Env{cfg: cfg, datasets: datasets}
}

// Config returns the environment's configuration.
func (e *Env) Config() Config { return e.cfg }

// PlacementByName resolves a placement-policy name ("", "affinity",
// "roundrobin", "pagestripe") to a fresh policy instance, defaulting to
// affinity.
func PlacementByName(name string) (simdisk.PlacementPolicy, error) {
	switch name {
	case "", "affinity":
		return simdisk.GroupAffinity(), nil
	case "roundrobin":
		return simdisk.RoundRobin(), nil
	case "pagestripe":
		return simdisk.PageStripe(0), nil
	}
	return nil, fmt.Errorf("bench: unknown placement policy %q (want affinity, roundrobin or pagestripe)", name)
}

// NewStorage builds the storage topology cfg describes via
// simdisk.NewStorage, resolving a fresh placement policy per call so
// round-robin runs are reproducible.
func NewStorage(cfg Config) (simdisk.Storage, error) {
	policy, err := PlacementByName(cfg.Placement)
	if err != nil {
		return nil, err
	}
	return simdisk.NewStorage(cfg.Cost, cfg.CachePages, cfg.Devices, cfg.Channels, policy), nil
}

// Deploy writes the datasets as raw files onto fresh storage (per the
// configured device/channel topology) and resets the clock, modelling data
// that already sits on disk.
func (e *Env) Deploy() (simdisk.Storage, []*rawfile.Raw, error) {
	dev, err := NewStorage(e.cfg)
	if err != nil {
		return nil, nil, err
	}
	raws := make([]*rawfile.Raw, len(e.datasets))
	for i, objs := range e.datasets {
		raw, err := rawfile.Write(dev, fmt.Sprintf("ds%d.raw", i), object.DatasetID(i), objs)
		if err != nil {
			return nil, nil, err
		}
		raws[i] = raw
	}
	dev.ResetClock()
	dev.ResetStats()
	dev.DropCaches()
	return dev, raws, nil
}

// NewEngine constructs the requested engine over the deployed raw files.
func (e *Env) NewEngine(kind EngineKind, dev simdisk.Storage, raws []*rawfile.Raw) (engine.Engine, error) {
	switch kind {
	case KindOdyssey:
		cfg := e.cfg.Odyssey
		cfg.DisableMerging = false
		return core.New(dev, raws, e.cfg.Bounds, cfg)
	case KindOdysseyNoMerge:
		cfg := e.cfg.Odyssey
		cfg.DisableMerging = true
		return core.New(dev, raws, e.cfg.Bounds, cfg)
	case KindFLATAin1:
		return flat.NewAllInOne(dev, raws, e.cfg.FLAT), nil
	case KindFLAT1fE:
		return flat.NewOneForEach(dev, raws, e.cfg.FLAT), nil
	case KindRTreeAin1:
		return rtree.NewAllInOne(dev, raws, e.cfg.RTree), nil
	case KindRTree1fE:
		return rtree.NewOneForEach(dev, raws, e.cfg.RTree), nil
	case KindGrid1fE:
		return grid.NewOneForEach(dev, raws, e.cfg.Bounds, e.gridConfig())
	case KindGridAin1:
		return grid.NewAllInOne(dev, raws, e.cfg.Bounds, e.gridConfig())
	case KindNaive:
		return engine.NewNaiveScan(raws), nil
	}
	return nil, fmt.Errorf("bench: unknown engine kind %q", kind)
}

// gridConfig derives the Grid baseline configuration, defaulting the memory
// budget to the paper's 1:5 memory-to-dataset ratio.
func (e *Env) gridConfig() grid.Config {
	budget := e.cfg.GridMemBudgetObjects
	if budget == 0 {
		budget = e.cfg.ObjectsPerDataset / 2
	}
	return grid.Config{CellsPerDim: e.cfg.GridCells, MemBudgetObjects: budget}
}

// Result is one engine's run over one workload.
type Result struct {
	Engine EngineKind
	// IndexTime is the simulated time of the upfront build (zero for
	// adaptive engines).
	IndexTime time.Duration
	// QueryTimes holds the simulated per-query latencies.
	QueryTimes []time.Duration
	// ObjectsReturned is the total result cardinality (sanity checking).
	ObjectsReturned int
	// Metrics carries Space Odyssey's internals when applicable.
	Metrics *core.Metrics
}

// QueryTotal sums the per-query times.
func (r Result) QueryTotal() time.Duration {
	var t time.Duration
	for _, q := range r.QueryTimes {
		t += q
	}
	return t
}

// Total is indexing plus querying.
func (r Result) Total() time.Duration { return r.IndexTime + r.QueryTotal() }

// QueriesAnsweredBy reports how many queries completed within the given
// simulated time from workload start (the paper's "Odyssey answers half the
// queries before Grid finishes building" comparisons).
func (r Result) QueriesAnsweredBy(deadline time.Duration) int {
	elapsed := r.IndexTime
	n := 0
	for _, q := range r.QueryTimes {
		elapsed += q
		if elapsed > deadline {
			break
		}
		n++
	}
	return n
}

// Run executes the full methodology for one engine: deploy raw files on a
// fresh device, build (timed), then run every query with caches dropped
// first (timed individually).
func (e *Env) Run(kind EngineKind, w workload.Workload) (Result, error) {
	dev, raws, err := e.Deploy()
	if err != nil {
		return Result{}, err
	}
	eng, err := e.NewEngine(kind, dev, raws)
	if err != nil {
		return Result{}, err
	}

	res := Result{Engine: kind}
	start := dev.Clock()
	if err := eng.Build(); err != nil {
		return Result{}, fmt.Errorf("%s build: %w", kind, err)
	}
	res.IndexTime = dev.Clock() - start

	res.QueryTimes = make([]time.Duration, 0, len(w.Queries))
	for _, q := range w.Queries {
		dev.DropCaches()
		t0 := dev.Clock()
		objs, err := eng.Query(q.Range, q.Datasets)
		if err != nil {
			return Result{}, fmt.Errorf("%s query %d: %w", kind, q.ID, err)
		}
		res.QueryTimes = append(res.QueryTimes, dev.Clock()-t0)
		res.ObjectsReturned += len(objs)
	}
	if ody, ok := eng.(*core.Odyssey); ok {
		m := ody.Metrics()
		res.Metrics = &m
	}
	return res, nil
}

// VerifyAgainstOracle replays the workload on the engine and the naive-scan
// oracle, failing on the first mismatch. Used by integration tests and the
// --verify flag of odyssey-bench.
func (e *Env) VerifyAgainstOracle(kind EngineKind, w workload.Workload) error {
	dev, raws, err := e.Deploy()
	if err != nil {
		return err
	}
	eng, err := e.NewEngine(kind, dev, raws)
	if err != nil {
		return err
	}
	if err := eng.Build(); err != nil {
		return err
	}
	oracle := engine.NewNaiveScan(raws)
	for _, q := range w.Queries {
		got, err := eng.Query(q.Range, q.Datasets)
		if err != nil {
			return fmt.Errorf("%s query %d: %w", kind, q.ID, err)
		}
		want, err := oracle.Query(q.Range, q.Datasets)
		if err != nil {
			return err
		}
		if !engine.SameObjects(got, want) {
			return fmt.Errorf("%s query %d: %d objects, oracle %d",
				kind, q.ID, len(got), len(want))
		}
	}
	return nil
}
