package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"spaceodyssey/internal/core"
	"spaceodyssey/internal/datagen"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/workload"
)

// FigureSpec selects one of the paper's evaluation figures.
type FigureSpec struct {
	// ID is "fig4a".."fig4d", "fig5a".."fig5c".
	ID string
	// RangeDist / CombDist define the workload skew.
	RangeDist workload.RangeDist
	CombDist  workload.CombDist
	// ClusterCenters for the clustered range distribution.
	ClusterCenters int
}

// Figures enumerates every figure of the evaluation section.
var Figures = []FigureSpec{
	{ID: "fig4a", RangeDist: workload.RangeClustered, CombDist: workload.CombZipf, ClusterCenters: 10},
	{ID: "fig4b", RangeDist: workload.RangeClustered, CombDist: workload.CombHeavyHitter, ClusterCenters: 10},
	{ID: "fig4c", RangeDist: workload.RangeClustered, CombDist: workload.CombSelfSimilar, ClusterCenters: 10},
	{ID: "fig4d", RangeDist: workload.RangeUniform, CombDist: workload.CombUniform, ClusterCenters: 10},
	{ID: "fig5a", RangeDist: workload.RangeClustered, CombDist: workload.CombSelfSimilar, ClusterCenters: 10},
	{ID: "fig5b", RangeDist: workload.RangeUniform, CombDist: workload.CombUniform, ClusterCenters: 10},
	{ID: "fig5c", RangeDist: workload.RangeClustered, CombDist: workload.CombZipf, ClusterCenters: 5},
}

// FigureByID returns the spec for an id.
func FigureByID(id string) (FigureSpec, error) {
	for _, f := range Figures {
		if f.ID == id {
			return f, nil
		}
	}
	return FigureSpec{}, fmt.Errorf("bench: unknown figure %q", id)
}

// WorkloadConfig carries the workload-scale knobs shared by all figures.
type WorkloadConfig struct {
	// Queries per workload (paper: 1000).
	Queries int
	// QueryVolumeFrac (paper: 1e-6 of the volume; harness default 1e-4 so
	// that the partition-size-to-query-size ratio — which controls how
	// many refinement levels a hot area needs — matches the paper's at
	// 1/100 data scale; see EXPERIMENTS.md).
	QueryVolumeFrac float64
	// Seed drives workload generation.
	Seed int64
}

// DefaultWorkloadConfig returns harness-scale defaults.
func DefaultWorkloadConfig() WorkloadConfig {
	return WorkloadConfig{Queries: 1000, QueryVolumeFrac: 1e-4, Seed: 7}
}

// WorkloadForSpec builds the workload of a figure for k datasets per query.
func WorkloadForSpec(env *Env, spec FigureSpec, wcfg WorkloadConfig, k int) (workload.Workload, error) {
	return workloadFor(env, spec, wcfg, k)
}

// workloadFor builds the workload of a figure for k datasets per query.
// Clustered query centers are sampled from the datasets' shared anatomy —
// scientists explore areas where structures exist (paper Figure 3 shows the
// query clusters sitting on the data).
func workloadFor(env *Env, spec FigureSpec, wcfg WorkloadConfig, k int) (workload.Workload, error) {
	cfg := workload.Config{
		Seed:             wcfg.Seed,
		NumQueries:       wcfg.Queries,
		NumDatasets:      env.cfg.Datasets,
		DatasetsPerQuery: k,
		Bounds:           env.cfg.Bounds,
		QueryVolumeFrac:  wcfg.QueryVolumeFrac,
		RangeDist:        spec.RangeDist,
		CombDist:         spec.CombDist,
		ClusterCenters:   spec.ClusterCenters,
	}
	if spec.RangeDist == workload.RangeClustered {
		anatomy := datagen.Anatomy(datagen.Config{
			Seed:   env.cfg.DataSeed,
			Bounds: env.cfg.Bounds,
			Layout: env.cfg.DataLayout,
			// Matches GenerateDatasets' shared-anatomy derivation.
			ClusterSeed: env.cfg.DataSeed*31 + 17,
		})
		if len(anatomy) > 0 {
			r := rand.New(rand.NewSource(wcfg.Seed + 101))
			r.Shuffle(len(anatomy), func(i, j int) { anatomy[i], anatomy[j] = anatomy[j], anatomy[i] })
			n := spec.ClusterCenters
			if n > len(anatomy) {
				n = len(anatomy)
			}
			// Offset each query cluster by one data-cluster sigma: the
			// paper's Figure 3 shows query clusters sitting on the data
			// without targeting the density peaks.
			sigma := 0.03 * env.cfg.Bounds.LongestSide()
			centers := make([]geom.Vec, n)
			for i, c := range anatomy[:n] {
				centers[i] = geom.Vec{
					X: c.X + r.NormFloat64()*sigma,
					Y: c.Y + r.NormFloat64()*sigma,
					Z: c.Z + r.NormFloat64()*sigma,
				}.Max(env.cfg.Bounds.Min).Min(env.cfg.Bounds.Max)
			}
			cfg.Centers = centers
		}
	}
	return workload.Generate(cfg)
}

// Figure4Row is one bar of Figure 4: one engine at one k.
type Figure4Row struct {
	K            int
	Combinations int // distinct combinations actually queried
	Engine       EngineKind
	Index        time.Duration
	Query        time.Duration
	Total        time.Duration
	// OdysseyAnsweredByIndexEnd: for static engines, how many of the 1000
	// queries Odyssey had answered by the time this engine finished
	// indexing (the paper's data-to-query comparison). -1 when not
	// applicable.
	OdysseyAnsweredByIndexEnd int
}

// Figure4Result is the full sweep of one subfigure.
type Figure4Result struct {
	Spec FigureSpec
	Ks   []int
	Rows []Figure4Row
}

// Figure4 runs one subfigure: for each k in ks, every engine processes the
// same 1000-query workload on its own fresh deployment.
func Figure4(env *Env, spec FigureSpec, wcfg WorkloadConfig, ks []int, engines []EngineKind) (Figure4Result, error) {
	if len(ks) == 0 {
		ks = []int{1, 3, 5, 7, 9}
	}
	if len(engines) == 0 {
		engines = Figure4Engines
	}
	res := Figure4Result{Spec: spec, Ks: ks}
	for _, k := range ks {
		w, err := workloadFor(env, spec, wcfg, k)
		if err != nil {
			return res, err
		}
		combos := w.DistinctCombinations()
		var odysseyRes *Result
		results := make([]Result, 0, len(engines))
		for _, kind := range engines {
			r, err := env.Run(kind, w)
			if err != nil {
				return res, fmt.Errorf("%s k=%d: %w", spec.ID, k, err)
			}
			results = append(results, r)
			if kind == KindOdyssey {
				cp := r
				odysseyRes = &cp
			}
		}
		for _, r := range results {
			row := Figure4Row{
				K: k, Combinations: combos, Engine: r.Engine,
				Index: r.IndexTime, Query: r.QueryTotal(), Total: r.Total(),
				OdysseyAnsweredByIndexEnd: -1,
			}
			if odysseyRes != nil && r.Engine != KindOdyssey && r.IndexTime > 0 {
				row.OdysseyAnsweredByIndexEnd = odysseyRes.QueriesAnsweredBy(r.IndexTime)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// PrintFigure4 renders the sweep as a text table.
func PrintFigure4(w io.Writer, r Figure4Result) {
	fmt.Fprintf(w, "== %s: query ranges %s, dataset ids %s ==\n",
		r.Spec.ID, r.Spec.RangeDist, r.Spec.CombDist)
	fmt.Fprintf(w, "%-4s %-7s %-16s %12s %12s %12s %10s\n",
		"k", "#combs", "approach", "index(s)", "query(s)", "total(s)", "ody@idx")
	for _, row := range r.Rows {
		ody := "-"
		if row.OdysseyAnsweredByIndexEnd >= 0 {
			ody = fmt.Sprintf("%d", row.OdysseyAnsweredByIndexEnd)
		}
		fmt.Fprintf(w, "%-4d %-7d %-16s %12.2f %12.2f %12.2f %10s\n",
			row.K, row.Combinations, row.Engine,
			row.Index.Seconds(), row.Query.Seconds(), row.Total.Seconds(), ody)
	}
}

// Figure5Result is a per-query latency series comparison (Figures 5a/5b).
type Figure5Result struct {
	Spec    FigureSpec
	K       int
	Series  map[EngineKind][]time.Duration
	Engines []EngineKind
}

// Figure5 runs the per-query latency experiment: FLAT-Ain1, Grid-1fE and
// Odyssey answering the same 1000-query sequence with 5 of 10 datasets.
func Figure5(env *Env, spec FigureSpec, wcfg WorkloadConfig, engines []EngineKind) (Figure5Result, error) {
	if len(engines) == 0 {
		engines = []EngineKind{KindFLATAin1, KindGrid1fE, KindOdyssey}
	}
	const k = 5
	w, err := workloadFor(env, spec, wcfg, k)
	if err != nil {
		return Figure5Result{}, err
	}
	res := Figure5Result{Spec: spec, K: k, Series: map[EngineKind][]time.Duration{}, Engines: engines}
	for _, kind := range engines {
		r, err := env.Run(kind, w)
		if err != nil {
			return res, fmt.Errorf("%s: %w", spec.ID, err)
		}
		res.Series[kind] = r.QueryTimes
	}
	return res, nil
}

// PrintFigure5 renders the series bucketed into deciles of the query
// sequence (the figures are log-scale scatter plots; buckets convey the
// convergence shape in text).
func PrintFigure5(w io.Writer, r Figure5Result) {
	fmt.Fprintf(w, "== %s: per-query time, ranges %s, ids %s, k=%d ==\n",
		r.Spec.ID, r.Spec.RangeDist, r.Spec.CombDist, r.K)
	fmt.Fprintf(w, "%-18s", "query range")
	for _, e := range r.Engines {
		fmt.Fprintf(w, " %14s", e)
	}
	fmt.Fprintln(w)
	n := 0
	for _, s := range r.Series {
		n = len(s)
		break
	}
	buckets := 10
	for b := 0; b < buckets; b++ {
		lo := b * n / buckets
		hi := (b + 1) * n / buckets
		if hi <= lo {
			continue
		}
		fmt.Fprintf(w, "%7d – %-8d", lo+1, hi)
		for _, e := range r.Engines {
			fmt.Fprintf(w, " %13.3fs", meanDuration(r.Series[e][lo:hi]).Seconds())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-18s", "first query")
	for _, e := range r.Engines {
		fmt.Fprintf(w, " %13.3fs", r.Series[e][0].Seconds())
	}
	fmt.Fprintln(w)
	for _, p := range []float64{50, 95, 99} {
		fmt.Fprintf(w, "%-18s", fmt.Sprintf("p%.0f", p))
		for _, e := range r.Engines {
			fmt.Fprintf(w, " %13.3fs", Percentile(r.Series[e], p).Seconds())
		}
		fmt.Fprintln(w)
	}
}

// Figure5cResult isolates the effect of merging.
type Figure5cResult struct {
	Spec FigureSpec
	// PopularCombo is the most-queried combination and PopularCount its
	// query count (paper: 751 of 1000 under Zipf).
	PopularCombo core.ComboKey
	PopularCount int
	// WithMerge / WithoutMerge are the per-query times of only the queries
	// requesting the popular combination.
	WithMerge    []time.Duration
	WithoutMerge []time.Duration
	// GainPercent is the average per-query gain of merging over the
	// steady-state tail (paper: ~25%).
	GainPercent float64
	// Metrics from the merging run.
	Metrics *core.Metrics
}

// Figure5c runs Odyssey with and without merging on a Zipf workload with 5
// query cluster centers and reports the queries hitting the most popular
// combination.
func Figure5c(env *Env, wcfg WorkloadConfig) (Figure5cResult, error) {
	spec, err := FigureByID("fig5c")
	if err != nil {
		return Figure5cResult{}, err
	}
	const k = 5
	w, err := workloadFor(env, spec, wcfg, k)
	if err != nil {
		return Figure5cResult{}, err
	}

	// Identify the most popular combination.
	counts := map[core.ComboKey]int{}
	for _, q := range w.Queries {
		counts[core.KeyOf(q.Datasets)]++
	}
	var popular core.ComboKey
	best := 0
	for key, c := range counts {
		if c > best {
			popular, best = key, c
		}
	}

	withRes, err := env.Run(KindOdyssey, w)
	if err != nil {
		return Figure5cResult{}, err
	}
	withoutRes, err := env.Run(KindOdysseyNoMerge, w)
	if err != nil {
		return Figure5cResult{}, err
	}

	res := Figure5cResult{
		Spec: spec, PopularCombo: popular, PopularCount: best,
		Metrics: withRes.Metrics,
	}
	for i, q := range w.Queries {
		if core.KeyOf(q.Datasets) != popular {
			continue
		}
		res.WithMerge = append(res.WithMerge, withRes.QueryTimes[i])
		res.WithoutMerge = append(res.WithoutMerge, withoutRes.QueryTimes[i])
	}
	// Steady-state gain over the tail (skip the adaptive warm-up half).
	tail := len(res.WithMerge) / 2
	mw := meanDuration(res.WithMerge[tail:])
	mo := meanDuration(res.WithoutMerge[tail:])
	if mo > 0 {
		res.GainPercent = 100 * (1 - float64(mw)/float64(mo))
	}
	return res, nil
}

// PrintFigure5c renders the merging ablation.
func PrintFigure5c(w io.Writer, r Figure5cResult) {
	fmt.Fprintf(w, "== fig5c: effect of merging (ranges %s, ids %s, 5 cluster centers) ==\n",
		r.Spec.RangeDist, r.Spec.CombDist)
	fmt.Fprintf(w, "most popular combination {%s} queried %d times\n", r.PopularCombo, r.PopularCount)
	n := len(r.WithMerge)
	buckets := 8
	fmt.Fprintf(w, "%-18s %14s %14s\n", "query range", "Odyssey", "w/o merging")
	for b := 0; b < buckets; b++ {
		lo := b * n / buckets
		hi := (b + 1) * n / buckets
		if hi <= lo {
			continue
		}
		fmt.Fprintf(w, "%7d – %-8d %13.3fs %13.3fs\n", lo+1, hi,
			meanDuration(r.WithMerge[lo:hi]).Seconds(),
			meanDuration(r.WithoutMerge[lo:hi]).Seconds())
	}
	fmt.Fprintf(w, "steady-state merging gain: %.1f%%\n", r.GainPercent)
	if r.Metrics != nil {
		fmt.Fprintf(w, "merge files: %d, partitions merged: %d, served from merge: %d\n",
			r.Metrics.MergeFilesCreated, r.Metrics.PartitionsMerged, r.Metrics.PartitionsFromMerge)
	}
}

// GridSweepRow is one configuration of the Grid baseline sweep.
type GridSweepRow struct {
	CellsPerDim   int
	BudgetObjects int
	Index         time.Duration
	Query         time.Duration
	Total         time.Duration
}

// GridSweep reruns the fig4a k=5 workload over Grid-1fE configurations —
// the parameter sweep the paper performs to tune its Grid baseline
// (footnote 2). The harness defaults come from this sweep.
func GridSweep(env *Env, wcfg WorkloadConfig, cells []int, budgets []int) ([]GridSweepRow, error) {
	if len(cells) == 0 {
		cells = []int{3, 4, 5, 6, 8, 10}
	}
	if len(budgets) == 0 {
		budgets = []int{env.cfg.ObjectsPerDataset / 5, env.cfg.ObjectsPerDataset / 2}
	}
	spec, err := FigureByID("fig4a")
	if err != nil {
		return nil, err
	}
	w, err := workloadFor(env, spec, wcfg, 5)
	if err != nil {
		return nil, err
	}
	var rows []GridSweepRow
	for _, budget := range budgets {
		for _, c := range cells {
			cfg := env.cfg
			cfg.GridCells = c
			cfg.GridMemBudgetObjects = budget
			swept := &Env{cfg: cfg, datasets: env.datasets}
			r, err := swept.Run(KindGrid1fE, w)
			if err != nil {
				return nil, fmt.Errorf("grid sweep cells=%d budget=%d: %w", c, budget, err)
			}
			rows = append(rows, GridSweepRow{
				CellsPerDim: c, BudgetObjects: budget,
				Index: r.IndexTime, Query: r.QueryTotal(), Total: r.Total(),
			})
		}
	}
	return rows, nil
}

// PrintGridSweep renders the sweep and marks the optimum.
func PrintGridSweep(w io.Writer, rows []GridSweepRow) {
	fmt.Fprintln(w, "== grid parameter sweep (fig4a workload, k=5) ==")
	fmt.Fprintf(w, "%-10s %-10s %12s %12s %12s\n",
		"cells/dim", "membudget", "index(s)", "query(s)", "total(s)")
	best := -1
	for i, r := range rows {
		if best < 0 || r.Total < rows[best].Total {
			best = i
		}
	}
	for i, r := range rows {
		mark := ""
		if i == best {
			mark = "  <- optimum"
		}
		fmt.Fprintf(w, "%-10d %-10d %12.2f %12.2f %12.2f%s\n",
			r.CellsPerDim, r.BudgetObjects,
			r.Index.Seconds(), r.Query.Seconds(), r.Total.Seconds(), mark)
	}
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// PopularComboDatasets parses a ComboKey back into dataset ids, sorted.
func PopularComboDatasets(key core.ComboKey) []object.DatasetID {
	var out []object.DatasetID
	cur := 0
	has := false
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c == ',' {
			if has {
				out = append(out, object.DatasetID(cur))
			}
			cur, has = 0, false
			continue
		}
		cur = cur*10 + int(c-'0')
		has = true
	}
	if has {
		out = append(out, object.DatasetID(cur))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
