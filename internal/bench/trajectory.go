package bench

import (
	"encoding/json"
	"os"
	"time"
)

// TrajectoryPoint is one recorded measurement of a performance trajectory —
// the benchmarks append these to BENCH_*.json files so successive revisions
// of the engine leave a comparable series behind.
type TrajectoryPoint struct {
	// Name identifies the experiment (e.g. "parallel-query").
	Name string `json:"name"`
	// Workers is the pool parallelism (0 = serial baseline).
	Workers int `json:"workers"`
	// Queries is the workload size.
	Queries int `json:"queries"`
	// WallSeconds is measured wall-clock time for the workload.
	WallSeconds float64 `json:"wall_seconds"`
	// SimSeconds is the aggregate simulated disk time charged.
	SimSeconds float64 `json:"sim_seconds"`
	// QueriesPerSecond is wall-clock throughput.
	QueriesPerSecond float64 `json:"queries_per_second"`
	// SpeedupVsSerial is wall-clock throughput relative to the serial
	// baseline of the same run (1.0 for the baseline itself).
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// NewTrajectoryPoint derives the throughput fields from raw measurements.
func NewTrajectoryPoint(name string, workers, queries int, wall, sim, serialWall time.Duration) TrajectoryPoint {
	p := TrajectoryPoint{
		Name:        name,
		Workers:     workers,
		Queries:     queries,
		WallSeconds: wall.Seconds(),
		SimSeconds:  sim.Seconds(),
	}
	if wall > 0 {
		p.QueriesPerSecond = float64(queries) / wall.Seconds()
		if serialWall > 0 {
			p.SpeedupVsSerial = serialWall.Seconds() / wall.Seconds()
		}
	}
	return p
}

// WriteTrajectory writes points as an indented JSON array to path,
// replacing any previous contents (each benchmark run records a complete,
// self-consistent series).
func WriteTrajectory(path string, points []TrajectoryPoint) error {
	data, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
