package bench

import (
	"encoding/json"
	"os"
	"time"
)

// TrajectoryPoint is one recorded measurement of a performance trajectory —
// the benchmarks append these to BENCH_*.json files so successive revisions
// of the engine leave a comparable series behind.
type TrajectoryPoint struct {
	// Name identifies the experiment (e.g. "parallel-query").
	Name string `json:"name"`
	// Workers is the pool parallelism (0 = serial baseline).
	Workers int `json:"workers"`
	// Queries is the workload size.
	Queries int `json:"queries"`
	// WallSeconds is measured wall-clock time for the workload.
	WallSeconds float64 `json:"wall_seconds"`
	// SimSeconds is the aggregate simulated disk time charged.
	SimSeconds float64 `json:"sim_seconds"`
	// QueriesPerSecond is wall-clock throughput.
	QueriesPerSecond float64 `json:"queries_per_second"`
	// SpeedupVsSerial is wall-clock throughput relative to the serial
	// baseline of the same run (1.0 for the baseline itself; omitted for
	// series that have no serial baseline, e.g. the all-pooled
	// channel-scaling sweep).
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
	// Devices and Channels record the storage topology of the point (both
	// omitted for the original single-device single-channel series).
	Devices  int `json:"devices,omitempty"`
	Channels int `json:"channels,omitempty"`
	// SimSpeedupVsBase and WallSpeedupVsBase compare this point against the
	// series' single-channel single-device point *at the same worker
	// count*: how much the topology alone shrinks simulated time and wall
	// time (0 when the series has no topology baseline).
	SimSpeedupVsBase  float64 `json:"sim_speedup_vs_base,omitempty"`
	WallSpeedupVsBase float64 `json:"wall_speedup_vs_base,omitempty"`
}

// NewTrajectoryPoint derives the throughput fields from raw measurements.
func NewTrajectoryPoint(name string, workers, queries int, wall, sim, serialWall time.Duration) TrajectoryPoint {
	p := TrajectoryPoint{
		Name:        name,
		Workers:     workers,
		Queries:     queries,
		WallSeconds: wall.Seconds(),
		SimSeconds:  sim.Seconds(),
	}
	if wall > 0 {
		p.QueriesPerSecond = float64(queries) / wall.Seconds()
		if serialWall > 0 {
			p.SpeedupVsSerial = serialWall.Seconds() / wall.Seconds()
		}
	}
	return p
}

// WriteTrajectory writes points as an indented JSON array to path,
// replacing any previous contents (each benchmark run records a complete,
// self-consistent series).
func WriteTrajectory(path string, points []TrajectoryPoint) error {
	data, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
