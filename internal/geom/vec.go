// Package geom provides the 3D geometric primitives used throughout the
// Space Odyssey engine: vectors, axis-aligned boxes, volume arithmetic and
// the query-window extension technique (Stefanakis et al., IJGIS'97) that
// lets space-oriented partitioning index volumetric objects by their center
// point without replication.
package geom

import (
	"fmt"
	"math"
)

// Dims is the dimensionality of the space. The paper's datasets and all
// experiments are 3D; the constant centralizes the few places that depend
// on it (e.g. 2^Dims octree fanout).
const Dims = 3

// Vec is a point or displacement in 3D space.
type Vec struct {
	X, Y, Z float64
}

// V constructs a Vec.
func V(x, y, z float64) Vec { return Vec{x, y, z} }

// Splat returns a Vec with all components set to s.
func Splat(s float64) Vec { return Vec{s, s, s} }

// Add returns v + o.
func (v Vec) Add(o Vec) Vec { return Vec{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Sub returns v - o.
func (v Vec) Sub(o Vec) Vec { return Vec{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Mul returns the component-wise scaling of v by s.
func (v Vec) Mul(s float64) Vec { return Vec{v.X * s, v.Y * s, v.Z * s} }

// MulVec returns the component-wise (Hadamard) product of v and o.
func (v Vec) MulVec(o Vec) Vec { return Vec{v.X * o.X, v.Y * o.Y, v.Z * o.Z} }

// Div returns the component-wise division of v by s.
func (v Vec) Div(s float64) Vec { return Vec{v.X / s, v.Y / s, v.Z / s} }

// Min returns the component-wise minimum of v and o.
func (v Vec) Min(o Vec) Vec {
	return Vec{math.Min(v.X, o.X), math.Min(v.Y, o.Y), math.Min(v.Z, o.Z)}
}

// Max returns the component-wise maximum of v and o.
func (v Vec) Max(o Vec) Vec {
	return Vec{math.Max(v.X, o.X), math.Max(v.Y, o.Y), math.Max(v.Z, o.Z)}
}

// Component returns the i-th component (0=X, 1=Y, 2=Z).
func (v Vec) Component(i int) float64 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	case 2:
		return v.Z
	}
	panic(fmt.Sprintf("geom: component index %d out of range", i))
}

// WithComponent returns a copy of v with the i-th component set to val.
func (v Vec) WithComponent(i int, val float64) Vec {
	switch i {
	case 0:
		v.X = val
	case 1:
		v.Y = val
	case 2:
		v.Z = val
	default:
		panic(fmt.Sprintf("geom: component index %d out of range", i))
	}
	return v
}

// Dot returns the dot product of v and o.
func (v Vec) Dot(o Vec) float64 { return v.X*o.X + v.Y*o.Y + v.Z*o.Z }

// Len returns the Euclidean length of v.
func (v Vec) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between v and o.
func (v Vec) Dist(o Vec) float64 { return v.Sub(o).Len() }

// Less reports whether every component of v is strictly less than o's.
func (v Vec) Less(o Vec) bool { return v.X < o.X && v.Y < o.Y && v.Z < o.Z }

// LessEq reports whether every component of v is <= o's.
func (v Vec) LessEq(o Vec) bool { return v.X <= o.X && v.Y <= o.Y && v.Z <= o.Z }

// Eq reports exact component-wise equality.
func (v Vec) Eq(o Vec) bool { return v == o }

// Finite reports whether all components are finite numbers.
func (v Vec) Finite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer.
func (v Vec) String() string { return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z) }
