package geom

import (
	"math"
	"testing"
)

// fuzzBox turns two unconstrained fuzzer vectors into a valid box by using
// one as the center and the other's magnitudes as the half-extent.
func fuzzBox(cx, cy, cz, hx, hy, hz float64) (Box, bool) {
	for _, v := range []float64{cx, cy, cz, hx, hy, hz} {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			return Box{}, false
		}
	}
	return BoxFromCenter(V(cx, cy, cz), V(math.Abs(hx), math.Abs(hy), math.Abs(hz))), true
}

// FuzzBoxIntersect checks the box-predicate algebra on arbitrary valid
// boxes: intersection is symmetric, containment implies intersection, the
// computed overlap box is consistent with the predicate, and every box
// intersects and contains itself.
func FuzzBoxIntersect(f *testing.F) {
	f.Add(0.5, 0.5, 0.5, 0.1, 0.1, 0.1, 0.5, 0.5, 0.5, 0.2, 0.2, 0.2)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.5)
	f.Add(-3.0, 2.0, 7.5, 1.0, 0.25, 2.0, 4.0, 2.0, -1.0, 8.0, 0.5, 10.0)
	f.Fuzz(func(t *testing.T,
		acx, acy, acz, ahx, ahy, ahz float64,
		bcx, bcy, bcz, bhx, bhy, bhz float64) {
		a, ok := fuzzBox(acx, acy, acz, ahx, ahy, ahz)
		if !ok {
			t.Skip()
		}
		b, ok := fuzzBox(bcx, bcy, bcz, bhx, bhy, bhz)
		if !ok {
			t.Skip()
		}

		if a.Intersects(b) != b.Intersects(a) {
			t.Fatalf("intersection not symmetric: %v vs %v", a, b)
		}
		if !a.Intersects(a) || !a.Contains(a) {
			t.Fatalf("box does not intersect/contain itself: %v", a)
		}
		if a.Contains(b) && !a.Intersects(b) {
			t.Fatalf("containment without intersection: %v contains %v", a, b)
		}
		if b.Contains(a) && !b.Intersects(a) {
			t.Fatalf("containment without intersection: %v contains %v", b, a)
		}

		inter, nonEmpty := a.Intersection(b)
		if nonEmpty != a.Intersects(b) {
			t.Fatalf("Intersection non-empty=%v disagrees with Intersects=%v for %v, %v",
				nonEmpty, a.Intersects(b), a, b)
		}
		if nonEmpty {
			if !inter.Valid() {
				t.Fatalf("invalid overlap box %v", inter)
			}
			if !a.Contains(inter) || !b.Contains(inter) {
				t.Fatalf("overlap %v escapes its operands %v, %v", inter, a, b)
			}
			// The overlap of x with itself is x.
			again, ok := inter.Intersection(inter)
			if !ok || again != inter {
				t.Fatalf("self-intersection of %v changed it", inter)
			}
		}
		if d := a.Dist(b); (d == 0) != a.Intersects(b) {
			t.Fatalf("Dist=%v disagrees with Intersects=%v for %v, %v",
				d, a.Intersects(b), a, b)
		}

		// The union must contain both operands and intersect both.
		u := a.Union(b)
		if !u.Contains(a) || !u.Contains(b) {
			t.Fatalf("union %v misses an operand", u)
		}
	})
}
