package geom

import (
	"fmt"
	"math"
)

// Box is a closed axis-aligned box [Min, Max] in 3D space. A Box is valid
// when Min.LessEq(Max); the zero Box is the degenerate point at the origin.
type Box struct {
	Min, Max Vec
}

// NewBox returns the box spanning [min, max]. It panics if min > max in any
// dimension, which always indicates a programming error in callers.
func NewBox(min, max Vec) Box {
	if !min.LessEq(max) {
		panic(fmt.Sprintf("geom: invalid box min=%v max=%v", min, max))
	}
	return Box{Min: min, Max: max}
}

// BoxFromCenter returns the box centered at c with the given half-extent in
// each dimension. Negative half-extents are invalid.
func BoxFromCenter(c, halfExtent Vec) Box {
	return NewBox(c.Sub(halfExtent), c.Add(halfExtent))
}

// Cube returns the axis-aligned cube centered at c with side length side.
func Cube(c Vec, side float64) Box {
	return BoxFromCenter(c, Splat(side/2))
}

// UnitBox returns the box [0,1]^3.
func UnitBox() Box { return Box{Min: Vec{}, Max: Splat(1)} }

// Valid reports whether the box has Min <= Max in every dimension and all
// finite coordinates.
func (b Box) Valid() bool {
	return b.Min.Finite() && b.Max.Finite() && b.Min.LessEq(b.Max)
}

// Center returns the box's center point.
func (b Box) Center() Vec { return b.Min.Add(b.Max).Mul(0.5) }

// Size returns the box's edge lengths.
func (b Box) Size() Vec { return b.Max.Sub(b.Min) }

// HalfExtent returns half the box's edge lengths.
func (b Box) HalfExtent() Vec { return b.Size().Mul(0.5) }

// Volume returns the box's volume.
func (b Box) Volume() float64 {
	s := b.Size()
	return s.X * s.Y * s.Z
}

// Intersects reports whether b and o share at least one point (closed-box
// semantics: touching faces intersect).
func (b Box) Intersects(o Box) bool {
	return b.Min.X <= o.Max.X && o.Min.X <= b.Max.X &&
		b.Min.Y <= o.Max.Y && o.Min.Y <= b.Max.Y &&
		b.Min.Z <= o.Max.Z && o.Min.Z <= b.Max.Z
}

// Contains reports whether o lies entirely inside b.
func (b Box) Contains(o Box) bool {
	return b.Min.LessEq(o.Min) && o.Max.LessEq(b.Max)
}

// ContainsPoint reports whether point p lies inside b (closed).
func (b Box) ContainsPoint(p Vec) bool {
	return b.Min.LessEq(p) && p.LessEq(b.Max)
}

// ContainsPointHalfOpen reports whether p lies in the half-open box
// [Min, Max). Space-oriented partitioning uses half-open cells so that a
// point on a shared cell boundary belongs to exactly one cell.
func (b Box) ContainsPointHalfOpen(p Vec) bool {
	return b.Min.X <= p.X && p.X < b.Max.X &&
		b.Min.Y <= p.Y && p.Y < b.Max.Y &&
		b.Min.Z <= p.Z && p.Z < b.Max.Z
}

// Intersection returns the overlap of b and o and whether it is non-empty.
func (b Box) Intersection(o Box) (Box, bool) {
	min := b.Min.Max(o.Min)
	max := b.Max.Min(o.Max)
	if !min.LessEq(max) {
		return Box{}, false
	}
	return Box{Min: min, Max: max}, true
}

// Union returns the smallest box containing both b and o.
func (b Box) Union(o Box) Box {
	return Box{Min: b.Min.Min(o.Min), Max: b.Max.Max(o.Max)}
}

// Expand returns b grown by ext on every side (the query-window extension:
// a query box extended by the per-dataset maximum object half-extent is
// guaranteed to cover the centers of all intersecting objects).
func (b Box) Expand(ext Vec) Box {
	return Box{Min: b.Min.Sub(ext), Max: b.Max.Add(ext)}
}

// Clip returns b clipped to bounds. The second result is false when b lies
// entirely outside bounds.
func (b Box) Clip(bounds Box) (Box, bool) { return b.Intersection(bounds) }

// LongestSide returns the length of the box's longest edge.
func (b Box) LongestSide() float64 {
	s := b.Size()
	return math.Max(s.X, math.Max(s.Y, s.Z))
}

// Octant returns the i-th of the 2^3 equal sub-boxes of b, ordered by the
// bit pattern (x, y, z) of i. It panics when i is out of range.
func (b Box) Octant(i int) Box {
	if i < 0 || i >= 8 {
		panic(fmt.Sprintf("geom: octant index %d out of range", i))
	}
	c := b.Center()
	min, max := b.Min, b.Max
	var lo, hi Vec
	if i&1 == 0 {
		lo.X, hi.X = min.X, c.X
	} else {
		lo.X, hi.X = c.X, max.X
	}
	if i&2 == 0 {
		lo.Y, hi.Y = min.Y, c.Y
	} else {
		lo.Y, hi.Y = c.Y, max.Y
	}
	if i&4 == 0 {
		lo.Z, hi.Z = min.Z, c.Z
	} else {
		lo.Z, hi.Z = c.Z, max.Z
	}
	return Box{Min: lo, Max: hi}
}

// Subdivide splits b into k^3 equal cells (k per dimension) and returns them
// ordered x-fastest. k must be >= 1. The cells tile b exactly: cell (i,j,l)
// spans [Min + step*(i,j,l), Min + step*(i+1,j+1,l+1)].
func (b Box) Subdivide(k int) []Box {
	if k < 1 {
		panic(fmt.Sprintf("geom: subdivide k=%d must be >= 1", k))
	}
	step := b.Size().Div(float64(k))
	cells := make([]Box, 0, k*k*k)
	for z := 0; z < k; z++ {
		for y := 0; y < k; y++ {
			for x := 0; x < k; x++ {
				lo := b.Min.Add(Vec{step.X * float64(x), step.Y * float64(y), step.Z * float64(z)})
				hi := b.Min.Add(Vec{step.X * float64(x+1), step.Y * float64(y+1), step.Z * float64(z+1)})
				// Snap the outer faces to the parent box to avoid
				// floating-point gaps at the boundary.
				if x == k-1 {
					hi.X = b.Max.X
				}
				if y == k-1 {
					hi.Y = b.Max.Y
				}
				if z == k-1 {
					hi.Z = b.Max.Z
				}
				cells = append(cells, Box{Min: lo, Max: hi})
			}
		}
	}
	return cells
}

// CellIndex returns the (i,j,l) grid coordinates of the cell of a k^3
// subdivision of b that contains point p under half-open semantics, clamping
// p to the box so boundary points map to the last cell.
func (b Box) CellIndex(k int, p Vec) (ix, iy, iz int) {
	step := b.Size().Div(float64(k))
	idx := func(coord, lo, st float64) int {
		if st <= 0 {
			return 0
		}
		i := int((coord - lo) / st)
		if i < 0 {
			i = 0
		}
		if i >= k {
			i = k - 1
		}
		return i
	}
	return idx(p.X, b.Min.X, step.X), idx(p.Y, b.Min.Y, step.Y), idx(p.Z, b.Min.Z, step.Z)
}

// Dist returns the minimum Euclidean distance between b and o; zero when
// they intersect.
func (b Box) Dist(o Box) float64 {
	var d2 float64
	for i := 0; i < Dims; i++ {
		lo1, hi1 := b.Min.Component(i), b.Max.Component(i)
		lo2, hi2 := o.Min.Component(i), o.Max.Component(i)
		switch {
		case hi1 < lo2:
			d := lo2 - hi1
			d2 += d * d
		case hi2 < lo1:
			d := lo1 - hi2
			d2 += d * d
		}
	}
	return math.Sqrt(d2)
}

// String implements fmt.Stringer.
func (b Box) String() string { return fmt.Sprintf("[%v — %v]", b.Min, b.Max) }
