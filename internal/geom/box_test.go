package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randBox returns a valid random box inside [-scale, scale]^3.
func randBox(r *rand.Rand, scale float64) Box {
	a := V(r.Float64()*2*scale-scale, r.Float64()*2*scale-scale, r.Float64()*2*scale-scale)
	b := V(r.Float64()*2*scale-scale, r.Float64()*2*scale-scale, r.Float64()*2*scale-scale)
	return Box{Min: a.Min(b), Max: a.Max(b)}
}

func TestNewBoxPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBox with min > max did not panic")
		}
	}()
	NewBox(V(1, 0, 0), V(0, 1, 1))
}

func TestBoxBasics(t *testing.T) {
	b := NewBox(V(0, 0, 0), V(2, 4, 6))
	if got := b.Center(); got != V(1, 2, 3) {
		t.Errorf("Center = %v", got)
	}
	if got := b.Size(); got != V(2, 4, 6) {
		t.Errorf("Size = %v", got)
	}
	if got := b.HalfExtent(); got != V(1, 2, 3) {
		t.Errorf("HalfExtent = %v", got)
	}
	if got := b.Volume(); got != 48 {
		t.Errorf("Volume = %v", got)
	}
	if got := b.LongestSide(); got != 6 {
		t.Errorf("LongestSide = %v", got)
	}
	if !b.Valid() {
		t.Error("valid box reported invalid")
	}
}

func TestBoxFromCenterAndCube(t *testing.T) {
	b := BoxFromCenter(V(1, 1, 1), V(0.5, 1, 1.5))
	if b.Min != V(0.5, 0, -0.5) || b.Max != V(1.5, 2, 2.5) {
		t.Errorf("BoxFromCenter = %v", b)
	}
	c := Cube(V(0, 0, 0), 2)
	if c.Min != V(-1, -1, -1) || c.Max != V(1, 1, 1) {
		t.Errorf("Cube = %v", c)
	}
}

func TestBoxIntersects(t *testing.T) {
	a := NewBox(V(0, 0, 0), V(1, 1, 1))
	cases := []struct {
		b    Box
		want bool
	}{
		{NewBox(V(0.5, 0.5, 0.5), V(2, 2, 2)), true},
		{NewBox(V(1, 1, 1), V(2, 2, 2)), true},    // touching corner
		{NewBox(V(1.1, 0, 0), V(2, 1, 1)), false}, // separated in x
		{NewBox(V(0, 1.1, 0), V(1, 2, 1)), false}, // separated in y
		{NewBox(V(0, 0, 1.1), V(1, 1, 2)), false}, // separated in z
		{a, true}, // self
	}
	for i, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("case %d: Intersects not symmetric", i)
		}
	}
}

func TestBoxContains(t *testing.T) {
	a := NewBox(V(0, 0, 0), V(2, 2, 2))
	if !a.Contains(NewBox(V(0.5, 0.5, 0.5), V(1, 1, 1))) {
		t.Error("Contains inner box = false")
	}
	if !a.Contains(a) {
		t.Error("Contains self = false")
	}
	if a.Contains(NewBox(V(1, 1, 1), V(3, 2, 2))) {
		t.Error("Contains overflowing box = true")
	}
	if !a.ContainsPoint(V(2, 2, 2)) {
		t.Error("closed ContainsPoint boundary = false")
	}
	if a.ContainsPointHalfOpen(V(2, 2, 2)) {
		t.Error("half-open ContainsPoint max corner = true")
	}
	if !a.ContainsPointHalfOpen(V(0, 0, 0)) {
		t.Error("half-open ContainsPoint min corner = false")
	}
}

func TestBoxIntersectionUnion(t *testing.T) {
	a := NewBox(V(0, 0, 0), V(2, 2, 2))
	b := NewBox(V(1, 1, 1), V(3, 3, 3))
	got, ok := a.Intersection(b)
	if !ok || got.Min != V(1, 1, 1) || got.Max != V(2, 2, 2) {
		t.Errorf("Intersection = %v ok=%v", got, ok)
	}
	if _, ok := a.Intersection(NewBox(V(5, 5, 5), V(6, 6, 6))); ok {
		t.Error("disjoint Intersection ok = true")
	}
	u := a.Union(b)
	if u.Min != V(0, 0, 0) || u.Max != V(3, 3, 3) {
		t.Errorf("Union = %v", u)
	}
}

func TestBoxExpand(t *testing.T) {
	b := NewBox(V(0, 0, 0), V(1, 1, 1)).Expand(V(0.5, 1, 0))
	if b.Min != V(-0.5, -1, 0) || b.Max != V(1.5, 2, 1) {
		t.Errorf("Expand = %v", b)
	}
}

func TestBoxOctants(t *testing.T) {
	b := NewBox(V(0, 0, 0), V(2, 2, 2))
	var vol float64
	for i := 0; i < 8; i++ {
		o := b.Octant(i)
		vol += o.Volume()
		if !b.Contains(o) {
			t.Errorf("octant %d %v outside parent", i, o)
		}
	}
	if math.Abs(vol-b.Volume()) > 1e-12 {
		t.Errorf("octant volumes sum to %v, want %v", vol, b.Volume())
	}
	if b.Octant(0).Min != b.Min {
		t.Error("octant 0 does not start at Min")
	}
	if b.Octant(7).Max != b.Max {
		t.Error("octant 7 does not end at Max")
	}
}

func TestBoxOctantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Octant(8) did not panic")
		}
	}()
	UnitBox().Octant(8)
}

func TestBoxSubdivide(t *testing.T) {
	b := NewBox(V(0, 0, 0), V(3, 3, 3))
	for _, k := range []int{1, 2, 3, 4} {
		cells := b.Subdivide(k)
		if len(cells) != k*k*k {
			t.Fatalf("Subdivide(%d) returned %d cells", k, len(cells))
		}
		var vol float64
		for _, c := range cells {
			if !b.Contains(c) {
				t.Errorf("k=%d: cell %v outside parent", k, c)
			}
			vol += c.Volume()
		}
		if math.Abs(vol-b.Volume()) > 1e-9 {
			t.Errorf("k=%d: cell volumes sum to %v, want %v", k, vol, b.Volume())
		}
		// Outer faces snapped exactly.
		if cells[0].Min != b.Min {
			t.Errorf("k=%d: first cell min %v != box min", k, cells[0].Min)
		}
		if cells[len(cells)-1].Max != b.Max {
			t.Errorf("k=%d: last cell max %v != box max", k, cells[len(cells)-1].Max)
		}
	}
}

func TestBoxSubdividePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Subdivide(0) did not panic")
		}
	}()
	UnitBox().Subdivide(0)
}

func TestBoxCellIndex(t *testing.T) {
	b := NewBox(V(0, 0, 0), V(10, 10, 10))
	ix, iy, iz := b.CellIndex(5, V(0, 5, 9.999))
	if ix != 0 || iy != 2 || iz != 4 {
		t.Errorf("CellIndex = (%d,%d,%d)", ix, iy, iz)
	}
	// Boundary max clamps into the last cell.
	ix, iy, iz = b.CellIndex(5, V(10, 10, 10))
	if ix != 4 || iy != 4 || iz != 4 {
		t.Errorf("CellIndex at max = (%d,%d,%d)", ix, iy, iz)
	}
	// Below-min clamps to 0.
	ix, _, _ = b.CellIndex(5, V(-1, 0, 0))
	if ix != 0 {
		t.Errorf("CellIndex below min = %d", ix)
	}
}

// Property: every point of a k^3 subdivision belongs (half-open) to exactly
// the cell CellIndex names, and to no other cell.
func TestSubdivideCellIndexAgreeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	b := NewBox(V(-5, -5, -5), V(7, 9, 11))
	for _, k := range []int{1, 2, 4} {
		cells := b.Subdivide(k)
		for trial := 0; trial < 300; trial++ {
			p := V(
				b.Min.X+r.Float64()*b.Size().X,
				b.Min.Y+r.Float64()*b.Size().Y,
				b.Min.Z+r.Float64()*b.Size().Z,
			)
			ix, iy, iz := b.CellIndex(k, p)
			idx := (iz*k+iy)*k + ix
			count := 0
			for _, c := range cells {
				if c.ContainsPointHalfOpen(p) {
					count++
				}
			}
			// Points exactly on inner boundaries belong to 1 cell; points on
			// the outer max faces belong to 0 under half-open semantics but
			// CellIndex still clamps them into the last cell.
			if count > 1 {
				t.Fatalf("k=%d: point %v in %d cells", k, p, count)
			}
			if count == 1 && !cells[idx].ContainsPointHalfOpen(p) {
				t.Fatalf("k=%d: CellIndex cell %d does not contain %v", k, idx, p)
			}
		}
	}
}

// Property: Intersection is commutative and contained in both operands;
// Union contains both operands.
func TestBoxIntersectionUnionProperty(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		a, b := randBox(r, 10), randBox(r, 10)
		u := a.Union(b)
		if !u.Contains(a) || !u.Contains(b) {
			return false
		}
		i1, ok1 := a.Intersection(b)
		i2, ok2 := b.Intersection(a)
		if ok1 != ok2 {
			return false
		}
		if ok1 {
			return i1 == i2 && a.Contains(i1) && b.Contains(i1)
		}
		return !a.Intersects(b)
	}
	for trial := 0; trial < 1000; trial++ {
		if !f() {
			t.Fatalf("property violated on trial %d", trial)
		}
	}
}

// Property: Intersects is equivalent to Intersection returning ok.
func TestIntersectsMatchesIntersectionProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(5))}
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz, dx, dy, dz float64) bool {
		clamp := func(v float64) float64 { return math.Mod(v, 100) }
		p1 := V(clamp(ax), clamp(ay), clamp(az))
		p2 := V(clamp(bx), clamp(by), clamp(bz))
		p3 := V(clamp(cx), clamp(cy), clamp(cz))
		p4 := V(clamp(dx), clamp(dy), clamp(dz))
		if !p1.Finite() || !p2.Finite() || !p3.Finite() || !p4.Finite() {
			return true
		}
		a := Box{Min: p1.Min(p2), Max: p1.Max(p2)}
		b := Box{Min: p3.Min(p4), Max: p3.Max(p4)}
		_, ok := a.Intersection(b)
		return ok == a.Intersects(b)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the query-window extension is sound — if an object's box
// intersects query q, then the object's center lies inside q extended by the
// object's half extent.
func TestQueryWindowExtensionSoundProperty(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 2000; trial++ {
		q := randBox(r, 10)
		center := V(r.Float64()*20-10, r.Float64()*20-10, r.Float64()*20-10)
		he := V(r.Float64(), r.Float64(), r.Float64())
		obj := BoxFromCenter(center, he)
		if obj.Intersects(q) && !q.Expand(he).ContainsPoint(center) {
			t.Fatalf("extension unsound: q=%v obj=%v", q, obj)
		}
	}
}
