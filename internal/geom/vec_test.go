package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecArithmetic(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, 5, 6)
	if got := a.Add(b); got != V(5, 7, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != V(3, 3, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(2); got != V(2, 4, 6) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Div(2); got != V(0.5, 1, 1.5) {
		t.Errorf("Div = %v", got)
	}
	if got := a.MulVec(b); got != V(4, 10, 18) {
		t.Errorf("MulVec = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v", got)
	}
}

func TestVecMinMax(t *testing.T) {
	a := V(1, 9, 3)
	b := V(4, 2, 8)
	if got := a.Min(b); got != V(1, 2, 3) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != V(4, 9, 8) {
		t.Errorf("Max = %v", got)
	}
}

func TestVecComponent(t *testing.T) {
	v := V(7, 8, 9)
	for i, want := range []float64{7, 8, 9} {
		if got := v.Component(i); got != want {
			t.Errorf("Component(%d) = %v, want %v", i, got, want)
		}
	}
	for i := 0; i < Dims; i++ {
		got := v.WithComponent(i, 42)
		if got.Component(i) != 42 {
			t.Errorf("WithComponent(%d) did not set component", i)
		}
		for j := 0; j < Dims; j++ {
			if j != i && got.Component(j) != v.Component(j) {
				t.Errorf("WithComponent(%d) disturbed component %d", i, j)
			}
		}
	}
}

func TestVecComponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Component(3) did not panic")
		}
	}()
	V(0, 0, 0).Component(3)
}

func TestVecLenDist(t *testing.T) {
	if got := V(3, 4, 0).Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
	if got := V(1, 1, 1).Dist(V(1, 1, 1)); got != 0 {
		t.Errorf("Dist(self) = %v", got)
	}
	if got := V(0, 0, 0).Dist(V(0, 0, 2)); got != 2 {
		t.Errorf("Dist = %v", got)
	}
}

func TestVecOrdering(t *testing.T) {
	if !V(0, 0, 0).Less(V(1, 1, 1)) {
		t.Error("Less false for strictly smaller")
	}
	if V(0, 2, 0).Less(V(1, 1, 1)) {
		t.Error("Less true despite a larger component")
	}
	if !V(1, 1, 1).LessEq(V(1, 1, 1)) {
		t.Error("LessEq false for equal")
	}
}

func TestVecFinite(t *testing.T) {
	if !V(1, 2, 3).Finite() {
		t.Error("finite vec reported non-finite")
	}
	for _, bad := range []Vec{
		{math.NaN(), 0, 0}, {0, math.Inf(1), 0}, {0, 0, math.Inf(-1)},
	} {
		if bad.Finite() {
			t.Errorf("%v reported finite", bad)
		}
	}
}

func TestSplat(t *testing.T) {
	if got := Splat(2.5); got != V(2.5, 2.5, 2.5) {
		t.Errorf("Splat = %v", got)
	}
}

// Property: Add and Sub are inverses.
func TestVecAddSubInverseProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V(ax, ay, az), V(bx, by, bz)
		if !a.Finite() || !b.Finite() {
			return true
		}
		// Limit magnitudes: near math.MaxFloat64 the addition overflows and
		// the inverse property cannot hold for any implementation.
		for i := 0; i < Dims; i++ {
			if math.Abs(a.Component(i)) > 1e100 || math.Abs(b.Component(i)) > 1e100 {
				return true
			}
		}
		got := a.Add(b).Sub(b)
		// Floating point: (a+b)-b loses the low bits of a when |b| >> |a|,
		// so tolerance must be relative to the larger operand.
		tol := func(x, y float64) float64 {
			return 1e-9 * math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
		}
		return math.Abs(got.X-a.X) <= tol(a.X, b.X) &&
			math.Abs(got.Y-a.Y) <= tol(a.Y, b.Y) &&
			math.Abs(got.Z-a.Z) <= tol(a.Z, b.Z)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Min/Max are commutative and bound their inputs.
func TestVecMinMaxProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V(ax, ay, az), V(bx, by, bz)
		if !a.Finite() || !b.Finite() {
			return true
		}
		mn, mx := a.Min(b), a.Max(b)
		return mn == b.Min(a) && mx == b.Max(a) &&
			mn.LessEq(a) && mn.LessEq(b) && a.LessEq(mx) && b.LessEq(mx)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
