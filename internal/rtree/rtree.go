package rtree

import (
	"fmt"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/simdisk"
)

// Config tunes the bulk load.
type Config struct {
	// Fanout is the number of entries per internal node (max MaxFanout).
	// Default 64.
	Fanout int
	// LeafCapacity is the number of objects per leaf page. Default: a full
	// object page.
	LeafCapacity int
	// SortPasses is how many external-sort write+read passes the build
	// charges. STR sorts the data once per dimension and an external sort
	// is run formation plus a merge pass, so the default is 6 (2 per
	// dimension). 0 disables the charge — used for tiny in-memory
	// directories like FLAT's seed index.
	SortPasses int
}

// DefaultConfig returns the standard STR configuration.
func DefaultConfig() Config {
	return Config{Fanout: 64, LeafCapacity: object.PageCapacity, SortPasses: 6}
}

func (c Config) withDefaults() (Config, error) {
	if c.Fanout == 0 {
		c.Fanout = 64
	}
	if c.Fanout < 2 || c.Fanout > MaxFanout {
		return c, fmt.Errorf("rtree: fanout %d outside [2,%d]", c.Fanout, MaxFanout)
	}
	if c.LeafCapacity == 0 {
		c.LeafCapacity = object.PageCapacity
	}
	if c.LeafCapacity < 1 || c.LeafCapacity > object.PageCapacity {
		return c, fmt.Errorf("rtree: leaf capacity %d outside [1,%d]",
			c.LeafCapacity, object.PageCapacity)
	}
	if c.SortPasses < 0 {
		return c, fmt.Errorf("rtree: negative sort passes %d", c.SortPasses)
	}
	return c, nil
}

// Tree is a bulk-loaded R-tree whose leaf and node pages live on the
// simulated disk.
type Tree struct {
	dev      simdisk.Storage
	file     simdisk.FileID
	rootPage int64
	height   int // number of node levels above the leaves (0 = empty tree)
	numObjs  int
	numLeafs int
	bounds   geom.Box
}

// Build bulk-loads a tree over objs (which it reorders in place). The
// caller has already paid for reading objs (e.g. raw-file scans); Build
// charges the external sort passes plus sequential writes of all leaf and
// node pages.
func Build(dev simdisk.Storage, name string, objs []object.Object, cfg Config) (*Tree, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := ChargeExternalSort(dev, object.PagesFor(len(objs)), cfg.SortPasses); err != nil {
		return nil, fmt.Errorf("rtree sort: %w", err)
	}

	t := &Tree{dev: dev, file: dev.CreateFile(name), numObjs: len(objs)}
	if len(objs) == 0 {
		return t, nil
	}

	// Pack and write leaf pages in STR order.
	leaves := STRPack(objs, cfg.LeafCapacity)
	t.numLeafs = len(leaves)
	entries := make([]entry, 0, len(leaves))
	for _, leaf := range leaves {
		page, err := object.EncodePage(leaf)
		if err != nil {
			return nil, err
		}
		idx, err := dev.AppendPage(t.file, page)
		if err != nil {
			return nil, err
		}
		mbr := leaf[0].Box()
		for _, o := range leaf[1:] {
			mbr = mbr.Union(o.Box())
		}
		entries = append(entries, entry{box: mbr, child: idx})
	}
	t.bounds = entries[0].box
	for _, e := range entries[1:] {
		t.bounds = t.bounds.Union(e.box)
	}

	// Build node levels bottom-up until a single root remains.
	level := 0
	for len(entries) > 1 || level == 0 {
		next := make([]entry, 0, (len(entries)+cfg.Fanout-1)/cfg.Fanout)
		for off := 0; off < len(entries); off += cfg.Fanout {
			end := min(off+cfg.Fanout, len(entries))
			group := entries[off:end]
			page, err := encodeNode(group, level)
			if err != nil {
				return nil, err
			}
			idx, err := dev.AppendPage(t.file, page)
			if err != nil {
				return nil, err
			}
			mbr := group[0].box
			for _, e := range group[1:] {
				mbr = mbr.Union(e.box)
			}
			next = append(next, entry{box: mbr, child: idx})
		}
		entries = next
		level++
		if len(entries) == 1 {
			break
		}
	}
	t.rootPage = entries[0].child
	t.height = level
	return t, nil
}

// NumObjects returns the number of indexed objects.
func (t *Tree) NumObjects() int { return t.numObjs }

// NumLeaves returns the number of leaf pages.
func (t *Tree) NumLeaves() int { return t.numLeafs }

// Height returns the number of node levels above the leaves.
func (t *Tree) Height() int { return t.height }

// Bounds returns the root MBR (zero Box for an empty tree).
func (t *Tree) Bounds() geom.Box { return t.bounds }

// Query returns all objects intersecting q, optionally restricted to the
// datasets in filter (nil = no filtering). Every node and leaf page visited
// costs a device read.
func (t *Tree) Query(q geom.Box, filter map[object.DatasetID]bool) ([]object.Object, error) {
	var out []object.Object
	err := t.Walk(q, func(o object.Object) error {
		if filter == nil || filter[o.Dataset] {
			out = append(out, o)
		}
		return nil
	})
	return out, err
}

// Walk streams every object intersecting q to fn.
func (t *Tree) Walk(q geom.Box, fn func(object.Object) error) error {
	if t.numObjs == 0 {
		return nil
	}
	buf := make([]byte, simdisk.PageSize)
	var visit func(page int64) error
	visit = func(page int64) error {
		if err := t.dev.ReadPage(t.file, page, buf); err != nil {
			return err
		}
		entries, level, err := decodeNode(buf)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.box.Intersects(q) {
				continue
			}
			if level > 0 {
				if err := visit(e.child); err != nil {
					return err
				}
				continue
			}
			// level 0: child is a leaf object page.
			leafBuf := make([]byte, simdisk.PageSize)
			if err := t.dev.ReadPage(t.file, e.child, leafBuf); err != nil {
				return err
			}
			objs, err := object.DecodePage(leafBuf)
			if err != nil {
				return err
			}
			for _, o := range objs {
				if !o.Intersects(q) {
					continue
				}
				if err := fn(o); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return visit(t.rootPage)
}

// FirstHit descends the tree and returns the first object whose box
// intersects q, reading only the node and leaf pages on one root-to-leaf
// path per subtree probed. FLAT's seed phase uses it: finding *one*
// intersecting element is much cheaper than enumerating all of them.
func (t *Tree) FirstHit(q geom.Box) (object.Object, bool, error) {
	if t.numObjs == 0 {
		return object.Object{}, false, nil
	}
	buf := make([]byte, simdisk.PageSize)
	var visit func(page int64) (object.Object, bool, error)
	visit = func(page int64) (object.Object, bool, error) {
		if err := t.dev.ReadPage(t.file, page, buf); err != nil {
			return object.Object{}, false, err
		}
		entries, level, err := decodeNode(buf)
		if err != nil {
			return object.Object{}, false, err
		}
		for _, e := range entries {
			if !e.box.Intersects(q) {
				continue
			}
			if level > 0 {
				o, ok, err := visit(e.child)
				if err != nil || ok {
					return o, ok, err
				}
				continue
			}
			leafBuf := make([]byte, simdisk.PageSize)
			if err := t.dev.ReadPage(t.file, e.child, leafBuf); err != nil {
				return object.Object{}, false, err
			}
			objs, err := object.DecodePage(leafBuf)
			if err != nil {
				return object.Object{}, false, err
			}
			for _, o := range objs {
				if o.Intersects(q) {
					return o, true, nil
				}
			}
		}
		return object.Object{}, false, nil
	}
	return visit(t.rootPage)
}

// LeafMBRs returns the MBR and page index of every leaf by scanning the
// level-0 node pages. FLAT's builder uses it; tests use it for invariants.
func (t *Tree) LeafMBRs() ([]geom.Box, []int64, error) {
	var boxes []geom.Box
	var pages []int64
	if t.numObjs == 0 {
		return nil, nil, nil
	}
	buf := make([]byte, simdisk.PageSize)
	var visit func(page int64) error
	visit = func(page int64) error {
		if err := t.dev.ReadPage(t.file, page, buf); err != nil {
			return err
		}
		entries, level, err := decodeNode(buf)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if level > 0 {
				if err := visit(e.child); err != nil {
					return err
				}
			} else {
				boxes = append(boxes, e.box)
				pages = append(pages, e.child)
			}
		}
		return nil
	}
	if err := visit(t.rootPage); err != nil {
		return nil, nil, err
	}
	return boxes, pages, nil
}
