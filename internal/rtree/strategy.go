package rtree

import (
	"fmt"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/rawfile"
	"spaceodyssey/internal/simdisk"
)

// readAll scans raw files into memory, charging the sequential read.
func readAll(raws []*rawfile.Raw) ([]object.Object, error) {
	total := 0
	for _, r := range raws {
		total += r.NumObjects()
	}
	objs := make([]object.Object, 0, total)
	for _, r := range raws {
		err := r.Scan(func(o object.Object) error {
			objs = append(objs, o)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return objs, nil
}

// AllInOne is the RTree-Ain1 strategy: one tree over all datasets.
type AllInOne struct {
	dev  simdisk.Storage
	raws []*rawfile.Raw
	cfg  Config
	tree *Tree
}

// NewAllInOne creates the unbuilt engine.
func NewAllInOne(dev simdisk.Storage, raws []*rawfile.Raw, cfg Config) *AllInOne {
	return &AllInOne{dev: dev, raws: raws, cfg: cfg}
}

// Name implements engine.Engine.
func (e *AllInOne) Name() string { return "RTree-Ain1" }

// Build implements engine.Engine: scans all raw files and bulk-loads one
// tree over the union.
func (e *AllInOne) Build() error {
	if e.tree != nil {
		return nil
	}
	objs, err := readAll(e.raws)
	if err != nil {
		return err
	}
	tree, err := Build(e.dev, "rtree-ain1", objs, e.cfg)
	if err != nil {
		return err
	}
	e.tree = tree
	return nil
}

// Query implements engine.Engine.
func (e *AllInOne) Query(q geom.Box, datasets []object.DatasetID) ([]object.Object, error) {
	if e.tree == nil {
		return nil, fmt.Errorf("rtree: query before build")
	}
	filter := make(map[object.DatasetID]bool, len(datasets))
	for _, ds := range datasets {
		filter[ds] = true
	}
	return e.tree.Query(q, filter)
}

// Tree exposes the built tree (nil before Build).
func (e *AllInOne) Tree() *Tree { return e.tree }

// OneForEach is the RTree-1fE strategy: one tree per dataset; queries probe
// only the requested datasets' trees.
type OneForEach struct {
	dev   simdisk.Storage
	raws  map[object.DatasetID]*rawfile.Raw
	cfg   Config
	trees map[object.DatasetID]*Tree
}

// NewOneForEach creates the unbuilt engine.
func NewOneForEach(dev simdisk.Storage, raws []*rawfile.Raw, cfg Config) *OneForEach {
	m := make(map[object.DatasetID]*rawfile.Raw, len(raws))
	for _, r := range raws {
		m[r.Dataset()] = r
	}
	return &OneForEach{dev: dev, raws: m, cfg: cfg}
}

// Name implements engine.Engine.
func (e *OneForEach) Name() string { return "RTree-1fE" }

// Build implements engine.Engine.
func (e *OneForEach) Build() error {
	if e.trees != nil {
		return nil
	}
	trees := make(map[object.DatasetID]*Tree, len(e.raws))
	for ds, raw := range e.raws {
		objs, err := readAll([]*rawfile.Raw{raw})
		if err != nil {
			return err
		}
		tree, err := Build(e.dev, fmt.Sprintf("rtree-ds%d", ds), objs, e.cfg)
		if err != nil {
			return err
		}
		trees[ds] = tree
	}
	e.trees = trees
	return nil
}

// Query implements engine.Engine.
func (e *OneForEach) Query(q geom.Box, datasets []object.DatasetID) ([]object.Object, error) {
	if e.trees == nil {
		return nil, fmt.Errorf("rtree: query before build")
	}
	var out []object.Object
	for _, ds := range datasets {
		tree, ok := e.trees[ds]
		if !ok {
			return nil, fmt.Errorf("rtree: unknown dataset %d", ds)
		}
		objs, err := tree.Query(q, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, objs...)
	}
	return out, nil
}
