package rtree

import (
	"testing"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/simdisk"
)

func TestFirstHit(t *testing.T) {
	tree, objs, dev := buildTestTree(t, 4000, 51)

	// A query centered on a known object must return some intersecting
	// object, with far fewer reads than a full query.
	q := geom.Cube(objs[10].Center, 0.02)
	dev.ResetStats()
	hit, found, err := tree.FirstHit(q)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("FirstHit missed a populated region")
	}
	if !hit.Intersects(q) {
		t.Fatalf("FirstHit returned non-intersecting object %d", hit.ID)
	}
	firstReads := dev.Stats().PageReads

	dev.ResetStats()
	all, err := tree.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	fullReads := dev.Stats().PageReads
	if len(all) > 1 && firstReads >= fullReads {
		t.Fatalf("FirstHit read %d pages, full query %d — no early exit", firstReads, fullReads)
	}

	// A query in empty space finds nothing.
	empty := geom.Cube(geom.V(-5, -5, -5), 0.1)
	if _, found, err := tree.FirstHit(empty); err != nil || found {
		t.Fatalf("empty-space FirstHit: found=%v err=%v", found, err)
	}
}

func TestFirstHitEmptyTree(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	tree, err := Build(dev, "e", nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, found, err := tree.FirstHit(geom.UnitBox()); err != nil || found {
		t.Fatalf("empty tree FirstHit: found=%v err=%v", found, err)
	}
}

func TestAllInOneTreeAccessor(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	raws := mkRaws(t, dev, 2, 200, 52)
	eng := NewAllInOne(dev, raws, DefaultConfig())
	if eng.Tree() != nil {
		t.Fatal("Tree non-nil before build")
	}
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	if eng.Tree() == nil || eng.Tree().NumObjects() != 400 {
		t.Fatal("Tree accessor wrong after build")
	}
}

func TestFirstHitPropagatesFault(t *testing.T) {
	tree, _, dev := buildTestTree(t, 2000, 53)
	// Fault the root node page: the first FirstHit read must fail. The
	// tree file is the only file on this device besides the sort scratch
	// (deleted), so its id is enumerable; fault every page 0..N of it.
	for id := simdisk.FileID(1); id < 10; id++ {
		if n, err := dev.NumPages(id); err == nil {
			for p := int64(0); p < n; p++ {
				dev.InjectReadFault(id, p, simdisk.ErrOutOfRange)
			}
		}
	}
	if _, _, err := tree.FirstHit(geom.UnitBox()); err == nil {
		t.Fatal("device fault not propagated through FirstHit")
	}
	_ = object.PageCapacity
}
