// Package rtree implements the paper's R-tree baseline: an STR bulk-loaded
// R-tree (Leutenegger, Lopez et al., ICDE'97) with node pages stored on
// disk, in the all-in-one and one-for-each strategies. The bulk load charges
// the I/O of the external sorts STR performs at scale (one sort pass per
// dimension), which is what makes sophisticated spatial index construction
// expensive in the paper's Figure 4.
package rtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/simdisk"
)

// nodeHeaderSize is magic(2) + count(2) + level(2) + pad(10).
const nodeHeaderSize = 16

// entrySize is box (6 float64) + child page (int64).
const entrySize = 56

// nodeMagic marks R-tree node pages (distinct from object pages).
const nodeMagic = 0x4E0D

// MaxFanout is the hard capacity of a node page.
const MaxFanout = (simdisk.PageSize - nodeHeaderSize) / entrySize

// Node codec errors.
var (
	ErrNodeMagic  = errors.New("rtree: page is not a node page")
	ErrNodeCount  = errors.New("rtree: node entry count out of range")
	ErrTooManyEnt = errors.New("rtree: too many entries for one node page")
)

// entry is one slot of an internal node: the MBR of a subtree and the page
// index of its root (a node page when level > 0, a leaf object page when
// level == 0).
type entry struct {
	box   geom.Box
	child int64
}

// encodeNode serializes entries into a fresh node page.
func encodeNode(entries []entry, level int) ([]byte, error) {
	if len(entries) > MaxFanout {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyEnt, len(entries), MaxFanout)
	}
	buf := make([]byte, simdisk.PageSize)
	binary.LittleEndian.PutUint16(buf[0:], nodeMagic)
	binary.LittleEndian.PutUint16(buf[2:], uint16(len(entries)))
	binary.LittleEndian.PutUint16(buf[4:], uint16(level))
	off := nodeHeaderSize
	for _, e := range entries {
		putF := func(v float64) {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
		putF(e.box.Min.X)
		putF(e.box.Min.Y)
		putF(e.box.Min.Z)
		putF(e.box.Max.X)
		putF(e.box.Max.Y)
		putF(e.box.Max.Z)
		binary.LittleEndian.PutUint64(buf[off:], uint64(e.child))
		off += 8
	}
	return buf, nil
}

// decodeNode parses a node page.
func decodeNode(buf []byte) (entries []entry, level int, err error) {
	if len(buf) < simdisk.PageSize {
		return nil, 0, ErrNodeMagic
	}
	if binary.LittleEndian.Uint16(buf[0:]) != nodeMagic {
		return nil, 0, ErrNodeMagic
	}
	count := int(binary.LittleEndian.Uint16(buf[2:]))
	if count > MaxFanout {
		return nil, 0, fmt.Errorf("%w: %d", ErrNodeCount, count)
	}
	level = int(binary.LittleEndian.Uint16(buf[4:]))
	entries = make([]entry, count)
	off := nodeHeaderSize
	for i := range entries {
		getF := func() float64 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
			return v
		}
		entries[i].box.Min.X = getF()
		entries[i].box.Min.Y = getF()
		entries[i].box.Min.Z = getF()
		entries[i].box.Max.X = getF()
		entries[i].box.Max.Y = getF()
		entries[i].box.Max.Z = getF()
		entries[i].child = int64(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return entries, level, nil
}
