package rtree

import (
	"math"
	"sort"

	"spaceodyssey/internal/object"
	"spaceodyssey/internal/simdisk"
)

// STRPack orders objs with the Sort-Tile-Recursive algorithm and slices them
// into leaves of at most leafCap objects: sort by center x, tile into
// vertical slabs, sort each slab by y, tile again, sort each run by z, pack.
// The input slice is reordered in place; the returned slices alias it.
// It is exported because FLAT packs its dense leaf pages the same way.
func STRPack(objs []object.Object, leafCap int) [][]object.Object {
	n := len(objs)
	if n == 0 {
		return nil
	}
	numLeaves := (n + leafCap - 1) / leafCap
	s := int(math.Ceil(math.Cbrt(float64(numLeaves)))) // slabs per dimension

	sort.Slice(objs, func(i, j int) bool { return objs[i].Center.X < objs[j].Center.X })
	slabX := (n + s - 1) / s
	for xo := 0; xo < n; xo += slabX {
		xEnd := min(xo+slabX, n)
		slab := objs[xo:xEnd]
		sort.Slice(slab, func(i, j int) bool { return slab[i].Center.Y < slab[j].Center.Y })
		slabY := (len(slab) + s - 1) / s
		for yo := 0; yo < len(slab); yo += slabY {
			yEnd := min(yo+slabY, len(slab))
			run := slab[yo:yEnd]
			sort.Slice(run, func(i, j int) bool { return run[i].Center.Z < run[j].Center.Z })
		}
	}

	leaves := make([][]object.Object, 0, numLeaves)
	for off := 0; off < n; off += leafCap {
		leaves = append(leaves, objs[off:min(off+leafCap, n)])
	}
	return leaves
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ChargeExternalSort performs the I/O an external STR sort would: `passes`
// full sequential write+read passes over `pages` pages on a scratch file
// that is deleted afterwards. STR sorts the data once per dimension, so the
// engines charge passes = 3. In-memory ordering itself is free, matching
// the paper's disk-bound methodology. FLAT shares this charge.
func ChargeExternalSort(dev simdisk.Storage, pages int64, passes int) error {
	if pages == 0 || passes == 0 {
		return nil
	}
	scratch := dev.CreateFile("sort-scratch")
	defer dev.DeleteFile(scratch) //nolint:errcheck // best-effort cleanup
	buf := make([]byte, simdisk.PageSize)
	for p := 0; p < passes; p++ {
		if p == 0 {
			for i := int64(0); i < pages; i++ {
				if _, err := dev.AppendPage(scratch, buf); err != nil {
					return err
				}
			}
		} else {
			for i := int64(0); i < pages; i++ {
				if err := dev.WritePage(scratch, i, buf); err != nil {
					return err
				}
			}
		}
		for i := int64(0); i < pages; i++ {
			if err := dev.ReadPage(scratch, i, buf); err != nil {
				return err
			}
		}
	}
	return nil
}
