package rtree

import (
	"math/rand"
	"testing"

	"spaceodyssey/internal/datagen"
	"spaceodyssey/internal/engine"
	"spaceodyssey/internal/geom"
	"spaceodyssey/internal/object"
	"spaceodyssey/internal/rawfile"
	"spaceodyssey/internal/simdisk"
)

func TestNodeCodecRoundTrip(t *testing.T) {
	entries := []entry{
		{box: geom.NewBox(geom.V(0, 0, 0), geom.V(1, 2, 3)), child: 7},
		{box: geom.NewBox(geom.V(-5, -5, -5), geom.V(0, 0, 0)), child: 42},
	}
	page, err := encodeNode(entries, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, level, err := decodeNode(page)
	if err != nil {
		t.Fatal(err)
	}
	if level != 3 || len(got) != 2 {
		t.Fatalf("level=%d len=%d", level, len(got))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, got[i], entries[i])
		}
	}
}

func TestNodeCodecErrors(t *testing.T) {
	if _, err := encodeNode(make([]entry, MaxFanout+1), 0); err == nil {
		t.Error("oversized node encoded")
	}
	if _, _, err := decodeNode(make([]byte, 10)); err == nil {
		t.Error("short buffer decoded")
	}
	page, err := encodeNode(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	page[0] = 0xFF
	if _, _, err := decodeNode(page); err == nil {
		t.Error("bad magic decoded")
	}
}

func TestSTRPackInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 62, 63, 64, 500, 4001} {
		objs := make([]object.Object, n)
		for i := range objs {
			objs[i] = object.Object{
				ID:     uint64(i),
				Center: geom.V(r.Float64(), r.Float64(), r.Float64()),
			}
		}
		leaves := STRPack(objs, 63)
		want := (n + 62) / 63
		if len(leaves) != want {
			t.Fatalf("n=%d: %d leaves, want %d", n, len(leaves), want)
		}
		seen := map[uint64]bool{}
		for _, leaf := range leaves {
			if len(leaf) == 0 || len(leaf) > 63 {
				t.Fatalf("n=%d: leaf size %d", n, len(leaf))
			}
			for _, o := range leaf {
				if seen[o.ID] {
					t.Fatalf("n=%d: object %d duplicated", n, o.ID)
				}
				seen[o.ID] = true
			}
		}
		if len(seen) != n {
			t.Fatalf("n=%d: packed %d objects", n, len(seen))
		}
	}
}

func TestSTRPackSpatialLocality(t *testing.T) {
	// STR leaves should have far smaller MBRs than random grouping.
	r := rand.New(rand.NewSource(2))
	n := 5000
	objs := make([]object.Object, n)
	for i := range objs {
		objs[i] = object.Object{
			ID:         uint64(i),
			Center:     geom.V(r.Float64(), r.Float64(), r.Float64()),
			HalfExtent: geom.V(1e-4, 1e-4, 1e-4),
		}
	}
	randomVol := leafVolume(append([]object.Object(nil), objs...), false)
	strVol := leafVolume(append([]object.Object(nil), objs...), true)
	if strVol*10 > randomVol {
		t.Fatalf("STR leaf volume %g not ≪ random %g", strVol, randomVol)
	}
}

func leafVolume(objs []object.Object, str bool) float64 {
	var groups [][]object.Object
	if str {
		groups = STRPack(objs, 63)
	} else {
		for off := 0; off < len(objs); off += 63 {
			end := off + 63
			if end > len(objs) {
				end = len(objs)
			}
			groups = append(groups, objs[off:end])
		}
	}
	var total float64
	for _, g := range groups {
		mbr := g[0].Box()
		for _, o := range g[1:] {
			mbr = mbr.Union(o.Box())
		}
		total += mbr.Volume()
	}
	return total
}

func buildTestTree(t *testing.T, n int, seed int64) (*Tree, []object.Object, *simdisk.Device) {
	t.Helper()
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	objs := datagen.Generate(datagen.Config{Seed: seed, NumObjects: n}, 1)
	cp := append([]object.Object(nil), objs...)
	tree, err := Build(dev, "t", cp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tree, objs, dev
}

func TestBuildAndQueryMatchesNaive(t *testing.T) {
	tree, objs, _ := buildTestTree(t, 6000, 3)
	if tree.NumObjects() != 6000 {
		t.Fatalf("NumObjects = %d", tree.NumObjects())
	}
	if tree.Height() < 1 {
		t.Fatalf("Height = %d", tree.Height())
	}
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		side := 0.01 + r.Float64()*0.2
		q, ok := geom.Cube(geom.V(r.Float64(), r.Float64(), r.Float64()), side).Clip(geom.UnitBox())
		if !ok {
			continue
		}
		got, err := tree.Query(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		var want []object.Object
		for _, o := range objs {
			if o.Intersects(q) {
				want = append(want, o)
			}
		}
		if !engine.SameObjects(got, want) {
			t.Fatalf("trial %d: rtree %d, naive %d", trial, len(got), len(want))
		}
	}
}

func TestEmptyTree(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	tree, err := Build(dev, "e", nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := tree.Query(geom.UnitBox(), nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty tree query: %v, %d objects", err, len(got))
	}
	boxes, pages, err := tree.LeafMBRs()
	if err != nil || len(boxes) != 0 || len(pages) != 0 {
		t.Fatal("empty tree has leaves")
	}
}

func TestSingleObjectTree(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	objs := []object.Object{{ID: 9, Center: geom.V(0.5, 0.5, 0.5), HalfExtent: geom.V(0.01, 0.01, 0.01)}}
	tree, err := Build(dev, "s", objs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := tree.Query(geom.UnitBox(), nil)
	if err != nil || len(got) != 1 || got[0].ID != 9 {
		t.Fatalf("single-object query: %v %v", got, err)
	}
	if got, err := tree.Query(geom.Cube(geom.V(0.1, 0.1, 0.1), 0.01), nil); err != nil || len(got) != 0 {
		t.Fatalf("miss query: %v %v", got, err)
	}
}

func TestLeafMBRsInvariant(t *testing.T) {
	tree, objs, _ := buildTestTree(t, 3000, 5)
	boxes, pages, err := tree.LeafMBRs()
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != tree.NumLeaves() || len(pages) != tree.NumLeaves() {
		t.Fatalf("%d MBRs, %d pages, want %d", len(boxes), len(pages), tree.NumLeaves())
	}
	// Every object's box must be contained in at least one leaf MBR.
	for _, o := range objs[:200] {
		found := false
		for _, b := range boxes {
			if b.Contains(o.Box()) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("object %d box not covered by any leaf MBR", o.ID)
		}
	}
	// Root bounds contain all leaf MBRs.
	for _, b := range boxes {
		if !tree.Bounds().Contains(b) {
			t.Fatalf("leaf MBR %v outside root bounds %v", b, tree.Bounds())
		}
	}
}

func TestBuildChargesSortPasses(t *testing.T) {
	cost := simdisk.CostModel{Seek: 0, Transfer: 1}
	mk := func(passes int) int64 {
		dev := simdisk.NewDevice(cost, 0)
		objs := datagen.Generate(datagen.Config{Seed: 6, NumObjects: 6300}, 1)
		cfg := DefaultConfig()
		cfg.SortPasses = passes
		if _, err := Build(dev, "t", objs, cfg); err != nil {
			t.Fatal(err)
		}
		return int64(dev.Clock())
	}
	none := mk(0)
	three := mk(3)
	pages := object.PagesFor(6300)
	// Each pass adds a write+read of all data pages.
	wantDelta := int64(3 * 2 * pages)
	if got := three - none; got != wantDelta {
		t.Fatalf("sort charge = %d transfers, want %d", got, wantDelta)
	}
}

func TestConfigValidation(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	for _, cfg := range []Config{
		{Fanout: 1}, {Fanout: MaxFanout + 1},
		{LeafCapacity: -1}, {LeafCapacity: object.PageCapacity + 1},
		{SortPasses: -1},
	} {
		if _, err := Build(dev, "x", nil, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func mkRaws(t *testing.T, dev *simdisk.Device, n, perDS int, seed int64) []*rawfile.Raw {
	t.Helper()
	dss := datagen.GenerateDatasets(datagen.Config{Seed: seed, NumObjects: perDS}, n)
	raws := make([]*rawfile.Raw, n)
	for i, objs := range dss {
		raw, err := rawfile.Write(dev, "ds", object.DatasetID(i), objs)
		if err != nil {
			t.Fatal(err)
		}
		raws[i] = raw
	}
	return raws
}

func TestStrategiesMatchOracle(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{}, 0)
	raws := mkRaws(t, dev, 4, 1200, 7)
	oracle := engine.NewNaiveScan(raws)

	ain1 := NewAllInOne(dev, raws, DefaultConfig())
	ofe := NewOneForEach(dev, raws, DefaultConfig())
	if ain1.Name() != "RTree-Ain1" || ofe.Name() != "RTree-1fE" {
		t.Fatal("strategy names wrong")
	}
	if _, err := ain1.Query(geom.UnitBox(), nil); err == nil {
		t.Fatal("Ain1 query before build succeeded")
	}
	if _, err := ofe.Query(geom.UnitBox(), nil); err == nil {
		t.Fatal("1fE query before build succeeded")
	}
	if err := ain1.Build(); err != nil {
		t.Fatal(err)
	}
	if err := ofe.Build(); err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		q, ok := geom.Cube(geom.V(r.Float64(), r.Float64(), r.Float64()), 0.12).Clip(geom.UnitBox())
		if !ok {
			continue
		}
		dss := []object.DatasetID{object.DatasetID(r.Intn(4)), object.DatasetID((r.Intn(4)))}
		if dss[0] == dss[1] {
			dss = dss[:1]
		}
		want, err := oracle.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		a, err := ain1.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		if !engine.SameObjects(a, append([]object.Object(nil), want...)) {
			t.Fatalf("trial %d: Ain1 %d objects, oracle %d", trial, len(a), len(want))
		}
		b, err := ofe.Query(q, dss)
		if err != nil {
			t.Fatal(err)
		}
		if !engine.SameObjects(b, want) {
			t.Fatalf("trial %d: 1fE %d objects, oracle %d", trial, len(b), len(want))
		}
	}
	if _, err := ofe.Query(geom.UnitBox(), []object.DatasetID{77}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestBuildIsIdempotent(t *testing.T) {
	dev := simdisk.NewDevice(simdisk.CostModel{Seek: 1, Transfer: 1}, 0)
	raws := mkRaws(t, dev, 2, 300, 9)
	eng := NewAllInOne(dev, raws, DefaultConfig())
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	clock := dev.Clock()
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	if dev.Clock() != clock {
		t.Fatal("second Build performed I/O")
	}
}
