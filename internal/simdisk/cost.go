// Package simdisk simulates the disk subsystem the paper's evaluation runs
// on: a spinning SAS disk with 4 KB pages, an OS page cache that is dropped
// before every query, and a cost model in which random page accesses pay a
// seek while sequential runs pay only transfer time.
//
// The paper measures wall-clock time on real hardware (2x 300 GB SAS disks,
// caches cleared before each query). We cannot assume that hardware, so the
// device charges an explicit, deterministic cost model and exposes the
// simulated clock as the measured quantity. This preserves the property the
// evaluation depends on — sequential I/O is far cheaper than random I/O, and
// full-dataset index builds are expensive — while making every experiment
// reproducible bit-for-bit.
package simdisk

import (
	"fmt"
	"time"
)

// PageSize is the disk page size in bytes, matching the paper's 4 KB setup.
const PageSize = 4096

// CostModel holds the timing parameters of the simulated disk.
//
// The defaults approximate the paper's 10k-RPM SAS disks: an average
// positioning cost (seek + rotational latency) of 8 ms and a sustained
// sequential transfer rate of 160 MB/s (25 us per 4 KB page). A cache hit
// costs CacheHitTime (DRAM copy), effectively negligible.
type CostModel struct {
	// Seek is charged whenever an access is not sequential with respect to
	// the immediately preceding access on the device.
	Seek time.Duration
	// Transfer is charged per page moved to or from the platter.
	Transfer time.Duration
	// CacheHit is charged when a read is served from the buffer cache.
	CacheHit time.Duration
}

// DefaultCostModel returns the SAS-disk parameters used by all experiments.
func DefaultCostModel() CostModel {
	return CostModel{
		Seek:     8 * time.Millisecond,
		Transfer: 25 * time.Microsecond,
		CacheHit: 200 * time.Nanosecond,
	}
}

// SSDCostModel returns parameters approximating a SATA SSD; useful for
// sensitivity runs (the paper's conclusions assume spinning disks).
func SSDCostModel() CostModel {
	return CostModel{
		Seek:     80 * time.Microsecond,
		Transfer: 8 * time.Microsecond,
		CacheHit: 200 * time.Nanosecond,
	}
}

// ReducedScaleCostModel returns the cost model the experiment harness uses
// at laptop scale. The paper runs on ~50 GB of data (12.5M pages); the
// harness runs on ~1/100 of that. Index builds are transfer-bound (they
// stream all data) while queries are seek-bound (a handful of random
// accesses), so shrinking the data by 100x shrinks build cost 100x but
// leaves per-query cost nearly unchanged — which would invert the paper's
// build-vs-query trade-off (its central subject). Scaling the seek time
// down by the same factor the data shrank (8 ms -> 80 us... too extreme;
// empirically 0.5 ms preserves the paper's ratios: Grid's build lands
// mid-workload for Odyssey, and the sophisticated indexes' builds dwarf
// it) restores the relative geometry of Figures 4 and 5. EXPERIMENTS.md
// documents the calibration and shows a sensitivity run under the
// unscaled SAS model.
func ReducedScaleCostModel() CostModel {
	return CostModel{
		Seek:     500 * time.Microsecond,
		Transfer: 25 * time.Microsecond,
		CacheHit: 200 * time.Nanosecond,
	}
}

// Validate reports an error if any component is negative.
func (c CostModel) Validate() error {
	if c.Seek < 0 || c.Transfer < 0 || c.CacheHit < 0 {
		return fmt.Errorf("simdisk: negative cost in model %+v", c)
	}
	return nil
}
