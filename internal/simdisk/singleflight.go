package simdisk

import (
	"context"
)

// inflightRun is one registered device run read other readers may attach to.
// The leader fills buf/dt/err and closes done after its whole read —
// including the aggregated real-time emulation sleep — so an attached reader
// that returns has genuinely waited out the device latency it shares.
type inflightRun struct {
	start, n int64
	done     chan struct{}
	buf      []byte
	err      error
}

// SetShareReads turns single-flight run coalescing on or off. With sharing
// on, concurrent ReadRun/ReadRunCtx calls whose page ranges overlap on the
// same file coalesce: one reader (the leader) performs and is charged the
// physical read, every other reader whose range the leader's covers attaches
// to it and receives its slice of the same buffer — no platter charge, no
// cache traffic, counted in Stats.CoalescedReads/CoalescedPages. Off (the
// default) every read is independent, bit-for-bit the original model.
func (d *Device) SetShareReads(share bool) {
	d.shareReads.Store(share)
}

// ShareReads reports whether single-flight run coalescing is on.
func (d *Device) ShareReads() bool { return d.shareReads.Load() }

// WaitDone blocks until ch closes or ctx (nil allowed) is canceled,
// returning the wrapped cancellation error in the latter case. It is the
// attach-side wait every single-flight layer (device run coalescing here,
// the engine's scan registry and build flights above) shares.
func WaitDone(ctx context.Context, ch <-chan struct{}) error {
	if ctx == nil {
		<-ch
		return nil
	}
	// ctx.Done() may be nil (context.Background()); a nil channel case is
	// simply never ready.
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return Canceled(ctx.Err())
	}
}

// readRunShared is the coalescing read path behind SetShareReads(true). A
// reader whose range is covered by an in-flight leader attaches and waits;
// otherwise it registers itself as the leader for its own range, performs
// the read, and fans the buffer out. Attachment is zero-copy: the returned
// slice may alias the leader's buffer, which callers must treat as
// read-only (every caller in this repository decodes out of it and drops
// it, never writes into it).
//
// When a leader fails (fault injection, cancellation, a concurrent delete),
// its waiters do not each fall back to an independent readRunDirect — N
// waiters would charge N redundant reads, a thundering herd on the device.
// Instead each waiter loops back through the coalescing path: the failed
// leader deregistered its run before publishing, so the first waiter back
// through the registry becomes the one new leader (charged once) and the
// rest attach to it. failed remembers the run whose error was just
// observed so a stale registration can never be re-attached.
func (d *Device) readRunShared(ctx context.Context, id FileID, start, n int64) ([]byte, error) {
	var failed *inflightRun
	for {
		d.sfMu.Lock()
		var attach *inflightRun
		for _, fl := range d.sfInflight[id] {
			if fl != failed && fl.start <= start && start+n <= fl.start+fl.n {
				attach = fl
				break
			}
		}
		if attach == nil {
			fl := &inflightRun{start: start, n: n, done: make(chan struct{})}
			d.sfInflight[id] = append(d.sfInflight[id], fl)
			d.sfMu.Unlock()

			fl.buf, fl.err = d.readRunDirect(ctx, id, start, n)

			// Deregister before publishing so waiters that observe the
			// error re-enter a registry this run is gone from — their retry
			// single-flights instead of re-attaching to a dead run.
			d.sfMu.Lock()
			runs := d.sfInflight[id]
			for i, f := range runs {
				if f == fl {
					runs[i] = runs[len(runs)-1]
					runs = runs[:len(runs)-1]
					break
				}
			}
			if len(runs) == 0 {
				delete(d.sfInflight, id)
			} else {
				d.sfInflight[id] = runs
			}
			d.sfMu.Unlock()
			close(fl.done)
			return fl.buf, fl.err
		}
		d.sfMu.Unlock()
		if err := WaitDone(ctx, attach.done); err != nil {
			d.canceledOps.Add(1)
			return nil, err
		}
		if attach.err != nil {
			// The leader failed; its outcome is not ours. Re-enter the
			// coalescing path: exactly one waiter is charged the retry.
			failed = attach
			continue
		}
		d.coalescedReads.Add(1)
		d.coalescedPages.Add(n)
		off := (start - attach.start) * PageSize
		return attach.buf[off : off+n*PageSize : off+n*PageSize], nil
	}
}

// SetShareReads fans the coalescing switch out to every member device.
// Coalescing is per member: an array never merges reads across spindles,
// because there is no shared head to save.
func (a *DeviceArray) SetShareReads(share bool) {
	for _, m := range a.members {
		m.SetShareReads(share)
	}
}

// ShareReads reports the members' common coalescing state.
func (a *DeviceArray) ShareReads() bool { return a.members[0].ShareReads() }
