package simdisk

import (
	"context"
	"errors"
	"testing"
	"time"
)

// faultDev builds a cacheless single-channel device with one file of n pages.
func faultDev(t *testing.T, n int64) (*Device, FileID) {
	t.Helper()
	d := NewDevice(CostModel{Seek: 8 * time.Millisecond, Transfer: 25 * time.Microsecond, CacheHit: 5 * time.Microsecond}, 0)
	id := d.CreateFile("f")
	page := make([]byte, PageSize)
	for i := int64(0); i < n; i++ {
		page[0] = byte(i)
		if _, err := d.AppendPage(id, page); err != nil {
			t.Fatal(err)
		}
	}
	return d, id
}

// faultSequence replays nReads sequential reads over the file and records
// which read ordinals faulted, with what classification.
func faultSequence(t *testing.T, plan FaultPlan, pages, nReads int64) []string {
	t.Helper()
	d, id := faultDev(t, pages)
	d.SetFaultPlan(plan)
	buf := make([]byte, PageSize)
	var seq []string
	for i := int64(0); i < nReads; i++ {
		err := d.ReadPage(id, i%pages, buf)
		switch {
		case err == nil:
			seq = append(seq, "ok")
		case errors.Is(err, ErrPermanent):
			seq = append(seq, "perm")
		case errors.Is(err, ErrTransient):
			seq = append(seq, "trans")
		default:
			t.Fatalf("read %d: unclassified fault %v", i, err)
		}
	}
	return seq
}

// TestFaultPlanDeterministic pins that the same seed replays the same fault
// sequence, and a different seed a different one.
func TestFaultPlanDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 42, TransientRate: 0.2, PermanentRate: 0.02, SpikeRate: 0.1}
	a := faultSequence(t, plan, 64, 512)
	b := faultSequence(t, plan, 64, 512)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at read %d: %s vs %s", i, a[i], b[i])
		}
	}
	plan.Seed = 43
	c := faultSequence(t, plan, 64, 512)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
	var faults int
	for _, s := range a {
		if s != "ok" {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("plan with 20% transient rate injected nothing over 512 reads")
	}
}

// TestFaultClassification pins the sentinel taxonomy: explicit patterns
// surface as their kind, unwrap to the custom cause, and a permanent page
// fails on every subsequent read while a bounded transient pattern clears.
func TestFaultClassification(t *testing.T) {
	d, id := faultDev(t, 4)
	boom := errors.New("head crash")
	d.SetFaultPlan(FaultPlan{
		Seed: 1,
		Pages: []PageFault{
			{File: id, Page: 0, Kind: FaultTransient, Count: 2},
			{File: id, Page: 1, Kind: FaultPermanent, Err: boom},
		},
	})
	buf := make([]byte, PageSize)
	for i := 0; i < 2; i++ {
		err := d.ReadPage(id, 0, buf)
		if !errors.Is(err, ErrTransient) || errors.Is(err, ErrPermanent) {
			t.Fatalf("read %d of page 0: want transient, got %v", i, err)
		}
	}
	if err := d.ReadPage(id, 0, buf); err != nil {
		t.Fatalf("transient pattern did not clear after Count reads: %v", err)
	}
	for i := 0; i < 3; i++ {
		err := d.ReadPage(id, 1, buf)
		if !errors.Is(err, ErrPermanent) {
			t.Fatalf("read %d of page 1: want permanent, got %v", i, err)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("permanent fault does not unwrap to cause: %v", err)
		}
	}
	st := d.Stats()
	if st.TransientFaults != 2 || st.PermanentFaults != 3 {
		t.Fatalf("fault ledger wrong: %+v", st)
	}
	// Clearing the plan stops injection.
	d.SetFaultPlan(FaultPlan{})
	if err := d.ReadPage(id, 1, buf); err != nil {
		t.Fatalf("cleared plan still faulting: %v", err)
	}
}

// TestRetryTransientToSuccess pins the retry loop: a pattern that faults the
// first k reads of a page is absorbed by a policy with enough attempts, the
// ledger records the retries, and no simulated time was charged for the
// failed attempts (exactly one platter read's worth of clock advanced).
func TestRetryTransientToSuccess(t *testing.T) {
	d, id := faultDev(t, 2)
	d.SetFaultPlan(FaultPlan{Seed: 7, Pages: []PageFault{{File: id, Page: 0, Kind: FaultTransient, Count: 2}}})
	d.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, Backoff: time.Microsecond})

	// A clean read of page 1 measures the per-read simulated charge.
	buf := make([]byte, PageSize)
	before := d.Clock()
	if err := d.ReadPage(id, 1, buf); err != nil {
		t.Fatal(err)
	}
	perRead := d.Clock() - before

	before = d.Clock()
	if err := d.ReadPage(id, 0, buf); err != nil {
		t.Fatalf("retries did not absorb transient faults: %v", err)
	}
	if got := d.Clock() - before; got > perRead {
		t.Fatalf("failed attempts charged simulated time: %v > %v per clean read", got, perRead)
	}
	st := d.Stats()
	if st.RetriedOps != 2 {
		t.Fatalf("RetriedOps = %d, want 2", st.RetriedOps)
	}
	if st.RetryExhausted != 0 {
		t.Fatalf("RetryExhausted = %d, want 0", st.RetryExhausted)
	}
}

// TestRetryPermanentFailsFast pins that permanent faults are never retried.
func TestRetryPermanentFailsFast(t *testing.T) {
	d, id := faultDev(t, 2)
	d.SetFaultPlan(FaultPlan{Seed: 7, Pages: []PageFault{{File: id, Page: 0, Kind: FaultPermanent}}})
	d.SetRetryPolicy(RetryPolicy{MaxAttempts: 5, Backoff: time.Microsecond})
	buf := make([]byte, PageSize)
	err := d.ReadPage(id, 0, buf)
	if !errors.Is(err, ErrPermanent) {
		t.Fatalf("want permanent fault, got %v", err)
	}
	st := d.Stats()
	if st.RetriedOps != 0 {
		t.Fatalf("permanent fault was retried %d times", st.RetriedOps)
	}
	if st.PermanentFaults != 1 {
		t.Fatalf("PermanentFaults = %d, want 1", st.PermanentFaults)
	}
}

// TestRetryExhaustion pins the exhaustion ledger and error shape when the
// fault outlives the attempt budget.
func TestRetryExhaustion(t *testing.T) {
	d, id := faultDev(t, 2)
	d.SetFaultPlan(FaultPlan{Seed: 7, Pages: []PageFault{{File: id, Page: 0, Kind: FaultTransient}}}) // forever
	d.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, Backoff: time.Microsecond})
	buf := make([]byte, PageSize)
	err := d.ReadPage(id, 0, buf)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("exhausted retry lost fault classification: %v", err)
	}
	st := d.Stats()
	if st.RetriedOps != 2 || st.RetryExhausted != 1 {
		t.Fatalf("ledger wrong after exhaustion: retried=%d exhausted=%d", st.RetriedOps, st.RetryExhausted)
	}
}

// TestRetryBudget pins that the cumulative backoff budget cuts the loop off
// before MaxAttempts when sleeps would exceed it.
func TestRetryBudget(t *testing.T) {
	d, id := faultDev(t, 2)
	d.SetFaultPlan(FaultPlan{Seed: 7, Pages: []PageFault{{File: id, Page: 0, Kind: FaultTransient}}})
	// 1ms, 2ms, 4ms, ... against a 2ms budget: one retry fits, the second
	// (2ms, cumulative 3ms) does not.
	d.SetRetryPolicy(RetryPolicy{MaxAttempts: 10, Backoff: time.Millisecond, Budget: 2 * time.Millisecond})
	buf := make([]byte, PageSize)
	err := d.ReadPage(id, 0, buf)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("budget-exhausted error lost classification: %v", err)
	}
	st := d.Stats()
	if st.RetriedOps != 1 {
		t.Fatalf("RetriedOps = %d, want 1 (budget allows one 1ms backoff)", st.RetriedOps)
	}
	if st.RetryExhausted != 1 {
		t.Fatalf("RetryExhausted = %d, want 1", st.RetryExhausted)
	}
}

// TestRetryCancelDuringBackoff pins that a context canceled mid-backoff
// aborts the wait with an error matching both the cancellation and the
// fault taxonomy.
func TestRetryCancelDuringBackoff(t *testing.T) {
	d, id := faultDev(t, 2)
	d.SetFaultPlan(FaultPlan{Seed: 7, Pages: []PageFault{{File: id, Page: 0, Kind: FaultTransient}}})
	d.SetRetryPolicy(RetryPolicy{MaxAttempts: 5, Backoff: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	buf := make([]byte, PageSize)
	go func() { done <- d.ReadPageCtx(ctx, id, 0, buf) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("want cancellation, got %v", err)
		}
		if !errors.Is(err, ErrTransient) {
			t.Fatalf("cancel-during-backoff lost the fault being retried: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry backoff ignored cancellation")
	}
}

// TestLatencySpikeWallClockOnly pins that spike faults stall wall-clock
// emulation without advancing the simulated clock.
func TestLatencySpikeWallClockOnly(t *testing.T) {
	d, id := faultDev(t, 2)
	buf := make([]byte, PageSize)
	// Clean read first: page 0's charge without any plan.
	before := d.Clock()
	if err := d.ReadPage(id, 0, buf); err != nil {
		t.Fatal(err)
	}
	clean := d.Clock() - before

	d.DropCaches()
	d.SetFaultPlan(FaultPlan{Seed: 1, SpikeLatency: time.Hour, Pages: []PageFault{{File: id, Page: 0, Kind: FaultSpike, Count: 1}}})
	before = d.Clock()
	if err := d.ReadPage(id, 0, buf); err != nil {
		t.Fatal(err)
	}
	if got := d.Clock() - before; got > clean {
		t.Fatalf("spike advanced the simulated clock: %v > clean %v", got, clean)
	}
	if st := d.Stats(); st.LatencySpikes != 1 {
		t.Fatalf("LatencySpikes = %d, want 1", st.LatencySpikes)
	}
}

// TestStormModeWindows pins that storm windows multiply the fault rate: a
// plan whose base rate is zero outside the window faults only inside it.
func TestStormModeWindows(t *testing.T) {
	d, id := faultDev(t, 8)
	// Base rate 0.1 boosted x10 => rate 1.0 inside the storm window: reads
	// 0-3 of every 16 fault deterministically, the rest roll at 0.1.
	d.SetFaultPlan(FaultPlan{Seed: 5, TransientRate: 0.1, StormEvery: 16, StormLength: 4, StormFactor: 10})
	buf := make([]byte, PageSize)
	var inStorm, faulted int
	for i := 0; i < 64; i++ {
		err := d.ReadPage(id, int64(i%8), buf)
		if i%16 < 4 {
			inStorm++
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("storm-window read %d did not fault: %v", i, err)
			}
		}
		if err != nil {
			faulted++
		}
	}
	if inStorm != 16 {
		t.Fatalf("expected 16 storm reads, saw %d", inStorm)
	}
	if faulted >= 64 {
		t.Fatal("every read faulted; storm boost leaked outside its window")
	}
}

// TestArrayFaultPlanFanOut pins that an array installs decorrelated member
// plans and that retry policy fans out.
func TestArrayFaultPlanFanOut(t *testing.T) {
	a := NewDeviceArray(CostModel{Seek: time.Millisecond, Transfer: 10 * time.Microsecond, CacheHit: time.Microsecond}, 0, 2, 1, RoundRobin())
	a.SetFaultPlan(FaultPlan{Seed: 9, TransientRate: 0.5})
	if !a.FaultPlanActive() {
		t.Fatal("plan not active on array")
	}
	for i, m := range a.Members() {
		if !m.FaultPlanActive() {
			t.Fatalf("member %d has no plan", i)
		}
	}
	s0, s1 := a.Members()[0].faults.plan.Seed, a.Members()[1].faults.plan.Seed
	if s0 == s1 {
		t.Fatal("member seeds not decorrelated")
	}
	a.SetRetryPolicy(RetryPolicy{MaxAttempts: 3})
	if got := a.RetryPolicy().MaxAttempts; got != 3 {
		t.Fatalf("array retry policy = %d attempts, want 3", got)
	}
	a.SetFaultPlan(FaultPlan{})
	if a.FaultPlanActive() {
		t.Fatal("zero plan did not clear")
	}
}

// TestOneShotInjectCoexistsWithPlan pins the compatibility path: one-shot
// injected faults fire (classified transient, unwrapping to the cause) even
// with a plan installed, and survive SetFaultPlan.
func TestOneShotInjectCoexistsWithPlan(t *testing.T) {
	d, id := faultDev(t, 2)
	boom := errors.New("boom")
	d.InjectReadFault(id, 1, boom)
	d.SetFaultPlan(FaultPlan{Seed: 3, Pages: []PageFault{{File: id, Page: 0, Kind: FaultTransient, Count: 1}}})
	buf := make([]byte, PageSize)
	err := d.ReadPage(id, 1, buf)
	if !errors.Is(err, boom) || !errors.Is(err, ErrTransient) {
		t.Fatalf("one-shot fault lost shape: %v", err)
	}
	if err := d.ReadPage(id, 1, buf); err != nil {
		t.Fatalf("one-shot fault not one-shot: %v", err)
	}
}
