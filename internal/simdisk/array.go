package simdisk

import (
	"context"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// PlacementPolicy decides which member device of a DeviceArray a new file
// is created on. group is the caller's affinity hint ("" when none was
// given) — the storage stack passes "ds<N>" for a dataset's raw and tree
// files and the hottest member dataset's group for merge files, so an
// affinity policy keeps the files a query touches together on one device.
// Implementations must be safe for concurrent use.
type PlacementPolicy interface {
	// Place returns the member index in [0, devices) for a new file.
	Place(name, group string, devices int) int
	// String names the policy for reports.
	String() string
}

// roundRobin cycles through the members file by file, ignoring groups.
type roundRobin struct{ next atomic.Uint32 }

// RoundRobin returns the placement policy that stripes successive files
// across successive devices regardless of their affinity group. It spreads
// load evenly but may split a dataset's raw and tree files apart.
func RoundRobin() PlacementPolicy { return &roundRobin{} }

func (r *roundRobin) Place(name, group string, devices int) int {
	return int((r.next.Add(1) - 1) % uint32(devices))
}

func (r *roundRobin) String() string { return "roundrobin" }

// groupAffinity hashes the affinity group (falling back to the file name)
// so all files of one group land on the same member.
type groupAffinity struct{}

// GroupAffinity returns the placement policy that co-locates files sharing
// an affinity group — a dataset's raw and tree files, and the merge files
// of the combinations it is the hottest member of — on one device, so one
// query's sequential runs stay on as few spindles as necessary while
// different datasets spread across the array.
func GroupAffinity() PlacementPolicy { return groupAffinity{} }

func (groupAffinity) Place(name, group string, devices int) int {
	key := group
	if key == "" {
		key = name
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(devices))
}

func (groupAffinity) String() string { return "affinity" }

// DeviceArray stripes files across D member Devices behind the same
// Storage interface a single Device offers — the paper's evaluation runs on
// 2x 300 GB SAS disks, and this is that second spindle (and more). Each
// member keeps its own channels, cache shard-set, clock and counters; the
// array routes every file operation to the member its placement policy
// chose at creation time.
//
// FileIDs are bijectively encoded as memberLocalID*D + memberIndex, so
// routing is arithmetic (no shared map on the hot path) and the zero
// InvalidFile never collides with a live file.
//
// Simulated time on the array is the critical path across members: Clock()
// returns the maximum member clock, each member clock itself being that
// device's busiest channel plus its shared time. Stats() is the sum over
// members — placement moves I/O between spindles, it never changes how much
// I/O happens.
type DeviceArray struct {
	members []*Device
	policy  PlacementPolicy

	// Page striping (PageStripe policy): chunk > 0 marks the array as
	// striping, every created file gets a stripeTag'd id and an entry in
	// stripes mapping it to its per-member backing files. See stripe.go.
	chunk     int64
	stripeMu  sync.RWMutex
	stripes   map[FileID]*stripedFile
	stripeSeq uint32
}

// NewDeviceArray creates an array of devices member Devices with channels
// I/O channels each, all sharing one cost model. The cache capacity is
// split evenly across members so the array's total buffer cache matches a
// single device of the same capacity. policy nil defaults to GroupAffinity.
func NewDeviceArray(cost CostModel, cacheCapacity, devices, channels int, policy PlacementPolicy) *DeviceArray {
	if devices <= 0 {
		devices = 1
	}
	if policy == nil {
		policy = GroupAffinity()
	}
	perMember := cacheCapacity / devices
	if cacheCapacity > 0 && perMember == 0 {
		perMember = 1
	}
	members := make([]*Device, devices)
	for i := range members {
		members[i] = NewDeviceChannels(cost, perMember, channels)
	}
	a := &DeviceArray{members: members, policy: policy}
	if sp, ok := policy.(stripingPolicy); ok {
		a.chunk = sp.ChunkPages()
		a.stripes = make(map[FileID]*stripedFile)
	}
	return a
}

// Members exposes the member devices (for tests and reports).
func (a *DeviceArray) Members() []*Device { return a.members }

// encode maps (member, member-local id) to an array-global FileID.
func (a *DeviceArray) encode(member int, local FileID) FileID {
	return FileID(uint32(local)*uint32(len(a.members)) + uint32(member))
}

// decode splits an array-global FileID back into member and local id. Any
// id (including InvalidFile) decodes; unknown locals fail in the member
// with ErrNoSuchFile.
func (a *DeviceArray) decode(id FileID) (*Device, FileID) {
	d := uint32(len(a.members))
	return a.members[uint32(id)%d], FileID(uint32(id) / d)
}

// CreateFile places a new file via the placement policy (no affinity hint).
func (a *DeviceArray) CreateFile(name string) FileID {
	return a.CreateFileInGroup(name, "")
}

// CreateFileInGroup places a new file via the placement policy with an
// affinity group hint. On a closed array it returns InvalidFile (members
// are closed together, so checking one suffices).
func (a *DeviceArray) CreateFileInGroup(name, group string) FileID {
	if a.members[0].closed.Load() {
		return InvalidFile
	}
	if a.chunk > 0 {
		// Page striping: the file spans every member; the affinity group is
		// moot (all groups share all spindles).
		return a.createStriped(name)
	}
	m := a.policy.Place(name, group, len(a.members))
	if m < 0 || m >= len(a.members) {
		m = ((m % len(a.members)) + len(a.members)) % len(a.members)
	}
	local := a.members[m].CreateFile(name)
	return a.encode(m, local)
}

// MemberOf returns the index of the member device holding id, or -1 for a
// page-striped file (it spans every member).
func (a *DeviceArray) MemberOf(id FileID) int {
	if _, ok := a.striped(id); ok {
		return -1
	}
	return int(uint32(id) % uint32(len(a.members)))
}

// DeleteFile removes a file from its member device (all members for a
// striped file).
func (a *DeviceArray) DeleteFile(id FileID) error {
	if f, ok := a.striped(id); ok {
		return a.deleteStriped(id, f)
	}
	dev, local := a.decode(id)
	return dev.DeleteFile(local)
}

// FileName returns the debug name a file was created with.
func (a *DeviceArray) FileName(id FileID) (string, error) {
	if f, ok := a.striped(id); ok {
		return f.name, nil
	}
	dev, local := a.decode(id)
	return dev.FileName(local)
}

// NumPages returns the file length in pages (the logical length for a
// striped file).
func (a *DeviceArray) NumPages(id FileID) (int64, error) {
	if f, ok := a.striped(id); ok {
		return a.stripedNumPages(f)
	}
	dev, local := a.decode(id)
	return dev.NumPages(local)
}

// TotalPages sums disk usage across members.
func (a *DeviceArray) TotalPages() int64 {
	var total int64
	for _, m := range a.members {
		total += m.TotalPages()
	}
	return total
}

// ReadPage reads one page on the file's member device (the chunk-mapped
// member for a striped file).
func (a *DeviceArray) ReadPage(id FileID, idx int64, buf []byte) error {
	return a.ReadPageCtx(nil, id, idx, buf)
}

// ReadPageCtx is ReadPage with cancellation.
func (a *DeviceArray) ReadPageCtx(ctx context.Context, id FileID, idx int64, buf []byte) error {
	if f, ok := a.striped(id); ok {
		m, lp := a.stripeLoc(idx)
		return a.members[m].ReadPageCtx(ctx, f.locals[m], lp, buf)
	}
	dev, local := a.decode(id)
	return dev.ReadPageCtx(ctx, local, idx, buf)
}

// WritePage overwrites one page on the file's member device.
func (a *DeviceArray) WritePage(id FileID, idx int64, data []byte) error {
	return a.WritePageCtx(nil, id, idx, data)
}

// WritePageCtx is WritePage with cancellation and QoS attribution.
func (a *DeviceArray) WritePageCtx(ctx context.Context, id FileID, idx int64, data []byte) error {
	if f, ok := a.striped(id); ok {
		m, lp := a.stripeLoc(idx)
		return a.members[m].WritePageCtx(ctx, f.locals[m], lp, data)
	}
	dev, local := a.decode(id)
	return dev.WritePageCtx(ctx, local, idx, data)
}

// AppendPage appends one page on the file's member device (at the logical
// end of file, on the chunk-mapped member, for a striped file).
func (a *DeviceArray) AppendPage(id FileID, data []byte) (int64, error) {
	return a.AppendPageCtx(nil, id, data)
}

// AppendPageCtx is AppendPage with cancellation and QoS attribution.
func (a *DeviceArray) AppendPageCtx(ctx context.Context, id FileID, data []byte) (int64, error) {
	if f, ok := a.striped(id); ok {
		return a.stripedAppend(ctx, f, data)
	}
	dev, local := a.decode(id)
	return dev.AppendPageCtx(ctx, local, data)
}

// ReadRun reads n consecutive pages on the file's member device (fanned
// out across all members concurrently for a striped file).
func (a *DeviceArray) ReadRun(id FileID, start, n int64) ([]byte, error) {
	return a.ReadRunCtx(nil, id, start, n)
}

// ReadRunCtx is ReadRun with cancellation.
func (a *DeviceArray) ReadRunCtx(ctx context.Context, id FileID, start, n int64) ([]byte, error) {
	if f, ok := a.striped(id); ok {
		return a.stripedReadRun(ctx, f, start, n)
	}
	dev, local := a.decode(id)
	return dev.ReadRunCtx(ctx, local, start, n)
}

// Clock returns the critical-path simulated time: the maximum member clock.
func (a *DeviceArray) Clock() time.Duration {
	var max time.Duration
	for _, m := range a.members {
		if c := m.Clock(); c > max {
			max = c
		}
	}
	return max
}

// ResetClock zeroes every member's clock.
func (a *DeviceArray) ResetClock() {
	for _, m := range a.members {
		m.ResetClock()
	}
}

// AdvanceClock charges a CPU-side cost to every member, so the array clock
// (a max) advances by dt exactly like a single device's would.
func (a *DeviceArray) AdvanceClock(dt time.Duration) {
	if dt <= 0 {
		return
	}
	for _, m := range a.members {
		m.shared.Add(int64(dt))
	}
	// Emulate once, not per member: the CPU stall is one wall-clock wait.
	a.members[0].emulate(dt)
}

// SetRealTimeScale fans the emulation scale out to every member.
func (a *DeviceArray) SetRealTimeScale(scale float64) {
	for _, m := range a.members {
		m.SetRealTimeScale(scale)
	}
}

// RealTimeScale returns the members' common emulation scale.
func (a *DeviceArray) RealTimeScale() float64 { return a.members[0].RealTimeScale() }

// Stats sums the member counters: total I/O is invariant under placement.
func (a *DeviceArray) Stats() Stats {
	var s Stats
	for _, m := range a.members {
		s.Add(m.Stats())
	}
	return s
}

// ResetStats zeroes every member's counters.
func (a *DeviceArray) ResetStats() {
	for _, m := range a.members {
		m.ResetStats()
	}
}

// DropCaches fans out to every member device, emptying every buffer cache
// and forgetting every channel's head position on every member.
func (a *DeviceArray) DropCaches() {
	for _, m := range a.members {
		m.DropCaches()
	}
}

// CachedPages sums cached pages across members.
func (a *DeviceArray) CachedPages() int {
	n := 0
	for _, m := range a.members {
		n += m.CachedPages()
	}
	return n
}

// SetCacheCapacity resizes the array's total cache, split evenly across
// members.
func (a *DeviceArray) SetCacheCapacity(pages int) {
	perMember := pages / len(a.members)
	if pages > 0 && perMember == 0 {
		perMember = 1
	}
	for _, m := range a.members {
		m.SetCacheCapacity(perMember)
	}
}

// NumDevices returns the member count D.
func (a *DeviceArray) NumDevices() int { return len(a.members) }

// NumChannels returns the per-member channel count C.
func (a *DeviceArray) NumChannels() int { return a.members[0].NumChannels() }

// PlacementName names the placement policy.
func (a *DeviceArray) PlacementName() string { return a.policy.String() }

// DeviceStats snapshots each member's counters.
func (a *DeviceArray) DeviceStats() []Stats {
	out := make([]Stats, len(a.members))
	for i, m := range a.members {
		out[i] = m.Stats()
	}
	return out
}

// DeviceChannelStats snapshots each member's per-channel counters.
func (a *DeviceArray) DeviceChannelStats() [][]ChannelStats {
	out := make([][]ChannelStats, len(a.members))
	for i, m := range a.members {
		out[i] = m.ChannelStats()
	}
	return out
}

// Close closes every member device; the first error (if any) is returned
// after all members have been closed. Idempotent.
func (a *DeviceArray) Close() error {
	var first error
	for _, m := range a.members {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
