package simdisk

import (
	"sync"
	"testing"
)

// FuzzLRU drives the sharded page cache from several goroutines with a
// fuzzer-chosen operation tape and capacity, then checks the capacity
// invariant and that the structure is still coherent. Run under -race this
// doubles as a locking fuzz for the shard discipline.
func FuzzLRU(f *testing.F) {
	f.Add(uint16(4), []byte{0, 1, 2, 3, 250, 251, 4, 5})
	f.Add(uint16(0), []byte{9, 9, 9})
	f.Add(uint16(300), []byte{1, 3, 5, 7, 11, 13, 17, 19, 23, 255, 254, 253})
	f.Add(uint16(1024), []byte("the quick brown fox jumps over the lazy disk"))
	f.Fuzz(func(t *testing.T, capacity uint16, tape []byte) {
		cache := newShardedCache(int(capacity))
		const workers = 4
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Each worker reads the shared tape at its own stride so
				// goroutines race over overlapping key sets.
				for i := w; i < len(tape); i += 1 + w%2 {
					op := tape[i]
					key := pageKey{FileID(op % 5), int64(op / 3)}
					switch op % 4 {
					case 0:
						cache.Touch(key)
					case 1:
						cache.Insert(key)
					case 2:
						if cache.Touch(key) {
							continue
						}
						// A just-missed key was inserted by Touch; with
						// capacity > 0 it must be present immediately
						// after, unless a racing eviction removed it —
						// only Len()'s bound is guaranteed.
					case 3:
						cache.RemoveFile(FileID(op % 5))
					}
				}
			}()
		}
		wg.Wait()
		if got, capi := cache.Len(), int(capacity); got > capi {
			t.Fatalf("cache holds %d pages, capacity %d", got, capi)
		}
		// The per-shard structures must still be internally consistent:
		// walking each shard's list visits exactly its mapped entries.
		cache.mu.RLock()
		defer cache.mu.RUnlock()
		for si, s := range cache.shards {
			s.mu.Lock()
			seen := 0
			for n := s.lru.head; n != nil; n = n.next {
				if _, ok := s.lru.entries[n.key]; !ok {
					s.mu.Unlock()
					t.Fatalf("shard %d: list node %v missing from map", si, n.key)
				}
				seen++
				if seen > len(s.lru.entries) {
					s.mu.Unlock()
					t.Fatalf("shard %d: list longer than map (cycle?)", si)
				}
			}
			if seen != len(s.lru.entries) {
				s.mu.Unlock()
				t.Fatalf("shard %d: list has %d nodes, map %d", si, seen, len(s.lru.entries))
			}
			s.mu.Unlock()
		}
	})
}

// FuzzLRUSequential checks exact single-threaded semantics the sharded
// wrapper must preserve: a just-touched key is cached (capacity permitting)
// and hits are counted.
func FuzzLRUSequential(f *testing.F) {
	f.Add(uint16(2), []byte{1, 2, 3, 1, 2, 3})
	f.Add(uint16(600), []byte{10, 20, 10, 20, 30})
	f.Fuzz(func(t *testing.T, capacity uint16, tape []byte) {
		cache := newShardedCache(int(capacity))
		var wantHits int64
		for _, op := range tape {
			key := pageKey{FileID(op % 3), int64(op / 2)}
			if cache.Touch(key) {
				wantHits++
			} else if capacity > 0 {
				if !cache.Touch(key) {
					t.Fatalf("key %v absent right after miss-insert", key)
				}
				wantHits++
			}
			if cache.Len() > int(capacity) {
				t.Fatalf("len %d over capacity %d", cache.Len(), capacity)
			}
		}
		if got := cache.Hits(); got != wantHits {
			t.Fatalf("per-shard hit counters sum to %d, want %d", got, wantHits)
		}
	})
}
